// CryptoPIM — public API umbrella.
//
// A reproduction of "CryptoPIM: In-memory Acceleration for Lattice-based
// Cryptographic Hardware" (DAC 2020): a ReRAM processing-in-memory
// accelerator for NTT-based polynomial multiplication over
// Z_q[x]/(x^n + 1), n up to 32k.
//
// Layers (each usable on its own):
//   ntt/        software NTT + modular arithmetic (CPU baseline & oracle)
//   pim/        bit-level crossbar simulator, gate ISA, in-memory circuits
//   arch/       pipelines, fixed-function switches, banks/softbanks
//   model/      analytic latency/energy model (regenerates the paper's
//               tables and figures)
//   baselines/  BP-1/2/3 PIM baselines, CPU/FPGA reference points
//   reliability/ fault injection, Freivalds verification, retry/remap
//   runtime/    online serving: discrete-event multi-tenant scheduler
//               over superbank lanes (arrivals, policies, fairness)
//   sim/        cycle-accounted functional simulation of the full design
//
// The Accelerator class below is the convenience front door used by the
// examples: functional multiplication plus the modelled performance of
// the hardware that would execute it.
#pragma once

#include "arch/chip.h"
#include "arch/pipeline.h"
#include "common/bitutil.h"
#include "common/rng.h"
#include "common/table.h"
#include "baselines/pim_baselines.h"
#include "crypto/keccak.h"
#include "crypto/kem.h"
#include "crypto/pke.h"
#include "he/bgv.h"
#include "model/latency.h"
#include "model/paper_constants.h"
#include "model/performance.h"
#include "model/scheduler.h"
#include "ntt/modular.h"
#include "ntt/ntt.h"
#include "ntt/params.h"
#include "ntt/poly.h"
#include "ntt/reduction.h"
#include "ntt/word_ntt.h"
#include "pim/block.h"
#include "pim/circuits/arith.h"
#include "pim/circuits/reduction.h"
#include "pim/device.h"
#include "pim/executor.h"
#include "pim/switch.h"
#include "reliability/campaign.h"
#include "reliability/fault_model.h"
#include "reliability/manager.h"
#include "reliability/verifier.h"
#include "runtime/backend.h"
#include "runtime/policy.h"
#include "runtime/serving.h"
#include "runtime/workload.h"
#include "sim/pipelined.h"
#include "sim/simulator.h"

namespace cryptopim {

/// High-level handle: one CryptoPIM accelerator configured for a degree.
///
/// multiply() executes the multiplication functionally in simulated
/// crossbars (bit-exact, cycle-accounted); performance() reports what the
/// pipelined hardware would deliver per the analytic model.
class Accelerator {
 public:
  explicit Accelerator(std::uint32_t degree)
      : params_(ntt::NttParams::for_degree(degree)),
        engine_(params_),
        sim_(params_) {}

  const ntt::NttParams& params() const noexcept { return params_; }

  /// c = a * b in R_q, computed in simulated memory.
  ntt::Poly multiply(const ntt::Poly& a, const ntt::Poly& b) {
    return sim_.multiply(a, b);
  }

  /// Run every subsequent multiply() under the reliability layer (fault
  /// injection, detection, retry/remap). Pass nullptr to detach; `rm`
  /// must outlive the accelerator while attached.
  void set_reliability(reliability::ReliabilityManager* rm) noexcept {
    sim_.set_reliability(rm);
  }

  /// Software reference (the CPU-baseline path).
  ntt::Poly multiply_software(const ntt::Poly& a, const ntt::Poly& b) const {
    return engine_.negacyclic_multiply(a, b);
  }

  /// Measurements of the last multiply() (cycles, energy, stages).
  const sim::SimReport& last_report() const noexcept { return sim_.report(); }

  /// Modelled pipelined-hardware performance at this degree.
  model::PipelinePerf performance() const {
    return model::cryptopim_pipelined(params_.n);
  }
  /// Modelled non-pipelined performance.
  model::PipelinePerf performance_non_pipelined() const {
    return model::cryptopim_non_pipelined(params_.n);
  }

  /// How the paper's 128-bank chip would be partitioned for this degree.
  arch::DegreePlan chip_plan() const {
    return arch::ChipConfig::paper_chip().plan_for_degree(params_.n);
  }

 private:
  ntt::NttParams params_;
  ntt::GsNttEngine engine_;
  sim::CryptoPimSimulator sim_;
};

}  // namespace cryptopim
