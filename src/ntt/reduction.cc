#include "ntt/reduction.h"

#include <cassert>

#include "ntt/modular.h"

namespace cryptopim::ntt {

namespace {

std::uint64_t eval_terms(std::uint64_t x,
                         const std::vector<ShiftAddTerm>& terms) noexcept {
  return eval_shift_add(x, terms.data(), terms.size());
}

}  // namespace

// ---------------------------------------------------------------------------
// BarrettShiftAdd
// ---------------------------------------------------------------------------

BarrettShiftAdd BarrettShiftAdd::paper_spec(std::uint32_t q) {
  BarrettShiftAdd b;
  b.q_ = q;
  switch (q) {
    case 7681:  // q = 2^13 - 2^9 + 1; u = a >> 13
      b.quotient_terms_ = {{0, +1}};
      b.quotient_shift_ = 13;
      b.q_terms_ = {{13, +1}, {9, -1}, {0, +1}};
      // a = 8192b + s  =>  r = 511b + s < 2q  iff  b <= 14.
      b.max_input_ = 15ull * 8192 - 1;
      break;
    case 12289:  // q = 2^13 + 2^12 + 1; u = (5a) >> 16
      b.quotient_terms_ = {{2, +1}, {0, +1}};
      b.quotient_shift_ = 16;
      b.q_terms_ = {{13, +1}, {12, +1}, {0, +1}};
      // r <= 4091b + 16383 < 2q  iff  b <= 2  (a = 65536b + s).
      b.max_input_ = 3ull * 65536 - 1;
      break;
    case 786433:  // q = 2^19 + 2^18 + 1; u = a >> 20
      b.quotient_terms_ = {{0, +1}};
      b.quotient_shift_ = 20;
      b.q_terms_ = {{19, +1}, {18, +1}, {0, +1}};
      // r = 262143b + s < 2q  iff  b <= 1  (a = 2^20 b + s).
      b.max_input_ = (1ull << 21) - 1;
      break;
    default:
      assert(false && "paper_spec only defined for q in {7681,12289,786433}");
  }
  assert(eval_terms(1, b.q_terms_) == q);
  return b;
}

BarrettShiftAdd BarrettShiftAdd::generic(std::uint32_t q,
                                         std::uint64_t max_input) {
  assert(q >= 2);
  BarrettShiftAdd b;
  b.q_ = q;
  b.max_input_ = max_input;
  // m = floor(2^k / q) with 2^k > max_input keeps the quotient
  // approximation within one of the true quotient, so reduce() < 2q.
  const unsigned k = bit_length(max_input);
  b.quotient_shift_ = k;
  const std::uint64_t m = (std::uint64_t{1} << k) / q;
  b.quotient_terms_ = naf_decompose(m);
  b.q_terms_ = naf_decompose(q);
  return b;
}

std::uint64_t BarrettShiftAdd::reduce(std::uint64_t a) const noexcept {
  assert(a <= max_input_);
  const std::uint64_t u = eval_terms(a, quotient_terms_) >> quotient_shift_;
  const std::uint64_t uq = eval_terms(u, q_terms_);
  assert(a >= uq);
  return a - uq;
}

std::uint32_t BarrettShiftAdd::reduce_canonical(std::uint64_t a) const noexcept {
  std::uint64_t r = reduce(a);
  if (r >= q_) r -= q_;
  assert(r < q_);
  return static_cast<std::uint32_t>(r);
}

// ---------------------------------------------------------------------------
// MontgomeryShiftAdd
// ---------------------------------------------------------------------------

MontgomeryShiftAdd MontgomeryShiftAdd::paper_spec(std::uint32_t q) {
  // R = 2^18 for the 16-bit moduli, 2^32 for the 32-bit modulus, matching
  // the masks in Algorithm 3. The q' constants are the corrected values
  // satisfying q*q' ≡ -1 (mod R); the shift patterns mirror the paper's.
  MontgomeryShiftAdd m;
  m.q_ = q;
  switch (q) {
    case 7681:
      m.r_bits_ = 18;
      m.q_prime_ = 7679;  // 2^13 - 2^9 - 1
      m.qprime_terms_ = {{13, +1}, {9, -1}, {0, -1}};
      m.q_terms_ = {{13, +1}, {9, -1}, {0, +1}};
      break;
    case 12289:
      m.r_bits_ = 18;
      m.q_prime_ = 12287;  // 2^13 + 2^12 - 1 (as printed in the paper)
      m.qprime_terms_ = {{13, +1}, {12, +1}, {0, -1}};
      m.q_terms_ = {{13, +1}, {12, +1}, {0, +1}};
      break;
    case 786433:
      m.r_bits_ = 32;
      m.q_prime_ = 786431;  // 2^19 + 2^18 - 1
      m.qprime_terms_ = {{19, +1}, {18, +1}, {0, -1}};
      m.q_terms_ = {{19, +1}, {18, +1}, {0, +1}};
      break;
    default:
      assert(false && "paper_spec only defined for q in {7681,12289,786433}");
  }
  assert(eval_terms(1, m.q_terms_) == q);
  assert(eval_terms(1, m.qprime_terms_) == m.q_prime_);
  return m;
}

MontgomeryShiftAdd MontgomeryShiftAdd::generic(std::uint32_t q,
                                               unsigned r_bits) {
  assert((q & 1u) != 0 && r_bits >= bit_length(q) && r_bits <= 32);
  MontgomeryShiftAdd m;
  m.q_ = q;
  m.r_bits_ = r_bits;
  const std::uint64_t R = std::uint64_t{1} << r_bits;
  const std::uint64_t inv = inv_mod_pow2(q, r_bits);
  m.q_prime_ = static_cast<std::uint32_t>((R - inv) & (R - 1));
  m.qprime_terms_ = naf_decompose(m.q_prime_);
  m.q_terms_ = naf_decompose(q);
  return m;
}

std::uint64_t MontgomeryShiftAdd::reduce(std::uint64_t a) const noexcept {
  assert(a <= max_input());
  const std::uint64_t mask = R() - 1;
  // Only the low r_bits of a matter for m; keeps the product in 64 bits.
  const std::uint64_t m = ((a & mask) * q_prime_) & mask;
  const std::uint64_t t = (a + m * q_) >> r_bits_;
  return t;  // < 2q for a < qR
}

std::uint32_t MontgomeryShiftAdd::reduce_canonical(
    std::uint64_t a) const noexcept {
  std::uint64_t t = reduce(a);
  if (t >= q_) t -= q_;
  assert(t < q_);
  return static_cast<std::uint32_t>(t);
}

std::uint32_t MontgomeryShiftAdd::to_mont(std::uint32_t x) const noexcept {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(x) << r_bits_) % q_);
}

std::uint32_t MontgomeryShiftAdd::mul(std::uint32_t a,
                                      std::uint32_t b) const noexcept {
  return reduce_canonical(static_cast<std::uint64_t>(a) * b);
}

// ---------------------------------------------------------------------------
// BarrettMultiply
// ---------------------------------------------------------------------------

BarrettMultiply::BarrettMultiply(std::uint32_t q) : q_(q) {
  assert(q >= 2);
  k_ = 2 * bit_length(q);
  m_ = static_cast<std::uint64_t>((static_cast<unsigned __int128>(1) << k_) /
                                  q);
}

std::uint32_t BarrettMultiply::reduce_canonical(std::uint64_t a) const noexcept {
  assert(a < (static_cast<std::uint64_t>(q_) * q_) * 4);
  const std::uint64_t u = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * m_) >> k_);
  std::uint64_t r = a - u * q_;
  while (r >= q_) r -= q_;
  return static_cast<std::uint32_t>(r);
}

}  // namespace cryptopim::ntt
