#include "ntt/modular.h"

namespace cryptopim::ntt {

std::vector<std::uint32_t> prime_factors(std::uint32_t n) {
  std::vector<std::uint32_t> factors;
  for (std::uint32_t p = 2; static_cast<std::uint64_t>(p) * p <= n; ++p) {
    if (n % p == 0) {
      factors.push_back(p);
      while (n % p == 0) n /= p;
    }
  }
  if (n > 1) factors.push_back(n);
  return factors;
}

bool is_prime(std::uint32_t q) {
  if (q < 2) return false;
  for (std::uint32_t p = 2; static_cast<std::uint64_t>(p) * p <= q; ++p) {
    if (q % p == 0) return false;
  }
  return true;
}

std::uint32_t find_generator(std::uint32_t q) {
  assert(is_prime(q));
  const auto factors = prime_factors(q - 1);
  for (std::uint32_t g = 2; g < q; ++g) {
    bool ok = true;
    for (std::uint32_t p : factors) {
      if (pow_mod(g, (q - 1) / p, q) == 1) {
        ok = false;
        break;
      }
    }
    if (ok) return g;
  }
  // Unreachable for prime q > 2: Z_q^* is cyclic.
  assert(false);
  return 0;
}

std::optional<std::uint32_t> primitive_root_of_unity(std::uint32_t k,
                                                     std::uint32_t q) {
  if (k == 0 || (q - 1) % k != 0) return std::nullopt;
  const std::uint32_t g = find_generator(q);
  const std::uint32_t root = pow_mod(g, (q - 1) / k, q);
  // Order is exactly k because g generates the full group.
  return root;
}

}  // namespace cryptopim::ntt
