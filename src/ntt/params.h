// Parameter sets for the negacyclic NTT over Z_q[x]/(x^n + 1).
//
// The paper fixes the modulus per degree (Section III-B):
//   q = 7681   for n <= 256   (Kyber),        16-bit datapath
//   q = 12289  for n in {512, 1024} (NewHope), 16-bit datapath
//   q = 786433 for n in {2k..32k}  (SEAL),     32-bit datapath
#pragma once

#include <cstdint>
#include <vector>

namespace cryptopim::ntt {

/// All constants needed to run the negacyclic NTT for a given (n, q).
/// Invariants (checked at construction): q prime, q ≡ 1 (mod 2n),
/// psi is a primitive 2n-th root of unity, omega = psi^2, psi^n = -1.
struct NttParams {
  std::uint32_t n = 0;       ///< polynomial degree (power of two)
  std::uint32_t q = 0;       ///< prime modulus
  unsigned log2n = 0;
  unsigned bitwidth = 0;     ///< datapath width in the accelerator (16/32)
  std::uint32_t omega = 0;      ///< primitive n-th root of unity (w)
  std::uint32_t omega_inv = 0;  ///< w^{-1} mod q
  std::uint32_t psi = 0;        ///< primitive 2n-th root of unity (phi)
  std::uint32_t psi_inv = 0;    ///< phi^{-1} mod q
  std::uint32_t n_inv = 0;      ///< n^{-1} mod q (folded into inverse scaling)

  /// Paper parameterisation: selects q and bitwidth from n.
  static NttParams for_degree(std::uint32_t n);
  /// Custom modulus (q prime, q ≡ 1 mod 2n); bitwidth = bits of q rounded
  /// up to 16 or 32.
  static NttParams make(std::uint32_t n, std::uint32_t q);
};

/// The paper's modulus for a given degree (Section III-B / Algorithm 3).
std::uint32_t paper_modulus_for_degree(std::uint32_t n);

/// The paper's datapath bit-width for a given degree (16 for n<=1024,
/// 32 above).
unsigned paper_bitwidth_for_degree(std::uint32_t n);

/// The eight degrees evaluated in the paper: 256 ... 32768.
const std::vector<std::uint32_t>& paper_degrees();

/// The three degrees with an FPGA comparator in Table II.
const std::vector<std::uint32_t>& fpga_degrees();

}  // namespace cryptopim::ntt
