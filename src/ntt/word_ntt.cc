#include "ntt/word_ntt.h"

#include <cassert>
#include <stdexcept>

#include "common/bitutil.h"
#include "ntt/modular.h"
#include "ntt/ntt.h"

namespace cryptopim::ntt {

namespace {

/// c' = floor(c * 2^32 / q) for a constant c < q.
inline std::uint32_t shoup_of(std::uint32_t c, std::uint32_t q) {
  return static_cast<std::uint32_t>((static_cast<std::uint64_t>(c) << 32) / q);
}

/// x * c mod q in [0, 2q), valid for any x < 2^32 and constant c < q
/// with c_shoup = floor(c * 2^32 / q). The quotient estimate is off by
/// at most one, so the 32-bit wrapping subtraction recovers a value
/// r == x*c (mod q) with r < q * (x / 2^32 + 1) < 2q.
inline std::uint32_t mul_shoup_lazy(std::uint32_t x, std::uint32_t c,
                                    std::uint32_t c_shoup, std::uint32_t q) {
  const auto quot = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(x) * c_shoup) >> 32);
  return x * c - quot * q;
}

/// a + b with one conditional subtract; stays in [0, 2q) for inputs in
/// [0, 2q).
inline std::uint32_t add_lazy(std::uint32_t a, std::uint32_t b,
                              std::uint32_t twoq) {
  const std::uint32_t s = a + b;
  return s >= twoq ? s - twoq : s;
}

}  // namespace

WordNttEngine::WordNttEngine(const NttParams& params) : params_(params) {
  // q < 2^30 keeps the butterfly's u - v + 2q (< 4q) and u + v (< 4q)
  // inside 32 bits.
  if (params_.q >= (1u << 30)) {
    throw std::invalid_argument("WordNttEngine requires q < 2^30");
  }
  twoq_ = 2 * params_.q;
  barrett_mu_ = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(1) << 64) / params_.q);

  // Identical table construction to GsNttEngine (bit-reversed twiddles,
  // normal-order psi tables) so the two engines execute the same
  // schedule over the same constants.
  const GsNttEngine ref(params_);
  const std::uint32_t q = params_.q;
  auto with_shoup = [q](const std::vector<std::uint32_t>& src,
                        std::vector<std::uint32_t>& dst,
                        std::vector<std::uint32_t>& dst_shoup) {
    dst = src;
    dst_shoup.resize(src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
      dst_shoup[i] = shoup_of(src[i], q);
    }
  };
  with_shoup(ref.forward_twiddles(), tw_fwd_, tw_fwd_shoup_);
  with_shoup(ref.inverse_twiddles(), tw_inv_, tw_inv_shoup_);
  with_shoup(ref.psi_powers(), psi_pow_, psi_pow_shoup_);
  with_shoup(ref.psi_inv_scaled(), psi_inv_scaled_, psi_inv_scaled_shoup_);
}

void WordNttEngine::transform_lazy(std::span<std::uint32_t> a,
                                   const std::vector<std::uint32_t>& tw,
                                   const std::vector<std::uint32_t>& tw_shoup,
                                   const StageProbe* probe) const {
  const std::uint32_t n = params_.n;
  const std::uint32_t q = params_.q;
  const std::uint32_t twoq = twoq_;
  assert(a.size() == n);

  // Algorithm 2's schedule, lazy form: stage i pairs rows (j, j + 2^i),
  // twiddle index j >> (i+1). Inputs in [0, 2q); u + v gets one
  // conditional subtract, u - v + 2q (< 4q) feeds the Shoup multiply.
  for (unsigned i = 0; i < params_.log2n; ++i) {
    const std::uint32_t stride = 1u << i;
    for (std::uint32_t idx = 0; idx < n / 2; ++idx) {
      const std::uint32_t st = idx & (stride - 1);
      const std::uint32_t j = ((idx & ~(stride - 1)) << 1) + st;
      const std::uint32_t j2 = j + stride;
      const std::uint32_t k = j >> (i + 1);
      const std::uint32_t u = a[j];
      const std::uint32_t v = a[j2];
      a[j] = add_lazy(u, v, twoq);
      a[j2] = mul_shoup_lazy(u - v + twoq, tw[k], tw_shoup[k], q);
    }
    if (probe && *probe) (*probe)(a);
  }
}

void WordNttEngine::forward_impl(std::span<std::uint32_t> a,
                                 const StageProbe* probe) const {
  const std::uint32_t q = params_.q;
  assert(a.size() == params_.n);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = mul_shoup_lazy(a[i], psi_pow_[i], psi_pow_shoup_[i], q);
  }
  if (probe && *probe) (*probe)(a);
  bitrev_permute(a);
  transform_lazy(a, tw_fwd_, tw_fwd_shoup_, probe);
}

void WordNttEngine::inverse_impl(std::span<std::uint32_t> a,
                                 const StageProbe* probe) const {
  const std::uint32_t q = params_.q;
  assert(a.size() == params_.n);
  bitrev_permute(a);
  transform_lazy(a, tw_inv_, tw_inv_shoup_, probe);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = mul_shoup_lazy(a[i], psi_inv_scaled_[i], psi_inv_scaled_shoup_[i],
                          q);
  }
  if (probe && *probe) (*probe)(a);
}

void WordNttEngine::pointwise_lazy(std::span<std::uint32_t> a,
                                   std::span<const std::uint32_t> b) const {
  assert(a.size() == params_.n && b.size() == params_.n);
  const std::uint32_t q = params_.q;
  // Barrett with mu = floor(2^64 / q): for prod < 2^62 the quotient
  // estimate (prod * mu) >> 64 is off by at most one, so the remainder
  // lands in [0, 2q).
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::uint64_t prod =
        static_cast<std::uint64_t>(a[i]) * static_cast<std::uint64_t>(b[i]);
    const auto quot = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(prod) * barrett_mu_) >> 64);
    a[i] = static_cast<std::uint32_t>(prod - quot * q);
  }
}

void WordNttEngine::normalize(std::span<std::uint32_t> a) const noexcept {
  const std::uint32_t q = params_.q;
  for (auto& x : a) {
    if (x >= q) x -= q;
  }
}

std::vector<std::uint32_t> WordNttEngine::negacyclic_multiply(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) const {
  const std::uint32_t n = params_.n;
  if (a.size() != n || b.size() != n) {
    throw std::invalid_argument("operand size does not match the degree");
  }
  std::vector<std::uint32_t> abar(a.begin(), a.end());
  std::vector<std::uint32_t> bbar(b.begin(), b.end());
  forward_lazy(abar);
  forward_lazy(bbar);
  pointwise_lazy(abar, bbar);
  inverse_lazy(abar);
  normalize(abar);
  return abar;
}

}  // namespace cryptopim::ntt
