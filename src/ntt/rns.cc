#include "ntt/rns.h"

#include <cassert>
#include <stdexcept>

#include "ntt/modular.h"

namespace cryptopim::ntt {

U128 mulmod_u128(U128 a, U128 b, U128 m) {
  assert(m != 0);
  a %= m;
  b %= m;
  U128 acc = 0;
  while (b != 0) {
    if (b & 1u) {
      acc += a;
      if (acc >= m) acc -= m;
    }
    a <<= 1;
    if (a >= m) a -= m;
    b >>= 1;
  }
  return acc;
}

RnsBasis RnsBasis::generate(std::uint32_t n, std::size_t count,
                            unsigned max_bits) {
  if (count == 0) throw std::invalid_argument("RNS basis needs >= 1 prime");
  if (max_bits < 2 || max_bits > 30) {
    throw std::invalid_argument("RNS limb width must be in [2, 30] bits");
  }
  RnsBasis basis;
  basis.n_ = n;

  // Candidates are k*2n + 1, searched downward from 2^max_bits so limbs
  // stay as wide (and as few) as possible.
  const std::uint64_t step = 2ull * n;
  std::uint64_t candidate = ((std::uint64_t{1} << max_bits) - 1) / step * step + 1;
  while (basis.limbs_.size() < count) {
    if (candidate <= step) {
      throw std::runtime_error("not enough NTT-friendly primes below 2^bits");
    }
    const auto q = static_cast<std::uint32_t>(candidate);
    if (is_prime(q)) {
      // 127-bit guard: Q * q must not overflow the U128 accumulator.
      if (basis.modulus_ > (~U128{0} >> 1) / q) {
        throw std::runtime_error("RNS modulus exceeds 127 bits");
      }
      basis.limbs_.emplace_back(NttParams::make(n, q));
      basis.modulus_ *= q;
    }
    candidate -= step;
  }

  // CRT constants: m_i = Q/q_i, m_i_inv = m_i^{-1} mod q_i.
  for (auto& limb : basis.limbs_) {
    limb.m_i = basis.modulus_ / limb.params.q;
    const auto m_i_mod_q =
        static_cast<std::uint32_t>(limb.m_i % limb.params.q);
    limb.m_i_inv = inv_mod(m_i_mod_q, limb.params.q);
  }
  return basis;
}

RnsPoly RnsBasis::decompose(std::span<const U128> coeffs) const {
  if (coeffs.size() != n_) {
    throw std::invalid_argument("coefficient count does not match degree");
  }
  RnsPoly out;
  out.residues.reserve(limbs_.size());
  for (const auto& limb : limbs_) {
    Poly r(n_);
    for (std::uint32_t i = 0; i < n_; ++i) {
      assert(coeffs[i] < modulus_);
      r[i] = static_cast<std::uint32_t>(coeffs[i] % limb.params.q);
    }
    out.residues.push_back(std::move(r));
  }
  return out;
}

std::vector<U128> RnsBasis::reconstruct(const RnsPoly& p) const {
  if (p.residues.size() != limbs_.size()) {
    throw std::invalid_argument("residue count does not match basis");
  }
  std::vector<U128> out(n_, 0);
  for (std::size_t l = 0; l < limbs_.size(); ++l) {
    const auto& limb = limbs_[l];
    for (std::uint32_t i = 0; i < n_; ++i) {
      // x += x_l * (Q/q_l) * ((Q/q_l)^{-1} mod q_l)  (mod Q)
      const std::uint32_t scaled =
          mul_mod(p.residues[l][i], limb.m_i_inv, limb.params.q);
      out[i] = out[i] + mulmod_u128(scaled, limb.m_i, modulus_);
      if (out[i] >= modulus_) out[i] -= modulus_;
    }
  }
  return out;
}

RnsPoly RnsBasis::multiply(const RnsPoly& a, const RnsPoly& b) const {
  if (a.residues.size() != limbs_.size() ||
      b.residues.size() != limbs_.size()) {
    throw std::invalid_argument("residue count does not match basis");
  }
  RnsPoly out;
  out.residues.reserve(limbs_.size());
  for (std::size_t l = 0; l < limbs_.size(); ++l) {
    out.residues.push_back(
        limbs_[l].engine.negacyclic_multiply(a.residues[l], b.residues[l]));
  }
  return out;
}

RnsPoly RnsBasis::add(const RnsPoly& a, const RnsPoly& b) const {
  RnsPoly out;
  out.residues.reserve(limbs_.size());
  for (std::size_t l = 0; l < limbs_.size(); ++l) {
    out.residues.push_back(
        poly_add(a.residues[l], b.residues[l], limbs_[l].params.q));
  }
  return out;
}

}  // namespace cryptopim::ntt
