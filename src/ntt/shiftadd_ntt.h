// The software mirror of the CryptoPIM datapath.
//
// GsNttEngine (ntt.h) uses generic machine division for modular products;
// the accelerator cannot. This multiplier performs every runtime modular
// operation exactly the way the hardware does (Section III-B / Algorithm
// 3): lazy shift-add Barrett after additions, shift-add Montgomery after
// multiplications, twiddles pre-stored in the Montgomery domain, the B
// operand carried through the pipeline in the Montgomery domain so the
// point-wise product lands plain, and no mid-pipeline bit-reversal
// (conjugate inverse schedule).
//
// It is the executable specification the functional crossbar simulator is
// checked against operation-for-operation, and a realistic CPU baseline
// for the exact arithmetic the paper maps into memory.
#pragma once

#include <cstdint>
#include <vector>

#include "ntt/ntt.h"
#include "ntt/params.h"
#include "ntt/poly.h"
#include "ntt/reduction.h"

namespace cryptopim::ntt {

class ShiftAddNttMultiplier {
 public:
  explicit ShiftAddNttMultiplier(const NttParams& params);

  const NttParams& params() const noexcept { return params_; }

  /// c = a * b over Z_q[x]/(x^n + 1); inputs canonical in [0, q).
  /// Runtime modular arithmetic is exclusively Algorithm-3 shift-add.
  Poly negacyclic_multiply(const Poly& a, const Poly& b) const;

 private:
  // One Gentleman–Sande pass over `v` (bit-reversed input expected for
  // the forward direction, normal input for the conjugate inverse).
  void forward_pass(Poly& v) const;
  void inverse_pass(Poly& v) const;

  std::uint32_t mont_mul(std::uint32_t x, std::uint32_t w_mont) const {
    return montgomery_.reduce_canonical(static_cast<std::uint64_t>(x) *
                                        w_mont);
  }
  /// (x - y) mod q via the hardware's x + q - y trick plus lazy handling.
  std::uint32_t sub_q(std::uint32_t x, std::uint32_t y) const {
    return x + params_.q - y;  // in (0, 2q), consumed by Montgomery
  }

  NttParams params_;
  BarrettShiftAdd barrett_;
  MontgomeryShiftAdd montgomery_;
  // Pre-computed (offline) constant tables, all in Montgomery form.
  std::vector<std::uint32_t> tw_fwd_mont_;   // bit-reversed w^k * R
  std::vector<std::uint32_t> psi_mont_;      // psi^i * R (A path)
  std::vector<std::uint32_t> psi_r2_;        // psi^i * R^2 (B path)
  std::vector<std::uint32_t> psi_inv_mont_;  // n^{-1} psi^{-i} * R
  std::vector<std::vector<std::uint32_t>> tw_inv_mont_;  // per inverse level
};

}  // namespace cryptopim::ntt
