#include "ntt/params.h"

#include <cassert>
#include <stdexcept>

#include "common/bitutil.h"
#include "ntt/modular.h"

namespace cryptopim::ntt {

std::uint32_t paper_modulus_for_degree(std::uint32_t n) {
  if (n <= 256) return 7681;
  if (n <= 1024) return 12289;
  return 786433;
}

unsigned paper_bitwidth_for_degree(std::uint32_t n) {
  return n <= 1024 ? 16u : 32u;
}

const std::vector<std::uint32_t>& paper_degrees() {
  static const std::vector<std::uint32_t> degrees = {
      256, 512, 1024, 2048, 4096, 8192, 16384, 32768};
  return degrees;
}

const std::vector<std::uint32_t>& fpga_degrees() {
  static const std::vector<std::uint32_t> degrees = {256, 512, 1024};
  return degrees;
}

NttParams NttParams::for_degree(std::uint32_t n) {
  return make(n, paper_modulus_for_degree(n));
}

NttParams NttParams::make(std::uint32_t n, std::uint32_t q) {
  if (!is_pow2(n) || n < 2) {
    throw std::invalid_argument("NTT degree must be a power of two >= 2");
  }
  if (!is_prime(q)) {
    throw std::invalid_argument("NTT modulus must be prime");
  }
  if ((q - 1) % (2 * n) != 0) {
    throw std::invalid_argument(
        "negacyclic NTT requires q ≡ 1 (mod 2n): no 2n-th root of unity");
  }
  NttParams p;
  p.n = n;
  p.q = q;
  p.log2n = ilog2(n);
  const unsigned qbits = bit_length(q);
  p.bitwidth = qbits <= 16 ? 16u : 32u;

  const auto psi = primitive_root_of_unity(2 * n, q);
  assert(psi.has_value());
  p.psi = *psi;
  p.psi_inv = inv_mod(p.psi, q);
  p.omega = mul_mod(p.psi, p.psi, q);
  p.omega_inv = inv_mod(p.omega, q);
  p.n_inv = inv_mod(n % q, q);

  // psi is a primitive 2n-th root, so psi^n = -1 (the negacyclic twist).
  assert(pow_mod(p.psi, n, q) == q - 1);
  assert(pow_mod(p.omega, n, q) == 1);
  return p;
}

}  // namespace cryptopim::ntt
