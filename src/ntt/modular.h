// Generic modular arithmetic over Z_q for q < 2^31.
//
// These routines back the software (CPU-baseline) NTT and serve as the
// scalar oracle against which every in-memory PIM circuit is verified.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

namespace cryptopim::ntt {

/// a + b mod q; preconditions a,b in [0,q).
constexpr std::uint32_t add_mod(std::uint32_t a, std::uint32_t b,
                                std::uint32_t q) noexcept {
  const std::uint32_t s = a + b;
  return s >= q ? s - q : s;
}

/// a - b mod q; preconditions a,b in [0,q).
constexpr std::uint32_t sub_mod(std::uint32_t a, std::uint32_t b,
                                std::uint32_t q) noexcept {
  return a >= b ? a - b : a + q - b;
}

/// a * b mod q for q < 2^31 (the 64-bit product cannot overflow).
constexpr std::uint32_t mul_mod(std::uint32_t a, std::uint32_t b,
                                std::uint32_t q) noexcept {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(a) * b) % q);
}

/// a^e mod q by square-and-multiply.
constexpr std::uint32_t pow_mod(std::uint32_t a, std::uint64_t e,
                                std::uint32_t q) noexcept {
  std::uint64_t base = a % q;
  std::uint64_t acc = 1;
  while (e != 0) {
    if (e & 1u) acc = (acc * base) % q;
    base = (base * base) % q;
    e >>= 1;
  }
  return static_cast<std::uint32_t>(acc);
}

/// Multiplicative inverse mod prime q (Fermat). Precondition: q prime,
/// a != 0 mod q.
constexpr std::uint32_t inv_mod(std::uint32_t a, std::uint32_t q) noexcept {
  assert(a % q != 0);
  return pow_mod(a, q - 2, q);
}

/// Inverse of odd `a` modulo 2^bits (Hensel/Newton lifting). Used to derive
/// Montgomery constants q' = -q^{-1} mod R.
constexpr std::uint64_t inv_mod_pow2(std::uint64_t a, unsigned bits) noexcept {
  assert((a & 1u) != 0 && bits >= 1 && bits <= 64);
  std::uint64_t x = 1;  // correct mod 2^1
  for (unsigned prec = 1; prec < bits; prec *= 2) {
    x = x * (2 - a * x);  // doubles precision each step (mod 2^64 arithmetic)
  }
  if (bits < 64) x &= (std::uint64_t{1} << bits) - 1;
  return x;
}

/// Distinct prime factors of n (trial division; n is small in this library).
std::vector<std::uint32_t> prime_factors(std::uint32_t n);

/// True iff q is prime (deterministic trial division; q < 2^31).
bool is_prime(std::uint32_t q);

/// Smallest generator of the multiplicative group Z_q^* (q prime).
std::uint32_t find_generator(std::uint32_t q);

/// A primitive k-th root of unity mod prime q, i.e. an element of
/// multiplicative order exactly k. Requires k | q-1; returns nullopt
/// otherwise.
std::optional<std::uint32_t> primitive_root_of_unity(std::uint32_t k,
                                                     std::uint32_t q);

}  // namespace cryptopim::ntt
