// Negacyclic NTT with the psi-twist merged into the twiddle factors.
//
// The paper (Algorithm 1) scales by psi^i / psi^{-i} in dedicated pipeline
// stages before/after the transforms. Modern software implementations
// (Kyber, NewHope reference code) instead fold the twist into the
// butterfly twiddles — a Cooley–Tukey forward pass with psi-powers and a
// Gentleman–Sande inverse pass with psi^{-1}-powers — eliminating the 4n
// scaling multiplications and both scaling pipeline stages.
//
// This engine provides that variant as an optimization ablation: it must
// produce identical products (tested), and the architecture ablation can
// quantify what merging would save the accelerator (two blocks per bank
// and ~2 pipeline stages of latency).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ntt/params.h"
#include "ntt/poly.h"

namespace cryptopim::ntt {

class MergedNttEngine {
 public:
  explicit MergedNttEngine(const NttParams& params);

  const NttParams& params() const noexcept { return params_; }

  /// Forward merged NTT (Cooley–Tukey, normal order in, bit-reversed
  /// order out, psi folded into the twiddles).
  void forward(std::span<std::uint32_t> a) const;
  /// Inverse merged NTT (Gentleman–Sande, bit-reversed in, normal out,
  /// psi^{-1} and n^{-1} folded in).
  void inverse(std::span<std::uint32_t> a) const;

  /// c = a * b over Z_q[x]/(x^n + 1); no separate scaling passes.
  Poly negacyclic_multiply(std::span<const std::uint32_t> a,
                           std::span<const std::uint32_t> b) const;

 private:
  NttParams params_;
  std::vector<std::uint32_t> psi_brv_;      // psi^{brv(i)}, CT order
  std::vector<std::uint32_t> psi_inv_brv_;  // psi^{-brv(i)}, GS order
  std::uint32_t n_inv_ = 0;
};

}  // namespace cryptopim::ntt
