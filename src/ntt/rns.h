// Residue number system (RNS) over NTT-friendly primes.
//
// Homomorphic-encryption libraries (the paper cites Microsoft SEAL for its
// n >= 2k parameters) work with ciphertext moduli Q far wider than a
// machine word by decomposing Q into a basis of word-sized primes
// q_1 ... q_k, each ≡ 1 (mod 2n). Every ring operation then runs
// independently per limb — which is exactly the form CryptoPIM
// accelerates: one NTT-based multiplication per (n, q_i) parameter set,
// trivially parallel across superbanks.
//
// This module provides basis generation, CRT decompose/reconstruct (up to
// 127-bit Q), and the per-limb negacyclic multiplier, verified against a
// wide-integer schoolbook oracle.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ntt/ntt.h"
#include "ntt/params.h"
#include "ntt/poly.h"

namespace cryptopim::ntt {

using U128 = unsigned __int128;

/// (a * b) mod m for 128-bit operands (shift-add; used only by the CRT
/// and the test oracle, never on hot paths).
U128 mulmod_u128(U128 a, U128 b, U128 m);

/// A polynomial held as per-prime residue vectors.
struct RnsPoly {
  std::vector<Poly> residues;  ///< residues[i] is the image mod q_i
};

class RnsBasis {
 public:
  /// Generate `count` distinct primes q ≡ 1 (mod 2n), each of at most
  /// `max_bits` bits (searched downward from 2^max_bits). Throws if the
  /// product would exceed 127 bits or not enough primes exist.
  static RnsBasis generate(std::uint32_t n, std::size_t count,
                           unsigned max_bits = 20);

  std::size_t size() const noexcept { return limbs_.size(); }
  std::uint32_t degree() const noexcept { return n_; }
  const NttParams& params(std::size_t i) const { return limbs_.at(i).params; }
  std::uint32_t prime(std::size_t i) const { return limbs_.at(i).params.q; }
  U128 modulus() const noexcept { return modulus_; }

  /// Coefficients in [0, Q) -> residues.
  RnsPoly decompose(std::span<const U128> coeffs) const;
  /// Residues -> coefficients in [0, Q) (CRT).
  std::vector<U128> reconstruct(const RnsPoly& p) const;

  /// Negacyclic product mod Q, one NTT multiplication per limb.
  RnsPoly multiply(const RnsPoly& a, const RnsPoly& b) const;

  /// Limb-wise addition mod Q.
  RnsPoly add(const RnsPoly& a, const RnsPoly& b) const;

 private:
  struct Limb {
    NttParams params;
    GsNttEngine engine;
    U128 m_i = 0;      ///< Q / q_i
    std::uint32_t m_i_inv = 0;  ///< (Q/q_i)^{-1} mod q_i
    explicit Limb(const NttParams& p) : params(p), engine(p) {}
  };

  std::uint32_t n_ = 0;
  U128 modulus_ = 1;
  std::vector<Limb> limbs_;
};

}  // namespace cryptopim::ntt
