#include "ntt/shiftadd_ntt.h"

#include <cassert>

#include "common/bitutil.h"
#include "ntt/modular.h"

namespace cryptopim::ntt {

ShiftAddNttMultiplier::ShiftAddNttMultiplier(const NttParams& params)
    : params_(params),
      barrett_(BarrettShiftAdd::paper_spec(params.q)),
      montgomery_(MontgomeryShiftAdd::paper_spec(params.q)) {
  const std::uint32_t n = params_.n;
  const std::uint32_t q = params_.q;
  const GsNttEngine engine(params_);

  tw_fwd_mont_.resize(n / 2);
  for (std::uint32_t k = 0; k < n / 2; ++k) {
    tw_fwd_mont_[k] = montgomery_.to_mont(engine.forward_twiddles()[k]);
  }

  const std::uint32_t r_mod_q = static_cast<std::uint32_t>(montgomery_.R() % q);
  psi_mont_.resize(n);
  psi_r2_.resize(n);
  psi_inv_mont_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    psi_mont_[i] = montgomery_.to_mont(engine.psi_powers()[i]);
    psi_r2_[i] = mul_mod(psi_mont_[i], r_mod_q, q);
    psi_inv_mont_[i] = montgomery_.to_mont(engine.psi_inv_scaled()[i]);
  }

  // Inverse (conjugate, decreasing-stride) twiddles per level:
  // W = w^{-(j mod len) * n/(2 len)}, stored in Montgomery form.
  for (std::uint32_t len = n / 2; len >= 1; len >>= 1) {
    const std::uint32_t step = n / (2 * len);
    std::vector<std::uint32_t> level(len);
    for (std::uint32_t t = 0; t < len; ++t) {
      level[t] = montgomery_.to_mont(pow_mod(params_.omega_inv,
                                             t * step, q));
    }
    tw_inv_mont_.push_back(std::move(level));
    if (len == 1) break;
  }
}

void ShiftAddNttMultiplier::forward_pass(Poly& v) const {
  const std::uint32_t n = params_.n;
  for (unsigned k = 0; k < params_.log2n; ++k) {
    const std::uint32_t stride = 1u << k;
    for (std::uint32_t idx = 0; idx < n / 2; ++idx) {
      const std::uint32_t st = idx & (stride - 1);
      const std::uint32_t j = ((idx & ~(stride - 1)) << 1) + st;
      const std::uint32_t j2 = j + stride;
      const std::uint32_t t = v[j];
      const std::uint32_t w = tw_fwd_mont_[j >> (k + 1)];
      v[j] = barrett_.reduce_canonical(
          static_cast<std::uint64_t>(t) + v[j2]);
      v[j2] = montgomery_.reduce_canonical(
          static_cast<std::uint64_t>(sub_q(t, v[j2])) * w);
    }
  }
}

void ShiftAddNttMultiplier::inverse_pass(Poly& v) const {
  const std::uint32_t n = params_.n;
  std::size_t level = 0;
  for (std::uint32_t len = n / 2; len >= 1; len >>= 1, ++level) {
    for (std::uint32_t start = 0; start < n; start += 2 * len) {
      for (std::uint32_t t = 0; t < len; ++t) {
        const std::uint32_t j = start + t;
        const std::uint32_t j2 = j + len;
        const std::uint32_t u = v[j];
        const std::uint32_t w = tw_inv_mont_[level][t];
        v[j] = barrett_.reduce_canonical(
            static_cast<std::uint64_t>(u) + v[j2]);
        v[j2] = montgomery_.reduce_canonical(
            static_cast<std::uint64_t>(sub_q(u, v[j2])) * w);
      }
    }
    if (len == 1) break;
  }
}

Poly ShiftAddNttMultiplier::negacyclic_multiply(const Poly& a,
                                                const Poly& b) const {
  const std::uint32_t n = params_.n;
  assert(a.size() == n && b.size() == n);

  // A path: plain domain. B path: Montgomery domain (entered through the
  // psi * R^2 constants), so the point-wise Montgomery product is plain.
  Poly abar(n), bbar(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    abar[i] = mont_mul(a[i], psi_mont_[i]);
    bbar[i] = mont_mul(b[i], psi_r2_[i]);
  }
  bitrev_permute(abar);
  bitrev_permute(bbar);
  forward_pass(abar);
  forward_pass(bbar);

  for (std::uint32_t i = 0; i < n; ++i) {
    abar[i] = montgomery_.reduce_canonical(
        static_cast<std::uint64_t>(abar[i]) * bbar[i]);
  }

  inverse_pass(abar);
  // Output index r holds element bitrev(r); fold the n^{-1} psi^{-i}
  // scaling through that permutation, then undo it.
  for (std::uint32_t r = 0; r < n; ++r) {
    const auto i = static_cast<std::uint32_t>(bit_reverse(r, params_.log2n));
    abar[r] = mont_mul(abar[r], psi_inv_mont_[i]);
  }
  bitrev_permute(abar);
  return abar;
}

}  // namespace cryptopim::ntt
