// Shift-add modular reduction, specialised to the paper's three moduli
// (Algorithm 3) and generalised to arbitrary odd prime q.
//
// The paper replaces division-based Barrett / Montgomery reduction with
// chains of constant shifts and add/subtracts, because in a ReRAM crossbar
// a shift-by-constant is free (column re-addressing) while adds are cheap
// and row-parallel. The same ShiftAddTerm decompositions exposed here are
// consumed by the PIM reduction circuits (src/pim/circuits/reduction.*),
// so the scalar and in-memory implementations share one source of truth.
//
// NOTE on fidelity: Algorithm 3 as printed in the paper has sign typos in
// the q = 7681 and q = 786433 branches (e.g. it multiplies by
// 2^13 - 2^9 - 1 = 7679 where the value 7681 is required, and vice versa
// for the Montgomery q'). We implement the mathematically correct
// constants — verified by the identity q * q' ≡ -1 (mod R) in unit tests —
// and keep the paper's structure (two shift-add stages, a power-of-two
// mask, a final add + shift). See DESIGN.md §3.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitutil.h"

namespace cryptopim::ntt {

/// Barrett reduction with a shift-add quotient approximation:
///   u = (sum_i sign_i * (a << shift_i)) >> quotient_shift   (~ floor(a/q))
///   r = a - u * q                                           (u*q via shift-add)
/// The result lies in [0, slack_bound) with slack_bound a small multiple of
/// q; reduce_canonical() finishes with conditional subtracts.
class BarrettShiftAdd {
 public:
  /// The paper's specialisation for q in {7681, 12289, 786433}.
  static BarrettShiftAdd paper_spec(std::uint32_t q);
  /// Generic construction for any q: m = floor(2^k / q), k chosen so the
  /// approximation error stays below one q for inputs < max_input.
  static BarrettShiftAdd generic(std::uint32_t q, std::uint64_t max_input);

  std::uint32_t q() const noexcept { return q_; }
  /// Largest input for which reduce() is guaranteed < 2q.
  std::uint64_t max_input() const noexcept { return max_input_; }
  unsigned quotient_shift() const noexcept { return quotient_shift_; }
  const std::vector<ShiftAddTerm>& quotient_terms() const noexcept {
    return quotient_terms_;
  }
  const std::vector<ShiftAddTerm>& q_terms() const noexcept {
    return q_terms_;
  }

  /// One-shot reduction; result in [0, 2q) for inputs <= max_input().
  std::uint64_t reduce(std::uint64_t a) const noexcept;
  /// Full reduction into [0, q).
  std::uint32_t reduce_canonical(std::uint64_t a) const noexcept;

 private:
  std::uint32_t q_ = 0;
  unsigned quotient_shift_ = 0;
  std::vector<ShiftAddTerm> quotient_terms_;
  std::vector<ShiftAddTerm> q_terms_;
  std::uint64_t max_input_ = 0;
};

/// Montgomery reduction with shift-add constant multiplications:
///   m = (a * q') mod R,  q' = -q^{-1} mod R,  R = 2^r_bits
///   t = (a + m * q) >> r_bits            == a * R^{-1} (mod q)
/// Both q' and q multiplications are realised as shift-add chains.
class MontgomeryShiftAdd {
 public:
  /// The paper's specialisation: R = 2^18 for q in {7681, 12289},
  /// R = 2^32 for q = 786433.
  static MontgomeryShiftAdd paper_spec(std::uint32_t q);
  /// Generic construction for odd q with a caller-chosen R = 2^r_bits > q.
  static MontgomeryShiftAdd generic(std::uint32_t q, unsigned r_bits);

  std::uint32_t q() const noexcept { return q_; }
  unsigned r_bits() const noexcept { return r_bits_; }
  std::uint64_t R() const noexcept { return std::uint64_t{1} << r_bits_; }
  std::uint32_t q_prime() const noexcept { return q_prime_; }
  const std::vector<ShiftAddTerm>& qprime_terms() const noexcept {
    return qprime_terms_;
  }
  const std::vector<ShiftAddTerm>& q_terms() const noexcept {
    return q_terms_;
  }
  /// Largest a with reduce(a) < 2q (i.e. a + mq must not overflow the
  /// guarantee); equals q*R - 1 mathematically, we report q*R - 1.
  std::uint64_t max_input() const noexcept {
    return static_cast<std::uint64_t>(q_) * R() - 1;
  }

  /// t = a * R^{-1} mod q, result in [0, 2q) for a < q*R.
  std::uint64_t reduce(std::uint64_t a) const noexcept;
  /// Full reduction into [0, q).
  std::uint32_t reduce_canonical(std::uint64_t a) const noexcept;

  /// x -> x * R mod q (enter the Montgomery domain).
  std::uint32_t to_mont(std::uint32_t x) const noexcept;
  /// Montgomery product: a,b in [0,q), one of them in the Montgomery
  /// domain; returns the plain product in [0, q).
  std::uint32_t mul(std::uint32_t a, std::uint32_t b) const noexcept;

 private:
  std::uint32_t q_ = 0;
  unsigned r_bits_ = 0;
  std::uint32_t q_prime_ = 0;
  std::vector<ShiftAddTerm> qprime_terms_;
  std::vector<ShiftAddTerm> q_terms_;
};

/// Multiplication-based Barrett reduction (two wide multiplications),
/// as used by the BP-1/BP-2 PIM baselines of Fig. 6 — functionally
/// equivalent, far more expensive in memory.
class BarrettMultiply {
 public:
  explicit BarrettMultiply(std::uint32_t q);
  std::uint32_t q() const noexcept { return q_; }
  std::uint32_t reduce_canonical(std::uint64_t a) const noexcept;

 private:
  std::uint32_t q_ = 0;
  unsigned k_ = 0;        // 2 * bit_length(q)
  std::uint64_t m_ = 0;   // floor(2^k / q)
};

}  // namespace cryptopim::ntt
