#include "ntt/ntt.h"

#include <cassert>
#include <stdexcept>

#include "common/bitutil.h"
#include "ntt/modular.h"

namespace cryptopim::ntt {

void bitrev_permute(std::span<std::uint32_t> a) {
  const std::size_t n = a.size();
  assert(is_pow2(n));
  const unsigned bits = ilog2(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bit_reverse(i, bits);
    if (i < j) std::swap(a[i], a[j]);
  }
}

GsNttEngine::GsNttEngine(const NttParams& params) : params_(params) {
  const std::uint32_t n = params_.n;
  const std::uint32_t q = params_.q;
  const unsigned half_bits = params_.log2n - 1;

  // Twiddles w^k for k in [0, n/2), stored bit-reversed (paper Alg. 1,
  // line 2: "w^i, w^{-i} are in reversed order").
  tw_fwd_.assign(n / 2, 0);
  tw_inv_.assign(n / 2, 0);
  std::uint32_t wf = 1;
  std::uint32_t wi = 1;
  for (std::uint32_t k = 0; k < n / 2; ++k) {
    const std::size_t slot =
        n == 2 ? 0 : static_cast<std::size_t>(bit_reverse(k, half_bits));
    tw_fwd_[slot] = wf;
    tw_inv_[slot] = wi;
    wf = mul_mod(wf, params_.omega, q);
    wi = mul_mod(wi, params_.omega_inv, q);
  }

  // psi^i (normal order) and n^{-1} psi^{-i} (normal order).
  psi_pow_.assign(n, 0);
  psi_inv_scaled_.assign(n, 0);
  std::uint32_t pf = 1;
  std::uint32_t pi = params_.n_inv;
  for (std::uint32_t i = 0; i < n; ++i) {
    psi_pow_[i] = pf;
    psi_inv_scaled_[i] = pi;
    pf = mul_mod(pf, params_.psi, q);
    pi = mul_mod(pi, params_.psi_inv, q);
  }
}

void GsNttEngine::transform_gs(std::span<std::uint32_t> a,
                               const std::vector<std::uint32_t>& twiddle) const {
  const std::uint32_t n = params_.n;
  const std::uint32_t q = params_.q;
  assert(a.size() == n);

  // Algorithm 2: stage i pairs rows (j, j + 2^i); twiddle index j >> (i+1).
  for (unsigned i = 0; i < params_.log2n; ++i) {
    const std::uint32_t stride = 1u << i;
    for (std::uint32_t idx = 0; idx < n / 2; ++idx) {
      const std::uint32_t st = idx & (stride - 1);
      const std::uint32_t j = ((idx & ~(stride - 1)) << 1) + st;
      const std::uint32_t j2 = j + stride;
      const std::uint32_t w = twiddle[j >> (i + 1)];
      const std::uint32_t t = a[j];
      a[j] = add_mod(t, a[j2], q);
      a[j2] = mul_mod(w, sub_mod(t, a[j2], q), q);
    }
  }
}

void GsNttEngine::forward(std::span<std::uint32_t> a) const {
  const std::uint32_t q = params_.q;
  assert(a.size() == params_.n);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = mul_mod(a[i], psi_pow_[i], q);
  }
  bitrev_permute(a);
  transform_gs(a, tw_fwd_);
}

void GsNttEngine::inverse(std::span<std::uint32_t> a) const {
  const std::uint32_t q = params_.q;
  assert(a.size() == params_.n);
  bitrev_permute(a);
  transform_gs(a, tw_inv_);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = mul_mod(a[i], psi_inv_scaled_[i], q);
  }
}

std::vector<std::uint32_t> GsNttEngine::negacyclic_multiply(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) const {
  const std::uint32_t n = params_.n;
  const std::uint32_t q = params_.q;
  if (a.size() != n || b.size() != n) {
    throw std::invalid_argument("operand size does not match the degree");
  }

  std::vector<std::uint32_t> abar(a.begin(), a.end());
  std::vector<std::uint32_t> bbar(b.begin(), b.end());
  forward(abar);
  forward(bbar);
  for (std::uint32_t i = 0; i < n; ++i) {
    abar[i] = mul_mod(abar[i], bbar[i], q);
  }
  inverse(abar);
  return abar;
}

void ntt_dif_classic(std::span<std::uint32_t> a, std::uint32_t omega,
                     std::uint32_t q) {
  const std::size_t n = a.size();
  assert(is_pow2(n));
  for (std::size_t len = n / 2; len >= 1; len >>= 1) {
    const std::uint32_t wlen = pow_mod(omega, n / (2 * len), q);
    for (std::size_t start = 0; start < n; start += 2 * len) {
      std::uint32_t w = 1;
      for (std::size_t j = start; j < start + len; ++j) {
        const std::uint32_t u = a[j];
        const std::uint32_t v = a[j + len];
        a[j] = add_mod(u, v, q);
        a[j + len] = mul_mod(w, sub_mod(u, v, q), q);
        w = mul_mod(w, wlen, q);
      }
    }
  }
}

void ntt_dit_classic(std::span<std::uint32_t> a, std::uint32_t omega,
                     std::uint32_t q) {
  const std::size_t n = a.size();
  assert(is_pow2(n));
  for (std::size_t len = 1; len <= n / 2; len <<= 1) {
    const std::uint32_t wlen = pow_mod(omega, n / (2 * len), q);
    for (std::size_t start = 0; start < n; start += 2 * len) {
      std::uint32_t w = 1;
      for (std::size_t j = start; j < start + len; ++j) {
        const std::uint32_t u = a[j];
        const std::uint32_t v = mul_mod(w, a[j + len], q);
        a[j] = add_mod(u, v, q);
        a[j + len] = sub_mod(u, v, q);
        w = mul_mod(w, wlen, q);
      }
    }
  }
}

}  // namespace cryptopim::ntt
