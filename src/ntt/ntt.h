// Number Theoretic Transform engines.
//
// `GsNttEngine` implements the paper's Algorithm 1 (NTT-based negacyclic
// polynomial multiplier) on top of Algorithm 2 (the Gentleman–Sande
// in-place NTT: reverse-order input, normal-order output, twiddles stored
// in bit-reversed order). A classic DIF/DIT pair is provided as an
// independent cross-check, and a schoolbook negacyclic multiplier serves
// as the ground-truth oracle (see poly.h).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ntt/params.h"

namespace cryptopim::ntt {

/// In-place bit-reversal permutation of a power-of-two-length vector.
void bitrev_permute(std::span<std::uint32_t> a);

/// Gentleman–Sande NTT engine bound to one parameter set.
///
/// Precomputes the twiddle tables once; all transforms are in-place and
/// allocation-free. Coefficients are canonical representatives in [0, q).
class GsNttEngine {
 public:
  explicit GsNttEngine(const NttParams& params);

  const NttParams& params() const noexcept { return params_; }

  /// Algorithm 2, literal: log2(n) stages of strides 1, 2, ..., n/2 with
  /// bit-reversed twiddle addressing. Expects bit-reversed input order and
  /// produces normal output order. `twiddle` must be one of the engine's
  /// tables (forward or inverse).
  void transform_gs(std::span<std::uint32_t> a,
                    const std::vector<std::uint32_t>& twiddle) const;

  /// Forward negacyclic NTT: scale by psi^i, bit-reverse, Algorithm 2.
  /// Output in normal order.
  void forward(std::span<std::uint32_t> a) const;

  /// Inverse negacyclic NTT: bit-reverse, Algorithm 2 with w^{-1}
  /// twiddles, scale by n^{-1} psi^{-i}. Output in normal order.
  ///
  /// The paper's Algorithm 1 folds the 1/n factor into the psi^{-i}
  /// post-scaling table (it is omitted in the listing); we do the same.
  void inverse(std::span<std::uint32_t> a) const;

  /// c = a * b over Z_q[x]/(x^n + 1), via Algorithm 1.
  std::vector<std::uint32_t> negacyclic_multiply(
      std::span<const std::uint32_t> a,
      std::span<const std::uint32_t> b) const;

  const std::vector<std::uint32_t>& forward_twiddles() const noexcept {
    return tw_fwd_;
  }
  const std::vector<std::uint32_t>& inverse_twiddles() const noexcept {
    return tw_inv_;
  }
  const std::vector<std::uint32_t>& psi_powers() const noexcept {
    return psi_pow_;
  }
  /// psi^{-i} * n^{-1} mod q, the fused inverse post-scaling table.
  const std::vector<std::uint32_t>& psi_inv_scaled() const noexcept {
    return psi_inv_scaled_;
  }

 private:
  NttParams params_;
  std::vector<std::uint32_t> tw_fwd_;   // w^k, bit-reversed over n/2 entries
  std::vector<std::uint32_t> tw_inv_;   // w^{-k}, bit-reversed
  std::vector<std::uint32_t> psi_pow_;  // psi^i, normal order
  std::vector<std::uint32_t> psi_inv_scaled_;  // psi^{-i} n^{-1}, normal order
};

/// Classic decimation-in-frequency NTT (normal input -> bit-reversed
/// output), used only as an independent correctness cross-check for the
/// Algorithm 2 schedule.
void ntt_dif_classic(std::span<std::uint32_t> a, std::uint32_t omega,
                     std::uint32_t q);

/// Classic decimation-in-time inverse (bit-reversed input -> normal
/// output), unscaled (result is n * INTT).
void ntt_dit_classic(std::span<std::uint32_t> a, std::uint32_t omega,
                     std::uint32_t q);

}  // namespace cryptopim::ntt
