#include "ntt/merged_ntt.h"

#include <cassert>

#include "common/bitutil.h"
#include "ntt/modular.h"

namespace cryptopim::ntt {

MergedNttEngine::MergedNttEngine(const NttParams& params) : params_(params) {
  const std::uint32_t n = params_.n;
  const std::uint32_t q = params_.q;
  psi_brv_.resize(n);
  psi_inv_brv_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto e = static_cast<std::uint32_t>(bit_reverse(i, params_.log2n));
    psi_brv_[i] = pow_mod(params_.psi, e, q);
    psi_inv_brv_[i] = pow_mod(params_.psi_inv, e, q);
  }
  n_inv_ = params_.n_inv;
}

void MergedNttEngine::forward(std::span<std::uint32_t> a) const {
  const std::uint32_t n = params_.n;
  const std::uint32_t q = params_.q;
  assert(a.size() == n);
  // Cooley–Tukey with the psi powers folded in (Longa–Naehrig Alg. 1).
  std::uint32_t t = n;
  for (std::uint32_t m = 1; m < n; m <<= 1) {
    t >>= 1;
    for (std::uint32_t i = 0; i < m; ++i) {
      const std::uint32_t j1 = 2 * i * t;
      const std::uint32_t s = psi_brv_[m + i];
      for (std::uint32_t j = j1; j < j1 + t; ++j) {
        const std::uint32_t u = a[j];
        const std::uint32_t v = mul_mod(a[j + t], s, q);
        a[j] = add_mod(u, v, q);
        a[j + t] = sub_mod(u, v, q);
      }
    }
  }
}

void MergedNttEngine::inverse(std::span<std::uint32_t> a) const {
  const std::uint32_t n = params_.n;
  const std::uint32_t q = params_.q;
  assert(a.size() == n);
  // Gentleman–Sande with psi^{-1} folded in (Longa–Naehrig Alg. 2).
  std::uint32_t t = 1;
  for (std::uint32_t m = n; m > 1; m >>= 1) {
    const std::uint32_t h = m >> 1;
    std::uint32_t j1 = 0;
    for (std::uint32_t i = 0; i < h; ++i) {
      const std::uint32_t s = psi_inv_brv_[h + i];
      for (std::uint32_t j = j1; j < j1 + t; ++j) {
        const std::uint32_t u = a[j];
        const std::uint32_t v = a[j + t];
        a[j] = add_mod(u, v, q);
        a[j + t] = mul_mod(sub_mod(u, v, q), s, q);
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  for (auto& c : a) c = mul_mod(c, n_inv_, q);
}

Poly MergedNttEngine::negacyclic_multiply(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) const {
  const std::uint32_t n = params_.n;
  const std::uint32_t q = params_.q;
  assert(a.size() == n && b.size() == n);
  Poly fa(a.begin(), a.end());
  Poly fb(b.begin(), b.end());
  forward(fa);
  forward(fb);
  for (std::uint32_t i = 0; i < n; ++i) fa[i] = mul_mod(fa[i], fb[i], q);
  inverse(fa);
  return fa;
}

}  // namespace cryptopim::ntt
