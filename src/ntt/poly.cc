#include "ntt/poly.h"

#include <bit>
#include <cassert>

#include "ntt/modular.h"

namespace cryptopim::ntt {

Poly schoolbook_negacyclic(std::span<const std::uint32_t> a,
                           std::span<const std::uint32_t> b, std::uint32_t q) {
  const std::size_t n = a.size();
  assert(b.size() == n);
  Poly c(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t prod = mul_mod(a[i], b[j], q);
      const std::size_t k = i + j;
      if (k < n) {
        c[k] = add_mod(c[k], prod, q);
      } else {
        c[k - n] = sub_mod(c[k - n], prod, q);  // x^n = -1
      }
    }
  }
  return c;
}

Poly poly_add(std::span<const std::uint32_t> a,
              std::span<const std::uint32_t> b, std::uint32_t q) {
  assert(a.size() == b.size());
  Poly c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = add_mod(a[i], b[i], q);
  return c;
}

Poly poly_sub(std::span<const std::uint32_t> a,
              std::span<const std::uint32_t> b, std::uint32_t q) {
  assert(a.size() == b.size());
  Poly c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = sub_mod(a[i], b[i], q);
  return c;
}

Poly sample_uniform(std::uint32_t n, std::uint32_t q, Xoshiro256& rng) {
  Poly p(n);
  for (auto& c : p) c = static_cast<std::uint32_t>(rng.next_below(q));
  return p;
}

Poly sample_cbd(std::uint32_t n, std::uint32_t q, unsigned eta,
                Xoshiro256& rng) {
  assert(eta >= 1 && eta <= 16);
  Poly p(n);
  for (auto& c : p) {
    const std::uint64_t bits_a = rng.next_bits(eta);
    const std::uint64_t bits_b = rng.next_bits(eta);
    const int v = static_cast<int>(std::popcount(bits_a)) -
                  static_cast<int>(std::popcount(bits_b));
    c = v >= 0 ? static_cast<std::uint32_t>(v)
               : q - static_cast<std::uint32_t>(-v);
  }
  return p;
}

Poly sample_ternary(std::uint32_t n, std::uint32_t q, Xoshiro256& rng) {
  Poly p(n);
  for (auto& c : p) {
    switch (rng.next_below(3)) {
      case 0: c = 0; break;
      case 1: c = 1; break;
      default: c = q - 1; break;
    }
  }
  return p;
}

std::int64_t centered(std::uint32_t c, std::uint32_t q) {
  return c > q / 2 ? static_cast<std::int64_t>(c) - q
                   : static_cast<std::int64_t>(c);
}

}  // namespace cryptopim::ntt
