// Host-speed word-level NTT engine.
//
// `WordNttEngine` computes the same negacyclic products as `GsNttEngine`
// (and therefore the same results the gate-level crossbar simulator
// produces) but on flat host words instead of simulated bit-serial
// circuits. The speed comes from two classic tricks, both borrowed from
// production NTT libraries (cf. gmp-ecm's libntt, SNIPPETS.md §2):
//
//  * Shoup multiplication: every constant operand c (twiddles, psi
//    powers, the fused inverse scaling table) is stored with a
//    precomputed reciprocal c' = floor(c * 2^32 / q), so x*c mod q is
//    two 32x32 multiplies and a subtraction — no division, no runtime
//    reduction constant.
//  * Lazy partial reduction: intermediates live in the redundant range
//    [0, 2q) through the whole transform; additions conditionally
//    subtract 2q, Shoup/Barrett products land in [0, 2q) by
//    construction, and a single final `normalize` pass brings the
//    result back to canonical [0, q).
//
// Because every operation is exact modulo q, the canonical output is
// bit-identical to GsNttEngine / the gate-level simulator — that
// equivalence is enforced by tests/test_backend_diff.cc.
//
// Requires q < 2^30 so that the [0, 4q) butterfly intermediates fit in
// 32 bits (every paper modulus is far below this).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ntt/params.h"

namespace cryptopim::ntt {

/// Gentleman–Sande NTT over flat 32-bit words with Shoup/Barrett
/// precomputation and lazy [0, 2q) partial reduction.
class WordNttEngine {
 public:
  /// Observation hook for the reduction-invariant property tests: called
  /// after each arithmetic phase (pre-twist, every butterfly stage, the
  /// inverse post-scale) with the current coefficient vector. Every
  /// value handed to the probe is < 2q.
  using StageProbe = std::function<void(std::span<const std::uint32_t>)>;

  /// Throws std::invalid_argument if params.q >= 2^30.
  explicit WordNttEngine(const NttParams& params);

  const NttParams& params() const noexcept { return params_; }
  std::uint32_t two_q() const noexcept { return twoq_; }

  /// Forward negacyclic NTT (psi pre-twist, bit-reverse, Algorithm 2).
  /// Accepts any 32-bit coefficients (interpreted mod q); output is in
  /// normal order, partial domain [0, 2q).
  void forward_lazy(std::span<std::uint32_t> a) const {
    forward_impl(a, nullptr);
  }
  void forward_lazy(std::span<std::uint32_t> a, const StageProbe& probe) const {
    forward_impl(a, &probe);
  }

  /// Inverse negacyclic NTT (bit-reverse, Algorithm 2 with w^{-1},
  /// fused psi^{-i} n^{-1} post-scale). Expects coefficients in
  /// [0, 2q); output is in normal order, partial domain [0, 2q).
  void inverse_lazy(std::span<std::uint32_t> a) const {
    inverse_impl(a, nullptr);
  }
  void inverse_lazy(std::span<std::uint32_t> a, const StageProbe& probe) const {
    inverse_impl(a, &probe);
  }

  /// a[i] = a[i] * b[i] mod q via Barrett with the precomputed 2^64
  /// reciprocal; inputs in [0, 2q), outputs in [0, 2q).
  void pointwise_lazy(std::span<std::uint32_t> a,
                      std::span<const std::uint32_t> b) const;

  /// The single final conditional-subtract pass: [0, 2q) -> [0, q).
  void normalize(std::span<std::uint32_t> a) const noexcept;

  /// c = a * b over Z_q[x]/(x^n + 1); canonical [0, q) output,
  /// bit-exact vs GsNttEngine::negacyclic_multiply.
  std::vector<std::uint32_t> negacyclic_multiply(
      std::span<const std::uint32_t> a,
      std::span<const std::uint32_t> b) const;

 private:
  void forward_impl(std::span<std::uint32_t> a, const StageProbe* probe) const;
  void inverse_impl(std::span<std::uint32_t> a, const StageProbe* probe) const;
  void transform_lazy(std::span<std::uint32_t> a,
                      const std::vector<std::uint32_t>& tw,
                      const std::vector<std::uint32_t>& tw_shoup,
                      const StageProbe* probe) const;

  NttParams params_;
  std::uint32_t twoq_ = 0;
  std::uint64_t barrett_mu_ = 0;  ///< floor(2^64 / q)
  // Same tables and ordering as GsNttEngine, each paired with its Shoup
  // reciprocal table.
  std::vector<std::uint32_t> tw_fwd_, tw_fwd_shoup_;
  std::vector<std::uint32_t> tw_inv_, tw_inv_shoup_;
  std::vector<std::uint32_t> psi_pow_, psi_pow_shoup_;
  std::vector<std::uint32_t> psi_inv_scaled_, psi_inv_scaled_shoup_;
};

}  // namespace cryptopim::ntt
