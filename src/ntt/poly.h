// Polynomial helpers over R_q = Z_q[x]/(x^n + 1): schoolbook oracle,
// samplers for RLWE-style workloads, and elementary ring operations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace cryptopim::ntt {

using Poly = std::vector<std::uint32_t>;

/// Ground-truth negacyclic product, O(n^2):
/// c_k = sum_{i+j=k} a_i b_j - sum_{i+j=k+n} a_i b_j (mod q).
Poly schoolbook_negacyclic(std::span<const std::uint32_t> a,
                           std::span<const std::uint32_t> b, std::uint32_t q);

/// Coefficient-wise addition mod q.
Poly poly_add(std::span<const std::uint32_t> a,
              std::span<const std::uint32_t> b, std::uint32_t q);

/// Coefficient-wise subtraction mod q.
Poly poly_sub(std::span<const std::uint32_t> a,
              std::span<const std::uint32_t> b, std::uint32_t q);

/// Uniform polynomial with coefficients in [0, q).
Poly sample_uniform(std::uint32_t n, std::uint32_t q, Xoshiro256& rng);

/// Centered binomial distribution with parameter eta (the RLWE "small
/// error" sampler used by Kyber/NewHope-style schemes), mapped into [0, q).
Poly sample_cbd(std::uint32_t n, std::uint32_t q, unsigned eta,
                Xoshiro256& rng);

/// Ternary polynomial with coefficients in {-1, 0, 1} mapped into [0, q).
Poly sample_ternary(std::uint32_t n, std::uint32_t q, Xoshiro256& rng);

/// Centered representative in (-q/2, q/2] of a canonical coefficient.
std::int64_t centered(std::uint32_t c, std::uint32_t q);

}  // namespace cryptopim::ntt
