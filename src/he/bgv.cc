#include "he/bgv.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/bitutil.h"
#include "ntt/modular.h"

namespace cryptopim::he {

namespace {

// c * k mod q, coefficient-wise scalar multiplication.
ntt::Poly scalar_mul(const ntt::Poly& p, std::uint32_t k, std::uint32_t q) {
  ntt::Poly out(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) out[i] = ntt::mul_mod(p[i], k, q);
  return out;
}

ntt::Poly negate(const ntt::Poly& p, std::uint32_t q) {
  ntt::Poly out(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) out[i] = ntt::sub_mod(0, p[i], q);
  return out;
}

}  // namespace

BgvContext::BgvContext(const BgvParams& params, std::uint64_t seed)
    : params_(params),
      ring_(ntt::NttParams::make(params.n, params.q)),
      engine_(ring_),
      rng_(seed) {
  if (params.q % params.t == 0) {
    throw std::invalid_argument("plaintext modulus must be coprime to q");
  }
  if (params.relin_base < 2) {
    throw std::invalid_argument("relinearization base must be >= 2");
  }
  multiplier_ = [this](const ntt::Poly& a, const ntt::Poly& b) {
    return engine_.negacyclic_multiply(a, b);
  };
}

ntt::Poly BgvContext::mul(const ntt::Poly& a, const ntt::Poly& b) {
  ++mul_count_;
  return multiplier_(a, b);
}

void BgvContext::keygen() {
  sk_ = ntt::sample_ternary(params_.n, params_.q, rng_);
  has_key_ = true;

  // Relinearization key: ksk_i = (a_i*s + t*e_i + T^i * s^2, -a_i).
  const ntt::Poly sk2 = mul(sk_, sk_);
  relin_key_.clear();
  std::uint64_t power = 1;
  while (true) {
    const ntt::Poly a = ntt::sample_uniform(params_.n, params_.q, rng_);
    const ntt::Poly e = ntt::sample_cbd(params_.n, params_.q, params_.eta, rng_);
    Ciphertext ksk;
    ksk.c0 = ntt::poly_add(
        ntt::poly_add(mul(a, sk_), scalar_mul(e, params_.t, params_.q),
                      params_.q),
        scalar_mul(sk2, static_cast<std::uint32_t>(power % params_.q),
                   params_.q),
        params_.q);
    ksk.c1 = negate(a, params_.q);
    relin_key_.push_back(std::move(ksk));
    if (power >= (params_.q + params_.relin_base - 1) / params_.relin_base) {
      break;  // T^i covers [0, q)
    }
    power *= params_.relin_base;
  }
}

Ciphertext BgvContext::encrypt(const ntt::Poly& m) {
  if (!has_key_) throw std::logic_error("encrypt before keygen");
  if (m.size() != params_.n) {
    throw std::invalid_argument("plaintext size does not match the ring");
  }
  for (const auto c : m) {
    if (c >= params_.t) {
      throw std::invalid_argument("plaintext coefficient >= t");
    }
  }

  const ntt::Poly a = ntt::sample_uniform(params_.n, params_.q, rng_);
  const ntt::Poly e = ntt::sample_cbd(params_.n, params_.q, params_.eta, rng_);
  Ciphertext ct;
  ct.c0 = ntt::poly_add(
      ntt::poly_add(mul(a, sk_), scalar_mul(e, params_.t, params_.q),
                    params_.q),
      m, params_.q);
  ct.c1 = negate(a, params_.q);
  return ct;
}

ntt::Poly BgvContext::noise_polynomial(const Ciphertext& c) const {
  assert(has_key_);
  // const_cast-free recomputation: use the engine directly (noise probes
  // are diagnostics, not accelerator workload).
  const ntt::Poly c1s = engine_.negacyclic_multiply(c.c1, sk_);
  return ntt::poly_add(c.c0, c1s, params_.q);
}

ntt::Poly BgvContext::decrypt(const Ciphertext& c) const {
  const ntt::Poly v = noise_polynomial(c);
  ntt::Poly m(params_.n);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const std::int64_t centered = ntt::centered(v[i], params_.q);
    m[i] = static_cast<std::uint32_t>(
        ((centered % params_.t) + params_.t) % params_.t);
  }
  return m;
}

ntt::Poly BgvContext::decrypt(const Ciphertext2& c) const {
  assert(has_key_);
  const ntt::Poly s2 = engine_.negacyclic_multiply(sk_, sk_);
  const ntt::Poly v = ntt::poly_add(
      ntt::poly_add(c.d0, engine_.negacyclic_multiply(c.d1, sk_), params_.q),
      engine_.negacyclic_multiply(c.d2, s2), params_.q);
  ntt::Poly m(params_.n);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const std::int64_t centered = ntt::centered(v[i], params_.q);
    m[i] = static_cast<std::uint32_t>(
        ((centered % params_.t) + params_.t) % params_.t);
  }
  return m;
}

Ciphertext BgvContext::add(const Ciphertext& a, const Ciphertext& b) const {
  return Ciphertext{ntt::poly_add(a.c0, b.c0, params_.q),
                    ntt::poly_add(a.c1, b.c1, params_.q)};
}

Ciphertext2 BgvContext::multiply(const Ciphertext& a, const Ciphertext& b) {
  Ciphertext2 out;
  out.d0 = mul(a.c0, b.c0);
  out.d1 = ntt::poly_add(mul(a.c0, b.c1), mul(a.c1, b.c0), params_.q);
  out.d2 = mul(a.c1, b.c1);
  return out;
}

Ciphertext BgvContext::relinearize(const Ciphertext2& c) {
  assert(has_key_ && !relin_key_.empty());
  // Decompose d2 in base T; each digit polynomial has small coefficients,
  // bounding the key-switching noise.
  const std::uint32_t T = params_.relin_base;
  Ciphertext out{c.d0, c.d1};
  ntt::Poly remaining = c.d2;
  for (const auto& ksk : relin_key_) {
    ntt::Poly digit(params_.n);
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      digit[i] = remaining[i] % T;
      remaining[i] /= T;
    }
    out.c0 = ntt::poly_add(out.c0, mul(digit, ksk.c0), params_.q);
    out.c1 = ntt::poly_add(out.c1, mul(digit, ksk.c1), params_.q);
  }
  return out;
}

std::vector<ntt::Poly> BgvContext::keygen_threshold(unsigned parties) {
  if (parties == 0) {
    throw std::invalid_argument("threshold keygen needs at least one share");
  }
  std::vector<ntt::Poly> shares;
  shares.reserve(parties);
  ntt::Poly joint(params_.n);
  for (unsigned k = 0; k < parties; ++k) {
    ntt::Poly s = ntt::sample_ternary(params_.n, params_.q, rng_);
    joint = ntt::poly_add(joint, s, params_.q);
    shares.push_back(std::move(s));
  }
  sk_ = std::move(joint);
  relin_key_.clear();
  has_key_ = true;
  return shares;
}

ntt::Poly BgvContext::partial_decryption(const Ciphertext& c,
                                         const ntt::Poly& share) {
  return mul(c.c1, share);
}

ntt::Poly BgvContext::aggregate_decrypt(
    const Ciphertext& c, const std::vector<ntt::Poly>& partials) const {
  ntt::Poly v = c.c0;
  for (const auto& p : partials) v = ntt::poly_add(v, p, params_.q);
  ntt::Poly m(params_.n);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const std::int64_t centered = ntt::centered(v[i], params_.q);
    m[i] = static_cast<std::uint32_t>(
        ((centered % params_.t) + params_.t) % params_.t);
  }
  return m;
}

double BgvContext::noise_budget_bits(const Ciphertext& c) const {
  const ntt::Poly v = noise_polynomial(c);
  std::int64_t worst = 1;
  for (const auto coeff : v) {
    worst = std::max<std::int64_t>(
        worst, std::llabs(ntt::centered(coeff, params_.q)));
  }
  return std::log2(static_cast<double>(params_.q) / 2.0 /
                   static_cast<double>(worst));
}

}  // namespace cryptopim::he
