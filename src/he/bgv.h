// A BGV-flavoured leveled homomorphic encryption scheme over R_q.
//
// The paper motivates CryptoPIM with "data in use via homomorphic
// encryption cryptosystems defined on RLWE lattices, e.g., BGV". This
// module implements the symmetric-key BGV core whose entire computational
// weight is negacyclic polynomial multiplication — the operation the
// accelerator executes:
//   Enc(m):  c = (a*s + t*e + m, -a)            noise t*e, message mod t
//   Dec(c):  ((c0 + c1*s) mod q, centered) mod t
//   Add:     component-wise
//   Mult:    tensor to a degree-2 ciphertext (decryptable with 1, s, s^2)
//   Relin:   base-T key switching back to degree 1
//
// The multiplier is pluggable: by default the software NTT engine, and the
// examples wire in the simulated CryptoPIM accelerator so every ring
// multiplication runs in crossbars.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "ntt/ntt.h"
#include "ntt/params.h"
#include "ntt/poly.h"

namespace cryptopim::he {

struct BgvParams {
  std::uint32_t n = 256;       ///< ring degree
  std::uint32_t q = 786433;    ///< ciphertext modulus (NTT-friendly)
  std::uint32_t t = 2;         ///< plaintext modulus, coprime to q
  unsigned eta = 1;            ///< CBD noise parameter
  std::uint32_t relin_base = 16;  ///< base T of the key-switching digits

  /// The paper-flavoured default: Kyber-sized ring, SEAL-family modulus.
  static BgvParams paper_small() { return BgvParams{}; }
};

struct Ciphertext {
  ntt::Poly c0, c1;
};

/// Degree-2 ciphertext produced by multiplication, decryptable with
/// (1, s, s^2) until relinearized.
struct Ciphertext2 {
  ntt::Poly d0, d1, d2;
};

class BgvContext {
 public:
  using Multiplier =
      std::function<ntt::Poly(const ntt::Poly&, const ntt::Poly&)>;

  BgvContext(const BgvParams& params, std::uint64_t seed);

  const BgvParams& params() const noexcept { return params_; }
  const ntt::NttParams& ring() const noexcept { return ring_; }

  /// Replace the ring multiplier (e.g. with the CryptoPIM simulator).
  void set_multiplier(Multiplier m) { multiplier_ = std::move(m); }
  /// Ring multiplications performed so far (all of them go through the
  /// pluggable multiplier — the accelerator's workload).
  std::uint64_t multiplications() const noexcept { return mul_count_; }

  /// Sample a fresh secret key (also derives the relinearization key).
  void keygen();

  /// Plaintexts are polynomials with coefficients in [0, t).
  Ciphertext encrypt(const ntt::Poly& m);
  ntt::Poly decrypt(const Ciphertext& c) const;
  ntt::Poly decrypt(const Ciphertext2& c) const;

  Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;
  Ciphertext2 multiply(const Ciphertext& a, const Ciphertext& b);
  /// Key-switch a degree-2 ciphertext back to degree 1.
  Ciphertext relinearize(const Ciphertext2& c);

  /// Worst-case remaining noise budget of a ciphertext in bits:
  /// log2(q / (2 * |noise|_inf * t)) — <= 0 means decryption may fail.
  double noise_budget_bits(const Ciphertext& c) const;

  // -- threshold decryption (additive secret sharing) ------------------------
  // The joint secret is s = sum_k s_k; by linearity of decryption,
  // Dec(c) = c0 + c1*s = c0 + sum_k (c1*s_k), so each share holder can
  // contribute its partial p_k = c1*s_k independently (one ring
  // multiplication per holder — the fan-out the serving DAG models) and
  // the host aggregates them without ever reconstructing s.

  /// Sample `parties` ternary shares and install their sum as the secret
  /// key. Returns the shares, one per holder. No relinearization key is
  /// derived — the threshold flow never multiplies ciphertexts.
  std::vector<ntt::Poly> keygen_threshold(unsigned parties);
  /// One share holder's partial decryption p_k = c1 * s_k. Runs through
  /// the pluggable multiplier, so a lane-backed hook sees every share.
  ntt::Poly partial_decryption(const Ciphertext& c, const ntt::Poly& share);
  /// Host-side join: ((c0 + sum p_k) mod q, centered) mod t.
  ntt::Poly aggregate_decrypt(const Ciphertext& c,
                              const std::vector<ntt::Poly>& partials) const;

 private:
  ntt::Poly mul(const ntt::Poly& a, const ntt::Poly& b);
  ntt::Poly noise_polynomial(const Ciphertext& c) const;

  BgvParams params_;
  ntt::NttParams ring_;
  ntt::GsNttEngine engine_;
  Multiplier multiplier_;
  Xoshiro256 rng_;
  std::uint64_t mul_count_ = 0;

  ntt::Poly sk_;                      // s
  std::vector<Ciphertext> relin_key_; // ksk_i encrypts T^i * s^2
  bool has_key_ = false;
};

}  // namespace cryptopim::he
