#include "arch/chip.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/bitutil.h"

namespace cryptopim::arch {

unsigned ChipConfig::bank_blocks_for_degree(std::uint32_t n) {
  assert(is_pow2(n) && n >= 4);
  return 3 * ilog2(n) + 4;
}

DegreePlan ChipConfig::plan_for_degree(std::uint32_t n) const {
  return plan_for_degree(n, 0);
}

DegreePlan ChipConfig::plan_for_degree(std::uint32_t n,
                                       unsigned failed_banks) const {
  if (!is_pow2(n) || n < 4) {
    throw std::invalid_argument("degree must be a power of two >= 4");
  }
  // Spares absorb failures one-for-one; only the excess eats into the
  // working set.
  const unsigned covered = std::min(failed_banks, spare_banks);
  const unsigned lost = failed_banks - covered;
  if (lost >= total_banks) {
    throw std::runtime_error("chip out of banks: no superbank can be formed");
  }
  const unsigned usable = total_banks - lost;

  DegreePlan plan;
  plan.n = n;
  plan.failed_banks = failed_banks;
  plan.spares_used = covered;
  plan.degraded = lost > 0;
  if (n <= design_max_n) {
    plan.banks_per_softbank =
        n <= kElementsPerBank ? 1u : n / kElementsPerBank;
    plan.banks_per_superbank = 2 * plan.banks_per_softbank;
    plan.superbanks = usable / plan.banks_per_superbank;
    plan.segments = 1;
  } else {
    // Inputs above the design point are cut into 32k segments and fed
    // through the hardware iteratively (Section III-D.2).
    plan.banks_per_softbank = design_max_n / kElementsPerBank;
    plan.banks_per_superbank = 2 * plan.banks_per_softbank;
    plan.superbanks = usable / plan.banks_per_superbank;
    plan.segments = n / design_max_n;
  }
  if (plan.superbanks == 0) {
    throw std::runtime_error(
        "chip out of banks: no superbank can be formed at this degree");
  }
  return plan;
}

}  // namespace cryptopim::arch
