#include "arch/chip.h"

#include <cassert>
#include <stdexcept>

#include "common/bitutil.h"

namespace cryptopim::arch {

unsigned ChipConfig::bank_blocks_for_degree(std::uint32_t n) {
  assert(is_pow2(n) && n >= 4);
  return 3 * ilog2(n) + 4;
}

DegreePlan ChipConfig::plan_for_degree(std::uint32_t n) const {
  if (!is_pow2(n) || n < 4) {
    throw std::invalid_argument("degree must be a power of two >= 4");
  }
  DegreePlan plan;
  plan.n = n;
  if (n <= design_max_n) {
    plan.banks_per_softbank =
        n <= kElementsPerBank ? 1u : n / kElementsPerBank;
    plan.banks_per_superbank = 2 * plan.banks_per_softbank;
    plan.superbanks = total_banks / plan.banks_per_superbank;
    plan.segments = 1;
  } else {
    // Inputs above the design point are cut into 32k segments and fed
    // through the hardware iteratively (Section III-D.2).
    plan.banks_per_softbank = design_max_n / kElementsPerBank;
    plan.banks_per_superbank = 2 * plan.banks_per_softbank;
    plan.superbanks = total_banks / plan.banks_per_superbank;
    plan.segments = n / design_max_n;
  }
  assert(plan.superbanks >= 1);
  return plan;
}

}  // namespace cryptopim::arch
