#include "arch/pipeline.h"

#include <cassert>

#include "common/bitutil.h"
#include "ntt/params.h"

namespace cryptopim::arch {

const char* to_string(PipelineVariant v) {
  switch (v) {
    case PipelineVariant::kAreaEfficient: return "area-efficient";
    case PipelineVariant::kNaive: return "naive";
    case PipelineVariant::kCryptoPim: return "cryptopim";
  }
  return "?";
}

namespace {

using Ops = std::vector<StageOp>;

void emit(PipelineSpec& spec, StagePhase phase, std::string name, Ops ops) {
  spec.stages.push_back(StageSpec{std::move(name), phase, std::move(ops)});
}

// A coefficient-multiply phase (psi-scale, point-wise, psi^{-1}-scale):
// one multiplication followed by one Montgomery reduction.
void emit_scale(PipelineSpec& spec, PipelineVariant v, StagePhase phase,
                const std::string& label) {
  switch (v) {
    case PipelineVariant::kAreaEfficient:
      emit(spec, phase, label,
           {StageOp::kTransferIn, StageOp::kMult, StageOp::kMontgomery});
      break;
    case PipelineVariant::kNaive:
    case PipelineVariant::kCryptoPim:
      emit(spec, phase, label + "/mult", {StageOp::kTransferIn, StageOp::kMult});
      emit(spec, phase, label + "/mont",
           {StageOp::kTransferIn, StageOp::kMontgomery});
      break;
  }
}

// One butterfly level of the (forward or inverse) NTT.
void emit_level(PipelineSpec& spec, PipelineVariant v, StagePhase phase,
                const std::string& label) {
  switch (v) {
    case PipelineVariant::kAreaEfficient:
      // Whole butterfly + both reductions fused into one block.
      emit(spec, phase, label,
           {StageOp::kTransferIn, StageOp::kAdd, StageOp::kBarrett,
            StageOp::kSub, StageOp::kMult, StageOp::kMontgomery});
      break;
    case PipelineVariant::kNaive:
      // Every computation and every modulo in its own block (Fig. 4b).
      emit(spec, phase, label + "/add", {StageOp::kTransferIn, StageOp::kAdd});
      emit(spec, phase, label + "/barrett",
           {StageOp::kTransferIn, StageOp::kBarrett});
      emit(spec, phase, label + "/sub", {StageOp::kTransferIn, StageOp::kSub});
      emit(spec, phase, label + "/mult", {StageOp::kTransferIn, StageOp::kMult});
      emit(spec, phase, label + "/mont",
           {StageOp::kTransferIn, StageOp::kMontgomery});
      break;
    case PipelineVariant::kCryptoPim:
      // Fig. 4c: [sub+mult] then [Montgomery + add + Barrett] — the
      // reductions of one element ride with the addition of the other,
      // balancing the two blocks.
      emit(spec, phase, label + "/sub-mult",
           {StageOp::kTransferIn, StageOp::kSub, StageOp::kMult});
      emit(spec, phase, label + "/mont-add-barrett",
           {StageOp::kTransferIn, StageOp::kMontgomery, StageOp::kAdd,
            StageOp::kBarrett});
      break;
  }
}

}  // namespace

PipelineSpec PipelineSpec::build(std::uint32_t n, PipelineVariant variant) {
  assert(is_pow2(n) && n >= 4);
  PipelineSpec spec;
  spec.n = n;
  spec.bitwidth = ntt::paper_bitwidth_for_degree(n);
  spec.q = ntt::paper_modulus_for_degree(n);
  spec.variant = variant;

  const unsigned levels = ilog2(n);
  emit_scale(spec, variant, StagePhase::kPsiScale, "psi");
  for (unsigned i = 0; i < levels; ++i) {
    emit_level(spec, variant, StagePhase::kForwardNtt,
               "fwd" + std::to_string(i));
  }
  emit_scale(spec, variant, StagePhase::kPointwise, "pointwise");
  for (unsigned i = 0; i < levels; ++i) {
    emit_level(spec, variant, StagePhase::kInverseNtt,
               "inv" + std::to_string(i));
  }
  emit_scale(spec, variant, StagePhase::kPsiInvScale, "psi-inv");

  if (variant == PipelineVariant::kCryptoPim) {
    assert(spec.stages.size() == cryptopim_depth(levels));
  }
  return spec;
}

}  // namespace cryptopim::arch
