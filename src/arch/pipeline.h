// Pipeline construction for the three arrangements of Fig. 4.
//
// The NTT-based polynomial multiplier (Algorithm 1) is a linear chain:
//   psi-scale -> log2(n) forward butterfly levels -> point-wise multiply
//   -> log2(n) inverse butterfly levels -> psi^{-1}-scale
// Each butterfly level computes, per element pair:
//   A[j]  = Barrett(T + A[j'])
//   A[j'] = Montgomery(W * (T - A[j']))
// A pipeline variant decides how these primitive operations are grouped
// into memory blocks (= pipeline stages):
//   (a) kAreaEfficient — a whole butterfly (compute + both reductions)
//       per block: fewest blocks, slowest stage (paper: 2700 cycles at
//       n=256 / 16-bit).
//   (b) kNaive        — every primitive in its own block (paper: 1756).
//   (c) kCryptoPim    — [sub + mult] and [Montgomery + add + Barrett]
//       blocks: the balanced grouping (paper: 1643).
// Every stage starts with a fixed-function-switch transfer from the
// previous block (3 * bitwidth cycles for the three routes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cryptopim::arch {

enum class PipelineVariant { kAreaEfficient, kNaive, kCryptoPim };

const char* to_string(PipelineVariant v);

/// Primitive operations a stage performs (latency comes from a
/// model::LatencySet, keeping structure and timing separate).
enum class StageOp : std::uint8_t {
  kTransferIn,   ///< fixed-function switch hop from the previous block
  kAdd,          ///< T + A[j']
  kSub,          ///< T - A[j']
  kMult,         ///< W * (...), or point-wise/psi coefficient multiply
  kBarrett,      ///< reduction after addition
  kMontgomery,   ///< reduction after multiplication
};

/// Phase of the multiplier a stage belongs to (for reporting).
enum class StagePhase : std::uint8_t {
  kPsiScale,
  kForwardNtt,
  kPointwise,
  kInverseNtt,
  kPsiInvScale,
};

struct StageSpec {
  std::string name;
  StagePhase phase;
  std::vector<StageOp> ops;
};

/// A full multiplier pipeline for one degree and variant.
struct PipelineSpec {
  std::uint32_t n = 0;
  unsigned bitwidth = 0;
  std::uint32_t q = 0;
  PipelineVariant variant = PipelineVariant::kCryptoPim;
  std::vector<StageSpec> stages;

  static PipelineSpec build(std::uint32_t n, PipelineVariant variant);

  std::size_t depth() const noexcept { return stages.size(); }
};

/// Expected CryptoPIM pipeline depth: 2 stages per butterfly level
/// (forward + inverse) plus 2 each for psi-scale, point-wise multiply and
/// psi^{-1}-scale. Reproduces Table II: 38/42/46 stages for 256/512/1024.
constexpr std::size_t cryptopim_depth(unsigned log2n) {
  return 4ull * log2n + 6;
}

}  // namespace cryptopim::arch
