// The configurable CryptoPIM chip (Section III-D.2).
//
// Hierarchy: a *bank* is a chain of memory blocks implementing the full
// pipeline for a 512-element slice of a polynomial. A *softbank* gangs
// b_m = n/512 banks to hold one n-coefficient polynomial; a *superbank*
// pairs two softbanks to multiply two polynomials. The chip is provisioned
// for 32k-degree inputs (64 banks per polynomial, 128 banks per
// multiplication); smaller degrees re-partition the same banks into many
// superbanks for parallel multiplications, larger degrees are processed
// iteratively in 32k segments.
#pragma once

#include <cstdint>

#include "arch/pipeline.h"

namespace cryptopim::arch {

inline constexpr std::uint32_t kElementsPerBank = 512;

/// How the chip executes multiplications of a given degree.
struct DegreePlan {
  std::uint32_t n = 0;
  unsigned banks_per_softbank = 0;  ///< b_m = ceil(n/512), per polynomial
  unsigned banks_per_superbank = 0;
  unsigned superbanks = 0;   ///< parallel multiplications in flight
  unsigned segments = 1;     ///< >1: iterative 32k-segment processing
  // -- graceful degradation (reliability) -----------------------------------
  unsigned failed_banks = 0;  ///< banks out of service when planning
  unsigned spares_used = 0;   ///< chip spares covering failed banks
  /// Failures exceeded the spare pool: the plan runs fewer parallel
  /// multiplications than a healthy chip would.
  bool degraded = false;
};

struct ChipConfig {
  /// The degree the hardware is provisioned for (paper: 32k).
  std::uint32_t design_max_n = 32768;
  /// Memory blocks chained per bank. The paper counts 49 blocks for the
  /// 32k pipeline: a 3-blocks-per-level split ([sub+mult] / [Montgomery] /
  /// [add+Barrett]) with the forward chain reused for the inverse pass
  /// plus 2 blocks each for psi-scaling and the point-wise multiply:
  /// 3*log2(n) + 4 = 49 at n = 32k.
  unsigned blocks_per_bank = 49;
  /// 64 banks per input polynomial at 32k -> 128 per multiplication.
  unsigned total_banks = 128;
  /// Spare banks held out of the working set for bank-level repair
  /// (reliability layer). Spares stand in for failed working banks
  /// one-for-one; only failures beyond the spare pool shrink the plan.
  unsigned spare_banks = 8;

  static ChipConfig paper_chip() { return ChipConfig{}; }

  /// Block count of a bank provisioned for degree n (3*log2(n) + 4).
  static unsigned bank_blocks_for_degree(std::uint32_t n);

  /// Partition (or segment) the chip for a given polynomial degree.
  DegreePlan plan_for_degree(std::uint32_t n) const;

  /// Same, but with `failed_banks` banks out of service. Spares absorb
  /// failures one-for-one; once the pool is dry the usable bank count
  /// shrinks and the plan degrades to fewer superbanks (never fewer
  /// than 1 — a chip that cannot host a single superbank throws).
  DegreePlan plan_for_degree(std::uint32_t n, unsigned failed_banks) const;

  /// Total memory blocks on the chip.
  std::uint64_t total_blocks() const {
    return static_cast<std::uint64_t>(blocks_per_bank) * total_banks;
  }
  /// Raw crossbar capacity in bits (512 x 512 cells per block).
  std::uint64_t total_cells() const { return total_blocks() * 512ull * 512ull; }
};

}  // namespace cryptopim::arch
