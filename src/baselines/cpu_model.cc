#include "baselines/cpu_model.h"

#include <cmath>

#include "common/bitutil.h"
#include "model/paper_constants.h"

namespace cryptopim::baselines {

double CpuModel::op_count(std::uint32_t n) {
  // Algorithm 1: three NTT passes of (n/2) log2(n) butterflies, plus the
  // psi-scale (x2), point-wise and psi^{-1}-scale element passes (~4n
  // single-multiply operations, each counted as one butterfly-equivalent).
  const double log2n = ilog2(n);
  return 3.0 * (n / 2.0) * log2n + 4.0 * n;
}

CpuModel CpuModel::paper_calibrated() {
  // Affine fit latency = slope * ops + intercept through the first and
  // last published gem5 rows (n = 256 and n = 32k); the intercept absorbs
  // the call/setup overhead a pure op count misses. The six interior rows
  // are predictions (within ~15%, see tests).
  CpuModel m;
  const auto& rows = model::paper::cpu_rows();
  const auto& lo = rows.front();
  const auto& hi = rows.back();
  const double ops_lo = op_count(lo.n);
  const double ops_hi = op_count(hi.n);
  m.cycles_per_op_ =
      (hi.latency_us - lo.latency_us) / (ops_hi - ops_lo);  // us/op for now
  m.lat_intercept_us_ = lo.latency_us - m.cycles_per_op_ * ops_lo;
  m.energy_per_op_nj_ =
      (hi.energy_uj - lo.energy_uj) / (ops_hi - ops_lo) * 1e3;  // nJ/op
  m.en_intercept_uj_ = lo.energy_uj - m.energy_per_op_nj_ * 1e-3 * ops_lo;
  // us/op -> cycles/op at the paper's 2 GHz clock.
  m.cycles_per_op_ *= m.clock_ghz_ * 1e3;
  return m;
}

CpuPrediction CpuModel::predict(std::uint32_t n) const {
  CpuPrediction p;
  p.n = n;
  p.butterflies = op_count(n);
  p.latency_us =
      p.butterflies * cycles_per_op_ / (clock_ghz_ * 1e3) + lat_intercept_us_;
  p.energy_uj = p.butterflies * energy_per_op_nj_ * 1e-3 + en_intercept_uj_;
  p.throughput_per_s = 1e6 / p.latency_us;
  return p;
}

}  // namespace cryptopim::baselines
