#include "baselines/pim_baselines.h"

#include <algorithm>
#include <cassert>

#include "ntt/params.h"
#include "ntt/reduction.h"
#include "pim/circuits/arith.h"
#include "pim/device.h"

namespace cryptopim::baselines {

const char* to_string(PimBaseline b) {
  switch (b) {
    case PimBaseline::kBp1: return "BP-1";
    case PimBaseline::kBp2: return "BP-2";
    case PimBaseline::kBp3: return "BP-3";
    case PimBaseline::kCryptoPim: return "CryptoPIM";
  }
  return "?";
}

std::uint64_t mult_cycles_rect_cryptopim(unsigned w, unsigned v) {
  const std::uint64_t m = std::max(w, v);
  return (13ull * w * v - 23ull * m + 6) / 2;  // 6.5WV - 11.5max + 3
}

std::uint64_t mult_cycles_rect_hajali(unsigned w, unsigned v) {
  const std::uint64_t m = std::max(w, v);
  return 13ull * w * v - 14ull * m + 6;
}

namespace {

using MultFn = std::uint64_t (*)(unsigned, unsigned);

// Multiplication-based Barrett reduction of a 2N-bit value:
// u = (a * m) >> k (2N x N multiply), u * q (N x N multiply), a - u*q.
std::uint64_t reduction_by_multiplication(unsigned n_bits, MultFn mult) {
  return mult(2 * n_bits, n_bits) + mult(n_bits, n_bits) +
         pim::circuits::sub_cycles(2 * n_bits);
}

// Untrimmed shift-add chains: every combining step is a full-width
// (2N-bit) add/sub; term counts come from the actual constants.
std::uint64_t barrett_shift_add_untrimmed(std::uint32_t q, unsigned n_bits) {
  const auto spec = ntt::BarrettShiftAdd::paper_spec(q);
  const std::uint64_t combine = pim::circuits::add_cycles(2 * n_bits);
  const std::uint64_t quotient_steps = spec.quotient_terms().size() - 1;
  const std::uint64_t uq_steps = spec.q_terms().size() - 1;
  return (quotient_steps + uq_steps) * combine +
         pim::circuits::sub_cycles(2 * n_bits);
}

std::uint64_t montgomery_shift_add_untrimmed(std::uint32_t q,
                                             unsigned n_bits) {
  const auto spec = ntt::MontgomeryShiftAdd::paper_spec(q);
  const std::uint64_t combine = pim::circuits::add_cycles(2 * n_bits);
  const std::uint64_t m_steps = spec.qprime_terms().size() - 1;
  const std::uint64_t mq_steps = spec.q_terms().size() - 1;
  return (m_steps + mq_steps) * combine + combine;  // + final (a + mq)
}

}  // namespace

model::LatencySet baseline_latency(PimBaseline b, std::uint32_t n) {
  if (b == PimBaseline::kCryptoPim) return model::paper_latency(n);

  model::LatencySet s;
  s.n = n;
  s.q = ntt::paper_modulus_for_degree(n);
  s.bitwidth = ntt::paper_bitwidth_for_degree(n);
  s.add = pim::circuits::add_cycles(s.bitwidth);
  s.sub = pim::circuits::sub_cycles(s.bitwidth);
  s.transfer = 3ull * s.bitwidth;

  const MultFn mult = b == PimBaseline::kBp1 ? mult_cycles_rect_hajali
                                             : mult_cycles_rect_cryptopim;
  s.mult = mult(s.bitwidth, s.bitwidth);

  switch (b) {
    case PimBaseline::kBp1:
    case PimBaseline::kBp2:
      s.barrett = reduction_by_multiplication(s.bitwidth, mult);
      s.montgomery = s.barrett;  // same multiplication-based routine
      break;
    case PimBaseline::kBp3:
      s.barrett = barrett_shift_add_untrimmed(s.q, s.bitwidth);
      s.montgomery = montgomery_shift_add_untrimmed(s.q, s.bitwidth);
      break;
    case PimBaseline::kCryptoPim:
      break;  // handled above
  }
  return s;
}

model::PipelinePerf evaluate_baseline(PimBaseline b, std::uint32_t n) {
  return model::evaluate_non_pipelined(n, baseline_latency(b, n),
                                       model::EnergyModel::calibrated(),
                                       pim::DeviceModel::paper_45nm());
}

}  // namespace cryptopim::baselines
