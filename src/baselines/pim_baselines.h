// PIM baselines of Fig. 6 (Section IV-C).
//
//   BP-1: the multiplier of Haj-Ali et al. [35] everywhere (butterfly and
//         inside the reductions); modulo via multiplication-based Barrett
//         (two wide multiplications + subtract).
//   BP-2: BP-1 with every N-bit multiplication replaced by the CryptoPIM
//         multiplier (same multiplication-based reductions).
//   BP-3: BP-2 with the reductions converted to shift-and-add chains
//         (uniform full-width adds, no bit-level trimming).
//   CryptoPIM: BP-3 with the width-trimmed reductions of Table I.
//
// All four share the architecture (blocks, switches, non-pipelined
// area-efficient chain), so the comparison isolates the arithmetic.
#pragma once

#include <cstdint>
#include <vector>

#include "model/latency.h"
#include "model/performance.h"

namespace cryptopim::baselines {

enum class PimBaseline { kBp1, kBp2, kBp3, kCryptoPim };

const char* to_string(PimBaseline b);

inline const std::vector<PimBaseline>& all_pim_baselines() {
  static const std::vector<PimBaseline> all = {
      PimBaseline::kBp1, PimBaseline::kBp2, PimBaseline::kBp3,
      PimBaseline::kCryptoPim};
  return all;
}

/// Rectangular-width multiplication formulas (W x V bit operands).
std::uint64_t mult_cycles_rect_cryptopim(unsigned w, unsigned v);
std::uint64_t mult_cycles_rect_hajali(unsigned w, unsigned v);

/// Per-op latency set of a baseline at degree n (paper parameterisation).
model::LatencySet baseline_latency(PimBaseline b, std::uint32_t n);

/// Non-pipelined latency of one polynomial multiplication (the Fig. 6
/// comparison is between non-pipelined designs).
model::PipelinePerf evaluate_baseline(PimBaseline b, std::uint32_t n);

}  // namespace cryptopim::baselines
