// Analytic model of the paper's X86 CPU baseline (gem5, 2 GHz).
//
// The paper reports the software NTT multiplier's latency/energy for all
// eight degrees. Rather than hardcode those rows, this model derives them
// from first principles: the operation count of Algorithm 1
// (3 NTT passes of (n/2) log2(n) butterflies, plus n-element point-wise
// and scaling passes), a cycles-per-butterfly constant, and an
// energy-per-cycle constant — each calibrated on the single n = 256 row
// and used to predict the remaining seven. Table II's CPU shape
// (~n log n scaling, the 16->32-bit datatype step) then falls out instead
// of being copied.
#pragma once

#include <cstdint>

namespace cryptopim::baselines {

struct CpuPrediction {
  std::uint32_t n = 0;
  double butterflies = 0;      ///< total butterfly evaluations
  double latency_us = 0;
  double energy_uj = 0;
  double throughput_per_s = 0;
};

class CpuModel {
 public:
  /// Calibrated against the paper's n = 256 gem5 row.
  static CpuModel paper_calibrated();

  /// Butterfly-equivalent operation count of one full multiplication.
  static double op_count(std::uint32_t n);

  CpuPrediction predict(std::uint32_t n) const;

  double cycles_per_op() const noexcept { return cycles_per_op_; }
  double energy_per_op_nj() const noexcept { return energy_per_op_nj_; }

 private:
  double clock_ghz_ = 2.0;       // the paper's core
  double cycles_per_op_ = 0;     // calibrated slope
  double lat_intercept_us_ = 0;  // fixed setup overhead
  double energy_per_op_nj_ = 0;  // calibrated slope
  double en_intercept_uj_ = 0;
};

}  // namespace cryptopim::baselines
