// Fault campaign driver: sweep fault rates across many simulated
// multiplications and tally how the reliability machinery responds.
//
// Every trial multiplies two seeded-random polynomials on a
// CryptoPimSimulator with a ReliabilityManager attached, then compares
// the delivered result against the software oracle
// (GsNttEngine::negacyclic_multiply). Outcomes per trial:
//
//   * clean       — first attempt verified (faults, if any, were masked);
//   * recovered   — detection fired, retry/remap delivered a verified,
//                   correct result;
//   * unrecoverable — the manager gave up (UnrecoverableFault); the chip
//                   must degrade. No wrong data was delivered.
//   * escaped     — a wrong result was delivered as verified. The
//                   acceptance bar for the verification scheme is zero
//                   escapes at points >= 2.
//
// The entire campaign is a pure function of CampaignConfig (all
// randomness flows from config seeds), so reruns are bit-reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "ntt/params.h"
#include "reliability/manager.h"

namespace cryptopim::reliability {

struct CampaignConfig {
  std::uint32_t n = 256;
  std::uint32_t q = 7681;
  /// Stuck-at (endurance) rates to sweep, one campaign cell each.
  std::vector<double> stuck_rates = {0.0, 1e-6, 1e-5, 1e-4};
  double transient_rate = 0.0;
  unsigned verify_points = 2;   ///< Freivalds points (0 disables)
  bool parity = true;
  unsigned trials_per_rate = 8; ///< multiplications per cell
  unsigned max_retries = 4;
  unsigned spare_cols_per_block = 8;
  unsigned spare_banks = 4;
  std::uint64_t seed = 1;
};

/// Tallies of one swept fault rate.
struct CampaignCell {
  double stuck_rate = 0;
  std::uint64_t trials = 0;
  std::uint64_t injected = 0;      ///< stuck cells exposed + transient flips
  std::uint64_t detected = 0;      ///< trials where detection fired
  std::uint64_t clean = 0;         ///< first attempt verified
  std::uint64_t recovered = 0;     ///< correct after retry/remap
  std::uint64_t unrecoverable = 0; ///< manager gave up (no wrong data out)
  std::uint64_t escaped = 0;       ///< wrong result delivered as verified
  std::uint64_t columns_remapped = 0;
  std::uint64_t banks_remapped = 0;
  std::uint64_t attempts = 0;
  std::uint64_t wall_cycles = 0;       ///< final-attempt cycles, summed
  std::uint64_t overhead_cycles = 0;   ///< verify + repair + retry, summed
};

struct CampaignResult {
  CampaignConfig config;
  std::vector<CampaignCell> cells;

  std::uint64_t total_injected() const noexcept {
    std::uint64_t t = 0;
    for (const auto& c : cells) t += c.injected;
    return t;
  }
  std::uint64_t total_escaped() const noexcept {
    std::uint64_t t = 0;
    for (const auto& c : cells) t += c.escaped;
    return t;
  }
};

/// Run the sweep. Deterministic in `cfg`; each (rate, trial) pair derives
/// its own input polynomials and fault seed from cfg.seed.
CampaignResult run_fault_campaign(const CampaignConfig& cfg);

}  // namespace cryptopim::reliability
