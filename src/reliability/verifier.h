// Freivalds-style randomized verification of a negacyclic product.
//
// The accelerator claims c(x) = a(x) * b(x) in Z_q[x]/(x^n + 1). Because
// every parameter set satisfies q ≡ 1 (mod 2n), x^n + 1 splits completely
// over F_q: its n roots are the odd powers psi^(2u+1) of the primitive
// 2n-th root of unity. At any such root r the quotient-ring identity
// becomes a plain field identity,
//
//     c(r) ≡ a(r) * b(r)   (mod q),
//
// checkable with three Horner evaluations — O(n) multiply-adds per point
// against the O(n log n) cost of recomputing the product.
//
// False-negative bound: an undetected error means the error polynomial
// e = c - a*b (nonzero, degree < n) vanishes at every sampled root.
//  * Adversarial bound: e has at most n-1 roots, so one uniformly sampled
//    root misses with probability <= (n-1)/n, and t independent points
//    with <= ((n-1)/n)^t.
//  * Fault-model bound: corruption that perturbs c like a random field
//    element at the evaluation point (coefficient-domain noise, dense
//    NTT-domain noise) misses each point with probability ~ 1/q and t
//    points with ~ q^-t (about 10^-8 at q = 7681, t = 2). A
//    single-coefficient corruption e = eps * x^k is *always* caught:
//    roots of x^n + 1 are nonzero, so e(r) != 0 at every point.
//  * Blind spot (why this check is the backstop, not the front line):
//    evaluating c at a root psi^(2u+1) is reading NTT bin u. An error
//    confined to d NTT bins — e.g. one stuck cell corrupting one row of
//    the point-wise stage — vanishes at the other n-d roots, so a point
//    catches it only with probability d/n. This is not fixable at O(n):
//    mixing all bins at an off-root point r requires the quotient
//    h = (a*b - c)/(x^n + 1), i.e. the full product. The reliability
//    stack therefore catches stuck-cell compute corruption *at the
//    source* via program-verify (pim::WriteVerifyObserver) and in-flight
//    corruption via the transfer parity column; the Freivalds check
//    guards what those cannot see (multi-bit survivors, escaped dense
//    errors) where its q^-t bound genuinely applies.
//
// Cycle model: each 512-row bank streams its rows through a pipelined
// MAC unit at the crossbar periphery, one coefficient per cycle, three
// polynomials per point; the host folds the per-bank partial sums.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "ntt/ntt.h"
#include "ntt/params.h"
#include "ntt/poly.h"

namespace cryptopim::reliability {

struct VerifyConfig {
  /// Evaluation points per check; 0 disables verification.
  unsigned points = 2;
  std::uint64_t seed = 1;
};

class ResultVerifier {
 public:
  ResultVerifier(const ntt::NttParams& params, VerifyConfig cfg);

  /// True iff c(r) == a(r) * b(r) mod q at `points` random roots of
  /// x^n + 1. All operands must be canonical (coefficients in [0, q)).
  bool check(const ntt::Poly& a, const ntt::Poly& b, const ntt::Poly& c);

  unsigned points() const noexcept { return cfg_.points; }
  /// Modeled accelerator-side cost of one check, in crossbar cycles:
  /// points * (3 * rows-per-bank streaming MACs + per-bank folding).
  std::uint64_t cycles_per_check() const noexcept;
  std::uint64_t checks() const noexcept { return checks_; }
  std::uint64_t failures() const noexcept { return failures_; }

  /// Evaluate p at x = r by Horner's rule (exposed for tests).
  static std::uint32_t eval(const ntt::Poly& p, std::uint32_t r,
                            std::uint32_t q);

 private:
  ntt::NttParams params_;
  VerifyConfig cfg_;
  Xoshiro256 rng_;
  unsigned banks_ = 1;
  std::uint64_t checks_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace cryptopim::reliability
