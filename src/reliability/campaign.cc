#include "reliability/campaign.h"

#include "common/rng.h"
#include "ntt/ntt.h"
#include "sim/simulator.h"

namespace cryptopim::reliability {

namespace {

ntt::Poly random_poly(Xoshiro256& rng, std::uint32_t n, std::uint32_t q) {
  ntt::Poly p(n);
  for (auto& c : p) c = static_cast<std::uint32_t>(rng.next_below(q));
  return p;
}

}  // namespace

CampaignResult run_fault_campaign(const CampaignConfig& cfg) {
  const ntt::NttParams params = ntt::NttParams::make(cfg.n, cfg.q);
  const ntt::GsNttEngine oracle(params);

  CampaignResult result;
  result.config = cfg;
  result.cells.reserve(cfg.stuck_rates.size());

  for (std::size_t ri = 0; ri < cfg.stuck_rates.size(); ++ri) {
    CampaignCell cell;
    cell.stuck_rate = cfg.stuck_rates[ri];

    // One manager per cell: remaps and spare consumption accumulate
    // across the cell's trials, like hardware aging through a workload.
    ReliabilityConfig rc;
    rc.fault.stuck_rate = cell.stuck_rate;
    rc.fault.transient_rate = cfg.transient_rate;
    rc.fault.seed = cfg.seed + 0x1000 * (ri + 1);
    rc.verify.points = cfg.verify_points;
    rc.verify.seed = cfg.seed ^ 0x5eed5eedull;
    rc.parity = cfg.parity;
    rc.max_retries = cfg.max_retries;
    rc.spare_cols_per_block = cfg.spare_cols_per_block;
    rc.spare_banks = cfg.spare_banks;
    ReliabilityManager manager(rc, params);

    sim::CryptoPimSimulator simu(params);
    simu.set_reliability(&manager);

    Xoshiro256 input_rng(cfg.seed + 0x9000 * (ri + 1));
    for (unsigned t = 0; t < cfg.trials_per_rate; ++t) {
      const ntt::Poly a = random_poly(input_rng, cfg.n, cfg.q);
      const ntt::Poly b = random_poly(input_rng, cfg.n, cfg.q);
      const auto expected = oracle.negacyclic_multiply(a, b);

      ++cell.trials;
      bool delivered = false;
      ntt::Poly c;
      try {
        c = simu.multiply(a, b);
        delivered = true;
      } catch (const UnrecoverableFault&) {
        ++cell.unrecoverable;
      }

      const RelStats& s = simu.report().reliability;
      cell.injected += s.faults_planted + s.transient_flips;
      cell.attempts += s.attempts;
      cell.columns_remapped += s.columns_remapped;
      cell.banks_remapped += s.banks_remapped;
      cell.overhead_cycles += s.overhead_cycles();
      const bool detection_fired = s.parity_mismatches > 0 ||
                                   s.write_verify_failures > 0 ||
                                   s.verify_failures > 0;
      if (detection_fired) ++cell.detected;

      if (!delivered) continue;
      cell.wall_cycles += simu.report().wall_cycles;
      if (c != expected) {
        ++cell.escaped;
      } else if (s.attempts > 1) {
        ++cell.recovered;
      } else {
        ++cell.clean;
      }
    }
    result.cells.push_back(cell);
  }
  return result;
}

}  // namespace cryptopim::reliability
