// Seeded, deterministic fault model for the ReRAM crossbars.
//
// The paper validates the device statistically (Section IV-A: 5000
// Monte-Carlo trials, ±10% variation) but assumes fault-free crossbars
// functionally. Real ReRAM wears out: the dominant endurance failure is a
// cell stuck at 0 or 1, and inter-block transfers can suffer transient
// bit flips. This module plants both, deterministically from a seed, so a
// fault campaign is bit-reproducible:
//
//  * endurance (stuck-at) faults are a pure function of
//    (seed, physical block id) — re-planting the same block always yields
//    the same cells, which is what makes retry-without-repair useless
//    against them and repair-then-retry effective;
//  * transient flips are drawn from a separate sequential stream, so a
//    retried transfer sees fresh draws (retry works);
//  * per-column wear counters model write endurance: once a column of a
//    physical block crosses the configured limit, it grows a deterministic
//    stuck-at fault that future plant() calls include.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "pim/block.h"

namespace cryptopim::reliability {

struct FaultConfig {
  /// Per-cell probability of an endurance (stuck-at) failure. The number
  /// of faults per 512x512 block is Poisson(rate * 512 * 512), sampled
  /// deterministically per physical block.
  double stuck_rate = 0.0;
  /// Per transferred column-row bit, probability of an in-flight flip on
  /// a switch transfer. Caught by the parity column (odd flips) or by the
  /// end-of-run Freivalds check.
  double transient_rate = 0.0;
  /// Writes a column survives before wearing out (0 = unlimited).
  std::uint64_t endurance_limit = 0;
  std::uint64_t seed = 1;

  bool any_faults() const noexcept {
    return stuck_rate > 0 || transient_rate > 0 || endurance_limit > 0;
  }
};

/// A stuck cell of one physical block.
struct PlantedFault {
  std::uint32_t block_id = 0;
  pim::Col col = 0;
  std::uint16_t row = 0;
  bool value = false;
};

class FaultModel {
 public:
  explicit FaultModel(FaultConfig cfg);

  const FaultConfig& config() const noexcept { return cfg_; }

  /// The endurance faults of physical block `block_id`: rate faults
  /// (pure function of seed and id), targeted faults, and wear-out
  /// faults accumulated so far, in that order.
  std::vector<PlantedFault> faults_for_block(std::uint32_t block_id) const;

  /// Targeted injection for tests and campaigns: always planted, in
  /// addition to the rate-derived faults.
  void add_stuck_at(std::uint32_t block_id, pim::Col col, std::size_t row,
                    bool value);

  /// Plant every fault of `block_id` into `blk` (they re-assert on each
  /// mutation via MemoryBlock::enforce_faults). Replaces the block's
  /// fault list. Returns the number planted.
  unsigned plant(std::uint32_t block_id, pim::MemoryBlock& blk) const;

  /// One draw from the transient stream: true with probability
  /// `transient_rate`. Sequential — retries consume fresh randomness.
  bool transient_flip();

  // -- wear ------------------------------------------------------------------
  /// Record `writes` write events on a column. Once the column's counter
  /// crosses `endurance_limit`, a deterministic stuck-at fault appears in
  /// faults_for_block(). Returns true on the crossing event.
  bool note_wear(std::uint32_t block_id, pim::Col col,
                 std::uint64_t writes = 1);
  std::uint64_t wear(std::uint32_t block_id, pim::Col col) const;

  /// Totals for reporting.
  std::uint64_t planted_total() const noexcept { return planted_total_; }
  std::uint64_t wear_failures() const noexcept {
    return static_cast<std::uint64_t>(wear_faults_.size());
  }

 private:
  FaultConfig cfg_;
  Xoshiro256 transient_rng_;
  std::map<std::uint32_t, std::vector<PlantedFault>> targeted_;
  std::map<std::uint32_t, std::vector<PlantedFault>> wear_faults_;
  std::map<std::pair<std::uint32_t, pim::Col>, std::uint64_t> wear_;
  mutable std::uint64_t planted_total_ = 0;
};

}  // namespace cryptopim::reliability
