// ReliabilityManager: the inject -> detect -> retry -> remap -> degrade
// policy engine threaded through the simulators.
//
// One manager guards one superbank (the banks executing one
// multiplication). It owns the fault model and plants faults into every
// stage block the simulator materialises. Detection is layered:
// program-verify (stuck cells refuse writes — pim::WriteVerifyObserver)
// catches endurance corruption at the source, the switch parity column
// catches in-flight corruption, and the Freivalds check backstops the
// delivered result. On detection the manager repairs:
//
//   1. *retry*: rerun the multiplication. Transient flips draw fresh
//      randomness, so a retry alone clears them.
//   2. *column remap*: stuck cells are endurance failures and survive
//      retries. Diagnosis (a modeled BIST column march, cycle-charged)
//      locates the bad columns of each physical block; each is steered to
//      one of the block's spare columns through the periphery column mux
//      (MemoryBlock::remap_column).
//   3. *bank remap*: a block whose spare columns are exhausted takes its
//      whole bank out of service; the bank's role moves to a chip spare.
//   4. *degrade*: with no spare banks left the superbank is lost —
//      UnrecoverableFault tells the chip level to replan with fewer
//      superbanks (arch::ChipConfig::plan_for_degree(n, failed_banks)).
//
// Every verify/retry/repair cycle is accounted and lands in
// SimReport::reliability; metric names live under cryptopim.reliability.*.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "ntt/params.h"
#include "ntt/poly.h"
#include "obs/metrics.h"
#include "pim/block.h"
#include "pim/switch.h"
#include "reliability/fault_model.h"
#include "reliability/verifier.h"

namespace cryptopim::reliability {

struct ReliabilityConfig {
  FaultConfig fault;
  VerifyConfig verify;        ///< points = 0 disables the Freivalds check
  bool parity = true;         ///< parity column on every switch transfer
  unsigned max_retries = 4;   ///< attempts = 1 + max_retries
  unsigned spare_cols_per_block = 8;
  unsigned spare_banks = 4;   ///< superbank-local share of the chip spares

  // Modeled repair costs, in crossbar cycles.
  static constexpr std::uint64_t kBistCyclesPerBlock = 2 * pim::kBlockCols;
  static constexpr std::uint64_t kRemapCyclesPerColumn = 8;
  static constexpr std::uint64_t kBankRemapCycles = 4096;
};

/// Per-multiply reliability ledger (embedded in sim::SimReport).
struct RelStats {
  bool enabled = false;
  bool verified = false;       ///< final result passed all checks
  unsigned attempts = 0;
  std::uint64_t faults_planted = 0;     ///< distinct stuck cells exposed
  std::uint64_t transient_flips = 0;
  std::uint64_t parity_mismatches = 0;
  /// Program-verify (write-readback) failures: writes a stuck cell
  /// refused. The primary stuck-fault detector — it fires at the moment
  /// of corruption, including corruption the Freivalds check is nearly
  /// blind to (errors confined to a single NTT bin vanish at n-1 of the
  /// n evaluation roots).
  std::uint64_t write_verify_failures = 0;
  std::uint64_t verify_checks = 0;
  std::uint64_t verify_failures = 0;
  std::uint64_t columns_remapped = 0;
  std::uint64_t banks_remapped = 0;
  std::uint64_t wear_failures = 0;
  std::uint64_t verify_cycles = 0;
  std::uint64_t repair_cycles = 0;
  std::uint64_t retry_cycles = 0;  ///< wall cycles of abandoned attempts

  std::uint64_t overhead_cycles() const noexcept {
    return verify_cycles + repair_cycles + retry_cycles;
  }
  /// Mirror into `reg` as cryptopim.reliability.* counters.
  void publish(obs::MetricsRegistry& reg) const;
};

/// The superbank is beyond local repair; the chip must degrade.
struct UnrecoverableFault : std::runtime_error {
  explicit UnrecoverableFault(const std::string& what, RelStats s)
      : std::runtime_error(what), stats(std::move(s)) {}
  RelStats stats;
};

class ReliabilityManager final : public pim::TransferFaultHooks,
                                 public pim::WriteVerifyObserver {
 public:
  ReliabilityManager(ReliabilityConfig cfg, const ntt::NttParams& params);

  const ReliabilityConfig& config() const noexcept { return cfg_; }
  FaultModel& fault_model() noexcept { return model_; }

  // -- simulator lifecycle ----------------------------------------------------
  /// Start a new multiply: resets the per-run ledger (remaps and wear
  /// persist — they are hardware state).
  void begin_run();
  /// Start an attempt within the current run.
  void begin_attempt();
  /// Plant faults into (and apply recorded repairs to) the block backing
  /// pipeline stage `stage` of logical bank `bank`, and advance the data
  /// columns' wear. Called by the simulator for every stage state.
  void prepare_block(unsigned stage, unsigned bank, pim::MemoryBlock& blk);
  /// Any detection (parity mismatch or program-verify failure) since
  /// begin_attempt()? The simulator aborts the attempt early when so.
  bool attempt_dirty() const noexcept {
    return attempt_parity_errors_ > 0 || attempt_write_errors_ > 0;
  }
  /// End-of-attempt check: parity clean and Freivalds agrees.
  bool verify(const ntt::Poly& a, const ntt::Poly& b, const ntt::Poly& c);
  /// An attempt was abandoned after `wasted_cycles` of wall time.
  void note_retry(std::uint64_t wasted_cycles);
  /// Diagnose and repair: BIST every block seen this run, remap faulty
  /// columns to spares, fail banks out to chip spares. Throws
  /// UnrecoverableFault once the spare banks are exhausted.
  void repair();
  /// Final result delivered: seal the ledger.
  void finish_run(bool verified);

  const RelStats& stats() const noexcept { return stats_; }
  /// Physical banks taken out of service so far (lifetime, for
  /// chip-level replanning).
  unsigned failed_banks() const noexcept { return failed_banks_; }
  unsigned spare_banks_left() const noexcept {
    return cfg_.spare_banks - spare_banks_used_;
  }
  bool parity_enabled() const noexcept { return cfg_.parity; }
  pim::TransferFaultHooks* hooks() noexcept {
    return cfg_.fault.transient_rate > 0 || cfg_.parity ? this : nullptr;
  }

  // -- pim::TransferFaultHooks ------------------------------------------------
  bool corrupt_bit() override;
  void parity_mismatch(std::size_t row) override;

  // -- pim::WriteVerifyObserver -----------------------------------------------
  void stuck_write(pim::Col col, std::size_t row, bool stuck_value) override;

  /// First spare-column id: [spare_base(), kBlockCols) is the repair pool
  /// the executor must not allocate from.
  pim::Col spare_base() const noexcept {
    return static_cast<pim::Col>(pim::kBlockCols - cfg_.spare_cols_per_block);
  }

 private:
  /// Physical blocks are addressed (physical bank) * kStageStride + stage.
  static constexpr std::uint32_t kStageStride = 64;

  struct BlockRepair {
    std::vector<std::pair<pim::Col, pim::Col>> remaps;  ///< logical -> spare
    std::set<pim::Col> abandoned;  ///< physical columns taken out of use
    unsigned spares_used = 0;
  };

  std::uint32_t block_id(unsigned stage, unsigned bank) const {
    return bank_map_.at(bank) * kStageStride + stage;
  }
  /// Move logical bank `bank` to a fresh physical bank. Throws
  /// UnrecoverableFault when the spare pool is dry.
  void fail_bank(unsigned bank);

  ReliabilityConfig cfg_;
  ntt::NttParams params_;
  FaultModel model_;
  ResultVerifier verifier_;
  unsigned width_;   ///< datapath bit-width (wear tracking)
  unsigned banks_;   ///< logical banks per polynomial

  std::vector<std::uint32_t> bank_map_;  ///< logical -> physical bank
  std::uint32_t next_spare_bank_;
  unsigned spare_banks_used_ = 0;
  unsigned failed_banks_ = 0;
  std::map<std::uint32_t, BlockRepair> repairs_;      ///< by physical block
  std::map<std::uint32_t, std::uint64_t> run_faults_; ///< per-block count

  RelStats stats_;
  std::uint64_t attempt_parity_errors_ = 0;
  std::uint64_t attempt_write_errors_ = 0;
};

}  // namespace cryptopim::reliability
