#include "reliability/verifier.h"

#include <stdexcept>

#include "ntt/modular.h"
#include "pim/block.h"

namespace cryptopim::reliability {

ResultVerifier::ResultVerifier(const ntt::NttParams& params, VerifyConfig cfg)
    : params_(params),
      cfg_(cfg),
      rng_(cfg.seed ^ 0x6a09e667f3bcc909ull),
      banks_(params.n > pim::kBlockRows
                 ? params.n / static_cast<unsigned>(pim::kBlockRows)
                 : 1u) {}

std::uint32_t ResultVerifier::eval(const ntt::Poly& p, std::uint32_t r,
                                   std::uint32_t q) {
  // Horner, highest coefficient first. Operands are < q < 2^20, so the
  // accumulator product fits comfortably in 64 bits.
  std::uint64_t acc = 0;
  for (std::size_t i = p.size(); i-- > 0;) {
    acc = (acc * r + p[i]) % q;
  }
  return static_cast<std::uint32_t>(acc);
}

std::uint64_t ResultVerifier::cycles_per_check() const noexcept {
  if (cfg_.points == 0) return 0;
  const std::uint64_t rows_per_bank = params_.n / banks_;
  // Per point: the three polynomials stream through per-bank MACs
  // (3 * rows cycles), then the host folds `banks_` partial sums and
  // compares (banks_ + 1 cycles).
  return cfg_.points * (3 * rows_per_bank + banks_ + 1);
}

bool ResultVerifier::check(const ntt::Poly& a, const ntt::Poly& b,
                           const ntt::Poly& c) {
  if (a.size() != params_.n || b.size() != params_.n ||
      c.size() != params_.n) {
    throw std::invalid_argument("verifier operand size mismatch");
  }
  ++checks_;
  const std::uint32_t q = params_.q;
  bool ok = true;
  for (unsigned t = 0; t < cfg_.points; ++t) {
    // r = psi^(2u+1): a uniformly random root of x^n + 1.
    const std::uint64_t u = rng_.next_below(params_.n);
    const std::uint32_t r = ntt::pow_mod(params_.psi, 2 * u + 1, q);
    const std::uint32_t lhs = eval(c, r, q);
    const std::uint32_t rhs = ntt::mul_mod(eval(a, r, q), eval(b, r, q), q);
    if (lhs != rhs) ok = false;  // keep consuming points: fixed cycle cost
  }
  if (!ok) ++failures_;
  return ok;
}

}  // namespace cryptopim::reliability
