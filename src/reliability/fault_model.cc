#include "reliability/fault_model.h"

#include <cmath>
#include <stdexcept>

namespace cryptopim::reliability {

namespace {

// Dedicated per-block RNG: hashing the block id into the seed keeps every
// block's fault set independent of the order blocks are planted in.
Xoshiro256 block_rng(std::uint64_t seed, std::uint32_t block_id) {
  return Xoshiro256(seed ^ (0x9e3779b97f4a7c15ull * (block_id + 1)));
}

// Deterministic Poisson(mean) draw. Knuth inversion for small means, a
// clamped normal approximation above (fault campaigns never need exact
// tail shape there, only determinism).
std::uint64_t poisson(Xoshiro256& rng, double mean) {
  if (mean <= 0) return 0;
  if (mean < 64) {
    const double limit = std::exp(-mean);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
    } while (p > limit);
    return k - 1;
  }
  // Box-Muller from two uniform draws.
  const double u1 = (static_cast<double>(rng.next() >> 11) + 0.5) * 0x1.0p-53;
  const double u2 = static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
  const double gauss =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double v = mean + std::sqrt(mean) * gauss;
  return v <= 0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

}  // namespace

FaultModel::FaultModel(FaultConfig cfg)
    : cfg_(cfg), transient_rng_(cfg.seed ^ 0xd1b54a32d192ed03ull) {
  if (cfg.stuck_rate < 0 || cfg.stuck_rate > 1 || cfg.transient_rate < 0 ||
      cfg.transient_rate > 1) {
    throw std::invalid_argument("fault rates must lie in [0, 1]");
  }
}

std::vector<PlantedFault> FaultModel::faults_for_block(
    std::uint32_t block_id) const {
  std::vector<PlantedFault> out;
  if (cfg_.stuck_rate > 0) {
    auto rng = block_rng(cfg_.seed, block_id);
    const double cells =
        static_cast<double>(pim::kBlockRows) * pim::kBlockCols;
    const std::uint64_t count = poisson(rng, cfg_.stuck_rate * cells);
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      PlantedFault f;
      f.block_id = block_id;
      f.col = static_cast<pim::Col>(rng.next_below(pim::kBlockCols));
      f.row = static_cast<std::uint16_t>(rng.next_below(pim::kBlockRows));
      f.value = (rng.next() & 1) != 0;
      out.push_back(f);
    }
  }
  if (const auto it = targeted_.find(block_id); it != targeted_.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  if (const auto it = wear_faults_.find(block_id); it != wear_faults_.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

void FaultModel::add_stuck_at(std::uint32_t block_id, pim::Col col,
                              std::size_t row, bool value) {
  if (col >= pim::kBlockCols || row >= pim::kBlockRows) {
    throw std::invalid_argument("stuck-at coordinates out of range");
  }
  targeted_[block_id].push_back(PlantedFault{
      block_id, col, static_cast<std::uint16_t>(row), value});
}

unsigned FaultModel::plant(std::uint32_t block_id,
                           pim::MemoryBlock& blk) const {
  blk.clear_faults();
  const auto faults = faults_for_block(block_id);
  for (const auto& f : faults) {
    blk.inject_stuck_at(f.col, f.row, f.value);
  }
  planted_total_ += faults.size();
  return static_cast<unsigned>(faults.size());
}

bool FaultModel::transient_flip() {
  if (cfg_.transient_rate <= 0) return false;
  const double u =
      static_cast<double>(transient_rng_.next() >> 11) * 0x1.0p-53;
  return u < cfg_.transient_rate;
}

bool FaultModel::note_wear(std::uint32_t block_id, pim::Col col,
                           std::uint64_t writes) {
  if (cfg_.endurance_limit == 0) return false;
  auto& counter = wear_[{block_id, col}];
  const bool was_below = counter < cfg_.endurance_limit;
  counter += writes;
  if (!was_below || counter < cfg_.endurance_limit) return false;
  // Worn out: the cell that fails (and the value it freezes at) is a pure
  // function of the coordinates, keeping campaigns reproducible.
  auto rng = block_rng(cfg_.seed ^ 0xa5a5a5a5ull, block_id * 1024u + col);
  wear_faults_[block_id].push_back(PlantedFault{
      block_id, col, static_cast<std::uint16_t>(rng.next_below(pim::kBlockRows)),
      (rng.next() & 1) != 0});
  return true;
}

std::uint64_t FaultModel::wear(std::uint32_t block_id, pim::Col col) const {
  const auto it = wear_.find({block_id, col});
  return it == wear_.end() ? 0 : it->second;
}

}  // namespace cryptopim::reliability
