#include "reliability/manager.h"

#include <algorithm>

#include "common/bitutil.h"

namespace cryptopim::reliability {

void RelStats::publish(obs::MetricsRegistry& reg) const {
  auto add = [&reg](const char* name, std::uint64_t v, const char* unit) {
    reg.counter(std::string("cryptopim.reliability.") + name, unit).add(v);
  };
  add("faults_planted", faults_planted, "cells");
  add("transient_flips", transient_flips, "bits");
  add("parity_mismatches", parity_mismatches, "rows");
  add("write_verify_failures", write_verify_failures, "bits");
  add("verify_checks", verify_checks, "checks");
  add("verify_failures", verify_failures, "checks");
  add("retries", attempts > 0 ? attempts - 1 : 0, "attempts");
  add("columns_remapped", columns_remapped, "columns");
  add("banks_remapped", banks_remapped, "banks");
  add("wear_failures", wear_failures, "columns");
  add("verify_cycles", verify_cycles, "cycles");
  add("repair_cycles", repair_cycles, "cycles");
  add("retry_cycles", retry_cycles, "cycles");
}

ReliabilityManager::ReliabilityManager(ReliabilityConfig cfg,
                                       const ntt::NttParams& params)
    : cfg_(cfg),
      params_(params),
      model_(cfg.fault),
      verifier_(params, cfg.verify),
      width_(bit_length(params.q)),
      banks_(params.n > pim::kBlockRows
                 ? params.n / static_cast<unsigned>(pim::kBlockRows)
                 : 1u) {
  if (cfg_.spare_cols_per_block >= pim::kBlockCols / 2) {
    throw std::invalid_argument("spare_cols_per_block too large");
  }
  bank_map_.resize(banks_);
  for (unsigned b = 0; b < banks_; ++b) bank_map_[b] = b;
  next_spare_bank_ = banks_;
}

void ReliabilityManager::begin_run() {
  stats_ = RelStats{};
  stats_.enabled = true;
  run_faults_.clear();
  attempt_parity_errors_ = 0;
}

void ReliabilityManager::begin_attempt() {
  ++stats_.attempts;
  attempt_parity_errors_ = 0;
  attempt_write_errors_ = 0;
}

void ReliabilityManager::prepare_block(unsigned stage, unsigned bank,
                                       pim::MemoryBlock& blk) {
  const std::uint32_t id = block_id(stage, bank);
  // Wear first: a column that crosses its endurance limit on this very
  // write fails *this* attempt, like hardware would.
  if (cfg_.fault.endurance_limit > 0) {
    auto wear_col = [&](pim::Col c) {
      if (model_.note_wear(id, c)) ++stats_.wear_failures;
    };
    wear_col(0);  // constant rails
    wear_col(1);
    for (unsigned i = 0; i < 3 * width_; ++i) {
      wear_col(static_cast<pim::Col>(8 + i));  // stage data region
    }
  }
  const unsigned planted = model_.plant(id, blk);
  // Count each physical block's faults once per run, not once per attempt.
  if (run_faults_.emplace(id, planted).second) {
    stats_.faults_planted += planted;
  }
  // Re-apply this block's recorded repairs (fresh stage state, same
  // physical block -> same column mux programming).
  if (const auto it = repairs_.find(id); it != repairs_.end()) {
    for (const auto& [logical, spare] : it->second.remaps) {
      blk.remap_column(logical, spare);
    }
  }
  // Attach program-verify last: the initial fault assertion above is
  // power-on state, not a refused write.
  blk.set_write_verify(this);
}

bool ReliabilityManager::verify(const ntt::Poly& a, const ntt::Poly& b,
                                const ntt::Poly& c) {
  if (attempt_dirty()) return false;
  if (cfg_.verify.points == 0) return true;
  ++stats_.verify_checks;
  stats_.verify_cycles += verifier_.cycles_per_check();
  const bool ok = verifier_.check(a, b, c);
  if (!ok) ++stats_.verify_failures;
  return ok;
}

void ReliabilityManager::note_retry(std::uint64_t wasted_cycles) {
  stats_.retry_cycles += wasted_cycles;
}

void ReliabilityManager::repair() {
  // Diagnose every block this run touched: a modeled BIST column march
  // (cycle-charged) reveals the stuck cells the fault model planted.
  // Iterate a copy — fail_bank() rewrites bank_map_ under us.
  const std::vector<std::uint32_t> seen = [this] {
    std::vector<std::uint32_t> ids;
    ids.reserve(run_faults_.size());
    for (const auto& [id, count] : run_faults_) ids.push_back(id);
    return ids;
  }();

  for (const std::uint32_t id : seen) {
    stats_.repair_cycles += ReliabilityConfig::kBistCyclesPerBlock;
    const auto faults = model_.faults_for_block(id);
    if (faults.empty()) continue;
    // The block may belong to a bank already failed over; repairing the
    // abandoned physical block is pointless.
    const std::uint32_t phys_bank = id / kStageStride;
    const auto owner = std::find(bank_map_.begin(), bank_map_.end(), phys_bank);
    if (owner == bank_map_.end()) continue;
    const unsigned bank =
        static_cast<unsigned>(owner - bank_map_.begin());

    auto& rep = repairs_[id];
    bool bank_lost = false;
    for (const auto& f : faults) {
      if (rep.abandoned.count(f.col) > 0) continue;
      // Which logical column does this physical cell serve?
      pim::Col logical = f.col;
      const auto serving = std::find_if(
          rep.remaps.begin(), rep.remaps.end(),
          [&f](const auto& m) { return m.second == f.col; });
      if (serving != rep.remaps.end()) {
        logical = serving->first;
      } else if (std::any_of(rep.remaps.begin(), rep.remaps.end(),
                             [&f](const auto& m) { return m.first == f.col; })) {
        // Already remapped away from this physical column.
        rep.abandoned.insert(f.col);
        continue;
      } else if (f.col >= spare_base()) {
        // A faulty, still-unused spare: strike it from the pool.
        rep.abandoned.insert(f.col);
        continue;
      }
      // Claim the next healthy spare.
      pim::Col spare = 0;
      bool found = false;
      while (rep.spares_used < cfg_.spare_cols_per_block) {
        const auto cand = static_cast<pim::Col>(
            pim::kBlockCols - 1 - rep.spares_used);
        ++rep.spares_used;
        if (rep.abandoned.count(cand) == 0) {
          spare = cand;
          found = true;
          break;
        }
      }
      if (!found) {
        bank_lost = true;
        break;
      }
      rep.abandoned.insert(f.col);
      // Drop a stale remap of the same logical column (re-failed spare).
      std::erase_if(rep.remaps,
                    [logical](const auto& m) { return m.first == logical; });
      rep.remaps.emplace_back(logical, spare);
      ++stats_.columns_remapped;
      stats_.repair_cycles += ReliabilityConfig::kRemapCyclesPerColumn;
    }
    if (bank_lost) fail_bank(bank);
  }
}

void ReliabilityManager::fail_bank(unsigned bank) {
  ++failed_banks_;
  ++stats_.banks_remapped;
  stats_.repair_cycles += ReliabilityConfig::kBankRemapCycles;
  if (spare_banks_used_ >= cfg_.spare_banks) {
    finish_run(false);
    throw UnrecoverableFault(
        "superbank out of spare banks: chip must degrade", stats_);
  }
  ++spare_banks_used_;
  const std::uint32_t fresh = next_spare_bank_++;
  // Drop repair state and run-fault bookkeeping of the abandoned bank;
  // the fresh physical bank starts clean (with its own planted faults).
  const std::uint32_t old_phys = bank_map_[bank];
  for (unsigned s = 0; s < kStageStride; ++s) {
    repairs_.erase(old_phys * kStageStride + s);
    run_faults_.erase(old_phys * kStageStride + s);
  }
  bank_map_[bank] = fresh;
}

void ReliabilityManager::finish_run(bool verified) {
  stats_.verified = verified;
}

bool ReliabilityManager::corrupt_bit() {
  if (model_.transient_flip()) {
    ++stats_.transient_flips;
    return true;
  }
  return false;
}

void ReliabilityManager::parity_mismatch(std::size_t /*row*/) {
  ++stats_.parity_mismatches;
  ++attempt_parity_errors_;
}

void ReliabilityManager::stuck_write(pim::Col /*col*/, std::size_t /*row*/,
                                     bool /*stuck_value*/) {
  ++stats_.write_verify_failures;
  ++attempt_write_errors_;
}

}  // namespace cryptopim::reliability
