// Functional simulation of *pipelined* CryptoPIM operation.
//
// CryptoPimSimulator (simulator.h) runs one multiplication at a time — the
// non-pipelined design. This module streams a batch of multiplications
// through the stage sequence with beat-level overlap, the way the
// pipelined hardware operates (Section III-D.1): at every beat each
// occupied stage processes a different in-flight job, and one new job
// enters as soon as the first stage frees up.
//
// Because each pipeline stage of the hardware is a physically distinct
// memory block, overlapping jobs cannot interact; the simulation keeps one
// stage-state per in-flight job and advances them in lock-step, verifying
// that (a) every result is still bit-exact, and (b) the makespan follows
// fill + (jobs - 1) * slowest-stage — the throughput law behind Table II.
#pragma once

#include <cstdint>
#include <vector>

#include "ntt/params.h"
#include "ntt/poly.h"
#include "sim/simulator.h"

namespace cryptopim::sim {

/// Per-batch measurements.
struct PipelineRunReport {
  std::size_t jobs = 0;
  std::size_t depth = 0;              ///< stage count of the job pipeline
  std::uint64_t beat_cycles = 0;      ///< slowest stage program (cycles)
  std::uint64_t fill_cycles = 0;      ///< first job's traversal
  std::uint64_t makespan_cycles = 0;  ///< fill + (jobs-1) * beat
  double makespan_us = 0;
  double throughput_per_s = 0;        ///< steady-state rate 1/beat
  /// Reliability ledger summed over the batch's jobs (counters add up;
  /// verified = every job verified). The makespan law above describes the
  /// final successful attempt of each job; a retried job stalls the
  /// stream for reliability.overhead_cycles() extra cycles in total.
  reliability::RelStats reliability;
};

class PipelinedSimulator {
 public:
  explicit PipelinedSimulator(
      const ntt::NttParams& params,
      pim::DeviceModel device = pim::DeviceModel::paper_45nm());

  /// Multiply pairs[i].first * pairs[i].second for every job in the
  /// batch, streamed through the pipeline with beat-level overlap.
  std::vector<ntt::Poly> multiply_stream(
      const std::vector<std::pair<ntt::Poly, ntt::Poly>>& pairs);

  const PipelineRunReport& report() const noexcept { return report_; }
  const ntt::NttParams& params() const noexcept { return params_; }

  /// When the global tracer is enabled, multiply_stream() emits the
  /// beat-level schedule: one track per pipeline stage starting here,
  /// one span per (job, stage) occupancy.
  static constexpr std::uint32_t kStageTrackBase = 1u << 17;

  /// Attach a reliability manager: every job in the stream executes under
  /// fault injection / verification / repair (see
  /// CryptoPimSimulator::set_reliability). Non-owning; nullptr detaches.
  void set_reliability(reliability::ReliabilityManager* rm) noexcept {
    rel_ = rm;
  }

 private:
  ntt::NttParams params_;
  pim::DeviceModel device_;
  reliability::ReliabilityManager* rel_ = nullptr;
  PipelineRunReport report_;
};

}  // namespace cryptopim::sim
