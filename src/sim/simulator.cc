#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>

#include "common/bitutil.h"
#include "ntt/modular.h"
#include "pim/circuits/arith.h"
#include "pim/circuits/reduction.h"
#include "pim/switch.h"

namespace cryptopim::sim {

namespace {

// Reserved data-column layout inside every stage block.
constexpr pim::Col kOwnBase = 8;

}  // namespace

struct CryptoPimSimulator::PolyState {
  struct Bank {
    pim::MemoryBlock block;
    std::unique_ptr<pim::BlockExecutor> exec;
  };
  std::vector<Bank> banks;
  unsigned width = 0;

  pim::Operand own(const pim::BlockExecutor& e) const {
    return e.contiguous(kOwnBase, width);
  }
  pim::Operand partner(const pim::BlockExecutor& e) const {
    return e.contiguous(kOwnBase + static_cast<pim::Col>(width), width);
  }
  pim::Operand twiddle(const pim::BlockExecutor& e) const {
    return e.contiguous(kOwnBase + static_cast<pim::Col>(2 * width), width);
  }
};

CryptoPimSimulator::CryptoPimSimulator(const ntt::NttParams& params,
                                       pim::DeviceModel device)
    : params_(params),
      device_(device),
      engine_(params),
      barrett_(ntt::BarrettShiftAdd::paper_spec(params.q)),
      montgomery_(ntt::MontgomeryShiftAdd::paper_spec(params.q)),
      banks_(params.n > pim::kBlockRows
                 ? params.n / static_cast<unsigned>(pim::kBlockRows)
                 : 1u),
      rows_per_bank_(std::min<std::size_t>(params.n, pim::kBlockRows)),
      width_(bit_length(params.q)) {}

std::unique_ptr<CryptoPimSimulator::PolyState>
CryptoPimSimulator::make_state() {
  auto st = std::make_unique<PolyState>();
  st->width = width_;
  st->banks.resize(banks_);
  for (unsigned b = 0; b < banks_; ++b) {
    auto& bank = st->banks[b];
    // Faults and column remaps must land before the executor writes the
    // constant rails, exactly like power-on of a (worn) physical block.
    if (rel_ != nullptr) {
      rel_->prepare_block(stage_counter_, b, bank.block);
    }
    bank.exec = std::make_unique<pim::BlockExecutor>(
        bank.block, pim::RowMask::first_rows(rows_per_bank_), device_);
    bank.exec->reserve_region(kOwnBase, 3 * width_);
    if (rel_ != nullptr) {
      // Keep the repair pool out of the processing-column allocator.
      bank.exec->reserve_region(rel_->spare_base(),
                                rel_->config().spare_cols_per_block);
    }
  }
  ++stage_counter_;
  return st;
}

pim::FixedFunctionSwitch CryptoPimSimulator::make_switch(
    unsigned stride) const {
  pim::FixedFunctionSwitch sw(stride);
  if (rel_ != nullptr) {
    sw.set_fault_hooks(rel_->hooks(), rel_->parity_enabled());
  }
  return sw;
}

void CryptoPimSimulator::attach_obs(PolyState& st) const {
  // Softbank (B-path) stages run concurrently with the A-path stage that
  // preceded them in program order; start their spans at that stage's
  // begin cycle so the timeline shows the overlap.
  const std::uint32_t track_base = wall_enabled_ ? 0 : kSoftbankTrackBase;
  std::uint64_t base = report_.wall_cycles;
  if (!wall_enabled_ && !report_.stage_cycles.empty()) {
    base -= report_.stage_cycles.back();
  }
  for (unsigned b = 0; b < banks_; ++b) {
    st.banks[b].exec->set_tracer(active_tracer_, track_base + b);
    st.banks[b].exec->set_trace_base(base);
  }
}

void CryptoPimSimulator::accumulate(PolyState& st,
                                    const std::string& stage_name) {
  pim::ExecStats stage_total;
  for (auto& bank : st.banks) {
    stage_total += bank.exec->stats();
  }
  report_.totals += stage_total;

#if CRYPTOPIM_TRACING
  if (active_tracer_ != nullptr) {
    for (auto& bank : st.banks) {
      const auto& e = *bank.exec;
      const std::uint64_t begin = e.trace_now() - e.stats().cycles;
      active_tracer_->emit(e.trace_track(), stage_name, "stage", begin,
                           e.stats().cycles);
    }
    if (wall_enabled_) {
      active_tracer_->emit(kPipelineTrack, stage_name, "stage",
                           report_.wall_cycles,
                           st.banks[0].exec->stats().cycles);
    }
  }
#endif

  // Metrics: per-stage-kind cycle counters plus the ExecStats facade.
  const std::string kind = stage_name.substr(0, stage_name.find('/'));
  active_metrics_->counter("cryptopim.sim.cycles." + kind, "cycles")
      .add(st.banks[0].exec->stats().cycles);
  active_metrics_->counter("cryptopim.sim.stages", "stages").add(1);
  stage_total.publish(*active_metrics_);

  // Banks run in lock-step, so the critical path is one bank's cycles.
  // B's softbank runs concurrently with A's: its stages cost energy but
  // no wall time (wall_enabled_ toggled around B's stage calls).
  if (wall_enabled_) {
    const std::uint64_t cycles = st.banks[0].exec->stats().cycles;
    active_metrics_->histogram("cryptopim.sim.stage_cycles", "cycles")
        .add(cycles);
    report_.wall_cycles += cycles;
    report_.stage_cycles.push_back(cycles);
    report_.stage_names.push_back(stage_name);
  }
  report_.stages += 1;
}

void CryptoPimSimulator::record_stage_program(std::string name,
                                              pim::Program& program) {
  // Stages that run on B's softbank re-use programs already in the
  // library; only register microcode compiled on the wall path (A) plus
  // the shared scale/butterfly shapes once.
  microcode_.add_stage(std::move(name), std::move(program));
}

void CryptoPimSimulator::load_input(
    PolyState& st, const ntt::Poly& p,
    const std::vector<std::uint32_t>& /*unused*/) const {
  // Bit-reversal happens at write time: coefficient i lands in global row
  // bitrev(i) ("changing the row to which a value is written").
  const unsigned bits = params_.log2n;
  std::vector<std::vector<std::uint64_t>> rows(
      banks_, std::vector<std::uint64_t>(rows_per_bank_, 0));
  for (std::uint32_t i = 0; i < params_.n; ++i) {
    const std::uint64_t g = bit_reverse(i, bits);
    rows[g / pim::kBlockRows][g % pim::kBlockRows] = p[i];
  }
  for (unsigned b = 0; b < banks_; ++b) {
    st.banks[b].exec->host_write(st.own(*st.banks[b].exec), rows[b]);
  }
}

namespace {

pim::RowMask side_mask(std::size_t rows_used, std::uint32_t stride,
                       bool high) {
  pim::RowMask m;
  for (std::size_t r = 0; r < rows_used; ++r) {
    const bool is_high = (r & stride) != 0;
    if (is_high == high) m.set(r, true);
  }
  return m;
}

// Copy a computed result into the reserved own-region columns (2 cycles
// per bit) under the executor's current mask.
void write_own(pim::BlockExecutor& exec, const pim::Operand& own,
               const pim::Operand& value) {
  for (unsigned i = 0; i < own.width(); ++i) {
    if (i < value.width()) {
      exec.gate1(pim::GateKind::kCopy, own.col(i), value.col(i));
    } else {
      exec.set0(own.col(i));
    }
  }
}

}  // namespace

void CryptoPimSimulator::stage_scale(
    std::unique_ptr<PolyState>& st, bool /*montgomery_domain*/,
    const std::vector<std::uint32_t>& factors_by_row) {
  auto next = make_state();
  attach_obs(*next);
  const pim::FixedFunctionSwitch sw = make_switch(0);

  // The controller compiles the stage microcode once (while bank 0
  // executes it) and broadcasts it to the remaining banks.
  pim::Program program;
  const std::vector<pim::RowMask> slots = {
      pim::RowMask::first_rows(rows_per_bank_)};

  for (unsigned b = 0; b < banks_; ++b) {
    auto& src = st->banks[b];
    auto& dst = next->banks[b];
    sw.transfer(src.block, st->own(*src.exec), src.exec->mask(), *dst.exec,
                next->own(*dst.exec), pim::FixedFunctionSwitch::Route::kStraight);

    // Pre-computed factors live in the block's data columns.
    std::vector<std::uint64_t> factors(rows_per_bank_);
    for (std::size_t r = 0; r < rows_per_bank_; ++r) {
      factors[r] = factors_by_row[b * pim::kBlockRows + r];
    }
    dst.exec->host_write(next->twiddle(*dst.exec), factors);

    auto& e = *dst.exec;
    if (b == 0) {
      const pim::ProgramRecorder rec(e, program, 0);
      const pim::Operand own = next->own(e);
      const pim::Operand tw = next->twiddle(e);
      pim::Operand prod = pim::circuits::multiply(e, own, tw);
      pim::Operand red =
          pim::circuits::montgomery_reduce(e, prod, montgomery_, true);
      e.free(prod);
      write_own(e, own, red);
      e.free(red);
    } else {
      program.execute(e, slots);
    }
  }
  record_stage_program("scale", program);
  accumulate(*next, "scale");
  st = std::move(next);
}

void CryptoPimSimulator::stage_butterfly(
    std::unique_ptr<PolyState>& st, std::uint32_t stride,
    const std::vector<std::uint32_t>& twiddle_by_high_row) {
  auto next = make_state();
  attach_obs(*next);

  // --- transfers through the fixed-function switches -----------------------
  if (stride < rows_per_bank_) {
    const pim::FixedFunctionSwitch sw = make_switch(stride);
    const pim::RowMask low = side_mask(rows_per_bank_, stride, false);
    const pim::RowMask high = side_mask(rows_per_bank_, stride, true);
    for (unsigned b = 0; b < banks_; ++b) {
      auto& src = st->banks[b];
      auto& dst = next->banks[b];
      sw.transfer(src.block, st->own(*src.exec), src.exec->mask(), *dst.exec,
                  next->own(*dst.exec),
                  pim::FixedFunctionSwitch::Route::kStraight);
      // Low rows feed their +s neighbours; high rows feed -s.
      sw.transfer(src.block, st->own(*src.exec), low, *dst.exec,
                  next->partner(*dst.exec),
                  pim::FixedFunctionSwitch::Route::kPlusS);
      sw.transfer(src.block, st->own(*src.exec), high, *dst.exec,
                  next->partner(*dst.exec),
                  pim::FixedFunctionSwitch::Route::kMinusS);
    }
  } else {
    // Stride crosses banks: the partner sits in the paired bank at the
    // same row; inter-bank switches provide the straight connection.
    const pim::FixedFunctionSwitch sw = make_switch(0);
    const unsigned ds = stride / static_cast<unsigned>(rows_per_bank_);
    for (unsigned b = 0; b < banks_; ++b) {
      auto& dst = next->banks[b];
      auto& src_own = st->banks[b];
      sw.transfer(src_own.block, st->own(*src_own.exec), src_own.exec->mask(),
                  *dst.exec, next->own(*dst.exec),
                  pim::FixedFunctionSwitch::Route::kStraight);
      auto& src_partner = st->banks[b ^ ds];
      sw.transfer(src_partner.block, st->own(*src_partner.exec),
                  src_partner.exec->mask(), *dst.exec,
                  next->partner(*dst.exec),
                  pim::FixedFunctionSwitch::Route::kStraight);
    }
  }

  // --- compute --------------------------------------------------------------
  // Mask-slot convention: 0 = all rows, 1 = high side, 2 = low side. The
  // stage microcode is identical for every bank (recorded once on bank 0,
  // broadcast to the rest, lock-step); the per-bank mask table selects
  // which rows each phase drives.
  const std::uint32_t q = params_.q;
  pim::Program program;
  for (unsigned b = 0; b < banks_; ++b) {
    auto& dst = next->banks[b];
    auto& e = *dst.exec;

    pim::RowMask low_mask, high_mask;
    if (stride < rows_per_bank_) {
      low_mask = side_mask(rows_per_bank_, stride, false);
      high_mask = side_mask(rows_per_bank_, stride, true);
    } else {
      const unsigned ds = stride / static_cast<unsigned>(rows_per_bank_);
      const bool bank_is_high = (b & ds) != 0;
      low_mask = bank_is_high ? pim::RowMask()
                              : pim::RowMask::first_rows(rows_per_bank_);
      high_mask = bank_is_high ? pim::RowMask::first_rows(rows_per_bank_)
                               : pim::RowMask();
    }
    const std::vector<pim::RowMask> slots = {
        pim::RowMask::first_rows(rows_per_bank_), high_mask, low_mask};

    // Twiddles for the high rows (pre-computed factors, Montgomery form).
    std::vector<std::uint64_t> tw_rows(rows_per_bank_, 0);
    for (std::size_t r = 0; r < rows_per_bank_; ++r) {
      tw_rows[r] = twiddle_by_high_row[b * pim::kBlockRows + r];
    }
    e.host_write(next->twiddle(e), tw_rows);

    if (b > 0) {
      program.execute(e, slots);
      continue;
    }

    const pim::Operand own = next->own(e);
    const pim::Operand partner = next->partner(e);
    const pim::Operand tw = next->twiddle(e);
    pim::ProgramRecorder rec(e, program, 1);

    // High rows: A[j'] = Montgomery(W * (T - A[j'] + q)). Recorded and
    // executed even when this bank's high side is empty — all banks run
    // the broadcast program in lock-step.
    {
      e.set_mask(high_mask);
      const pim::Operand cq = e.constant(q, width_);
      pim::Operand t =
          pim::circuits::add_trimmed(e, partner, cq, width_ + 1);
      auto d = pim::circuits::sub(e, t, own, width_ + 1);
      e.free(t);
      e.free_col(d.no_borrow);
      pim::Operand prod = pim::circuits::multiply(e, d.diff, tw);
      e.free(d.diff);
      pim::Operand red =
          pim::circuits::montgomery_reduce(e, prod, montgomery_, true);
      e.free(prod);
      write_own(e, own, red);
      e.free(red);
    }

    // Low rows: A[j] = Barrett(T + A[j']).
    {
      rec.set_mask_slot(2);
      e.set_mask(low_mask);
      pim::Operand sum = pim::circuits::add(e, own, partner, width_ + 1);
      pim::Operand red = pim::circuits::barrett_reduce(e, sum, barrett_, true);
      e.free(sum);
      write_own(e, own, red);
      e.free(red);
    }
    e.set_mask(pim::RowMask::first_rows(rows_per_bank_));
  }

  const std::string stage_name = "butterfly/s" + std::to_string(stride);
  record_stage_program(stage_name, program);
  accumulate(*next, stage_name);
  st = std::move(next);
}

void CryptoPimSimulator::stage_pointwise(std::unique_ptr<PolyState>& a,
                                         std::unique_ptr<PolyState>& b) {
  auto next = make_state();
  attach_obs(*next);
  const pim::FixedFunctionSwitch sw = make_switch(0);
  pim::Program program;
  const std::vector<pim::RowMask> slots = {
      pim::RowMask::first_rows(rows_per_bank_)};
  for (unsigned k = 0; k < banks_; ++k) {
    auto& dst = next->banks[k];
    sw.transfer(a->banks[k].block, a->own(*a->banks[k].exec),
                a->banks[k].exec->mask(), *dst.exec, next->own(*dst.exec),
                pim::FixedFunctionSwitch::Route::kStraight);
    // B arrives through the inter-softbank switch.
    sw.transfer(b->banks[k].block, b->own(*b->banks[k].exec),
                b->banks[k].exec->mask(), *dst.exec, next->partner(*dst.exec),
                pim::FixedFunctionSwitch::Route::kStraight);

    auto& e = *dst.exec;
    if (k > 0) {
      program.execute(e, slots);
      continue;
    }
    const pim::ProgramRecorder rec(e, program, 0);
    const pim::Operand own = next->own(e);
    const pim::Operand partner = next->partner(e);
    // B is in the Montgomery domain, so this reduction lands plain.
    pim::Operand prod = pim::circuits::multiply(e, own, partner);
    pim::Operand red =
        pim::circuits::montgomery_reduce(e, prod, montgomery_, true);
    e.free(prod);
    write_own(e, own, red);
    e.free(red);
  }
  record_stage_program("pointwise", program);
  accumulate(*next, "pointwise");
  a = std::move(next);
  b.reset();
}

std::vector<std::uint32_t> CryptoPimSimulator::forward_twiddles_by_row(
    std::uint32_t stride) const {
  // Algorithm 2: the butterfly writing row j' = j + 2^k multiplies by
  // twiddle[j >> (k+1)] from the bit-reversed table.
  const unsigned k = ilog2(stride);
  std::vector<std::uint32_t> tw(params_.n, 0);
  for (std::uint32_t g = 0; g < params_.n; ++g) {
    if ((g & stride) == 0) continue;  // low row
    const std::uint32_t j = g - stride;
    const std::uint32_t w = engine_.forward_twiddles()[j >> (k + 1)];
    tw[g] = montgomery_.to_mont(w);
  }
  return tw;
}

std::vector<std::uint32_t> CryptoPimSimulator::inverse_twiddles_by_row(
    std::uint32_t stride) const {
  // Conjugate (decreasing-stride) schedule: classic Gentleman–Sande with
  // w^{-1}; the butterfly at (j, j+len) uses exponent (j mod len)*n/(2len).
  std::vector<std::uint32_t> tw(params_.n, 0);
  const std::uint32_t step = params_.n / (2 * stride);
  for (std::uint32_t g = 0; g < params_.n; ++g) {
    if ((g & stride) == 0) continue;
    const std::uint32_t j = g - stride;
    const std::uint32_t e = (j & (stride - 1)) * step;
    tw[g] = montgomery_.to_mont(
        ntt::pow_mod(params_.omega_inv, e, params_.q));
  }
  return tw;
}

ntt::Poly CryptoPimSimulator::multiply_attempt(const ntt::Poly& a,
                                               const ntt::Poly& b) {
  report_ = SimReport{};
  microcode_ = pim::Controller{};
  stage_counter_ = 0;

  const std::uint32_t n = params_.n;
  const std::uint32_t q = params_.q;
  const unsigned bits = params_.log2n;

  auto A = make_state();
  auto B = make_state();
  load_input(*A, a, {});
  load_input(*B, b, {});

  // psi-scale. A stays plain: factor = psi^i * R (Montgomery-form
  // constant). B enters the Montgomery domain: factor = psi^i * R^2.
  const std::uint64_t R_mod_q = montgomery_.R() % q;
  std::vector<std::uint32_t> fa(n), fb(n);
  for (std::uint32_t g = 0; g < n; ++g) {
    const std::uint64_t i = bit_reverse(g, bits);
    const std::uint32_t psi_i = engine_.psi_powers()[i];
    fa[g] = montgomery_.to_mont(psi_i);
    fb[g] = ntt::mul_mod(montgomery_.to_mont(psi_i),
                         static_cast<std::uint32_t>(R_mod_q), q);
  }
  stage_scale(A, false, fa);
  wall_enabled_ = false;
  stage_scale(B, true, fb);
  wall_enabled_ = true;

  // Forward NTT, strides 1 .. n/2 (bit-reversed input loaded above).
  for (unsigned k = 0; k < bits; ++k) {
    const std::uint32_t stride = 1u << k;
    const auto tw = forward_twiddles_by_row(stride);
    stage_butterfly(A, stride, tw);
    wall_enabled_ = false;
    stage_butterfly(B, stride, tw);
    wall_enabled_ = true;
  }

  stage_pointwise(A, B);

  // Inverse NTT, strides n/2 .. 1 (conjugate schedule, no mid-pipeline
  // bit-reversal).
  for (unsigned k = bits; k-- > 0;) {
    const std::uint32_t stride = 1u << k;
    stage_butterfly(A, stride, inverse_twiddles_by_row(stride));
  }

  // Final scale by n^{-1} psi^{-i}, addressed through the output
  // permutation: row r holds element bitrev(r).
  std::vector<std::uint32_t> fc(n);
  for (std::uint32_t g = 0; g < n; ++g) {
    const std::uint64_t i = bit_reverse(g, bits);
    fc[g] = montgomery_.to_mont(engine_.psi_inv_scaled()[i]);
  }
  stage_scale(A, false, fc);

  // Read out: the bit-reversal at read is a host-side permutation.
  ntt::Poly c(n, 0);
  for (unsigned bnk = 0; bnk < banks_; ++bnk) {
    const auto vals =
        A->banks[bnk].exec->host_read(A->own(*A->banks[bnk].exec));
    for (std::size_t r = 0; r < vals.size(); ++r) {
      const std::uint64_t g = bnk * pim::kBlockRows + r;
      c[bit_reverse(g, bits)] = static_cast<std::uint32_t>(vals[r]);
    }
  }

  report_.latency_us =
      static_cast<double>(report_.wall_cycles) * device_.cycle_ns * 1e-3;
  report_.energy_uj = report_.totals.energy_fj(device_) * 1e-9;
  return c;
}

ntt::Poly CryptoPimSimulator::multiply(const ntt::Poly& a,
                                       const ntt::Poly& b) {
  if (a.size() != params_.n || b.size() != params_.n) {
    throw std::invalid_argument("operand size does not match the degree");
  }
  for (const auto c : a) {
    if (c >= params_.q) throw std::invalid_argument("coefficient >= q");
  }
  for (const auto c : b) {
    if (c >= params_.q) throw std::invalid_argument("coefficient >= q");
  }

  active_metrics_ =
      custom_metrics_ != nullptr ? custom_metrics_ : &obs::metrics();
  obs::Tracer& tr = custom_tracer_ != nullptr ? *custom_tracer_ : obs::tracer();
  active_tracer_ = (CRYPTOPIM_TRACING && tr.enabled()) ? &tr : nullptr;
  if (active_tracer_ != nullptr) {
    for (unsigned b = 0; b < banks_; ++b) {
      active_tracer_->set_track_name(b, "bank " + std::to_string(b) + " (A)");
      active_tracer_->set_track_name(kSoftbankTrackBase + b,
                                     "softbank " + std::to_string(b) + " (B)");
    }
    active_tracer_->set_track_name(kPipelineTrack, "pipeline (critical path)");
  }

  ntt::Poly c;
  if (rel_ == nullptr) {
    // Reliability-free fast path: identical execution and cycle
    // accounting to the pre-reliability simulator (tested invariant).
    c = multiply_attempt(a, b);
  } else {
    rel_->begin_run();
    bool ok = false;
    const unsigned attempts = rel_->config().max_retries + 1;
    try {
      for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        rel_->begin_attempt();
        // A dirty attempt (parity / program-verify hit) still runs to
        // completion: every stage block gets prepared and diagnosed, so
        // one repair pass can fix all of them instead of rediscovering
        // one faulty stage per retry.
        c = multiply_attempt(a, b);
        ok = rel_->verify(a, b, c);
        if (ok) break;
        // The attempt's wall cycles were wasted; diagnose and repair
        // before going again (may throw UnrecoverableFault).
        rel_->note_retry(report_.wall_cycles);
        rel_->repair();
      }
    } catch (const reliability::UnrecoverableFault&) {
      report_.reliability = rel_->stats();
      report_.reliability.publish(*active_metrics_);
      active_tracer_ = nullptr;
      throw;
    }
    rel_->finish_run(ok);
    report_.reliability = rel_->stats();
    report_.reliability.publish(*active_metrics_);
    if (!ok) {
      active_tracer_ = nullptr;
      throw reliability::UnrecoverableFault(
          "result verification still failing after max_retries",
          report_.reliability);
    }
#if CRYPTOPIM_TRACING
    if (active_tracer_ != nullptr && report_.reliability.verify_cycles > 0) {
      active_tracer_->emit(kPipelineTrack, "verify", "reliability",
                           report_.wall_cycles,
                           report_.reliability.verify_cycles);
    }
#endif
  }

  active_metrics_->counter("cryptopim.sim.multiplies", "ops").add(1);
  active_metrics_->counter("cryptopim.sim.wall_cycles", "cycles")
      .add(report_.wall_cycles);
  active_tracer_ = nullptr;
  return c;
}

}  // namespace cryptopim::sim
