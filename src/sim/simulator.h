// Cycle-accounted functional simulation of a full CryptoPIM polynomial
// multiplication (the "in-house cycle-accurate C++ simulator" of Section
// IV-A, reconstructed).
//
// Every value lives in simulated 512x512 crossbars; every arithmetic step
// is executed by the gate-level circuits of src/pim/circuits; every move
// between stage blocks goes through a fixed-function switch. The host only
// writes the inputs (bit-reversed at write time, as the paper prescribes)
// and reads the outputs.
//
// Dataflow decisions (documented in DESIGN.md):
//  * Polynomial A flows in the plain domain; polynomial B enters the
//    Montgomery domain through its psi-scale constants (psi^i * R^2), so
//    the point-wise product Montgomery-reduces to a plain value with no
//    extra stage.
//  * The forward NTT is Algorithm 2 (increasing strides, bit-reversed
//    input); the inverse runs the conjugate decreasing-stride schedule, so
//    the mid-pipeline bit-reversal of Algorithm 1 reduces to a host-side
//    read permutation.
//  * Within a butterfly level, the high rows run [diff, mult, Montgomery]
//    and the low rows [add, Barrett] under separate row masks, mirroring
//    the Fig. 4(c) stage grouping.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ntt/ntt.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ntt/params.h"
#include "ntt/poly.h"
#include "ntt/reduction.h"
#include "pim/device.h"
#include "pim/executor.h"
#include "pim/program.h"
#include "pim/switch.h"
#include "reliability/manager.h"

namespace cryptopim::sim {

/// Aggregated measurements of one simulated multiplication.
struct SimReport {
  std::uint64_t wall_cycles = 0;  ///< per-bank critical path, stages summed
  std::size_t stages = 0;
  pim::ExecStats totals;          ///< summed over all banks (for energy)
  double latency_us = 0;          ///< wall_cycles * cycle time
  double energy_uj = 0;
  /// Per-stage cycle counts along the critical (A) path, in pipeline
  /// order — the input the pipelined-streaming simulator beats on.
  /// Invariant (tested): sum(stage_cycles) == wall_cycles.
  std::vector<std::uint64_t> stage_cycles;
  /// Stage names parallel to stage_cycles ("scale", "butterfly/s8", ...).
  std::vector<std::string> stage_names;
  /// Fault-tolerance ledger of the run (enabled=false without a
  /// ReliabilityManager attached; then wall_cycles is exactly the
  /// reliability-free figure). wall_cycles covers the final successful
  /// attempt; abandoned attempts are in reliability.retry_cycles and
  /// verify/repair overheads in their own fields.
  reliability::RelStats reliability;
};

class CryptoPimSimulator {
 public:
  explicit CryptoPimSimulator(
      const ntt::NttParams& params,
      pim::DeviceModel device = pim::DeviceModel::paper_45nm());

  /// c = a * b over Z_q[x]/(x^n + 1), computed entirely in simulated
  /// memory. Coefficients must be canonical in [0, q).
  ntt::Poly multiply(const ntt::Poly& a, const ntt::Poly& b);

  /// Measurements of the most recent multiply() call.
  const SimReport& report() const noexcept { return report_; }

  /// The stage-microcode library compiled during the most recent
  /// multiply(): one broadcast program per stage (controller view).
  const pim::Controller& microcode() const noexcept { return microcode_; }

  const ntt::NttParams& params() const noexcept { return params_; }

  // -- observability ---------------------------------------------------------
  // By default the simulator records into the process-global tracer and
  // metrics registry (obs::tracer() / obs::metrics()); tracing only
  // happens while the tracer is enabled. Tests may redirect both.
  //
  // Trace layout: track b = bank b of the critical (A) path; track
  // kSoftbankTrackBase + b = softbank b of the concurrent B path; track
  // kPipelineTrack carries one span per wall-path stage, so the spans on
  // that track sum exactly to SimReport::wall_cycles.
  static constexpr std::uint32_t kSoftbankTrackBase = 1u << 15;
  static constexpr std::uint32_t kPipelineTrack = 1u << 16;
  void set_tracer(obs::Tracer* tracer) noexcept { custom_tracer_ = tracer; }
  void set_metrics(obs::MetricsRegistry* reg) noexcept { custom_metrics_ = reg; }

  // -- fault tolerance --------------------------------------------------------
  // With a manager attached, every stage block gets its faults planted
  // before use, switch transfers carry the parity column, results are
  // Freivalds-verified, and failed attempts retry after repair
  // (column/bank remap). multiply() then either returns a verified
  // result or throws reliability::UnrecoverableFault (chip must
  // degrade). Non-owning; nullptr (the default) keeps the exact
  // reliability-free execution and cycle accounting.
  void set_reliability(reliability::ReliabilityManager* rm) noexcept {
    rel_ = rm;
  }
  reliability::ReliabilityManager* reliability_manager() const noexcept {
    return rel_;
  }

 private:
  struct PolyState;

  /// One full non-pipelined multiplication (one attempt). Fills report_.
  ntt::Poly multiply_attempt(const ntt::Poly& a, const ntt::Poly& b);

  std::unique_ptr<PolyState> make_state();
  pim::FixedFunctionSwitch make_switch(unsigned stride) const;
  void load_input(PolyState& st, const ntt::Poly& p,
                  const std::vector<std::uint32_t>& scale_factors) const;

  // Stage programs. Each consumes `cur`, produces a fresh stage array and
  // accumulates stats into report_.
  void stage_scale(std::unique_ptr<PolyState>& st, bool montgomery_domain,
                   const std::vector<std::uint32_t>& factors_by_row);
  void stage_butterfly(std::unique_ptr<PolyState>& st, std::uint32_t stride,
                       const std::vector<std::uint32_t>& twiddle_by_high_row);
  void stage_pointwise(std::unique_ptr<PolyState>& a,
                       std::unique_ptr<PolyState>& b);

  std::vector<std::uint32_t> forward_twiddles_by_row(std::uint32_t stride) const;
  std::vector<std::uint32_t> inverse_twiddles_by_row(std::uint32_t stride) const;

  /// Attaches tracer/track/base-cycle to a freshly made stage state
  /// (track block depends on whether we are on the wall (A) or softbank
  /// (B) path).
  void attach_obs(PolyState& st) const;
  void accumulate(PolyState& st, const std::string& stage_name);
  void record_stage_program(std::string name, pim::Program& program);

  ntt::NttParams params_;
  pim::DeviceModel device_;
  ntt::GsNttEngine engine_;
  ntt::BarrettShiftAdd barrett_;
  ntt::MontgomeryShiftAdd montgomery_;
  unsigned banks_ = 1;
  std::size_t rows_per_bank_ = 0;
  unsigned width_ = 0;  ///< datapath bit-width
  bool wall_enabled_ = true;
  reliability::ReliabilityManager* rel_ = nullptr;
  /// Stage states materialised so far this attempt — the physical block
  /// index the fault model keys endurance failures on.
  unsigned stage_counter_ = 0;
  SimReport report_;
  pim::Controller microcode_;
  obs::Tracer* custom_tracer_ = nullptr;
  obs::MetricsRegistry* custom_metrics_ = nullptr;
  // Resolved per multiply(): nullptr when tracing is off for the run.
  obs::Tracer* active_tracer_ = nullptr;
  obs::MetricsRegistry* active_metrics_ = nullptr;
};

}  // namespace cryptopim::sim
