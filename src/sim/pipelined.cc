#include "sim/pipelined.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "obs/trace.h"

namespace cryptopim::sim {

PipelinedSimulator::PipelinedSimulator(const ntt::NttParams& params,
                                       pim::DeviceModel device)
    : params_(params), device_(device) {}

std::vector<ntt::Poly> PipelinedSimulator::multiply_stream(
    const std::vector<std::pair<ntt::Poly, ntt::Poly>>& pairs) {
  if (pairs.empty()) {
    report_ = PipelineRunReport{};
    return {};
  }

  // Every pipeline stage is a physically distinct memory block, so jobs
  // in different stages cannot interact: executing the jobs' stage
  // programs in any serial order yields exactly the data the overlapped
  // hardware produces. We therefore run each job through the stage
  // sequence (collecting its per-stage cycle trace) and derive the
  // beat-accurate schedule from the traces, which are identical across
  // jobs by construction (same microcode broadcast per stage).
  // Each per-job multiply would emit its own full (and mutually
  // overlapping) timeline; suppress those and emit the beat-level
  // pipeline schedule instead once the beat period is known.
  obs::Tracer& tr = obs::tracer();
  const bool tracing = CRYPTOPIM_TRACING && tr.enabled();
  if (tracing) tr.set_enabled(false);

  CryptoPimSimulator simu(params_, device_);
  simu.set_reliability(rel_);
  std::vector<ntt::Poly> results;
  results.reserve(pairs.size());
  std::vector<std::uint64_t> trace;
  reliability::RelStats rel_total;
  rel_total.verified = rel_ != nullptr;  // stays true only if every job is
  for (const auto& [a, b] : pairs) {
    try {
      results.push_back(simu.multiply(a, b));
    } catch (...) {
      if (tracing) tr.set_enabled(true);
      throw;
    }
    if (rel_ != nullptr) {
      // Sum the per-job ledgers into the batch ledger.
      const auto& s = simu.report().reliability;
      rel_total.enabled = true;
      rel_total.verified = rel_total.verified && s.verified;
      rel_total.attempts += s.attempts;
      rel_total.faults_planted += s.faults_planted;
      rel_total.transient_flips += s.transient_flips;
      rel_total.parity_mismatches += s.parity_mismatches;
      rel_total.verify_checks += s.verify_checks;
      rel_total.verify_failures += s.verify_failures;
      rel_total.columns_remapped += s.columns_remapped;
      rel_total.banks_remapped += s.banks_remapped;
      rel_total.wear_failures += s.wear_failures;
      rel_total.verify_cycles += s.verify_cycles;
      rel_total.repair_cycles += s.repair_cycles;
      rel_total.retry_cycles += s.retry_cycles;
    }
    if (trace.empty()) {
      trace = simu.report().stage_cycles;
    } else if (trace != simu.report().stage_cycles) {
      // The controller broadcasts fixed programs; a data-dependent trace
      // would break lock-step pipelining.
      if (tracing) tr.set_enabled(true);
      throw std::logic_error("stage traces differ across jobs");
    }
  }
  if (tracing) tr.set_enabled(true);

  // Lock-step beats: all stages run their program each beat; the beat
  // period is the slowest stage. One job completes per beat once full.
  report_ = PipelineRunReport{};
  report_.jobs = pairs.size();
  report_.depth = trace.size();
  report_.beat_cycles = *std::max_element(trace.begin(), trace.end());
  for (const auto c : trace) report_.fill_cycles += c;
  // Under lock-step beats the fill is depth * beat; the sum-of-stages
  // fill corresponds to self-timed stages. Hardware uses lock-step.
  report_.fill_cycles =
      report_.beat_cycles * static_cast<std::uint64_t>(report_.depth);
  report_.makespan_cycles =
      report_.fill_cycles + (pairs.size() - 1) * report_.beat_cycles;
  report_.makespan_us =
      static_cast<double>(report_.makespan_cycles) * device_.cycle_ns * 1e-3;
  report_.throughput_per_s =
      1.0 / (static_cast<double>(report_.beat_cycles) * device_.cycle_s());
  report_.reliability = rel_total;

#if CRYPTOPIM_TRACING
  if (tracing) {
    // Lock-step beat schedule: job j occupies stage s during beat j + s.
    // One track per pipeline stage; span length is the stage's real work
    // within its beat window.
    const auto& names = simu.report().stage_names;
    for (std::size_t s = 0; s < trace.size(); ++s) {
      const std::uint32_t track = kStageTrackBase + static_cast<std::uint32_t>(s);
      tr.set_track_name(track, "stage " + std::to_string(s) + ": " +
                                   (s < names.size() ? names[s] : "?"));
      for (std::size_t j = 0; j < pairs.size(); ++j) {
        tr.emit(track, "job " + std::to_string(j), "pipeline.beat",
                (j + s) * report_.beat_cycles, trace[s]);
      }
    }
  }
#endif
  return results;
}

}  // namespace cryptopim::sim
