// Bit-manipulation helpers shared across the CryptoPIM stack.
//
// All functions are constexpr and operate on unsigned 64-bit values; they
// are used both by the software NTT (bit-reversed addressing) and by the
// PIM circuit generators (shift-add decompositions of constants).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace cryptopim {

/// True iff `x` is a non-zero power of two.
constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)); precondition x > 0.
constexpr unsigned ilog2(std::uint64_t x) noexcept {
  assert(x > 0);
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/// Number of bits needed to represent `x` (bit_width); 0 for x == 0.
constexpr unsigned bit_length(std::uint64_t x) noexcept {
  return static_cast<unsigned>(std::bit_width(x));
}

/// Reverse the lowest `bits` bits of `x` (the rest must be zero).
constexpr std::uint64_t bit_reverse(std::uint64_t x, unsigned bits) noexcept {
  assert(bits <= 64);
  std::uint64_t r = 0;
  for (unsigned i = 0; i < bits; ++i) {
    r = (r << 1) | (x & 1u);
    x >>= 1;
  }
  return r;
}

/// Positions (LSB-first) of the set bits of `x`.
inline std::vector<unsigned> set_bit_positions(std::uint64_t x) {
  std::vector<unsigned> pos;
  while (x != 0) {
    pos.push_back(static_cast<unsigned>(std::countr_zero(x)));
    x &= x - 1;
  }
  return pos;
}

/// A signed-digit term of a shift-add decomposition: value contribution is
/// `sign * 2^shift`.
struct ShiftAddTerm {
  unsigned shift = 0;
  int sign = +1;  // +1 or -1
};

/// Decompose `c` into a minimal-ish signed-digit (NAF) representation:
/// c = sum(sign_i * 2^shift_i). Used to turn constant multiplications into
/// shift-and-add/subtract chains (Algorithm 3 of the paper).
inline std::vector<ShiftAddTerm> naf_decompose(std::uint64_t c) {
  std::vector<ShiftAddTerm> terms;
  unsigned shift = 0;
  while (c != 0) {
    if (c & 1u) {
      // NAF digit: choose +1 when c ≡ 1 (mod 4), else -1.
      const int digit = (c & 3u) == 1u ? +1 : -1;
      terms.push_back({shift, digit});
      c -= static_cast<std::uint64_t>(static_cast<std::int64_t>(digit));
    }
    c >>= 1;
    ++shift;
  }
  return terms;
}

/// Evaluate a shift-add decomposition (for tests): sum(sign * (x << shift)).
constexpr std::uint64_t eval_shift_add(std::uint64_t x,
                                       const ShiftAddTerm* terms,
                                       std::size_t count) noexcept {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t t = x << terms[i].shift;
    acc = terms[i].sign > 0 ? acc + t : acc - t;
  }
  return acc;
}

}  // namespace cryptopim
