// Plain-text aligned table printing + CSV export used by the benchmark
// harness to regenerate the paper's tables and figure series.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cryptopim {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with sensible defaults. Usage:
///   Table t({"n", "latency (us)", "paper", "ratio"});
///   t.add_row({"256", fmt_f(68.67), fmt_f(68.67), fmt_f(1.0)});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal separator before the next row.
  void add_separator();

  void print(std::ostream& os) const;
  /// Comma-separated export (separators skipped).
  void write_csv(std::ostream& os) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

/// Fixed-point formatting with `digits` decimals (default 2).
std::string fmt_f(double v, int digits = 2);
/// Integer with thousands separators: 553311 -> "553,311".
std::string fmt_i(std::uint64_t v);
/// Ratio formatted as "12.7x"; "-" for non-finite input.
std::string fmt_x(double v, int digits = 1);
/// Percentage formatted as "+29.0%" / "-5.2%".
std::string fmt_pct(double fraction, int digits = 1);
/// Engineering formatting of seconds: "68.67 us", "1.81 ns", "12.76 ms".
std::string fmt_time_s(double seconds, int digits = 2);

}  // namespace cryptopim
