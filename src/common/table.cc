#include "common/table.h"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace cryptopim {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void Table::add_separator() { pending_separator_ = true; }

namespace {

void print_rule(std::ostream& os, const std::vector<std::size_t>& widths) {
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << '+' << std::string(widths[c] + 2, '-');
  }
  os << "+\n";
}

void print_cells(std::ostream& os, const std::vector<std::string>& cells,
                 const std::vector<std::size_t>& widths) {
  for (std::size_t c = 0; c < widths.size(); ++c) {
    const std::string& cell = c < cells.size() ? cells[c] : std::string{};
    os << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
  }
  os << "|\n";
}

}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& r : rows_) {
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }
  print_rule(os, widths);
  print_cells(os, header_, widths);
  print_rule(os, widths);
  for (const Row& r : rows_) {
    if (r.separator_before) print_rule(os, widths);
    print_cells(os, r.cells, widths);
  }
  print_rule(os, widths);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const Row& r : rows_) emit(r.cells);
}

std::string fmt_f(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_i(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  const std::size_t n = raw.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(raw[i]);
  }
  return out;
}

std::string fmt_x(double v, int digits) {
  if (!std::isfinite(v)) return "-";
  return fmt_f(v, digits) + "x";
}

std::string fmt_pct(double fraction, int digits) {
  const double pct = fraction * 100.0;
  std::string s = fmt_f(pct, digits) + "%";
  if (pct >= 0) s.insert(s.begin(), '+');
  return s;
}

std::string fmt_time_s(double seconds, int digits) {
  const double a = std::fabs(seconds);
  if (a >= 1.0) return fmt_f(seconds, digits) + " s";
  if (a >= 1e-3) return fmt_f(seconds * 1e3, digits) + " ms";
  if (a >= 1e-6) return fmt_f(seconds * 1e6, digits) + " us";
  return fmt_f(seconds * 1e9, digits) + " ns";
}

}  // namespace cryptopim
