// Deterministic pseudo-random number generation for tests, benches and
// samplers. xoshiro256** — fast, high quality, reproducible across
// platforms (unlike std::mt19937 distributions).
#pragma once

#include <cstdint>

namespace cryptopim {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). Precondition bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Rejection-free is fine here: bias is negligible for our bounds
    // (all < 2^32) but we reject to keep tests distribution-clean.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t v = next();
    while (v >= limit) v = next();
    return v % bound;
  }

  /// Uniform value with exactly `bits` significant bits available
  /// (i.e. in [0, 2^bits)).
  std::uint64_t next_bits(unsigned bits) noexcept {
    return bits >= 64 ? next() : (next() & ((std::uint64_t{1} << bits) - 1));
  }

  /// Non-advancing fold of the internal state — a position fingerprint
  /// for snapshot cross-checks. Two generators with equal digests have
  /// consumed the same stream prefix from the same seed.
  std::uint64_t digest() const noexcept {
    std::uint64_t d = 0x243f6a8885a308d3ull;
    for (const std::uint64_t s : state_) {
      d ^= s;
      d *= 0x100000001b3ull;
      d = rotl(d, 29);
    }
    return d;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace cryptopim
