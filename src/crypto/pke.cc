#include "crypto/pke.h"

#include <bit>
#include <cassert>
#include <stdexcept>

#include "crypto/keccak.h"
#include "ntt/modular.h"

namespace cryptopim::crypto {

std::uint16_t compress_coeff(std::uint32_t x, unsigned d, std::uint32_t q) {
  assert(x < q && d <= 15);
  // round(2^d / q * x) mod 2^d
  const std::uint64_t scaled =
      ((static_cast<std::uint64_t>(x) << d) + q / 2) / q;
  return static_cast<std::uint16_t>(scaled & ((1u << d) - 1));
}

std::uint32_t decompress_coeff(std::uint16_t c, unsigned d, std::uint32_t q) {
  assert(d <= 15 && c < (1u << d));
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(c) * q + (1u << (d - 1))) >> d);
}

namespace {

// Seeded XOF stream: SHAKE128(seed || nonce).
KeccakSponge make_stream(const Seed& seed, std::uint8_t nonce) {
  KeccakSponge sponge(168, 0x1F);
  sponge.absorb(seed);
  const std::uint8_t n[1] = {nonce};
  sponge.absorb(n);
  sponge.finalize();
  return sponge;
}

}  // namespace

ntt::Poly sample_uniform_xof(const Seed& seed, std::uint8_t nonce,
                             std::uint32_t n, std::uint32_t q) {
  auto stream = make_stream(seed, nonce);
  ntt::Poly p(n);
  // Rejection sampling on 16-bit chunks keeps the output exactly uniform.
  const std::uint32_t limit = (0x10000u / q) * q;
  for (auto& c : p) {
    for (;;) {
      std::uint8_t buf[2];
      stream.squeeze(buf);
      const std::uint32_t v =
          static_cast<std::uint32_t>(buf[0]) | (std::uint32_t{buf[1]} << 8);
      if (v < limit) {
        c = v % q;
        break;
      }
    }
  }
  return p;
}

ntt::Poly sample_cbd_xof(const Seed& seed, std::uint8_t nonce,
                         std::uint32_t n, std::uint32_t q, unsigned eta) {
  assert(eta >= 1 && eta <= 8);
  auto stream = make_stream(seed, nonce);
  ntt::Poly p(n);
  for (auto& c : p) {
    std::uint8_t buf[2];  // enough bits for eta <= 8
    stream.squeeze(buf);
    const std::uint16_t bits =
        static_cast<std::uint16_t>(buf[0] | (buf[1] << 8));
    const int a = std::popcount(static_cast<unsigned>(bits & ((1u << eta) - 1)));
    const int b = std::popcount(
        static_cast<unsigned>((bits >> eta) & ((1u << eta) - 1)));
    const int v = a - b;
    c = v >= 0 ? static_cast<std::uint32_t>(v)
               : q - static_cast<std::uint32_t>(-v);
  }
  return p;
}

PkeScheme::PkeScheme(const PkeParams& params)
    : params_(params),
      ring_(ntt::NttParams::make(params.n, params.q)),
      engine_(ring_) {
  multiplier_ = [this](const ntt::Poly& a, const ntt::Poly& b) {
    return engine_.negacyclic_multiply(a, b);
  };
}

ntt::Poly PkeScheme::mul(const ntt::Poly& a, const ntt::Poly& b) const {
  ++mul_count_;
  return multiplier_(a, b);
}

std::pair<PkePublicKey, PkeSecretKey> PkeScheme::keygen(
    const Seed& seed) const {
  // Split the master seed into the public (rho) and secret (sigma) parts.
  const auto expanded = shake256(seed, 64);
  Seed rho{}, sigma{};
  std::copy_n(expanded.begin(), 32, rho.begin());
  std::copy_n(expanded.begin() + 32, 32, sigma.begin());

  const ntt::Poly a = sample_uniform_xof(rho, 0, params_.n, params_.q);
  PkeSecretKey sk{sample_cbd_xof(sigma, 0, params_.n, params_.q, params_.eta)};
  const ntt::Poly e =
      sample_cbd_xof(sigma, 1, params_.n, params_.q, params_.eta);

  PkePublicKey pk;
  pk.rho = rho;
  pk.b = ntt::poly_add(mul(a, sk.s), e, params_.q);
  return {std::move(pk), std::move(sk)};
}

PkeCiphertext PkeScheme::encrypt(const PkePublicKey& pk, const Message& m,
                                 const Seed& coins) const {
  const ntt::Poly a = sample_uniform_xof(pk.rho, 0, params_.n, params_.q);
  const ntt::Poly r = sample_cbd_xof(coins, 0, params_.n, params_.q,
                                     params_.eta);
  const ntt::Poly e1 = sample_cbd_xof(coins, 1, params_.n, params_.q,
                                      params_.eta);
  const ntt::Poly e2 = sample_cbd_xof(coins, 2, params_.n, params_.q,
                                      params_.eta);

  // Message bit i -> coefficient i scaled to q/2 (n/256 copies per bit
  // for redundancy when n > 256).
  ntt::Poly msg(params_.n, 0);
  const std::uint32_t copies = params_.n / 256;
  for (std::size_t bit = 0; bit < 256; ++bit) {
    if ((m[bit / 8] >> (bit % 8)) & 1u) {
      for (std::uint32_t k = 0; k < copies; ++k) {
        msg[bit + 256 * k] = params_.q / 2;
      }
    }
  }

  const ntt::Poly u = ntt::poly_add(mul(a, r), e1, params_.q);
  const ntt::Poly v = ntt::poly_add(
      ntt::poly_add(mul(pk.b, r), e2, params_.q), msg, params_.q);

  PkeCiphertext ct;
  ct.u.resize(params_.n);
  ct.v.resize(params_.n);
  for (std::uint32_t i = 0; i < params_.n; ++i) {
    ct.u[i] = compress_coeff(u[i], params_.du, params_.q);
    ct.v[i] = compress_coeff(v[i], params_.dv, params_.q);
  }
  return ct;
}

Message PkeScheme::decrypt(const PkeSecretKey& sk,
                           const PkeCiphertext& ct) const {
  if (ct.u.size() != params_.n || ct.v.size() != params_.n ||
      sk.s.size() != params_.n) {
    throw std::invalid_argument("ciphertext/key size mismatch");
  }
  ntt::Poly u(params_.n), v(params_.n);
  for (std::uint32_t i = 0; i < params_.n; ++i) {
    u[i] = decompress_coeff(ct.u[i], params_.du, params_.q);
    v[i] = decompress_coeff(ct.v[i], params_.dv, params_.q);
  }
  const ntt::Poly noisy = ntt::poly_sub(v, mul(u, sk.s), params_.q);

  // Majority vote over the redundant copies of each bit.
  Message m{};
  const std::uint32_t copies = params_.n / 256;
  for (std::size_t bit = 0; bit < 256; ++bit) {
    std::int64_t score = 0;
    for (std::uint32_t k = 0; k < copies; ++k) {
      const auto c = ntt::centered(noisy[bit + 256 * k], params_.q);
      score += std::llabs(c) > params_.q / 4 ? 1 : -1;
    }
    if (score > 0) m[bit / 8] |= 1u << (bit % 8);
  }
  return m;
}

std::vector<std::uint8_t> PkeScheme::encode(const PkePublicKey& pk) const {
  std::vector<std::uint8_t> out(pk.rho.begin(), pk.rho.end());
  for (const auto c : pk.b) {
    out.push_back(static_cast<std::uint8_t>(c));
    out.push_back(static_cast<std::uint8_t>(c >> 8));
  }
  return out;
}

std::vector<std::uint8_t> PkeScheme::encode(const PkeCiphertext& ct) const {
  std::vector<std::uint8_t> out;
  out.reserve(2 * (ct.u.size() + ct.v.size()));
  for (const auto c : ct.u) {
    out.push_back(static_cast<std::uint8_t>(c));
    out.push_back(static_cast<std::uint8_t>(c >> 8));
  }
  for (const auto c : ct.v) {
    out.push_back(static_cast<std::uint8_t>(c));
    out.push_back(static_cast<std::uint8_t>(c >> 8));
  }
  return out;
}

}  // namespace cryptopim::crypto
