// RLWE public-key encryption with ciphertext compression.
//
// An LPR-style scheme at NewHope-like parameters (n = 1024, q = 12289,
// CBD eta = 2) with Kyber-style d-bit coefficient compression of the
// ciphertext — the "public-key encryption ... for data at rest and in
// communication" workload of the paper. All sampling is deterministic
// from SHAKE128 streams so encryption can be re-run from coins (what the
// KEM's re-encryption check needs), and the ring multiplier is pluggable
// so the accelerator can execute every polynomial product.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "ntt/ntt.h"
#include "ntt/params.h"
#include "ntt/poly.h"

namespace cryptopim::crypto {

using Seed = std::array<std::uint8_t, 32>;
using Message = std::array<std::uint8_t, 32>;

struct PkeParams {
  std::uint32_t n = 1024;
  std::uint32_t q = 12289;
  unsigned eta = 2;   ///< CBD noise parameter
  unsigned du = 11;   ///< compression bits for the u component
  unsigned dv = 4;    ///< compression bits for the v component

  static PkeParams newhope_like() { return PkeParams{}; }
};

struct PkePublicKey {
  Seed rho{};      ///< seed of the public uniform polynomial a
  ntt::Poly b;     ///< a*s + e
};
struct PkeSecretKey {
  ntt::Poly s;
};
struct PkeCiphertext {
  std::vector<std::uint16_t> u;  ///< du-bit compressed coefficients
  std::vector<std::uint16_t> v;  ///< dv-bit compressed coefficients
};

/// d-bit coefficient compression: round(2^d / q * x) mod 2^d.
std::uint16_t compress_coeff(std::uint32_t x, unsigned d, std::uint32_t q);
/// Inverse: round(q / 2^d * c).
std::uint32_t decompress_coeff(std::uint16_t c, unsigned d, std::uint32_t q);

/// Uniform polynomial from a SHAKE128 stream (rejection sampling).
ntt::Poly sample_uniform_xof(const Seed& seed, std::uint8_t nonce,
                             std::uint32_t n, std::uint32_t q);
/// Centered-binomial polynomial from a SHAKE128 stream.
ntt::Poly sample_cbd_xof(const Seed& seed, std::uint8_t nonce,
                         std::uint32_t n, std::uint32_t q, unsigned eta);

class PkeScheme {
 public:
  using Multiplier =
      std::function<ntt::Poly(const ntt::Poly&, const ntt::Poly&)>;

  explicit PkeScheme(const PkeParams& params = PkeParams::newhope_like());

  const PkeParams& params() const noexcept { return params_; }
  void set_multiplier(Multiplier m) { multiplier_ = std::move(m); }
  std::uint64_t multiplications() const noexcept { return mul_count_; }

  /// Deterministic key generation from a 32-byte seed.
  std::pair<PkePublicKey, PkeSecretKey> keygen(const Seed& seed) const;

  /// Deterministic encryption from 32 bytes of coins.
  PkeCiphertext encrypt(const PkePublicKey& pk, const Message& m,
                        const Seed& coins) const;

  Message decrypt(const PkeSecretKey& sk, const PkeCiphertext& ct) const;

  /// Canonical byte encodings (hashed by the KEM).
  std::vector<std::uint8_t> encode(const PkePublicKey& pk) const;
  std::vector<std::uint8_t> encode(const PkeCiphertext& ct) const;

 private:
  ntt::Poly mul(const ntt::Poly& a, const ntt::Poly& b) const;

  PkeParams params_;
  ntt::NttParams ring_;
  ntt::GsNttEngine engine_;
  Multiplier multiplier_;
  mutable std::uint64_t mul_count_ = 0;
};

}  // namespace cryptopim::crypto
