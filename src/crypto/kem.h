// Key encapsulation (KEM) on top of the RLWE PKE — a
// Fujisaki–Okamoto-style transform with re-encryption check and implicit
// rejection, the "key agreement" mechanism the paper's introduction names
// as a primary LBC application.
//
//   encaps: m <- $;  (Kbar, coins) = G(m || H(pk));  c = Enc(pk, m; coins)
//           K = KDF(Kbar || H(c))
//   decaps: m' = Dec(sk, c); recompute (Kbar', coins'); re-encrypt;
//           on mismatch derive K from the secret rejection value z
//           (implicit rejection — no decryption oracle).
#pragma once

#include "crypto/pke.h"

namespace cryptopim::crypto {

using SharedKey = std::array<std::uint8_t, 32>;

struct KemPublicKey {
  PkePublicKey pke;
};
struct KemSecretKey {
  PkeSecretKey pke;
  PkePublicKey pk_copy;  ///< needed for re-encryption
  Seed z{};              ///< implicit-rejection secret
};

class KemScheme {
 public:
  explicit KemScheme(const PkeParams& params = PkeParams::newhope_like())
      : pke_(params) {}

  PkeScheme& pke() noexcept { return pke_; }
  const PkeScheme& pke() const noexcept { return pke_; }

  std::pair<KemPublicKey, KemSecretKey> keygen(const Seed& seed) const;

  /// Returns (ciphertext, shared key); `entropy` supplies the ephemeral m.
  std::pair<PkeCiphertext, SharedKey> encapsulate(const KemPublicKey& pk,
                                                  const Seed& entropy) const;

  /// Always returns a key: the correct one for honest ciphertexts, a
  /// pseudorandom rejection key for forged ones.
  SharedKey decapsulate(const KemSecretKey& sk,
                        const PkeCiphertext& ct) const;

 private:
  PkeScheme pke_;
};

}  // namespace cryptopim::crypto
