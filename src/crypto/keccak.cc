#include "crypto/keccak.h"

#include <cassert>

namespace cryptopim::crypto {

namespace {

constexpr std::uint64_t rotl64(std::uint64_t x, unsigned k) {
  return k == 0 ? x : (x << k) | (x >> (64 - k));
}

// Round constants from the degree-8 LFSR x^8+x^6+x^5+x^4+1 (FIPS 202
// Algorithm 5): RC[i] has bit 2^j - 1 set to rc(7i + j).
constexpr std::array<std::uint64_t, 24> make_round_constants() {
  std::array<std::uint64_t, 24> rc{};
  std::uint8_t lfsr = 1;
  for (unsigned round = 0; round < 24; ++round) {
    std::uint64_t c = 0;
    for (unsigned j = 0; j <= 6; ++j) {
      // rc(t): bit 0 of the LFSR state at step t = 7*round + j.
      const bool bit = lfsr & 1u;
      if (bit) c |= std::uint64_t{1} << ((1u << j) - 1);
      const bool high = lfsr & 0x80u;
      lfsr = static_cast<std::uint8_t>(lfsr << 1);
      if (high) lfsr ^= 0x71u;  // x^8 = x^6 + x^5 + x^4 + 1
    }
    rc[round] = c;
  }
  return rc;
}

// rho rotation offsets from the (x,y) -> (y, 2x+3y) walk (FIPS 202 §3.2.2).
constexpr std::array<unsigned, 25> make_rho_offsets() {
  std::array<unsigned, 25> off{};
  unsigned x = 1, y = 0;
  for (unsigned t = 0; t < 24; ++t) {
    off[x + 5 * y] = ((t + 1) * (t + 2) / 2) % 64;
    const unsigned nx = y;
    const unsigned ny = (2 * x + 3 * y) % 5;
    x = nx;
    y = ny;
  }
  return off;
}

constexpr auto kRc = make_round_constants();
constexpr auto kRho = make_rho_offsets();

}  // namespace

void keccak_f1600(std::array<std::uint64_t, 25>& a) {
  for (unsigned round = 0; round < 24; ++round) {
    // theta
    std::uint64_t c[5];
    for (unsigned x = 0; x < 5; ++x) {
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    }
    for (unsigned x = 0; x < 5; ++x) {
      const std::uint64_t d = c[(x + 4) % 5] ^ rotl64(c[(x + 1) % 5], 1);
      for (unsigned y = 0; y < 5; ++y) a[x + 5 * y] ^= d;
    }
    // rho + pi
    std::array<std::uint64_t, 25> b{};
    for (unsigned x = 0; x < 5; ++x) {
      for (unsigned y = 0; y < 5; ++y) {
        b[y + 5 * ((2 * x + 3 * y) % 5)] = rotl64(a[x + 5 * y],
                                                  kRho[x + 5 * y]);
      }
    }
    // chi
    for (unsigned y = 0; y < 5; ++y) {
      for (unsigned x = 0; x < 5; ++x) {
        a[x + 5 * y] =
            b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
      }
    }
    // iota
    a[0] ^= kRc[round];
  }
}

KeccakSponge::KeccakSponge(unsigned rate_bytes, std::uint8_t domain)
    : rate_(rate_bytes), domain_(domain) {
  assert(rate_bytes > 0 && rate_bytes < 200 && rate_bytes % 8 == 0);
}

std::uint8_t KeccakSponge::state_byte(unsigned i) const {
  return static_cast<std::uint8_t>(state_[i / 8] >> (8 * (i % 8)));
}

void KeccakSponge::xor_state_byte(unsigned i, std::uint8_t v) {
  state_[i / 8] ^= static_cast<std::uint64_t>(v) << (8 * (i % 8));
}

void KeccakSponge::absorb(std::span<const std::uint8_t> data) {
  assert(!finalized_);
  for (const std::uint8_t byte : data) {
    xor_state_byte(offset_++, byte);
    if (offset_ == rate_) {
      keccak_f1600(state_);
      offset_ = 0;
    }
  }
}

void KeccakSponge::finalize() {
  assert(!finalized_);
  xor_state_byte(offset_, domain_);
  xor_state_byte(rate_ - 1, 0x80);
  keccak_f1600(state_);
  offset_ = 0;
  finalized_ = true;
}

void KeccakSponge::squeeze(std::span<std::uint8_t> out) {
  assert(finalized_);
  for (auto& byte : out) {
    if (offset_ == rate_) {
      keccak_f1600(state_);
      offset_ = 0;
    }
    byte = state_byte(offset_++);
  }
}

std::array<std::uint8_t, 32> sha3_256(std::span<const std::uint8_t> data) {
  KeccakSponge sponge(136, 0x06);
  sponge.absorb(data);
  sponge.finalize();
  std::array<std::uint8_t, 32> out{};
  sponge.squeeze(out);
  return out;
}

std::vector<std::uint8_t> shake128(std::span<const std::uint8_t> data,
                                   std::size_t out_len) {
  KeccakSponge sponge(168, 0x1F);
  sponge.absorb(data);
  sponge.finalize();
  std::vector<std::uint8_t> out(out_len);
  sponge.squeeze(out);
  return out;
}

std::vector<std::uint8_t> shake256(std::span<const std::uint8_t> data,
                                   std::size_t out_len) {
  KeccakSponge sponge(136, 0x1F);
  sponge.absorb(data);
  sponge.finalize();
  std::vector<std::uint8_t> out(out_len);
  sponge.squeeze(out);
  return out;
}

}  // namespace cryptopim::crypto
