// Keccak-f[1600] sponge: SHA3-256 and the SHAKE128/256 XOFs.
//
// The KEM layer needs a real hash/XOF (seed expansion, implicit
// rejection, deterministic encryption coins) — this is a from-scratch
// implementation validated against the published FIPS-202 test vectors in
// tests/test_keccak.cc. Round constants and rotation offsets are computed
// from the LFSR/position formulas rather than embedded tables.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace cryptopim::crypto {

/// The Keccak-f[1600] permutation over the 5x5 lane state.
void keccak_f1600(std::array<std::uint64_t, 25>& state);

/// Incremental sponge with byte-oriented absorb/squeeze.
class KeccakSponge {
 public:
  /// `rate_bytes`: 136 for SHA3-256/SHAKE256, 168 for SHAKE128.
  /// `domain`: 0x06 for SHA-3, 0x1F for SHAKE.
  KeccakSponge(unsigned rate_bytes, std::uint8_t domain);

  void absorb(std::span<const std::uint8_t> data);
  /// Finish absorbing (pad + final permutation); call once.
  void finalize();
  /// Squeeze output bytes (finalize() first; may be called repeatedly).
  void squeeze(std::span<std::uint8_t> out);

 private:
  std::array<std::uint64_t, 25> state_{};
  unsigned rate_;
  std::uint8_t domain_;
  unsigned offset_ = 0;  // byte position within the rate
  bool finalized_ = false;

  std::uint8_t state_byte(unsigned i) const;
  void xor_state_byte(unsigned i, std::uint8_t v);
};

/// One-shot SHA3-256.
std::array<std::uint8_t, 32> sha3_256(std::span<const std::uint8_t> data);

/// One-shot SHAKE128 with arbitrary output length.
std::vector<std::uint8_t> shake128(std::span<const std::uint8_t> data,
                                   std::size_t out_len);

/// One-shot SHAKE256.
std::vector<std::uint8_t> shake256(std::span<const std::uint8_t> data,
                                   std::size_t out_len);

}  // namespace cryptopim::crypto
