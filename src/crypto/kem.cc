#include "crypto/kem.h"

#include "crypto/keccak.h"

namespace cryptopim::crypto {

namespace {

// G(m || H(pk)) -> (Kbar, coins)
void derive(const Message& m, const std::array<std::uint8_t, 32>& pk_hash,
            Seed& kbar, Seed& coins) {
  KeccakSponge g(136, 0x1F);  // SHAKE256
  g.absorb(m);
  g.absorb(pk_hash);
  g.finalize();
  g.squeeze(kbar);
  g.squeeze(coins);
}

SharedKey kdf(const Seed& kbar, const std::array<std::uint8_t, 32>& ct_hash) {
  KeccakSponge k(136, 0x1F);
  k.absorb(kbar);
  k.absorb(ct_hash);
  k.finalize();
  SharedKey out{};
  k.squeeze(out);
  return out;
}

}  // namespace

std::pair<KemPublicKey, KemSecretKey> KemScheme::keygen(
    const Seed& seed) const {
  // Independent sub-seeds for the PKE keys and the rejection secret.
  const auto expanded = shake256(seed, 64);
  Seed pke_seed{};
  std::copy_n(expanded.begin(), 32, pke_seed.begin());

  auto [pk, sk] = pke_.keygen(pke_seed);
  KemSecretKey ksk;
  ksk.pke = std::move(sk);
  ksk.pk_copy = pk;
  std::copy_n(expanded.begin() + 32, 32, ksk.z.begin());
  return {KemPublicKey{std::move(pk)}, std::move(ksk)};
}

std::pair<PkeCiphertext, SharedKey> KemScheme::encapsulate(
    const KemPublicKey& pk, const Seed& entropy) const {
  // Hash the entropy into the ephemeral message (hedges weak randomness).
  Message m{};
  const auto m_bytes = sha3_256(entropy);
  std::copy(m_bytes.begin(), m_bytes.end(), m.begin());

  const auto pk_hash = sha3_256(pke_.encode(pk.pke));
  Seed kbar{}, coins{};
  derive(m, pk_hash, kbar, coins);

  PkeCiphertext ct = pke_.encrypt(pk.pke, m, coins);
  const auto ct_hash = sha3_256(pke_.encode(ct));
  return {std::move(ct), kdf(kbar, ct_hash)};
}

SharedKey KemScheme::decapsulate(const KemSecretKey& sk,
                                 const PkeCiphertext& ct) const {
  const Message m = pke_.decrypt(sk.pke, ct);
  const auto pk_hash = sha3_256(pke_.encode(sk.pk_copy));
  Seed kbar{}, coins{};
  derive(m, pk_hash, kbar, coins);

  const PkeCiphertext reenc = pke_.encrypt(sk.pk_copy, m, coins);
  const auto ct_hash = sha3_256(pke_.encode(ct));
  const bool ok = reenc.u == ct.u && reenc.v == ct.v;
  if (ok) return kdf(kbar, ct_hash);

  // Implicit rejection: a key derived from the secret z, indistinguishable
  // from a real one to the attacker.
  return kdf(sk.z, ct_hash);
}

}  // namespace cryptopim::crypto
