// Structured request-lifecycle event log.
//
// The serving runtime emits one record per lifecycle transition
// (admitted, dispatched, retry, hedge, completed, ...) as an obs::Json
// object. The log buffers records in arrival order and serializes them
// as JSON Lines: one compact JSON object per line, preceded by a header
// line {"schema":"serve-events/2",...}. JSONL keeps the file greppable
// and streamable — consumers never need the whole log in memory.
//
// Schema history: serve-events/2 added a "chip" field to every record
// (control records included) so one log can interleave the lifecycle
// streams of a whole fleet; trace ids stay stable across cross-chip
// retries and hedges, so a request's causal chain reads across chips.
// tools/json_check --events accepts both versions.
//
// Like the Tracer, the log is disabled by default so the emit sites can
// stay unconditional in the runtime; a disabled log drops records at
// the door. Determinism: records carry only event-clock cycles and
// stable ids, so the same seed + config yields byte-identical output.
//
// Durability: the buffered mode (log + write_jsonl at the end of the
// run) loses everything on abnormal termination — untenable next to a
// crash-recoverable runtime. open_stream() instead writes each record
// as it is logged, with a {"schema":"serve-events/2","streamed":true}
// header (no up-front "records" count: the total is unknowable while
// streaming). Control records — cluster-level transitions with no
// "trace" field (carve, bank_failure, chip_crash, reshard, ...) — are
// flushed to the OS as they land, so after a crash the log is always a
// parseable prefix whose control history is complete; the opt-in
// line-buffered mode flushes *every* record for a fully-synced (slower)
// log. Both modes still buffer in memory, so records()/to_jsonl() keep
// working for in-process consumers.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace cryptopim::obs {

class EventLog {
 public:
  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// Drops all buffered records (keeps the enabled flag and any open
  /// stream — a fleet clears once before priming, after the CLI opened
  /// the stream).
  void clear() { records_.clear(); }

  /// Appends one record. No-op when disabled. With an open stream the
  /// record's line is also written out immediately (flushed when it is a
  /// control record or the stream is line-buffered).
  void log(Json record);

  std::size_t size() const noexcept { return records_.size(); }
  const std::vector<Json>& records() const noexcept { return records_; }

  /// Switches to streamed output: truncates `path`, writes the streamed
  /// header, and mirrors every subsequent record to the file as it is
  /// logged. `line_buffered` flushes after every record (default: only
  /// after control records). Enables the log. Throws std::runtime_error
  /// on I/O error.
  void open_stream(const std::string& path, bool line_buffered);
  bool streaming() const noexcept { return stream_.is_open(); }
  /// Final flush + close; the file is already complete (no trailer).
  void close_stream();

  /// Header line followed by one compact JSON object per record.
  std::string to_jsonl() const;
  /// Writes to_jsonl() to `path`; throws std::runtime_error on I/O error.
  void write_jsonl(const std::string& path) const;

 private:
  bool enabled_ = false;
  bool line_buffered_ = false;
  std::ofstream stream_;
  std::string stream_path_;
  std::vector<Json> records_;
};

}  // namespace cryptopim::obs
