// Structured request-lifecycle event log.
//
// The serving runtime emits one record per lifecycle transition
// (admitted, dispatched, retry, hedge, completed, ...) as an obs::Json
// object. The log buffers records in arrival order and serializes them
// as JSON Lines: one compact JSON object per line, preceded by a header
// line {"schema":"serve-events/2",...}. JSONL keeps the file greppable
// and streamable — consumers never need the whole log in memory.
//
// Schema history: serve-events/2 added a "chip" field to every record
// (control records included) so one log can interleave the lifecycle
// streams of a whole fleet; trace ids stay stable across cross-chip
// retries and hedges, so a request's causal chain reads across chips.
// tools/json_check --events accepts both versions.
//
// Like the Tracer, the log is disabled by default so the emit sites can
// stay unconditional in the runtime; a disabled log drops records at
// the door. Determinism: records carry only event-clock cycles and
// stable ids, so the same seed + config yields byte-identical output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"

namespace cryptopim::obs {

class EventLog {
 public:
  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// Drops all buffered records (keeps the enabled flag).
  void clear() { records_.clear(); }

  /// Appends one record. No-op when disabled.
  void log(Json record);

  std::size_t size() const noexcept { return records_.size(); }
  const std::vector<Json>& records() const noexcept { return records_; }

  /// Header line followed by one compact JSON object per record.
  std::string to_jsonl() const;
  /// Writes to_jsonl() to `path`; throws std::runtime_error on I/O error.
  void write_jsonl(const std::string& path) const;

 private:
  bool enabled_ = false;
  std::vector<Json> records_;
};

}  // namespace cryptopim::obs
