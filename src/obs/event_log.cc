#include "obs/event_log.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cryptopim::obs {

void EventLog::log(Json record) {
  if (!enabled_) return;
  if (stream_.is_open()) {
    stream_ << record.dump() << '\n';
    // Control records (no "trace" field: carve, bank_failure,
    // chip_crash, reshard, ...) are rare and mark exactly the
    // transitions a post-crash reader needs, so they always flush;
    // line-buffered mode flushes everything.
    if (line_buffered_ || !record.contains("trace")) stream_.flush();
    if (!stream_) {
      throw std::runtime_error("event log: write failed: " + stream_path_);
    }
  }
  records_.push_back(std::move(record));
}

void EventLog::open_stream(const std::string& path, bool line_buffered) {
  stream_.open(path, std::ios::binary | std::ios::trunc);
  if (!stream_) throw std::runtime_error("event log: cannot open " + path);
  stream_path_ = path;
  line_buffered_ = line_buffered;
  enabled_ = true;
  Json header = Json::object();
  header.set("schema", "serve-events/2");
  header.set("streamed", true);
  stream_ << header.dump() << '\n';
  stream_.flush();
  if (!stream_) throw std::runtime_error("event log: write failed: " + path);
}

void EventLog::close_stream() {
  if (!stream_.is_open()) return;
  stream_.flush();
  stream_.close();
}

std::string EventLog::to_jsonl() const {
  std::ostringstream os;
  Json header = Json::object();
  header.set("schema", "serve-events/2");
  header.set("records", static_cast<std::uint64_t>(records_.size()));
  os << header.dump() << '\n';
  for (const Json& r : records_) os << r.dump() << '\n';
  return os.str();
}

void EventLog::write_jsonl(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("event log: cannot open " + path);
  os << to_jsonl();
  if (!os) throw std::runtime_error("event log: write failed: " + path);
}

}  // namespace cryptopim::obs
