#include "obs/event_log.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cryptopim::obs {

void EventLog::log(Json record) {
  if (!enabled_) return;
  records_.push_back(std::move(record));
}

std::string EventLog::to_jsonl() const {
  std::ostringstream os;
  Json header = Json::object();
  header.set("schema", "serve-events/2");
  header.set("records", static_cast<std::uint64_t>(records_.size()));
  os << header.dump() << '\n';
  for (const Json& r : records_) os << r.dump() << '\n';
  return os.str();
}

void EventLog::write_jsonl(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("event log: cannot open " + path);
  os << to_jsonl();
  if (!os) throw std::runtime_error("event log: write failed: " + path);
}

}  // namespace cryptopim::obs
