#include "obs/slo.h"

namespace cryptopim::obs {

namespace {

/// Burn rate of one window: observed error rate over allowed error rate.
/// An objective of 1.0 allows zero errors; any error is infinite burn,
/// reported as a large sentinel (JSON has no infinity).
constexpr double kInfiniteBurn = 1e9;

double burn_rate(std::uint64_t bad, std::uint64_t total, double objective) {
  if (objective <= 0.0 || total == 0) return 0.0;
  const double allowed = 1.0 - objective;
  const double rate = static_cast<double>(bad) / static_cast<double>(total);
  if (allowed <= 0.0) return bad == 0 ? 0.0 : kInfiniteBurn;
  return rate / allowed;
}

double budget_consumed(std::uint64_t bad, std::uint64_t total,
                       double objective) {
  // Identical formula — cumulative burn is budget consumption.
  return burn_rate(bad, total, objective);
}

}  // namespace

SloAccountant::SloAccountant(SloConfig cfg, std::uint64_t window_cycles,
                             double cycles_per_us)
    : cfg_(cfg), window_cycles_(window_cycles ? window_cycles : 1) {
  if (cfg_.latency_us > 0.0 && cycles_per_us > 0.0) {
    latency_cycles_limit_ =
        static_cast<std::uint64_t>(cfg_.latency_us * cycles_per_us);
  }
}

SloAccountant::Window& SloAccountant::window_for(std::uint64_t cycle) {
  const std::uint64_t idx = cycle / window_cycles_;
  if (!windows_.empty() && idx <= windows_.back().index) {
    for (auto it = windows_.rbegin(); it != windows_.rend(); ++it) {
      if (it->index == idx) return *it;
      if (it->index < idx) break;
    }
    // Out-of-order or gap-filling sample: attribute to the nearest
    // not-later window rather than reordering the deque (the event
    // clock is monotonic, so this only happens for same-window ties).
    return windows_.back();
  }
  Window w;
  w.index = idx;
  windows_.push_back(w);
  return windows_.back();
}

void SloAccountant::record_good(std::uint64_t cycle,
                                std::uint64_t latency_cycles) {
  if (!enabled()) return;
  Window& w = window_for(cycle);
  w.good += 1;
  good_ += 1;
  if (latency_cycles_limit_ > 0 && latency_cycles > latency_cycles_limit_) {
    w.lat_viol += 1;
    lat_viol_ += 1;
  }
}

void SloAccountant::record_bad(std::uint64_t cycle) {
  if (!enabled()) return;
  window_for(cycle).bad += 1;
  bad_ += 1;
}

double SloAccountant::availability() const noexcept {
  const std::uint64_t t = total();
  return t == 0 ? 1.0 : static_cast<double>(good_) / static_cast<double>(t);
}

double SloAccountant::error_budget_consumed() const noexcept {
  return budget_consumed(bad_, total(), cfg_.availability);
}

double SloAccountant::latency_budget_consumed() const noexcept {
  // Latency violations are measured against completions only.
  return budget_consumed(lat_viol_, good_, cfg_.latency_objective > 0
                                               ? cfg_.latency_objective
                                               : 0.0);
}

double SloAccountant::max_window_burn() const noexcept {
  double max_burn = 0.0;
  for (const Window& w : windows_) {
    const double b = burn_rate(w.bad, w.good + w.bad, cfg_.availability);
    if (b > max_burn) max_burn = b;
  }
  return max_burn;
}

Json SloAccountant::to_json() const {
  Json doc = Json::object();
  doc.set("schema", "slo/1");
  doc.set("availability_objective", cfg_.availability);
  doc.set("latency_objective_us", cfg_.latency_us);
  doc.set("latency_objective_fraction", cfg_.latency_objective);
  doc.set("window_cycles", window_cycles_);

  Json summary = Json::object();
  summary.set("total", total());
  summary.set("errors", errors());
  summary.set("availability", availability());
  summary.set("error_budget_consumed", error_budget_consumed());
  summary.set("latency_violations", latency_violations());
  summary.set("latency_budget_consumed", latency_budget_consumed());
  summary.set("max_window_burn", max_window_burn());
  doc.set("summary", std::move(summary));

  Json windows = Json::array();
  for (const Window& w : windows_) {
    Json wj = Json::object();
    wj.set("start", w.index * window_cycles_);
    wj.set("total", w.good + w.bad);
    wj.set("errors", w.bad);
    wj.set("burn", burn_rate(w.bad, w.good + w.bad, cfg_.availability));
    wj.set("latency_violations", w.lat_viol);
    wj.set("latency_burn",
           burn_rate(w.lat_viol, w.good,
                     cfg_.latency_us > 0.0 ? cfg_.latency_objective : 0.0));
    windows.push_back(std::move(wj));
  }
  doc.set("windows", std::move(windows));
  return doc;
}

}  // namespace cryptopim::obs
