#include "obs/timeseries.h"

namespace cryptopim::obs {

WindowedSeries::WindowedSeries(std::uint64_t window_cycles,
                               std::size_t capacity)
    : window_cycles_(window_cycles ? window_cycles : 1),
      capacity_(capacity ? capacity : 1) {}

WindowedSeries::Window& WindowedSeries::window_for(std::uint64_t cycle) {
  const std::uint64_t idx = cycle / window_cycles_;
  // The event clock is monotonic, but samples recorded against earlier
  // cycles (e.g. a latency keyed on arrival) may point before the
  // newest window; they land in the oldest live window rather than
  // resurrecting an evicted one.
  if (!windows_.empty() && idx <= windows_.front().index) {
    return windows_.front();
  }
  if (!windows_.empty() && idx <= windows_.back().index) {
    // Binary search not worth it: live windows are few and the common
    // case is the newest one.
    for (auto it = windows_.rbegin(); it != windows_.rend(); ++it) {
      if (it->index == idx) return *it;
      if (it->index < idx) break;
    }
    // Sparse gap inside the live range: insert in order.
    for (auto it = windows_.begin(); it != windows_.end(); ++it) {
      if (it->index > idx) {
        Window w;
        w.index = idx;
        return *windows_.insert(it, std::move(w));
      }
    }
  }
  Window w;
  w.index = idx;
  windows_.push_back(std::move(w));
  while (windows_.size() > capacity_) fold_oldest();
  return windows_.back();
}

void WindowedSeries::fold_oldest() {
  Window& w = windows_.front();
  for (const auto& [name, v] : w.counters) folded_counters_[name] += v;
  for (const auto& [name, h] : w.hists) folded_hists_[name].merge(h);
  evicted_ += 1;
  windows_.pop_front();
}

void WindowedSeries::count(const std::string& name, std::uint64_t cycle,
                           std::uint64_t delta) {
  if (!enabled()) return;
  window_for(cycle).counters[name] += delta;
}

void WindowedSeries::observe(const std::string& name, std::uint64_t cycle,
                             std::uint64_t value) {
  if (!enabled()) return;
  window_for(cycle).hists[name].add(value);
}

std::uint64_t WindowedSeries::window_start(std::size_t w) const {
  return windows_.at(w).index * window_cycles_;
}

std::uint64_t WindowedSeries::counter_at(std::size_t w,
                                         const std::string& name) const {
  const auto& counters = windows_.at(w).counters;
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

const Histogram* WindowedSeries::histogram_at(std::size_t w,
                                              const std::string& name) const {
  const auto& hists = windows_.at(w).hists;
  const auto it = hists.find(name);
  return it == hists.end() ? nullptr : &it->second;
}

std::uint64_t WindowedSeries::total_count(const std::string& name) const {
  std::uint64_t total = 0;
  if (const auto it = folded_counters_.find(name);
      it != folded_counters_.end()) {
    total += it->second;
  }
  for (const Window& w : windows_) {
    if (const auto it = w.counters.find(name); it != w.counters.end()) {
      total += it->second;
    }
  }
  return total;
}

std::uint64_t WindowedSeries::total_observations(
    const std::string& name) const {
  std::uint64_t total = 0;
  if (const auto it = folded_hists_.find(name); it != folded_hists_.end()) {
    total += it->second.count();
  }
  for (const Window& w : windows_) {
    if (const auto it = w.hists.find(name); it != w.hists.end()) {
      total += it->second.count();
    }
  }
  return total;
}

namespace {

Json histogram_summary(const Histogram& h) {
  Json j = Json::object();
  j.set("count", h.count());
  j.set("sum", h.sum());
  j.set("min", h.min());
  j.set("max", h.max());
  j.set("mean", h.mean());
  j.set("p50", h.quantile(0.50));
  j.set("p99", h.quantile(0.99));
  return j;
}

}  // namespace

Json WindowedSeries::to_json() const {
  Json doc = Json::object();
  doc.set("schema", "timeseries/1");
  doc.set("window_cycles", window_cycles_);
  doc.set("evicted_windows", evicted_);
  Json windows = Json::array();
  for (std::size_t w = 0; w < windows_.size(); ++w) {
    const Window& win = windows_[w];
    Json wj = Json::object();
    wj.set("start", win.index * window_cycles_);
    Json cs = Json::object();
    for (const auto& [name, v] : win.counters) cs.set(name, v);
    wj.set("counters", std::move(cs));
    if (!win.hists.empty()) {
      Json hs = Json::object();
      for (const auto& [name, h] : win.hists) {
        hs.set(name, histogram_summary(h));
      }
      wj.set("histograms", std::move(hs));
    }
    windows.push_back(std::move(wj));
  }
  doc.set("windows", std::move(windows));
  return doc;
}

}  // namespace cryptopim::obs
