// Windowed time-series aggregation for the serving runtime.
//
// Cumulative counters hide dynamics: a run that sheds hard for 2 ms and
// then recovers reports the same totals as one that degraded uniformly.
// WindowedSeries splits the cycle axis into fixed-width windows and
// keeps, per window, named counters and pow2 histograms — enough to
// reconstruct rolling throughput/latency/shed-rate series from one run.
//
// The store is a ring: windows are created on demand as the (monotonic)
// event clock advances, and once more than `capacity` windows are live
// the oldest are folded into a cumulative "evicted" aggregate. Folding
// preserves the totals invariant the tests pin:
//
//   Σ (per-window counts) + folded counts == cumulative counter
//
// so eviction can never silently lose events — it only loses time
// resolution at the far-past end. Windows that received no events are
// not materialised (sparse); `window_start` tells consumers where each
// live window sits on the cycle axis.
//
// Everything is deterministic and value-semantic: same event sequence,
// same JSON bytes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace cryptopim::obs {

/// Ring of fixed-width cycle windows holding named counters + histograms.
class WindowedSeries {
 public:
  /// Disabled: count/observe are no-ops, to_json emits window_cycles 0.
  WindowedSeries() = default;
  /// `window_cycles` must be > 0; `capacity` bounds live windows (older
  /// ones fold into the evicted aggregate).
  explicit WindowedSeries(std::uint64_t window_cycles,
                          std::size_t capacity = 4096);

  bool enabled() const noexcept { return window_cycles_ > 0; }
  std::uint64_t window_cycles() const noexcept { return window_cycles_; }

  /// Add `delta` to counter `name` in the window containing `cycle`.
  void count(const std::string& name, std::uint64_t cycle,
             std::uint64_t delta = 1);
  /// Record one histogram sample in the window containing `cycle`.
  void observe(const std::string& name, std::uint64_t cycle,
               std::uint64_t value);

  // -- window access (live windows, oldest first) -----------------------------
  std::size_t window_count() const noexcept { return windows_.size(); }
  std::uint64_t window_start(std::size_t w) const;
  /// 0 when the window has no such counter.
  std::uint64_t counter_at(std::size_t w, const std::string& name) const;
  /// nullptr when the window has no such histogram.
  const Histogram* histogram_at(std::size_t w, const std::string& name) const;

  // -- totals (live + folded): the Σ-window == cumulative invariant -----------
  std::uint64_t evicted_windows() const noexcept { return evicted_; }
  std::uint64_t total_count(const std::string& name) const;
  std::uint64_t total_observations(const std::string& name) const;

  /// {"schema":"timeseries/1","window_cycles":W,"evicted_windows":n,
  ///  "windows":[{"start":c,"counters":{...},
  ///              "histograms":{name:{count,sum,min,max,mean,p50,p99}}}]}
  /// Histograms serialize as summaries (incl. exact min/max, so the
  /// quantiles stay clamped to observed values after a round trip
  /// through JSON).
  Json to_json() const;

 private:
  struct Window {
    std::uint64_t index = 0;  ///< cycle / window_cycles
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, Histogram> hists;
  };

  /// The live window for `cycle`, appending (and evicting) as needed.
  Window& window_for(std::uint64_t cycle);
  void fold_oldest();

  std::uint64_t window_cycles_ = 0;
  std::size_t capacity_ = 4096;
  std::deque<Window> windows_;
  std::uint64_t evicted_ = 0;
  std::map<std::string, std::uint64_t> folded_counters_;
  std::map<std::string, Histogram> folded_hists_;
};

}  // namespace cryptopim::obs
