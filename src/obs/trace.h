// Cycle-domain tracing for the CryptoPIM simulators.
//
// Events live in *simulated* time: timestamps are crossbar cycles, not
// host nanoseconds. A track is one timeline in the viewer — one per bank
// (A path), one per softbank (B path), plus a synthetic "pipeline" track
// whose stage spans sum exactly to SimReport::wall_cycles. Spans cover
// stages, circuit ops (multiply / reductions), microcode replays, and
// inter-block switch transfers.
//
// Export is Chrome-trace JSON (the `traceEvents` array form), which
// Perfetto (https://ui.perfetto.dev) and chrome://tracing load directly.
// One trace "microsecond" equals one simulated cycle.
//
// Cost model: tracing is compiled out entirely when CRYPTOPIM_TRACING=0
// (CMake option, default ON), and when compiled in it is pay-per-use — a
// disabled Tracer rejects events on a single branch, and the hot gate
// loop (BlockExecutor::issue) is never instrumented; only span-level
// call sites are.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#ifndef CRYPTOPIM_TRACING
#define CRYPTOPIM_TRACING 1
#endif

namespace cryptopim::obs {

class Json;

/// One completed span, in cycle time. `ph` distinguishes complete spans
/// ('X', the default) from flow arrows ('s' start, 't' step, 'f' end)
/// that draw causal links between spans on different tracks — e.g. a
/// request's admission on its tenant lane to the retry it spawned on
/// another lane. Flow events with the same `flow_id` form one chain.
struct TraceEvent {
  std::string name;
  std::string cat;        ///< "stage", "circuit", "reduce", "transfer", ...
  std::uint32_t track = 0;
  std::uint64_t begin = 0;  ///< cycles
  std::uint64_t dur = 0;    ///< cycles
  char ph = 'X';
  std::uint64_t flow_id = 0;
};

/// Append-only event recorder. Not thread-safe (the simulators are
/// single-threaded); one global instance (`tracer()`) plus any number of
/// locals for tests.
class Tracer {
 public:
  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// Drops all events, open spans and track names.
  void clear();

  /// Opens a nested span on `track` at cycle `begin`. No event is
  /// recorded until the matching end().
  void begin(std::uint32_t track, std::string name, std::string cat,
             std::uint64_t begin);
  /// Closes the innermost open span on `track` at cycle `end_cycle`.
  /// Unbalanced end() calls are ignored.
  void end(std::uint32_t track, std::uint64_t end_cycle);

  /// Records a complete span directly (no nesting bookkeeping).
  void emit(std::uint32_t track, std::string name, std::string cat,
            std::uint64_t begin, std::uint64_t dur);

  /// Records a flow-arrow point: `phase` is 's' (start), 't' (step) or
  /// 'f' (end); all points sharing `id` are connected in the viewer.
  /// Place each point inside (track, cycle) of the span it anchors to —
  /// step/end points bind to the enclosing slice.
  void flow(char phase, std::uint64_t id, std::uint32_t track,
            std::string name, std::string cat, std::uint64_t cycle);

  /// Human-readable track label in the viewer.
  void set_track_name(std::uint32_t track, std::string name);

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t open_span_count() const noexcept;

  /// The exported document as a Json value (see write_chrome_trace).
  Json chrome_trace() const;
  /// Writes Chrome-trace JSON: {"traceEvents":[...], ...}. Complete ("X")
  /// events with ts/dur in cycles; thread_name metadata names the tracks.
  void write_chrome_trace(std::ostream& os) const;

 private:
  struct OpenSpan {
    std::string name;
    std::string cat;
    std::uint64_t begin;
  };

  bool enabled_ = false;
  std::vector<TraceEvent> events_;
  std::map<std::uint32_t, std::vector<OpenSpan>> open_;
  std::map<std::uint32_t, std::string> track_names_;
};

/// The process-global tracer. Disabled by default; `cryptopim
/// --trace=<file>` and tests enable it around a run.
Tracer& tracer();

}  // namespace cryptopim::obs
