// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), header-only.
//
// Used to frame durability records: every write-ahead journal line and
// snapshot document carries the checksum of its payload so a reader can
// distinguish "torn tail from a crash mid-write" (tolerated) from
// "corruption in the middle of the file" (rejected). Table-driven,
// byte-at-a-time — fast enough for per-record framing and dependency-free
// so both the runtime and the standalone validators (tools/json_check)
// share one implementation.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace cryptopim::obs {

namespace detail {
inline constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr auto kCrc32Table = make_crc32_table();
}  // namespace detail

/// CRC-32 of `bytes` (check value: crc32("123456789") == 0xCBF43926).
inline std::uint32_t crc32(std::string_view bytes) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = detail::kCrc32Table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^
        (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace cryptopim::obs
