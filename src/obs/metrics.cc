#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace cryptopim::obs {

void Histogram::add(std::uint64_t v) noexcept {
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  count_ += 1;
  sum_ += v;
  // bucket 0: v == 0; bucket i >= 1: 2^(i-1) <= v < 2^i.
  buckets_[v == 0 ? 0 : std::bit_width(v)] += 1;
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  for (unsigned i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

std::uint64_t Histogram::quantile(double p) const noexcept {
  if (count_ == 0) return 0;
  if (p <= 0.0) return min();
  if (p >= 1.0) return max_;
  // Rank of the target sample, 1-based: ceil(p * count), at least 1.
  const auto target =
      static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(count_)));
  const std::uint64_t rank = target == 0 ? 1 : target;
  std::uint64_t seen = 0;
  for (unsigned i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Bucket 0 holds zeros; bucket i holds [2^(i-1), 2^i).
      std::uint64_t upper =
          i == 0 ? 0
                 : (i >= 64 ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << i) - 1);
      if (upper > max_) upper = max_;
      if (upper < min()) upper = min();
      return upper;
    }
  }
  return max_;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& unit) {
  auto [it, inserted] = counters_.try_emplace(name);
  if (inserted) it->second.unit_ = unit;
  return it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& unit) {
  auto [it, inserted] = histograms_.try_emplace(name);
  if (inserted) it->second.unit_ = unit;
  return it->second;
}

void MetricsRegistry::reset() {
  counters_.clear();
  histograms_.clear();
}

Json MetricsRegistry::snapshot() const {
  Json doc = Json::object();
  doc.set("schema", 1);
  Json cs = Json::object();
  for (const auto& [name, c] : counters_) {
    Json j = Json::object();
    j.set("value", c.value());
    j.set("unit", c.unit());
    cs.set(name, std::move(j));
  }
  doc.set("counters", std::move(cs));
  Json hs = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json j = Json::object();
    j.set("unit", h.unit());
    j.set("count", h.count());
    j.set("sum", h.sum());
    j.set("min", h.min());
    j.set("max", h.max());
    j.set("mean", h.mean());
    Json buckets = Json::array();
    for (unsigned i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket(i) == 0) continue;
      Json pair = Json::array();
      pair.push_back(std::uint64_t{i});
      pair.push_back(h.bucket(i));
      buckets.push_back(std::move(pair));
    }
    j.set("buckets", std::move(buckets));
    hs.set(name, std::move(j));
  }
  doc.set("histograms", std::move(hs));
  return doc;
}

MetricsRegistry MetricsRegistry::from_snapshot(const Json& snap) {
  if (!snap.is_object() || !snap.contains("counters") ||
      !snap.contains("histograms")) {
    throw std::runtime_error("metrics snapshot: missing sections");
  }
  MetricsRegistry reg;
  for (const auto& [name, j] : snap.at("counters").members()) {
    Counter& c = reg.counter(name, j.at("unit").as_string());
    c.add(j.at("value").as_u64());
  }
  for (const auto& [name, j] : snap.at("histograms").members()) {
    Histogram& h = reg.histogram(name, j.at("unit").as_string());
    h.count_ = j.at("count").as_u64();
    h.sum_ = j.at("sum").as_u64();
    h.min_ = j.at("min").as_u64();
    h.max_ = j.at("max").as_u64();
    for (const auto& pair : j.at("buckets").items()) {
      const std::uint64_t idx = pair[0].as_u64();
      if (idx >= Histogram::kBuckets) {
        throw std::runtime_error("metrics snapshot: bucket out of range");
      }
      h.buckets_[idx] = pair[1].as_u64();
    }
  }
  return reg;
}

MetricsRegistry& metrics() {
  static MetricsRegistry reg;
  return reg;
}

}  // namespace cryptopim::obs
