// Minimal JSON document model for the observability layer: enough to
// write trace/metric/bench files and to parse them back (round-trip
// tests, tools/json_check). Deliberately tiny — no SAX, no comments, no
// non-finite numbers (they serialize as null, as Chrome tracing does).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cryptopim::obs {

/// One JSON value. Objects keep insertion order (readable diffs matter
/// more than lookup speed at observability scale).
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;                      // null
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double v) : kind_(Kind::kNumber), num_(v) {}
  Json(int v) : kind_(Kind::kNumber), num_(v) {}
  Json(std::int64_t v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(std::uint64_t v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}

  static Json array() { Json j; j.kind_ = Kind::kArray; return j; }
  static Json object() { Json j; j.kind_ = Kind::kObject; return j; }

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  std::uint64_t as_u64() const { return static_cast<std::uint64_t>(num_); }
  const std::string& as_string() const { return str_; }

  // -- array --
  void push_back(Json v) { arr_.push_back(std::move(v)); }
  const std::vector<Json>& items() const noexcept { return arr_; }
  std::size_t size() const noexcept {
    return kind_ == Kind::kArray ? arr_.size() : obj_.size();
  }
  const Json& operator[](std::size_t i) const { return arr_.at(i); }

  // -- object --
  /// Sets (or replaces) a member, preserving first-insertion order.
  Json& set(const std::string& key, Json v);
  bool contains(const std::string& key) const;
  /// Throws std::out_of_range on a missing key.
  const Json& at(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const noexcept {
    return obj_;
  }

  /// Compact serialization (single line).
  void write(std::ostream& os) const;
  std::string dump() const;

  /// Structural equality (numbers compared exactly).
  friend bool operator==(const Json& a, const Json& b);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Writes `s` as a JSON string literal (quotes + escapes) to `os`.
void write_json_string(std::ostream& os, const std::string& s);

struct JsonParseResult {
  bool ok = false;
  Json value;
  std::string error;      ///< human-readable, includes offset
  std::size_t offset = 0; ///< byte offset of the error
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
JsonParseResult parse_json(const std::string& text);

}  // namespace cryptopim::obs
