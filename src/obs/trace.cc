#include "obs/trace.h"

#include <ostream>

#include "obs/json.h"

namespace cryptopim::obs {

void Tracer::clear() {
  events_.clear();
  open_.clear();
  track_names_.clear();
}

void Tracer::begin(std::uint32_t track, std::string name, std::string cat,
                   std::uint64_t begin) {
  if (!enabled_) return;
  open_[track].push_back(OpenSpan{std::move(name), std::move(cat), begin});
}

void Tracer::end(std::uint32_t track, std::uint64_t end_cycle) {
  if (!enabled_) return;
  const auto it = open_.find(track);
  if (it == open_.end() || it->second.empty()) return;
  OpenSpan s = std::move(it->second.back());
  it->second.pop_back();
  events_.push_back(TraceEvent{
      std::move(s.name), std::move(s.cat), track, s.begin,
      end_cycle >= s.begin ? end_cycle - s.begin : 0});
}

void Tracer::emit(std::uint32_t track, std::string name, std::string cat,
                  std::uint64_t begin, std::uint64_t dur) {
  if (!enabled_) return;
  events_.push_back(
      TraceEvent{std::move(name), std::move(cat), track, begin, dur});
}

void Tracer::flow(char phase, std::uint64_t id, std::uint32_t track,
                  std::string name, std::string cat, std::uint64_t cycle) {
  if (!enabled_) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.track = track;
  e.begin = cycle;
  e.ph = phase;
  e.flow_id = id;
  events_.push_back(std::move(e));
}

void Tracer::set_track_name(std::uint32_t track, std::string name) {
  if (!enabled_) return;
  track_names_[track] = std::move(name);
}

std::size_t Tracer::open_span_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [track, stack] : open_) n += stack.size();
  return n;
}

Json Tracer::chrome_trace() const {
  Json doc = Json::object();
  Json events = Json::array();
  // Process + track metadata first (Perfetto applies it regardless of
  // position, but leading metadata keeps the file skimmable).
  {
    Json m = Json::object();
    m.set("name", "process_name");
    m.set("ph", "M");
    m.set("pid", 0);
    Json args = Json::object();
    args.set("name", "cryptopim (simulated cycles)");
    m.set("args", std::move(args));
    events.push_back(std::move(m));
  }
  for (const auto& [track, name] : track_names_) {
    Json m = Json::object();
    m.set("name", "thread_name");
    m.set("ph", "M");
    m.set("pid", 0);
    m.set("tid", std::uint64_t{track});
    Json args = Json::object();
    args.set("name", name);
    m.set("args", std::move(args));
    events.push_back(std::move(m));
  }
  for (const auto& e : events_) {
    Json j = Json::object();
    j.set("name", e.name);
    j.set("cat", e.cat);
    j.set("ph", std::string(1, e.ph));
    j.set("ts", e.begin);
    if (e.ph == 'X') {
      j.set("dur", e.dur);
    } else {
      // Flow arrow point: "id" joins the chain; step/end points bind to
      // the enclosing slice ("bp":"e") so arrows land on the spans.
      j.set("id", e.flow_id);
      if (e.ph != 's') j.set("bp", "e");
    }
    j.set("pid", 0);
    j.set("tid", std::uint64_t{e.track});
    events.push_back(std::move(j));
  }
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ns");
  Json other = Json::object();
  other.set("timeUnit", "1 trace us = 1 simulated crossbar cycle");
  doc.set("otherData", std::move(other));
  return doc;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  chrome_trace().write(os);
  os << '\n';
}

Tracer& tracer() {
  static Tracer t;
  return t;
}

}  // namespace cryptopim::obs
