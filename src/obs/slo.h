// SLO accounting for the serving runtime: availability and latency
// objectives with per-window error-budget burn.
//
// The vocabulary is the standard SRE one. An objective like 99.9%
// availability grants an *error budget* of 0.1% of all requests; every
// terminal outcome is either good (completed) or bad (rejected, shed,
// timed out, failed), and the accountant tracks what fraction of the
// budget the run consumed. The *burn rate* of a window is the ratio of
// its observed error rate to the allowed error rate — burn 1.0 means
// "spending the budget exactly as fast as the objective allows",
// burn 10 means a tenth of the budget went up in that window alone.
//
// The latency objective is a threshold objective: `latency_us` is the
// target completion latency and `latency_objective` the fraction of
// completions that must meet it (e.g. "99% of requests under 2 ms").
// Latency violations burn the latency budget the same way errors burn
// the availability budget; a completion past the threshold is still
// *available*, just slow.
//
// Windows share the cycle axis (and width) with obs::WindowedSeries so
// the SLO series lines up 1:1 with the throughput/latency series in the
// same report. Deterministic: pure arithmetic on the event clock.
#pragma once

#include <cstdint>
#include <deque>

#include "obs/json.h"

namespace cryptopim::obs {

struct SloConfig {
  /// Availability objective as a fraction (e.g. 0.999); 0 = off.
  double availability = 0.0;
  /// Latency threshold in us; 0 = latency objective off.
  double latency_us = 0.0;
  /// Fraction of completions that must meet the threshold.
  double latency_objective = 0.99;

  bool enabled() const noexcept {
    return availability > 0.0 || latency_us > 0.0;
  }
};

/// Consumes terminal request outcomes and produces per-window and
/// cumulative error-budget accounting.
class SloAccountant {
 public:
  SloAccountant() = default;
  SloAccountant(SloConfig cfg, std::uint64_t window_cycles,
                double cycles_per_us);

  bool enabled() const noexcept { return cfg_.enabled(); }
  const SloConfig& config() const noexcept { return cfg_; }

  /// A request completed at `cycle` with the given end-to-end latency.
  void record_good(std::uint64_t cycle, std::uint64_t latency_cycles);
  /// A request terminated without a result (rejected / shed / timed out
  /// / failed) at `cycle`.
  void record_bad(std::uint64_t cycle);

  // -- cumulative --------------------------------------------------------------
  std::uint64_t total() const noexcept { return good_ + bad_; }
  std::uint64_t errors() const noexcept { return bad_; }
  std::uint64_t latency_violations() const noexcept { return lat_viol_; }
  /// Achieved availability in [0, 1]; 1 when nothing terminated yet.
  double availability() const noexcept;
  /// Fraction of the availability error budget consumed (1.0 = spent
  /// exactly, > 1 = objective violated). 0 when the objective is off.
  double error_budget_consumed() const noexcept;
  /// Same for the latency budget (violations / allowed violations).
  double latency_budget_consumed() const noexcept;
  /// Highest per-window availability burn rate across all windows.
  double max_window_burn() const noexcept;

  /// {"schema":"slo/1", objectives, "summary":{...}, "windows":[
  ///   {"start","total","errors","burn","latency_violations",
  ///    "latency_burn"}]}
  Json to_json() const;

 private:
  struct Window {
    std::uint64_t index = 0;
    std::uint64_t good = 0;
    std::uint64_t bad = 0;
    std::uint64_t lat_viol = 0;
  };
  Window& window_for(std::uint64_t cycle);

  SloConfig cfg_;
  std::uint64_t window_cycles_ = 1;
  std::uint64_t latency_cycles_limit_ = 0;  ///< threshold in cycles
  std::deque<Window> windows_;
  std::uint64_t good_ = 0;
  std::uint64_t bad_ = 0;
  std::uint64_t lat_viol_ = 0;
};

}  // namespace cryptopim::obs
