// Machine-readable benchmark output.
//
// Every bench/bench_*.cc main builds one BenchReporter, adds the same
// numbers it prints as tables, and calls write_default(), producing
// `bench_<name>.json` next to the human output. The schema (documented in
// bench/README.md) is stable so BENCH_*.json trajectories can be compared
// across PRs:
//
//   {
//     "bench": "<name>", "schema": 1,
//     "params": {"<k>": "<v>", ...},             // run-level settings
//     "metrics": [
//       {"name": "...", "value": 1643, "unit": "cycles",
//        "params": {"n": "256", ...}},           // per-point settings
//       ...
//     ]
//   }
//
// The output directory is $CRYPTOPIM_BENCH_OUT when set (created by
// tools/run_benches.sh), else the working directory.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace cryptopim::obs {

class BenchReporter {
 public:
  using Params = std::vector<std::pair<std::string, std::string>>;

  explicit BenchReporter(std::string bench_name);

  const std::string& name() const noexcept { return name_; }

  /// Run-level parameter (device config, trial counts, ...).
  void set_param(const std::string& key, std::string value);

  /// One measured point. `params` qualifies the point (degree, q, ...).
  void add(std::string metric, double value, std::string unit,
           Params params = {});

  std::size_t metric_count() const noexcept { return metrics_.size(); }
  Json to_json() const;

  /// Writes to an explicit path. Returns false (and reports on stderr)
  /// on I/O failure.
  bool write(const std::string& path) const;

  /// Writes bench_<name>.json into $CRYPTOPIM_BENCH_OUT (or cwd) and
  /// prints the destination to stderr. Returns the path ("" on failure).
  std::string write_default() const;

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
    Params params;
  };
  std::string name_;
  Params params_;
  std::vector<Metric> metrics_;
};

}  // namespace cryptopim::obs
