#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cryptopim::obs {

Json& Json::set(const std::string& key, Json v) {
  kind_ = Kind::kObject;
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return old;
    }
  }
  obj_.emplace_back(key, std::move(v));
  return obj_.back().second;
}

bool Json::contains(const std::string& key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  throw std::out_of_range("Json::at: no member '" + key + "'");
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

namespace {

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no Inf/NaN; match Chrome-trace convention
    return;
  }
  // Integers (the common case: cycles, counts) print without a fraction
  // and exactly, up to 2^53.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    os << buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace

void Json::write(std::ostream& os) const {
  switch (kind_) {
    case Kind::kNull: os << "null"; break;
    case Kind::kBool: os << (bool_ ? "true" : "false"); break;
    case Kind::kNumber: write_number(os, num_); break;
    case Kind::kString: write_json_string(os, str_); break;
    case Kind::kArray: {
      os << '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) os << ',';
        arr_[i].write(os);
      }
      os << ']';
      break;
    }
    case Kind::kObject: {
      os << '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) os << ',';
        write_json_string(os, obj_[i].first);
        os << ':';
        obj_[i].second.write(os);
      }
      os << '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

bool operator==(const Json& a, const Json& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Json::Kind::kNull: return true;
    case Json::Kind::kBool: return a.bool_ == b.bool_;
    case Json::Kind::kNumber: return a.num_ == b.num_;
    case Json::Kind::kString: return a.str_ == b.str_;
    case Json::Kind::kArray: return a.arr_ == b.arr_;
    case Json::Kind::kObject: return a.obj_ == b.obj_;
  }
  return false;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonParseResult run() {
    JsonParseResult r;
    try {
      r.value = value();
      skip_ws();
      if (pos_ != s_.size()) fail("trailing garbage");
      r.ok = true;
    } catch (const std::runtime_error& e) {
      r.error = std::string(e.what()) + " at offset " + std::to_string(pos_);
      r.offset = pos_;
    }
    return r;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error(why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Json(string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Json(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Json(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Json();
    }
    return number();
  }

  Json object() {
    expect('{');
    Json j = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return j;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      j.set(key, value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return j;
    }
  }

  Json array() {
    expect('[');
    Json j = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return j;
    }
    while (true) {
      j.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return j;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are beyond
          // what our own writers emit; reject them explicitly).
          if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate \\u escape");
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    try {
      std::size_t used = 0;
      const double v = std::stod(s_.substr(start, pos_ - start), &used);
      if (used != pos_ - start) fail("bad number");
      return Json(v);
    } catch (const std::logic_error&) {
      fail("bad number");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonParseResult parse_json(const std::string& text) {
  return Parser(text).run();
}

}  // namespace cryptopim::obs
