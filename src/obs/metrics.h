// Named counters and histograms for the simulation stack.
//
// Naming convention: `cryptopim.<subsystem>.<name>` — e.g.
// `cryptopim.sim.cycles.butterfly`, `cryptopim.reduce.barrett_cycles`,
// `cryptopim.exec.cols_peak`, `cryptopim.switch.transfer_bits`. Units are
// free-form strings ("cycles", "bits", "columns", "ops").
//
// The registry replaces the ad-hoc threading of ExecStats through callers
// as the way to *observe* a run; ExecStats itself stays as the per-block
// accounting facade and publishes into a registry
// (ExecStats::publish). Snapshots serialize to JSON and parse back
// losslessly (round-trip tested).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/json.h"

namespace cryptopim::obs {

/// Monotonic sum.
class Counter {
 public:
  void add(std::uint64_t v) noexcept { value_ += v; }
  std::uint64_t value() const noexcept { return value_; }
  const std::string& unit() const noexcept { return unit_; }

 private:
  friend class MetricsRegistry;
  std::uint64_t value_ = 0;
  std::string unit_;
};

/// Distribution summary: count/sum/min/max plus power-of-two buckets
/// (bucket i counts samples in [2^(i-1), 2^i); bucket 0 counts zeros).
class Histogram {
 public:
  static constexpr unsigned kBuckets = 65;

  void add(std::uint64_t v) noexcept;
  /// Fold another histogram into this one (bucket-wise sum; min/max/sum
  /// combine exactly). Used by the windowed-series ring when old windows
  /// are evicted into the cumulative aggregate.
  void merge(const Histogram& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0;
  }
  std::uint64_t bucket(unsigned i) const { return buckets_[i]; }
  const std::string& unit() const noexcept { return unit_; }

  /// Approximate p-quantile from the pow2 buckets: the upper edge of the
  /// bucket holding the p-th sample, clamped to [min, max] (so exact at
  /// the extremes). p <= 0 returns min, p >= 1 returns max, empty
  /// histogram returns 0. Good to a factor of two — the resolution the
  /// serving runtime's p50/p99/p999 latency reporting needs.
  std::uint64_t quantile(double p) const noexcept;

 private:
  friend class MetricsRegistry;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t buckets_[kBuckets] = {};
  std::string unit_;
};

/// Name -> metric map. Metrics are created on first use; the unit given
/// at creation sticks. Not thread-safe (single-threaded simulators).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& unit = "");
  Histogram& histogram(const std::string& name, const std::string& unit = "");

  const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }

  /// Drops every metric.
  void reset();

  /// {"schema":1,"counters":{name:{value,unit}},
  ///  "histograms":{name:{unit,count,sum,min,max,buckets:[[i,n],...]}}}
  Json snapshot() const;
  /// Inverse of snapshot(); throws std::runtime_error on malformed input.
  static MetricsRegistry from_snapshot(const Json& snap);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// The process-global registry the simulators publish into.
MetricsRegistry& metrics();

}  // namespace cryptopim::obs
