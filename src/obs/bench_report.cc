#include "obs/bench_report.h"

#include <cstdlib>
#include <fstream>
#include <iostream>

namespace cryptopim::obs {

BenchReporter::BenchReporter(std::string bench_name)
    : name_(std::move(bench_name)) {}

void BenchReporter::set_param(const std::string& key, std::string value) {
  for (auto& [k, v] : params_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  params_.emplace_back(key, std::move(value));
}

void BenchReporter::add(std::string metric, double value, std::string unit,
                        Params params) {
  metrics_.push_back(
      Metric{std::move(metric), value, std::move(unit), std::move(params)});
}

namespace {

Json params_json(const BenchReporter::Params& params) {
  Json j = Json::object();
  for (const auto& [k, v] : params) j.set(k, v);
  return j;
}

}  // namespace

Json BenchReporter::to_json() const {
  Json doc = Json::object();
  doc.set("bench", name_);
  doc.set("schema", 1);
  doc.set("params", params_json(params_));
  Json ms = Json::array();
  for (const auto& m : metrics_) {
    Json j = Json::object();
    j.set("name", m.name);
    j.set("value", m.value);
    j.set("unit", m.unit);
    if (!m.params.empty()) j.set("params", params_json(m.params));
    ms.push_back(std::move(j));
  }
  doc.set("metrics", std::move(ms));
  return doc;
}

bool BenchReporter::write(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "bench_report: cannot open " << path << " for writing\n";
    return false;
  }
  to_json().write(os);
  os << '\n';
  os.flush();
  if (!os) {
    std::cerr << "bench_report: write to " << path << " failed\n";
    return false;
  }
  return true;
}

std::string BenchReporter::write_default() const {
  std::string dir;
  if (const char* env = std::getenv("CRYPTOPIM_BENCH_OUT")) dir = env;
  std::string path = dir.empty() ? std::string()
                                 : dir + (dir.back() == '/' ? "" : "/");
  path += "bench_" + name_ + ".json";
  if (!write(path)) return "";
  std::cerr << "[bench json: " << path << "]\n";
  return path;
}

}  // namespace cryptopim::obs
