// Per-operation latency sets feeding the architecture model.
//
// Two providers:
//  * paper_latency()    — the formulas and Table I constants published in
//    the paper (what the headline tables are built from);
//  * measured_latency() — cycle counts measured by executing our
//    functional in-memory circuits (src/pim/circuits) once per parameter
//    set. Every bench prints both so paper-vs-reconstruction deltas stay
//    visible.
#pragma once

#include <cstdint>

namespace cryptopim::model {

/// Crossbar cycles for each primitive at one (bitwidth, q) design point.
struct LatencySet {
  std::uint32_t n = 0;        ///< degree this set parameterises
  std::uint32_t q = 0;
  unsigned bitwidth = 0;      ///< datapath width N
  std::uint64_t add = 0;      ///< N-bit addition
  std::uint64_t sub = 0;      ///< N-bit subtraction
  std::uint64_t mult = 0;     ///< N x N multiplication
  std::uint64_t barrett = 0;     ///< shift-add Barrett (lazy)
  std::uint64_t montgomery = 0;  ///< shift-add Montgomery (lazy)
  std::uint64_t transfer = 0;    ///< inter-block switch hop (3N)
};

/// Paper values. The Barrett entry for q = 7681 is not legible in Table I;
/// we use 324, back-derived from the Fig. 4(a) stage latency
/// (2700 = add 97 + Barrett + sub 113 + mult 1483 + Montgomery 683).
LatencySet paper_latency(std::uint32_t n);

/// Cycle counts measured from the functional crossbar circuits (cached
/// per degree; the first call per degree executes the circuits).
LatencySet measured_latency(std::uint32_t n);

}  // namespace cryptopim::model
