#include "model/performance.h"

#include <algorithm>
#include <cassert>

namespace cryptopim::model {

namespace {

std::uint64_t op_cycles(arch::StageOp op, const LatencySet& l) {
  switch (op) {
    case arch::StageOp::kTransferIn: return l.transfer;
    case arch::StageOp::kAdd: return l.add;
    case arch::StageOp::kSub: return l.sub;
    case arch::StageOp::kMult: return l.mult;
    case arch::StageOp::kBarrett: return l.barrett;
    case arch::StageOp::kMontgomery: return l.montgomery;
  }
  return 0;
}

struct CycleTotals {
  std::uint64_t compute = 0;
  std::uint64_t transfer = 0;
  std::uint64_t slowest_stage = 0;
};

CycleTotals totals_for(const arch::PipelineSpec& spec, const LatencySet& l) {
  CycleTotals t;
  for (const auto& stage : spec.stages) {
    std::uint64_t cycles = 0;
    for (const auto op : stage.ops) {
      const std::uint64_t c = op_cycles(op, l);
      cycles += c;
      if (op == arch::StageOp::kTransferIn) {
        t.transfer += c;
      } else {
        t.compute += c;
      }
    }
    t.slowest_stage = std::max(t.slowest_stage, cycles);
  }
  return t;
}

}  // namespace

std::uint64_t stage_cycles(const arch::StageSpec& stage, const LatencySet& l) {
  std::uint64_t cycles = 0;
  for (const auto op : stage.ops) cycles += op_cycles(op, l);
  return cycles;
}

EnergyModel EnergyModel::calibrated() {
  // Anchor: Table II, n = 256 pipelined, 2.58 uJ per multiplication.
  // With e_transfer = e_cell the pipelined design costs ~1.8% more energy
  // than the non-pipelined one (extra block-to-block hops), matching the
  // paper's observed +1.6% average.
  constexpr double kAnchorUj = 2.58;
  constexpr std::uint32_t kAnchorN = 256;

  const LatencySet l = paper_latency(kAnchorN);
  const auto spec = arch::PipelineSpec::build(
      kAnchorN, arch::PipelineVariant::kCryptoPim);
  const CycleTotals t = totals_for(spec, l);
  const double events =
      static_cast<double>(t.compute + t.transfer) * kAnchorN;

  EnergyModel em;
  em.cell_event_fj = kAnchorUj * 1e9 / events;  // uJ -> fJ
  em.transfer_bit_fj = em.cell_event_fj;
  return em;
}

double EnergyModel::energy_uj(std::uint64_t compute_cycles,
                              std::uint64_t transfer_cycles,
                              std::uint32_t n) const {
  const double fj = static_cast<double>(compute_cycles) * n * cell_event_fj +
                    static_cast<double>(transfer_cycles) * n * transfer_bit_fj;
  return fj * 1e-9;
}

PipelinePerf evaluate_pipelined(const arch::PipelineSpec& spec,
                                const LatencySet& l, const EnergyModel& em,
                                const pim::DeviceModel& dev) {
  const CycleTotals t = totals_for(spec, l);
  PipelinePerf perf;
  perf.n = spec.n;
  perf.depth = spec.depth();
  perf.slowest_stage_cycles = t.slowest_stage;
  perf.total_compute_cycles = t.compute;
  perf.total_transfer_cycles = t.transfer;
  const double stage_s = static_cast<double>(t.slowest_stage) * dev.cycle_s();
  perf.latency_us = stage_s * static_cast<double>(spec.depth()) * 1e6;
  perf.throughput_per_s = 1.0 / stage_s;
  perf.energy_uj = em.energy_uj(t.compute, t.transfer, spec.n);
  return perf;
}

PipelinePerf evaluate_non_pipelined(std::uint32_t n, const LatencySet& l,
                                    const EnergyModel& em,
                                    const pim::DeviceModel& dev) {
  // Sequential execution of the fused (area-efficient) chain: fewest
  // blocks, no stage balancing, fewer transfers.
  const auto spec =
      arch::PipelineSpec::build(n, arch::PipelineVariant::kAreaEfficient);
  const CycleTotals t = totals_for(spec, l);
  PipelinePerf perf;
  perf.n = n;
  perf.depth = spec.depth();
  perf.slowest_stage_cycles = t.slowest_stage;
  perf.total_compute_cycles = t.compute;
  perf.total_transfer_cycles = t.transfer;
  const double total_s =
      static_cast<double>(t.compute + t.transfer) * dev.cycle_s();
  perf.latency_us = total_s * 1e6;
  perf.throughput_per_s = 1.0 / total_s;
  perf.energy_uj = em.energy_uj(t.compute, t.transfer, n);
  return perf;
}

PipelinePerf cryptopim_pipelined(std::uint32_t n) {
  const auto spec =
      arch::PipelineSpec::build(n, arch::PipelineVariant::kCryptoPim);
  return evaluate_pipelined(spec, paper_latency(n), EnergyModel::calibrated(),
                            pim::DeviceModel::paper_45nm());
}

PipelinePerf cryptopim_non_pipelined(std::uint32_t n) {
  return evaluate_non_pipelined(n, paper_latency(n),
                                EnergyModel::calibrated(),
                                pim::DeviceModel::paper_45nm());
}

}  // namespace cryptopim::model
