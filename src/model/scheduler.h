// Chip-level job scheduler for the configurable architecture (Section
// III-D.2): a stream of polynomial multiplications of mixed degrees is
// mapped onto the chip by re-partitioning the 128 banks into superbanks
// per degree class, streaming each class through its pipelines, and
// accounting fill latency, steady-state beats and utilization.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/chip.h"
#include "model/performance.h"

namespace cryptopim::model {

/// A batch of identical multiplications.
struct Job {
  std::uint32_t degree = 0;
  std::uint64_t count = 1;
};

/// One configured interval of the schedule: the chip is partitioned for a
/// single degree class and streams its jobs.
struct ScheduleBatch {
  std::uint32_t degree = 0;
  unsigned superbanks = 0;      ///< parallel pipelines in this interval
  unsigned segments = 1;        ///< >1 for degrees above the design point
  std::uint64_t multiplications = 0;
  double fill_us = 0;           ///< pipeline fill (one traversal)
  double duration_us = 0;       ///< fill + steady-state beats
  double bank_busy_us = 0;      ///< busy bank-time (for utilization)
};

struct ScheduleResult {
  std::vector<ScheduleBatch> batches;
  double makespan_us = 0;
  std::uint64_t total_multiplications = 0;
  unsigned repartitions = 0;  ///< superbank reconfigurations performed
  double utilization = 0;     ///< busy bank-time / (banks * makespan)
  double throughput_per_s = 0;
};

/// Bank-limited steady-state service capacity of one degree class, in
/// requests per second: live superbank lanes divided by the lane
/// occupancy (`segments * slowest-stage beat`). `failed_banks` prices a
/// degraded chip — spares absorb failures one-for-one, further failures
/// shrink the lane count exactly as plan_for_degree does — which is what
/// the serving runtime's admission and the capacity-relative benches
/// need to stay honest after mid-stream bank losses. Throws (from
/// plan_for_degree) when the degraded chip cannot host a single lane.
double class_capacity_per_s(const arch::ChipConfig& chip, std::uint32_t degree,
                            unsigned failed_banks = 0, double cycle_ns = 1.1);

class ChipScheduler {
 public:
  /// `failed_banks` schedules on a degraded chip: spares absorb failures
  /// one-for-one, failures beyond the spare pool shrink every batch's
  /// superbank count (arch::ChipConfig::plan_for_degree(n, failed)).
  explicit ChipScheduler(arch::ChipConfig chip = arch::ChipConfig::paper_chip(),
                         double repartition_us = 0.0,
                         unsigned failed_banks = 0)
      : chip_(chip),
        repartition_us_(repartition_us),
        failed_banks_(failed_banks) {}

  const arch::ChipConfig& chip() const noexcept { return chip_; }
  unsigned failed_banks() const noexcept { return failed_banks_; }

  /// Schedule a mixed-degree job list: jobs are grouped by degree
  /// (largest first, so expensive classes reveal the critical path early)
  /// and each class streams through a dedicated chip partition. Throws
  /// (from plan_for_degree) when a degree is invalid or the degraded
  /// chip cannot host a single superbank for it.
  ScheduleResult schedule(std::span<const Job> jobs) const;

 private:
  arch::ChipConfig chip_;
  double repartition_us_;
  unsigned failed_banks_ = 0;
};

}  // namespace cryptopim::model
