#include "model/latency.h"

#include <cassert>
#include <map>

#include "common/bitutil.h"
#include "ntt/params.h"
#include "ntt/reduction.h"
#include "pim/circuits/arith.h"
#include "pim/circuits/reduction.h"

namespace cryptopim::model {

namespace {

std::uint64_t paper_barrett_cycles(std::uint32_t q) {
  switch (q) {
    case 7681: return 324;  // derived from the Fig. 4(a) 2700-cycle stage
    case 12289: return 239;
    case 786433: return 429;
    default: assert(false); return 0;
  }
}

std::uint64_t paper_montgomery_cycles(std::uint32_t q) {
  switch (q) {
    case 7681: return 683;
    case 12289: return 461;
    case 786433: return 1083;
    default: assert(false); return 0;
  }
}

}  // namespace

LatencySet paper_latency(std::uint32_t n) {
  LatencySet s;
  s.n = n;
  s.q = ntt::paper_modulus_for_degree(n);
  s.bitwidth = ntt::paper_bitwidth_for_degree(n);
  s.add = pim::circuits::add_cycles(s.bitwidth);
  s.sub = pim::circuits::sub_cycles(s.bitwidth);
  s.mult = pim::circuits::mult_cycles(s.bitwidth);
  s.barrett = paper_barrett_cycles(s.q);
  s.montgomery = paper_montgomery_cycles(s.q);
  s.transfer = 3ull * s.bitwidth;
  return s;
}

LatencySet measured_latency(std::uint32_t n) {
  static std::map<std::pair<std::uint32_t, unsigned>, LatencySet> cache;
  const std::uint32_t q = ntt::paper_modulus_for_degree(n);
  const unsigned bw = ntt::paper_bitwidth_for_degree(n);
  const auto key = std::make_pair(q, bw);
  if (const auto it = cache.find(key); it != cache.end()) {
    LatencySet s = it->second;
    s.n = n;
    return s;
  }

  LatencySet s;
  s.n = n;
  s.q = q;
  s.bitwidth = bw;
  s.transfer = 3ull * bw;

  using namespace pim;
  using namespace pim::circuits;

  auto run = [](auto&& body) -> std::uint64_t {
    MemoryBlock blk;
    BlockExecutor exec(blk, RowMask::all());
    exec.reset_stats();
    body(exec);
    return exec.stats().cycles;
  };

  s.add = run([bw](BlockExecutor& e) {
    const Operand a = e.alloc(bw), b = e.alloc(bw);
    e.reset_stats();
    (void)add(e, a, b, bw);
  });
  s.sub = run([bw](BlockExecutor& e) {
    const Operand a = e.alloc(bw), b = e.alloc(bw);
    e.reset_stats();
    (void)sub(e, a, b, bw);
  });
  s.mult = run([bw](BlockExecutor& e) {
    const Operand a = e.alloc(bw), b = e.alloc(bw);
    e.reset_stats();
    (void)multiply(e, a, b);
  });
  // Reductions measured on the widths the butterfly produces: Barrett on
  // post-addition sums (< 2q), Montgomery on post-multiplication products.
  s.barrett = run([q](BlockExecutor& e) {
    const auto spec = ntt::BarrettShiftAdd::paper_spec(q);
    const Operand a = e.alloc(bit_length(2ull * q - 1));
    e.reset_stats();
    (void)barrett_reduce(e, a, spec, /*canonical=*/false);
  });
  s.montgomery = run([q](BlockExecutor& e) {
    const auto spec = ntt::MontgomeryShiftAdd::paper_spec(q);
    const Operand a =
        e.alloc(bit_length(2ull * q - 1) + bit_length(q - 1));
    e.reset_stats();
    (void)montgomery_reduce(e, a, spec, /*canonical=*/false);
  });

  cache.emplace(key, s);
  return s;
}

}  // namespace cryptopim::model
