// Architecture-level performance and energy model.
//
// Combines a PipelineSpec (structure) with a LatencySet (per-op cycles)
// and the RRAM DeviceModel (cycle time, per-cell energy) into the numbers
// the paper reports: latency (us), throughput (multiplications/s) and
// energy per multiplication (uJ), for both the pipelined and the
// non-pipelined design.
//
// Modelling conventions (validated against Table II, see DESIGN.md §4):
//  * pipelined latency  = depth * slowest-stage cycles * t_cycle
//  * pipelined rate     = 1 / (slowest-stage cycles * t_cycle)
//  * non-pipelined      = the area-efficient chain executed sequentially
//    (sum of its stage latencies) — fused blocks, no stage balancing
//  * energy             = cell events (compute cycles x n active rows)
//    plus switch-transfer events, scaled by calibrated per-event energies.
#pragma once

#include <cstdint>

#include "arch/pipeline.h"
#include "model/latency.h"
#include "pim/device.h"

namespace cryptopim::model {

/// Cycles a single stage takes, given a latency set.
std::uint64_t stage_cycles(const arch::StageSpec& stage, const LatencySet& l);

/// Evaluation of one pipeline configuration.
struct PipelinePerf {
  std::uint32_t n = 0;
  std::size_t depth = 0;
  std::uint64_t slowest_stage_cycles = 0;
  std::uint64_t total_compute_cycles = 0;   ///< sum over stages, no transfers
  std::uint64_t total_transfer_cycles = 0;  ///< switch hops only
  double latency_us = 0;
  double throughput_per_s = 0;   ///< one superbank (one multiplier chain)
  double energy_uj = 0;
};

/// Energy model: per-cell-event and per-transfer-bit energies, calibrated
/// once against the paper's Table II entry for n = 256 (pipelined,
/// 2.58 uJ); every other row is then a prediction.
struct EnergyModel {
  double cell_event_fj = 0;
  double transfer_bit_fj = 0;

  static EnergyModel calibrated();

  double energy_uj(std::uint64_t compute_cycles,
                   std::uint64_t transfer_cycles, std::uint32_t n) const;
};

/// Evaluate a pipeline built by PipelineSpec::build.
PipelinePerf evaluate_pipelined(const arch::PipelineSpec& spec,
                                const LatencySet& l, const EnergyModel& em,
                                const pim::DeviceModel& dev);

/// The non-pipelined design: area-efficient chain executed sequentially.
PipelinePerf evaluate_non_pipelined(std::uint32_t n, const LatencySet& l,
                                    const EnergyModel& em,
                                    const pim::DeviceModel& dev);

/// Convenience: pipelined CryptoPIM at degree n with paper latencies.
PipelinePerf cryptopim_pipelined(std::uint32_t n);
/// Convenience: non-pipelined CryptoPIM at degree n with paper latencies.
PipelinePerf cryptopim_non_pipelined(std::uint32_t n);

}  // namespace cryptopim::model
