// Reference numbers published in the paper, used by the benchmark harness
// to print paper-vs-model columns. Nothing in the model reads these except
// the single energy-calibration anchor (Table II, n=256 pipelined).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace cryptopim::model::paper {

/// One row of Table II.
struct Table2Row {
  std::uint32_t n;
  unsigned bitwidth;
  double latency_us;
  double energy_uj;
  double throughput_per_s;
};

/// X86 (gem5, 2 GHz) software implementation.
inline const std::vector<Table2Row>& cpu_rows() {
  static const std::vector<Table2Row> rows = {
      {256, 16, 84.81, 570.60, 11790},
      {512, 16, 168.96, 1179.52, 5918},
      {1024, 16, 349.41, 2483.77, 2861},
      {2048, 32, 736.92, 5273.07, 1365},
      {4096, 32, 1503.31, 10864.64, 665},
      {8192, 32, 3066.76, 22385.51, 326},
      {16384, 32, 6256.20, 46123.84, 159},
      {32768, 32, 12762.65, 95032.33, 78},
  };
  return rows;
}

/// FPGA implementation of [19] (Xilinx Zynq UltraScale+), n <= 1024 only.
inline const std::vector<Table2Row>& fpga_rows() {
  static const std::vector<Table2Row> rows = {
      {256, 16, 21.56, 2.15, 46382},
      {512, 16, 47.63, 5.28, 20995},
      {1024, 16, 101.84, 12.52, 9819},
  };
  return rows;
}

/// Pipelined CryptoPIM.
inline const std::vector<Table2Row>& cryptopim_rows() {
  static const std::vector<Table2Row> rows = {
      {256, 16, 68.67, 2.58, 553311},
      {512, 16, 75.90, 5.02, 553311},
      {1024, 16, 83.12, 11.04, 553311},
      {2048, 32, 363.60, 82.57, 137511},
      {4096, 32, 392.69, 178.62, 137511},
      {8192, 32, 421.78, 384.17, 137511},
      {16384, 32, 450.87, 822.21, 137511},
      {32768, 32, 479.95, 1752.15, 137511},
  };
  return rows;
}

inline std::optional<Table2Row> row_for(const std::vector<Table2Row>& rows,
                                        std::uint32_t n) {
  for (const auto& r : rows) {
    if (r.n == n) return r;
  }
  return std::nullopt;
}

// Table I (cycles, lazy reductions). The 7681 Barrett entry is not legible
// in the paper; 324 is back-derived from the Fig. 4(a) stage latency.
struct Table1Row {
  std::uint32_t q;
  std::uint64_t barrett;
  std::uint64_t montgomery;
  bool barrett_derived;
};
inline const std::vector<Table1Row>& table1_rows() {
  static const std::vector<Table1Row> rows = {
      {7681, 324, 683, true},
      {12289, 239, 461, false},
      {786433, 429, 1083, false},
  };
  return rows;
}

// Fig. 4: slowest-stage latency (cycles) at n = 256 / 16-bit.
inline constexpr std::uint64_t kFig4AreaEfficientStage = 2700;
inline constexpr std::uint64_t kFig4NaiveStage = 1756;
inline constexpr std::uint64_t kFig4CryptoPimStage = 1643;

// Fig. 5 claims.
inline constexpr double kThroughputGainSmallN = 27.8;   // n <= 1024
inline constexpr double kThroughputGainLargeN = 36.3;   // n > 1024
inline constexpr double kLatencyOverheadSmallN = 0.29;  // +29%
inline constexpr double kLatencyOverheadLargeN = 0.597; // +59.7%
inline constexpr double kPipelineEnergyOverhead = 0.016;  // +1.6%

// Fig. 6 claims (non-pipelined comparison).
inline constexpr double kBp1OverBp2 = 1.9;
inline constexpr double kBp2OverBp3 = 5.5;
inline constexpr double kBp3OverCryptoPim = 1.2;
inline constexpr double kBp1OverCryptoPim = 12.7;

// Headline Table II claims.
inline constexpr double kThroughputVsFpga = 31.0;   // n <= 1024, ~same energy
inline constexpr double kLatencyPenaltyVsFpga = 0.30;
inline constexpr double kPerfVsCpu = 7.6;
inline constexpr double kThroughputVsCpu = 111.0;
inline constexpr double kEnergyVsCpu = 226.0;

}  // namespace cryptopim::model::paper
