#include "model/scheduler.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace cryptopim::model {

double class_capacity_per_s(const arch::ChipConfig& chip, std::uint32_t degree,
                            unsigned failed_banks, double cycle_ns) {
  const auto plan = chip.plan_for_degree(degree, failed_banks);
  const auto perf = cryptopim_pipelined(std::min(degree, chip.design_max_n));
  const double occupancy_cycles =
      static_cast<double>(plan.segments) * perf.slowest_stage_cycles;
  const double cycles_per_s = 1e9 / cycle_ns;
  return plan.superbanks * cycles_per_s / occupancy_cycles;
}

ScheduleResult ChipScheduler::schedule(std::span<const Job> jobs) const {
  // Group by degree; largest degree first (the most constrained classes
  // get scheduled while the rest of the list is still pending).
  std::map<std::uint32_t, std::uint64_t, std::greater<>> by_degree;
  for (const Job& j : jobs) {
    if (j.count == 0) continue;
    by_degree[j.degree] += j.count;
  }

  ScheduleResult result;
  double clock_us = 0;
  double busy_bank_us = 0;
  for (const auto& [degree, count] : by_degree) {
    const auto plan = chip_.plan_for_degree(degree, failed_banks_);
    const auto perf = cryptopim_pipelined(std::min(degree, chip_.design_max_n));

    ScheduleBatch batch;
    batch.degree = degree;
    batch.superbanks = plan.superbanks;
    batch.segments = plan.segments;
    batch.multiplications = count;

    // Each superbank streams its share; degrees above the design point
    // pass each multiplication through the hardware `segments` times.
    const std::uint64_t per_pipe =
        (count + plan.superbanks - 1) / plan.superbanks;
    const std::uint64_t beats = per_pipe * plan.segments;
    const double beat_us = 1e6 / perf.throughput_per_s;
    batch.fill_us = perf.latency_us;
    batch.duration_us =
        perf.latency_us + (beats > 0 ? (beats - 1) * beat_us : 0);
    // Busy time: every active pipeline occupies its banks for the batch.
    const unsigned pipes_used = static_cast<unsigned>(std::min<std::uint64_t>(
        plan.superbanks, count));
    batch.bank_busy_us =
        batch.duration_us * pipes_used * plan.banks_per_superbank;

    if (!result.batches.empty()) {
      clock_us += repartition_us_;
      ++result.repartitions;
    }
    clock_us += batch.duration_us;
    busy_bank_us += batch.bank_busy_us;
    result.total_multiplications += count;
    result.batches.push_back(batch);
  }

  result.makespan_us = clock_us;
  if (clock_us > 0) {
    result.utilization = busy_bank_us / (chip_.total_banks * clock_us);
    result.throughput_per_s =
        result.total_multiplications / (clock_us * 1e-6);
  }
  return result;
}

}  // namespace cryptopim::model
