#include "pim/switch.h"

#include <cassert>

namespace cryptopim::pim {

void FixedFunctionSwitch::transfer(const MemoryBlock& src,
                                   const Operand& src_op, const RowMask& mask,
                                   BlockExecutor& dst_exec,
                                   const Operand& dst_op,
                                   Route route) const {
  assert(src_op.width() == dst_op.width());
  const int offset = route == Route::kStraight ? 0
                     : route == Route::kPlusS ? static_cast<int>(stride_)
                                              : -static_cast<int>(stride_);

  MemoryBlock& dst = dst_exec.block();
  for (unsigned bit = 0; bit < src_op.width(); ++bit) {
    const ColumnBits& sc = src.column(src_op.col(bit));
    ColumnBits& dc = dst.column(dst_op.col(bit));
    for (std::size_t r = 0; r < kBlockRows; ++r) {
      if (!mask.get(r)) continue;
      const long target = static_cast<long>(r) + offset;
      if (target < 0 || target >= static_cast<long>(kBlockRows)) continue;
      dc.set(static_cast<std::size_t>(target), sc.get(r));
    }
  }
  dst.enforce_faults();
  // One column per cycle through the route.
  const char* what = route == Route::kStraight ? "switch.straight"
                     : route == Route::kPlusS ? "switch.plus_s"
                                              : "switch.minus_s";
  dst_exec.charge_transfer(src_op.width(), src_op.width(), what);
}

}  // namespace cryptopim::pim
