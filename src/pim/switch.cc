#include "pim/switch.h"

#include <cassert>

namespace cryptopim::pim {

void FixedFunctionSwitch::transfer(const MemoryBlock& src,
                                   const Operand& src_op, const RowMask& mask,
                                   BlockExecutor& dst_exec,
                                   const Operand& dst_op,
                                   Route route) const {
  assert(src_op.width() == dst_op.width());
  const int offset = route == Route::kStraight ? 0
                     : route == Route::kPlusS ? static_cast<int>(stride_)
                                              : -static_cast<int>(stride_);

  MemoryBlock& dst = dst_exec.block();
  // Even parity of the bits each source row puts on the wires, latched at
  // the source sense amps alongside the data columns.
  std::array<std::uint8_t, kBlockRows> sent_parity{};
  for (unsigned bit = 0; bit < src_op.width(); ++bit) {
    const ColumnBits& sc = src.column(src_op.col(bit));
    ColumnBits& dc = dst.column(dst_op.col(bit));
    for (std::size_t r = 0; r < kBlockRows; ++r) {
      if (!mask.get(r)) continue;
      const long target = static_cast<long>(r) + offset;
      if (target < 0 || target >= static_cast<long>(kBlockRows)) continue;
      bool v = sc.get(r);
      if (parity_) sent_parity[r] ^= static_cast<std::uint8_t>(v);
      if (hooks_ != nullptr && hooks_->corrupt_bit()) v = !v;
      dc.set(static_cast<std::size_t>(target), v);
    }
  }
  dst.enforce_faults();
  if (parity_) {
    // Destination-side recount: re-read the cells the transfer landed in
    // (stuck faults have re-asserted by now, so in-cell corruption is
    // visible too) and compare against the transmitted parity column.
    for (std::size_t r = 0; r < kBlockRows; ++r) {
      if (!mask.get(r)) continue;
      const long target = static_cast<long>(r) + offset;
      if (target < 0 || target >= static_cast<long>(kBlockRows)) continue;
      std::uint8_t got = 0;
      for (unsigned bit = 0; bit < dst_op.width(); ++bit) {
        got ^= static_cast<std::uint8_t>(
            dst.column(dst_op.col(bit)).get(static_cast<std::size_t>(target)));
      }
      if (got != sent_parity[r]) {
        hooks_->parity_mismatch(static_cast<std::size_t>(target));
      }
    }
  }
  // One column per cycle through the route (+1 for the parity column).
  const char* what = route == Route::kStraight ? "switch.straight"
                     : route == Route::kPlusS ? "switch.plus_s"
                                              : "switch.minus_s";
  const unsigned cols = src_op.width() + (parity_ ? 1u : 0u);
  dst_exec.charge_transfer(cols, cols, what);
}

}  // namespace cryptopim::pim
