// NTT-specific fixed-function inter-block switch (Section III-C).
//
// Unlike a full crossbar switch (whose logic grows with the square of the
// port count), the fixed-function switch wires exactly three routes per
// row — rowA -> rowA, rowA -> rowA+s, rowA -> rowA-s — for one hard-coded
// stride s (the butterfly stride of the NTT stage it feeds). Three logic
// switches per row, independent of the number of inputs/outputs.
//
// A transfer moves one full column per cycle; moving an N-bit operand
// through one route costs N cycles, and the three routes of a butterfly
// stage cost 3N in total ("transferring data between two blocks in NTT
// requires only 3*bitwidth cycles").
#pragma once

#include <cstdint>

#include "pim/block.h"
#include "pim/executor.h"

namespace cryptopim::pim {

class FixedFunctionSwitch {
 public:
  enum class Route { kStraight, kPlusS, kMinusS };

  /// `stride` is the hard-wired s of this switch instance.
  explicit FixedFunctionSwitch(unsigned stride) : stride_(stride) {}

  unsigned stride() const noexcept { return stride_; }

  /// Move operand `src_op` (in `src`) to `dst_op` (in `dst`) through one
  /// route: active src row r lands in dst row r (+/- s). Rows that would
  /// leave [0, kBlockRows) are dropped (the NTT schedule never produces
  /// them). Charges width cycles + width*rows transfer bits to `dst_exec`.
  void transfer(const MemoryBlock& src, const Operand& src_op,
                const RowMask& mask, BlockExecutor& dst_exec,
                const Operand& dst_op, Route route) const;

  /// Logic elements per row: the defining advantage over a crossbar.
  static constexpr std::uint64_t logic_per_row() { return 3; }
  /// A traditional crossbar needs a switch per input/output pair.
  static constexpr std::uint64_t crossbar_logic_per_row(unsigned rows) {
    return rows;  // rows^2 total over `rows` rows
  }

 private:
  unsigned stride_;
};

}  // namespace cryptopim::pim
