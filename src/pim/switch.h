// NTT-specific fixed-function inter-block switch (Section III-C).
//
// Unlike a full crossbar switch (whose logic grows with the square of the
// port count), the fixed-function switch wires exactly three routes per
// row — rowA -> rowA, rowA -> rowA+s, rowA -> rowA-s — for one hard-coded
// stride s (the butterfly stride of the NTT stage it feeds). Three logic
// switches per row, independent of the number of inputs/outputs.
//
// A transfer moves one full column per cycle; moving an N-bit operand
// through one route costs N cycles, and the three routes of a butterfly
// stage cost 3N in total ("transferring data between two blocks in NTT
// requires only 3*bitwidth cycles").
//
// Reliability extension: the switch datapath can carry one extra *parity*
// column per route — the even parity of the operand's bits, computed at
// the source sense amps and compared against a recount at the destination
// after the write lands (so a stuck destination cell or an in-flight flip
// shows up as a per-row parity mismatch). The hook interface below is how
// the reliability layer (src/reliability) injects transient corruption
// and collects mismatches without the pim layer depending on it.
#pragma once

#include <cstdint>

#include "pim/block.h"
#include "pim/executor.h"

namespace cryptopim::pim {

/// Observer/corrupter for switch transfers, implemented by the
/// reliability layer. All methods are called only while attached.
class TransferFaultHooks {
 public:
  virtual ~TransferFaultHooks() = default;
  /// Called once per transferred bit; return true to flip it in flight
  /// (transient coupling/driver noise on the inter-block wire).
  virtual bool corrupt_bit() = 0;
  /// The destination's recount disagreed with the transmitted parity on
  /// `row` — in-flight or in-cell corruption detected.
  virtual void parity_mismatch(std::size_t row) = 0;
};

class FixedFunctionSwitch {
 public:
  enum class Route { kStraight, kPlusS, kMinusS };

  /// `stride` is the hard-wired s of this switch instance.
  explicit FixedFunctionSwitch(unsigned stride) : stride_(stride) {}

  unsigned stride() const noexcept { return stride_; }

  /// Attach reliability hooks. `parity` adds the parity column to every
  /// subsequent transfer (one extra cycle per route, checked at the
  /// destination). nullptr detaches.
  void set_fault_hooks(TransferFaultHooks* hooks, bool parity) noexcept {
    hooks_ = hooks;
    parity_ = parity && hooks != nullptr;
  }

  /// Move operand `src_op` (in `src`) to `dst_op` (in `dst`) through one
  /// route: active src row r lands in dst row r (+/- s). Rows that would
  /// leave [0, kBlockRows) are dropped (the NTT schedule never produces
  /// them). Charges width cycles + width*rows transfer bits to `dst_exec`
  /// (+1 cycle when the parity column rides along).
  void transfer(const MemoryBlock& src, const Operand& src_op,
                const RowMask& mask, BlockExecutor& dst_exec,
                const Operand& dst_op, Route route) const;

  /// Logic elements per row: the defining advantage over a crossbar.
  static constexpr std::uint64_t logic_per_row() { return 3; }
  /// A traditional crossbar needs a switch per input/output pair.
  static constexpr std::uint64_t crossbar_logic_per_row(unsigned rows) {
    return rows;  // rows^2 total over `rows` rows
  }

 private:
  unsigned stride_;
  TransferFaultHooks* hooks_ = nullptr;
  bool parity_ = false;
};

}  // namespace cryptopim::pim
