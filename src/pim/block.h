// A PIM-enabled ReRAM crossbar memory block.
//
// The block is an r x c array of single-bit cells (512 x 512 in the paper,
// Section III-C). Cells in one row share a wordline, cells in one column a
// bitline. Digital PIM executes a logic gate by applying an execution
// voltage across operand bitlines and grounding the result bitline; the
// gate evaluates simultaneously in every activated row — this is the
// row-parallelism CryptoPIM exploits for vector-wide arithmetic.
//
// Storage is column-major (one bitset per column over the rows) so a gate
// op is a handful of word-wide boolean operations regardless of how many
// rows participate, mirroring the constant-latency hardware behaviour.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace cryptopim::pim {

/// Column index within a block.
using Col = std::uint16_t;

inline constexpr std::size_t kBlockRows = 512;
inline constexpr std::size_t kBlockCols = 512;

/// Bitset over the rows of one column.
class ColumnBits {
 public:
  static constexpr std::size_t kWords = kBlockRows / 64;

  std::uint64_t word(std::size_t w) const noexcept { return words_[w]; }
  void set_word(std::size_t w, std::uint64_t v) noexcept { words_[w] = v; }

  bool get(std::size_t row) const noexcept {
    return (words_[row / 64] >> (row % 64)) & 1u;
  }
  void set(std::size_t row, bool v) noexcept {
    const std::uint64_t bit = std::uint64_t{1} << (row % 64);
    if (v) {
      words_[row / 64] |= bit;
    } else {
      words_[row / 64] &= ~bit;
    }
  }
  void clear() noexcept { words_.fill(0); }

 private:
  std::array<std::uint64_t, kWords> words_{};
};

/// Row mask selecting which wordlines participate in a gate op.
class RowMask {
 public:
  /// All rows inactive.
  RowMask() = default;
  /// Rows [0, count) active.
  static RowMask first_rows(std::size_t count);
  /// All kBlockRows rows active.
  static RowMask all();

  std::uint64_t word(std::size_t w) const noexcept { return words_[w]; }
  bool get(std::size_t row) const noexcept {
    return (words_[row / 64] >> (row % 64)) & 1u;
  }
  void set(std::size_t row, bool v) noexcept {
    const std::uint64_t bit = std::uint64_t{1} << (row % 64);
    if (v) {
      words_[row / 64] |= bit;
    } else {
      words_[row / 64] &= ~bit;
    }
  }
  std::size_t count() const noexcept;

 private:
  std::array<std::uint64_t, ColumnBits::kWords> words_{};
};

/// A permanently failed cell: reads always return `value` regardless of
/// writes (stuck-at-0 / stuck-at-1, the dominant ReRAM endurance failure
/// mode). Coordinates are *physical*: a fault names a cell of the array,
/// not the logical column the periphery map (remap_column) may have
/// steered away from it.
struct StuckFault {
  Col col = 0;
  std::uint16_t row = 0;
  bool value = false;
};

/// Observer of program-verify failures, implemented by the reliability
/// layer. ReRAM writes are program-verify cycles (SET/RESET then read
/// back); a stuck cell that cannot take the intended value is visible to
/// the write driver immediately. enforce_faults() models the readback:
/// every bit it has to flip back to the stuck value is a write the cell
/// refused, reported here.
class WriteVerifyObserver {
 public:
  virtual ~WriteVerifyObserver() = default;
  /// Physical cell (col, row) refused a write and holds `stuck_value`.
  virtual void stuck_write(Col col, std::size_t row, bool stuck_value) = 0;
};

/// One 512x512 crossbar.
///
/// Numbers are stored MSB-first across consecutive columns (Section
/// III-B.1: "N continuous memory cells in a row represent an N-bit number,
/// with the first cell storing the Most Significant Bit").
///
/// Host-facing entry points (write_number, read_number, inject_stuck_at,
/// remap_column) bounds-check unconditionally and throw
/// std::invalid_argument — they are untrusted-input surfaces and must not
/// corrupt memory in NDEBUG builds. The per-gate column() accessor stays
/// assert-only: it sits on the hot path and its callers (executor,
/// circuits) only produce column ids they allocated themselves.
class MemoryBlock {
 public:
  ColumnBits& column(Col c) noexcept {
    assert(c < kBlockCols);
    return cols_[remap_ ? (*remap_)[c] : c];
  }
  const ColumnBits& column(Col c) const noexcept {
    assert(c < kBlockCols);
    return cols_[remap_ ? (*remap_)[c] : c];
  }

  /// Write an N-bit number into row `row`, MSB at column `base`.
  void write_number(std::size_t row, Col base, unsigned width,
                    std::uint64_t value);
  /// Read the N-bit number whose MSB is at column `base` in row `row`.
  std::uint64_t read_number(std::size_t row, Col base, unsigned width) const;

  /// Reset every cell to 0 (power-on state). Stuck cells re-assert.
  void clear() noexcept;

  // -- fault injection --------------------------------------------------------
  /// Mark a *physical* cell as permanently stuck. Enforced by
  /// enforce_faults(), which the executor and the switches call after
  /// every mutation.
  void inject_stuck_at(Col col, std::size_t row, bool value);
  void clear_faults() noexcept { faults_.clear(); }
  const std::vector<StuckFault>& faults() const noexcept { return faults_; }
  /// Re-assert every stuck cell's value. Bits actually flipped (i.e.
  /// writes the cell refused) are reported to the attached
  /// WriteVerifyObserver — attach it *after* planting faults so the
  /// initial assertion stays silent.
  void enforce_faults() noexcept;
  /// Attach the program-verify observer (nullptr detaches).
  void set_write_verify(WriteVerifyObserver* obs) noexcept {
    observer_ = obs;
  }

  // -- column remap (periphery repair) ----------------------------------------
  /// Steer logical column `logical` to physical column `physical` — the
  /// column-mux repair path: a worn-out column is abandoned in place and
  /// a spare takes over its address. Applies to every access through
  /// column() (gates, host I/O, switch transfers); stuck faults remain
  /// addressed physically.
  void remap_column(Col logical, Col physical);
  /// Physical column currently serving logical column `c`.
  Col physical_column(Col c) const noexcept {
    return remap_ ? (*remap_)[c] : c;
  }
  bool has_remaps() const noexcept { return remap_ != nullptr; }
  void clear_remaps() noexcept { remap_.reset(); }

 private:
  std::vector<ColumnBits> cols_ = std::vector<ColumnBits>(kBlockCols);
  std::vector<StuckFault> faults_;
  WriteVerifyObserver* observer_ = nullptr;
  // Identity when null (the common, fault-free case): one pointer test on
  // the access path instead of an unconditional indirection.
  std::unique_ptr<std::array<Col, kBlockCols>> remap_;
};

}  // namespace cryptopim::pim
