// Row-parallel in-memory arithmetic circuits (Section III-B.2).
//
// Each routine emits a sequence of gate micro-ops on a BlockExecutor and
// returns the operand holding the result. Latencies (in crossbar cycles,
// identical for 1 or 512 rows):
//   add:       6N + 1   (XOR2 + XOR2 + MAJ3 per bit, carry init)
//   subtract:  7N + 1   (extra input complement per bit)
//   multiply:  carry-save accumulation of NAND partial products followed
//              by one ripple carry-propagate; measured cycles track the
//              paper's 6.5N^2 - 11.5N + 3 within a documented tolerance
//              (the analytic model uses the paper formula exactly).
//   shifts:    0        (column re-addressing)
// All results are written to freshly allocated columns; inputs are
// untouched and may alias shifted views.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitutil.h"
#include "pim/executor.h"

namespace cryptopim::pim::circuits {

/// sum = (a + b) mod 2^out_width. Operands narrower than out_width are
/// zero-extended on the fly. Cost: 6*out_width + 1 cycles.
Operand add(BlockExecutor& exec, const Operand& a, const Operand& b,
            unsigned out_width);

struct SubResult {
  Operand diff;     ///< (a - b) mod 2^out_width
  Col no_borrow;    ///< 1 iff a >= b (carry out of the top bit)
};

/// diff = (a - b) mod 2^out_width via a + ~b + 1. Cost: 7*out_width + 1.
SubResult sub(BlockExecutor& exec, const Operand& a, const Operand& b,
              unsigned out_width);

/// Full product, width a.width() + b.width().
Operand multiply(BlockExecutor& exec, const Operand& a, const Operand& b);

/// The baseline multiplier of Haj-Ali et al. [35] (used by BP-1 in
/// Fig. 6): explicit AND partial products, each folded into the
/// accumulator with a full-width ripple add — no carry-save compression,
/// no polarity tricks. Measured cycles track 13N^2 - 14N + 6.
Operand multiply_baseline35(BlockExecutor& exec, const Operand& a,
                            const Operand& b);

/// Paper latency formulas (cycles) for the analytic model.
constexpr std::uint64_t add_cycles(unsigned n) { return 6ull * n + 1; }
constexpr std::uint64_t sub_cycles(unsigned n) { return 7ull * n + 1; }
/// CryptoPIM multiplier (Section III-B.2).
constexpr std::uint64_t mult_cycles(unsigned n) {
  return (13ull * n * n - 23ull * n + 6) / 2;  // 6.5N^2 - 11.5N + 3
}
/// Baseline multiplier of [35] (used by BP-1 in Fig. 6).
constexpr std::uint64_t mult_cycles_baseline(unsigned n) {
  return 13ull * n * n - 14ull * n + 6;
}

/// Width-trimmed adder performing "only the necessary bit-wise
/// computations" (Section III-B.2): bit positions whose inputs are
/// constant rails fold away (aliases, 0 cycles) or degrade to 1-2-4 cycle
/// specialisations; only positions with two variable inputs and an unknown
/// carry pay the full 6 cycles. Used by the shift-add reduction chains,
/// where operands are mostly shifted views full of zero-rail bits. Result
/// bits may alias input columns (reference counted). `b_complemented`
/// together with `carry_in_one` turns the routine into a trimmed
/// subtractor (a + ~b + 1).
Operand add_trimmed(BlockExecutor& exec, const Operand& a, const Operand& b,
                    unsigned out_width, bool b_complemented = false,
                    bool carry_in_one = false);

inline Operand sub_trimmed(BlockExecutor& exec, const Operand& a,
                           const Operand& b, unsigned out_width) {
  return add_trimmed(exec, a, b, out_width, /*b_complemented=*/true,
                     /*carry_in_one=*/true);
}

/// result = a >= k ? a - k : a, for a row-invariant constant k.
/// Cost: 7w + 1 (trial subtract) + 3w (mux) + O(1).
Operand conditional_subtract(BlockExecutor& exec, const Operand& a,
                             std::uint64_t k);

/// Bit-wise select: sel ? x : y (3 cycles per bit).
Operand mux(BlockExecutor& exec, Col sel, const Operand& x, const Operand& y);

/// Evaluate a shift-add constant chain on operand x:
///   result = sum_i sign_i * (x << shift_i)   (mod 2^out_width)
/// Terms are processed in descending shift order; with a leading positive
/// term the running value stays a valid two's-complement partial result,
/// matching Algorithm 3's evaluation. Shifts are free; each combining
/// step is one add/sub.
Operand shift_add_chain(BlockExecutor& exec, const Operand& x,
                        const std::vector<ShiftAddTerm>& terms,
                        unsigned out_width);

}  // namespace cryptopim::pim::circuits
