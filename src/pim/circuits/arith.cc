#include "pim/circuits/arith.h"

#include <algorithm>
#include <cassert>

namespace cryptopim::pim::circuits {

namespace {

// Bit i of `op`, zero-extended beyond its width.
Col bit_or_zero(const BlockExecutor& exec, const Operand& op, unsigned i) {
  return i < op.width() ? op.col(i) : exec.zero_col();
}

}  // namespace

Operand add(BlockExecutor& exec, const Operand& a, const Operand& b,
            unsigned out_width) {
  const TraceScope span(exec, "add", "circuit");
  Operand sum = exec.alloc(out_width);
  const Col p = exec.alloc_col();
  const Col carry0 = exec.alloc_col();
  const Col carry1 = exec.alloc_col();

  exec.set0(carry0);  // +1: carry-in = 0
  Col cin = carry0;
  Col cout = carry1;
  for (unsigned i = 0; i < out_width; ++i) {  // 6 cycles per bit
    const Col ai = bit_or_zero(exec, a, i);
    const Col bi = bit_or_zero(exec, b, i);
    exec.gate2(GateKind::kXor2, p, ai, bi);
    exec.gate2(GateKind::kXor2, sum.col(i), p, cin);
    exec.gate3(GateKind::kMaj3, cout, ai, bi, cin);
    std::swap(cin, cout);
  }
  exec.free_col(p);
  exec.free_col(carry0);
  exec.free_col(carry1);
  return sum;
}

SubResult sub(BlockExecutor& exec, const Operand& a, const Operand& b,
              unsigned out_width) {
  const TraceScope span(exec, "sub", "circuit");
  Operand diff = exec.alloc(out_width);
  const Col nb = exec.alloc_col();
  const Col p = exec.alloc_col();
  const Col carry0 = exec.alloc_col();
  const Col carry1 = exec.alloc_col();

  exec.set1(carry0);  // +1: a + ~b + 1
  Col cin = carry0;
  Col cout = carry1;
  for (unsigned i = 0; i < out_width; ++i) {  // 7 cycles per bit
    const Col ai = bit_or_zero(exec, a, i);
    const Col bi = bit_or_zero(exec, b, i);
    exec.gate1(GateKind::kNot, nb, bi);
    exec.gate2(GateKind::kXor2, p, ai, nb);
    exec.gate2(GateKind::kXor2, diff.col(i), p, cin);
    exec.gate3(GateKind::kMaj3, cout, ai, nb, cin);
    std::swap(cin, cout);
  }
  exec.free_col(nb);
  exec.free_col(p);
  exec.free_col(cout);  // the unused buffer after the final swap
  return SubResult{std::move(diff), cin};
}

Operand multiply(BlockExecutor& exec, const Operand& a, const Operand& b) {
  const TraceScope span(exec, "multiply", "circuit");
  const unsigned wa = a.width();
  const unsigned wb = b.width();
  const unsigned out = wa + wb;
  assert(wa > 0 && wb > 0);

  // Carry-save accumulation. `s` and `c` are slot vectors: untouched slots
  // keep their previous column (or the zero rail), touched slots get fresh
  // result columns — so only the PP window pays gate latency each layer.
  std::vector<Col> s(out, exec.zero_col());
  std::vector<Col> c(out + 1, exec.zero_col());

  auto replace = [&exec](Col& slot, Col fresh) {
    if (slot != exec.zero_col()) exec.free_col(slot);
    slot = fresh;
  };

  // Layer 0: s[i] = a_i AND b_0 (2 cycles per bit).
  for (unsigned i = 0; i < wa; ++i) {
    const Col dst = exec.alloc_col();
    exec.gate2(GateKind::kAnd, dst, a.col(i), b.col(0));
    s[i] = dst;
  }

  const Col t = exec.alloc_col();  // NAND partial-product bit, reused
  for (unsigned j = 1; j < wb; ++j) {
    // One extra slot above the window folds the carry emitted at the top
    // of the previous layer back into the running sum (4 cycles):
    //   s'[j+wa] = s ^ c,  c'[j+wa+1] = s & c.
    {
      const unsigned pos = j + wa;
      const Col ns = exec.alloc_col();
      exec.gate2(GateKind::kXor2, ns, s[pos], c[pos]);
      const Col nc = exec.alloc_col();
      exec.gate2(GateKind::kAnd, nc, s[pos], c[pos]);
      replace(s[pos], ns);
      replace(c[pos + 1], nc);
    }
    // Window, descending so each slot's old carry is consumed before the
    // neighbour below overwrites it (6 cycles per bit: NAND+XOR3+MAJ3,
    // the complemented partial product absorbed by input polarity).
    for (unsigned i = wa; i-- > 0;) {
      const unsigned pos = i + j;
      exec.gate2(GateKind::kNand, t, a.col(i), b.col(j));
      const Col ns = exec.alloc_col();
      exec.gate3(GateKind::kXor3, ns, s[pos], c[pos], t, false, false,
                 /*neg_c=*/true);
      const Col nc = exec.alloc_col();
      exec.gate3(GateKind::kMaj3, nc, s[pos], c[pos], t, false, false,
                 /*neg_c=*/true);
      replace(s[pos], ns);
      replace(c[pos + 1], nc);
    }
    // The lowest window position absorbed c[j] into its outputs, but no
    // iteration rewrites that slot — clear it or the final carry
    // propagation would double-count it.
    replace(c[j], exec.zero_col());
  }
  exec.free_col(t);

  // Final carry propagation (6*out + 1). c[out] is provably zero: the
  // partial sum always fits in `out` bits.
  const Operand s_op{std::vector<Col>(s.begin(), s.end())};
  const Operand c_op{std::vector<Col>(c.begin(), c.begin() + out)};
  Operand prod = add(exec, s_op, c_op, out);
  exec.free(s_op);
  exec.free(c_op);
  if (c[out] != exec.zero_col()) exec.free_col(c[out]);
  return prod;
}

namespace {

// A single-bit signal for the trimmed adder: a constant rail or a column
// with an optional pending complement (absorbed by gate input polarity).
struct Sig {
  enum class K : std::uint8_t { kC0, kC1, kVar } k = K::kC0;
  Col col = 0;
  bool neg = false;

  bool is_const() const { return k != K::kVar; }
  bool const_val() const { return k == K::kC1; }
};

Sig sig_from(const BlockExecutor& exec, const Operand& op, unsigned i,
             bool complemented) {
  const Col c = i < op.width() ? op.col(i) : exec.zero_col();
  if (c == exec.zero_col()) return Sig{complemented ? Sig::K::kC1 : Sig::K::kC0, 0, false};
  if (c == exec.one_col()) return Sig{complemented ? Sig::K::kC0 : Sig::K::kC1, 0, false};
  return Sig{Sig::K::kVar, c, complemented};
}

}  // namespace

Operand add_trimmed(BlockExecutor& exec, const Operand& a, const Operand& b,
                    unsigned out_width, bool b_complemented,
                    bool carry_in_one) {
  std::vector<Col> out(out_width, exec.zero_col());

  // Two mutable carry buffers; a gate-computed carry always writes the one
  // the current carry signal does not reference.
  Col buf[2] = {0, 0};
  bool buf_alloc[2] = {false, false};
  auto carry_target = [&](const Sig& cur) -> Col {
    const int pick = (buf_alloc[0] && cur.k == Sig::K::kVar && cur.col == buf[0]) ? 1 : 0;
    if (!buf_alloc[pick]) {
      buf[pick] = exec.alloc_col();
      buf_alloc[pick] = true;
    }
    return buf[pick];
  };
  auto is_buffer = [&](Col c) {
    return (buf_alloc[0] && c == buf[0]) || (buf_alloc[1] && c == buf[1]);
  };

  // Materialise a signal into a stable result column. Aliasing a carry
  // buffer is unsafe (it gets rewritten), so those are copied out.
  auto store = [&](Sig s) -> Col {
    switch (s.k) {
      case Sig::K::kC0: return exec.zero_col();
      case Sig::K::kC1: return exec.one_col();
      case Sig::K::kVar: break;
    }
    if (!s.neg && !is_buffer(s.col)) {
      exec.retain_col(s.col);
      return s.col;
    }
    const Col fresh = exec.alloc_col();
    if (s.neg) {
      exec.gate1(GateKind::kNot, fresh, s.col);  // 1 cycle
    } else {
      exec.gate2(GateKind::kOr, fresh, s.col, exec.zero_col());  // 1 cycle
    }
    return fresh;
  };

  const Col scratch = exec.alloc_col();
  Sig carry{carry_in_one ? Sig::K::kC1 : Sig::K::kC0, 0, false};

  for (unsigned i = 0; i < out_width; ++i) {
    const Sig x = sig_from(exec, a, i, false);
    const Sig y = sig_from(exec, b, i, b_complemented);

    Sig vars[3];
    unsigned n_vars = 0;
    bool parity = false;  // xor of the constant inputs
    unsigned ones = 0;    // count of constant-1 inputs
    unsigned n_consts = 0;
    for (const Sig& s : {x, y, carry}) {
      if (s.is_const()) {
        parity ^= s.const_val();
        ones += s.const_val() ? 1u : 0u;
        ++n_consts;
      } else {
        vars[n_vars++] = s;
      }
    }

    Sig sum, cout;
    switch (n_vars) {
      case 0: {  // fully constant position: free
        sum = Sig{parity ? Sig::K::kC1 : Sig::K::kC0, 0, false};
        cout = Sig{ones >= 2 ? Sig::K::kC1 : Sig::K::kC0, 0, false};
        break;
      }
      case 1: {  // alias (or 1-cycle complement) and constant-folded carry
        sum = vars[0];
        sum.neg ^= parity;
        if (ones == 0) {
          cout = Sig{Sig::K::kC0, 0, false};
        } else if (ones == 2) {
          cout = Sig{Sig::K::kC1, 0, false};
        } else {  // the two constants differ: maj(v,0,1) = v
          cout = vars[0];
        }
        break;
      }
      case 2: {  // one constant: 3-4 cycles
        const Sig& u = vars[0];
        const Sig& v = vars[1];
        const Col s_col = exec.alloc_col();
        // u ^ v ^ k, the constant folded into one input polarity.
        exec.gate2(GateKind::kXor2, s_col, u.col, v.col, u.neg ^ parity,
                   v.neg);
        sum = Sig{Sig::K::kVar, s_col, false};
        const Col c_col = carry_target(carry);
        if (ones == 0) {  // maj(u,v,0) = u & v
          exec.gate2(GateKind::kAnd, c_col, u.col, v.col, u.neg, v.neg);
        } else {  // maj(u,v,1) = u | v
          exec.gate2(GateKind::kOr, c_col, u.col, v.col, u.neg, v.neg);
        }
        cout = Sig{Sig::K::kVar, c_col, false};
        break;
      }
      default: {  // full 6-cycle position
        const Sig& u = vars[0];
        const Sig& v = vars[1];
        const Sig& w = vars[2];
        exec.gate2(GateKind::kXor2, scratch, u.col, v.col, u.neg, v.neg);
        const Col s_col = exec.alloc_col();
        exec.gate2(GateKind::kXor2, s_col, scratch, w.col, false, w.neg);
        sum = Sig{Sig::K::kVar, s_col, false};
        const Col c_col = carry_target(carry);
        exec.gate3(GateKind::kMaj3, c_col, u.col, v.col, w.col, u.neg, v.neg,
                   w.neg);
        cout = Sig{Sig::K::kVar, c_col, false};
        break;
      }
    }

    // Fresh gate-computed sums already own their column; aliases and
    // constants go through store().
    if (sum.k == Sig::K::kVar && !sum.neg && !is_buffer(sum.col) &&
        (n_vars >= 2)) {
      out[i] = sum.col;  // freshly allocated above
    } else {
      out[i] = store(sum);
    }
    carry = cout;
  }

  exec.free_col(scratch);
  if (buf_alloc[0]) exec.free_col(buf[0]);
  if (buf_alloc[1]) exec.free_col(buf[1]);
  return Operand(std::move(out));
}

Operand multiply_baseline35(BlockExecutor& exec, const Operand& a,
                            const Operand& b) {
  const TraceScope span(exec, "multiply_baseline35", "circuit");
  const unsigned wa = a.width();
  const unsigned wb = b.width();
  const unsigned out = wa + wb;
  assert(wa > 0 && wb > 0);

  // Partial product row 0 seeds the accumulator directly.
  Operand acc = exec.alloc(wa);
  for (unsigned i = 0; i < wa; ++i) {
    exec.gate2(GateKind::kAnd, acc.col(i), a.col(i), b.col(0));
  }

  Operand pp = exec.alloc(wa);
  for (unsigned j = 1; j < wb; ++j) {
    for (unsigned i = 0; i < wa; ++i) {  // 2 cycles per PP bit
      exec.gate2(GateKind::kAnd, pp.col(i), a.col(i), b.col(j));
    }
    // Full-width ripple add of the shifted partial product — the
    // expensive step carry-save accumulation avoids.
    const unsigned width = std::min(out, wa + j + 1);
    Operand next = add(exec, acc, exec.shifted(pp, j), width);
    exec.free(acc);
    acc = std::move(next);
  }
  exec.free(pp);

  if (acc.width() < out) {
    std::vector<Col> cols = acc.cols();
    cols.insert(cols.end(), out - acc.width(), exec.zero_col());
    return Operand(std::move(cols));
  }
  return acc;
}

Operand mux(BlockExecutor& exec, Col sel, const Operand& x, const Operand& y) {
  assert(x.width() == y.width());
  Operand out = exec.alloc(x.width());
  for (unsigned i = 0; i < x.width(); ++i) {
    exec.gate3(GateKind::kMux, out.col(i), x.col(i), y.col(i), sel);
  }
  return out;
}

Operand conditional_subtract(BlockExecutor& exec, const Operand& a,
                             std::uint64_t k) {
  const TraceScope span(exec, "conditional_subtract", "circuit");
  const unsigned w = a.width();
  const Operand kc = exec.constant(k, w);
  SubResult d = sub(exec, a, kc, w);
  Operand out = mux(exec, d.no_borrow, d.diff, a);
  exec.free(d.diff);
  exec.free_col(d.no_borrow);
  return out;
}

Operand shift_add_chain(BlockExecutor& exec, const Operand& x,
                        const std::vector<ShiftAddTerm>& terms,
                        unsigned out_width) {
  assert(!terms.empty());
  std::vector<ShiftAddTerm> sorted = terms;
  std::sort(sorted.begin(), sorted.end(),
            [](const ShiftAddTerm& l, const ShiftAddTerm& r) {
              return l.shift > r.shift;
            });
  assert(sorted.front().sign > 0 && "leading term must be positive");

  Operand acc = exec.shifted(x, sorted.front().shift);  // view, zero cost
  bool acc_owned = false;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const Operand term = exec.shifted(x, sorted[i].shift);
    // Trimmed adds/subs: shifted views are mostly zero-rail bits, which is
    // exactly where the paper's "necessary bit-wise computations" saving
    // comes from.
    Operand next = sorted[i].sign > 0
                       ? add_trimmed(exec, acc, term, out_width)
                       : sub_trimmed(exec, acc, term, out_width);
    if (acc_owned) exec.free(acc);
    acc = std::move(next);
    acc_owned = true;
  }
  if (!acc_owned) {
    // Single-term chain: a pure shifted view, zero cycles. Retain the
    // aliased columns so the caller's free() balances.
    std::vector<Col> cols(out_width);
    for (unsigned i = 0; i < out_width; ++i) {
      cols[i] = bit_or_zero(exec, acc, i);
      exec.retain_col(cols[i]);
    }
    return Operand(std::move(cols));
  }
  return acc;
}

}  // namespace cryptopim::pim::circuits
