// In-memory modular reduction circuits (Section III-B.2 "Modulo",
// Algorithm 3, Table I).
//
// Both circuits consume the same shift-add decompositions as the scalar
// reference (src/ntt/reduction.*), so the in-memory and software
// implementations cannot drift apart. Shifts are column re-addressing
// (free); every add/sub is width-trimmed to "only the necessary bit-wise
// computations", which is where the paper's Table I cycle counts come
// from. Table I counts the lazy reduction (result < 2q); the optional
// canonicalisation (one conditional subtract) is reported separately.
#pragma once

#include <cstdint>

#include "ntt/reduction.h"
#include "pim/circuits/arith.h"
#include "pim/executor.h"

namespace cryptopim::pim::circuits {

/// Barrett reduce `a` (used after additions; a <= spec.max_input()).
/// Returns a value congruent to a mod q, < 2q lazily or < q canonically.
Operand barrett_reduce(BlockExecutor& exec, const Operand& a,
                       const ntt::BarrettShiftAdd& spec, bool canonical);

/// Montgomery reduce `a` (used after multiplications; a < q*R).
/// Returns a*R^{-1} mod q, < 2q lazily or < q canonically.
Operand montgomery_reduce(BlockExecutor& exec, const Operand& a,
                          const ntt::MontgomeryShiftAdd& spec, bool canonical);

/// Multiplication-based Barrett reduction: two full in-memory
/// multiplications by precomputed constants instead of shift-add chains.
/// Functionally identical; used to quantify the BP-2 -> BP-3 gap of
/// Fig. 6 (shift-add reductions are ~5.5x faster at the pipeline level).
Operand barrett_reduce_by_multiplication(BlockExecutor& exec,
                                         const Operand& a, std::uint32_t q,
                                         bool canonical);

}  // namespace cryptopim::pim::circuits
