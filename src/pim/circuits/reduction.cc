#include "pim/circuits/reduction.h"

#include <algorithm>
#include <cassert>

#include "common/bitutil.h"
#include "obs/metrics.h"

namespace cryptopim::pim::circuits {

namespace {

// Reductions are the per-op cost the paper's Table I is built around;
// record each call's cycle count so a run's Barrett-vs-Montgomery split
// is observable without re-deriving it from stage totals. Reductions run
// once per recorded stage program (not per bank), so this is cold code.
struct ReduceMeter {
  ReduceMeter(BlockExecutor& exec, const char* metric)
      : exec_(exec), metric_(metric), start_(exec.stats().cycles) {}
  ~ReduceMeter() {
    obs::metrics()
        .histogram(metric_, "cycles")
        .add(exec_.stats().cycles - start_);
  }
  BlockExecutor& exec_;
  const char* metric_;
  std::uint64_t start_;
};

// Largest value representable by an operand (conservative static bound,
// saturating at 64 bits).
std::uint64_t operand_max(const Operand& op) {
  if (op.width() >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << op.width()) - 1;
}

// Shrink an operand view to `width` bits, releasing the dropped columns.
Operand shrink(BlockExecutor& exec, Operand op, unsigned width) {
  if (op.width() <= width) return op;
  Operand kept = op.slice(0, width);
  for (unsigned i = width; i < op.width(); ++i) exec.free_col(op.col(i));
  return kept;
}

}  // namespace

Operand barrett_reduce(BlockExecutor& exec, const Operand& a,
                       const ntt::BarrettShiftAdd& spec, bool canonical) {
  const TraceScope span(exec, "barrett_reduce", "reduce");
  const ReduceMeter meter(exec, "cryptopim.reduce.barrett_cycles");
  const std::uint64_t a_max = operand_max(a);
  assert(a_max <= spec.max_input());

  // u = (shift-add quotient chain) >> quotient_shift  ~  floor(a / q)
  const std::uint64_t u_full_max =
      eval_shift_add(a_max, spec.quotient_terms().data(),
                     spec.quotient_terms().size());
  const unsigned u_full_width = bit_length(u_full_max);
  Operand u_full =
      shift_add_chain(exec, a, spec.quotient_terms(), u_full_width);

  const unsigned shift = spec.quotient_shift();
  Operand result;
  if (shift >= u_full_width) {
    // Quotient statically zero: a is already < 2q.
    exec.free(u_full);
    result = exec.alloc(a.width());
    for (unsigned i = 0; i < a.width(); ++i) {
      exec.gate1(GateKind::kCopy, result.col(i), a.col(i));
    }
  } else {
    Operand u = u_full.slice(shift, u_full_width);  // free right shift

    // u * q via the shift-add decomposition of q.
    const std::uint64_t u_max = u_full_max >> shift;
    const std::uint64_t uq_max =
        eval_shift_add(u_max, spec.q_terms().data(), spec.q_terms().size());
    Operand uq = shift_add_chain(exec, u, spec.q_terms(), bit_length(uq_max));
    exec.free(u_full);

    // r = a - u*q, guaranteed in [0, 2q).
    const unsigned r_width = bit_length(2ull * spec.q() - 1);
    Operand r = sub_trimmed(exec, a, uq, std::max(a.width(), uq.width()));
    exec.free(uq);
    result = shrink(exec, std::move(r), r_width);
  }

  if (canonical) {
    Operand canon = conditional_subtract(exec, result, spec.q());
    exec.free(result);
    return shrink(exec, std::move(canon), bit_length(spec.q() - 1));
  }
  return result;
}

Operand montgomery_reduce(BlockExecutor& exec, const Operand& a,
                          const ntt::MontgomeryShiftAdd& spec,
                          bool canonical) {
  const TraceScope span(exec, "montgomery_reduce", "reduce");
  const ReduceMeter meter(exec, "cryptopim.reduce.montgomery_cycles");
  const unsigned r_bits = spec.r_bits();
  assert(operand_max(a) <= spec.max_input());

  // m = (a * q') mod R: the chain wraps modulo 2^r_bits, so only the low
  // r_bits of a participate (free slice).
  const Operand a_low =
      a.width() > r_bits ? a.slice(0, r_bits) : Operand(a.cols());
  Operand m = shift_add_chain(exec, a_low, spec.qprime_terms(), r_bits);

  // m * q, full width.
  const std::uint64_t m_max = spec.R() - 1;
  const std::uint64_t mq_max =
      eval_shift_add(m_max, spec.q_terms().data(), spec.q_terms().size());
  Operand mq = shift_add_chain(exec, m, spec.q_terms(), bit_length(mq_max));
  exec.free(m);

  // t = (a + m*q) >> r_bits, in [0, 2q).
  const unsigned t_width =
      bit_length(operand_max(a) + mq_max);
  Operand t = add_trimmed(exec, a, mq, t_width);
  exec.free(mq);

  // The low r_bits of t are zero by construction; the shift is free.
  Operand result = t.slice(r_bits, t_width);
  for (unsigned i = 0; i < r_bits; ++i) exec.free_col(t.col(i));

  if (canonical) {
    Operand canon = conditional_subtract(exec, result, spec.q());
    exec.free(result);
    return shrink(exec, std::move(canon), bit_length(spec.q() - 1));
  }
  return result;
}

Operand barrett_reduce_by_multiplication(BlockExecutor& exec,
                                         const Operand& a, std::uint32_t q,
                                         bool canonical) {
  const TraceScope span(exec, "barrett_reduce_by_multiplication", "reduce");
  const ReduceMeter meter(exec, "cryptopim.reduce.barrett_mult_cycles");
  // Classic Barrett: u = (a * m) >> k with m = floor(2^k / q), r = a - u*q,
  // both constant multiplications done as full in-memory multiplies.
  // k >= width(a) keeps the quotient approximation within one of the true
  // quotient, so r < 2q for any representable input.
  const unsigned k = std::max(a.width(), bit_length(q) + 1);
  assert(k <= 64);
  const auto mconst = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(1) << k) / q);

  const Operand m_op = exec.constant(mconst, bit_length(mconst));
  Operand am = multiply(exec, a, m_op);
  Operand u = am.slice(k, am.width());
  // Release the truncated low half.
  for (unsigned i = 0; i < k && i < am.width(); ++i) exec.free_col(am.col(i));

  const Operand q_op = exec.constant(q, bit_length(q));
  Operand uq = multiply(exec, u, q_op);
  exec.free(u);

  Operand r = sub_trimmed(exec, a, uq, std::max(a.width(), uq.width()));
  exec.free(uq);
  // Barrett with this precision guarantees r < 2q.
  Operand result = shrink(exec, std::move(r), bit_length(2ull * q - 1));

  if (canonical) {
    Operand canon = conditional_subtract(exec, result, q);
    exec.free(result);
    return shrink(exec, std::move(canon), bit_length(q - 1));
  }
  return result;
}

}  // namespace cryptopim::pim::circuits
