#include "pim/device.h"

#include <algorithm>
#include <cassert>

namespace cryptopim::pim {

namespace {

// Worst-case SET margin of a gate evaluation: the voltage developed across
// the output memristor must exceed the device switching threshold. The
// output cell (R_on when it must switch) sees the execution voltage
// through the access-transistor series resistance:
//     V_mem = V_set * R_mem / (R_mem + R_series)
//     margin = V_mem - v_switch
// Process variation enters through the memristor resistance (size) and
// through R_series, which scales with 1/(W * (V_g - V_t)) — the
// "size and threshold voltage of transistors" the paper perturbs.
struct SenseCircuit {
  double v_set = 2.0;        // execution voltage
  double v_switch = 1.1;     // memristor switching threshold
  double r_mem_nom = 10e3;   // R_on
  double r_series_nom = 3.4e3;
  double v_gate = 2.0;       // access transistor gate drive
  double v_t_nom = 0.5;      // transistor threshold

  double margin(double mem_scale, double width_scale,
                double vt_scale) const {
    const double r_mem = r_mem_nom * mem_scale;
    const double overdrive_nom = v_gate - v_t_nom;
    const double overdrive = v_gate - v_t_nom * vt_scale;
    const double r_series =
        r_series_nom / width_scale * (overdrive_nom / overdrive);
    const double v_mem = v_set * r_mem / (r_mem + r_series);
    return v_mem - v_switch;
  }
};

}  // namespace

NoiseMarginResult monte_carlo_noise_margin(const DeviceModel& dev,
                                           unsigned trials, double variation,
                                           Xoshiro256& rng) {
  assert(variation >= 0.0 && variation < 1.0);
  SenseCircuit circuit;
  circuit.v_set = dev.v_set;
  const double nominal = circuit.margin(1.0, 1.0, 1.0);

  auto jitter = [&rng, variation] {
    const double u = static_cast<double>(rng.next_bits(53)) /
                     static_cast<double>(1ull << 53);
    return 1.0 + variation * (2.0 * u - 1.0);
  };

  double worst = nominal;
  for (unsigned t = 0; t < trials; ++t) {
    worst = std::min(worst, circuit.margin(jitter(), jitter(), jitter()));
  }

  NoiseMarginResult res;
  res.nominal_margin = nominal;
  res.worst_margin = worst;
  res.max_reduction_pct = (nominal - worst) / nominal * 100.0;
  // Functional as long as the output cell still switches in the worst
  // corner; the read-out side is safe regardless thanks to the high
  // R_off/R_on ratio (margin ~1 under any bounded variation).
  res.functional = worst > 0.0;
  return res;
}

}  // namespace cryptopim::pim
