// Microcode programs and the CryptoPIM controller.
//
// The paper implements and synthesizes a controller (System Verilog /
// Design Compiler, Section IV-A) that sequences the gate micro-ops of each
// pipeline stage. Because every bank executes the same stage logic, the
// controller broadcasts ONE microcode program per stage to all banks; the
// only per-bank state is which row-mask slot each phase drives and the
// pre-loaded data columns (twiddles).
//
// This module reifies that: a Program is a recorded sequence of gate
// micro-ops annotated with a mask slot; BlockExecutor can record into a
// Program while circuits run, and the Controller replays programs on any
// number of blocks. Replay is bit-exact with direct execution (tested),
// which is what makes the broadcast-SIMD execution model of the paper
// sound.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pim/executor.h"
#include "pim/isa.h"

namespace cryptopim::pim {

/// One controller instruction: a gate micro-op driven on the rows selected
/// by `mask_slot` (an index into the per-bank mask table).
struct Instr {
  MicroOp op;
  std::uint8_t mask_slot = 0;
};

/// A recorded stage program.
class Program {
 public:
  void append(const MicroOp& op, std::uint8_t mask_slot) {
    instrs_.push_back(Instr{op, mask_slot});
  }

  std::size_t size() const noexcept { return instrs_.size(); }
  bool empty() const noexcept { return instrs_.empty(); }
  const std::vector<Instr>& instrs() const noexcept { return instrs_; }

  /// Total crossbar cycles the program consumes (mask-independent).
  std::uint64_t cycles() const noexcept;

  /// Encoded size in bits, as a controller-ROM estimate: opcode (4) +
  /// 3 x column id (9 for 512 columns) + polarity (3) + mask slot (2).
  std::uint64_t rom_bits() const noexcept { return instrs_.size() * 36ull; }

  /// Replay on a block. `mask_slots[i]` supplies the rows driven by
  /// instructions recorded with slot i. The executor's own mask is
  /// saved/restored.
  void execute(BlockExecutor& exec,
               std::span<const RowMask> mask_slots) const;

 private:
  std::vector<Instr> instrs_;
};

/// Records every micro-op an executor issues while in scope.
///
///   Program prog;
///   {
///     ProgramRecorder rec(exec, prog, /*mask_slot=*/0);
///     circuits::add(exec, a, b, 16);     // recorded
///     rec.set_mask_slot(1);
///     circuits::sub(exec, a, b, 16);     // recorded under slot 1
///   }
class ProgramRecorder {
 public:
  ProgramRecorder(BlockExecutor& exec, Program& program,
                  std::uint8_t mask_slot = 0);
  ~ProgramRecorder();
  ProgramRecorder(const ProgramRecorder&) = delete;
  ProgramRecorder& operator=(const ProgramRecorder&) = delete;

  void set_mask_slot(std::uint8_t slot);

 private:
  BlockExecutor& exec_;
};

/// The stage-program library of one accelerator configuration: per-stage
/// microcode plus controller-level totals (the quantities one would size
/// the synthesized controller by).
class Controller {
 public:
  /// Register a stage program under a human-readable name; returns its id.
  std::size_t add_stage(std::string name, Program program);

  std::size_t stage_count() const noexcept { return stages_.size(); }
  const Program& program(std::size_t id) const { return stages_.at(id).program; }
  const std::string& name(std::size_t id) const { return stages_.at(id).name; }

  /// Broadcast one stage to many blocks (the SIMD-across-banks execution
  /// the architecture relies on). Each bank gets its own mask table.
  void run_stage(std::size_t id,
                 std::span<BlockExecutor* const> banks,
                 std::span<const std::vector<RowMask>> mask_tables) const;

  std::uint64_t total_instructions() const noexcept;
  std::uint64_t total_rom_bits() const noexcept;

 private:
  struct Stage {
    std::string name;
    Program program;
  };
  std::vector<Stage> stages_;
};

}  // namespace cryptopim::pim
