#include "pim/executor.h"

#include <cassert>

#include "obs/metrics.h"
#include "pim/program.h"

namespace cryptopim::pim {

void ExecStats::publish(obs::MetricsRegistry& reg) const {
  reg.counter("cryptopim.exec.cycles", "cycles").add(cycles);
  reg.counter("cryptopim.exec.micro_ops", "ops").add(micro_ops);
  reg.counter("cryptopim.exec.cell_events", "events").add(cell_events);
  reg.counter("cryptopim.switch.transfer_bits", "bits").add(transfer_bits);
  reg.histogram("cryptopim.exec.cols_peak", "columns").add(cols_peak);
}

BlockExecutor::BlockExecutor(MemoryBlock& block, RowMask mask,
                             DeviceModel device)
    : block_(block), mask_(mask), device_(device) {
  free_cols_.reserve(kBlockCols - 2);
  // LIFO: hand out low column ids first.
  for (std::size_t c = kBlockCols; c-- > 2;) {
    free_cols_.push_back(static_cast<Col>(c));
  }
  refcount_[kZeroCol] = kSticky;
  refcount_[kOneCol] = kSticky;
  // Establish the constant rails. Power-on state is all-zero, so only the
  // one-rail needs a SET.
  set1(kOneCol);
}

Col BlockExecutor::alloc_col() {
  if (free_cols_.empty()) {
    throw std::runtime_error("BlockExecutor: out of processing columns");
  }
  const Col c = free_cols_.back();
  free_cols_.pop_back();
  assert(refcount_[c] == 0);
  refcount_[c] = 1;
  // Column-allocator occupancy high-water mark (rails + reserved regions
  // + live allocations).
  const std::uint64_t in_use = kBlockCols - free_cols_.size();
  if (in_use > stats_.cols_peak) stats_.cols_peak = in_use;
  return c;
}

Operand BlockExecutor::alloc(unsigned width) {
  std::vector<Col> cols(width);
  for (auto& c : cols) c = alloc_col();
  return Operand(std::move(cols));
}

void BlockExecutor::retain_col(Col c) {
  if (refcount_[c] == kSticky) return;
  assert(refcount_[c] > 0);
  ++refcount_[c];
}

void BlockExecutor::free_col(Col c) {
  if (refcount_[c] == kSticky) return;
  assert(refcount_[c] > 0);
  if (--refcount_[c] == 0) free_cols_.push_back(c);
}

void BlockExecutor::free(const Operand& op) {
  for (Col c : op.cols()) free_col(c);
}

void BlockExecutor::reserve_region(Col base, unsigned width) {
  for (Col c = base; c < base + width; ++c) {
    assert(refcount_[c] == 0 && "region already in use");
    refcount_[c] = kSticky;
    std::erase(free_cols_, c);
  }
}

Operand BlockExecutor::contiguous(Col base, unsigned width) const {
  // MemoryBlock numbers are MSB-first: bit i (LSB-first) lives at
  // column base + width - 1 - i.
  std::vector<Col> cols(width);
  for (unsigned i = 0; i < width; ++i) {
    cols[i] = static_cast<Col>(base + width - 1 - i);
  }
  return Operand(std::move(cols));
}

Operand BlockExecutor::shifted(const Operand& op, unsigned k) const {
  std::vector<Col> cols;
  cols.reserve(op.width() + k);
  cols.insert(cols.end(), k, kZeroCol);
  cols.insert(cols.end(), op.cols().begin(), op.cols().end());
  return Operand(std::move(cols));
}

Operand BlockExecutor::zext(const Operand& op, unsigned width) const {
  assert(width >= op.width());
  std::vector<Col> cols = op.cols();
  cols.insert(cols.end(), width - op.width(), kZeroCol);
  return Operand(std::move(cols));
}

Operand BlockExecutor::constant(std::uint64_t value, unsigned width) {
  assert(width == 64 || value < (std::uint64_t{1} << width));
  // Row-invariant constants are pure rail aliases: bit i reads the one- or
  // zero-rail directly, costing no cycles and no columns.
  std::vector<Col> cols(width);
  for (unsigned i = 0; i < width; ++i) {
    cols[i] = ((value >> i) & 1u) ? kOneCol : kZeroCol;
  }
  return Operand(std::move(cols));
}

void BlockExecutor::issue(const MicroOp& op) {
  // The zero rail is shared by every shifted/zero-extended operand view;
  // writing to it would silently corrupt unrelated operands.
  assert(op.dst != kZeroCol);
  if (recorder_ != nullptr) recorder_->append(op, record_slot_);
  const unsigned cycles = gate_cycles(op.kind);
  stats_.cycles += cycles;
  stats_.micro_ops += 1;
  stats_.cell_events += static_cast<std::uint64_t>(cycles) * mask_.count();

  ColumnBits& dst = block_.column(op.dst);
  const ColumnBits& ca = block_.column(op.a);
  const ColumnBits& cb = block_.column(op.b);
  const ColumnBits& cc = block_.column(op.c);

  for (std::size_t w = 0; w < ColumnBits::kWords; ++w) {
    const std::uint64_t m = mask_.word(w);
    if (m == 0) continue;
    const std::uint64_t a = op.neg_a ? ~ca.word(w) : ca.word(w);
    const std::uint64_t b = op.neg_b ? ~cb.word(w) : cb.word(w);
    const std::uint64_t c = op.neg_c ? ~cc.word(w) : cc.word(w);
    std::uint64_t v = 0;
    switch (op.kind) {
      case GateKind::kSet0: v = 0; break;
      case GateKind::kSet1: v = ~std::uint64_t{0}; break;
      case GateKind::kNot:  v = ~a; break;
      case GateKind::kNor:  v = ~(a | b); break;
      case GateKind::kNand: v = ~(a & b); break;
      case GateKind::kOr:   v = a | b; break;
      case GateKind::kAnd:  v = a & b; break;
      case GateKind::kXor2: v = a ^ b; break;
      case GateKind::kXor3: v = a ^ b ^ c; break;
      case GateKind::kMaj3: v = (a & b) | (a & c) | (b & c); break;
      case GateKind::kMin3: v = ~((a & b) | (a & c) | (b & c)); break;
      case GateKind::kMux:  v = (a & c) | (b & ~c); break;
      case GateKind::kCopy: v = a; break;
    }
    dst.set_word(w, (dst.word(w) & ~m) | (v & m));
  }
  block_.enforce_faults();
}

void BlockExecutor::charge_transfer(unsigned bits, unsigned cycles,
                                    const char* what) {
#if CRYPTOPIM_TRACING
  if (tracer_ != nullptr) {
    tracer_->emit(trace_track_, what, "transfer", trace_now(), cycles);
  }
#else
  (void)what;
#endif
  stats_.cycles += cycles;
  stats_.transfer_bits += static_cast<std::uint64_t>(bits) * mask_.count();
}

void BlockExecutor::host_write(const Operand& op,
                               std::span<const std::uint64_t> values) {
  std::size_t v = 0;
  for (std::size_t row = 0; row < kBlockRows; ++row) {
    if (!mask_.get(row)) continue;
    assert(v < values.size());
    for (unsigned i = 0; i < op.width(); ++i) {
      block_.column(op.col(i)).set(row, (values[v] >> i) & 1u);
    }
    ++v;
  }
  assert(v == values.size());
  block_.enforce_faults();
}

std::vector<std::uint64_t> BlockExecutor::host_read(const Operand& op) const {
  std::vector<std::uint64_t> out;
  for (std::size_t row = 0; row < kBlockRows; ++row) {
    if (!mask_.get(row)) continue;
    std::uint64_t v = 0;
    for (unsigned i = 0; i < op.width(); ++i) {
      v |= static_cast<std::uint64_t>(block_.column(op.col(i)).get(row)) << i;
    }
    out.push_back(v);
  }
  return out;
}

void BlockExecutor::host_broadcast(const Operand& op, std::uint64_t value) {
  for (std::size_t row = 0; row < kBlockRows; ++row) {
    if (!mask_.get(row)) continue;
    for (unsigned i = 0; i < op.width(); ++i) {
      block_.column(op.col(i)).set(row, (value >> i) & 1u);
    }
  }
  block_.enforce_faults();
}

}  // namespace cryptopim::pim
