#include "pim/program.h"

#include <cassert>

namespace cryptopim::pim {

std::uint64_t Program::cycles() const noexcept {
  std::uint64_t c = 0;
  for (const auto& i : instrs_) c += gate_cycles(i.op.kind);
  return c;
}

void Program::execute(BlockExecutor& exec,
                      std::span<const RowMask> mask_slots) const {
  const TraceScope span(exec, "program.replay", "program");
  const RowMask saved = exec.mask();
  for (const auto& i : instrs_) {
    assert(i.mask_slot < mask_slots.size());
    exec.set_mask(mask_slots[i.mask_slot]);
    exec.issue(i.op);
  }
  exec.set_mask(saved);
}

ProgramRecorder::ProgramRecorder(BlockExecutor& exec, Program& program,
                                 std::uint8_t mask_slot)
    : exec_(exec) {
  exec_.set_recording(&program);
  exec_.set_record_slot(mask_slot);
}

ProgramRecorder::~ProgramRecorder() { exec_.set_recording(nullptr); }

void ProgramRecorder::set_mask_slot(std::uint8_t slot) {
  exec_.set_record_slot(slot);
}

std::size_t Controller::add_stage(std::string name, Program program) {
  stages_.push_back(Stage{std::move(name), std::move(program)});
  return stages_.size() - 1;
}

void Controller::run_stage(
    std::size_t id, std::span<BlockExecutor* const> banks,
    std::span<const std::vector<RowMask>> mask_tables) const {
  const Program& prog = program(id);
  assert(banks.size() == mask_tables.size());
  for (std::size_t b = 0; b < banks.size(); ++b) {
    prog.execute(*banks[b], mask_tables[b]);
  }
}

std::uint64_t Controller::total_instructions() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : stages_) n += s.program.size();
  return n;
}

std::uint64_t Controller::total_rom_bits() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : stages_) n += s.program.rom_bits();
  return n;
}

}  // namespace cryptopim::pim
