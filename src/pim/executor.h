// BlockExecutor: issues gate micro-ops on one memory block, accounts
// cycles/energy, and manages processing-column allocation.
//
// Data and processing columns are physically identical (Section III-B.1);
// the executor models that by handing out free columns on demand and
// letting operands alias any set of columns. A shift-by-constant therefore
// costs nothing: it is a re-labelling of which columns make up an operand.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "pim/block.h"
#include "pim/device.h"
#include "pim/isa.h"

namespace cryptopim::obs {
class MetricsRegistry;
}

namespace cryptopim::pim {

class Program;  // pim/program.h

/// A multi-bit value spread over block columns, LSB-first: `col(i)` is the
/// column holding bit i. Columns need not be contiguous, and several
/// operands may alias the same columns (how shifted views are formed).
class Operand {
 public:
  Operand() = default;
  explicit Operand(std::vector<Col> lsb_first_cols)
      : cols_(std::move(lsb_first_cols)) {}

  unsigned width() const noexcept { return static_cast<unsigned>(cols_.size()); }
  Col col(unsigned bit) const {
    if (bit >= cols_.size()) throw std::out_of_range("Operand::col");
    return cols_[bit];
  }
  const std::vector<Col>& cols() const noexcept { return cols_; }
  std::vector<Col>& cols() noexcept { return cols_; }

  /// Left shift by k bits: prepend k zero-columns (value * 2^k). The zero
  /// column id is executor-owned; use BlockExecutor::shifted().
  /// Bits [lo, hi) of this operand (a right shift is slice(k, width())).
  Operand slice(unsigned lo, unsigned hi) const {
    if (lo > hi || hi > cols_.size()) throw std::out_of_range("Operand::slice");
    return Operand(std::vector<Col>(cols_.begin() + lo, cols_.begin() + hi));
  }

 private:
  std::vector<Col> cols_;
};

/// Cycle/energy accounting for one block (or one chained program).
///
/// This struct is the fast per-block ledger; for run-level observation it
/// is a facade over the metrics registry — publish() mirrors the counters
/// under `cryptopim.exec.*` (see src/obs/metrics.h).
struct ExecStats {
  std::uint64_t cycles = 0;       ///< crossbar cycles consumed
  std::uint64_t micro_ops = 0;    ///< gate evaluations issued
  std::uint64_t cell_events = 0;  ///< sum over ops of cycles * active rows
  std::uint64_t transfer_bits = 0;  ///< bits moved through inter-block switches
  std::uint64_t cols_peak = 0;    ///< high-water mark of columns in use

  double energy_fj(const DeviceModel& dev) const {
    return static_cast<double>(cell_events) * dev.cell_switch_energy_fj +
           static_cast<double>(transfer_bits) * dev.switch_transfer_energy_fj;
  }
  ExecStats& operator+=(const ExecStats& o) {
    cycles += o.cycles;
    micro_ops += o.micro_ops;
    cell_events += o.cell_events;
    transfer_bits += o.transfer_bits;
    if (o.cols_peak > cols_peak) cols_peak = o.cols_peak;
    return *this;
  }

  /// Mirrors the ledger into `reg` as `cryptopim.exec.<field>` counters
  /// (cols_peak as a histogram sample).
  void publish(obs::MetricsRegistry& reg) const;
};

class BlockExecutor {
 public:
  /// Columns 0 and 1 are reserved as constant 0 / constant 1 rails; the
  /// SET of the one-rail is charged to the program (1 cycle).
  BlockExecutor(MemoryBlock& block, RowMask mask,
                DeviceModel device = DeviceModel::paper_45nm());

  const RowMask& mask() const noexcept { return mask_; }
  /// Change which wordlines subsequent gate ops drive. Used by stage
  /// programs that run one op sequence on the butterfly's low rows and
  /// another on its high rows.
  void set_mask(RowMask mask) noexcept { mask_ = mask; }
  const DeviceModel& device() const noexcept { return device_; }
  MemoryBlock& block() noexcept { return block_; }

  Col zero_col() const noexcept { return kZeroCol; }
  Col one_col() const noexcept { return kOneCol; }

  // -- column allocation ----------------------------------------------------
  // Columns are reference counted so that operands produced by the
  // width-trimmed circuits may alias input or intermediate columns
  // ("data and processing columns are physically indistinguishable").
  // Rails, constants and reserved data regions are sticky: retain/release
  // are no-ops on them.
  Col alloc_col();                       ///< refcount 1
  Operand alloc(unsigned width);
  void retain_col(Col c);                ///< share ownership of an alias
  void free_col(Col c);                  ///< release; recycles at refcount 0
  void free(const Operand& op);          ///< release every column once
  /// Pin [base, base+width) as host data columns: removed from the free
  /// pool, exempt from retain/release.
  void reserve_region(Col base, unsigned width);
  std::size_t free_count() const noexcept { return free_cols_.size(); }

  // -- operand helpers ------------------------------------------------------
  /// Operand over contiguous columns [base, base+width), matching the
  /// MSB-first number layout of MemoryBlock::write_number.
  Operand contiguous(Col base, unsigned width) const;
  /// value * 2^k as a zero-cost column re-labelling.
  Operand shifted(const Operand& op, unsigned k) const;
  /// Zero-extend to `width` bits with the constant-zero rail.
  Operand zext(const Operand& op, unsigned width) const;
  /// Row-invariant constant as a pure rail alias (zero cycles, zero
  /// columns): bit i reads the one- or zero-rail.
  Operand constant(std::uint64_t value, unsigned width);

  // -- gate issue -----------------------------------------------------------
  /// Execute one micro-op over the active row mask; charges cycles and
  /// cell events.
  void issue(const MicroOp& op);

  void set0(Col dst) { issue({GateKind::kSet0, dst, 0, 0, 0, false, false, false}); }
  void set1(Col dst) { issue({GateKind::kSet1, dst, 0, 0, 0, false, false, false}); }
  void gate1(GateKind k, Col dst, Col a, bool neg_a = false) {
    issue({k, dst, a, 0, 0, neg_a, false, false});
  }
  void gate2(GateKind k, Col dst, Col a, Col b, bool neg_a = false,
             bool neg_b = false) {
    issue({k, dst, a, b, 0, neg_a, neg_b, false});
  }
  void gate3(GateKind k, Col dst, Col a, Col b, Col c, bool neg_a = false,
             bool neg_b = false, bool neg_c = false) {
    issue({k, dst, a, b, c, neg_a, neg_b, neg_c});
  }

  /// Charge an inter-block transfer (the fixed-function switch moves one
  /// column per cycle; a full operand costs width cycles per connection).
  /// `what` labels the transfer span in traces.
  void charge_transfer(unsigned bits, unsigned cycles,
                       const char* what = "switch.transfer");

  // -- cycle-domain tracing (see obs/trace.h) --------------------------------
  // The executor is the span source for everything it executes: spans are
  // timestamped `base + stats().cycles`, where `base` is the block's
  // position on the simulated timeline (set per stage by the simulator).
  /// Attach a tracer; nullptr (the default) makes every trace call a
  /// single-branch no-op. `track` is this block's timeline id.
  void set_tracer(obs::Tracer* tracer, std::uint32_t track) noexcept {
    tracer_ = tracer;
    trace_track_ = track;
  }
  void set_trace_base(std::uint64_t base_cycles) noexcept {
    trace_base_ = base_cycles;
  }
  obs::Tracer* tracer() const noexcept { return tracer_; }
  std::uint32_t trace_track() const noexcept { return trace_track_; }
  /// Current position on the simulated timeline.
  std::uint64_t trace_now() const noexcept { return trace_base_ + stats_.cycles; }
  void trace_begin(std::string name, std::string cat) {
#if CRYPTOPIM_TRACING
    if (tracer_ != nullptr) {
      tracer_->begin(trace_track_, std::move(name), std::move(cat),
                     trace_now());
    }
#else
    (void)name, (void)cat;
#endif
  }
  void trace_end() {
#if CRYPTOPIM_TRACING
    if (tracer_ != nullptr) tracer_->end(trace_track_, trace_now());
#endif
  }

  // -- microcode recording (see pim/program.h) -------------------------------
  /// While set, every issued micro-op is appended to `program` under the
  /// current record slot. Pass nullptr to stop.
  void set_recording(Program* program) noexcept { recorder_ = program; }
  void set_record_slot(std::uint8_t slot) noexcept { record_slot_ = slot; }
  std::uint8_t record_slot() const noexcept { return record_slot_; }

  // -- host I/O (write drivers; not charged as compute cycles) --------------
  /// Write one value per active row into `op` (bit i -> op.col(i)).
  void host_write(const Operand& op, std::span<const std::uint64_t> values);
  /// Read one value per active row.
  std::vector<std::uint64_t> host_read(const Operand& op) const;
  /// Write the same value into every active row.
  void host_broadcast(const Operand& op, std::uint64_t value);

  const ExecStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = ExecStats{}; }

 private:
  static constexpr Col kZeroCol = 0;
  static constexpr Col kOneCol = 1;

  MemoryBlock& block_;
  RowMask mask_;
  DeviceModel device_;
  ExecStats stats_;
  std::vector<Col> free_cols_;  // LIFO free list
  // refcount per column: kSticky for rails/constants/data regions.
  static constexpr int kSticky = -1;
  std::array<int, kBlockCols> refcount_{};
  Program* recorder_ = nullptr;
  std::uint8_t record_slot_ = 0;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t trace_track_ = 0;
  std::uint64_t trace_base_ = 0;
};

/// RAII span on an executor's track, in cycle time:
///   TraceScope ts(exec, "multiply", "circuit");
/// Compiles to nothing with CRYPTOPIM_TRACING=0 and to one branch per
/// scope when no tracer is attached.
class TraceScope {
 public:
#if CRYPTOPIM_TRACING
  TraceScope(BlockExecutor& exec, std::string name, std::string cat)
      : exec_(exec.tracer() != nullptr ? &exec : nullptr) {
    if (exec_ != nullptr) exec_->trace_begin(std::move(name), std::move(cat));
  }
  ~TraceScope() {
    if (exec_ != nullptr) exec_->trace_end();
  }

 private:
  BlockExecutor* exec_;
#else
  TraceScope(BlockExecutor&, std::string, std::string) {}
#endif
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
};

}  // namespace cryptopim::pim
