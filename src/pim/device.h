// ReRAM device model.
//
// The paper derives per-operation latency and energy from HSPICE
// simulations of a VTEAM-modelled RRAM cell in a 45 nm process (switching
// delay 1.1 ns = one CryptoPIM cycle) and validates robustness with a
// 5000-run Monte-Carlo over ±10% process variation (max 25.6% noise-margin
// loss, still functional thanks to a high R_off/R_on ratio).
//
// We cannot run HSPICE here; instead this module parameterises the same
// quantities the paper extracts from it: the cycle time, a per-cell
// switching energy (calibrated once against Table II, see
// src/model/energy.*), and a resistive-divider noise-margin computation
// used to reproduce the Monte-Carlo robustness claim.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace cryptopim::pim {

/// Electrical and timing parameters of the RRAM crossbar.
struct DeviceModel {
  double cycle_ns = 1.1;          ///< one in-memory gate evaluation
  double r_on_ohm = 10e3;         ///< low-resistance state
  double r_off_ohm = 10e6;        ///< high-resistance state (high ratio)
  double v_set = 2.0;             ///< gate execution voltage (V)
  /// Energy per participating cell per gate cycle. Calibrated so the
  /// analytic model reproduces the paper's Table II n=256 pipelined energy
  /// (2.58 uJ); see model::EnergyModel::calibrated(), which derives the
  /// same value from first principles of the stage structure.
  double cell_switch_energy_fj = 195.6;
  double switch_transfer_energy_fj = 195.6;  ///< per bit moved between blocks

  /// The paper's 45 nm configuration.
  static DeviceModel paper_45nm() { return DeviceModel{}; }

  double cycle_s() const { return cycle_ns * 1e-9; }
};

/// Result of a Monte-Carlo robustness sweep (Section IV-A).
struct NoiseMarginResult {
  double nominal_margin;     ///< R_off/(R_off+R_on) voltage-divider margin
  double worst_margin;       ///< minimum margin over all trials
  double max_reduction_pct;  ///< (nominal - worst)/nominal * 100
  bool functional;           ///< worst margin still resolves 0/1
};

/// Perturb R_on/R_off (and implicitly transistor sizing/threshold) by up to
/// `variation` (e.g. 0.10 for ±10%) over `trials` samples and report the
/// degradation of the read-out noise margin. Reproduces the paper's
/// "maximum 25.6% reduction ... did not affect operations" observation.
NoiseMarginResult monte_carlo_noise_margin(const DeviceModel& dev,
                                           unsigned trials, double variation,
                                           Xoshiro256& rng);

}  // namespace cryptopim::pim
