#include "pim/block.h"

#include <bit>
#include <stdexcept>

namespace cryptopim::pim {

RowMask RowMask::first_rows(std::size_t count) {
  assert(count <= kBlockRows);
  RowMask m;
  std::size_t remaining = count;
  for (std::size_t w = 0; w < ColumnBits::kWords && remaining > 0; ++w) {
    if (remaining >= 64) {
      m.words_[w] = ~std::uint64_t{0};
      remaining -= 64;
    } else {
      m.words_[w] = (std::uint64_t{1} << remaining) - 1;
      remaining = 0;
    }
  }
  return m;
}

RowMask RowMask::all() { return first_rows(kBlockRows); }

std::size_t RowMask::count() const noexcept {
  std::size_t n = 0;
  for (const auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

namespace {

// Host-facing surfaces must reject bad coordinates even under NDEBUG
// (asserts compile out in release builds; silent wraparound would corrupt
// neighbouring operands).
void check_number_range(std::size_t row, Col base, unsigned width) {
  if (row >= kBlockRows || width == 0 || width > 64 ||
      static_cast<std::size_t>(base) + width > kBlockCols) {
    throw std::invalid_argument("MemoryBlock number access out of range");
  }
}

}  // namespace

void MemoryBlock::write_number(std::size_t row, Col base, unsigned width,
                               std::uint64_t value) {
  check_number_range(row, base, width);
  for (unsigned i = 0; i < width; ++i) {
    // MSB-first: bit (width-1-i) of the value goes to column base+i.
    column(static_cast<Col>(base + i)).set(row, (value >> (width - 1 - i)) & 1u);
  }
}

std::uint64_t MemoryBlock::read_number(std::size_t row, Col base,
                                       unsigned width) const {
  check_number_range(row, base, width);
  std::uint64_t v = 0;
  for (unsigned i = 0; i < width; ++i) {
    v = (v << 1) | static_cast<std::uint64_t>(
                       column(static_cast<Col>(base + i)).get(row));
  }
  return v;
}

void MemoryBlock::clear() noexcept {
  for (auto& c : cols_) c.clear();
  enforce_faults();
}

void MemoryBlock::inject_stuck_at(Col col, std::size_t row, bool value) {
  if (col >= kBlockCols || row >= kBlockRows) {
    throw std::invalid_argument("MemoryBlock::inject_stuck_at out of range");
  }
  faults_.push_back(
      StuckFault{col, static_cast<std::uint16_t>(row), value});
  enforce_faults();
}

void MemoryBlock::remap_column(Col logical, Col physical) {
  if (logical >= kBlockCols || physical >= kBlockCols) {
    throw std::invalid_argument("MemoryBlock::remap_column out of range");
  }
  if (!remap_) {
    remap_ = std::make_unique<std::array<Col, kBlockCols>>();
    for (std::size_t c = 0; c < kBlockCols; ++c) {
      (*remap_)[c] = static_cast<Col>(c);
    }
  }
  (*remap_)[logical] = physical;
}

void MemoryBlock::enforce_faults() noexcept {
  for (const auto& f : faults_) {
    auto& c = cols_[f.col];
    if (c.get(f.row) != f.value) {
      c.set(f.row, f.value);
      // The preceding write tried to store the opposite bit: a
      // program-verify failure in real ReRAM.
      if (observer_ != nullptr) observer_->stuck_write(f.col, f.row, f.value);
    }
  }
}

}  // namespace cryptopim::pim
