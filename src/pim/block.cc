#include "pim/block.h"

#include <bit>

namespace cryptopim::pim {

RowMask RowMask::first_rows(std::size_t count) {
  assert(count <= kBlockRows);
  RowMask m;
  std::size_t remaining = count;
  for (std::size_t w = 0; w < ColumnBits::kWords && remaining > 0; ++w) {
    if (remaining >= 64) {
      m.words_[w] = ~std::uint64_t{0};
      remaining -= 64;
    } else {
      m.words_[w] = (std::uint64_t{1} << remaining) - 1;
      remaining = 0;
    }
  }
  return m;
}

RowMask RowMask::all() { return first_rows(kBlockRows); }

std::size_t RowMask::count() const noexcept {
  std::size_t n = 0;
  for (const auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

void MemoryBlock::write_number(std::size_t row, Col base, unsigned width,
                               std::uint64_t value) noexcept {
  assert(row < kBlockRows && base + width <= kBlockCols && width <= 64);
  for (unsigned i = 0; i < width; ++i) {
    // MSB-first: bit (width-1-i) of the value goes to column base+i.
    cols_[base + i].set(row, (value >> (width - 1 - i)) & 1u);
  }
}

std::uint64_t MemoryBlock::read_number(std::size_t row, Col base,
                                       unsigned width) const noexcept {
  assert(row < kBlockRows && base + width <= kBlockCols && width <= 64);
  std::uint64_t v = 0;
  for (unsigned i = 0; i < width; ++i) {
    v = (v << 1) | static_cast<std::uint64_t>(cols_[base + i].get(row));
  }
  return v;
}

void MemoryBlock::clear() noexcept {
  for (auto& c : cols_) c.clear();
  enforce_faults();
}

void MemoryBlock::inject_stuck_at(Col col, std::size_t row, bool value) {
  assert(col < kBlockCols && row < kBlockRows);
  faults_.push_back(
      StuckFault{col, static_cast<std::uint16_t>(row), value});
  enforce_faults();
}

void MemoryBlock::enforce_faults() noexcept {
  for (const auto& f : faults_) {
    cols_[f.col].set(f.row, f.value);
  }
}

}  // namespace cryptopim::pim
