// The gate micro-op ISA executed inside a memory block.
//
// Gate latencies follow FELIX [10]: NOT/NOR/NAND/OR and 3-input minority
// evaluate in a single crossbar cycle; two-input XOR takes two cycles,
// three-input XOR three, majority two (minority + complement). Input
// polarity flags model the hardware's ability to pick execution voltages
// that absorb an input complement at no latency cost — the multiplier and
// the reductions rely on this to consume NAND-generated partial products
// directly.
#pragma once

#include <cstdint>

#include "pim/block.h"

namespace cryptopim::pim {

enum class GateKind : std::uint8_t {
  kSet0,   ///< dst := 0            (1 cycle, cell RESET)
  kSet1,   ///< dst := 1            (1 cycle, cell SET)
  kNot,    ///< dst := !a           (1 cycle)
  kNor,    ///< dst := !(a | b)     (1 cycle)
  kNand,   ///< dst := !(a & b)     (1 cycle)
  kOr,     ///< dst := a | b        (1 cycle)
  kAnd,    ///< dst := a & b        (2 cycles: NAND + NOT)
  kXor2,   ///< dst := a ^ b        (2 cycles)
  kXor3,   ///< dst := a ^ b ^ c    (3 cycles)
  kMaj3,   ///< dst := maj(a,b,c)   (2 cycles: minority + NOT)
  kMin3,   ///< dst := !maj(a,b,c)  (1 cycle, FELIX native minority)
  kMux,    ///< dst := c ? a : b    (3 cycles)
  kCopy,   ///< dst := a            (2 cycles: NOT + NOT)
};

/// Crossbar cycles consumed by one gate evaluation (row-parallel: the same
/// count regardless of how many rows participate).
constexpr unsigned gate_cycles(GateKind k) noexcept {
  switch (k) {
    case GateKind::kSet0:
    case GateKind::kSet1:
    case GateKind::kNot:
    case GateKind::kNor:
    case GateKind::kNand:
    case GateKind::kOr:
    case GateKind::kMin3:
      return 1;
    case GateKind::kAnd:
    case GateKind::kXor2:
    case GateKind::kMaj3:
    case GateKind::kCopy:
      return 2;
    case GateKind::kXor3:
    case GateKind::kMux:
      return 3;
  }
  return 0;  // unreachable
}

/// Number of operand inputs a gate reads.
constexpr unsigned gate_arity(GateKind k) noexcept {
  switch (k) {
    case GateKind::kSet0:
    case GateKind::kSet1:
      return 0;
    case GateKind::kNot:
    case GateKind::kCopy:
      return 1;
    case GateKind::kNor:
    case GateKind::kNand:
    case GateKind::kOr:
    case GateKind::kAnd:
    case GateKind::kXor2:
      return 2;
    case GateKind::kXor3:
    case GateKind::kMaj3:
    case GateKind::kMin3:
    case GateKind::kMux:
      return 3;
  }
  return 0;  // unreachable
}

/// One micro-op: dst column := gate(inputs), over the active row mask.
/// `neg_a/b/c` complement the corresponding input before the gate
/// (voltage-polarity trick, latency-free).
struct MicroOp {
  GateKind kind = GateKind::kSet0;
  Col dst = 0;
  Col a = 0, b = 0, c = 0;
  bool neg_a = false, neg_b = false, neg_c = false;
};

}  // namespace cryptopim::pim
