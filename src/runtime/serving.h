// Online serving runtime: a discrete-event, multi-tenant scheduler that
// streams polynomial-multiplication requests over the 128-bank chip.
//
// Where `model::ChipScheduler` answers "what is the makespan of this
// fixed job list?", the serving runtime answers the production question:
// requests *arrive over time* (open-loop Poisson or closed-loop clients),
// are admitted through a bounded queue with backpressure, and are
// dispatched by a pluggable policy (fifo / sjf / edf / wfq) onto
// *superbank lanes* — superbanks carved on demand from the chip's bank
// pool per degree class (arch::ChipConfig::plan_for_degree geometry,
// including degraded chips once banks have failed).
//
// Time is a discrete-event clock in crossbar cycles, consistent with
// model::Performance: a lane configured for degree n accepts one request
// per `slowest_stage_cycles` beat (times `segments` for degrees above
// the design point) and delivers it a pipeline fill later
// (`depth * beat + (segments-1) * beat`). Carving or re-carving a lane
// is a *repartition* and costs `repartition_cycles` before the new lane
// accepts work. A mid-stream bank failure (injected at a configured
// cycle) consumes a spare bank when one is left — the victim lane pays a
// repartition and its in-flight requests retry — and shrinks the pool
// once spares are dry, exactly mirroring plan_for_degree(n, failed).
//
// Observability: every run fills per-tenant pow2 latency histograms
// (p50/p99/p999 via obs::Histogram::quantile), queue-depth and
// utilization counters, publishes cryptopim.runtime.* metrics, and —
// when the global tracer is enabled — emits one span per request on a
// per-lane `runtime` track so Perfetto shows requests flowing across
// superbank lanes.
//
// Verification: requests flagged `verify` carry a data seed; on
// completion the runtime materialises the operands, runs the product
// through the software mirror of the datapath and checks it with the
// reliability layer's Freivalds verifier, so a stream "completes with
// verified results" in the literal sense.
//
// Resilience (runtime/resilience.h, all off by default): per-request
// deadlines with admission feasibility rejection and queued-timeout
// cancellation, budgeted retries with capped exponential backoff, hedged
// duplicates for stragglers (first result wins), CoDel-style load
// shedding, per-lane circuit breakers, and a HealthMonitor that scores
// lanes from FaultModel wear counters + verification outcomes, scrubs
// unhealthy idle lanes and proactively drains/remaps worn lanes before
// they corrupt traffic. `--chaos` composes seeded lane fault episodes
// with live traffic to exercise the whole stack deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "arch/chip.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "runtime/event_queue.h"
#include "runtime/journal.h"
#include "runtime/policy.h"
#include "runtime/protocol.h"
#include "runtime/request.h"
#include "runtime/resilience.h"
#include "runtime/workload.h"

namespace cryptopim::runtime {

class ExecutionBackend;  // runtime/backend.h
class ProtocolHarness;   // runtime/protocol_ops.h

/// Trace track ids used by the runtime: base + lane index (base itself
/// is the control track carrying repartition/failure spans). Disjoint
/// from the simulator tracks (0..banks, 1<<15, 1<<16, 1<<17 ranges).
/// Fleet chips each get their own window of kRuntimeTracksPerChip ids
/// above the base so per-lane tracks never collide across chips.
inline constexpr std::uint32_t kRuntimeTrackBase = 1u << 18;
inline constexpr std::uint32_t kRuntimeTracksPerChip = 1u << 10;

/// Terminal fate of a request on one chip, reported through the outcome
/// sink so a fleet front-end can react (cross-chip retry, hedging,
/// accounting). kCompleted is the only good outcome; everything else is
/// a candidate for re-dispatch on a replica chip.
enum class Outcome : std::uint8_t {
  kCompleted,
  kRejected,  ///< refused at admission (queue full / unservable / deadline)
  kShed,      ///< CoDel drop at dispatch
  kTimedOut,  ///< cancelled in queue past its deadline
  kFailed,    ///< gave up after detection/teardown (no retry left)
};

struct ServingConfig {
  /// Fleet identity: folded into the event queue's sequence namespace,
  /// stamped on event-log records, and offset into the trace track ids.
  /// 0 for the classic single-chip `serve` path.
  std::uint32_t chip_id = 0;
  /// Fleet drive mode: no internal workload generator — arrivals are
  /// injected by the fleet front-end via inject(), and terminal request
  /// outcomes are reported through the outcome sink.
  bool external_arrivals = false;

  arch::ChipConfig chip = arch::ChipConfig::paper_chip();
  std::string policy = "fifo";
  /// Execution backend for data-carrying (verified) requests: "gate"
  /// (crossbar simulation, golden), "word" (host-speed flat-word NTT,
  /// bit-exact vs gate) or "analytic" (accounting only, nothing to
  /// verify). See runtime/backend.h. Scheduling, admission and cycle
  /// accounting are backend-invariant: same-seed reports differ only in
  /// the report's `backend` field (and host wall-clock).
  std::string backend = "word";

  // -- workload ---------------------------------------------------------------
  WorkloadSpec workload;
  /// Open loop: offered arrival rate in requests per second.
  double arrival_rate_per_s = 1000.0;
  /// Closed loop when clients > 0 (arrival_rate_per_s is then ignored).
  std::uint32_t closed_loop_clients = 0;
  double think_time_us = 100.0;
  /// Arrival horizon in simulated microseconds; the runtime then drains.
  double duration_us = 5000.0;
  /// deadline = arrival + slack * service estimate; 0 = no deadlines.
  double deadline_slack = 0.0;

  // -- protocol workload (runtime/protocol.h; kNone = classic raw polymul) ----
  /// When enabled, every arrival is a protocol-level request compiled
  /// into a DAG of primitive ops with dependency-aware dispatch; the
  /// workload mix is expected to be pinned to the protocol's lane degree.
  ProtocolSpec protocol;

  // -- admission and partitioning --------------------------------------------
  std::size_t queue_capacity = 1024;
  /// Cycles a newly carved (or failure-remapped) lane takes to become
  /// ready: superbank reconfiguration cost.
  std::uint64_t repartition_cycles = 4096;
  /// Per-tenant fairness weights (wfq); missing tenants default to 1.
  std::vector<double> tenant_weights;

  // -- reliability ------------------------------------------------------------
  /// Inject one bank failure at this simulated microsecond (0 = none).
  double fail_bank_at_us = 0.0;
  unsigned fail_banks = 1;
  /// Freivalds points for data-carrying requests.
  unsigned verify_points = 2;

  // -- resilience (all features default off; see runtime/resilience.h) --------
  ResilienceConfig resilience;

  // -- observability -----------------------------------------------------------
  /// Width of the rolling telemetry windows in cycles; 0 = auto
  /// (max(1024, arrival horizon / 64), so every run gets ~64 windows).
  std::uint64_t window_cycles = 0;
  /// SLO objectives (availability + latency); off by default.
  obs::SloConfig slo;

  /// Crossbar cycle time (defaults to the paper's 1.1 ns device).
  double cycle_ns = 1.1;

  double cycles_per_us() const noexcept { return 1e3 / cycle_ns; }
};

/// Per-tenant serving ledger.
struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  /// Deadline-infeasible at admission; kept apart from `rejected` so the
  /// global counters still sum per-tenant ones field-for-field.
  std::uint64_t rejected_deadline = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_misses = 0;
  /// Bank-cycles consumed: lane banks x occupancy beats per request.
  std::uint64_t bank_cycles = 0;
  double weight = 1.0;
  obs::Histogram latency_cycles;  ///< arrival -> completion
};

struct ServingReport {
  std::string policy;
  std::string backend;  ///< execution backend the run verified through
  std::uint64_t duration_cycles = 0;  ///< arrival horizon
  std::uint64_t drain_cycle = 0;      ///< last event processed

  // Work conservation: submitted == admitted + rejected and
  // admitted == completed + in_flight (+ queued) at any observation
  // point; after the final drain in_flight == queued == 0.
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;          ///< queue-full backpressure
  std::uint64_t rejected_unservable = 0;  ///< no feasible plan (degraded)
  std::uint64_t completed = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t queued = 0;

  std::uint64_t repartitions = 0;
  std::uint64_t bank_failures = 0;
  std::uint64_t retried = 0;  ///< requests re-queued by a bank failure
  std::uint64_t deadline_misses = 0;

  std::uint64_t verified = 0;
  std::uint64_t verify_failures = 0;

  /// Resilience ledger; serialized (and the section emitted in to_json)
  /// only when a resilience feature was enabled for the run.
  bool resilience_enabled = false;
  ResilienceStats resilience;

  /// Fleet context (populated, and emitted in to_json, only when the
  /// chip was driven externally by a FleetRuntime — the classic
  /// single-chip report stays byte-identical).
  bool fleet_mode = false;
  std::uint32_t chip_id = 0;
  std::uint64_t migrated = 0;         ///< queued work extracted by a drain/crash
  std::uint64_t lost_in_flight = 0;   ///< in-flight torn down by a chip crash
  std::uint64_t chip_corruptions = 0; ///< corruption-storm results detected
  std::uint64_t chip_failed = 0;      ///< surrendered to the fleet for retry

  /// Protocol-level ledger (populated, and emitted in to_json, only when
  /// a protocol workload ran — raw-polymul reports stay byte-identical).
  /// The main counters above then count primitive *ops*, so the serving
  /// conservation identities keep holding with ops as the unit of work;
  /// this block counts whole protocol requests.
  bool protocol_enabled = false;
  ProtocolStats protocol;

  std::uint64_t busy_bank_cycles = 0;
  double utilization = 0;       ///< busy bank-cycles / (banks x drain time)
  double throughput_per_s = 0;  ///< completed / drain time
  double offered_per_s = 0;     ///< submitted / arrival horizon

  obs::Histogram latency_cycles;   ///< all tenants
  obs::Histogram queue_depth;      ///< sampled at every arrival
  std::map<std::uint32_t, TenantStats> tenants;

  /// Windowed telemetry: per-window counters (submitted / completed /
  /// shed / retries / ...) and latency histograms on the cycle axis.
  obs::WindowedSeries series;
  /// SLO accounting; serialized only when objectives were configured.
  obs::SloAccountant slo;

  double cycles_per_us = 1.0;
  double latency_us(double quantile) const;

  /// Deterministic JSON document (schema "serving/2"): totals, derived
  /// rates, per-tenant stats with p50/p99/p999 latency, the windowed
  /// "series" section with derived "rolling" rates, and — when
  /// objectives were set — the "slo" error-budget section.
  obs::Json to_json() const;
};

class ServingRuntime {
 public:
  explicit ServingRuntime(ServingConfig cfg);
  ~ServingRuntime();

  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  const ServingConfig& config() const noexcept { return cfg_; }

  /// Attach a lifecycle event log (not owned; may be null). When the log
  /// is enabled, every request emits causally-linked records — admitted,
  /// dispatched, retry, hedge, completed, ... — keyed by a trace id (the
  /// request id, shared across its retries and hedges).
  void set_event_log(obs::EventLog* log) noexcept { event_log_ = log; }

  /// Run the full simulation: prime arrivals, loop the event queue to
  /// empty (arrival horizon + drain), return the sealed report.
  /// Deterministic for a fixed config. Throws std::invalid_argument for
  /// an unknown policy name or an empty degree mix.
  ServingReport run();

  // -- fleet drive (stepping) API --------------------------------------------
  // run() == prime(); while (has_events()) step(); seal(). A fleet
  // front-end interleaves many chips instead: it primes each chip, then
  // repeatedly steps whichever chip (or fleet queue) holds the globally
  // earliest (cycle, seq) event — the chip-namespaced seq makes that
  // merge a strict total order, so fleet runs are bit-deterministic.

  /// Everything run() does before the event loop. With
  /// cfg.external_arrivals no workload generator is built: the queue
  /// starts empty and the fleet injects arrivals.
  void prime();
  bool has_events() const noexcept { return !events_.empty(); }
  std::uint64_t next_event_cycle() const { return events_.peek().cycle; }
  /// Chip-namespaced sequence of the earliest event: the fleet's
  /// same-cycle tie-break across chips.
  std::uint64_t next_event_seq() const { return events_.peek().seq; }
  /// Pop and handle exactly one event.
  void step();
  /// Everything run() does after the loop; returns the final report.
  ServingReport seal();

  /// Fleet mode: schedule an externally routed arrival at `cycle`
  /// (>= the chip's current cycle). The request keeps its original
  /// arrival_cycle so latency spans cross-chip retries and migrations.
  void inject(Request r, std::uint64_t cycle);
  /// Terminal-outcome callback (not owned; may be null). Fired once per
  /// submission the chip gives up on or completes.
  using OutcomeSink =
      std::function<void(const Request&, Outcome, std::uint64_t cycle)>;
  void set_outcome_sink(OutcomeSink sink) { outcome_sink_ = std::move(sink); }

  /// Drain support: remove and return every queued (admitted, not yet
  /// dispatched) request so the fleet can migrate it to another chip.
  std::vector<Request> extract_pending();
  /// Whole-chip crash: every lane is torn down and every in-flight and
  /// queued request is lost — returned (deduplicated) for the fleet to
  /// re-dispatch. The chip goes dark (no usable banks) until revive().
  std::vector<Request> crash_chip();
  /// Rejoin after the fleet's scrub period: the bank pool is whole again
  /// (lanes re-carve on demand) and a wake-up scan at `cycle` dispatches
  /// anything that strayed into the queue while dark.
  void revive(std::uint64_t cycle);
  /// Brownout episode: dispatches until `until_cycle` run `factor`x slow.
  void slow_down(std::uint64_t until_cycle, double factor);
  /// Corruption-storm episode: results dispatched before `until_cycle`
  /// are corrupt; the layered checks detect them on completion and the
  /// chip surrenders them (Outcome::kFailed) unless its own resilience
  /// retries succeed. Never delivered as good.
  void corrupt_window(std::uint64_t until_cycle);

  /// Live (mid-run) state, for fleet routing and health decisions.
  const ServingReport& live() const noexcept { return report_; }
  std::size_t pending_count() const noexcept { return pending_.size(); }
  std::size_t in_flight_count() const noexcept { return in_flight_.size(); }
  std::uint64_t now() const noexcept { return now_; }

  // -- durability (runtime/journal.h; inert unless wired) ----------------------
  /// Single-chip mode: open (or recover) `opts.dir`/journal.log and own
  /// it for the run. Call before prime()/run(). The stepping loop then
  /// honours opts.snapshot_every and opts.kill_at_event.
  void enable_durability(const DurabilityOptions& opts);
  /// Fleet mode: commitments go to a fleet-owned chip journal, indexed
  /// by the fleet's merged event counter (snapshot/kill cadence stays
  /// with the fleet). Neither pointer is owned.
  void set_journal(Journal* j) noexcept { journal_ = j; }
  void set_event_index_source(const std::uint64_t* idx) noexcept {
    ext_event_index_ = idx;
  }
  /// Events processed so far (the journal's global index in single-chip
  /// mode).
  std::uint64_t event_index() const noexcept { return event_index_; }
  /// Full determinism-relevant state dump for snapshot/1 documents: lane
  /// geometry and breaker/wear state, bank pool, WFQ ledgers, RNG
  /// position digests, queue and in-flight occupancy, counters.
  obs::Json snapshot_state() const;

 private:
  struct Lane;
  struct InFlight;

  void handle_arrival(const Event& e);
  void handle_completion(const Event& e);
  void handle_bank_failure(const Event& e);
  void try_dispatch();

  /// A lane of `degree`'s class that can accept work *now*, carving a
  /// new one from free banks if needed; nullptr when the class must
  /// wait (a wake-up scan is scheduled whenever one is known).
  /// `exclude` masks one lane index (hedging must pick a *second* lane);
  /// `allow_scan` = false suppresses wake-up scans (hedges that find no
  /// lane are simply not launched).
  Lane* acquire_lane(std::uint32_t degree,
                     std::size_t exclude = static_cast<std::size_t>(-1),
                     bool allow_scan = true);
  Lane* acquire_lane(std::uint32_t degree,
                     const std::set<std::size_t>& exclude, bool allow_scan);
  Lane* carve_lane(std::uint32_t degree);
  /// Returns banks of idle lanes (no in-flight work, nothing pending in
  /// their class) to the free pool until `needed` banks are available.
  void reclaim_idle_lanes(unsigned needed, std::uint32_t for_degree);
  void dispatch(std::size_t queue_index, Lane& lane);
  void verify_result(const Request& r);
  unsigned usable_banks() const noexcept;
  void schedule_scan(std::uint64_t cycle);
  void publish_metrics() const;

  // -- observability -----------------------------------------------------------
  bool elog_on() const noexcept {
    return event_log_ != nullptr && event_log_->enabled();
  }
  /// A lifecycle record skeleton: {"ev":name,"cycle":now,"trace":r.id,
  /// "tenant":r.tenant}. Callers add event-specific fields and hand it
  /// to event_log_->log().
  obs::Json ev_base(const char* name, const Request& r) const;
  /// Terminal-outcome bookkeeping shared by every "bad" exit (rejected /
  /// shed / timed out / failed): windowed counter + SLO error.
  void record_bad_outcome(const char* counter);
  /// Report a terminal fate to the fleet's outcome sink (no-op when the
  /// sink is unset, i.e. in the classic single-chip path).
  void emit_outcome(const Request& r, Outcome o);
  /// Base trace track id for this chip's lane spans.
  std::uint32_t runtime_track_base() const noexcept {
    return kRuntimeTrackBase + cfg_.chip_id * kRuntimeTracksPerChip;
  }

  // -- resilience -------------------------------------------------------------
  void handle_timeout(const Event& e);
  void handle_retry_enqueue(const Event& e);
  void handle_hedge(const Event& e);
  void handle_health(const Event& e);
  void handle_chaos(const Event& e);
  /// A request's result was detected bad (or its lane was torn down):
  /// retry within budget/attempt caps, else fail it. Returns true when a
  /// retry was scheduled.
  bool schedule_retry(Request r, bool count_as_bank_retry);
  /// Record a request outcome on its lane's breaker + health state.
  void record_lane_outcome(Lane& lane, std::size_t lane_idx, bool ok);
  /// Cancel an in-flight entry (hedge loser / torn-down duplicate).
  void cancel_in_flight(std::uint64_t dispatch_id);
  /// Remap a fully drained worn lane onto fresh banks.
  void remap_drained_lane(Lane& lane, std::size_t lane_idx);
  /// The request failed for good (no retry): tell the closed-loop client
  /// so it re-issues, exactly like a completion would.
  void notify_request_gone(const Request& r);
  std::uint64_t hedge_delay_cycles() const;
  std::uint64_t retry_backoff(unsigned attempts) const;
  bool chaos_corrupting(const Lane& lane, std::uint64_t at) const;
  void arm_health_tick(std::uint64_t cycle);
  void arm_chaos_episode();

  // -- protocol DAG serving (inert when cfg_.protocol is disabled) -------------
  /// Live state of one admitted protocol request: its origin (what the
  /// fleet re-dispatches whole) and the dependency frontier's done mask.
  struct ProtoState {
    Request origin;
    std::uint32_t op_count = 0;
    std::uint32_t ops_done = 0;
    std::uint64_t done_mask = 0;
  };
  /// Protocol-mode arrival: all-or-nothing admission of the whole DAG.
  void handle_proto_arrival(const Event& e);
  /// Frontier check: all of the op's parents completed.
  bool proto_ready(const Request& r) const;
  static bool is_host_op(const Request& r) noexcept;
  /// Lane acquisition honouring fan-out groups: a fan-out op never
  /// shares a lane with an in-flight sibling of the same group.
  Lane* acquire_lane_for(const Request& r);
  /// Dispatch a laneless host op (sampling / aggregation) at the fixed
  /// host_op_cycles cost.
  void dispatch_host(std::size_t queue_index);
  void complete_host_op(const Event& e, const InFlight& inf);
  /// Mark one op done; on the last op, run the functional join and emit
  /// the protocol request's single good outcome.
  void on_op_complete(const Request& r, std::uint64_t dispatched_at);
  /// Exactly-once protocol teardown: cancel every queued and in-flight
  /// sibling op and emit the origin's single bad outcome. Idempotent
  /// (keyed on protos_ erase), so straggler op failures are no-ops.
  void fail_protocol(std::uint64_t proto_id, Outcome o);

  ServingConfig cfg_;
  std::unique_ptr<Policy> policy_;
  std::unique_ptr<ExecutionBackend> backend_;
  std::unique_ptr<WorkloadGenerator> workload_;

  EventQueue events_;
  std::uint64_t now_ = 0;
  std::uint64_t horizon_ = 0;
  std::vector<Request> pending_;  ///< admitted, waiting for a lane
  std::vector<Lane> lanes_;
  std::map<std::uint64_t, InFlight> in_flight_;
  std::uint64_t next_dispatch_id_ = 1;

  // -- protocol state (empty when cfg_.protocol is disabled) -------------------
  ProtoDag dag_;
  std::map<std::uint64_t, ProtoState> protos_;
  std::unique_ptr<ProtocolHarness> proto_harness_;

  // -- resilience state (inert when cfg_.resilience.enabled() is false) -------
  bool resilience_on_ = false;
  std::unique_ptr<RetryBudget> retry_budget_;
  CoDelShedder shedder_;
  std::unique_ptr<HealthMonitor> health_;
  Xoshiro256 chaos_rng_{1};
  bool health_tick_armed_ = false;
  obs::Histogram service_hist_;  ///< dispatch -> completion, for hedge p99

  unsigned allocated_banks_ = 0;
  unsigned failed_banks_ = 0;
  /// Cycles with a wake-up scan already queued: every blocked dispatch
  /// wants a scan at the next lane-free boundary, and without dedup
  /// those scans accumulate one self-re-arming chain per arrival
  /// (quadratic event count under saturation).
  std::set<std::uint64_t> scan_cycles_;

  std::vector<double> tenant_usage_;  ///< bank-cycles / weight, for wfq

  obs::EventLog* event_log_ = nullptr;  ///< not owned; may be null
  OutcomeSink outcome_sink_;            ///< fleet callback; may be empty

  // -- durability (inert when no journal is wired) -----------------------------
  /// Journal index of the commitment being written: the fleet's merged
  /// counter when driven externally, this chip's own otherwise.
  std::uint64_t jidx() const noexcept {
    return ext_event_index_ != nullptr ? *ext_event_index_ : event_index_;
  }
  void take_snapshot(std::uint64_t index);
  DurabilityOptions durab_;                 ///< single-chip mode only
  std::unique_ptr<Journal> owned_journal_;  ///< single-chip mode only
  Journal* journal_ = nullptr;              ///< owned or fleet-provided
  const std::uint64_t* ext_event_index_ = nullptr;  ///< fleet merged clock
  std::uint64_t event_index_ = 0;

  // -- whole-chip episode state (inert at defaults: single-chip runs
  // never set these, so legacy output is byte-identical) ----------------------
  std::uint64_t chip_slow_until_ = 0;
  double chip_slow_factor_ = 1.0;
  std::uint64_t chip_corrupt_until_ = 0;

  ServingReport report_;
};

}  // namespace cryptopim::runtime
