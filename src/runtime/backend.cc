#include "runtime/backend.h"

#include <stdexcept>

#include "model/performance.h"
#include "ntt/word_ntt.h"
#include "sim/pipelined.h"
#include "sim/simulator.h"

namespace cryptopim::runtime {

BackendResult analytic_accounting(std::uint32_t degree) {
  // Cached per degree: the analytic evaluation walks the pipeline spec.
  struct Cached {
    std::uint64_t cycles;
    double latency_us;
    double energy_uj;
  };
  thread_local std::vector<std::pair<std::uint32_t, Cached>> cache;
  for (const auto& [d, c] : cache) {
    if (d == degree) {
      return BackendResult{{}, c.cycles, c.latency_us, c.energy_uj};
    }
  }
  const model::PipelinePerf perf = model::cryptopim_non_pipelined(degree);
  const Cached c{perf.total_compute_cycles + perf.total_transfer_cycles,
                 perf.latency_us, perf.energy_uj};
  cache.emplace_back(degree, c);
  return BackendResult{{}, c.cycles, c.latency_us, c.energy_uj};
}

std::vector<BackendResult> ExecutionBackend::execute_batch(
    const ntt::NttParams& params,
    const std::vector<std::pair<ntt::Poly, ntt::Poly>>& pairs) {
  std::vector<BackendResult> out;
  out.reserve(pairs.size());
  for (const auto& [a, b] : pairs) out.push_back(execute(params, a, b));
  return out;
}

// -- gate tier ----------------------------------------------------------------

struct GateLevelBackend::Entry {
  ntt::NttParams params;
  sim::CryptoPimSimulator simulator;
  std::unique_ptr<reliability::ReliabilityManager> manager;

  Entry(const ntt::NttParams& p, const reliability::ReliabilityConfig* rc)
      : params(p), simulator(p) {
    if (rc) {
      manager = std::make_unique<reliability::ReliabilityManager>(*rc, p);
      simulator.set_reliability(manager.get());
    }
  }
};

GateLevelBackend::GateLevelBackend() = default;
GateLevelBackend::~GateLevelBackend() = default;

void GateLevelBackend::set_fault_injection(
    const reliability::ReliabilityConfig& rc) {
  fault_cfg_ = std::make_unique<reliability::ReliabilityConfig>(rc);
  cache_.clear();  // existing simulators were built reliability-free
}

GateLevelBackend::Entry& GateLevelBackend::entry_for(
    const ntt::NttParams& params) {
  for (auto& e : cache_) {
    if (e->params.n == params.n && e->params.q == params.q) return *e;
  }
  cache_.push_back(std::make_unique<Entry>(params, fault_cfg_.get()));
  return *cache_.back();
}

BackendResult GateLevelBackend::execute(const ntt::NttParams& params,
                                        const ntt::Poly& a,
                                        const ntt::Poly& b) {
  Entry& e = entry_for(params);
  BackendResult r;
  r.product = e.simulator.multiply(a, b);
  const sim::SimReport& rep = e.simulator.report();
  r.sim_cycles = rep.wall_cycles;
  r.latency_us = rep.latency_us;
  r.energy_uj = rep.energy_uj;
  return r;
}

std::vector<BackendResult> GateLevelBackend::execute_batch(
    const ntt::NttParams& params,
    const std::vector<std::pair<ntt::Poly, ntt::Poly>>& pairs) {
  // Stream through the pipelined simulator: per-job accounting is the
  // steady-state beat, matching how the hardware amortises a batch.
  sim::PipelinedSimulator pipe(params);
  const auto products = pipe.multiply_stream(pairs);
  const sim::PipelineRunReport& rep = pipe.report();
  std::vector<BackendResult> out;
  out.reserve(products.size());
  for (const auto& p : products) {
    BackendResult r;
    r.product = p;
    r.sim_cycles = rep.beat_cycles;
    r.latency_us = rep.jobs ? rep.makespan_us / static_cast<double>(rep.jobs)
                            : 0.0;
    out.push_back(std::move(r));
  }
  return out;
}

// -- word tier ----------------------------------------------------------------

struct WordLevelBackend::Entry {
  ntt::NttParams params;
  ntt::WordNttEngine engine;
  explicit Entry(const ntt::NttParams& p) : params(p), engine(p) {}
};

WordLevelBackend::WordLevelBackend() = default;
WordLevelBackend::~WordLevelBackend() = default;

BackendResult WordLevelBackend::execute(const ntt::NttParams& params,
                                        const ntt::Poly& a,
                                        const ntt::Poly& b) {
  Entry* entry = nullptr;
  for (auto& e : cache_) {
    if (e->params.n == params.n && e->params.q == params.q) {
      entry = e.get();
      break;
    }
  }
  if (!entry) {
    cache_.push_back(std::make_unique<Entry>(params));
    entry = cache_.back().get();
  }
  BackendResult r = analytic_accounting(params.n);
  r.product = entry->engine.negacyclic_multiply(a, b);
  return r;
}

// -- analytic tier ------------------------------------------------------------

BackendResult AnalyticBackend::execute(const ntt::NttParams& params,
                                       const ntt::Poly& a,
                                       const ntt::Poly& b) {
  if (a.size() != params.n || b.size() != params.n) {
    throw std::invalid_argument("operand size does not match the degree");
  }
  return analytic_accounting(params.n);
}

// -- factory ------------------------------------------------------------------

const std::vector<std::string>& backend_names() {
  static const std::vector<std::string> names = {"gate", "word", "analytic"};
  return names;
}

std::unique_ptr<ExecutionBackend> make_backend(std::string_view name) {
  if (name == "gate") return std::make_unique<GateLevelBackend>();
  if (name == "word") return std::make_unique<WordLevelBackend>();
  if (name == "analytic") return std::make_unique<AnalyticBackend>();
  return nullptr;
}

}  // namespace cryptopim::runtime
