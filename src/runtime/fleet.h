// Fleet serving: N independent serving chips behind one front-end.
//
// A FleetRuntime drives N ServingRuntime instances — each a full chip
// with its own lanes, admission queue, resilience stack and event clock
// — under a single deterministic timeline. Chips never see each other;
// the fleet owns everything between them:
//
//   * routing — a front-end Router (consistent-hash / least-loaded /
//     degree-affinity, behind one interface) picks a chip for every
//     arrival from the degree class's placement (primary + replicas);
//   * placement — each degree class is assigned `replicas` chips by a
//     shard map that is rebuilt (a *re-shard*) whenever fleet
//     membership changes;
//   * cross-chip retry and hedging — a request a chip gives up on
//     (rejected / shed / timed out / failed) is re-dispatched onto
//     another chip under a fleet-level retry budget and capped backoff;
//     stragglers are duplicated onto a replica after a hedge delay
//     (fixed or p99-derived), first outcome wins;
//   * failure domains — per-chip health (terminal-outcome failure ratio
//     over a sliding window) folds into whole-chip *drain*: queued work
//     migrates to siblings, the shard map is rebuilt, and the chip
//     rejoins after a scrub period. Whole-chip chaos episodes (seeded:
//     crash, brownout, corruption-storm) exercise the same machinery.
//
// Determinism: the merge of N chip event queues plus the fleet's own is
// a strict total order on (cycle, chip-namespaced seq) — see
// runtime/event_queue.h — so a fixed (config, seed) yields byte-identical
// fleet/1 reports, chaos and all.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/json.h"
#include "runtime/serving.h"

namespace cryptopim::runtime {

/// Whole-chip fault episodes, seeded and deterministic. Episode type is
/// drawn per strike: crash (lose everything, scrub, rejoin), brownout
/// (every dispatch in the window runs slow), corruption storm (every
/// result dispatched in the window is detected bad on completion).
struct FleetChaosConfig {
  bool enabled = false;
  std::uint64_t seed = 42;
  double mean_interval_us = 1200.0;  ///< between episodes (exponential)
  double mean_duration_us = 300.0;   ///< brownout / storm length
  double crash_fraction = 0.25;      ///< P(episode is a crash)
  double brownout_fraction = 0.4;    ///< P(brownout | not crash)... rest: storm
  double slow_factor = 3.0;          ///< brownout service multiplier
};

struct FleetConfig {
  std::uint32_t chips = 4;
  /// Front-end policy: "hash" (consistent, virtual nodes, keyed by
  /// tenant), "least" (least queued+in-flight), "affinity" (degree-class
  /// primary first).
  std::string router = "hash";
  /// Placement width: chips per degree class (primary + replicas-1).
  /// Clamped to the fleet size.
  std::uint32_t replicas = 2;

  /// Per-chip template: policy / backend / chip geometry / per-lane
  /// resilience. Its workload, arrival_rate_per_s and duration_us are
  /// FLEET-wide (the front-end generates one stream and routes it);
  /// chip_id and external_arrivals are overwritten per chip.
  ServingConfig chip;

  // -- cross-chip retry / hedging (fleet granularity) -------------------------
  unsigned max_retries = 2;          ///< re-dispatches per request
  double retry_budget_ratio = 0.1;   ///< fleet retry tokens per admitted
  std::uint64_t retry_backoff_cycles = 2048;  ///< doubled per attempt
  bool hedge = false;
  double hedge_delay_us = 0.0;       ///< 0 = p99 of observed service
  std::uint64_t hedge_min_samples = 64;

  // -- chip health -> drain -> scrub -> rejoin --------------------------------
  double health_period_us = 100.0;
  /// Drain a chip when its terminal-failure ratio over the health window
  /// exceeds this (with at least health_min_samples outcomes observed).
  double fail_rate_threshold = 0.5;
  std::uint64_t health_min_samples = 16;
  double scrub_us = 500.0;           ///< drain/crash -> rejoin delay

  FleetChaosConfig chaos;

  /// Deterministic test hook: crash chip `kill_chip` at this simulated
  /// microsecond (0 = off). Independent of the chaos process.
  double kill_chip_at_us = 0.0;
  std::uint32_t kill_chip = 0;
};

/// What a Router sees of one candidate chip (always Up when offered).
struct ChipView {
  std::uint32_t id = 0;
  std::size_t queue_depth = 0;  ///< admitted, waiting
  std::size_t in_flight = 0;
};

/// Front-end routing policy. pick() chooses among `candidates` (the
/// degree class's live placement, never empty) for request `r`.
class Router {
 public:
  virtual ~Router() = default;
  virtual const char* name() const noexcept = 0;
  virtual std::uint32_t pick(const Request& r,
                             const std::vector<ChipView>& candidates) = 0;
};

/// Factory: "hash" | "least" | "affinity"; nullptr for unknown names.
std::unique_ptr<Router> make_router(const std::string& name);

/// Aggregate fleet ledger (schema "fleet/1"): request fates are counted
/// once, by final outcome, so
///   submitted == completed + rejected + shed + timed_out + failed + queued
/// holds exactly, while Σ per-chip submitted ==
///   routed + cross_retries + hedges_launched + redispatched
/// ties the per-chip serving/2 reports to the fleet counters.
struct FleetReport {
  std::uint32_t chips = 0;
  std::string router;
  std::uint32_t replicas = 0;
  std::uint64_t duration_cycles = 0;
  std::uint64_t drain_cycle = 0;

  // Final request fates (each request exactly once).
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t failed = 0;
  std::uint64_t queued = 0;  ///< unresolved at drain (parked or stranded)

  // Router / placement.
  std::uint64_t routed = 0;  ///< first dispatches
  std::uint64_t reshards = 0;
  std::uint64_t parked = 0;  ///< arrivals with no live candidate chip

  // Cross-chip resilience.
  std::uint64_t cross_retries = 0;
  std::uint64_t retry_budget_denied = 0;
  std::uint64_t hedges_launched = 0;
  std::uint64_t hedge_wasted = 0;  ///< duplicate finished after the winner

  // Failure domains.
  std::uint64_t drains = 0;
  std::uint64_t crashes = 0;
  std::uint64_t brownouts = 0;
  std::uint64_t corruption_storms = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t migrated = 0;       ///< queued requests moved off a chip
  std::uint64_t redispatched = 0;   ///< migrated/lost work re-routed

  obs::Histogram latency_cycles;  ///< arrival -> winning completion
  double throughput_per_s = 0;
  double offered_per_s = 0;
  double cycles_per_us = 1.0;

  std::vector<ServingReport> chip_reports;

  /// Deterministic "fleet/1" document: fleet totals + counters, latency
  /// quantiles, and the per-chip serving/2 reports under "chips".
  obs::Json to_json() const;
};

class FleetRuntime {
 public:
  explicit FleetRuntime(FleetConfig cfg);
  ~FleetRuntime();

  FleetRuntime(const FleetRuntime&) = delete;
  FleetRuntime& operator=(const FleetRuntime&) = delete;

  const FleetConfig& config() const noexcept { return cfg_; }

  /// Shared lifecycle log (serve-events/2): chips stamp their own chip
  /// id, the fleet stamps the target chip on route/migrate/retry/hedge
  /// records, so one log interleaves the whole fleet's streams.
  void set_event_log(obs::EventLog* log) noexcept;

  /// Run to completion. Throws std::invalid_argument for an unknown
  /// router name or an invalid config (0 chips, closed-loop template).
  FleetReport run();

  /// Durability (runtime/journal.h): one fleet-level journal
  /// (`dir`/fleet.log) plus one journal per chip (`dir`/chip-<i>.log),
  /// all indexed by the merged loop's single global event counter so a
  /// recovery replays every stream under the same total order. Snapshot
  /// cadence and the crash-campaign kill hook live in the merged loop.
  /// Call before run().
  void enable_durability(const DurabilityOptions& opts) { durab_ = opts; }

 private:
  struct ChipState;
  struct Outstanding;

  void prime();
  void main_loop();
  FleetReport seal();

  void handle_fleet_event(const Event& e);
  void handle_fleet_arrival(const Event& e);
  void handle_fleet_retry(const Event& e);
  void handle_hedge_check(const Event& e);
  void handle_fleet_health();
  void handle_fleet_chaos(const Event& e);
  void handle_chip_up(const Event& e);

  /// React to one chip's terminal outcome for a request (the sink).
  void on_outcome(std::uint32_t chip, const Request& r, Outcome o,
                  std::uint64_t cycle);

  /// Route and inject; parks the request when no candidate chip is up.
  /// `first` distinguishes initial routes from re-dispatches in the
  /// counters. Returns true when dispatched.
  bool dispatch_to_fleet(const Request& r, bool first);
  std::vector<ChipView> candidates_for(std::uint32_t degree) const;
  std::size_t class_index(std::uint32_t degree) const;
  void rebuild_shard_map(std::uint32_t trigger_chip);
  void drain_chip(std::uint32_t chip, const char* reason);
  void crash_chip(std::uint32_t chip);
  void schedule_rejoin(std::uint32_t chip);
  void redispatch_all(std::vector<Request> work);
  void arm_health_tick();
  void arm_chaos_episode();
  void take_snapshot(std::uint64_t index);
  /// Fleet-level snapshot state: chip membership + shard map + cross-chip
  /// retry/hedge bookkeeping + RNG digests + every chip's own state dump.
  obs::Json snapshot_state() const;
  std::uint64_t hedge_delay_cycles() const;
  void log_control(const char* ev, std::uint32_t chip);
  bool elog_on() const noexcept {
    return event_log_ != nullptr && event_log_->enabled();
  }

  FleetConfig cfg_;
  std::vector<std::unique_ptr<ServingRuntime>> chips_;
  std::vector<ChipState> states_;
  /// chip -> ordered placement per degree class (class-major).
  std::vector<std::vector<std::uint32_t>> shard_map_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<WorkloadGenerator> workload_;
  std::unique_ptr<RetryBudget> retry_budget_;
  EventQueue fleet_q_;  ///< namespace = cfg.chips (one past the chips)
  std::uint64_t now_ = 0;
  std::uint64_t horizon_ = 0;
  bool health_armed_ = false;
  Xoshiro256 chaos_rng_{1};
  obs::Histogram service_hist_;  ///< dispatch -> outcome, for hedge p99
  std::map<std::uint64_t, Outstanding> outstanding_;
  std::vector<Request> parked_;  ///< unroutable until a chip rejoins
  obs::EventLog* event_log_ = nullptr;

  // -- durability (inert when durab_.dir is empty) -----------------------------
  DurabilityOptions durab_;
  std::unique_ptr<Journal> fleet_journal_;
  std::vector<std::unique_ptr<Journal>> chip_journals_;
  /// Merged-loop global event counter: the shared index source for the
  /// fleet's and every chip's journal records.
  std::uint64_t event_index_ = 0;

  FleetReport report_;
};

}  // namespace cryptopim::runtime
