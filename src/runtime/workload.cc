#include "runtime/workload.h"

#include <cassert>
#include <cmath>

namespace cryptopim::runtime {

double uniform_unit(Xoshiro256& rng) noexcept {
  // 53 high bits -> [0, 1); flip to (0, 1] so -log(u) is finite.
  const double u =
      static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
  return 1.0 - u;
}

std::uint64_t exponential_cycles(Xoshiro256& rng, double mean_cycles) noexcept {
  const double sample = -std::log(uniform_unit(rng)) * mean_cycles;
  if (sample < 1.0) return 1;
  return static_cast<std::uint64_t>(std::llround(sample));
}

Request sample_request(const WorkloadSpec& spec, Xoshiro256& rng,
                       std::uint64_t id) {
  assert(!spec.mix.empty());
  Request r;
  r.id = id;
  double total = 0;
  for (const auto& share : spec.mix) total += share.weight;
  double point = uniform_unit(rng) * total;
  r.degree = spec.mix.back().degree;
  for (const auto& share : spec.mix) {
    point -= share.weight;
    if (point <= 0) {
      r.degree = share.degree;
      break;
    }
  }
  r.tenant = spec.tenants > 1
                 ? static_cast<std::uint32_t>(rng.next_below(spec.tenants))
                 : 0;
  if (spec.verify_every > 0 && id % spec.verify_every == 0) {
    r.verify = true;
    // Per-request operand seed; the splitmix in Xoshiro256's constructor
    // decorrelates consecutive ids.
    r.data_seed = spec.seed ^ (id * 0x9e3779b97f4a7c15ull + 1);
  }
  return r;
}

// -- open loop ----------------------------------------------------------------

OpenLoopPoisson::OpenLoopPoisson(WorkloadSpec spec, double rate_per_cycle,
                                 std::uint64_t horizon_cycles)
    : spec_(std::move(spec)),
      rate_per_cycle_(rate_per_cycle),
      horizon_(horizon_cycles),
      rng_(spec_.seed) {
  assert(rate_per_cycle_ > 0);
}

std::vector<Arrival> OpenLoopPoisson::initial() {
  Arrival a;
  a.cycle = exponential_cycles(rng_, 1.0 / rate_per_cycle_);
  if (a.cycle > horizon_) return {};
  a.request = sample_request(spec_, rng_, next_id_++);
  a.request.arrival_cycle = a.cycle;
  return {a};
}

std::optional<Arrival> OpenLoopPoisson::next_after_arrival(const Arrival& a) {
  Arrival next;
  next.cycle = a.cycle + exponential_cycles(rng_, 1.0 / rate_per_cycle_);
  if (next.cycle > horizon_) return std::nullopt;
  next.request = sample_request(spec_, rng_, next_id_++);
  next.request.arrival_cycle = next.cycle;
  return next;
}

// -- closed loop --------------------------------------------------------------

ClosedLoop::ClosedLoop(WorkloadSpec spec, std::uint32_t clients,
                       std::uint64_t think_cycles,
                       std::uint64_t horizon_cycles)
    : spec_(std::move(spec)),
      clients_(clients),
      think_cycles_(think_cycles),
      horizon_(horizon_cycles),
      rng_(spec_.seed) {
  assert(clients_ > 0);
}

std::vector<Arrival> ClosedLoop::initial() {
  std::vector<Arrival> arrivals;
  arrivals.reserve(clients_);
  for (std::uint32_t c = 0; c < clients_; ++c) {
    Arrival a;
    // Stagger the first think so clients do not phase-lock.
    a.cycle = exponential_cycles(
        rng_, static_cast<double>(think_cycles_ ? think_cycles_ : 1));
    if (a.cycle > horizon_) continue;
    a.request = sample_request(spec_, rng_, next_id_++);
    a.request.arrival_cycle = a.cycle;
    a.request.client = c;
    arrivals.push_back(a);
  }
  return arrivals;
}

std::optional<Arrival> ClosedLoop::next_after_completion(const Request& r,
                                                         std::uint64_t now) {
  Arrival a;
  a.cycle = now + exponential_cycles(
                      rng_, static_cast<double>(think_cycles_ ? think_cycles_
                                                              : 1));
  if (a.cycle > horizon_) return std::nullopt;
  a.request = sample_request(spec_, rng_, next_id_++);
  a.request.arrival_cycle = a.cycle;
  a.request.client = r.client;
  return a;
}

}  // namespace cryptopim::runtime
