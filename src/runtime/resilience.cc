#include "runtime/resilience.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace cryptopim::runtime {

ResilienceConfig ResilienceConfig::chaos_preset(std::uint64_t seed) {
  ResilienceConfig r;
  r.max_retries = 2;
  r.retry_budget_ratio = 0.2;
  r.hedge = true;          // p99-derived delay
  r.breaker_k = 4;
  r.wear_limit = 4096;
  r.codel_target_us = 500.0;
  r.chaos.enabled = true;
  r.chaos.seed = seed;
  return r;
}

// -- RetryBudget --------------------------------------------------------------

namespace {
/// Tokens a fresh bucket starts with: a cold-start reserve so the very
/// first failures of a run can still retry before any accrual (the
/// long-run retry rate stays governed by `ratio`).
constexpr double kColdStartTokens = 2.0;
}  // namespace

RetryBudget::RetryBudget(std::uint32_t tenants, double ratio, double cap)
    : tokens_(tenants, std::min(cap, kColdStartTokens)),
      ratio_(ratio),
      cap_(cap) {}

void RetryBudget::on_admitted(std::uint32_t tenant) {
  if (tenant >= tokens_.size()) return;
  tokens_[tenant] = std::min(cap_, tokens_[tenant] + ratio_);
}

bool RetryBudget::try_spend(std::uint32_t tenant) {
  if (tenant >= tokens_.size()) return false;
  if (tokens_[tenant] < 1.0) return false;
  tokens_[tenant] -= 1.0;
  return true;
}

double RetryBudget::tokens(std::uint32_t tenant) const {
  return tenant < tokens_.size() ? tokens_[tenant] : 0.0;
}

// -- CircuitBreaker -----------------------------------------------------------

bool CircuitBreaker::can_accept(std::uint64_t now) const {
  if (k_ == 0) return true;
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return now >= open_until_;  // probe becomes possible
    case State::kHalfOpen:
      return !probe_in_flight_;
  }
  return true;
}

bool CircuitBreaker::note_dispatch(std::uint64_t now) {
  if (k_ == 0) return false;
  if (state_ == State::kOpen && now >= open_until_) {
    state_ = State::kHalfOpen;
    probe_in_flight_ = false;
  }
  if (state_ == State::kHalfOpen) {
    probe_in_flight_ = true;
    return true;
  }
  return false;
}

bool CircuitBreaker::record(bool success, std::uint64_t now) {
  if (k_ == 0) return false;
  if (success) {
    failures_ = 0;
    state_ = State::kClosed;
    probe_in_flight_ = false;
    return false;
  }
  failures_ += 1;
  probe_in_flight_ = false;
  // A half-open probe failure re-opens immediately; a closed lane opens
  // only after K consecutive failures.
  if (state_ == State::kHalfOpen || failures_ >= k_) {
    const bool was_open = state_ == State::kOpen;
    state_ = State::kOpen;
    open_until_ = now + open_cycles_;
    return !was_open;
  }
  return false;
}

void CircuitBreaker::note_cancelled(std::uint64_t now) {
  if (k_ == 0) return;
  if (state_ == State::kHalfOpen && probe_in_flight_) {
    probe_in_flight_ = false;
    state_ = State::kOpen;
    open_until_ = now + open_cycles_;
  }
}

// -- CoDelShedder -------------------------------------------------------------

std::uint64_t CoDelShedder::next_drop_interval() const {
  // CoDel control law: successive drops tighten as interval / sqrt(count).
  const double denom = std::sqrt(static_cast<double>(
      drop_count_ == 0 ? 1 : drop_count_));
  const auto iv = static_cast<std::uint64_t>(
      static_cast<double>(interval_) / denom);
  return iv == 0 ? 1 : iv;
}

bool CoDelShedder::should_drop(std::uint64_t sojourn, std::uint64_t now) {
  if (target_ == 0) return false;
  if (sojourn < target_) {
    // Sojourn dipped below target: leave the dropping phase entirely.
    first_above_ = 0;
    dropping_ = false;
    drop_count_ = 0;
    return false;
  }
  if (!dropping_) {
    if (first_above_ == 0) {
      // First sample above target: give the queue one interval to drain.
      first_above_ = now + interval_;
      return false;
    }
    if (now < first_above_) return false;
    dropping_ = true;
    drop_count_ = 1;
    drop_next_ = now + next_drop_interval();
    return true;  // drop the head request that kept us above target
  }
  if (now < drop_next_) return false;
  drop_count_ += 1;
  drop_next_ = now + next_drop_interval();
  return true;
}

// -- HealthMonitor ------------------------------------------------------------

namespace {
/// FaultModel block ids for lane wear: one id per (lane, remap epoch) so
/// a remap onto fresh banks restarts the wear counter. Disjoint epochs
/// per lane; 256 remaps per lane is far beyond any simulated run.
constexpr std::uint32_t kEpochsPerLane = 256;
/// Exponential decay applied to the failure score per recorded verify.
constexpr double kFailureDecay = 0.9;
/// Health-score weight of one decayed failure.
constexpr double kFailureWeight = 0.25;
}  // namespace

HealthMonitor::HealthMonitor(const ResilienceConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      wear_model_([&] {
        reliability::FaultConfig fc;
        fc.endurance_limit = cfg.wear_limit;
        fc.seed = seed;
        return fc;
      }()) {}

std::uint32_t HealthMonitor::block_id(std::size_t lane) const {
  const auto& h = lanes_[lane];
  return static_cast<std::uint32_t>(lane) * kEpochsPerLane + h.epoch;
}

HealthMonitor::LaneHealth& HealthMonitor::state(std::size_t lane) {
  if (lane >= lanes_.size()) lanes_.resize(lane + 1);
  return lanes_[lane];
}

bool HealthMonitor::note_dispatch(std::size_t lane) {
  state(lane);
  if (cfg_.wear_limit == 0) return false;
  return wear_model_.note_wear(block_id(lane), /*col=*/0);
}

void HealthMonitor::record_verify(std::size_t lane, bool ok) {
  LaneHealth& h = state(lane);
  h.verifies += 1;
  h.failure_score = h.failure_score * kFailureDecay + (ok ? 0.0 : 1.0);
}

void HealthMonitor::on_remap(std::size_t lane) {
  LaneHealth& h = state(lane);
  h.epoch += 1;
  h.failure_score = 0.0;
}

void HealthMonitor::on_scrub(std::size_t lane) {
  state(lane).failure_score = 0.0;
}

std::uint64_t HealthMonitor::wear_writes(std::size_t lane) const {
  if (lane >= lanes_.size() || cfg_.wear_limit == 0) return 0;
  return wear_model_.wear(block_id(lane), /*col=*/0);
}

double HealthMonitor::wear_fraction(std::size_t lane) const {
  if (cfg_.wear_limit == 0) return 0.0;
  return static_cast<double>(wear_writes(lane)) /
         static_cast<double>(cfg_.wear_limit);
}

bool HealthMonitor::wants_drain(std::size_t lane) const {
  if (cfg_.wear_limit == 0 || lane >= lanes_.size()) return false;
  return wear_fraction(lane) >= cfg_.drain_fraction;
}

double HealthMonitor::score(std::size_t lane) const {
  if (lane >= lanes_.size()) return 1.0;
  const double burden = wear_fraction(lane) +
                        kFailureWeight * lanes_[lane].failure_score;
  return std::clamp(1.0 - burden, 0.0, 1.0);
}

bool HealthMonitor::wants_scrub(std::size_t lane) const {
  if (lane >= lanes_.size()) return false;
  // Scrubbing re-programs cells: it forgives transient failure history
  // but cannot un-wear a column, so pure wear burden never triggers it.
  return lanes_[lane].failure_score * kFailureWeight >
         1.0 - cfg_.scrub_threshold;
}

// -- ResilienceStats ----------------------------------------------------------

obs::Json ResilienceStats::to_json() const {
  obs::Json j = obs::Json::object();
  j.set("rejected_deadline", rejected_deadline);
  j.set("timed_out", timed_out);
  j.set("shed", shed);
  j.set("retries", retries);
  j.set("retry_budget_denied", retry_budget_denied);
  j.set("failed", failed);
  j.set("hedges", hedges);
  j.set("hedge_wins", hedge_wins);
  j.set("hedge_cancelled", hedge_cancelled);
  j.set("breaker_opens", breaker_opens);
  j.set("breaker_probes", breaker_probes);
  j.set("breaker_closes", breaker_closes);
  j.set("scrubs", scrubs);
  j.set("proactive_remaps", proactive_remaps);
  j.set("wear_corruptions", wear_corruptions);
  j.set("chaos_episodes", chaos_episodes);
  j.set("detected_corruptions", detected_corruptions);
  j.set("wrong_accepted", wrong_accepted);
  return j;
}

void ResilienceStats::publish() const {
  auto& reg = obs::metrics();
  reg.counter("cryptopim.resilience.rejected_deadline", "requests")
      .add(rejected_deadline);
  reg.counter("cryptopim.resilience.timed_out", "requests").add(timed_out);
  reg.counter("cryptopim.resilience.shed", "requests").add(shed);
  reg.counter("cryptopim.resilience.retries", "requests").add(retries);
  reg.counter("cryptopim.resilience.retry_budget_denied", "requests")
      .add(retry_budget_denied);
  reg.counter("cryptopim.resilience.failed", "requests").add(failed);
  reg.counter("cryptopim.resilience.hedges", "requests").add(hedges);
  reg.counter("cryptopim.resilience.hedge_wins", "requests").add(hedge_wins);
  reg.counter("cryptopim.resilience.hedge_cancelled", "requests")
      .add(hedge_cancelled);
  reg.counter("cryptopim.resilience.breaker_opens", "events")
      .add(breaker_opens);
  reg.counter("cryptopim.resilience.breaker_probes", "events")
      .add(breaker_probes);
  reg.counter("cryptopim.resilience.breaker_closes", "events")
      .add(breaker_closes);
  reg.counter("cryptopim.resilience.scrubs", "events").add(scrubs);
  reg.counter("cryptopim.resilience.proactive_remaps", "events")
      .add(proactive_remaps);
  reg.counter("cryptopim.resilience.wear_corruptions", "events")
      .add(wear_corruptions);
  reg.counter("cryptopim.resilience.chaos_episodes", "events")
      .add(chaos_episodes);
  reg.counter("cryptopim.resilience.detected_corruptions", "requests")
      .add(detected_corruptions);
  reg.counter("cryptopim.resilience.wrong_accepted", "requests")
      .add(wrong_accepted);
}

}  // namespace cryptopim::runtime
