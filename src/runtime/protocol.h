// Protocol workload engine: compiles a protocol-level request (KEM
// round-trip, BGV multiply, threshold decryption) into a DAG of
// primitive ops and gives the serving runtime the vocabulary to drive
// it with dependency-aware dispatch.
//
// The paper motivates the NTT accelerator as the kernel inside full
// lattice-based protocols; this module closes that gap for the serving
// path. A protocol request is admitted as one atomic group of ops
// (runtime::Request records the linkage: op index, parent mask, fan-out
// group). An op becomes eligible only when its parents completed,
// fan-out siblings land on distinct lanes, and host-side ops (sampling,
// joins) run laneless at a fixed cycle cost. The functional content of
// a DAG — the actual KEM/BGV/threshold math, executed through the
// configured backend and checked against pure-host references — lives
// in runtime/protocol_ops.h.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "runtime/request.h"

namespace cryptopim::runtime {

enum class ProtocolKind : std::uint8_t {
  kNone,       ///< classic raw-polymul serving
  kKem,        ///< KEM encaps + decaps round-trip (NewHope-like PKE)
  kBgvMul,     ///< BGV ciphertext multiply, per-RNS-limb fan-out
  kThreshold,  ///< K share-holder partial decryptions + host aggregate
};

/// Name <-> kind mapping for the `--protocol` flag and report headers.
const char* protocol_name(ProtocolKind kind) noexcept;
std::optional<ProtocolKind> parse_protocol(std::string_view name) noexcept;
const char* op_class_name(OpClass cls) noexcept;

/// Shares must leave room for the sample and aggregate ops in the
/// 64-bit parent mask.
inline constexpr unsigned kMinShares = 2;
inline constexpr unsigned kMaxShares = 62;

/// Ring degrees the protocol flows run at (fixed by the underlying
/// schemes: NewHope-like PKE at n=1024, paper-small BGV at n=256) and
/// the RNS basis width the BGV multiply fans out over.
inline constexpr std::uint32_t kKemDegree = 1024;
inline constexpr std::uint32_t kBgvDegree = 256;
inline constexpr std::size_t kRnsLimbs = 3;

struct ProtocolSpec {
  ProtocolKind kind = ProtocolKind::kNone;
  /// Threshold flow: number of share holders (partial-decryption ops).
  unsigned shares = 3;
  /// Cycle cost charged for a laneless host op (sampling / aggregation).
  std::uint64_t host_op_cycles = 256;

  bool enabled() const noexcept { return kind != ProtocolKind::kNone; }
};

/// One node of a compiled protocol DAG.
struct ProtoOp {
  OpClass cls = OpClass::kPolymul;
  std::uint32_t degree = 0;
  /// Bitmask over earlier op indices (strictly topological).
  std::uint64_t parent_mask = 0;
  /// Nonzero: siblings sharing the group want distinct lanes.
  std::uint32_t fanout_group = 0;
};

struct ProtoDag {
  std::vector<ProtoOp> ops;
  /// Degree every lane op of this protocol runs at (also the degree the
  /// workload generator is pinned to in protocol mode).
  std::uint32_t lane_degree = 0;
};

/// Compile the DAG for one protocol request. Shapes are fixed per kind:
///   kem:       sample -> 2 encaps muls (fan-out) -> decaps mul ->
///              sample -> 2 re-encrypt muls (fan-out) -> aggregate
///   bgv-mul:   sample -> 4 tensor muls x L RNS limbs (fan-out per mul)
///              -> aggregate (CRT recombine + relin hook)
///   threshold: sample -> K partial-decrypt muls (fan-out) -> aggregate
/// Throws std::invalid_argument for kNone or shares out of range.
ProtoDag compile_protocol(const ProtocolSpec& spec);

/// Protocol-level serving ledger: protos (not ops) plus per-op-class
/// service-time histograms. Emitted as the gated "protocol" block of the
/// serving/2 report.
struct ProtocolStats {
  std::string kind;   ///< protocol_name() of the run's kind
  unsigned shares = 0;  ///< threshold only; 0 otherwise
  std::uint32_t ops_per_request = 0;

  std::uint64_t requests = 0;   ///< protocol requests submitted
  std::uint64_t completed = 0;  ///< all ops done, join delivered
  std::uint64_t failed = 0;     ///< cancelled exactly once after an op died
  std::uint64_t rejected = 0;   ///< refused whole at admission

  std::uint64_t ops_completed = 0;
  std::uint64_t ops_cancelled = 0;  ///< siblings torn down by a failure
  std::uint64_t host_ops = 0;       ///< laneless sample/aggregate dispatches

  std::uint64_t joins = 0;            ///< functional joins evaluated
  std::uint64_t join_mismatches = 0;  ///< backend result != host reference

  obs::Histogram latency_cycles;  ///< proto arrival -> final op completion
  /// Per-op-class dispatch -> completion service time.
  obs::Histogram op_cycles[4];

  obs::Json to_json() const;
};

}  // namespace cryptopim::runtime
