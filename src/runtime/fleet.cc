#include "runtime/fleet.h"

#include <algorithm>
#include <csignal>
#include <filesystem>
#include <stdexcept>

#include "runtime/snapshot.h"

namespace cryptopim::runtime {

namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Consistent hashing over the candidate set: each chip projects
/// kVnodes virtual nodes onto the hash circle and a request's tenant
/// key lands on the next vnode clockwise. A chip leaving only remaps
/// the keys that landed on its own vnodes — tenants stick to "their"
/// replica across unrelated membership churn.
class HashRouter final : public Router {
 public:
  static constexpr unsigned kVnodes = 16;
  const char* name() const noexcept override { return "hash"; }
  std::uint32_t pick(const Request& r,
                     const std::vector<ChipView>& c) override {
    const std::uint64_t key = splitmix64(r.tenant * 0x9e3779b9ULL + 1);
    std::uint32_t best = c.front().id;
    std::uint64_t best_h = 0;
    bool wrapped = true;  // until a vnode >= key is found, track the min
    std::uint64_t min_h = ~std::uint64_t{0};
    std::uint32_t min_id = c.front().id;
    for (const ChipView& v : c) {
      for (unsigned k = 0; k < kVnodes; ++k) {
        const std::uint64_t h =
            splitmix64((std::uint64_t{v.id} << 8) * 131 + k * 1009 + 7);
        if (h < min_h) {
          min_h = h;
          min_id = v.id;
        }
        if (h >= key && (wrapped || h < best_h)) {
          wrapped = false;
          best_h = h;
          best = v.id;
        }
      }
    }
    return wrapped ? min_id : best;
  }
};

/// Least-loaded: fewest queued + in-flight requests, lowest id on ties.
class LeastLoadedRouter final : public Router {
 public:
  const char* name() const noexcept override { return "least"; }
  std::uint32_t pick(const Request&,
                     const std::vector<ChipView>& c) override {
    const ChipView* best = &c.front();
    for (const ChipView& v : c) {
      const std::size_t load = v.queue_depth + v.in_flight;
      const std::size_t best_load = best->queue_depth + best->in_flight;
      if (load < best_load || (load == best_load && v.id < best->id)) {
        best = &v;
      }
    }
    return best->id;
  }
};

/// Degree affinity: always the class's first live placement (the
/// primary while it is up), so each degree class concentrates on few
/// chips and lane carving churn stays minimal.
class AffinityRouter final : public Router {
 public:
  const char* name() const noexcept override { return "affinity"; }
  std::uint32_t pick(const Request&,
                     const std::vector<ChipView>& c) override {
    return c.front().id;
  }
};

}  // namespace

std::unique_ptr<Router> make_router(const std::string& name) {
  if (name == "hash") return std::make_unique<HashRouter>();
  if (name == "least") return std::make_unique<LeastLoadedRouter>();
  if (name == "affinity") return std::make_unique<AffinityRouter>();
  return nullptr;
}

// -- report -------------------------------------------------------------------

obs::Json FleetReport::to_json() const {
  obs::Json j = obs::Json::object();
  j.set("schema", "fleet/1");
  j.set("fleet", std::uint64_t{chips});
  j.set("router", router);
  j.set("replicas", std::uint64_t{replicas});
  j.set("duration_cycles", duration_cycles);
  j.set("drain_cycle", drain_cycle);
  j.set("submitted", submitted);
  j.set("completed", completed);
  j.set("rejected", rejected);
  j.set("shed", shed);
  j.set("timed_out", timed_out);
  j.set("failed", failed);
  j.set("queued", queued);
  j.set("routed", routed);
  j.set("reshards", reshards);
  j.set("parked", parked);
  j.set("cross_retries", cross_retries);
  j.set("retry_budget_denied", retry_budget_denied);
  j.set("hedges_launched", hedges_launched);
  j.set("hedge_wasted", hedge_wasted);
  j.set("drains", drains);
  j.set("crashes", crashes);
  j.set("brownouts", brownouts);
  j.set("corruption_storms", corruption_storms);
  j.set("rejoins", rejoins);
  j.set("migrated", migrated);
  j.set("redispatched", redispatched);
  obs::Json lat = obs::Json::object();
  lat.set("count", latency_cycles.count());
  lat.set("mean_cycles", latency_cycles.mean());
  lat.set("p50_cycles", latency_cycles.quantile(0.50));
  lat.set("p99_cycles", latency_cycles.quantile(0.99));
  lat.set("p999_cycles", latency_cycles.quantile(0.999));
  lat.set("p50_us",
          static_cast<double>(latency_cycles.quantile(0.50)) / cycles_per_us);
  lat.set("p99_us",
          static_cast<double>(latency_cycles.quantile(0.99)) / cycles_per_us);
  lat.set("max_cycles", latency_cycles.max());
  j.set("latency", std::move(lat));
  j.set("throughput_per_s", throughput_per_s);
  j.set("offered_per_s", offered_per_s);
  obs::Json per_chip = obs::Json::array();
  for (const ServingReport& r : chip_reports) per_chip.push_back(r.to_json());
  j.set("chips", std::move(per_chip));
  return j;
}

// -- runtime ------------------------------------------------------------------

struct FleetRuntime::ChipState {
  enum class State : std::uint8_t { kUp, kScrubbing, kDown };
  State state = State::kUp;
  // Health window: terminal outcomes since the last health tick.
  std::uint64_t outcomes = 0;
  std::uint64_t failures = 0;
};

/// One fleet-visible request from arrival to its final fate. `live`
/// counts active chip submissions (initial route, cross-retries, fleet
/// hedges each add one; every submission either reports a terminal
/// outcome or is reclaimed by a drain/crash). The entry is erased once
/// done (or terminally failed) and no submission is still running.
struct FleetRuntime::Outstanding {
  Request original;
  unsigned attempts = 0;  ///< cross-chip re-dispatches consumed
  unsigned live = 0;
  bool done = false;
  Outcome last_bad = Outcome::kFailed;
  std::uint64_t last_dispatch_cycle = 0;
  std::uint32_t last_chip = 0;
};

FleetRuntime::FleetRuntime(FleetConfig cfg)
    : cfg_(std::move(cfg)), fleet_q_(0, cfg_.chips) {}
FleetRuntime::~FleetRuntime() = default;

void FleetRuntime::set_event_log(obs::EventLog* log) noexcept {
  event_log_ = log;
}

std::size_t FleetRuntime::class_index(std::uint32_t degree) const {
  const auto& mix = cfg_.chip.workload.mix;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    if (mix[i].degree == degree) return i;
  }
  return 0;  // unreachable: requests are sampled from the mix
}

void FleetRuntime::prime() {
  if (cfg_.chips == 0) throw std::invalid_argument("fleet needs >= 1 chip");
  if (cfg_.chip.closed_loop_clients > 0) {
    throw std::invalid_argument("fleet serving is open-loop only");
  }
  router_ = make_router(cfg_.router);
  if (!router_) throw std::invalid_argument("unknown router: " + cfg_.router);
  cfg_.replicas = std::max<std::uint32_t>(
      1, std::min(cfg_.replicas, cfg_.chips));

  const double cyc_per_us = cfg_.chip.cycles_per_us();
  horizon_ = static_cast<std::uint64_t>(cfg_.chip.duration_us * cyc_per_us);

  report_ = FleetReport{};
  report_.chips = cfg_.chips;
  report_.router = cfg_.router;
  report_.replicas = cfg_.replicas;
  report_.duration_cycles = horizon_;
  report_.cycles_per_us = cyc_per_us;

  if (event_log_) event_log_->clear();

  if (durab_.enabled()) {
    std::filesystem::create_directories(durab_.dir);
    fleet_journal_ = std::make_unique<Journal>();
    fleet_journal_->open(
        durab_.dir + "/fleet.log",
        Journal::header_payload("fleet", 0, cfg_.chip.workload.seed,
                                fleet_config_to_json(cfg_)),
        durab_.recover);
    chip_journals_.clear();
  }

  chips_.clear();
  states_.assign(cfg_.chips, ChipState{});
  for (std::uint32_t i = 0; i < cfg_.chips; ++i) {
    ServingConfig cc = cfg_.chip;
    cc.chip_id = i;
    cc.external_arrivals = true;
    // De-correlate per-lane chaos across chips: with one shared seed every
    // chip would strike in lockstep, defeating replication.
    if (cc.resilience.chaos.enabled) cc.resilience.chaos.seed += i;
    // Per-chip journal header: fingerprints the chip's *effective* config
    // (post chip_id / chaos-seed rewrite), built before the move below.
    std::string chip_hdr;
    if (durab_.enabled()) {
      chip_hdr = Journal::header_payload("chip", i, cc.workload.seed,
                                         serving_config_to_json(cc));
    }
    auto chip = std::make_unique<ServingRuntime>(std::move(cc));
    chip->set_event_log(event_log_);
    chip->set_outcome_sink(
        [this, i](const Request& r, Outcome o, std::uint64_t cycle) {
          on_outcome(i, r, o, cycle);
        });
    if (durab_.enabled()) {
      auto cj = std::make_unique<Journal>();
      cj->open(durab_.dir + "/chip-" + std::to_string(i) + ".log", chip_hdr,
               durab_.recover);
      chip->set_journal(cj.get());
      chip->set_event_index_source(&event_index_);
      chip_journals_.push_back(std::move(cj));
    }
    chip->prime();
    chips_.push_back(std::move(chip));
  }

  shard_map_.assign(cfg_.chip.workload.mix.size(), {});
  rebuild_shard_map(/*trigger_chip=*/0);
  report_.reshards = 0;  // the initial build is placement, not a re-shard

  const std::uint32_t tenants =
      std::max<std::uint32_t>(cfg_.chip.workload.tenants, 1);
  retry_budget_ =
      std::make_unique<RetryBudget>(tenants, cfg_.retry_budget_ratio);
  service_hist_ = obs::Histogram{};
  chaos_rng_ = Xoshiro256(cfg_.chaos.seed);

  const double rate_per_cycle =
      cfg_.chip.arrival_rate_per_s / (1e9 / cfg_.chip.cycle_ns);
  if (rate_per_cycle <= 0) {
    throw std::invalid_argument("arrival rate must be positive");
  }
  workload_ = std::make_unique<OpenLoopPoisson>(cfg_.chip.workload,
                                                rate_per_cycle, horizon_);
  for (const auto& a : workload_->initial()) {
    Event e;
    e.cycle = a.cycle;
    e.kind = EventKind::kFleetArrival;
    e.request = a.request;
    fleet_q_.push(std::move(e));
  }

  if (cfg_.chaos.enabled) arm_chaos_episode();
  if (cfg_.kill_chip_at_us > 0 && cfg_.kill_chip < cfg_.chips) {
    Event e;
    e.cycle = static_cast<std::uint64_t>(cfg_.kill_chip_at_us * cyc_per_us);
    e.kind = EventKind::kFleetChaos;
    e.dispatch_id = std::uint64_t{cfg_.kill_chip} + 1;  // forced crash marker
    fleet_q_.push(std::move(e));
  }
  arm_health_tick();
}

void FleetRuntime::main_loop() {
  // Merge N+1 event queues into one timeline: pop whichever holds the
  // globally earliest (cycle, chip-namespaced seq) event. The namespace
  // makes the comparison a strict total order, so the interleaving —
  // and therefore every counter and record — is deterministic.
  for (;;) {
    int best = -2;  // -1 = fleet queue, >= 0 = chip index
    std::uint64_t best_cycle = 0, best_seq = 0;
    if (!fleet_q_.empty()) {
      best = -1;
      best_cycle = fleet_q_.peek().cycle;
      best_seq = fleet_q_.peek().seq;
    }
    for (std::size_t i = 0; i < chips_.size(); ++i) {
      if (!chips_[i]->has_events()) continue;
      const std::uint64_t c = chips_[i]->next_event_cycle();
      const std::uint64_t s = chips_[i]->next_event_seq();
      if (best == -2 || c < best_cycle ||
          (c == best_cycle && s < best_seq)) {
        best = static_cast<int>(i);
        best_cycle = c;
        best_seq = s;
      }
    }
    if (best == -2) break;
    // Durability hooks at the merged-event boundary (mirrors the
    // single-chip loop in ServingRuntime::step): state is consistent
    // here, so snapshots are replay-reproducible and a campaign SIGKILL
    // can only tear the final journal line.
    if (durab_.enabled()) {
      if (durab_.snapshot_every > 0 && event_index_ > 0 &&
          event_index_ % durab_.snapshot_every == 0) {
        take_snapshot(event_index_);
      }
      if (durab_.kill_at_event > 0 &&
          event_index_ + 1 == durab_.kill_at_event) {
        std::raise(SIGKILL);
      }
    }
    now_ = std::max(now_, best_cycle);
    report_.drain_cycle = std::max(report_.drain_cycle, best_cycle);
    if (best == -1) {
      handle_fleet_event(fleet_q_.pop());
    } else {
      chips_[static_cast<std::size_t>(best)]->step();
    }
    event_index_ += 1;
  }
}

FleetReport FleetRuntime::run() {
  prime();
  main_loop();
  return seal();
}

FleetReport FleetRuntime::seal() {
  // Unresolved requests (parked with every candidate down, or stranded
  // in a starved chip queue) surface as fleet `queued`.
  for (const auto& [id, ent] : outstanding_) {
    if (!ent.done) report_.queued += 1;
  }
  outstanding_.clear();
  parked_.clear();
  for (auto& chip : chips_) report_.chip_reports.push_back(chip->seal());
  if (report_.drain_cycle > 0) {
    const double drain_s = static_cast<double>(report_.drain_cycle) *
                           cfg_.chip.cycle_ns * 1e-9;
    report_.throughput_per_s =
        static_cast<double>(report_.completed) / drain_s;
  }
  if (horizon_ > 0) {
    report_.offered_per_s =
        static_cast<double>(report_.submitted) /
        (static_cast<double>(horizon_) * cfg_.chip.cycle_ns * 1e-9);
  }
  if (fleet_journal_) {
    fleet_journal_->record(Journal::seal_payload(
        event_index_, now_,
        {{"sub", report_.submitted},
         {"cmp", report_.completed},
         {"rej", report_.rejected},
         {"shd", report_.shed},
         {"tmo", report_.timed_out},
         {"fld", report_.failed},
         {"que", report_.queued},
         {"rtd", report_.routed},
         {"xrt", report_.cross_retries},
         {"hdg", report_.hedges_launched}}));
  }
  return report_;
}

void FleetRuntime::take_snapshot(std::uint64_t index) {
  // See ServingRuntime::take_snapshot: the journal record's byte-compare
  // under replay is the cross-check that the rebuilt state's CRC matches
  // the pre-crash one.
  std::uint32_t crc = 0;
  const std::string file =
      write_snapshot(durab_.dir, index, snapshot_state(), &crc);
  fleet_journal_->record(Journal::snap_payload(index, file, crc));
}

obs::Json FleetRuntime::snapshot_state() const {
  obs::Json s = obs::Json::object();
  s.set("cycle", now_);
  s.set("event_index", event_index_);

  obs::Json counters = obs::Json::object();
  counters.set("submitted", report_.submitted);
  counters.set("completed", report_.completed);
  counters.set("rejected", report_.rejected);
  counters.set("shed", report_.shed);
  counters.set("timed_out", report_.timed_out);
  counters.set("failed", report_.failed);
  counters.set("routed", report_.routed);
  counters.set("cross_retries", report_.cross_retries);
  counters.set("reshards", report_.reshards);
  counters.set("drains", report_.drains);
  counters.set("crashes", report_.crashes);
  counters.set("rejoins", report_.rejoins);
  s.set("counters", std::move(counters));

  obs::Json chip_states = obs::Json::array();
  for (const ChipState& cs : states_) {
    obs::Json cj = obs::Json::object();
    cj.set("state", std::uint64_t{static_cast<unsigned>(cs.state)});
    cj.set("outcomes", cs.outcomes);
    cj.set("failures", cs.failures);
    chip_states.push_back(std::move(cj));
  }
  s.set("chip_states", std::move(chip_states));

  obs::Json shard = obs::Json::array();
  for (const auto& placement : shard_map_) {
    obs::Json row = obs::Json::array();
    for (const std::uint32_t id : placement) {
      row.push_back(std::uint64_t{id});
    }
    shard.push_back(std::move(row));
  }
  s.set("shard_map", std::move(shard));

  s.set("outstanding", std::uint64_t{outstanding_.size()});
  s.set("parked", std::uint64_t{parked_.size()});

  obs::Json rngs = obs::Json::object();
  char hex[24];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(workload_->rng_digest()));
  rngs.set("workload", std::string(hex));
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(chaos_rng_.digest()));
  rngs.set("chaos", std::string(hex));
  s.set("rng", std::move(rngs));

  // Every chip's own state dump: one fleet snapshot captures the whole
  // machine (lanes, breakers, wear, WFQ ledgers, per-chip RNG cursors).
  obs::Json chips = obs::Json::array();
  for (const auto& chip : chips_) chips.push_back(chip->snapshot_state());
  s.set("chips", std::move(chips));
  return s;
}

void FleetRuntime::handle_fleet_event(const Event& e) {
  switch (e.kind) {
    case EventKind::kFleetArrival: handle_fleet_arrival(e); break;
    case EventKind::kFleetRetry: handle_fleet_retry(e); break;
    case EventKind::kFleetHedgeCheck: handle_hedge_check(e); break;
    case EventKind::kFleetHealth: handle_fleet_health(); break;
    case EventKind::kFleetChaos: handle_fleet_chaos(e); break;
    case EventKind::kFleetChipUp: handle_chip_up(e); break;
    default: break;  // chip kinds never reach the fleet queue
  }
}

void FleetRuntime::handle_fleet_arrival(const Event& e) {
  report_.submitted += 1;
  // Chain the next arrival before routing: backpressure anywhere in the
  // fleet never throttles the offered stream.
  Arrival this_arrival{e.cycle, e.request};
  if (auto next = workload_->next_after_arrival(this_arrival)) {
    Event ne;
    ne.cycle = next->cycle;
    ne.kind = EventKind::kFleetArrival;
    ne.request = next->request;
    fleet_q_.push(std::move(ne));
  }
  retry_budget_->on_admitted(e.request.tenant);
  Outstanding ent;
  ent.original = e.request;
  outstanding_.emplace(e.request.id, std::move(ent));
  // Fleet admission commitment: the request is now the fleet's to settle
  // (exactly one terminal fate), journaled before any chip sees it.
  if (fleet_journal_) {
    fleet_journal_->record(
        Journal::admit_payload(event_index_, now_, e.request));
  }
  dispatch_to_fleet(e.request, /*first=*/true);
}

std::vector<ChipView> FleetRuntime::candidates_for(
    std::uint32_t degree) const {
  std::vector<ChipView> out;
  for (const std::uint32_t id : shard_map_[class_index(degree)]) {
    if (states_[id].state != ChipState::State::kUp) continue;
    out.push_back(ChipView{id, chips_[id]->pending_count(),
                           chips_[id]->in_flight_count()});
  }
  return out;
}

bool FleetRuntime::dispatch_to_fleet(const Request& r, bool first) {
  const auto candidates = candidates_for(r.degree);
  if (candidates.empty()) {
    parked_.push_back(r);
    report_.parked += 1;
    return false;
  }
  const std::uint32_t target = router_->pick(r, candidates);
  auto& ent = outstanding_.at(r.id);
  ent.live += 1;
  ent.last_chip = target;
  ent.last_dispatch_cycle = now_;
  chips_[target]->inject(r, now_);
  if (first) {
    report_.routed += 1;
    if (elog_on()) {
      obs::Json rec = obs::Json::object();
      rec.set("ev", "route");
      rec.set("cycle", now_);
      rec.set("chip", std::uint64_t{target});
      rec.set("trace", r.id);
      rec.set("tenant", std::uint64_t{r.tenant});
      event_log_->log(std::move(rec));
    }
    if (cfg_.hedge) {
      const std::uint64_t delay = hedge_delay_cycles();
      if (delay > 0) {
        Event he;
        he.cycle = now_ + delay;
        he.kind = EventKind::kFleetHedgeCheck;
        he.dispatch_id = r.id;
        fleet_q_.push(std::move(he));
      }
    }
  }
  return true;
}

void FleetRuntime::on_outcome(std::uint32_t chip, const Request& r, Outcome o,
                              std::uint64_t cycle) {
  auto it = outstanding_.find(r.id);
  if (it == outstanding_.end()) return;  // stale duplicate, already settled
  Outstanding& ent = it->second;
  ChipState& cs = states_[chip];
  cs.outcomes += 1;
  cs.failures += o != Outcome::kCompleted;
  service_hist_.add(cycle >= ent.last_dispatch_cycle
                        ? cycle - ent.last_dispatch_cycle
                        : 0);
  if (ent.live > 0) ent.live -= 1;

  if (ent.done) {
    // A fleet-hedge duplicate finishing after the winner: wasted work.
    if (o == Outcome::kCompleted) report_.hedge_wasted += 1;
    if (ent.live == 0) outstanding_.erase(it);
    return;
  }
  if (o == Outcome::kCompleted) {
    ent.done = true;
    report_.completed += 1;
    report_.latency_cycles.add(cycle - ent.original.arrival_cycle);
    // Final-fate settlement: exactly one out record per fleet request.
    if (fleet_journal_) {
      fleet_journal_->record(Journal::outcome_payload(
          event_index_, cycle, r.id, Outcome::kCompleted));
    }
    if (ent.live == 0) outstanding_.erase(it);
    return;
  }
  ent.last_bad = o;
  if (ent.live > 0) return;  // a hedge twin is still running; wait for it

  // Cross-chip retry: re-dispatch the original onto another chip under
  // the fleet budget, backing off exponentially per attempt.
  if (ent.attempts < cfg_.max_retries) {
    if (retry_budget_->try_spend(r.tenant)) {
      ent.attempts += 1;
      report_.cross_retries += 1;
      std::uint64_t backoff = cfg_.retry_backoff_cycles;
      for (unsigned a = 1; a < ent.attempts && backoff < (1u << 20); ++a) {
        backoff <<= 1;
      }
      Event re;
      re.cycle = cycle + backoff;
      re.kind = EventKind::kFleetRetry;
      re.request = ent.original;
      fleet_q_.push(std::move(re));
      return;
    }
    report_.retry_budget_denied += 1;
  }
  // Out of retries: the request's fate is its last bad outcome.
  switch (ent.last_bad) {
    case Outcome::kRejected: report_.rejected += 1; break;
    case Outcome::kShed: report_.shed += 1; break;
    case Outcome::kTimedOut: report_.timed_out += 1; break;
    default: report_.failed += 1; break;
  }
  if (fleet_journal_) {
    fleet_journal_->record(
        Journal::outcome_payload(event_index_, cycle, r.id, ent.last_bad));
  }
  outstanding_.erase(it);
}

void FleetRuntime::handle_fleet_retry(const Event& e) {
  const auto it = outstanding_.find(e.request.id);
  if (it == outstanding_.end() || it->second.done) return;
  if (dispatch_to_fleet(e.request, /*first=*/false) && elog_on()) {
    obs::Json rec = obs::Json::object();
    rec.set("ev", "fleet_retry");
    rec.set("cycle", now_);
    rec.set("chip", std::uint64_t{it->second.last_chip});
    rec.set("trace", e.request.id);
    rec.set("tenant", std::uint64_t{e.request.tenant});
    rec.set("attempt", std::uint64_t{it->second.attempts});
    event_log_->log(std::move(rec));
  }
}

void FleetRuntime::handle_hedge_check(const Event& e) {
  const auto it = outstanding_.find(e.dispatch_id);
  if (it == outstanding_.end()) return;  // settled before the check
  Outstanding& ent = it->second;
  if (ent.done || ent.live != 1) return;
  // Duplicate onto a *different* up chip; first outcome wins.
  auto candidates = candidates_for(ent.original.degree);
  std::erase_if(candidates,
                [&](const ChipView& v) { return v.id == ent.last_chip; });
  if (candidates.empty()) return;
  const std::uint32_t target = router_->pick(ent.original, candidates);
  ent.live += 1;
  ent.last_dispatch_cycle = now_;
  chips_[target]->inject(ent.original, now_);
  report_.hedges_launched += 1;
  if (elog_on()) {
    obs::Json rec = obs::Json::object();
    rec.set("ev", "fleet_hedge");
    rec.set("cycle", now_);
    rec.set("chip", std::uint64_t{target});
    rec.set("trace", ent.original.id);
    rec.set("tenant", std::uint64_t{ent.original.tenant});
    event_log_->log(std::move(rec));
  }
}

void FleetRuntime::handle_fleet_health() {
  health_armed_ = false;
  for (std::uint32_t i = 0; i < cfg_.chips; ++i) {
    ChipState& cs = states_[i];
    if (cs.state != ChipState::State::kUp) continue;
    if (cs.outcomes >= cfg_.health_min_samples &&
        static_cast<double>(cs.failures) >
            cfg_.fail_rate_threshold * static_cast<double>(cs.outcomes)) {
      drain_chip(i, "health");
    }
    cs.outcomes = 0;
    cs.failures = 0;
  }
  // Keep ticking while anything can still change: arrivals due, work in
  // flight, or a chip still out of the fleet (its rejoin re-shards).
  // Queued-but-starved work alone is not liveness — ticking for it would
  // spin forever; seal() surfaces it as fleet `queued` instead.
  bool any_out = false;
  for (const ChipState& cs : states_) {
    any_out = any_out || cs.state != ChipState::State::kUp;
  }
  std::size_t busy = 0;
  for (const auto& chip : chips_) busy += chip->in_flight_count();
  if (now_ < horizon_ || any_out || busy > 0) arm_health_tick();
}

void FleetRuntime::handle_fleet_chaos(const Event& e) {
  if (e.dispatch_id > 0) {
    // The deterministic kill hook: forced crash, no RNG involved.
    const auto chip = static_cast<std::uint32_t>(e.dispatch_id - 1);
    if (states_[chip].state == ChipState::State::kUp) crash_chip(chip);
    return;
  }
  // Draw the episode shape unconditionally so the RNG stream is stable
  // regardless of how many chips happen to be up.
  const double which = uniform_unit(chaos_rng_);
  const double kind = uniform_unit(chaos_rng_);
  const std::uint64_t dur = exponential_cycles(
      chaos_rng_, cfg_.chaos.mean_duration_us * cfg_.chip.cycles_per_us());
  std::vector<std::uint32_t> up;
  for (std::uint32_t i = 0; i < cfg_.chips; ++i) {
    if (states_[i].state == ChipState::State::kUp) up.push_back(i);
  }
  if (!up.empty()) {
    const std::uint32_t chip =
        up[static_cast<std::size_t>(which * static_cast<double>(up.size())) %
           up.size()];
    if (kind < cfg_.chaos.crash_fraction) {
      crash_chip(chip);
    } else if (kind < cfg_.chaos.crash_fraction + cfg_.chaos.brownout_fraction) {
      chips_[chip]->slow_down(now_ + dur, cfg_.chaos.slow_factor);
      report_.brownouts += 1;
      log_control("chip_brownout", chip);
    } else {
      chips_[chip]->corrupt_window(now_ + dur);
      report_.corruption_storms += 1;
      log_control("chip_corruption_storm", chip);
    }
  }
  arm_chaos_episode();
}

void FleetRuntime::drain_chip(std::uint32_t chip, const char*) {
  states_[chip].state = ChipState::State::kScrubbing;
  report_.drains += 1;
  log_control("chip_drain", chip);
  std::vector<Request> work = chips_[chip]->extract_pending();
  report_.migrated += work.size();
  rebuild_shard_map(chip);
  redispatch_all(std::move(work));
  schedule_rejoin(chip);
}

void FleetRuntime::crash_chip(std::uint32_t chip) {
  states_[chip].state = ChipState::State::kDown;
  report_.crashes += 1;
  log_control("chip_crash", chip);
  std::vector<Request> work = chips_[chip]->crash_chip();
  rebuild_shard_map(chip);
  redispatch_all(std::move(work));
  schedule_rejoin(chip);
}

void FleetRuntime::redispatch_all(std::vector<Request> work) {
  // Reclaimed submissions report no outcome; settle the live count here
  // and re-route (budget-free: migration is the fleet's fault, not the
  // request's). A request whose hedge twin still runs elsewhere needs no
  // replacement — the twin covers it.
  for (Request& r : work) {
    const auto it = outstanding_.find(r.id);
    if (it == outstanding_.end()) continue;
    Outstanding& ent = it->second;
    if (ent.live > 0) ent.live -= 1;
    if (ent.done) {
      if (ent.live == 0) outstanding_.erase(it);
      continue;
    }
    if (ent.live > 0) continue;  // twin still running
    if (dispatch_to_fleet(r, /*first=*/false)) {
      report_.redispatched += 1;
      if (elog_on()) {
        obs::Json rec = obs::Json::object();
        rec.set("ev", "migrate");
        rec.set("cycle", now_);
        rec.set("chip", std::uint64_t{ent.last_chip});
        rec.set("trace", r.id);
        rec.set("tenant", std::uint64_t{r.tenant});
        event_log_->log(std::move(rec));
      }
    }
  }
}

void FleetRuntime::schedule_rejoin(std::uint32_t chip) {
  Event e;
  e.cycle = now_ + std::max<std::uint64_t>(
                       1, static_cast<std::uint64_t>(
                              cfg_.scrub_us * cfg_.chip.cycles_per_us()));
  e.kind = EventKind::kFleetChipUp;
  e.dispatch_id = chip;
  fleet_q_.push(std::move(e));
}

void FleetRuntime::handle_chip_up(const Event& e) {
  const auto chip = static_cast<std::uint32_t>(e.dispatch_id);
  if (states_[chip].state == ChipState::State::kDown) {
    chips_[chip]->revive(now_);
  }
  states_[chip].state = ChipState::State::kUp;
  states_[chip].outcomes = 0;
  states_[chip].failures = 0;
  report_.rejoins += 1;
  log_control("chip_rejoin", chip);
  rebuild_shard_map(chip);
  // Anything parked while every candidate was out gets another chance.
  std::vector<Request> stranded;
  stranded.swap(parked_);
  for (Request& r : stranded) {
    const auto it = outstanding_.find(r.id);
    if (it == outstanding_.end() || it->second.done) continue;
    if (dispatch_to_fleet(r, /*first=*/false)) report_.redispatched += 1;
  }
}

void FleetRuntime::rebuild_shard_map(std::uint32_t trigger_chip) {
  std::vector<std::uint32_t> up;
  for (std::uint32_t i = 0; i < cfg_.chips; ++i) {
    if (states_[i].state == ChipState::State::kUp) up.push_back(i);
  }
  for (std::size_t c = 0; c < shard_map_.size(); ++c) {
    shard_map_[c].clear();
    if (up.empty()) continue;
    const std::size_t width =
        std::min<std::size_t>(cfg_.replicas, up.size());
    // Class-staggered placement: primaries rotate across the fleet so no
    // chip is primary for every class; replicas are the next chips round
    // the ring.
    const std::size_t start = c % up.size();
    for (std::size_t k = 0; k < width; ++k) {
      shard_map_[c].push_back(up[(start + k) % up.size()]);
    }
  }
  report_.reshards += 1;
  log_control("reshard", trigger_chip);
}

void FleetRuntime::arm_health_tick() {
  if (health_armed_) return;
  health_armed_ = true;
  Event e;
  e.cycle = now_ + std::max<std::uint64_t>(
                       1, static_cast<std::uint64_t>(
                              cfg_.health_period_us *
                              cfg_.chip.cycles_per_us()));
  e.kind = EventKind::kFleetHealth;
  fleet_q_.push(std::move(e));
}

void FleetRuntime::arm_chaos_episode() {
  // Like the per-lane chaos process: episodes strike only inside the
  // arrival horizon so the drain phase terminates fault-free.
  const std::uint64_t gap = exponential_cycles(
      chaos_rng_, cfg_.chaos.mean_interval_us * cfg_.chip.cycles_per_us());
  const std::uint64_t at = now_ + gap;
  if (at > horizon_) return;
  Event e;
  e.cycle = at;
  e.kind = EventKind::kFleetChaos;
  fleet_q_.push(std::move(e));
}

std::uint64_t FleetRuntime::hedge_delay_cycles() const {
  if (cfg_.hedge_delay_us > 0) {
    return static_cast<std::uint64_t>(cfg_.hedge_delay_us *
                                      cfg_.chip.cycles_per_us());
  }
  if (service_hist_.count() < cfg_.hedge_min_samples) return 0;
  return service_hist_.quantile(0.99);
}

void FleetRuntime::log_control(const char* ev, std::uint32_t chip) {
  if (!elog_on()) return;
  obs::Json rec = obs::Json::object();
  rec.set("ev", ev);
  rec.set("cycle", now_);
  rec.set("chip", std::uint64_t{chip});
  event_log_->log(std::move(rec));
}

}  // namespace cryptopim::runtime
