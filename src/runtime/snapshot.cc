#include "runtime/snapshot.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/crc32.h"

namespace cryptopim::runtime {

namespace fs = std::filesystem;

namespace {

std::string crc_hex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return std::string(buf);
}

}  // namespace

std::string write_snapshot(const std::string& dir, std::uint64_t index,
                           const obs::Json& state, std::uint32_t* state_crc) {
  const std::string state_text = state.dump();
  const std::uint32_t crc = obs::crc32(state_text);
  if (state_crc != nullptr) *state_crc = crc;

  obs::Json doc = obs::Json::object();
  doc.set("schema", "snapshot/1");
  doc.set("index", index);
  doc.set("crc", crc_hex(crc));
  doc.set("state", state);

  const std::string base = "snap-" + std::to_string(index) + ".json";
  const fs::path final_path = fs::path(dir) / base;
  const fs::path tmp_path = fs::path(dir) / (base + ".tmp");
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("snapshot: cannot write " + tmp_path.string());
    }
    out << doc.dump() << '\n';
    out.flush();
    if (!out) {
      throw std::runtime_error("snapshot: write failed " + tmp_path.string());
    }
  }
  fs::rename(tmp_path, final_path);
  return base;
}

SnapshotLoadResult load_snapshot(const std::string& path) {
  SnapshotLoadResult res;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    res.error = "cannot open " + path;
    return res;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const obs::JsonParseResult parsed = obs::parse_json(text);
  if (!parsed.ok) {
    res.error = path + ": " + parsed.error;
    return res;
  }
  const obs::Json& doc = parsed.value;
  if (!doc.is_object() || !doc.contains("schema") ||
      doc.at("schema").as_string() != "snapshot/1") {
    res.error = path + ": not a snapshot/1 document";
    return res;
  }
  if (!doc.contains("index") || !doc.contains("crc") ||
      !doc.contains("state") || !doc.at("state").is_object()) {
    res.error = path + ": missing index/crc/state";
    return res;
  }
  const std::string& crc_str = doc.at("crc").as_string();
  if (crc_str.size() != 8) {
    res.error = path + ": malformed crc";
    return res;
  }
  std::uint32_t crc = 0;
  for (const char c : crc_str) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else { res.error = path + ": malformed crc"; return res; }
    crc = (crc << 4) | static_cast<std::uint32_t>(digit);
  }
  res.ok = true;
  res.index = doc.at("index").as_u64();
  res.crc = crc;
  res.state = doc.at("state");
  return res;
}

SnapshotLoadResult load_latest_snapshot(const std::string& dir) {
  SnapshotLoadResult best;
  best.error = "no valid snapshot in " + dir;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) != 0) continue;
    if (name.size() < 11 || name.substr(name.size() - 5) != ".json") continue;
    SnapshotLoadResult cand = load_snapshot(entry.path().string());
    if (cand.ok && (!best.ok || cand.index > best.index)) {
      best = std::move(cand);
    }
  }
  if (ec) best.error = "cannot scan " + dir + ": " + ec.message();
  return best;
}

bool snapshot_state_matches(const obs::Json& state,
                            std::uint32_t expected_crc) {
  return obs::crc32(state.dump()) == expected_crc;
}

}  // namespace cryptopim::runtime
