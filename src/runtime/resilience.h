// Overload- and wear-resilience primitives for the serving runtime.
//
// PR 4's runtime fails ungracefully at the edges: a saturated lane
// queues forever, a slow or corrupting lane stalls its requests with no
// timeout, and endurance wear only surfaces *after* a multiply has
// already produced a wrong result. This module supplies the control
// loops a production service needs on a wearing ReRAM substrate:
//
//   * RetryBudget — a per-tenant token bucket (tokens accrue per
//     admitted request, one token per retry) so detected-bad results and
//     lane teardowns are retried with capped exponential backoff but can
//     never amplify into a retry storm;
//   * CircuitBreaker — a per-lane closed -> open -> half-open machine:
//     K consecutive failures stop dispatch to the lane, a timed probe
//     re-admits it (success closes, failure re-opens);
//   * CoDelShedder — CoDel-style load shedding on the admission queue:
//     when the *minimum* queueing sojourn stays above target for a full
//     interval, the head request is dropped and the drop cadence
//     tightens by the 1/sqrt(count) control law, keeping queue delay
//     bounded instead of letting the backlog run away;
//   * HealthMonitor — consumes the reliability layer's FaultModel wear
//     counters plus per-lane verification outcomes to score lane health,
//     requests background scrub passes for unhealthy-but-idle lanes, and
//     proactively drains/remaps a lane approaching its wear limit
//     *before* it starts corrupting traffic;
//   * ChaosConfig — a seeded generator of lane fault episodes (slowdowns
//     and corrupting windows) composed with live traffic, so the whole
//     stack can be exercised and asserted on deterministically
//     (`serve --chaos`, bench_chaos_serving).
//
// Everything is deterministic: chaos randomness flows from one seeded
// Xoshiro256, every threshold decision is pure arithmetic on the event
// clock, and the hedge delay is derived from the pow2 service histogram.
// All features default OFF; a default-constructed ResilienceConfig
// leaves the runtime's event sequence bit-identical to the pre-resilience
// behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "obs/json.h"
#include "reliability/fault_model.h"

namespace cryptopim::runtime {

/// Seeded lane fault-episode injection composed with live traffic.
struct ChaosConfig {
  bool enabled = false;
  std::uint64_t seed = 1;
  /// Mean interval between episodes (exponential), simulated us.
  double mean_interval_us = 150.0;
  /// Mean episode duration (exponential), simulated us.
  double mean_duration_us = 60.0;
  /// Fraction of episodes that are slowdowns; the rest corrupt results.
  double slow_fraction = 0.5;
  /// Completion-latency multiplier while a slow episode is active.
  double slow_factor = 4.0;
};

struct ResilienceConfig {
  // -- deadlines --------------------------------------------------------------
  /// Fixed per-request deadline: arrival + deadline_us (overrides the
  /// slack-derived deadline when > 0). Enables admission feasibility
  /// rejection and queued-timeout cancellation.
  double deadline_us = 0.0;

  // -- retries ----------------------------------------------------------------
  /// Detected-bad results are re-queued up to this many times (0 = off).
  unsigned max_retries = 0;
  /// Tokens a tenant earns per admitted request; one retry costs 1.0.
  double retry_budget_ratio = 0.1;
  /// First retry backoff; doubles per attempt, capped below.
  std::uint64_t retry_backoff_cycles = 2048;
  std::uint64_t retry_backoff_cap_cycles = 1 << 16;

  // -- hedging ----------------------------------------------------------------
  /// Duplicate a straggler onto a second lane, first result wins.
  bool hedge = false;
  /// Hedge delay in us; 0 derives it from the p99 of observed service.
  double hedge_delay_us = 0.0;
  /// Observed completions before a p99-derived delay is trusted.
  std::uint64_t hedge_min_samples = 32;

  // -- load shedding ----------------------------------------------------------
  /// CoDel target queueing sojourn in us (0 = shedding off).
  double codel_target_us = 0.0;
  double codel_interval_us = 100.0;

  // -- circuit breaker --------------------------------------------------------
  /// Open a lane's breaker after K consecutive failures (0 = off).
  unsigned breaker_k = 0;
  /// Cycles a breaker stays open before the half-open probe.
  std::uint64_t breaker_open_cycles = 1 << 16;

  // -- health / wear ----------------------------------------------------------
  /// Dispatches a lane survives before wearing out (0 = wear off).
  /// Backed by reliability::FaultModel wear counters.
  std::uint64_t wear_limit = 0;
  /// Drain and remap at this fraction of the wear limit.
  double drain_fraction = 0.9;
  /// Health score below which an idle lane is scrubbed.
  double scrub_threshold = 0.7;
  std::uint64_t scrub_cycles = 4096;
  /// Health-monitor tick period (0 = monitor off unless wear/chaos on).
  std::uint64_t health_period_cycles = 1 << 15;

  // -- chaos ------------------------------------------------------------------
  ChaosConfig chaos;
  /// Model the layered detection of §10 (write-verify / parity /
  /// Freivalds) as catching every chaos-corrupted result. Turning this
  /// off delivers corrupt results unverified (wrong_accepted counts
  /// them) — it exists to prove the checks are load-bearing.
  bool chaos_detect = true;

  /// Any feature on? When false the runtime takes the legacy paths and
  /// produces bit-identical reports to a build without this module.
  bool enabled() const noexcept {
    return deadline_us > 0 || max_retries > 0 || hedge ||
           codel_target_us > 0 || breaker_k > 0 || wear_limit > 0 ||
           chaos.enabled;
  }

  /// The `serve --chaos` preset: fault episodes plus the full mitigation
  /// stack (retries, breaker, hedging, health monitoring, wear budget).
  static ResilienceConfig chaos_preset(std::uint64_t seed);
};

/// Per-tenant retry token bucket: `ratio` tokens accrue per admitted
/// request (capped), a retry spends 1.0. A tenant that keeps failing
/// exhausts its bucket and its retries are dropped instead of amplified.
/// Buckets start with a small cold-start reserve so the first failures
/// of a run can retry before any accrual.
class RetryBudget {
 public:
  RetryBudget(std::uint32_t tenants, double ratio, double cap = 64.0);

  void on_admitted(std::uint32_t tenant);
  /// Spend one retry token; false when the bucket is dry.
  bool try_spend(std::uint32_t tenant);
  double tokens(std::uint32_t tenant) const;

 private:
  std::vector<double> tokens_;
  double ratio_;
  double cap_;
};

/// Per-lane circuit breaker: closed -> (K consecutive failures) -> open
/// -> (open period elapses) -> half-open probe -> closed on success,
/// re-open on failure.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() = default;
  CircuitBreaker(unsigned k, std::uint64_t open_cycles)
      : k_(k), open_cycles_(open_cycles) {}

  /// May the lane accept a request at `now`? Side-effect free so lane
  /// selection can filter on it; the open -> half-open transition
  /// happens in note_dispatch on the lane actually chosen.
  bool can_accept(std::uint64_t now) const;
  /// The chosen lane is being dispatched to. Returns true when this
  /// dispatch is the half-open probe (for stats).
  bool note_dispatch(std::uint64_t now);
  /// Record a request outcome. Returns true when the breaker *opened*
  /// on this failure (for stats/tracing).
  bool record(bool success, std::uint64_t now);
  /// The in-flight dispatch was cancelled without an outcome (hedge
  /// loser, lane teardown). If it was the half-open probe the breaker
  /// reverts to open with a fresh window — otherwise the lane would
  /// wedge half-open with a probe that never reports, refusing work
  /// forever.
  void note_cancelled(std::uint64_t now);

  State state() const noexcept { return state_; }
  unsigned consecutive_failures() const noexcept { return failures_; }
  bool enabled() const noexcept { return k_ > 0; }
  /// While open: when the half-open probe becomes possible.
  std::uint64_t open_until() const noexcept { return open_until_; }

 private:
  unsigned k_ = 0;  ///< 0 = breaker disabled, always allows
  std::uint64_t open_cycles_ = 0;
  State state_ = State::kClosed;
  unsigned failures_ = 0;
  std::uint64_t open_until_ = 0;
  bool probe_in_flight_ = false;
};

/// CoDel-style shedder on the admission queue. Fed the queueing sojourn
/// of every dequeued request; answers "drop this one?" per the CoDel
/// control law (min-sojourn above target for a full interval opens a
/// dropping phase whose cadence tightens by 1/sqrt(drop count)).
class CoDelShedder {
 public:
  CoDelShedder() = default;
  CoDelShedder(std::uint64_t target_cycles, std::uint64_t interval_cycles)
      : target_(target_cycles), interval_(interval_cycles) {}

  bool enabled() const noexcept { return target_ > 0; }
  /// `sojourn` = now - arrival of the request about to dispatch.
  bool should_drop(std::uint64_t sojourn, std::uint64_t now);

 private:
  std::uint64_t next_drop_interval() const;

  std::uint64_t target_ = 0;
  std::uint64_t interval_ = 0;
  std::uint64_t first_above_ = 0;  ///< 0 = sojourn currently below target
  bool dropping_ = false;
  std::uint64_t drop_next_ = 0;
  std::uint32_t drop_count_ = 0;
};

/// Per-lane health scoring and proactive wear management.
///
/// Wear is accounted through the reliability layer's FaultModel — each
/// dispatch writes the lane's crossbars once, note_wear()'d against the
/// configured endurance limit — so the serving stack and the
/// device-level campaigns share one wear bookkeeping. A lane that
/// crosses the limit grows a real (modeled) corruption; the monitor's
/// job is to drain and remap it at `drain_fraction` of the limit, before
/// that happens. Verification outcomes feed an exponentially-decayed
/// failure score; scrubs reset a lane's transient state.
class HealthMonitor {
 public:
  HealthMonitor(const ResilienceConfig& cfg, std::uint64_t seed);

  /// Account one dispatch on `lane`. Returns true when the lane *crossed
  /// its wear limit* on this write — it is now corrupting traffic (the
  /// failure mode proactive drains exist to prevent).
  bool note_dispatch(std::size_t lane);
  void record_verify(std::size_t lane, bool ok);
  /// Lane remapped onto fresh banks: wear restarts from zero.
  void on_remap(std::size_t lane);
  /// Scrub finished: transient failure history is forgiven.
  void on_scrub(std::size_t lane);

  /// Wear of `lane` as a fraction of the limit (0 when wear is off).
  double wear_fraction(std::size_t lane) const;
  bool wants_drain(std::size_t lane) const;
  /// Health in [0, 1]: 1 - wear burden - decayed failure burden.
  double score(std::size_t lane) const;
  bool wants_scrub(std::size_t lane) const;

  std::uint64_t wear_writes(std::size_t lane) const;

 private:
  struct LaneHealth {
    std::uint32_t epoch = 0;      ///< bumped per remap (fresh FaultModel id)
    double failure_score = 0.0;   ///< decayed count of recent failures
    std::uint64_t verifies = 0;
  };
  std::uint32_t block_id(std::size_t lane) const;
  LaneHealth& state(std::size_t lane);

  ResilienceConfig cfg_;
  reliability::FaultModel wear_model_;
  std::vector<LaneHealth> lanes_;
};

/// Resilience ledger, embedded in ServingReport when any feature is on.
struct ResilienceStats {
  std::uint64_t rejected_deadline = 0;  ///< infeasible at admission
  std::uint64_t timed_out = 0;          ///< cancelled in queue past deadline
  std::uint64_t shed = 0;               ///< CoDel drops at dispatch

  std::uint64_t retries = 0;             ///< re-queued after a bad result
  std::uint64_t retry_budget_denied = 0; ///< bucket dry: retry dropped
  std::uint64_t failed = 0;              ///< delivered as error, not wrong

  std::uint64_t hedges = 0;          ///< duplicates launched
  std::uint64_t hedge_wins = 0;      ///< hedge finished before the original
  std::uint64_t hedge_cancelled = 0; ///< losers cancelled

  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_probes = 0;
  std::uint64_t breaker_closes = 0;

  std::uint64_t scrubs = 0;
  std::uint64_t proactive_remaps = 0;  ///< wear drains that beat the limit
  std::uint64_t wear_corruptions = 0;  ///< lanes that wore out in service

  std::uint64_t chaos_episodes = 0;
  std::uint64_t detected_corruptions = 0;  ///< caught by the layered checks
  std::uint64_t wrong_accepted = 0;        ///< corrupt result delivered (!)

  obs::Json to_json() const;
  /// Mirror into the global registry as cryptopim.resilience.* counters.
  void publish() const;
};

}  // namespace cryptopim::runtime
