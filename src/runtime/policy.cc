#include "runtime/policy.h"

#include <limits>

namespace cryptopim::runtime {

namespace {

/// Stable final tie-break: older request first, then lower id.
bool older(const Request& a, const Request& b) noexcept {
  if (a.arrival_cycle != b.arrival_cycle) {
    return a.arrival_cycle < b.arrival_cycle;
  }
  return a.id < b.id;
}

/// Shared scan: return the eligible index minimising `better`.
template <typename Better>
std::size_t scan(std::span<const Request> queue, const std::vector<bool>& eligible,
                 Better&& better) {
  std::size_t best = Policy::npos;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (!eligible[i]) continue;
    if (best == Policy::npos || better(queue[i], queue[best])) best = i;
  }
  return best;
}

class FifoPolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "fifo"; }
  std::size_t pick(std::span<const Request> queue,
                   const std::vector<bool>& eligible,
                   const PolicyContext&) const override {
    return scan(queue, eligible,
                [](const Request& a, const Request& b) { return older(a, b); });
  }
};

class SjfPolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "sjf"; }
  std::size_t pick(std::span<const Request> queue,
                   const std::vector<bool>& eligible,
                   const PolicyContext&) const override {
    return scan(queue, eligible, [](const Request& a, const Request& b) {
      if (a.service_cycles != b.service_cycles) {
        return a.service_cycles < b.service_cycles;
      }
      return older(a, b);
    });
  }
};

class EdfPolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "edf"; }
  std::size_t pick(std::span<const Request> queue,
                   const std::vector<bool>& eligible,
                   const PolicyContext&) const override {
    return scan(queue, eligible, [](const Request& a, const Request& b) {
      // deadline 0 = none: sorts after every real deadline.
      const std::uint64_t da = a.deadline_cycle
                                   ? a.deadline_cycle
                                   : std::numeric_limits<std::uint64_t>::max();
      const std::uint64_t db = b.deadline_cycle
                                   ? b.deadline_cycle
                                   : std::numeric_limits<std::uint64_t>::max();
      if (da != db) return da < db;
      return older(a, b);
    });
  }
};

class WfqPolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "wfq"; }
  std::size_t pick(std::span<const Request> queue,
                   const std::vector<bool>& eligible,
                   const PolicyContext& ctx) const override {
    const auto usage = [&ctx](const Request& r) {
      return r.tenant < ctx.tenant_usage.size() ? ctx.tenant_usage[r.tenant]
                                                : 0.0;
    };
    return scan(queue, eligible,
                [&usage](const Request& a, const Request& b) {
                  const double ua = usage(a), ub = usage(b);
                  if (ua != ub) return ua < ub;
                  return older(a, b);
                });
  }
};

}  // namespace

std::unique_ptr<Policy> make_policy(std::string_view name) {
  if (name == "fifo") return std::make_unique<FifoPolicy>();
  if (name == "sjf") return std::make_unique<SjfPolicy>();
  if (name == "edf") return std::make_unique<EdfPolicy>();
  if (name == "wfq") return std::make_unique<WfqPolicy>();
  return nullptr;
}

const std::vector<std::string>& policy_names() {
  static const std::vector<std::string> names = {"fifo", "sjf", "edf", "wfq"};
  return names;
}

}  // namespace cryptopim::runtime
