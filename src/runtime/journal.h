// Write-ahead journal for durable serving (schema "journal/1").
//
// The serving runtime's event clock is a strict total order: a fixed
// (config, seed) re-executes bit-identically. The journal exploits that
// for crash recovery *by deterministic replay*: instead of serializing
// the runtime's full machine state, it records the externally-visible
// commitments — every admitted request and every terminal outcome — and
// recovery re-executes the run from its origin, *matching* each
// commitment against the journaled record at the same global event
// index. A record that matches was already delivered before the crash
// (exactly-once: it is not re-appended and a fleet would not re-ack it);
// the first record past the journal's valid prefix flips the journal
// back to live append mode and the run simply continues. Snapshots
// (runtime/snapshot.h) ride the same mechanism as periodic cross-checks.
//
// On-disk format — one CRC-framed record per line:
//
//   <crc32 hex8> <compact JSON payload>\n
//
// with the CRC taken over the payload bytes. Record types ("t" field):
//   hdr   — first line; schema tag, run mode, chip id, workload seed and
//           a CRC fingerprint of the full serialized config. `--recover`
//           revalidates the fingerprint, so recovering with drifted
//           flags fails loudly instead of replaying garbage.
//   admit — an admission commitment: global event index, cycle, and the
//           request's full field set.
//   out   — a terminal outcome commitment (index, cycle, id, fate).
//   snap  — a snapshot was persisted at this index (file + state CRC).
//   seal  — clean end of run, carrying the final conservation counters.
//
// Every record is flushed to the OS as it is written (the durability
// model is process death — SIGKILL, OOM, a panic — not media failure),
// so after a crash the journal is a valid prefix plus at most one torn
// final record. Journal::load tolerates exactly that: an unparseable or
// CRC-failing *last* line is dropped (torn tail), while a bad record
// followed by valid ones is rejected as corruption.
//
// Payloads are built by hand (not via obs::Json) so 64-bit fields like
// data_seed round-trip exactly — obs::Json stores numbers as double —
// and so replay matching can compare raw payload strings byte-for-byte.
#pragma once

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "runtime/request.h"

namespace cryptopim::obs {
class Json;
}

namespace cryptopim::runtime {

enum class Outcome : std::uint8_t;
struct ServingConfig;
struct FleetConfig;

/// Stable name of a terminal outcome ("completed", "rejected", ...).
const char* outcome_name(Outcome o);

/// Full serialization of the determinism-relevant config (everything the
/// replay needs to re-execute the run). Fingerprinted into the journal
/// header; also usable for offline inspection.
obs::Json serving_config_to_json(const ServingConfig& cfg);
obs::Json fleet_config_to_json(const FleetConfig& cfg);

/// Durability knobs threaded from the CLI into the runtimes.
struct DurabilityOptions {
  /// Journal/snapshot directory; empty = durability off.
  std::string dir;
  /// Persist a snapshot every N global events (0 = journal only).
  std::uint64_t snapshot_every = 0;
  /// Recover: load the journal, replay-match its prefix, resume live.
  bool recover = false;
  /// Crash-campaign hook: raise SIGKILL (a real, uncatchable kill — no
  /// destructors, no flushes) before processing this global event index.
  /// 0 = off.
  std::uint64_t kill_at_event = 0;

  bool enabled() const noexcept { return !dir.empty(); }
};

class Journal {
 public:
  /// Result of reading a journal file back.
  struct LoadResult {
    bool ok = false;        ///< false: mid-file corruption / no header
    std::string error;
    std::vector<std::string> payloads;  ///< valid records, in order
    std::uint64_t valid_bytes = 0;      ///< length of the valid prefix
    bool torn_tail = false;             ///< a partial final record was dropped
    bool sealed = false;                ///< last record is a seal
  };
  /// Parses `path`. A missing or empty file is ok with zero records.
  static LoadResult load(const std::string& path);

  Journal() = default;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Live mode (`recover` false): truncate/create `path` and write the
  /// header record. Recovery mode: load `path`, verify its header equals
  /// `header_payload` (config-fingerprint check), truncate any torn
  /// tail, and start the replay cursor past the header. Throws
  /// std::runtime_error on corruption or a header mismatch.
  void open(const std::string& path, const std::string& header_payload,
            bool recover);

  /// Record one commitment. While replaying, the payload must equal the
  /// journaled record at the cursor (byte-for-byte; a mismatch throws —
  /// the replay diverged, i.e. config drift or lost determinism); past
  /// the journal end it is appended and flushed.
  void record(const std::string& payload);

  bool active() const noexcept { return !path_.empty(); }
  /// Still matching against pre-crash records?
  bool replaying() const noexcept { return cursor_ < loaded_.size(); }
  bool sealed_on_load() const noexcept { return sealed_; }
  bool torn_tail() const noexcept { return torn_; }
  std::uint64_t matched() const noexcept { return matched_; }
  std::uint64_t appended() const noexcept { return appended_; }
  const std::string& path() const noexcept { return path_; }

  // -- payload builders (deterministic, hand-formatted JSON) ------------------
  static std::string header_payload(const char* mode, std::uint32_t chip_id,
                                    std::uint64_t seed,
                                    const obs::Json& config);
  static std::string admit_payload(std::uint64_t index, std::uint64_t cycle,
                                   const Request& r);
  static std::string outcome_payload(std::uint64_t index, std::uint64_t cycle,
                                     std::uint64_t id, Outcome o);
  static std::string snap_payload(std::uint64_t index, const std::string& file,
                                  std::uint32_t state_crc);
  static std::string seal_payload(
      std::uint64_t index, std::uint64_t cycle,
      std::initializer_list<std::pair<const char*, std::uint64_t>> counters);

 private:
  std::ofstream out_;
  std::string path_;
  std::vector<std::string> loaded_;
  std::size_t cursor_ = 0;
  std::uint64_t matched_ = 0;
  std::uint64_t appended_ = 0;
  bool torn_ = false;
  bool sealed_ = false;
};

}  // namespace cryptopim::runtime
