// Pluggable execution backends: one interface, three fidelity tiers.
//
// Every way this repo can "execute" a negacyclic multiplication now sits
// behind `ExecutionBackend`:
//
//  * GateLevelBackend — the golden tier. Wraps CryptoPimSimulator
//    (single multiplies) and PipelinedSimulator (batches): every
//    arithmetic step runs in simulated crossbars, cycle accounting is
//    measured, optional fault injection exercises the reliability
//    stack. Slow (~ms per multiply) but authoritative.
//  * WordLevelBackend — functional results at host speed from the
//    flat-word `ntt::WordNttEngine` (Shoup/Barrett precompute, lazy
//    [0, 2q) reduction), with cycle/energy accounting attached from the
//    analytic model. Bit-exact vs the gate tier — proven by
//    tests/test_backend_diff.cc — at ~10^4x the wall-clock rate.
//  * AnalyticBackend — accounting only (model/latency.h +
//    model/performance.h); `functional()` is false and products are
//    empty. For capacity studies where results are never inspected.
//
// The word and analytic tiers share one accounting source
// (`analytic_accounting`), so switching between them changes host
// wall-clock only, never the simulated numbers. Accounting is keyed by
// degree through the paper's parameterisation; a custom (n, q) pair
// executes functionally with the paper accounting for its degree.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ntt/params.h"
#include "ntt/poly.h"
#include "reliability/manager.h"

namespace cryptopim::runtime {

/// One executed multiplication: the functional product (empty when the
/// backend is not functional) plus the backend's cycle/energy claim.
struct BackendResult {
  ntt::Poly product;
  std::uint64_t sim_cycles = 0;  ///< simulated crossbar cycles, one multiply
  double latency_us = 0;         ///< simulated latency
  double energy_uj = 0;          ///< simulated energy
};

/// The analytic tier's accounting for one non-pipelined multiplication
/// at `degree` (paper parameterisation). Shared by AnalyticBackend and
/// WordLevelBackend so their simulated numbers agree exactly.
BackendResult analytic_accounting(std::uint32_t degree);

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Stable identifier: "gate", "word" or "analytic". Emitted in the
  /// serving report header and accepted by `serve --backend`.
  virtual std::string_view name() const noexcept = 0;

  /// Whether execute() returns real coefficient vectors. The analytic
  /// tier returns accounting only.
  virtual bool functional() const noexcept = 0;

  /// c = a * b over Z_q[x]/(x^n + 1) for the given parameter set.
  /// Engines/simulators are cached per (n, q) inside the backend.
  virtual BackendResult execute(const ntt::NttParams& params,
                                const ntt::Poly& a, const ntt::Poly& b) = 0;

  /// Batch execution. The gate tier streams the batch through the
  /// pipelined simulator (beat-level overlap); the default loops over
  /// execute().
  virtual std::vector<BackendResult> execute_batch(
      const ntt::NttParams& params,
      const std::vector<std::pair<ntt::Poly, ntt::Poly>>& pairs);
};

/// Golden tier. With `set_fault_injection`, every cached simulator gets
/// a ReliabilityManager (faults planted, write-verify, Freivalds,
/// retry) — results stay correct, cycle accounting grows by the repair
/// overhead.
class GateLevelBackend final : public ExecutionBackend {
 public:
  GateLevelBackend();
  ~GateLevelBackend() override;

  std::string_view name() const noexcept override { return "gate"; }
  bool functional() const noexcept override { return true; }
  BackendResult execute(const ntt::NttParams& params, const ntt::Poly& a,
                        const ntt::Poly& b) override;
  std::vector<BackendResult> execute_batch(
      const ntt::NttParams& params,
      const std::vector<std::pair<ntt::Poly, ntt::Poly>>& pairs) override;

  /// Enable fault injection for every simulator created after this call.
  void set_fault_injection(const reliability::ReliabilityConfig& rc);

 private:
  struct Entry;
  Entry& entry_for(const ntt::NttParams& params);
  std::vector<std::unique_ptr<Entry>> cache_;
  std::unique_ptr<reliability::ReliabilityConfig> fault_cfg_;
};

/// Host-speed functional tier with analytic accounting.
class WordLevelBackend final : public ExecutionBackend {
 public:
  WordLevelBackend();
  ~WordLevelBackend() override;

  std::string_view name() const noexcept override { return "word"; }
  bool functional() const noexcept override { return true; }
  BackendResult execute(const ntt::NttParams& params, const ntt::Poly& a,
                        const ntt::Poly& b) override;

 private:
  struct Entry;
  std::vector<std::unique_ptr<Entry>> cache_;
};

/// Accounting-only tier.
class AnalyticBackend final : public ExecutionBackend {
 public:
  std::string_view name() const noexcept override { return "analytic"; }
  bool functional() const noexcept override { return false; }
  BackendResult execute(const ntt::NttParams& params, const ntt::Poly& a,
                        const ntt::Poly& b) override;
};

/// The accepted `--backend` values: {"gate", "word", "analytic"}.
const std::vector<std::string>& backend_names();

/// Factory; returns nullptr for an unknown name (callers turn that into
/// their own usage error).
std::unique_ptr<ExecutionBackend> make_backend(std::string_view name);

}  // namespace cryptopim::runtime
