#include "runtime/journal.h"

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "obs/crc32.h"
#include "obs/json.h"
#include "runtime/fleet.h"
#include "runtime/serving.h"

namespace cryptopim::runtime {

namespace {

void append_kv(std::string& s, const char* key, std::uint64_t v) {
  s += ",\"";
  s += key;
  s += "\":";
  s += std::to_string(v);
}

std::string frame(const std::string& payload) {
  char crc[16];
  std::snprintf(crc, sizeof crc, "%08x", obs::crc32(payload));
  std::string line(crc);
  line += ' ';
  line += payload;
  line += '\n';
  return line;
}

/// Splits a framed line into (crc, payload); false on malformed framing.
bool unframe(const std::string& line, std::uint32_t& crc,
             std::string& payload) {
  if (line.size() < 10 || line[8] != ' ') return false;
  std::uint32_t c = 0;
  for (int i = 0; i < 8; ++i) {
    const char ch = line[static_cast<std::size_t>(i)];
    std::uint32_t nibble;
    if (ch >= '0' && ch <= '9') nibble = static_cast<std::uint32_t>(ch - '0');
    else if (ch >= 'a' && ch <= 'f')
      nibble = static_cast<std::uint32_t>(ch - 'a' + 10);
    else return false;
    c = (c << 4) | nibble;
  }
  crc = c;
  payload = line.substr(9);
  return true;
}

}  // namespace

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kCompleted: return "completed";
    case Outcome::kRejected: return "rejected";
    case Outcome::kShed: return "shed";
    case Outcome::kTimedOut: return "timed_out";
    case Outcome::kFailed: return "failed";
  }
  return "unknown";
}

obs::Json serving_config_to_json(const ServingConfig& cfg) {
  obs::Json j = obs::Json::object();
  j.set("chip_id", std::uint64_t{cfg.chip_id});
  j.set("external_arrivals", cfg.external_arrivals);
  j.set("policy", cfg.policy);
  j.set("backend", cfg.backend);
  obs::Json chip = obs::Json::object();
  chip.set("design_max_n", std::uint64_t{cfg.chip.design_max_n});
  chip.set("blocks_per_bank", std::uint64_t{cfg.chip.blocks_per_bank});
  chip.set("total_banks", std::uint64_t{cfg.chip.total_banks});
  chip.set("spare_banks", std::uint64_t{cfg.chip.spare_banks});
  j.set("chip", std::move(chip));
  obs::Json wl = obs::Json::object();
  obs::Json mix = obs::Json::array();
  for (const auto& share : cfg.workload.mix) {
    obs::Json m = obs::Json::object();
    m.set("degree", std::uint64_t{share.degree});
    m.set("weight", share.weight);
    mix.push_back(std::move(m));
  }
  wl.set("mix", std::move(mix));
  wl.set("tenants", std::uint64_t{cfg.workload.tenants});
  wl.set("verify_every", std::uint64_t{cfg.workload.verify_every});
  wl.set("seed", std::to_string(cfg.workload.seed));  // u64-exact as text
  j.set("workload", std::move(wl));
  j.set("arrival_rate_per_s", cfg.arrival_rate_per_s);
  j.set("closed_loop_clients", std::uint64_t{cfg.closed_loop_clients});
  j.set("think_time_us", cfg.think_time_us);
  j.set("duration_us", cfg.duration_us);
  j.set("deadline_slack", cfg.deadline_slack);
  obs::Json proto = obs::Json::object();
  proto.set("kind", protocol_name(cfg.protocol.kind));
  proto.set("shares", std::uint64_t{cfg.protocol.shares});
  proto.set("host_op_cycles", cfg.protocol.host_op_cycles);
  j.set("protocol", std::move(proto));
  j.set("queue_capacity", std::uint64_t{cfg.queue_capacity});
  j.set("repartition_cycles", cfg.repartition_cycles);
  obs::Json weights = obs::Json::array();
  for (const double w : cfg.tenant_weights) weights.push_back(obs::Json(w));
  j.set("tenant_weights", std::move(weights));
  j.set("fail_bank_at_us", cfg.fail_bank_at_us);
  j.set("fail_banks", std::uint64_t{cfg.fail_banks});
  j.set("verify_points", std::uint64_t{cfg.verify_points});
  const auto& res = cfg.resilience;
  obs::Json r = obs::Json::object();
  r.set("deadline_us", res.deadline_us);
  r.set("max_retries", std::uint64_t{res.max_retries});
  r.set("retry_budget_ratio", res.retry_budget_ratio);
  r.set("retry_backoff_cycles", res.retry_backoff_cycles);
  r.set("retry_backoff_cap_cycles", res.retry_backoff_cap_cycles);
  r.set("hedge", res.hedge);
  r.set("hedge_delay_us", res.hedge_delay_us);
  r.set("hedge_min_samples", res.hedge_min_samples);
  r.set("codel_target_us", res.codel_target_us);
  r.set("codel_interval_us", res.codel_interval_us);
  r.set("breaker_k", std::uint64_t{res.breaker_k});
  r.set("breaker_open_cycles", res.breaker_open_cycles);
  r.set("wear_limit", res.wear_limit);
  r.set("drain_fraction", res.drain_fraction);
  r.set("scrub_threshold", res.scrub_threshold);
  r.set("scrub_cycles", res.scrub_cycles);
  r.set("health_period_cycles", res.health_period_cycles);
  obs::Json chaos = obs::Json::object();
  chaos.set("enabled", res.chaos.enabled);
  chaos.set("seed", std::to_string(res.chaos.seed));
  chaos.set("mean_interval_us", res.chaos.mean_interval_us);
  chaos.set("mean_duration_us", res.chaos.mean_duration_us);
  chaos.set("slow_fraction", res.chaos.slow_fraction);
  chaos.set("slow_factor", res.chaos.slow_factor);
  r.set("chaos", std::move(chaos));
  r.set("chaos_detect", res.chaos_detect);
  j.set("resilience", std::move(r));
  j.set("window_cycles", cfg.window_cycles);
  obs::Json slo = obs::Json::object();
  slo.set("availability", cfg.slo.availability);
  slo.set("latency_us", cfg.slo.latency_us);
  slo.set("latency_objective", cfg.slo.latency_objective);
  j.set("slo", std::move(slo));
  j.set("cycle_ns", cfg.cycle_ns);
  return j;
}

obs::Json fleet_config_to_json(const FleetConfig& cfg) {
  obs::Json j = obs::Json::object();
  j.set("chips", std::uint64_t{cfg.chips});
  j.set("router", cfg.router);
  j.set("replicas", std::uint64_t{cfg.replicas});
  j.set("chip", serving_config_to_json(cfg.chip));
  j.set("max_retries", std::uint64_t{cfg.max_retries});
  j.set("retry_budget_ratio", cfg.retry_budget_ratio);
  j.set("retry_backoff_cycles", cfg.retry_backoff_cycles);
  j.set("hedge", cfg.hedge);
  j.set("hedge_delay_us", cfg.hedge_delay_us);
  j.set("hedge_min_samples", cfg.hedge_min_samples);
  j.set("health_period_us", cfg.health_period_us);
  j.set("fail_rate_threshold", cfg.fail_rate_threshold);
  j.set("health_min_samples", cfg.health_min_samples);
  j.set("scrub_us", cfg.scrub_us);
  obs::Json chaos = obs::Json::object();
  chaos.set("enabled", cfg.chaos.enabled);
  chaos.set("seed", std::to_string(cfg.chaos.seed));
  chaos.set("mean_interval_us", cfg.chaos.mean_interval_us);
  chaos.set("mean_duration_us", cfg.chaos.mean_duration_us);
  chaos.set("crash_fraction", cfg.chaos.crash_fraction);
  chaos.set("brownout_fraction", cfg.chaos.brownout_fraction);
  chaos.set("slow_factor", cfg.chaos.slow_factor);
  j.set("chaos", std::move(chaos));
  j.set("kill_chip_at_us", cfg.kill_chip_at_us);
  j.set("kill_chip", std::uint64_t{cfg.kill_chip});
  return j;
}

// -- load ---------------------------------------------------------------------

Journal::LoadResult Journal::load(const std::string& path) {
  LoadResult out;
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    out.ok = true;  // nothing journaled yet: a fresh start
    return out;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();

  std::size_t pos = 0;
  std::uint64_t lineno = 0;
  // A pending invalid line: tolerated iff nothing valid follows it.
  bool pending_bad = false;
  std::string pending_error;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const bool complete = nl != std::string::npos;
    const std::string line =
        text.substr(pos, complete ? nl - pos : std::string::npos);
    ++lineno;
    std::uint32_t crc = 0;
    std::string payload;
    const bool valid =
        complete && unframe(line, crc, payload) && obs::crc32(payload) == crc;
    if (!valid) {
      if (pending_bad) {
        out.error = pending_error;  // two bad records: not a torn tail
        return out;
      }
      pending_bad = true;
      pending_error = path + ": line " + std::to_string(lineno) +
                      ": bad record framing/CRC";
      pos = complete ? nl + 1 : text.size();
      continue;
    }
    if (pending_bad) {
      // A valid record after an invalid one: mid-file corruption.
      out.error = pending_error + " (followed by valid records)";
      return out;
    }
    out.payloads.push_back(std::move(payload));
    pos = nl + 1;
    out.valid_bytes = pos;
  }
  out.torn_tail = pending_bad;
  if (!out.payloads.empty()) {
    const std::string& last = out.payloads.back();
    out.sealed = last.find("\"t\":\"seal\"") != std::string::npos;
  }
  out.ok = true;
  return out;
}

void Journal::open(const std::string& path, const std::string& header_payload,
                   bool recover) {
  path_ = path;
  loaded_.clear();
  cursor_ = 0;
  matched_ = 0;
  appended_ = 0;
  torn_ = false;
  sealed_ = false;
  if (recover) {
    LoadResult r = load(path);
    if (!r.ok) throw std::runtime_error("journal: " + r.error);
    torn_ = r.torn_tail;
    sealed_ = r.sealed;
    if (!r.payloads.empty() && r.payloads.front() != header_payload) {
      throw std::runtime_error(
          "journal: header mismatch in " + path +
          " — recover with the run's original flags (config fingerprint "
          "changed)");
    }
    loaded_ = std::move(r.payloads);
    // Drop the torn tail on disk so the resumed file is a clean prefix.
    if (std::filesystem::exists(path)) {
      std::filesystem::resize_file(path, r.valid_bytes);
    }
    out_.open(path, std::ios::binary | std::ios::app);
    if (!out_) throw std::runtime_error("journal: cannot append to " + path);
    if (loaded_.empty()) {
      // Crash before (or while) writing the header: start fresh.
      out_ << frame(header_payload);
      out_.flush();
      appended_ += 1;
    } else {
      cursor_ = 1;  // header consumed
      matched_ += 1;
    }
    return;
  }
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) throw std::runtime_error("journal: cannot open " + path);
  out_ << frame(header_payload);
  out_.flush();
  appended_ += 1;
}

void Journal::record(const std::string& payload) {
  if (!active()) return;
  if (cursor_ < loaded_.size()) {
    if (loaded_[cursor_] != payload) {
      throw std::runtime_error(
          "journal: replay diverged from " + path_ + " at record " +
          std::to_string(cursor_) + "\n  journaled: " + loaded_[cursor_] +
          "\n  replayed:  " + payload);
    }
    ++cursor_;
    ++matched_;
    return;
  }
  out_ << frame(payload);
  out_.flush();
  ++appended_;
}

// -- payload builders ---------------------------------------------------------

std::string Journal::header_payload(const char* mode, std::uint32_t chip_id,
                                    std::uint64_t seed,
                                    const obs::Json& config) {
  char fp[16];
  std::snprintf(fp, sizeof fp, "%08x", obs::crc32(config.dump()));
  std::string s = "{\"t\":\"hdr\",\"schema\":\"journal/1\",\"mode\":\"";
  s += mode;
  s += "\"";
  append_kv(s, "chip", chip_id);
  append_kv(s, "seed", seed);
  s += ",\"config\":\"";
  s += fp;
  s += "\"}";
  return s;
}

std::string Journal::admit_payload(std::uint64_t index, std::uint64_t cycle,
                                   const Request& r) {
  std::string s = "{\"t\":\"admit\"";
  append_kv(s, "i", index);
  append_kv(s, "c", cycle);
  append_kv(s, "id", r.id);
  append_kv(s, "tn", r.tenant);
  append_kv(s, "deg", r.degree);
  append_kv(s, "cl", r.client);
  append_kv(s, "ac", r.arrival_cycle);
  append_kv(s, "dl", r.deadline_cycle);
  append_kv(s, "sv", r.service_cycles);
  append_kv(s, "vf", r.verify ? 1 : 0);
  append_kv(s, "ds", r.data_seed);
  append_kv(s, "at", r.attempts);
  append_kv(s, "pid", r.proto_id);
  append_kv(s, "oi", r.op_index);
  append_kv(s, "ocl", static_cast<std::uint64_t>(r.op_class));
  append_kv(s, "fg", r.fanout_group);
  append_kv(s, "pm", r.parent_mask);
  s += '}';
  return s;
}

std::string Journal::outcome_payload(std::uint64_t index, std::uint64_t cycle,
                                     std::uint64_t id, Outcome o) {
  std::string s = "{\"t\":\"out\"";
  append_kv(s, "i", index);
  append_kv(s, "c", cycle);
  append_kv(s, "id", id);
  s += ",\"o\":\"";
  s += outcome_name(o);
  s += "\"}";
  return s;
}

std::string Journal::snap_payload(std::uint64_t index, const std::string& file,
                                  std::uint32_t state_crc) {
  char crc[16];
  std::snprintf(crc, sizeof crc, "%08x", state_crc);
  std::string s = "{\"t\":\"snap\"";
  append_kv(s, "i", index);
  s += ",\"file\":\"";
  s += file;
  s += "\",\"crc\":\"";
  s += crc;
  s += "\"}";
  return s;
}

std::string Journal::seal_payload(
    std::uint64_t index, std::uint64_t cycle,
    std::initializer_list<std::pair<const char*, std::uint64_t>> counters) {
  std::string s = "{\"t\":\"seal\"";
  append_kv(s, "i", index);
  append_kv(s, "c", cycle);
  for (const auto& [name, value] : counters) append_kv(s, name, value);
  s += '}';
  return s;
}

}  // namespace cryptopim::runtime
