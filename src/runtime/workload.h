// Synthetic workload generators for the serving runtime.
//
// Two canonical shapes from queueing practice:
//
//   * open loop — arrivals are a Poisson process at a fixed rate,
//     independent of service: the generator the saturation studies use
//     (offered load keeps coming whether or not the chip keeps up);
//   * closed loop — N clients each hold one request in flight and think
//     (exponentially distributed) between completion and re-issue, so
//     offered load self-limits at N in flight.
//
// All randomness flows from one Xoshiro256 seeded at construction
// (common/rng.h), so a given (seed, config) pair generates the same
// request stream on every run and platform — the determinism the
// acceptance bar demands.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "runtime/request.h"

namespace cryptopim::runtime {

/// One degree class and its sampling weight in the mix.
struct DegreeShare {
  std::uint32_t degree = 256;
  double weight = 1.0;
};

/// Request-field sampling shared by the generators.
struct WorkloadSpec {
  std::vector<DegreeShare> mix = {{256, 1.0}};
  std::uint32_t tenants = 1;
  /// Every verify_every-th request carries data and is Freivalds-checked
  /// on completion; 0 disables data-carrying requests.
  std::uint32_t verify_every = 0;
  std::uint64_t seed = 1;
};

struct Arrival {
  std::uint64_t cycle = 0;
  Request request;
};

class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;

  /// Arrivals to prime the event queue with (one for open loop, one per
  /// client for closed loop).
  virtual std::vector<Arrival> initial() = 0;
  /// Open loop: the arrival following `a`; nullopt past the run horizon.
  virtual std::optional<Arrival> next_after_arrival(const Arrival& a) = 0;
  /// Closed loop: the re-issue after `r` completed at `now`.
  virtual std::optional<Arrival> next_after_completion(const Request& r,
                                                       std::uint64_t now) = 0;
  /// RNG position fingerprint for snapshot cross-checks (0 = stateless).
  virtual std::uint64_t rng_digest() const { return 0; }
};

/// Open-loop Poisson arrivals at `rate_per_cycle` until `horizon_cycles`.
class OpenLoopPoisson final : public WorkloadGenerator {
 public:
  OpenLoopPoisson(WorkloadSpec spec, double rate_per_cycle,
                  std::uint64_t horizon_cycles);

  std::vector<Arrival> initial() override;
  std::optional<Arrival> next_after_arrival(const Arrival& a) override;
  std::optional<Arrival> next_after_completion(const Request&,
                                               std::uint64_t) override {
    return std::nullopt;
  }
  std::uint64_t rng_digest() const override { return rng_.digest(); }

 private:
  WorkloadSpec spec_;
  double rate_per_cycle_;
  std::uint64_t horizon_;
  Xoshiro256 rng_;
  std::uint64_t next_id_ = 0;
};

/// `clients` closed-loop clients with exponential think time (mean
/// `think_cycles`); no re-issues after `horizon_cycles`.
class ClosedLoop final : public WorkloadGenerator {
 public:
  ClosedLoop(WorkloadSpec spec, std::uint32_t clients,
             std::uint64_t think_cycles, std::uint64_t horizon_cycles);

  std::vector<Arrival> initial() override;
  std::optional<Arrival> next_after_arrival(const Arrival&) override {
    return std::nullopt;
  }
  std::optional<Arrival> next_after_completion(const Request& r,
                                               std::uint64_t now) override;
  std::uint64_t rng_digest() const override { return rng_.digest(); }

 private:
  WorkloadSpec spec_;
  std::uint32_t clients_;
  std::uint64_t think_cycles_;
  std::uint64_t horizon_;
  Xoshiro256 rng_;
  std::uint64_t next_id_ = 0;
};

/// A uniform double in (0, 1] from the generator (used for exponential
/// sampling; never returns 0, so log() is safe). Exposed for tests.
double uniform_unit(Xoshiro256& rng) noexcept;

/// One exponential sample with the given mean, rounded to >= 1 cycle.
std::uint64_t exponential_cycles(Xoshiro256& rng, double mean_cycles) noexcept;

/// Sample a request's degree/tenant/verify fields per `spec`.
Request sample_request(const WorkloadSpec& spec, Xoshiro256& rng,
                       std::uint64_t id);

}  // namespace cryptopim::runtime
