#include "runtime/serving.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "model/performance.h"
#include "ntt/ntt.h"
#include "ntt/params.h"
#include "ntt/poly.h"
#include "obs/trace.h"
#include "reliability/verifier.h"

namespace cryptopim::runtime {

namespace {

/// Cycle geometry of one superbank lane configured for a degree class,
/// derived from the same performance model the offline scheduler uses:
/// one request enters per `segments * beat` cycles and completes a fill
/// (plus any extra segment beats) after entering.
struct LaneGeometry {
  unsigned banks = 0;       ///< banks_per_superbank
  unsigned segments = 1;
  std::uint64_t beat = 0;   ///< slowest-stage cycles
  std::uint64_t fill = 0;   ///< depth * beat
  std::uint64_t service() const noexcept {
    return fill + (segments - 1) * beat;
  }
  std::uint64_t occupancy() const noexcept { return segments * beat; }
};

LaneGeometry geometry_for(const arch::ChipConfig& chip, std::uint32_t degree) {
  // Geometry (banks per superbank, segments) is degree-intrinsic; the
  // failed-bank count only shrinks how many lanes fit, which the
  // runtime's own bank pool accounts for. Cached per (design point,
  // degree): cryptopim_pipelined measures stage latencies by executing
  // the datapath, far too slow to re-run on every arrival.
  thread_local std::map<std::pair<std::uint32_t, std::uint32_t>, LaneGeometry>
      cache;
  const auto key = std::make_pair(chip.design_max_n, degree);
  if (const auto it = cache.find(key); it != cache.end()) return it->second;

  const auto plan = chip.plan_for_degree(degree);
  const auto perf =
      model::cryptopim_pipelined(std::min(degree, chip.design_max_n));
  LaneGeometry g;
  g.banks = plan.banks_per_superbank;
  g.segments = plan.segments;
  g.beat = perf.slowest_stage_cycles;
  g.fill = static_cast<std::uint64_t>(perf.depth) * perf.slowest_stage_cycles;
  cache.emplace(key, g);
  return g;
}

}  // namespace

// -- report -------------------------------------------------------------------

double ServingReport::latency_us(double quantile) const {
  return static_cast<double>(latency_cycles.quantile(quantile)) /
         cycles_per_us;
}

obs::Json ServingReport::to_json() const {
  obs::Json j = obs::Json::object();
  j.set("schema", "serving/1");
  j.set("policy", policy);
  j.set("duration_cycles", duration_cycles);
  j.set("drain_cycle", drain_cycle);
  j.set("submitted", submitted);
  j.set("admitted", admitted);
  j.set("rejected", rejected);
  j.set("rejected_unservable", rejected_unservable);
  j.set("completed", completed);
  j.set("in_flight", in_flight);
  j.set("queued", queued);
  j.set("repartitions", repartitions);
  j.set("bank_failures", bank_failures);
  j.set("retried", retried);
  j.set("deadline_misses", deadline_misses);
  j.set("verified", verified);
  j.set("verify_failures", verify_failures);
  j.set("busy_bank_cycles", busy_bank_cycles);
  j.set("utilization", utilization);
  j.set("throughput_per_s", throughput_per_s);
  j.set("offered_per_s", offered_per_s);
  obs::Json lat = obs::Json::object();
  lat.set("count", latency_cycles.count());
  lat.set("mean_cycles", latency_cycles.mean());
  lat.set("p50_cycles", latency_cycles.quantile(0.50));
  lat.set("p99_cycles", latency_cycles.quantile(0.99));
  lat.set("p999_cycles", latency_cycles.quantile(0.999));
  lat.set("p50_us", latency_us(0.50));
  lat.set("p99_us", latency_us(0.99));
  lat.set("p999_us", latency_us(0.999));
  lat.set("max_cycles", latency_cycles.max());
  j.set("latency", std::move(lat));
  obs::Json qd = obs::Json::object();
  qd.set("mean", queue_depth.mean());
  qd.set("p99", queue_depth.quantile(0.99));
  qd.set("max", queue_depth.max());
  j.set("queue_depth", std::move(qd));
  obs::Json ts = obs::Json::array();
  for (const auto& [id, t] : tenants) {
    obs::Json tj = obs::Json::object();
    tj.set("tenant", std::uint64_t{id});
    tj.set("weight", t.weight);
    tj.set("submitted", t.submitted);
    tj.set("admitted", t.admitted);
    tj.set("rejected", t.rejected);
    tj.set("completed", t.completed);
    tj.set("deadline_misses", t.deadline_misses);
    tj.set("bank_cycles", t.bank_cycles);
    tj.set("p50_cycles", t.latency_cycles.quantile(0.50));
    tj.set("p99_cycles", t.latency_cycles.quantile(0.99));
    tj.set("p999_cycles", t.latency_cycles.quantile(0.999));
    ts.push_back(std::move(tj));
  }
  j.set("tenants", std::move(ts));
  return j;
}

// -- runtime ------------------------------------------------------------------

struct ServingRuntime::Lane {
  std::uint32_t degree = 0;
  unsigned banks = 0;
  std::uint64_t free_at = 0;  ///< earliest cycle the next request may enter
  unsigned in_flight = 0;
  bool dead = false;
  std::uint32_t track = 0;
};

struct ServingRuntime::InFlight {
  Request request;
  std::size_t lane = 0;
  std::uint64_t dispatched_at = 0;
};

ServingRuntime::ServingRuntime(ServingConfig cfg) : cfg_(std::move(cfg)) {}
ServingRuntime::~ServingRuntime() = default;

unsigned ServingRuntime::usable_banks() const noexcept {
  const unsigned lost = failed_banks_ > cfg_.chip.spare_banks
                            ? failed_banks_ - cfg_.chip.spare_banks
                            : 0;
  return lost >= cfg_.chip.total_banks ? 0 : cfg_.chip.total_banks - lost;
}

void ServingRuntime::schedule_scan(std::uint64_t cycle) {
  if (!scan_cycles_.insert(cycle).second) return;  // already armed
  Event e;
  e.cycle = cycle;
  e.kind = EventKind::kQueueScan;
  events_.push(std::move(e));
}

ServingReport ServingRuntime::run() {
  policy_ = make_policy(cfg_.policy);
  if (!policy_) {
    throw std::invalid_argument("unknown scheduling policy: " + cfg_.policy);
  }
  if (cfg_.workload.mix.empty()) {
    throw std::invalid_argument("degree mix must not be empty");
  }
  for (const auto& share : cfg_.workload.mix) {
    geometry_for(cfg_.chip, share.degree);  // throws on an invalid degree
  }

  const double cyc_per_us = cfg_.cycles_per_us();
  const auto horizon =
      static_cast<std::uint64_t>(cfg_.duration_us * cyc_per_us);
  report_ = ServingReport{};
  report_.policy = cfg_.policy;
  report_.duration_cycles = horizon;
  report_.cycles_per_us = cyc_per_us;

  const std::uint32_t tenants = std::max<std::uint32_t>(cfg_.workload.tenants, 1);
  tenant_usage_.assign(tenants, 0.0);
  for (std::uint32_t t = 0; t < tenants; ++t) {
    TenantStats ts;
    ts.weight = t < cfg_.tenant_weights.size() && cfg_.tenant_weights[t] > 0
                    ? cfg_.tenant_weights[t]
                    : 1.0;
    report_.tenants.emplace(t, std::move(ts));
  }

  if (cfg_.closed_loop_clients > 0) {
    const auto think =
        static_cast<std::uint64_t>(cfg_.think_time_us * cyc_per_us);
    workload_ = std::make_unique<ClosedLoop>(cfg_.workload,
                                             cfg_.closed_loop_clients, think,
                                             horizon);
  } else {
    const double rate_per_cycle = cfg_.arrival_rate_per_s / (1e9 / cfg_.cycle_ns);
    if (rate_per_cycle <= 0) {
      throw std::invalid_argument("arrival rate must be positive");
    }
    workload_ =
        std::make_unique<OpenLoopPoisson>(cfg_.workload, rate_per_cycle,
                                          horizon);
  }

  for (const auto& a : workload_->initial()) {
    Event e;
    e.cycle = a.cycle;
    e.kind = EventKind::kArrival;
    e.request = a.request;
    events_.push(std::move(e));
  }
  if (cfg_.fail_bank_at_us > 0) {
    Event e;
    e.cycle = static_cast<std::uint64_t>(cfg_.fail_bank_at_us * cyc_per_us);
    e.kind = EventKind::kBankFailure;
    events_.push(std::move(e));
  }

  while (!events_.empty()) {
    const Event e = events_.pop();
    now_ = e.cycle;
    report_.drain_cycle = std::max(report_.drain_cycle, now_);
    switch (e.kind) {
      case EventKind::kArrival: handle_arrival(e); break;
      case EventKind::kQueueScan:
        scan_cycles_.erase(e.cycle);
        try_dispatch();
        break;
      case EventKind::kCompletion: handle_completion(e); break;
      case EventKind::kBankFailure: handle_bank_failure(e); break;
    }
  }

  // Anything still queued is starved: the chip degraded below its class's
  // bank requirement mid-stream. Surface it rather than hanging.
  report_.queued = pending_.size();
  report_.in_flight = in_flight_.size();
  pending_.clear();

  if (report_.drain_cycle > 0) {
    const double drain_s = static_cast<double>(report_.drain_cycle) *
                           cfg_.cycle_ns * 1e-9;
    report_.throughput_per_s = static_cast<double>(report_.completed) / drain_s;
    report_.utilization =
        static_cast<double>(report_.busy_bank_cycles) /
        (static_cast<double>(cfg_.chip.total_banks) *
         static_cast<double>(report_.drain_cycle));
  }
  if (horizon > 0) {
    report_.offered_per_s = static_cast<double>(report_.submitted) /
                            (static_cast<double>(horizon) * cfg_.cycle_ns *
                             1e-9);
  }
  publish_metrics();
  return report_;
}

void ServingRuntime::handle_arrival(const Event& e) {
  Request r = e.request;
  report_.submitted += 1;
  TenantStats& ts = report_.tenants.at(r.tenant);
  ts.submitted += 1;
  report_.queue_depth.add(pending_.size());
  obs::metrics()
      .histogram("cryptopim.runtime.queue_depth", "requests")
      .add(pending_.size());

  // Chain the next open-loop arrival before any admission decision so
  // backpressure never throttles the *offered* load.
  Arrival this_arrival{e.cycle, r};
  if (auto next = workload_->next_after_arrival(this_arrival)) {
    Event ne;
    ne.cycle = next->cycle;
    ne.kind = EventKind::kArrival;
    ne.request = next->request;
    events_.push(std::move(ne));
  }

  const LaneGeometry g = geometry_for(cfg_.chip, r.degree);
  if (g.banks > usable_banks()) {
    report_.rejected_unservable += 1;
    ts.rejected += 1;
    return;
  }
  if (pending_.size() >= cfg_.queue_capacity) {
    report_.rejected += 1;
    ts.rejected += 1;
    return;
  }
  r.service_cycles = g.service();
  if (cfg_.deadline_slack > 0) {
    r.deadline_cycle =
        r.arrival_cycle +
        static_cast<std::uint64_t>(cfg_.deadline_slack *
                                   static_cast<double>(r.service_cycles));
  }
  report_.admitted += 1;
  ts.admitted += 1;
  pending_.push_back(std::move(r));
  try_dispatch();
}

void ServingRuntime::try_dispatch() {
  std::set<std::uint32_t> blocked;
  while (!pending_.empty()) {
    std::vector<bool> eligible(pending_.size());
    bool any = false;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      eligible[i] = !blocked.contains(pending_[i].degree);
      any = any || eligible[i];
    }
    if (!any) break;
    PolicyContext ctx;
    ctx.now = now_;
    ctx.tenant_usage = tenant_usage_;
    const std::size_t idx = policy_->pick(pending_, eligible, ctx);
    if (idx == Policy::npos) break;
    Lane* lane = acquire_lane(pending_[idx].degree);
    if (!lane) {
      blocked.insert(pending_[idx].degree);
      continue;
    }
    dispatch(idx, *lane);
  }
}

ServingRuntime::Lane* ServingRuntime::acquire_lane(std::uint32_t degree) {
  Lane* free_now = nullptr;
  std::uint64_t soonest = ~std::uint64_t{0};
  for (Lane& lane : lanes_) {
    if (lane.dead || lane.degree != degree) continue;
    if (lane.free_at <= now_) {
      if (!free_now || lane.free_at < free_now->free_at) free_now = &lane;
    } else {
      soonest = std::min(soonest, lane.free_at);
    }
  }
  if (free_now) return free_now;

  const LaneGeometry g = geometry_for(cfg_.chip, degree);
  const unsigned usable = usable_banks();
  unsigned free_banks = usable > allocated_banks_ ? usable - allocated_banks_
                                                  : 0;
  if (free_banks < g.banks) {
    reclaim_idle_lanes(g.banks, degree);
    free_banks = usable > allocated_banks_ ? usable - allocated_banks_ : 0;
  }
  if (free_banks >= g.banks) {
    Lane* lane = carve_lane(degree);
    if (lane->free_at <= now_) return lane;
    schedule_scan(lane->free_at);
    return nullptr;
  }
  if (soonest != ~std::uint64_t{0}) schedule_scan(soonest);
  return nullptr;
}

ServingRuntime::Lane* ServingRuntime::carve_lane(std::uint32_t degree) {
  const LaneGeometry g = geometry_for(cfg_.chip, degree);
  Lane lane;
  lane.degree = degree;
  lane.banks = g.banks;
  lane.free_at = now_ + cfg_.repartition_cycles;
  lane.track = kRuntimeTrackBase + 1 + static_cast<std::uint32_t>(lanes_.size());
  allocated_banks_ += g.banks;
  report_.repartitions += 1;
  auto& tr = obs::tracer();
  if (tr.enabled()) {
    tr.set_track_name(lane.track, "runtime lane " +
                                      std::to_string(lanes_.size()) + " (n=" +
                                      std::to_string(degree) + ")");
    tr.emit(kRuntimeTrackBase, "repartition n=" + std::to_string(degree),
            "runtime", now_, cfg_.repartition_cycles);
  }
  lanes_.push_back(lane);
  return &lanes_.back();
}

void ServingRuntime::reclaim_idle_lanes(unsigned needed,
                                        std::uint32_t for_degree) {
  std::set<std::uint32_t> pending_degrees;
  for (const Request& r : pending_) pending_degrees.insert(r.degree);
  for (Lane& lane : lanes_) {
    const unsigned usable = usable_banks();
    const unsigned free_banks =
        usable > allocated_banks_ ? usable - allocated_banks_ : 0;
    if (free_banks >= needed) return;
    if (lane.dead || lane.in_flight > 0 || lane.free_at > now_) continue;
    if (lane.degree == for_degree) continue;
    if (pending_degrees.contains(lane.degree)) continue;
    lane.dead = true;
    allocated_banks_ -= lane.banks;
  }
}

void ServingRuntime::dispatch(std::size_t queue_index, Lane& lane) {
  Request r = pending_[queue_index];
  pending_.erase(pending_.begin() + static_cast<long>(queue_index));

  const LaneGeometry g = geometry_for(cfg_.chip, r.degree);
  const std::uint64_t t0 = now_;
  const std::uint64_t completion = t0 + g.service();
  lane.free_at = t0 + g.occupancy();
  lane.in_flight += 1;

  const std::uint64_t bank_cycles =
      static_cast<std::uint64_t>(lane.banks) * g.occupancy();
  report_.busy_bank_cycles += bank_cycles;
  TenantStats& ts = report_.tenants.at(r.tenant);
  ts.bank_cycles += bank_cycles;
  tenant_usage_[r.tenant] += static_cast<double>(bank_cycles) / ts.weight;

  const std::uint64_t id = next_dispatch_id_++;
  InFlight inf;
  inf.request = std::move(r);
  inf.lane = static_cast<std::size_t>(&lane - lanes_.data());
  inf.dispatched_at = t0;
  in_flight_.emplace(id, std::move(inf));

  Event e;
  e.cycle = completion;
  e.kind = EventKind::kCompletion;
  e.dispatch_id = id;
  events_.push(std::move(e));
}

void ServingRuntime::handle_completion(const Event& e) {
  const auto it = in_flight_.find(e.dispatch_id);
  if (it == in_flight_.end()) return;  // cancelled by a bank failure
  const InFlight inf = std::move(it->second);
  in_flight_.erase(it);
  lanes_[inf.lane].in_flight -= 1;

  const Request& r = inf.request;
  const std::uint64_t latency = now_ - r.arrival_cycle;
  report_.completed += 1;
  report_.latency_cycles.add(latency);
  obs::metrics()
      .histogram("cryptopim.runtime.latency_cycles", "cycles")
      .add(latency);
  TenantStats& ts = report_.tenants.at(r.tenant);
  ts.completed += 1;
  ts.latency_cycles.add(latency);
  if (r.deadline_cycle > 0 && now_ > r.deadline_cycle) {
    report_.deadline_misses += 1;
    ts.deadline_misses += 1;
  }
  auto& tr = obs::tracer();
  if (tr.enabled()) {
    tr.emit(lanes_[inf.lane].track,
            "req " + std::to_string(r.id) + " t" + std::to_string(r.tenant),
            "runtime", inf.dispatched_at, now_ - inf.dispatched_at);
  }
  if (r.verify) verify_result(r);

  if (auto next = workload_->next_after_completion(r, now_)) {
    Event ne;
    ne.cycle = next->cycle;
    ne.kind = EventKind::kArrival;
    ne.request = next->request;
    events_.push(std::move(ne));
  }
  try_dispatch();
}

void ServingRuntime::handle_bank_failure(const Event&) {
  report_.bank_failures += cfg_.fail_banks;
  failed_banks_ += cfg_.fail_banks;

  // Deterministic victim: the failure strikes the busiest live lane (most
  // in-flight work, lowest index on ties) — its in-flight requests retry
  // from the queue and the lane pays a repartition to remap onto a spare
  // (or is torn down once the chip shrank below its footprint).
  auto pick_victim = [this]() -> Lane* {
    Lane* victim = nullptr;
    for (Lane& lane : lanes_) {
      if (lane.dead) continue;
      if (!victim || lane.in_flight > victim->in_flight) victim = &lane;
    }
    return victim;
  };

  Lane* victim = pick_victim();
  if (victim) {
    const std::size_t victim_idx =
        static_cast<std::size_t>(victim - lanes_.data());
    for (auto it = in_flight_.begin(); it != in_flight_.end();) {
      if (it->second.lane == victim_idx) {
        pending_.push_back(std::move(it->second.request));
        report_.retried += 1;
        it = in_flight_.erase(it);
      } else {
        ++it;
      }
    }
    victim->in_flight = 0;
    report_.repartitions += 1;
    auto& tr = obs::tracer();
    if (tr.enabled()) {
      tr.emit(kRuntimeTrackBase, "bank failure", "runtime", now_,
              cfg_.repartition_cycles);
    }
    if (allocated_banks_ > usable_banks()) {
      // Beyond the spare pool: the lane's banks are gone for good.
      victim->dead = true;
      allocated_banks_ -= victim->banks;
    } else {
      // A spare absorbed the failure; the lane re-forms after the remap.
      victim->free_at = std::max(victim->free_at, now_) +
                        cfg_.repartition_cycles;
      schedule_scan(victim->free_at);
    }
  }
  // Keep tearing lanes down if several banks failed at once and the pool
  // shrank below what is still allocated.
  while (allocated_banks_ > usable_banks()) {
    Lane* next = pick_victim();
    if (!next) break;
    const std::size_t idx = static_cast<std::size_t>(next - lanes_.data());
    for (auto it = in_flight_.begin(); it != in_flight_.end();) {
      if (it->second.lane == idx) {
        pending_.push_back(std::move(it->second.request));
        report_.retried += 1;
        it = in_flight_.erase(it);
      } else {
        ++it;
      }
    }
    next->in_flight = 0;
    next->dead = true;
    allocated_banks_ -= next->banks;
    report_.repartitions += 1;
  }
  try_dispatch();
}

void ServingRuntime::verify_result(const Request& r) {
  // Materialise the operands from the request's seed, produce the result
  // through the software mirror of the datapath, and Freivalds-check it.
  // The engines are cached per degree class; a degree without a paper
  // parameter set (above 32k: segmented execution) is skipped.
  struct VerifyEngine {
    ntt::NttParams params;
    ntt::GsNttEngine engine;
    explicit VerifyEngine(std::uint32_t n)
        : params(ntt::NttParams::for_degree(n)), engine(params) {}
  };
  thread_local std::map<std::uint32_t, std::unique_ptr<VerifyEngine>> cache;
  auto it = cache.find(r.degree);
  if (it == cache.end()) {
    try {
      it = cache.emplace(r.degree, std::make_unique<VerifyEngine>(r.degree))
               .first;
    } catch (const std::exception&) {
      cache.emplace(r.degree, nullptr);
      return;
    }
  }
  if (!it->second) return;
  const VerifyEngine& ve = *it->second;

  Xoshiro256 rng(r.data_seed);
  const auto a = ntt::sample_uniform(ve.params.n, ve.params.q, rng);
  const auto b = ntt::sample_uniform(ve.params.n, ve.params.q, rng);
  const auto c = ve.engine.negacyclic_multiply(a, b);
  reliability::VerifyConfig vc;
  vc.points = cfg_.verify_points;
  vc.seed = r.data_seed ^ 0x5eed5eedULL;
  reliability::ResultVerifier verifier(ve.params, vc);
  if (verifier.check(a, b, c)) {
    report_.verified += 1;
  } else {
    report_.verify_failures += 1;
  }
}

void ServingRuntime::publish_metrics() const {
  auto& reg = obs::metrics();
  reg.counter("cryptopim.runtime.submitted", "requests")
      .add(report_.submitted);
  reg.counter("cryptopim.runtime.admitted", "requests").add(report_.admitted);
  reg.counter("cryptopim.runtime.rejected", "requests").add(report_.rejected);
  reg.counter("cryptopim.runtime.rejected_unservable", "requests")
      .add(report_.rejected_unservable);
  reg.counter("cryptopim.runtime.completed", "requests")
      .add(report_.completed);
  reg.counter("cryptopim.runtime.repartitions", "events")
      .add(report_.repartitions);
  reg.counter("cryptopim.runtime.bank_failures", "banks")
      .add(report_.bank_failures);
  reg.counter("cryptopim.runtime.retried", "requests").add(report_.retried);
  reg.counter("cryptopim.runtime.deadline_misses", "requests")
      .add(report_.deadline_misses);
  reg.counter("cryptopim.runtime.verified", "requests").add(report_.verified);
  reg.counter("cryptopim.runtime.verify_failures", "requests")
      .add(report_.verify_failures);
  reg.counter("cryptopim.runtime.busy_bank_cycles", "bank-cycles")
      .add(report_.busy_bank_cycles);
}

}  // namespace cryptopim::runtime
