#include "runtime/serving.h"

#include <algorithm>
#include <cassert>
#include <csignal>
#include <filesystem>
#include <set>
#include <stdexcept>

#include "model/performance.h"
#include "ntt/ntt.h"
#include "ntt/params.h"
#include "ntt/poly.h"
#include "obs/trace.h"
#include "reliability/verifier.h"
#include "runtime/backend.h"
#include "runtime/protocol_ops.h"
#include "runtime/snapshot.h"

namespace cryptopim::runtime {

namespace {

/// Lane index of a laneless protocol host op (sampling / aggregation):
/// InFlight entries carrying it never touch lanes_.
constexpr std::size_t kHostLane = ~std::size_t{0};

/// Cycle geometry of one superbank lane configured for a degree class,
/// derived from the same performance model the offline scheduler uses:
/// one request enters per `segments * beat` cycles and completes a fill
/// (plus any extra segment beats) after entering.
struct LaneGeometry {
  unsigned banks = 0;       ///< banks_per_superbank
  unsigned segments = 1;
  std::uint64_t beat = 0;   ///< slowest-stage cycles
  std::uint64_t fill = 0;   ///< depth * beat
  std::uint64_t service() const noexcept {
    return fill + (segments - 1) * beat;
  }
  std::uint64_t occupancy() const noexcept { return segments * beat; }
};

LaneGeometry geometry_for(const arch::ChipConfig& chip, std::uint32_t degree) {
  // Geometry (banks per superbank, segments) is degree-intrinsic; the
  // failed-bank count only shrinks how many lanes fit, which the
  // runtime's own bank pool accounts for. Cached per (design point,
  // degree): cryptopim_pipelined measures stage latencies by executing
  // the datapath, far too slow to re-run on every arrival.
  thread_local std::map<std::pair<std::uint32_t, std::uint32_t>, LaneGeometry>
      cache;
  const auto key = std::make_pair(chip.design_max_n, degree);
  if (const auto it = cache.find(key); it != cache.end()) return it->second;

  const auto plan = chip.plan_for_degree(degree);
  const auto perf =
      model::cryptopim_pipelined(std::min(degree, chip.design_max_n));
  LaneGeometry g;
  g.banks = plan.banks_per_superbank;
  g.segments = plan.segments;
  g.beat = perf.slowest_stage_cycles;
  g.fill = static_cast<std::uint64_t>(perf.depth) * perf.slowest_stage_cycles;
  cache.emplace(key, g);
  return g;
}

}  // namespace

// -- report -------------------------------------------------------------------

double ServingReport::latency_us(double quantile) const {
  return static_cast<double>(latency_cycles.quantile(quantile)) /
         cycles_per_us;
}

namespace {

/// Derived per-window rates: the rolling throughput / latency / shed /
/// retry series the windowed counters exist to support. Rates are per
/// second of simulated time; ratios are against the window's submitted.
obs::Json rolling_rates(const obs::WindowedSeries& series, double cycle_ns) {
  obs::Json rows = obs::Json::array();
  const double window_s =
      static_cast<double>(series.window_cycles()) * cycle_ns * 1e-9;
  for (std::size_t w = 0; w < series.window_count(); ++w) {
    obs::Json row = obs::Json::object();
    row.set("start", series.window_start(w));
    const std::uint64_t completed = series.counter_at(w, "completed");
    const std::uint64_t submitted = series.counter_at(w, "submitted");
    row.set("throughput_per_s",
            window_s > 0 ? static_cast<double>(completed) / window_s : 0.0);
    if (const obs::Histogram* lat = series.histogram_at(w, "latency_cycles")) {
      row.set("p50_latency_us",
              static_cast<double>(lat->quantile(0.50)) * cycle_ns * 1e-3);
      row.set("p99_latency_us",
              static_cast<double>(lat->quantile(0.99)) * cycle_ns * 1e-3);
    }
    const double denom = submitted ? static_cast<double>(submitted) : 1.0;
    row.set("shed_rate",
            static_cast<double>(series.counter_at(w, "shed")) / denom);
    row.set("retry_rate",
            static_cast<double>(series.counter_at(w, "retries")) / denom);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

obs::Json ServingReport::to_json() const {
  obs::Json j = obs::Json::object();
  j.set("schema", "serving/2");
  j.set("policy", policy);
  j.set("backend", backend);
  j.set("duration_cycles", duration_cycles);
  j.set("drain_cycle", drain_cycle);
  j.set("submitted", submitted);
  j.set("admitted", admitted);
  j.set("rejected", rejected);
  j.set("rejected_unservable", rejected_unservable);
  j.set("completed", completed);
  j.set("in_flight", in_flight);
  j.set("queued", queued);
  j.set("repartitions", repartitions);
  j.set("bank_failures", bank_failures);
  j.set("retried", retried);
  j.set("deadline_misses", deadline_misses);
  j.set("verified", verified);
  j.set("verify_failures", verify_failures);
  // Emitted only when a resilience feature ran: a resilience-off report
  // stays byte-identical to the pre-resilience schema.
  if (resilience_enabled) j.set("resilience", resilience.to_json());
  // Fleet context: emitted only for externally driven chips, so the
  // classic single-chip report keeps its schema byte-for-byte.
  if (fleet_mode) {
    j.set("chip", std::uint64_t{chip_id});
    j.set("migrated", migrated);
    j.set("lost_in_flight", lost_in_flight);
    j.set("chip_corruptions", chip_corruptions);
    j.set("chip_failed", chip_failed);
  }
  // Protocol block: emitted only when a protocol workload ran, so the
  // raw-polymul report stays byte-identical.
  if (protocol_enabled) j.set("protocol", protocol.to_json());
  j.set("busy_bank_cycles", busy_bank_cycles);
  j.set("utilization", utilization);
  j.set("throughput_per_s", throughput_per_s);
  j.set("offered_per_s", offered_per_s);
  obs::Json lat = obs::Json::object();
  lat.set("count", latency_cycles.count());
  lat.set("mean_cycles", latency_cycles.mean());
  lat.set("p50_cycles", latency_cycles.quantile(0.50));
  lat.set("p99_cycles", latency_cycles.quantile(0.99));
  lat.set("p999_cycles", latency_cycles.quantile(0.999));
  lat.set("p50_us", latency_us(0.50));
  lat.set("p99_us", latency_us(0.99));
  lat.set("p999_us", latency_us(0.999));
  lat.set("max_cycles", latency_cycles.max());
  j.set("latency", std::move(lat));
  obs::Json qd = obs::Json::object();
  qd.set("mean", queue_depth.mean());
  qd.set("p99", queue_depth.quantile(0.99));
  qd.set("max", queue_depth.max());
  j.set("queue_depth", std::move(qd));
  obs::Json ts = obs::Json::array();
  for (const auto& [id, t] : tenants) {
    obs::Json tj = obs::Json::object();
    tj.set("tenant", std::uint64_t{id});
    tj.set("weight", t.weight);
    tj.set("submitted", t.submitted);
    tj.set("admitted", t.admitted);
    tj.set("rejected", t.rejected);
    // Gated like the top-level resilience section: a resilience-off
    // report keeps the pre-resilience schema byte-for-byte.
    if (resilience_enabled) tj.set("rejected_deadline", t.rejected_deadline);
    tj.set("completed", t.completed);
    tj.set("deadline_misses", t.deadline_misses);
    tj.set("bank_cycles", t.bank_cycles);
    tj.set("p50_cycles", t.latency_cycles.quantile(0.50));
    tj.set("p99_cycles", t.latency_cycles.quantile(0.99));
    tj.set("p999_cycles", t.latency_cycles.quantile(0.999));
    ts.push_back(std::move(tj));
  }
  j.set("tenants", std::move(ts));
  if (series.enabled()) {
    j.set("series", series.to_json());
    j.set("rolling", rolling_rates(series, 1e3 / cycles_per_us));
  }
  if (slo.enabled()) j.set("slo", slo.to_json());
  return j;
}

// -- runtime ------------------------------------------------------------------

/// A chaos/wear corruption window that never closes on its own (wear
/// faults persist until the lane is remapped onto fresh banks).
constexpr std::uint64_t kForever = ~std::uint64_t{0};

struct ServingRuntime::Lane {
  std::uint32_t degree = 0;
  unsigned banks = 0;
  std::uint64_t free_at = 0;  ///< earliest cycle the next request may enter
  unsigned in_flight = 0;
  bool dead = false;
  std::uint32_t track = 0;

  // -- resilience (inert defaults when the layer is off) ---------------------
  CircuitBreaker breaker;
  std::uint64_t slow_until = 0;     ///< chaos slowdown episode end
  std::uint64_t corrupt_until = 0;  ///< chaos/wear corruption end (kForever
                                    ///< for wear: only a remap clears it)
  bool draining = false;            ///< worn: no new work, remap when empty
};

struct ServingRuntime::InFlight {
  Request request;
  std::size_t lane = 0;
  std::uint64_t dispatched_at = 0;
  bool corrupt = false;      ///< dispatched into a corrupting window
  bool chip_corrupt = false; ///< dispatched during a corruption storm
  bool is_probe = false;     ///< the lane breaker's half-open probe
  bool is_hedge = false;     ///< the duplicate of a hedged pair
  std::uint64_t hedge_partner = 0;  ///< other dispatch id, 0 = unhedged
};

ServingRuntime::ServingRuntime(ServingConfig cfg)
    : cfg_(std::move(cfg)), events_(0, cfg_.chip_id) {}
ServingRuntime::~ServingRuntime() = default;

unsigned ServingRuntime::usable_banks() const noexcept {
  const unsigned lost = failed_banks_ > cfg_.chip.spare_banks
                            ? failed_banks_ - cfg_.chip.spare_banks
                            : 0;
  return lost >= cfg_.chip.total_banks ? 0 : cfg_.chip.total_banks - lost;
}

void ServingRuntime::schedule_scan(std::uint64_t cycle) {
  // The armed-cycle set is cleared as each scan fires, so a wake-up at
  // or before the current cycle would pop and re-arm itself in an
  // infinite same-cycle loop; the earliest useful re-scan is next cycle.
  if (cycle <= now_) cycle = now_ + 1;
  if (!scan_cycles_.insert(cycle).second) return;  // already armed
  Event e;
  e.cycle = cycle;
  e.kind = EventKind::kQueueScan;
  events_.push(std::move(e));
}

ServingReport ServingRuntime::run() {
  prime();
  while (!events_.empty()) step();
  return seal();
}

void ServingRuntime::prime() {
  policy_ = make_policy(cfg_.policy);
  if (!policy_) {
    throw std::invalid_argument("unknown scheduling policy: " + cfg_.policy);
  }
  backend_ = make_backend(cfg_.backend);
  if (!backend_) {
    throw std::invalid_argument("unknown execution backend: " + cfg_.backend);
  }
  if (cfg_.workload.mix.empty()) {
    throw std::invalid_argument("degree mix must not be empty");
  }
  for (const auto& share : cfg_.workload.mix) {
    geometry_for(cfg_.chip, share.degree);  // throws on an invalid degree
  }
  if (cfg_.protocol.enabled()) {
    dag_ = compile_protocol(cfg_.protocol);  // throws on bad shares
    geometry_for(cfg_.chip, dag_.lane_degree);
  }
  protos_.clear();
  proto_harness_.reset();

  const double cyc_per_us = cfg_.cycles_per_us();
  const auto horizon =
      static_cast<std::uint64_t>(cfg_.duration_us * cyc_per_us);
  horizon_ = horizon;
  report_ = ServingReport{};
  report_.policy = cfg_.policy;
  report_.backend = cfg_.backend;
  report_.duration_cycles = horizon;
  report_.cycles_per_us = cyc_per_us;
  report_.fleet_mode = cfg_.external_arrivals;
  report_.chip_id = cfg_.chip_id;

  // Auto window width: ~64 windows across the arrival horizon, never
  // finer than 1024 cycles. Pure integer arithmetic — deterministic.
  const std::uint64_t window =
      cfg_.window_cycles > 0
          ? cfg_.window_cycles
          : std::max<std::uint64_t>(1024, horizon / 64);
  report_.series = obs::WindowedSeries(window);
  report_.slo = obs::SloAccountant(cfg_.slo, window, cyc_per_us);
  // A fleet shares one event log across every chip; the fleet clears it
  // once, before priming, so a chip must not wipe its siblings' records.
  if (event_log_ && !cfg_.external_arrivals) event_log_->clear();

  resilience_on_ = cfg_.resilience.enabled();
  report_.resilience_enabled = resilience_on_;

  report_.protocol_enabled = cfg_.protocol.enabled();
  if (report_.protocol_enabled) {
    report_.protocol.kind = protocol_name(cfg_.protocol.kind);
    if (cfg_.protocol.kind == ProtocolKind::kThreshold) {
      report_.protocol.shares = cfg_.protocol.shares;
    }
    report_.protocol.ops_per_request =
        static_cast<std::uint32_t>(dag_.ops.size());
    // Joins verify functionally only when the backend can produce data
    // (the analytic tier has nothing to check, like verify_result).
    if (backend_->functional()) {
      proto_harness_ =
          std::make_unique<ProtocolHarness>(cfg_.protocol, backend_.get());
    }
  }

  const std::uint32_t tenants = std::max<std::uint32_t>(cfg_.workload.tenants, 1);
  tenant_usage_.assign(tenants, 0.0);
  for (std::uint32_t t = 0; t < tenants; ++t) {
    TenantStats ts;
    ts.weight = t < cfg_.tenant_weights.size() && cfg_.tenant_weights[t] > 0
                    ? cfg_.tenant_weights[t]
                    : 1.0;
    report_.tenants.emplace(t, std::move(ts));
  }

  // Fleet drive: no internal generator — the front-end injects arrivals
  // and the queue starts empty.
  if (!cfg_.external_arrivals) {
    if (cfg_.closed_loop_clients > 0) {
      const auto think =
          static_cast<std::uint64_t>(cfg_.think_time_us * cyc_per_us);
      workload_ = std::make_unique<ClosedLoop>(cfg_.workload,
                                               cfg_.closed_loop_clients, think,
                                               horizon);
    } else {
      const double rate_per_cycle =
          cfg_.arrival_rate_per_s / (1e9 / cfg_.cycle_ns);
      if (rate_per_cycle <= 0) {
        throw std::invalid_argument("arrival rate must be positive");
      }
      workload_ =
          std::make_unique<OpenLoopPoisson>(cfg_.workload, rate_per_cycle,
                                            horizon);
    }
    for (const auto& a : workload_->initial()) {
      Event e;
      e.cycle = a.cycle;
      e.kind = EventKind::kArrival;
      e.request = a.request;
      events_.push(std::move(e));
    }
  }
  if (cfg_.fail_bank_at_us > 0) {
    Event e;
    e.cycle = static_cast<std::uint64_t>(cfg_.fail_bank_at_us * cyc_per_us);
    e.kind = EventKind::kBankFailure;
    events_.push(std::move(e));
  }

  if (resilience_on_) {
    const auto& res = cfg_.resilience;
    const std::uint32_t tenants_n =
        std::max<std::uint32_t>(cfg_.workload.tenants, 1);
    retry_budget_ = std::make_unique<RetryBudget>(tenants_n,
                                                  res.retry_budget_ratio);
    shedder_ = CoDelShedder(
        static_cast<std::uint64_t>(res.codel_target_us * cyc_per_us),
        static_cast<std::uint64_t>(res.codel_interval_us * cyc_per_us));
    health_ = std::make_unique<HealthMonitor>(res, cfg_.workload.seed);
    chaos_rng_ = Xoshiro256(res.chaos.seed);
    service_hist_ = obs::Histogram{};
    health_tick_armed_ = false;
    if (res.chaos.enabled) arm_chaos_episode();
    if (res.wear_limit > 0 || res.chaos.enabled) {
      arm_health_tick(res.health_period_cycles);
    }
  }

}

void ServingRuntime::step() {
  // Durability hooks fire at the event boundary, where the runtime's
  // state is consistent: a snapshot taken here is exactly reproducible
  // by a replay that processed the same number of events, and the crash
  // campaign's SIGKILL lands between events so the journal's only
  // possible damage is the torn tail the loader already tolerates.
  // (Fleet mode leaves both with the fleet's merged loop.)
  if (owned_journal_) {
    if (durab_.snapshot_every > 0 && event_index_ > 0 &&
        event_index_ % durab_.snapshot_every == 0) {
      take_snapshot(event_index_);
    }
    if (durab_.kill_at_event > 0 &&
        event_index_ + 1 == durab_.kill_at_event) {
      std::raise(SIGKILL);
    }
  }
  const Event e = events_.pop();
  now_ = e.cycle;
  report_.drain_cycle = std::max(report_.drain_cycle, now_);
  switch (e.kind) {
    case EventKind::kArrival: handle_arrival(e); break;
    case EventKind::kQueueScan:
      scan_cycles_.erase(e.cycle);
      try_dispatch();
      break;
    case EventKind::kCompletion: handle_completion(e); break;
    case EventKind::kBankFailure: handle_bank_failure(e); break;
    case EventKind::kTimeout: handle_timeout(e); break;
    case EventKind::kRetryEnqueue: handle_retry_enqueue(e); break;
    case EventKind::kHedge: handle_hedge(e); break;
    case EventKind::kHealth: handle_health(e); break;
    case EventKind::kChaos: handle_chaos(e); break;
    default: break;  // fleet kinds never reach a chip's queue
  }
  event_index_ += 1;
}

ServingReport ServingRuntime::seal() {
  // Anything still queued is starved: the chip degraded below its class's
  // bank requirement mid-stream. Surface it rather than hanging.
  report_.queued = pending_.size();
  report_.in_flight = in_flight_.size();
  pending_.clear();

  if (report_.drain_cycle > 0) {
    const double drain_s = static_cast<double>(report_.drain_cycle) *
                           cfg_.cycle_ns * 1e-9;
    report_.throughput_per_s = static_cast<double>(report_.completed) / drain_s;
    report_.utilization =
        static_cast<double>(report_.busy_bank_cycles) /
        (static_cast<double>(cfg_.chip.total_banks) *
         static_cast<double>(report_.drain_cycle));
  }
  if (horizon_ > 0) {
    report_.offered_per_s = static_cast<double>(report_.submitted) /
                            (static_cast<double>(horizon_) * cfg_.cycle_ns *
                             1e-9);
  }
  publish_metrics();
  // Clean end of run: the seal pins the final conservation counters, so
  // a validator can check the whole ledger without the serving report
  // and --recover can tell "finished" from "interrupted".
  if (journal_ != nullptr) {
    journal_->record(Journal::seal_payload(
        jidx(), now_,
        {{"sub", report_.submitted},
         {"adm", report_.admitted},
         {"cmp", report_.completed},
         {"rej", report_.rejected + report_.rejected_unservable +
                     report_.resilience.rejected_deadline},
         {"shd", report_.resilience.shed},
         {"tmo", report_.resilience.timed_out},
         {"fld", report_.resilience.failed},
         {"que", report_.queued},
         {"inf", report_.in_flight},
         // Ops cancelled by exactly-once protocol teardown: the gap
         // between admitted and individually-fated ops in protocol mode
         // (0 for raw requests), closing the op-granularity ledger.
         {"cnl", report_.protocol.ops_cancelled},
         {"wra", report_.resilience.wrong_accepted}}));
  }
  return report_;
}

// -- fleet drive --------------------------------------------------------------

void ServingRuntime::inject(Request r, std::uint64_t cycle) {
  Event e;
  e.cycle = std::max(cycle, now_);
  e.kind = EventKind::kArrival;
  e.request = std::move(r);
  events_.push(std::move(e));
}

void ServingRuntime::emit_outcome(const Request& r, Outcome o) {
  // Journal the terminal commitment *before* handing it to the fleet:
  // if the process dies between the two, recovery re-delivers (the fleet
  // replays deterministically too), never loses, the outcome.
  if (journal_ != nullptr) {
    journal_->record(Journal::outcome_payload(jidx(), now_, r.id, o));
  }
  if (outcome_sink_) outcome_sink_(r, o, now_);
}

// -- durability ---------------------------------------------------------------

namespace {

std::string u64_hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

void ServingRuntime::enable_durability(const DurabilityOptions& opts) {
  durab_ = opts;
  if (!durab_.enabled()) return;
  std::filesystem::create_directories(durab_.dir);
  owned_journal_ = std::make_unique<Journal>();
  const std::string hdr =
      Journal::header_payload("single", cfg_.chip_id, cfg_.workload.seed,
                              serving_config_to_json(cfg_));
  owned_journal_->open(durab_.dir + "/journal.log", hdr, durab_.recover);
  journal_ = owned_journal_.get();
}

void ServingRuntime::take_snapshot(std::uint64_t index) {
  // Always (re)write the document — a replay passing this index rebuilds
  // byte-identical state, so the rename lands the same content — then
  // journal the CRC. During recovery the record byte-compare *is* the
  // cross-check: a CRC drift from the pre-crash record throws.
  std::uint32_t crc = 0;
  const std::string file =
      write_snapshot(durab_.dir, index, snapshot_state(), &crc);
  journal_->record(Journal::snap_payload(index, file, crc));
}

obs::Json ServingRuntime::snapshot_state() const {
  obs::Json s = obs::Json::object();
  s.set("cycle", now_);
  s.set("event_index", event_index_);
  s.set("next_dispatch_id", next_dispatch_id_);
  s.set("pending", std::uint64_t{pending_.size()});
  s.set("in_flight", std::uint64_t{in_flight_.size()});
  s.set("protos", std::uint64_t{protos_.size()});

  obs::Json counters = obs::Json::object();
  counters.set("submitted", report_.submitted);
  counters.set("admitted", report_.admitted);
  counters.set("completed", report_.completed);
  counters.set("rejected", report_.rejected);
  counters.set("rejected_unservable", report_.rejected_unservable);
  counters.set("retried", report_.retried);
  counters.set("repartitions", report_.repartitions);
  counters.set("bank_failures", report_.bank_failures);
  if (resilience_on_) {
    counters.set("shed", report_.resilience.shed);
    counters.set("timed_out", report_.resilience.timed_out);
    counters.set("failed", report_.resilience.failed);
    counters.set("retries", report_.resilience.retries);
    counters.set("chaos_episodes", report_.resilience.chaos_episodes);
  }
  s.set("counters", std::move(counters));

  // Lane geometry + per-lane resilience machinery (breaker, wear, chaos
  // windows): the state whose drift under replay would change dispatch
  // decisions.
  obs::Json lanes = obs::Json::array();
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const Lane& lane = lanes_[i];
    obs::Json lj = obs::Json::object();
    lj.set("degree", std::uint64_t{lane.degree});
    lj.set("banks", std::uint64_t{lane.banks});
    lj.set("free_at", lane.free_at);
    lj.set("in_flight", std::uint64_t{lane.in_flight});
    lj.set("dead", lane.dead);
    lj.set("draining", lane.draining);
    lj.set("slow_until", lane.slow_until);
    lj.set("corrupt_until", lane.corrupt_until);
    lj.set("breaker_state",
           std::uint64_t{static_cast<unsigned>(lane.breaker.state())});
    lj.set("breaker_failures",
           std::uint64_t{lane.breaker.consecutive_failures()});
    lj.set("breaker_open_until", lane.breaker.open_until());
    if (health_) lj.set("wear_writes", health_->wear_writes(i));
    lanes.push_back(std::move(lj));
  }
  s.set("lanes", std::move(lanes));

  obs::Json banks = obs::Json::object();
  banks.set("allocated", std::uint64_t{allocated_banks_});
  banks.set("failed", std::uint64_t{failed_banks_});
  banks.set("usable", std::uint64_t{usable_banks()});
  s.set("banks", std::move(banks));

  // WFQ fairness ledgers (bank-cycles / weight per tenant).
  obs::Json usage = obs::Json::array();
  for (const double u : tenant_usage_) usage.push_back(obs::Json(u));
  s.set("tenant_usage", std::move(usage));

  // RNG cursors as non-advancing state digests, hex so the full 64 bits
  // survive the JSON number path.
  obs::Json rngs = obs::Json::object();
  if (workload_) rngs.set("workload", u64_hex(workload_->rng_digest()));
  if (resilience_on_) rngs.set("chaos", u64_hex(chaos_rng_.digest()));
  s.set("rng", std::move(rngs));

  s.set("chip_slow_until", chip_slow_until_);
  s.set("chip_corrupt_until", chip_corrupt_until_);
  return s;
}

std::vector<Request> ServingRuntime::extract_pending() {
  // Pending timeouts of migrated requests no-op: handle_timeout scans
  // pending_ by id and finds nothing.
  if (!cfg_.protocol.enabled()) {
    std::vector<Request> out;
    out.swap(pending_);
    report_.migrated += out.size();
    return out;
  }
  // Protocol drain: only whole untouched DAGs migrate (the origin is
  // re-expanded on the target chip). A protocol with any op dispatched,
  // completed or in retry backoff keeps its remaining ops here — its
  // in-flight work must join on this chip.
  std::map<std::uint64_t, std::size_t> queued_ops;
  for (const Request& r : pending_) queued_ops[r.proto_id] += 1;
  std::set<std::uint64_t> movable;
  for (const auto& [pid, st] : protos_) {
    if (st.done_mask == 0 && queued_ops[pid] == st.op_count) {
      movable.insert(pid);
    }
  }
  std::vector<Request> keep;
  std::uint64_t moved_ops = 0;
  for (Request& r : pending_) {
    if (movable.contains(r.proto_id)) {
      moved_ops += 1;  // the op is dropped; its origin migrates whole
    } else {
      keep.push_back(std::move(r));
    }
  }
  pending_ = std::move(keep);
  std::vector<Request> out;
  for (const std::uint64_t pid : movable) {
    out.push_back(std::move(protos_.at(pid).origin));
    protos_.erase(pid);
  }
  report_.migrated += moved_ops;
  return out;
}

std::vector<Request> ServingRuntime::crash_chip() {
  // Deduplicate by request id: a hedged pair is two in-flight entries but
  // one request, and the fleet must re-dispatch it exactly once.
  std::vector<Request> out;
  std::set<std::uint64_t> seen;
  for (const auto& [id, inf] : in_flight_) {
    if (inf.request.proto_id == 0 && seen.insert(inf.request.id).second) {
      out.push_back(inf.request);
    }
  }
  report_.lost_in_flight += in_flight_.size();
  in_flight_.clear();
  for (Request& r : pending_) {
    if (r.proto_id == 0 && seen.insert(r.id).second) {
      out.push_back(std::move(r));
    }
  }
  report_.migrated += pending_.size();
  pending_.clear();
  // Protocol requests collapse to their origin: the crash loses every op
  // (even ones in retry backoff — their re-enqueue finds no proto state)
  // and the fleet re-dispatches the whole DAG exactly once.
  for (auto& [pid, st] : protos_) out.push_back(std::move(st.origin));
  protos_.clear();
  for (Lane& lane : lanes_) {
    lane.dead = true;
    lane.in_flight = 0;
  }
  // Dark until revive(): no usable banks, so nothing dispatches. Stray
  // internal-retry events still in the air re-enter the queue and wait;
  // completion/hedge/scan events for the dead lanes fire as no-ops.
  allocated_banks_ = 0;
  failed_banks_ = cfg_.chip.total_banks + cfg_.chip.spare_banks;
  chip_slow_until_ = 0;
  chip_corrupt_until_ = 0;
  return out;
}

void ServingRuntime::revive(std::uint64_t cycle) {
  failed_banks_ = 0;
  schedule_scan(std::max(cycle, now_) + 1);
  if (resilience_on_ &&
      (cfg_.resilience.wear_limit > 0 || cfg_.resilience.chaos.enabled)) {
    arm_health_tick(cfg_.resilience.health_period_cycles);
  }
}

void ServingRuntime::slow_down(std::uint64_t until_cycle, double factor) {
  chip_slow_until_ = std::max(chip_slow_until_, until_cycle);
  if (factor > 1.0) chip_slow_factor_ = factor;
}

void ServingRuntime::corrupt_window(std::uint64_t until_cycle) {
  chip_corrupt_until_ = std::max(chip_corrupt_until_, until_cycle);
}

obs::Json ServingRuntime::ev_base(const char* name, const Request& r) const {
  obs::Json rec = obs::Json::object();
  rec.set("ev", name);
  rec.set("cycle", now_);
  rec.set("chip", std::uint64_t{cfg_.chip_id});
  rec.set("trace", r.id);
  rec.set("tenant", std::uint64_t{r.tenant});
  return rec;
}

void ServingRuntime::record_bad_outcome(const char* counter) {
  report_.series.count(counter, now_);
  report_.slo.record_bad(now_);
}

void ServingRuntime::handle_arrival(const Event& e) {
  // Protocol mode: every arrival (generated or fleet-injected) is a
  // protocol-level request to compile into a DAG. Op retries re-enter
  // through kRetryEnqueue, never through kArrival.
  if (cfg_.protocol.enabled()) {
    handle_proto_arrival(e);
    return;
  }
  Request r = e.request;
  report_.submitted += 1;
  TenantStats& ts = report_.tenants.at(r.tenant);
  ts.submitted += 1;
  report_.queue_depth.add(pending_.size());
  report_.series.count("submitted", now_);
  report_.series.observe("queue_depth", now_, pending_.size());
  obs::metrics()
      .histogram("cryptopim.runtime.queue_depth", "requests")
      .add(pending_.size());

  // Chain the next open-loop arrival before any admission decision so
  // backpressure never throttles the *offered* load. (Fleet drive has no
  // generator: the front-end injects every arrival itself.)
  if (workload_) {
    Arrival this_arrival{e.cycle, r};
    if (auto next = workload_->next_after_arrival(this_arrival)) {
      Event ne;
      ne.cycle = next->cycle;
      ne.kind = EventKind::kArrival;
      ne.request = next->request;
      events_.push(std::move(ne));
    }
  }

  const LaneGeometry g = geometry_for(cfg_.chip, r.degree);
  if (g.banks > usable_banks()) {
    report_.rejected_unservable += 1;
    ts.rejected += 1;
    record_bad_outcome("rejected");
    if (elog_on()) {
      obs::Json rec = ev_base("rejected", r);
      rec.set("reason", "unservable");
      event_log_->log(std::move(rec));
    }
    emit_outcome(r, Outcome::kRejected);
    return;
  }
  if (pending_.size() >= cfg_.queue_capacity) {
    report_.rejected += 1;
    ts.rejected += 1;
    record_bad_outcome("rejected");
    if (elog_on()) {
      obs::Json rec = ev_base("rejected", r);
      rec.set("reason", "queue_full");
      event_log_->log(std::move(rec));
    }
    emit_outcome(r, Outcome::kRejected);
    return;
  }
  r.service_cycles = g.service();
  if (cfg_.deadline_slack > 0) {
    r.deadline_cycle =
        r.arrival_cycle +
        static_cast<std::uint64_t>(cfg_.deadline_slack *
                                   static_cast<double>(r.service_cycles));
  }
  const bool hard_deadline = resilience_on_ && cfg_.resilience.deadline_us > 0;
  if (hard_deadline) {
    r.deadline_cycle =
        r.arrival_cycle + static_cast<std::uint64_t>(
                              cfg_.resilience.deadline_us *
                              cfg_.cycles_per_us());
    // Deadline propagation into admission: the class backlog ahead of
    // this request, served at the class's live lane count, must still
    // leave room for one service before the deadline. Rejecting here is
    // kinder than admitting work that can only miss.
    std::uint64_t backlog = 0;
    for (const Request& p : pending_) backlog += p.degree == r.degree;
    unsigned lanes_alive = 0;
    for (const Lane& lane : lanes_) {
      lanes_alive += !lane.dead && !lane.draining && lane.degree == r.degree;
    }
    // No lane yet: one will be carved, so the backlog drains at 1 lane.
    const std::uint64_t wait =
        backlog * g.occupancy() / std::max(1u, lanes_alive);
    if (now_ + wait + g.service() > r.deadline_cycle) {
      report_.resilience.rejected_deadline += 1;
      ts.rejected_deadline += 1;
      record_bad_outcome("rejected");
      if (elog_on()) {
        obs::Json rec = ev_base("rejected", r);
        rec.set("reason", "deadline_infeasible");
        event_log_->log(std::move(rec));
      }
      emit_outcome(r, Outcome::kRejected);
      return;
    }
  }
  report_.admitted += 1;
  ts.admitted += 1;
  report_.series.count("admitted", now_);
  // Admission commitment: journaled after the deadline stamp so replay
  // matches the exact field set the runtime serves.
  if (journal_ != nullptr) {
    journal_->record(Journal::admit_payload(jidx(), now_, r));
  }
  if (elog_on()) {
    obs::Json rec = ev_base("admitted", r);
    rec.set("degree", std::uint64_t{r.degree});
    if (r.deadline_cycle > 0) rec.set("deadline", r.deadline_cycle);
    event_log_->log(std::move(rec));
  }
  if (retry_budget_) retry_budget_->on_admitted(r.tenant);
  if (hard_deadline) {
    Event te;
    te.cycle = r.deadline_cycle;
    te.kind = EventKind::kTimeout;
    te.dispatch_id = r.id;
    events_.push(std::move(te));
  }
  pending_.push_back(std::move(r));
  try_dispatch();
}

// -- protocol DAG serving -----------------------------------------------------

bool ServingRuntime::is_host_op(const Request& r) noexcept {
  return r.proto_id != 0 && (r.op_class == OpClass::kSample ||
                             r.op_class == OpClass::kAggregate);
}

bool ServingRuntime::proto_ready(const Request& r) const {
  const auto it = protos_.find(r.proto_id);
  if (it == protos_.end()) return false;  // proto failed: op is an orphan
  return (it->second.done_mask & r.parent_mask) == r.parent_mask;
}

void ServingRuntime::handle_proto_arrival(const Event& e) {
  const Request& origin = e.request;
  const std::size_t n_ops = dag_.ops.size();
  TenantStats& ts = report_.tenants.at(origin.tenant);
  // The ledger stays at op granularity — the serving/2 conservation
  // identities (submitted == admitted + rejected, ...) keep holding with
  // primitive ops as the unit of work; the protocol block counts whole
  // requests.
  report_.submitted += n_ops;
  ts.submitted += n_ops;
  report_.protocol.requests += 1;
  report_.queue_depth.add(pending_.size());
  report_.series.count("submitted", now_, n_ops);
  report_.series.observe("queue_depth", now_, pending_.size());
  obs::metrics()
      .histogram("cryptopim.runtime.queue_depth", "requests")
      .add(pending_.size());

  // Chain the next open-loop arrival before any admission decision.
  if (workload_) {
    Arrival this_arrival{e.cycle, origin};
    if (auto next = workload_->next_after_arrival(this_arrival)) {
      Event ne;
      ne.cycle = next->cycle;
      ne.kind = EventKind::kArrival;
      ne.request = next->request;
      events_.push(std::move(ne));
    }
  }

  // All-or-nothing admission: the whole DAG must be servable and fit.
  const auto reject = [&](const char* reason, std::uint64_t& counter) {
    counter += n_ops;
    ts.rejected += n_ops;
    report_.protocol.rejected += 1;
    record_bad_outcome("rejected");
    if (elog_on()) {
      obs::Json rec = ev_base("rejected", origin);
      rec.set("reason", reason);
      event_log_->log(std::move(rec));
    }
    emit_outcome(origin, Outcome::kRejected);
  };
  if (geometry_for(cfg_.chip, dag_.lane_degree).banks > usable_banks()) {
    reject("unservable", report_.rejected_unservable);
    return;
  }
  if (pending_.size() + n_ops > cfg_.queue_capacity) {
    reject("queue_full", report_.rejected);
    return;
  }

  report_.admitted += n_ops;
  ts.admitted += n_ops;
  report_.series.count("admitted", now_, n_ops);
  // One admission commitment for the whole DAG: the op expansion below
  // is a pure function of the origin, so replay re-derives every op.
  if (journal_ != nullptr) {
    journal_->record(Journal::admit_payload(jidx(), now_, origin));
  }
  if (retry_budget_) retry_budget_->on_admitted(origin.tenant);
  const bool hard_deadline = resilience_on_ && cfg_.resilience.deadline_us > 0;

  // Protocol ids are 1-based: proto_id == 0 is the raw-request sentinel
  // on Request, and origin ids start at 0.
  const std::uint64_t pid = origin.id + 1;
  ProtoState st;
  st.origin = origin;
  st.op_count = static_cast<std::uint32_t>(n_ops);
  protos_[pid] = std::move(st);

  if (elog_on()) {
    obs::Json rec = ev_base("admitted", origin);
    rec.set("degree", std::uint64_t{dag_.lane_degree});
    rec.set("protocol", report_.protocol.kind);
    rec.set("ops", std::uint64_t{n_ops});
    event_log_->log(std::move(rec));
  }

  for (std::size_t i = 0; i < n_ops; ++i) {
    const ProtoOp& op = dag_.ops[i];
    Request r = origin;
    // Op ids order the DAG by (protocol arrival, op index) under every
    // policy's older() tie-break, and stay unique: op_count <= 64.
    r.id = (origin.id << 6) | i;
    r.proto_id = pid;
    r.op_index = static_cast<std::uint32_t>(i);
    r.op_class = op.cls;
    r.fanout_group = op.fanout_group;
    r.parent_mask = op.parent_mask;
    r.degree = op.degree;
    const bool host =
        op.cls == OpClass::kSample || op.cls == OpClass::kAggregate;
    r.service_cycles = host ? cfg_.protocol.host_op_cycles
                            : geometry_for(cfg_.chip, op.degree).service();
    if (cfg_.deadline_slack > 0) {
      r.deadline_cycle =
          r.arrival_cycle +
          static_cast<std::uint64_t>(cfg_.deadline_slack *
                                     static_cast<double>(r.service_cycles));
    }
    if (hard_deadline) {
      r.deadline_cycle =
          r.arrival_cycle + static_cast<std::uint64_t>(
                                cfg_.resilience.deadline_us *
                                cfg_.cycles_per_us());
      Event te;
      te.cycle = r.deadline_cycle;
      te.kind = EventKind::kTimeout;
      te.dispatch_id = r.id;
      events_.push(std::move(te));
    }
    if (elog_on()) {
      obs::Json rec = ev_base("protocol_op", r);
      rec.set("proto", pid);
      rec.set("op", std::uint64_t{r.op_index});
      rec.set("cls", op_class_name(op.cls));
      if (op.parent_mask != 0) rec.set("parents", op.parent_mask);
      if (op.fanout_group != 0) {
        rec.set("group", std::uint64_t{op.fanout_group});
      }
      event_log_->log(std::move(rec));
    }
    pending_.push_back(std::move(r));
  }
  try_dispatch();
}

void ServingRuntime::try_dispatch() {
  std::set<std::uint32_t> blocked;
  std::set<std::uint64_t> skipped;  // fan-out ops boxed out by siblings
  while (!pending_.empty()) {
    std::vector<bool> eligible(pending_.size());
    bool any = false;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      const Request& p = pending_[i];
      // Dependency frontier: a DAG op waits for its parents. Host ops
      // never touch lanes, so a blocked degree class does not gate them.
      eligible[i] = (is_host_op(p) || !blocked.contains(p.degree)) &&
                    !skipped.contains(p.id) &&
                    (p.proto_id == 0 || proto_ready(p));
      any = any || eligible[i];
    }
    if (!any) break;
    PolicyContext ctx;
    ctx.now = now_;
    ctx.tenant_usage = tenant_usage_;
    const std::size_t idx = policy_->pick(pending_, eligible, ctx);
    if (idx == Policy::npos) break;
    const bool host = is_host_op(pending_[idx]);
    Lane* lane = nullptr;
    if (!host) {
      lane = acquire_lane_for(pending_[idx]);
      if (!lane) {
        // A fan-out op may be boxed out only by its in-flight siblings;
        // other work in the class can still run, so skip just this op (a
        // sibling's completion re-runs dispatch with a smaller exclusion).
        if (pending_[idx].fanout_group != 0) {
          skipped.insert(pending_[idx].id);
        } else {
          blocked.insert(pending_[idx].degree);
        }
        continue;
      }
    }
    // CoDel-style shedding at dequeue: when the minimum queueing sojourn
    // has stayed above target for a full interval, drop instead of
    // serving (and tighten the drop cadence) until the queue recovers.
    if (shedder_.enabled()) {
      const std::uint64_t sojourn = now_ - pending_[idx].arrival_cycle;
      if (shedder_.should_drop(sojourn, now_)) {
        Request dropped = std::move(pending_[idx]);
        pending_.erase(pending_.begin() + static_cast<long>(idx));
        report_.resilience.shed += 1;
        record_bad_outcome("shed");
        if (elog_on()) {
          obs::Json rec = ev_base("shed", dropped);
          rec.set("sojourn", sojourn);
          event_log_->log(std::move(rec));
        }
        if (dropped.proto_id != 0) {
          // Shedding one op sheds the protocol: siblings are useless.
          fail_protocol(dropped.proto_id, Outcome::kShed);
        } else {
          notify_request_gone(dropped);
          emit_outcome(dropped, Outcome::kShed);
        }
        continue;
      }
    }
    if (host) {
      dispatch_host(idx);
    } else {
      dispatch(idx, *lane);
    }
  }
}

ServingRuntime::Lane* ServingRuntime::acquire_lane_for(const Request& r) {
  if (r.proto_id == 0 || r.fanout_group == 0) return acquire_lane(r.degree);
  // Fan-out op: never share a lane with an in-flight sibling of the same
  // group — the point of the fan-out is limb/share parallelism across
  // lanes. No deadlock risk: a sibling's completion re-runs dispatch
  // with a smaller exclusion set (worst case the group serializes).
  std::set<std::size_t> excl;
  for (const auto& [id, inf] : in_flight_) {
    if (inf.request.proto_id == r.proto_id &&
        inf.request.fanout_group == r.fanout_group && inf.lane != kHostLane) {
      excl.insert(inf.lane);
    }
  }
  return acquire_lane(r.degree, excl, /*allow_scan=*/true);
}

ServingRuntime::Lane* ServingRuntime::acquire_lane(std::uint32_t degree,
                                                   std::size_t exclude,
                                                   bool allow_scan) {
  std::set<std::size_t> excl;
  if (exclude != static_cast<std::size_t>(-1)) excl.insert(exclude);
  return acquire_lane(degree, excl, allow_scan);
}

ServingRuntime::Lane* ServingRuntime::acquire_lane(
    std::uint32_t degree, const std::set<std::size_t>& exclude,
    bool allow_scan) {
  Lane* free_now = nullptr;
  std::uint64_t soonest = ~std::uint64_t{0};
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    Lane& lane = lanes_[i];
    if (lane.dead || lane.degree != degree || exclude.contains(i)) continue;
    if (lane.draining) continue;  // worn: finishing up, remap pending
    if (!lane.breaker.can_accept(now_)) {
      // Open: re-scan when the open period elapses. Half-open with the
      // probe in flight (open_until already passed): the probe's
      // completion runs try_dispatch, so no wake-up is needed — and a
      // past-cycle scan would re-arm itself forever.
      if (lane.breaker.open_until() > now_)
        soonest = std::min(soonest, lane.breaker.open_until());
      continue;
    }
    if (lane.free_at <= now_) {
      if (!free_now || lane.free_at < free_now->free_at) free_now = &lane;
    } else {
      soonest = std::min(soonest, lane.free_at);
    }
  }
  if (free_now) return free_now;
  if (!allow_scan) return nullptr;  // hedges only use lanes free right now

  const LaneGeometry g = geometry_for(cfg_.chip, degree);
  const unsigned usable = usable_banks();
  unsigned free_banks = usable > allocated_banks_ ? usable - allocated_banks_
                                                  : 0;
  if (free_banks < g.banks) {
    reclaim_idle_lanes(g.banks, degree);
    free_banks = usable > allocated_banks_ ? usable - allocated_banks_ : 0;
  }
  if (free_banks >= g.banks) {
    Lane* lane = carve_lane(degree);
    if (lane->free_at <= now_) return lane;
    schedule_scan(lane->free_at);
    return nullptr;
  }
  if (soonest != ~std::uint64_t{0}) schedule_scan(soonest);
  return nullptr;
}

ServingRuntime::Lane* ServingRuntime::carve_lane(std::uint32_t degree) {
  const LaneGeometry g = geometry_for(cfg_.chip, degree);
  Lane lane;
  lane.degree = degree;
  lane.banks = g.banks;
  lane.free_at = now_ + cfg_.repartition_cycles;
  lane.track =
      runtime_track_base() + 1 + static_cast<std::uint32_t>(lanes_.size());
  if (resilience_on_) {
    lane.breaker = CircuitBreaker(cfg_.resilience.breaker_k,
                                  cfg_.resilience.breaker_open_cycles);
  }
  allocated_banks_ += g.banks;
  report_.repartitions += 1;
  report_.series.count("repartitions", now_);
  auto& tr = obs::tracer();
  if (tr.enabled()) {
    tr.set_track_name(lane.track, "runtime lane " +
                                      std::to_string(lanes_.size()) + " (n=" +
                                      std::to_string(degree) + ")");
    tr.emit(runtime_track_base(), "repartition n=" + std::to_string(degree),
            "runtime", now_, cfg_.repartition_cycles);
  }
  if (elog_on()) {
    obs::Json rec = obs::Json::object();
    rec.set("ev", "carve");
    rec.set("cycle", now_);
    rec.set("chip", std::uint64_t{cfg_.chip_id});
    rec.set("lane", std::uint64_t{lanes_.size()});
    rec.set("degree", std::uint64_t{degree});
    rec.set("ready", lane.free_at);
    event_log_->log(std::move(rec));
  }
  lanes_.push_back(lane);
  return &lanes_.back();
}

void ServingRuntime::reclaim_idle_lanes(unsigned needed,
                                        std::uint32_t for_degree) {
  std::set<std::uint32_t> pending_degrees;
  for (const Request& r : pending_) pending_degrees.insert(r.degree);
  for (Lane& lane : lanes_) {
    const unsigned usable = usable_banks();
    const unsigned free_banks =
        usable > allocated_banks_ ? usable - allocated_banks_ : 0;
    if (free_banks >= needed) return;
    if (lane.dead || lane.in_flight > 0 || lane.free_at > now_) continue;
    if (lane.degree == for_degree) continue;
    if (pending_degrees.contains(lane.degree)) continue;
    lane.dead = true;
    allocated_banks_ -= lane.banks;
  }
}

void ServingRuntime::dispatch(std::size_t queue_index, Lane& lane) {
  Request r = pending_[queue_index];
  pending_.erase(pending_.begin() + static_cast<long>(queue_index));

  const LaneGeometry g = geometry_for(cfg_.chip, r.degree);
  const std::uint64_t t0 = now_;
  const std::size_t lane_idx = static_cast<std::size_t>(&lane - lanes_.data());
  std::uint64_t service = g.service();
  bool is_probe = false;
  if (resilience_on_) {
    is_probe = lane.breaker.note_dispatch(t0);
    if (is_probe) report_.resilience.breaker_probes += 1;
    if (health_ && health_->note_dispatch(lane_idx)) {
      // The lane crossed its wear limit on this very write: it corrupts
      // from here on and only a remap onto fresh banks clears it. This
      // is the failure mode the proactive drain exists to prevent.
      lane.corrupt_until = kForever;
      lane.draining = true;
      report_.resilience.wear_corruptions += 1;
    }
    if (health_ && health_->wants_drain(lane_idx)) lane.draining = true;
    if (lane.slow_until > t0) {
      service = static_cast<std::uint64_t>(
          static_cast<double>(service) * cfg_.resilience.chaos.slow_factor);
    }
  }
  // Whole-chip brownout: every dispatch in the episode runs slow.
  if (t0 < chip_slow_until_) {
    service = static_cast<std::uint64_t>(
        static_cast<double>(service) * chip_slow_factor_);
  }
  const std::uint64_t completion = t0 + service;
  lane.free_at = t0 + g.occupancy();
  lane.in_flight += 1;

  const std::uint64_t bank_cycles =
      static_cast<std::uint64_t>(lane.banks) * g.occupancy();
  report_.busy_bank_cycles += bank_cycles;
  TenantStats& ts = report_.tenants.at(r.tenant);
  ts.bank_cycles += bank_cycles;
  tenant_usage_[r.tenant] += static_cast<double>(bank_cycles) / ts.weight;

  const std::uint64_t id = next_dispatch_id_++;
  report_.series.count("dispatched", t0);
  report_.series.observe("queue_wait_cycles", t0, t0 - r.arrival_cycle);
  if (elog_on()) {
    obs::Json rec = ev_base("dispatched", r);
    rec.set("dispatch", id);
    rec.set("lane", std::uint64_t{lane_idx});
    rec.set("wait", t0 - r.arrival_cycle);
    if (r.attempts > 0) rec.set("attempt", std::uint64_t{r.attempts});
    if (is_probe) rec.set("probe", true);
    if (r.proto_id != 0) {
      // DAG linkage: the fan-out tests read these to check that sibling
      // limb ops landed on distinct lanes.
      rec.set("proto", r.proto_id);
      rec.set("op", std::uint64_t{r.op_index});
      rec.set("cls", op_class_name(r.op_class));
      if (r.fanout_group != 0) rec.set("group", std::uint64_t{r.fanout_group});
    }
    event_log_->log(std::move(rec));
  }
  auto& tr = obs::tracer();
  if (tr.enabled()) {
    // Flow chain anchor: first dispatch starts the request's arrow
    // chain, re-dispatches (retries) continue it.
    tr.flow(r.attempts == 0 ? 's' : 't', r.id, lane.track,
            "req " + std::to_string(r.id), "flow", t0);
  }
  InFlight inf;
  inf.request = std::move(r);
  inf.lane = lane_idx;
  inf.dispatched_at = t0;
  inf.is_probe = is_probe;
  if (resilience_on_) inf.corrupt = chaos_corrupting(lane, t0);
  inf.chip_corrupt = t0 < chip_corrupt_until_;
  in_flight_.emplace(id, std::move(inf));

  Event e;
  e.cycle = completion;
  e.kind = EventKind::kCompletion;
  e.dispatch_id = id;
  events_.push(std::move(e));

  if (resilience_on_ && cfg_.resilience.hedge) {
    // Straggler check: if the request is still running after the hedge
    // delay, duplicate it onto a second lane (first result wins). The
    // check lands after the nominal completion only when the lane is
    // chaos-slowed — exactly the straggler case hedging targets.
    const std::uint64_t delay = hedge_delay_cycles();
    if (delay > 0) {
      Event he;
      he.cycle = t0 + delay;
      he.kind = EventKind::kHedge;
      he.dispatch_id = id;
      events_.push(std::move(he));
    }
  }
}

void ServingRuntime::dispatch_host(std::size_t queue_index) {
  // A laneless host op (sampling / aggregation): fixed cycle cost, no
  // bank accounting, no tenant fairness charge, no hedging or chaos —
  // the host is outside the crossbar fault domain.
  Request r = std::move(pending_[queue_index]);
  pending_.erase(pending_.begin() + static_cast<long>(queue_index));
  const std::uint64_t t0 = now_;
  const std::uint64_t id = next_dispatch_id_++;
  report_.protocol.host_ops += 1;
  report_.series.count("dispatched", t0);
  report_.series.observe("queue_wait_cycles", t0, t0 - r.arrival_cycle);
  if (elog_on()) {
    obs::Json rec = ev_base("dispatched", r);
    rec.set("dispatch", id);
    rec.set("host", true);
    rec.set("wait", t0 - r.arrival_cycle);
    rec.set("proto", r.proto_id);
    rec.set("op", std::uint64_t{r.op_index});
    rec.set("cls", op_class_name(r.op_class));
    event_log_->log(std::move(rec));
  }
  const std::uint64_t service = std::max<std::uint64_t>(r.service_cycles, 1);
  InFlight inf;
  inf.request = std::move(r);
  inf.lane = kHostLane;
  inf.dispatched_at = t0;
  in_flight_.emplace(id, std::move(inf));
  Event e;
  e.cycle = t0 + service;
  e.kind = EventKind::kCompletion;
  e.dispatch_id = id;
  events_.push(std::move(e));
}

void ServingRuntime::complete_host_op(const Event& e, const InFlight& inf) {
  const Request& r = inf.request;
  const std::uint64_t latency = now_ - r.arrival_cycle;
  report_.completed += 1;
  report_.latency_cycles.add(latency);
  report_.series.count("completed", now_);
  report_.series.observe("latency_cycles", now_, latency);
  report_.slo.record_good(now_, latency);
  obs::metrics()
      .histogram("cryptopim.runtime.latency_cycles", "cycles")
      .add(latency);
  TenantStats& ts = report_.tenants.at(r.tenant);
  ts.completed += 1;
  ts.latency_cycles.add(latency);
  if (r.deadline_cycle > 0 && now_ > r.deadline_cycle) {
    report_.deadline_misses += 1;
    ts.deadline_misses += 1;
  }
  if (elog_on()) {
    obs::Json rec = ev_base("completed", r);
    rec.set("dispatch", e.dispatch_id);
    rec.set("host", true);
    rec.set("latency", latency);
    event_log_->log(std::move(rec));
  }
  on_op_complete(r, inf.dispatched_at);
  try_dispatch();
}

void ServingRuntime::on_op_complete(const Request& r,
                                    std::uint64_t dispatched_at) {
  const auto it = protos_.find(r.proto_id);
  if (it == protos_.end()) return;  // proto already failed: straggler op
  ProtoState& st = it->second;
  const std::uint64_t bit = std::uint64_t{1} << r.op_index;
  if (st.done_mask & bit) return;  // hedge twin already delivered this op
  st.done_mask |= bit;
  st.ops_done += 1;
  report_.protocol.ops_completed += 1;
  report_.protocol.op_cycles[static_cast<unsigned>(r.op_class)].add(
      now_ - dispatched_at);
  if (st.ops_done < st.op_count) {
    return;  // the caller's try_dispatch releases the unblocked children
  }

  // Final op: the DAG joins and the protocol request completes exactly
  // once. Verified requests run the whole flow through the backend here
  // and compare against the pure-host reference.
  const ProtoState done = std::move(st);
  protos_.erase(it);
  const std::uint64_t latency = now_ - done.origin.arrival_cycle;
  report_.protocol.completed += 1;
  report_.protocol.latency_cycles.add(latency);
  bool ok = true;
  if (done.origin.verify && proto_harness_) {
    report_.protocol.joins += 1;
    ok = proto_harness_->verify(done.origin.data_seed);
    if (ok) {
      report_.verified += 1;
    } else {
      report_.protocol.join_mismatches += 1;
      report_.verify_failures += 1;
    }
  }
  if (elog_on()) {
    obs::Json rec = ev_base("join", done.origin);
    rec.set("proto", done.origin.id + 1);
    rec.set("ops", std::uint64_t{done.op_count});
    rec.set("latency", latency);
    rec.set("ok", ok);
    event_log_->log(std::move(rec));
  }
  emit_outcome(done.origin, Outcome::kCompleted);
  if (workload_) {
    if (auto next = workload_->next_after_completion(done.origin, now_)) {
      Event ne;
      ne.cycle = next->cycle;
      ne.kind = EventKind::kArrival;
      ne.request = next->request;
      events_.push(std::move(ne));
    }
  }
}

void ServingRuntime::fail_protocol(std::uint64_t proto_id, Outcome o) {
  const auto it = protos_.find(proto_id);
  if (it == protos_.end()) return;  // already terminal: exactly-once guard
  const ProtoState st = std::move(it->second);
  protos_.erase(it);
  // Cancel every sibling op still queued or in flight; the op that died
  // already recorded its own bad-outcome counters.
  std::uint64_t cancelled = 0;
  for (auto p = pending_.begin(); p != pending_.end();) {
    if (p->proto_id == proto_id) {
      cancelled += 1;
      p = pending_.erase(p);
    } else {
      ++p;
    }
  }
  for (auto f = in_flight_.begin(); f != in_flight_.end();) {
    if (f->second.request.proto_id != proto_id) {
      ++f;
      continue;
    }
    if (f->second.lane != kHostLane) {
      Lane& lane = lanes_[f->second.lane];
      lane.in_flight -= 1;
      if (resilience_on_ && f->second.is_probe) {
        // Same hazard as cancel_in_flight: a cancelled half-open probe
        // reports no outcome and would wedge the breaker.
        lane.breaker.note_cancelled(now_);
      }
    }
    cancelled += 1;
    f = in_flight_.erase(f);  // its kCompletion event will find nothing
  }
  report_.protocol.ops_cancelled += cancelled;
  report_.protocol.failed += 1;
  if (elog_on()) {
    obs::Json rec = ev_base("proto_failed", st.origin);
    rec.set("proto", st.origin.id + 1);
    rec.set("ops_cancelled", cancelled);
    event_log_->log(std::move(rec));
  }
  notify_request_gone(st.origin);
  emit_outcome(st.origin, o);
}

void ServingRuntime::handle_completion(const Event& e) {
  const auto it = in_flight_.find(e.dispatch_id);
  if (it == in_flight_.end()) return;  // cancelled (bank failure / hedge)
  const InFlight inf = std::move(it->second);
  in_flight_.erase(it);
  if (inf.lane == kHostLane) {
    complete_host_op(e, inf);
    return;
  }
  Lane& lane = lanes_[inf.lane];
  lane.in_flight -= 1;

  const Request& r = inf.request;

  if (resilience_on_) {
    service_hist_.add(now_ - inf.dispatched_at);
    // Hedged pair: first result wins, the loser is cancelled.
    if (inf.hedge_partner != 0) {
      cancel_in_flight(inf.hedge_partner);
      if (inf.is_hedge) report_.resilience.hedge_wins += 1;
    }
  }
  if (inf.chip_corrupt) {
    // Whole-chip corruption storm: the layered checks catch the bad
    // result on completion irrespective of the per-lane resilience layer
    // — a storm result is never delivered as good. The chip's own
    // retries get a shot when resilience is on; otherwise (or once
    // exhausted) the request is surrendered to the fleet for a
    // cross-chip retry.
    report_.chip_corruptions += 1;
    if (elog_on()) {
      obs::Json rec = ev_base("chip_corruption_detected", r);
      rec.set("dispatch", e.dispatch_id);
      rec.set("lane", std::uint64_t{inf.lane});
      event_log_->log(std::move(rec));
    }
    if (resilience_on_) {
      record_lane_outcome(lane, inf.lane, false);
      if (lane.draining && lane.in_flight == 0) {
        remap_drained_lane(lane, inf.lane);
      }
    }
    if (!resilience_on_ || !schedule_retry(r, /*count_as_bank_retry=*/false)) {
      report_.chip_failed += 1;
      record_bad_outcome("failed");
      if (elog_on()) event_log_->log(ev_base("failed", r));
      if (r.proto_id != 0) {
        fail_protocol(r.proto_id, Outcome::kFailed);
      } else {
        notify_request_gone(r);
        emit_outcome(r, Outcome::kFailed);
      }
    }
    try_dispatch();
    return;
  }
  if (resilience_on_) {
    if (inf.corrupt && cfg_.resilience.chaos_detect) {
      // The layered checks of the reliability stack (write-verify,
      // parity, Freivalds) catch the corrupt result; never delivered.
      report_.resilience.detected_corruptions += 1;
      if (elog_on()) {
        obs::Json rec = ev_base("corruption_detected", r);
        rec.set("dispatch", e.dispatch_id);
        rec.set("lane", std::uint64_t{inf.lane});
        event_log_->log(std::move(rec));
      }
      record_lane_outcome(lane, inf.lane, false);
      if (lane.draining && lane.in_flight == 0) {
        remap_drained_lane(lane, inf.lane);
      }
      if (!schedule_retry(r, /*count_as_bank_retry=*/false)) {
        report_.resilience.failed += 1;
        record_bad_outcome("failed");
        if (elog_on()) event_log_->log(ev_base("failed", r));
        if (r.proto_id != 0) {
          fail_protocol(r.proto_id, Outcome::kFailed);
        } else {
          notify_request_gone(r);
          emit_outcome(r, Outcome::kFailed);
        }
      }
      try_dispatch();
      return;
    }
    if (inf.corrupt) {
      // Detection disabled: the corrupt result sails through as if good
      // (this counter existing at zero is what proves the checks work).
      report_.resilience.wrong_accepted += 1;
    }
    record_lane_outcome(lane, inf.lane, /*ok=*/true);
  }

  const std::uint64_t latency = now_ - r.arrival_cycle;
  report_.completed += 1;
  report_.latency_cycles.add(latency);
  report_.series.count("completed", now_);
  report_.series.observe("latency_cycles", now_, latency);
  report_.slo.record_good(now_, latency);
  obs::metrics()
      .histogram("cryptopim.runtime.latency_cycles", "cycles")
      .add(latency);
  TenantStats& ts = report_.tenants.at(r.tenant);
  ts.completed += 1;
  ts.latency_cycles.add(latency);
  if (r.deadline_cycle > 0 && now_ > r.deadline_cycle) {
    report_.deadline_misses += 1;
    ts.deadline_misses += 1;
  }
  if (elog_on()) {
    obs::Json rec = ev_base("completed", r);
    rec.set("dispatch", e.dispatch_id);
    rec.set("lane", std::uint64_t{inf.lane});
    rec.set("latency", latency);
    if (inf.is_hedge) rec.set("hedge", true);
    event_log_->log(std::move(rec));
  }
  auto& tr = obs::tracer();
  if (tr.enabled()) {
    tr.emit(lanes_[inf.lane].track,
            "req " + std::to_string(r.id) + " t" + std::to_string(r.tenant),
            "runtime", inf.dispatched_at, now_ - inf.dispatched_at);
    // Terminal point of the request's flow-arrow chain.
    tr.flow('f', r.id, lanes_[inf.lane].track, "req " + std::to_string(r.id),
            "flow", now_);
  }
  // DAG ops verify at the protocol join (the whole flow through the
  // backend), not per-op with Freivalds.
  if (r.verify && r.proto_id == 0) verify_result(r);

  if (resilience_on_ && lane.draining && lane.in_flight == 0) {
    remap_drained_lane(lane, inf.lane);
  }
  if (r.proto_id != 0) {
    on_op_complete(r, inf.dispatched_at);
    try_dispatch();
    return;
  }
  emit_outcome(r, Outcome::kCompleted);

  if (workload_) {
    if (auto next = workload_->next_after_completion(r, now_)) {
      Event ne;
      ne.cycle = next->cycle;
      ne.kind = EventKind::kArrival;
      ne.request = next->request;
      events_.push(std::move(ne));
    }
  }
  try_dispatch();
}

void ServingRuntime::handle_bank_failure(const Event&) {
  report_.bank_failures += cfg_.fail_banks;
  failed_banks_ += cfg_.fail_banks;
  report_.series.count("bank_failures", now_, cfg_.fail_banks);
  if (elog_on()) {
    obs::Json rec = obs::Json::object();
    rec.set("ev", "bank_failure");
    rec.set("cycle", now_);
    rec.set("chip", std::uint64_t{cfg_.chip_id});
    rec.set("banks", std::uint64_t{cfg_.fail_banks});
    event_log_->log(std::move(rec));
  }

  // Deterministic victim: the failure strikes the busiest live lane (most
  // in-flight work, lowest index on ties) — its in-flight requests retry
  // from the queue and the lane pays a repartition to remap onto a spare
  // (or is torn down once the chip shrank below its footprint).
  auto pick_victim = [this]() -> Lane* {
    Lane* victim = nullptr;
    for (Lane& lane : lanes_) {
      if (lane.dead) continue;
      if (!victim || lane.in_flight > victim->in_flight) victim = &lane;
    }
    return victim;
  };

  // Requeue one torn-down in-flight request. Under the resilience layer
  // a victim with a live hedged twin is simply dropped (the twin still
  // delivers), and teardown retries flow through the backoff + budget
  // path so repeated failures cannot amplify into a storm.
  auto requeue_victim = [this](const InFlight& inf) {
    if (inf.request.proto_id != 0 &&
        !protos_.contains(inf.request.proto_id)) {
      return;  // its protocol was already torn down whole this failure
    }
    if (elog_on()) {
      obs::Json rec = ev_base("torn_down", inf.request);
      rec.set("lane", std::uint64_t{inf.lane});
      event_log_->log(std::move(rec));
    }
    if (resilience_on_ && inf.is_probe) {
      // The teardown cancels the breaker's half-open probe with no
      // outcome; reset it or the lane (which may re-form on a spare)
      // wedges half-open, refusing work forever. The later try_dispatch
      // arms the open-period wake-up via acquire_lane.
      lanes_[inf.lane].breaker.note_cancelled(now_);
    }
    if (resilience_on_ && inf.hedge_partner != 0 &&
        in_flight_.count(inf.hedge_partner) != 0) {
      return;
    }
    if (resilience_on_ && cfg_.resilience.max_retries > 0) {
      if (!schedule_retry(inf.request, /*count_as_bank_retry=*/true)) {
        report_.resilience.failed += 1;
        record_bad_outcome("failed");
        if (elog_on()) event_log_->log(ev_base("failed", inf.request));
        if (inf.request.proto_id != 0) {
          fail_protocol(inf.request.proto_id, Outcome::kFailed);
        } else {
          notify_request_gone(inf.request);
          emit_outcome(inf.request, Outcome::kFailed);
        }
      }
      return;
    }
    pending_.push_back(inf.request);
    report_.retried += 1;
    report_.series.count("retries", now_);
  };

  // Torn-down entries are removed from in_flight_ *before* any requeue
  // runs: a protocol-op requeue that exhausts its retries tears the whole
  // protocol down (fail_protocol erases sibling in_flight_ entries), so
  // requeueing while iterating the map would invalidate the iterator.
  // Hedged twins always sit on distinct lanes, so a same-sweep pair is
  // impossible and the first-wins drop logic is unaffected.
  auto tear_down_lane = [this, &requeue_victim](std::size_t lane_idx) {
    std::vector<InFlight> torn;
    for (auto it = in_flight_.begin(); it != in_flight_.end();) {
      if (it->second.lane == lane_idx) {
        torn.push_back(std::move(it->second));
        it = in_flight_.erase(it);
      } else {
        ++it;
      }
    }
    for (const InFlight& inf : torn) requeue_victim(inf);
  };

  Lane* victim = pick_victim();
  if (victim) {
    const std::size_t victim_idx =
        static_cast<std::size_t>(victim - lanes_.data());
    tear_down_lane(victim_idx);
    victim->in_flight = 0;
    report_.repartitions += 1;
    auto& tr = obs::tracer();
    if (tr.enabled()) {
      tr.emit(runtime_track_base(), "bank failure", "runtime", now_,
              cfg_.repartition_cycles);
    }
    if (allocated_banks_ > usable_banks()) {
      // Beyond the spare pool: the lane's banks are gone for good.
      victim->dead = true;
      allocated_banks_ -= victim->banks;
    } else {
      // A spare absorbed the failure; the lane re-forms after the remap.
      victim->free_at = std::max(victim->free_at, now_) +
                        cfg_.repartition_cycles;
      schedule_scan(victim->free_at);
    }
  }
  // Keep tearing lanes down if several banks failed at once and the pool
  // shrank below what is still allocated.
  while (allocated_banks_ > usable_banks()) {
    Lane* next = pick_victim();
    if (!next) break;
    const std::size_t idx = static_cast<std::size_t>(next - lanes_.data());
    tear_down_lane(idx);
    next->in_flight = 0;
    next->dead = true;
    allocated_banks_ -= next->banks;
    report_.repartitions += 1;
  }
  try_dispatch();
}

void ServingRuntime::verify_result(const Request& r) {
  // Materialise the operands from the request's seed, produce the result
  // through the configured execution backend, and Freivalds-check it.
  // The analytic tier returns no functional result, so there is nothing
  // to verify; a degree without a paper parameter set (above 32k:
  // segmented execution) is skipped. Parameter sets are cached per
  // degree class; the backend caches its engines/simulators internally.
  if (!backend_ || !backend_->functional()) return;
  thread_local std::map<std::uint32_t, std::unique_ptr<ntt::NttParams>> cache;
  auto it = cache.find(r.degree);
  if (it == cache.end()) {
    try {
      it = cache.emplace(r.degree, std::make_unique<ntt::NttParams>(
                                       ntt::NttParams::for_degree(r.degree)))
               .first;
    } catch (const std::exception&) {
      cache.emplace(r.degree, nullptr);
      return;
    }
  }
  if (!it->second) return;
  const ntt::NttParams& params = *it->second;

  Xoshiro256 rng(r.data_seed);
  const auto a = ntt::sample_uniform(params.n, params.q, rng);
  const auto b = ntt::sample_uniform(params.n, params.q, rng);
  const auto res = backend_->execute(params, a, b);
  reliability::VerifyConfig vc;
  vc.points = cfg_.verify_points;
  vc.seed = r.data_seed ^ 0x5eed5eedULL;
  reliability::ResultVerifier verifier(params, vc);
  if (verifier.check(a, b, res.product)) {
    report_.verified += 1;
  } else {
    report_.verify_failures += 1;
  }
}

// -- resilience ---------------------------------------------------------------

void ServingRuntime::handle_timeout(const Event& e) {
  // Queued-timeout cancellation: the deadline passed while the request
  // sat in the admission queue. A dispatched request is past saving by
  // cancellation (the lane slot is spent either way) so it is left to
  // complete and count a deadline miss.
  const std::uint64_t rid = e.dispatch_id;
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->id != rid) continue;
    const Request r = std::move(*it);
    pending_.erase(it);
    report_.resilience.timed_out += 1;
    record_bad_outcome("timed_out");
    if (elog_on()) event_log_->log(ev_base("timed_out", r));
    if (r.proto_id != 0) {
      // One op past its deadline times the whole protocol out.
      fail_protocol(r.proto_id, Outcome::kTimedOut);
      return;
    }
    notify_request_gone(r);
    emit_outcome(r, Outcome::kTimedOut);
    return;
  }
}

void ServingRuntime::handle_retry_enqueue(const Event& e) {
  // Retries re-enter the queue past the capacity check: the request was
  // already admitted (and counted) once; capacity governs new work.
  if (e.request.proto_id != 0 && !protos_.contains(e.request.proto_id)) {
    return;  // its protocol was torn down while the retry backed off
  }
  pending_.push_back(e.request);
  try_dispatch();
}

void ServingRuntime::handle_hedge(const Event& e) {
  const auto it = in_flight_.find(e.dispatch_id);
  if (it == in_flight_.end()) return;        // finished before the check
  if (it->second.is_hedge) return;           // never hedge a hedge
  if (it->second.hedge_partner != 0) return;  // already hedged
  const Request& orig = it->second.request;

  // Only a lane that is free *right now* and distinct from the
  // straggler's own: a hedge that would queue is worthless.
  Lane* lane = acquire_lane(orig.degree, it->second.lane,
                            /*allow_scan=*/false);
  if (!lane) return;
  const std::size_t lane_idx = static_cast<std::size_t>(lane - lanes_.data());

  const LaneGeometry g = geometry_for(cfg_.chip, orig.degree);
  std::uint64_t service = g.service();
  const bool is_probe = lane->breaker.note_dispatch(now_);
  if (is_probe) report_.resilience.breaker_probes += 1;
  if (health_ && health_->note_dispatch(lane_idx)) {
    lane->corrupt_until = kForever;
    lane->draining = true;
    report_.resilience.wear_corruptions += 1;
  }
  if (health_ && health_->wants_drain(lane_idx)) lane->draining = true;
  if (lane->slow_until > now_) {
    service = static_cast<std::uint64_t>(
        static_cast<double>(service) * cfg_.resilience.chaos.slow_factor);
  }
  if (now_ < chip_slow_until_) {
    service = static_cast<std::uint64_t>(
        static_cast<double>(service) * chip_slow_factor_);
  }
  lane->free_at = now_ + g.occupancy();
  lane->in_flight += 1;
  // Hedges burn real bank-cycles but are not charged to the tenant's
  // fairness ledger — the duplicate is the runtime's choice, not theirs.
  report_.busy_bank_cycles +=
      static_cast<std::uint64_t>(lane->banks) * g.occupancy();

  const std::uint64_t id = next_dispatch_id_++;
  InFlight dup;
  dup.request = orig;
  dup.lane = lane_idx;
  dup.dispatched_at = now_;
  dup.corrupt = chaos_corrupting(*lane, now_);
  dup.chip_corrupt = now_ < chip_corrupt_until_;
  dup.is_probe = is_probe;
  dup.is_hedge = true;
  dup.hedge_partner = e.dispatch_id;
  in_flight_.emplace(id, std::move(dup));
  it->second.hedge_partner = id;
  report_.resilience.hedges += 1;
  report_.series.count("hedges", now_);
  if (elog_on()) {
    obs::Json rec = ev_base("hedge", orig);
    rec.set("dispatch", id);
    rec.set("parent", e.dispatch_id);
    rec.set("lane", std::uint64_t{lane_idx});
    if (is_probe) rec.set("probe", true);
    event_log_->log(std::move(rec));
  }
  auto& tr = obs::tracer();
  if (tr.enabled()) {
    // The duplicate continues the request's flow chain on its own lane.
    tr.flow('t', orig.id, lane->track, "req " + std::to_string(orig.id),
            "flow", now_);
  }

  Event ce;
  ce.cycle = now_ + service;
  ce.kind = EventKind::kCompletion;
  ce.dispatch_id = id;
  events_.push(std::move(ce));
}

void ServingRuntime::handle_health(const Event&) {
  health_tick_armed_ = false;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    Lane& lane = lanes_[i];
    if (lane.dead) continue;
    if (health_ && health_->wants_drain(i)) lane.draining = true;
    if (lane.draining && lane.in_flight == 0) {
      remap_drained_lane(lane, i);
      continue;
    }
    // Background scrub: an unhealthy lane with nothing in flight and no
    // imminent work re-programs its cells during the idle window. Scrubs
    // forgive transient failure history; they cannot un-wear a column.
    if (health_ && health_->wants_scrub(i) && lane.in_flight == 0 &&
        lane.free_at <= now_) {
      lane.free_at = now_ + cfg_.resilience.scrub_cycles;
      health_->on_scrub(i);
      report_.resilience.scrubs += 1;
      auto& tr = obs::tracer();
      if (tr.enabled()) {
        tr.emit(lane.track, "scrub", "resilience", now_,
                cfg_.resilience.scrub_cycles);
      }
    }
  }
  // Keep ticking while the simulation is live; stop once arrivals are
  // done and the pipes have drained so the event loop can terminate. A
  // backlog alone is not liveness: requests stranded by degradation
  // (their class's footprint exceeds the surviving banks) can never
  // dispatch, and ticking for them would spin forever — run() surfaces
  // them as `queued` instead.
  bool pending_servable = false;
  for (const Request& r : pending_) {
    if (geometry_for(cfg_.chip, r.degree).banks <= usable_banks()) {
      pending_servable = true;
      break;
    }
  }
  if (now_ < horizon_ || !in_flight_.empty() || pending_servable) {
    arm_health_tick(cfg_.resilience.health_period_cycles);
  }
}

void ServingRuntime::handle_chaos(const Event&) {
  const ChaosConfig& ch = cfg_.resilience.chaos;
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (!lanes_[i].dead) live.push_back(i);
  }
  if (!live.empty()) {
    const std::size_t idx =
        live[chaos_rng_.next_below(live.size())];
    Lane& lane = lanes_[idx];
    const std::uint64_t dur = exponential_cycles(
        chaos_rng_, ch.mean_duration_us * cfg_.cycles_per_us());
    const bool slow = uniform_unit(chaos_rng_) < ch.slow_fraction;
    if (slow) {
      lane.slow_until = std::max(lane.slow_until, now_ + dur);
    } else if (lane.corrupt_until != kForever) {
      lane.corrupt_until = std::max(lane.corrupt_until, now_ + dur);
    }
    report_.resilience.chaos_episodes += 1;
    auto& tr = obs::tracer();
    if (tr.enabled()) {
      tr.emit(lane.track, slow ? "chaos: slow" : "chaos: corrupt",
              "resilience", now_, dur);
    }
  }
  arm_chaos_episode();
}

bool ServingRuntime::schedule_retry(Request r, bool count_as_bank_retry) {
  if (r.attempts >= cfg_.resilience.max_retries) return false;
  const std::uint64_t backoff = retry_backoff(r.attempts + 1);
  // A retry that cannot finish by the deadline is not worth a token.
  if (r.deadline_cycle > 0 &&
      now_ + backoff + r.service_cycles > r.deadline_cycle) {
    return false;
  }
  if (retry_budget_ && !retry_budget_->try_spend(r.tenant)) {
    report_.resilience.retry_budget_denied += 1;
    return false;
  }
  r.attempts += 1;
  report_.resilience.retries += 1;
  report_.series.count("retries", now_);
  if (count_as_bank_retry) report_.retried += 1;
  if (elog_on()) {
    obs::Json rec = ev_base("retry", r);
    rec.set("attempt", std::uint64_t{r.attempts});
    rec.set("backoff", backoff);
    event_log_->log(std::move(rec));
  }
  Event e;
  e.cycle = now_ + backoff;
  e.kind = EventKind::kRetryEnqueue;
  e.request = std::move(r);
  events_.push(std::move(e));
  return true;
}

void ServingRuntime::record_lane_outcome(Lane& lane, std::size_t lane_idx,
                                         bool ok) {
  if (health_) health_->record_verify(lane_idx, ok);
  if (!lane.breaker.enabled()) return;
  const auto prev = lane.breaker.state();
  if (lane.breaker.record(ok, now_)) report_.resilience.breaker_opens += 1;
  if (ok && prev == CircuitBreaker::State::kHalfOpen) {
    report_.resilience.breaker_closes += 1;
  }
  if (lane.breaker.state() == CircuitBreaker::State::kOpen) {
    // Re-scan when the open period elapses so queued work in this class
    // is not stranded if this was its only lane.
    schedule_scan(lane.breaker.open_until());
  }
}

void ServingRuntime::cancel_in_flight(std::uint64_t dispatch_id) {
  const auto it = in_flight_.find(dispatch_id);
  if (it == in_flight_.end()) return;  // already gone
  Lane& lane = lanes_[it->second.lane];
  lane.in_flight -= 1;
  const std::size_t lane_idx = it->second.lane;
  const bool was_probe = it->second.is_probe;
  if (elog_on()) {
    obs::Json rec = ev_base("cancelled", it->second.request);
    rec.set("dispatch", dispatch_id);
    rec.set("lane", std::uint64_t{lane_idx});
    event_log_->log(std::move(rec));
  }
  in_flight_.erase(it);  // its kCompletion event will find nothing
  report_.resilience.hedge_cancelled += 1;
  if (was_probe) {
    // A cancelled half-open probe reports no outcome; without this the
    // breaker waits for it forever and the lane never accepts again.
    lane.breaker.note_cancelled(now_);
    if (!lane.breaker.can_accept(now_)) {
      schedule_scan(lane.breaker.open_until());
    }
  }
  if (lane.draining && lane.in_flight == 0) {
    remap_drained_lane(lane, lane_idx);
  }
}

void ServingRuntime::remap_drained_lane(Lane& lane, std::size_t lane_idx) {
  lane.draining = false;
  lane.slow_until = 0;
  lane.corrupt_until = 0;
  lane.free_at = std::max(lane.free_at, now_) + cfg_.repartition_cycles;
  lane.breaker = CircuitBreaker(cfg_.resilience.breaker_k,
                                cfg_.resilience.breaker_open_cycles);
  if (health_) health_->on_remap(lane_idx);
  report_.resilience.proactive_remaps += 1;
  report_.repartitions += 1;
  schedule_scan(lane.free_at);
  auto& tr = obs::tracer();
  if (tr.enabled()) {
    tr.emit(runtime_track_base(), "wear remap lane " + std::to_string(lane_idx),
            "resilience", now_, cfg_.repartition_cycles);
  }
}

void ServingRuntime::notify_request_gone(const Request& r) {
  // Shed / timed-out / failed requests still complete the closed-loop
  // cycle: the client observes the error and re-issues after thinking.
  if (!workload_) return;  // fleet drive: the front-end owns the loop
  if (auto next = workload_->next_after_completion(r, now_)) {
    Event ne;
    ne.cycle = next->cycle;
    ne.kind = EventKind::kArrival;
    ne.request = next->request;
    events_.push(std::move(ne));
  }
}

std::uint64_t ServingRuntime::hedge_delay_cycles() const {
  const ResilienceConfig& res = cfg_.resilience;
  if (res.hedge_delay_us > 0) {
    return static_cast<std::uint64_t>(res.hedge_delay_us *
                                      cfg_.cycles_per_us());
  }
  // p99-derived: hedge only after enough service-time samples to make
  // the tail estimate meaningful; until then stragglers run unhedged.
  if (service_hist_.count() < res.hedge_min_samples) return 0;
  return service_hist_.quantile(0.99);
}

std::uint64_t ServingRuntime::retry_backoff(unsigned attempts) const {
  const ResilienceConfig& res = cfg_.resilience;
  std::uint64_t b = res.retry_backoff_cycles;
  for (unsigned i = 1; i < attempts && b < res.retry_backoff_cap_cycles; ++i) {
    b <<= 1;
  }
  return std::min(b, res.retry_backoff_cap_cycles);
}

bool ServingRuntime::chaos_corrupting(const Lane& lane,
                                      std::uint64_t at) const {
  return at < lane.corrupt_until;
}

void ServingRuntime::arm_health_tick(std::uint64_t delay) {
  if (health_tick_armed_) return;
  health_tick_armed_ = true;
  Event e;
  // A zero period would pop and re-arm in an infinite same-cycle loop
  // (the livelock schedule_scan guards against); tick next cycle at the
  // earliest.
  e.cycle = now_ + std::max<std::uint64_t>(delay, 1);
  e.kind = EventKind::kHealth;
  events_.push(std::move(e));
}

void ServingRuntime::arm_chaos_episode() {
  // Episodes strike only within the arrival horizon; the drain phase
  // runs fault-free so the event loop terminates.
  const std::uint64_t gap = exponential_cycles(
      chaos_rng_, cfg_.resilience.chaos.mean_interval_us * cfg_.cycles_per_us());
  const std::uint64_t at = now_ + gap;
  if (at > horizon_) return;
  Event e;
  e.cycle = at;
  e.kind = EventKind::kChaos;
  events_.push(std::move(e));
}

void ServingRuntime::publish_metrics() const {
  auto& reg = obs::metrics();
  reg.counter("cryptopim.runtime.submitted", "requests")
      .add(report_.submitted);
  reg.counter("cryptopim.runtime.admitted", "requests").add(report_.admitted);
  reg.counter("cryptopim.runtime.rejected", "requests").add(report_.rejected);
  reg.counter("cryptopim.runtime.rejected_unservable", "requests")
      .add(report_.rejected_unservable);
  reg.counter("cryptopim.runtime.completed", "requests")
      .add(report_.completed);
  reg.counter("cryptopim.runtime.repartitions", "events")
      .add(report_.repartitions);
  reg.counter("cryptopim.runtime.bank_failures", "banks")
      .add(report_.bank_failures);
  reg.counter("cryptopim.runtime.retried", "requests").add(report_.retried);
  reg.counter("cryptopim.runtime.deadline_misses", "requests")
      .add(report_.deadline_misses);
  reg.counter("cryptopim.runtime.verified", "requests").add(report_.verified);
  reg.counter("cryptopim.runtime.verify_failures", "requests")
      .add(report_.verify_failures);
  reg.counter("cryptopim.runtime.busy_bank_cycles", "bank-cycles")
      .add(report_.busy_bank_cycles);
  if (report_.resilience_enabled) report_.resilience.publish();
  if (report_.protocol_enabled) {
    const ProtocolStats& p = report_.protocol;
    reg.counter("cryptopim.runtime.protocol.requests", "requests")
        .add(p.requests);
    reg.counter("cryptopim.runtime.protocol.completed", "requests")
        .add(p.completed);
    reg.counter("cryptopim.runtime.protocol.failed", "requests").add(p.failed);
    reg.counter("cryptopim.runtime.protocol.host_ops", "ops").add(p.host_ops);
    reg.counter("cryptopim.runtime.protocol.joins", "joins").add(p.joins);
    reg.counter("cryptopim.runtime.protocol.join_mismatches", "joins")
        .add(p.join_mismatches);
    for (unsigned c = 0; c < 4; ++c) {
      if (p.op_cycles[c].count() == 0) continue;
      reg.histogram(std::string("cryptopim.runtime.protocol.op_cycles.") +
                        op_class_name(static_cast<OpClass>(c)),
                    "cycles")
          .merge(p.op_cycles[c]);
    }
  }
}

}  // namespace cryptopim::runtime
