#include "runtime/protocol.h"

#include <stdexcept>

namespace cryptopim::runtime {

const char* protocol_name(ProtocolKind kind) noexcept {
  switch (kind) {
    case ProtocolKind::kNone: return "none";
    case ProtocolKind::kKem: return "kem";
    case ProtocolKind::kBgvMul: return "bgv-mul";
    case ProtocolKind::kThreshold: return "threshold";
  }
  return "?";
}

std::optional<ProtocolKind> parse_protocol(std::string_view name) noexcept {
  if (name == "kem") return ProtocolKind::kKem;
  if (name == "bgv-mul") return ProtocolKind::kBgvMul;
  if (name == "threshold") return ProtocolKind::kThreshold;
  return std::nullopt;
}

const char* op_class_name(OpClass cls) noexcept {
  switch (cls) {
    case OpClass::kPolymul: return "polymul";
    case OpClass::kNttLimb: return "ntt_limb";
    case OpClass::kSample: return "sample";
    case OpClass::kAggregate: return "aggregate";
  }
  return "?";
}

ProtoDag compile_protocol(const ProtocolSpec& spec) {
  ProtoDag dag;
  const auto add = [&dag](OpClass cls, std::uint32_t degree,
                          std::uint64_t parents, std::uint32_t group) {
    ProtoOp op;
    op.cls = cls;
    op.degree = degree;
    op.parent_mask = parents;
    op.fanout_group = group;
    dag.ops.push_back(op);
  };
  const auto bit = [](std::uint32_t i) { return std::uint64_t{1} << i; };

  switch (spec.kind) {
    case ProtocolKind::kKem: {
      // Full encaps + decaps round-trip: 5 chained ring multiplications
      // with the two Keccak-derived sampling phases and the final
      // compare-and-KDF join on the host.
      const std::uint32_t n = kKemDegree;
      dag.lane_degree = n;
      add(OpClass::kSample, n, 0, 0);                   // 0: G/H derivations
      add(OpClass::kPolymul, n, bit(0), 1);             // 1: encaps a*r
      add(OpClass::kPolymul, n, bit(0), 1);             // 2: encaps b*r
      add(OpClass::kPolymul, n, bit(1) | bit(2), 0);    // 3: decaps u*s
      add(OpClass::kSample, n, bit(3), 0);              // 4: re-derive coins
      add(OpClass::kPolymul, n, bit(4), 2);             // 5: re-encrypt a*r'
      add(OpClass::kPolymul, n, bit(4), 2);             // 6: re-encrypt b*r'
      add(OpClass::kAggregate, n, bit(5) | bit(6), 0);  // 7: compare + KDF
      break;
    }
    case ProtocolKind::kBgvMul: {
      // Tensor product of two degree-1 ciphertexts: 4 ring
      // multiplications, each fanned out across the RNS limbs (one
      // NTT-limb op per prime), recombined by a host-side CRT join.
      const std::uint32_t n = kBgvDegree;
      dag.lane_degree = n;
      add(OpClass::kSample, n, 0, 0);  // 0: encrypt the operands
      std::uint64_t all = 0;
      for (std::uint32_t m = 0; m < 4; ++m) {
        for (std::size_t l = 0; l < kRnsLimbs; ++l) {
          all |= bit(static_cast<std::uint32_t>(dag.ops.size()));
          add(OpClass::kNttLimb, n, bit(0), m + 1);
        }
      }
      add(OpClass::kAggregate, n, all, 0);  // CRT recombine + decrypt check
      break;
    }
    case ProtocolKind::kThreshold: {
      // K share holders each compute a partial decryption c1 * s_k; the
      // host aggregate sums them into the plaintext.
      if (spec.shares < kMinShares || spec.shares > kMaxShares) {
        throw std::invalid_argument("threshold shares must be in [" +
                                    std::to_string(kMinShares) + ", " +
                                    std::to_string(kMaxShares) + "]");
      }
      const std::uint32_t n = kBgvDegree;
      dag.lane_degree = n;
      add(OpClass::kSample, n, 0, 0);  // 0: joint keygen + encrypt
      std::uint64_t all = 0;
      for (unsigned k = 0; k < spec.shares; ++k) {
        all |= bit(static_cast<std::uint32_t>(dag.ops.size()));
        add(OpClass::kPolymul, n, bit(0), 1);
      }
      add(OpClass::kAggregate, n, all, 0);  // sum partials, decode mod t
      break;
    }
    case ProtocolKind::kNone:
      throw std::invalid_argument("cannot compile a DAG without a protocol");
  }
  return dag;
}

namespace {

obs::Json histogram_json(const obs::Histogram& h) {
  obs::Json j = obs::Json::object();
  j.set("count", h.count());
  j.set("mean_cycles", h.mean());
  j.set("p50_cycles", h.quantile(0.50));
  j.set("p99_cycles", h.quantile(0.99));
  j.set("p999_cycles", h.quantile(0.999));
  j.set("max_cycles", h.max());
  return j;
}

}  // namespace

obs::Json ProtocolStats::to_json() const {
  obs::Json j = obs::Json::object();
  j.set("kind", kind);
  if (shares > 0) j.set("shares", std::uint64_t{shares});
  j.set("ops_per_request", std::uint64_t{ops_per_request});
  j.set("requests", requests);
  j.set("completed", completed);
  j.set("failed", failed);
  j.set("rejected", rejected);
  j.set("ops_completed", ops_completed);
  j.set("ops_cancelled", ops_cancelled);
  j.set("host_ops", host_ops);
  j.set("joins", joins);
  j.set("join_mismatches", join_mismatches);
  j.set("latency", histogram_json(latency_cycles));
  obs::Json classes = obs::Json::array();
  for (unsigned c = 0; c < 4; ++c) {
    if (op_cycles[c].count() == 0) continue;
    obs::Json row = histogram_json(op_cycles[c]);
    row.set("cls", op_class_name(static_cast<OpClass>(c)));
    classes.push_back(std::move(row));
  }
  j.set("op_classes", std::move(classes));
  return j;
}

}  // namespace cryptopim::runtime
