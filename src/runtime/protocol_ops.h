// Functional content of the protocol DAGs: the actual KEM / BGV /
// threshold math, executed with every ring multiplication routed through
// an ExecutionBackend and checked against the pure-host references
// (crypto::KemScheme, he::BgvContext).
//
// The serving runtime models a protocol request as cycle-accounted ops
// (runtime/protocol.h); when a request carries `verify`, its host-side
// join runs the whole flow here — so a protocol serving run ends with
// actually-verified protocol results, mirroring what Freivalds sampling
// does for raw polymuls.
#pragma once

#include <cstdint>

#include "ntt/poly.h"
#include "ntt/rns.h"
#include "runtime/backend.h"
#include "runtime/protocol.h"

namespace cryptopim::runtime {

/// The RNS basis the BGV multiply fans out over (kRnsLimbs primes at
/// degree kBgvDegree); shared by the harness and the KAT tests.
const ntt::RnsBasis& bgv_rns_basis();

/// Negacyclic product mod q computed limb-by-limb: reduce both operands
/// into the basis, execute one backend multiplication per prime, CRT
/// reconstruct, centre and reduce back mod q. Exact whenever the basis
/// modulus exceeds 2*n*q^2 (bgv_rns_basis() covers the BGV ring with
/// ~12 bits of slack).
ntt::Poly rns_limb_multiply(ExecutionBackend& backend,
                            const ntt::RnsBasis& basis, std::uint32_t q,
                            const ntt::Poly& a, const ntt::Poly& b);

/// Runs a protocol flow end to end through a functional backend and
/// compares against the pure-host reference.
class ProtocolHarness {
 public:
  /// `backend` is not owned, must outlive the harness, and must be
  /// functional (throws std::invalid_argument otherwise).
  ProtocolHarness(const ProtocolSpec& spec, ExecutionBackend* backend);

  /// Execute the full protocol for `seed` with all ring multiplications
  /// on the backend; true iff the outcome matches the host reference
  /// bit for bit.
  bool verify(std::uint64_t seed);

 private:
  bool verify_kem(std::uint64_t seed);
  bool verify_bgv(std::uint64_t seed);
  bool verify_threshold(std::uint64_t seed);

  ProtocolSpec spec_;
  ExecutionBackend* backend_;
};

}  // namespace cryptopim::runtime
