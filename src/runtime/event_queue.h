// Discrete-event clock for the serving runtime.
//
// Events live in the same cycle domain as the performance model and the
// tracer: one unit = one crossbar cycle. The queue is a min-heap keyed
// on (cycle, sequence) — the sequence number is assigned at push, so
// events scheduled for the same cycle pop in push order. That tie-break
// is what makes the whole simulation deterministic: two runs with the
// same seed schedule the same events in the same order and therefore
// produce bit-identical reports.
//
// Fleet serving merges N of these clocks (one per chip, plus one for the
// fleet's own control events) into a single timeline. The merge is only
// deterministic if same-cycle events of *different* chips have a total
// order too, so each queue can carry a chip namespace: the chip id is
// folded into the high bits of every sequence number it assigns. Within
// one queue the namespace is a constant prefix (ordering unchanged);
// across queues, (cycle, seq) becomes a strict total order with the chip
// id as the same-cycle tie-break — which is what makes same-seed fleet
// reports byte-identical.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "runtime/request.h"

namespace cryptopim::runtime {

enum class EventKind : std::uint8_t {
  kArrival,      ///< a request enters the admission queue
  kQueueScan,    ///< a lane (or a carved lane) becomes free: try dispatch
  kCompletion,   ///< a dispatched request drains from its pipeline
  kBankFailure,  ///< a physical bank drops out mid-stream
  // -- resilience layer (scheduled only when a feature is enabled) ----------
  kTimeout,       ///< a queued request's deadline passes: cancel it
  kRetryEnqueue,  ///< a backed-off retry re-enters the admission queue
  kHedge,         ///< straggler check: duplicate onto a second lane
  kHealth,        ///< periodic health-monitor tick (scrubs, metrics)
  kChaos,         ///< a chaos fault episode strikes a lane
  // -- fleet layer (scheduled only by runtime::FleetRuntime; a chip's
  // own event loop never sees these) ----------------------------------------
  kFleetArrival,     ///< a request enters the fleet front-end router
  kFleetRetry,       ///< a backed-off cross-chip retry re-dispatches
  kFleetHedgeCheck,  ///< straggler check: duplicate onto a replica chip
  kFleetHealth,      ///< periodic chip-health tick (drain, scrub, rejoin)
  kFleetChaos,       ///< a whole-chip chaos episode strikes
  kFleetChipUp,      ///< a drained/crashed chip finished scrubbing: rejoin
};

struct Event {
  std::uint64_t cycle = 0;
  std::uint64_t seq = 0;  ///< push order; breaks same-cycle ties
  EventKind kind = EventKind::kQueueScan;
  /// kCompletion/kHedge: in-flight dispatch id; kTimeout: request id.
  std::uint64_t dispatch_id = 0;
  Request request;  ///< kArrival / kRetryEnqueue payload
};

class EventQueue {
 public:
  /// Bit position of the chip namespace in assigned sequence numbers:
  /// the low 40 bits count pushes (~10^12 per chip — far beyond any
  /// simulated run), the bits above carry the chip id.
  static constexpr unsigned kChipShift = 40;

  /// `first_seq` seeds the tie-breaking sequence counter; the default is
  /// what the runtime uses. A non-zero start exists for tests probing
  /// ordering stability near the counter's (unreachable in practice —
  /// ~1.8e19 pushes) wrap-around. `chip` is the queue's namespace: it is
  /// folded into the high bits of every assigned seq so same-cycle
  /// events of different chips still compare deterministically when a
  /// fleet merges several queues into one timeline.
  explicit EventQueue(std::uint64_t first_seq = 0, std::uint32_t chip = 0)
      : next_seq_(first_seq),
        chip_bits_(static_cast<std::uint64_t>(chip) << kChipShift) {}

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  std::uint32_t chip() const noexcept {
    return static_cast<std::uint32_t>(chip_bits_ >> kChipShift);
  }

  void push(Event e) {
    e.seq = chip_bits_ | next_seq_++;
    heap_.push(std::move(e));
  }

  /// Pops the earliest event (lowest cycle, then lowest sequence).
  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

  const Event& peek() const { return heap_.top(); }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.cycle != b.cycle) return a.cycle > b.cycle;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t chip_bits_ = 0;  ///< chip id pre-shifted into seq position
};

}  // namespace cryptopim::runtime
