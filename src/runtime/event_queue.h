// Discrete-event clock for the serving runtime.
//
// Events live in the same cycle domain as the performance model and the
// tracer: one unit = one crossbar cycle. The queue is a min-heap keyed
// on (cycle, sequence) — the sequence number is assigned at push, so
// events scheduled for the same cycle pop in push order. That tie-break
// is what makes the whole simulation deterministic: two runs with the
// same seed schedule the same events in the same order and therefore
// produce bit-identical reports.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "runtime/request.h"

namespace cryptopim::runtime {

enum class EventKind : std::uint8_t {
  kArrival,      ///< a request enters the admission queue
  kQueueScan,    ///< a lane (or a carved lane) becomes free: try dispatch
  kCompletion,   ///< a dispatched request drains from its pipeline
  kBankFailure,  ///< a physical bank drops out mid-stream
  // -- resilience layer (scheduled only when a feature is enabled) ----------
  kTimeout,       ///< a queued request's deadline passes: cancel it
  kRetryEnqueue,  ///< a backed-off retry re-enters the admission queue
  kHedge,         ///< straggler check: duplicate onto a second lane
  kHealth,        ///< periodic health-monitor tick (scrubs, metrics)
  kChaos,         ///< a chaos fault episode strikes a lane
};

struct Event {
  std::uint64_t cycle = 0;
  std::uint64_t seq = 0;  ///< push order; breaks same-cycle ties
  EventKind kind = EventKind::kQueueScan;
  /// kCompletion/kHedge: in-flight dispatch id; kTimeout: request id.
  std::uint64_t dispatch_id = 0;
  Request request;  ///< kArrival / kRetryEnqueue payload
};

class EventQueue {
 public:
  /// `first_seq` seeds the tie-breaking sequence counter; the default is
  /// what the runtime uses. A non-zero start exists for tests probing
  /// ordering stability near the counter's (unreachable in practice —
  /// ~1.8e19 pushes) wrap-around.
  explicit EventQueue(std::uint64_t first_seq = 0) : next_seq_(first_seq) {}

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  void push(Event e) {
    e.seq = next_seq_++;
    heap_.push(std::move(e));
  }

  /// Pops the earliest event (lowest cycle, then lowest sequence).
  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

  const Event& peek() const { return heap_.top(); }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.cycle != b.cycle) return a.cycle > b.cycle;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace cryptopim::runtime
