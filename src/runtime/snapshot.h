// Periodic state snapshots for durable serving (schema "snapshot/1").
//
// Recovery in this repo is replay-based (see runtime/journal.h): the
// deterministic event clock re-executes the run from its origin and the
// journal pins the externally-visible commitments. Snapshots ride that
// mechanism as periodic *cross-checks* rather than cold-restore images:
// every `--snapshot-every N` global events the runtime serializes its
// full state (lane geometry, wear counters, breaker and shard-map state,
// RNG cursors, WFQ ledgers) into `snap-<index>.json`, and a recovering
// run — as its replay passes the same index — rebuilds the state dump
// and verifies the stored CRC matches. A divergence means the replay is
// not reproducing the pre-crash run and recovery fails loudly instead of
// silently double-serving.
//
// Document shape:
//
//   {"schema":"snapshot/1","index":<u64>,"crc":"<hex8>","state":{...}}
//
// with `crc` = crc32 of the compact serialization of `state`. Writes go
// through a temp file + rename so a crash mid-snapshot never leaves a
// half-written document under the canonical name.
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.h"

namespace cryptopim::runtime {

/// Atomically persists `state` as `<dir>/snap-<index>.json`. Returns the
/// file's basename; also outputs the CRC of the state serialization so
/// the caller can journal it.
std::string write_snapshot(const std::string& dir, std::uint64_t index,
                           const obs::Json& state, std::uint32_t* state_crc);

struct SnapshotLoadResult {
  bool ok = false;
  std::string error;
  std::uint64_t index = 0;
  std::uint32_t crc = 0;   ///< stored CRC of the state serialization
  obs::Json state;
};

/// Parses and validates one snapshot document (schema + field checks).
SnapshotLoadResult load_snapshot(const std::string& path);

/// Scans `dir` for `snap-*.json` and returns the valid snapshot with the
/// highest index (ok=false if none parse).
SnapshotLoadResult load_latest_snapshot(const std::string& dir);

/// True iff `state`'s compact serialization hashes to `expected_crc`.
/// Comparing CRCs of serializations (not parsed doubles round-tripped)
/// keeps full-width u64 fields exact.
bool snapshot_state_matches(const obs::Json& state, std::uint32_t expected_crc);

}  // namespace cryptopim::runtime
