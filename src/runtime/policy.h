// Scheduling policies for the serving runtime.
//
// A policy orders the admission queue: every time a superbank lane can
// accept work, the runtime asks the policy which eligible request goes
// next. Policies are stateless rankers — all queue and fairness state
// lives in the runtime and is passed in through PolicyContext — so one
// policy instance can serve any number of runs.
//
//   fifo  arrival order (baseline; head-of-line blocking under mixes)
//   sjf   shortest service time first (best mean latency, can starve
//         large degrees)
//   edf   earliest deadline first; requests without a deadline rank
//         after all deadlined ones, in arrival order
//   wfq   weighted fair queueing over tenants: pick the request of the
//         eligible tenant with the lowest bank-cycle usage normalised
//         by its weight (max-min fairness in bank-time)
//
// Every comparison falls back to (arrival, id) so the ranking is a
// total order and runs are reproducible.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/request.h"

namespace cryptopim::runtime {

struct PolicyContext {
  std::uint64_t now = 0;
  /// Per-tenant consumed bank-cycles divided by tenant weight (wfq).
  std::span<const double> tenant_usage;
};

class Policy {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  virtual ~Policy() = default;
  virtual std::string_view name() const noexcept = 0;

  /// Index of the request to serve next among `queue` entries whose
  /// `eligible` flag is set (the runtime masks degree classes that
  /// cannot dispatch right now); npos when none is eligible.
  virtual std::size_t pick(std::span<const Request> queue,
                           const std::vector<bool>& eligible,
                           const PolicyContext& ctx) const = 0;
};

/// Factory: "fifo", "sjf", "edf" or "wfq"; nullptr for unknown names
/// (the CLI turns that into a usage error).
std::unique_ptr<Policy> make_policy(std::string_view name);

/// The recognised policy names, for --help and benches.
const std::vector<std::string>& policy_names();

}  // namespace cryptopim::runtime
