// A served polynomial-multiplication request: the unit of work flowing
// through the online serving runtime (src/runtime/serving.*).
//
// Requests are modelled, not materialised: a request names a degree
// class, a tenant and (optionally) a deadline, and the runtime charges
// the cycle cost the hardware model predicts for it. A sampled subset
// (`verify = true`) additionally carries a data seed; on completion the
// runtime materialises the operands, produces the product through the
// software mirror of the datapath and Freivalds-checks it, so a serving
// run ends with actually-verified results rather than only cycle
// accounting.
#pragma once

#include <cstdint>

namespace cryptopim::runtime {

/// Primitive op classes a protocol request compiles into (see
/// runtime/protocol.h). Raw polymul requests never carry one.
enum class OpClass : std::uint8_t {
  kPolymul,    ///< full negacyclic multiply on a superbank lane
  kNttLimb,    ///< one RNS limb of a wide multiply on a superbank lane
  kSample,     ///< host-side Keccak/XOF sampling (no lane)
  kAggregate,  ///< host-side join (CRT recombine / share aggregation)
};

struct Request {
  std::uint64_t id = 0;
  std::uint32_t tenant = 0;
  std::uint32_t degree = 0;
  std::uint32_t client = 0;          ///< closed-loop client that issued it
  std::uint64_t arrival_cycle = 0;
  /// Absolute cycle the tenant wants the result by; 0 = no deadline.
  std::uint64_t deadline_cycle = 0;
  /// Unloaded service latency (pipeline fill + extra segment beats),
  /// filled in at admission from the performance model. This is what
  /// shortest-job-first orders on.
  std::uint64_t service_cycles = 0;
  /// Carry data: on completion the result is Freivalds-verified.
  bool verify = false;
  std::uint64_t data_seed = 0;
  /// Retry attempts consumed so far (resilience layer); latency is still
  /// measured from the original arrival_cycle.
  unsigned attempts = 0;

  // -- protocol DAG linkage (zero for classic raw-polymul requests) ----------
  /// Owning protocol request id; 0 = raw polymul, not part of a DAG.
  std::uint64_t proto_id = 0;
  /// Position of this op in the compiled DAG (< 64).
  std::uint32_t op_index = 0;
  OpClass op_class = OpClass::kPolymul;
  /// Nonzero: siblings sharing the group should land on distinct lanes.
  std::uint32_t fanout_group = 0;
  /// Bitmask over op indices that must complete before this op may
  /// dispatch (the dependency frontier checks it against the done mask).
  std::uint64_t parent_mask = 0;
};

}  // namespace cryptopim::runtime
