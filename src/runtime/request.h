// A served polynomial-multiplication request: the unit of work flowing
// through the online serving runtime (src/runtime/serving.*).
//
// Requests are modelled, not materialised: a request names a degree
// class, a tenant and (optionally) a deadline, and the runtime charges
// the cycle cost the hardware model predicts for it. A sampled subset
// (`verify = true`) additionally carries a data seed; on completion the
// runtime materialises the operands, produces the product through the
// software mirror of the datapath and Freivalds-checks it, so a serving
// run ends with actually-verified results rather than only cycle
// accounting.
#pragma once

#include <cstdint>

namespace cryptopim::runtime {

struct Request {
  std::uint64_t id = 0;
  std::uint32_t tenant = 0;
  std::uint32_t degree = 0;
  std::uint32_t client = 0;          ///< closed-loop client that issued it
  std::uint64_t arrival_cycle = 0;
  /// Absolute cycle the tenant wants the result by; 0 = no deadline.
  std::uint64_t deadline_cycle = 0;
  /// Unloaded service latency (pipeline fill + extra segment beats),
  /// filled in at admission from the performance model. This is what
  /// shortest-job-first orders on.
  std::uint64_t service_cycles = 0;
  /// Carry data: on completion the result is Freivalds-verified.
  bool verify = false;
  std::uint64_t data_seed = 0;
  /// Retry attempts consumed so far (resilience layer); latency is still
  /// measured from the original arrival_cycle.
  unsigned attempts = 0;
};

}  // namespace cryptopim::runtime
