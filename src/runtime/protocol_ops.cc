#include "runtime/protocol_ops.h"

#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "crypto/kem.h"
#include "he/bgv.h"
#include "ntt/params.h"

namespace cryptopim::runtime {

namespace {

crypto::Seed derive_seed(Xoshiro256& rng) {
  crypto::Seed s{};
  for (std::size_t i = 0; i < s.size(); i += 8) {
    const std::uint64_t w = rng.next();
    for (std::size_t b = 0; b < 8; ++b) {
      s[i + b] = static_cast<std::uint8_t>(w >> (8 * b));
    }
  }
  return s;
}

ntt::Poly random_plaintext(std::uint32_t n, std::uint32_t t, Xoshiro256& rng) {
  ntt::Poly m(n);
  for (auto& c : m) c = static_cast<std::uint32_t>(rng.next_below(t));
  return m;
}

// Plaintext-space reference: the negacyclic integer product of two
// coefficient-small polynomials, reduced mod t. (|coeff| <= n*(t-1)^2
// << q/2, so the centered mod-q representative is the exact integer
// product.)
ntt::Poly plain_product(const ntt::Poly& a, const ntt::Poly& b,
                        std::uint32_t q, std::uint32_t t) {
  const ntt::Poly wide = ntt::schoolbook_negacyclic(a, b, q);
  ntt::Poly out(wide.size());
  for (std::size_t i = 0; i < wide.size(); ++i) {
    const std::int64_t c = ntt::centered(wide[i], q);
    out[i] = static_cast<std::uint32_t>(((c % t) + t) % t);
  }
  return out;
}

}  // namespace

const ntt::RnsBasis& bgv_rns_basis() {
  // Q ~= 2^60 comfortably exceeds 2*n*q^2 ~= 2^48.2 for the paper-small
  // BGV ring (n = 256, q = 786433).
  static const ntt::RnsBasis basis =
      ntt::RnsBasis::generate(kBgvDegree, kRnsLimbs, 20);
  return basis;
}

ntt::Poly rns_limb_multiply(ExecutionBackend& backend,
                            const ntt::RnsBasis& basis, std::uint32_t q,
                            const ntt::Poly& a, const ntt::Poly& b) {
  const std::uint32_t n = basis.degree();
  if (a.size() != n || b.size() != n) {
    throw std::invalid_argument("operand degree does not match the basis");
  }
  ntt::RnsPoly prod;
  prod.residues.reserve(basis.size());
  for (std::size_t l = 0; l < basis.size(); ++l) {
    const ntt::NttParams& lp = basis.params(l);
    ntt::Poly ra(n), rb(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      ra[i] = a[i] % lp.q;
      rb[i] = b[i] % lp.q;
    }
    prod.residues.push_back(backend.execute(lp, ra, rb).product);
  }
  const std::vector<ntt::U128> wide = basis.reconstruct(prod);
  const ntt::U128 big_q = basis.modulus();
  ntt::Poly out(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    // The integer negacyclic product has |coeff| < n*q^2 << Q/2, so the
    // centred CRT representative is exact; fold it into [0, q).
    const ntt::U128 v = wide[i];
    if (v > big_q / 2) {
      const auto neg = static_cast<std::uint32_t>((big_q - v) % q);
      out[i] = neg == 0 ? 0 : q - neg;
    } else {
      out[i] = static_cast<std::uint32_t>(v % q);
    }
  }
  return out;
}

ProtocolHarness::ProtocolHarness(const ProtocolSpec& spec,
                                 ExecutionBackend* backend)
    : spec_(spec), backend_(backend) {
  if (backend_ == nullptr || !backend_->functional()) {
    throw std::invalid_argument(
        "protocol harness needs a functional execution backend");
  }
}

bool ProtocolHarness::verify(std::uint64_t seed) {
  switch (spec_.kind) {
    case ProtocolKind::kKem: return verify_kem(seed);
    case ProtocolKind::kBgvMul: return verify_bgv(seed);
    case ProtocolKind::kThreshold: return verify_threshold(seed);
    case ProtocolKind::kNone: break;
  }
  return true;
}

bool ProtocolHarness::verify_kem(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const crypto::Seed key_seed = derive_seed(rng);
  const crypto::Seed entropy = derive_seed(rng);

  // Pure-host reference round-trip (engine multiplier, const path).
  const crypto::KemScheme host;
  const auto [hpk, hsk] = host.keygen(key_seed);
  const auto [hct, hkey] = host.encapsulate(hpk, entropy);
  const crypto::SharedKey hkey_dec = host.decapsulate(hsk, hct);

  // Accelerated round-trip: every ring multiplication on the backend.
  crypto::KemScheme accel;
  const crypto::PkeParams& pp = host.pke().params();
  const ntt::NttParams ring = ntt::NttParams::make(pp.n, pp.q);
  ExecutionBackend* be = backend_;
  accel.pke().set_multiplier(
      [be, ring](const ntt::Poly& a, const ntt::Poly& b) {
        return be->execute(ring, a, b).product;
      });
  const auto [pk, sk] = accel.keygen(key_seed);
  const auto [ct, key_enc] = accel.encapsulate(pk, entropy);
  const crypto::SharedKey key_dec = accel.decapsulate(sk, ct);

  return key_enc == key_dec && key_enc == hkey && key_dec == hkey_dec &&
         ct.u == hct.u && ct.v == hct.v;
}

bool ProtocolHarness::verify_bgv(std::uint64_t seed) {
  const he::BgvParams params = he::BgvParams::paper_small();
  Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ULL);  // plaintexts, own stream
  const ntt::Poly ma = random_plaintext(params.n, params.t, rng);
  const ntt::Poly mb = random_plaintext(params.n, params.t, rng);

  he::BgvContext accel(params, seed);
  accel.keygen();
  const he::Ciphertext ca = accel.encrypt(ma);
  const he::Ciphertext cb = accel.encrypt(mb);
  // From here on every ring multiplication fans out across the RNS limbs
  // and executes per limb on the backend — the shape the serving DAG
  // schedules onto distinct lanes.
  const ntt::RnsBasis& basis = bgv_rns_basis();
  ExecutionBackend* be = backend_;
  const std::uint32_t q = params.q;
  accel.set_multiplier([be, &basis, q](const ntt::Poly& a,
                                       const ntt::Poly& b) {
    return rns_limb_multiply(*be, basis, q, a, b);
  });
  const he::Ciphertext2 prod = accel.multiply(ca, cb);

  // Bit-exact reference: an identical context (same seed, hence the same
  // key and encryption randomness) multiplying on the host engine.
  he::BgvContext hostctx(params, seed);
  hostctx.keygen();
  // Sequenced explicitly: encrypt draws from the context RNG, and the
  // accel path encrypted ma first.
  const he::Ciphertext hca = hostctx.encrypt(ma);
  const he::Ciphertext hcb = hostctx.encrypt(mb);
  const he::Ciphertext2 hprod = hostctx.multiply(hca, hcb);
  if (prod.d0 != hprod.d0 || prod.d1 != hprod.d1 || prod.d2 != hprod.d2) {
    return false;
  }
  // Functional check: the tensor ciphertext decrypts to the plaintext
  // product.
  return accel.decrypt(prod) == plain_product(ma, mb, params.q, params.t);
}

bool ProtocolHarness::verify_threshold(std::uint64_t seed) {
  const he::BgvParams params = he::BgvParams::paper_small();
  Xoshiro256 rng(seed ^ 0x7468726573686f6cULL);  // plaintext, own stream
  const ntt::Poly m = random_plaintext(params.n, params.t, rng);

  he::BgvContext ctx(params, seed);
  const std::vector<ntt::Poly> shares = ctx.keygen_threshold(spec_.shares);
  const he::Ciphertext ct = ctx.encrypt(m);

  // Each share holder's partial decryption runs on the backend.
  const ntt::NttParams ring = ctx.ring();
  ExecutionBackend* be = backend_;
  ctx.set_multiplier([be, ring](const ntt::Poly& a, const ntt::Poly& b) {
    return be->execute(ring, a, b).product;
  });
  std::vector<ntt::Poly> partials;
  partials.reserve(shares.size());
  for (const ntt::Poly& s : shares) {
    partials.push_back(ctx.partial_decryption(ct, s));
  }
  const ntt::Poly joined = ctx.aggregate_decrypt(ct, partials);

  // Host references: direct joint-secret decryption and the plaintext.
  return joined == m && ctx.decrypt(ct) == m;
}

}  // namespace cryptopim::runtime
