# Empty dependencies file for bench_fig6_pim_baselines.
# This may be replaced when dependencies are built.
