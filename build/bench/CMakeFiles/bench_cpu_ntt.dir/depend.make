# Empty dependencies file for bench_cpu_ntt.
# This may be replaced when dependencies are built.
