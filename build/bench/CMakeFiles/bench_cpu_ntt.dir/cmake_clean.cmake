file(REMOVE_RECURSE
  "CMakeFiles/bench_cpu_ntt.dir/bench_cpu_ntt.cc.o"
  "CMakeFiles/bench_cpu_ntt.dir/bench_cpu_ntt.cc.o.d"
  "bench_cpu_ntt"
  "bench_cpu_ntt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_ntt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
