file(REMOVE_RECURSE
  "CMakeFiles/bench_pim_functional.dir/bench_pim_functional.cc.o"
  "CMakeFiles/bench_pim_functional.dir/bench_pim_functional.cc.o.d"
  "bench_pim_functional"
  "bench_pim_functional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pim_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
