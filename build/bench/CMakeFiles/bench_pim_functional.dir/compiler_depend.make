# Empty compiler generated dependencies file for bench_pim_functional.
# This may be replaced when dependencies are built.
