file(REMOVE_RECURSE
  "CMakeFiles/bench_controller_microcode.dir/bench_controller_microcode.cc.o"
  "CMakeFiles/bench_controller_microcode.dir/bench_controller_microcode.cc.o.d"
  "bench_controller_microcode"
  "bench_controller_microcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_controller_microcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
