# Empty compiler generated dependencies file for bench_controller_microcode.
# This may be replaced when dependencies are built.
