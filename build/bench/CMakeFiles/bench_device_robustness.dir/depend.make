# Empty dependencies file for bench_device_robustness.
# This may be replaced when dependencies are built.
