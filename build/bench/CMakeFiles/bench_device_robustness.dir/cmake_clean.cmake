file(REMOVE_RECURSE
  "CMakeFiles/bench_device_robustness.dir/bench_device_robustness.cc.o"
  "CMakeFiles/bench_device_robustness.dir/bench_device_robustness.cc.o.d"
  "bench_device_robustness"
  "bench_device_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_device_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
