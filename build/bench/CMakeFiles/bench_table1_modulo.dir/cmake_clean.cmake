file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_modulo.dir/bench_table1_modulo.cc.o"
  "CMakeFiles/bench_table1_modulo.dir/bench_table1_modulo.cc.o.d"
  "bench_table1_modulo"
  "bench_table1_modulo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_modulo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
