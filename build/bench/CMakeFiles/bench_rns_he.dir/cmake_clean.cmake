file(REMOVE_RECURSE
  "CMakeFiles/bench_rns_he.dir/bench_rns_he.cc.o"
  "CMakeFiles/bench_rns_he.dir/bench_rns_he.cc.o.d"
  "bench_rns_he"
  "bench_rns_he.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rns_he.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
