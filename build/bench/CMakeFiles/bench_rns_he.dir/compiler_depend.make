# Empty compiler generated dependencies file for bench_rns_he.
# This may be replaced when dependencies are built.
