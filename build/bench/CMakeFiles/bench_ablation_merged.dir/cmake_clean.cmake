file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_merged.dir/bench_ablation_merged.cc.o"
  "CMakeFiles/bench_ablation_merged.dir/bench_ablation_merged.cc.o.d"
  "bench_ablation_merged"
  "bench_ablation_merged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_merged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
