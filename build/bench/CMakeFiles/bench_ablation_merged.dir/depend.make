# Empty dependencies file for bench_ablation_merged.
# This may be replaced when dependencies are built.
