file(REMOVE_RECURSE
  "libcryptopim_model.a"
)
