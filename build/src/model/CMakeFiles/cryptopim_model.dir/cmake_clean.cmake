file(REMOVE_RECURSE
  "CMakeFiles/cryptopim_model.dir/latency.cc.o"
  "CMakeFiles/cryptopim_model.dir/latency.cc.o.d"
  "CMakeFiles/cryptopim_model.dir/performance.cc.o"
  "CMakeFiles/cryptopim_model.dir/performance.cc.o.d"
  "CMakeFiles/cryptopim_model.dir/scheduler.cc.o"
  "CMakeFiles/cryptopim_model.dir/scheduler.cc.o.d"
  "libcryptopim_model.a"
  "libcryptopim_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptopim_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
