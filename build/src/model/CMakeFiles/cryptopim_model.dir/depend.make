# Empty dependencies file for cryptopim_model.
# This may be replaced when dependencies are built.
