file(REMOVE_RECURSE
  "CMakeFiles/cryptopim_arch.dir/chip.cc.o"
  "CMakeFiles/cryptopim_arch.dir/chip.cc.o.d"
  "CMakeFiles/cryptopim_arch.dir/pipeline.cc.o"
  "CMakeFiles/cryptopim_arch.dir/pipeline.cc.o.d"
  "libcryptopim_arch.a"
  "libcryptopim_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptopim_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
