
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/chip.cc" "src/arch/CMakeFiles/cryptopim_arch.dir/chip.cc.o" "gcc" "src/arch/CMakeFiles/cryptopim_arch.dir/chip.cc.o.d"
  "/root/repo/src/arch/pipeline.cc" "src/arch/CMakeFiles/cryptopim_arch.dir/pipeline.cc.o" "gcc" "src/arch/CMakeFiles/cryptopim_arch.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cryptopim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ntt/CMakeFiles/cryptopim_ntt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
