# Empty dependencies file for cryptopim_arch.
# This may be replaced when dependencies are built.
