file(REMOVE_RECURSE
  "libcryptopim_arch.a"
)
