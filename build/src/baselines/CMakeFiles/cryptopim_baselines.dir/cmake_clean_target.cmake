file(REMOVE_RECURSE
  "libcryptopim_baselines.a"
)
