# Empty compiler generated dependencies file for cryptopim_baselines.
# This may be replaced when dependencies are built.
