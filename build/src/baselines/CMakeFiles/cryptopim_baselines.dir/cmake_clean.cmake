file(REMOVE_RECURSE
  "CMakeFiles/cryptopim_baselines.dir/cpu_model.cc.o"
  "CMakeFiles/cryptopim_baselines.dir/cpu_model.cc.o.d"
  "CMakeFiles/cryptopim_baselines.dir/pim_baselines.cc.o"
  "CMakeFiles/cryptopim_baselines.dir/pim_baselines.cc.o.d"
  "libcryptopim_baselines.a"
  "libcryptopim_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptopim_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
