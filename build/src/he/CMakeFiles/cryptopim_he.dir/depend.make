# Empty dependencies file for cryptopim_he.
# This may be replaced when dependencies are built.
