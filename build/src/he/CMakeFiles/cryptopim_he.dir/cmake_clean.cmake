file(REMOVE_RECURSE
  "CMakeFiles/cryptopim_he.dir/bgv.cc.o"
  "CMakeFiles/cryptopim_he.dir/bgv.cc.o.d"
  "libcryptopim_he.a"
  "libcryptopim_he.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptopim_he.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
