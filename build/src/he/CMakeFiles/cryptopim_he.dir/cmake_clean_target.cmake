file(REMOVE_RECURSE
  "libcryptopim_he.a"
)
