file(REMOVE_RECURSE
  "libcryptopim_sim.a"
)
