file(REMOVE_RECURSE
  "CMakeFiles/cryptopim_sim.dir/pipelined.cc.o"
  "CMakeFiles/cryptopim_sim.dir/pipelined.cc.o.d"
  "CMakeFiles/cryptopim_sim.dir/simulator.cc.o"
  "CMakeFiles/cryptopim_sim.dir/simulator.cc.o.d"
  "libcryptopim_sim.a"
  "libcryptopim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptopim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
