# Empty dependencies file for cryptopim_sim.
# This may be replaced when dependencies are built.
