file(REMOVE_RECURSE
  "libcryptopim_pim.a"
)
