
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pim/block.cc" "src/pim/CMakeFiles/cryptopim_pim.dir/block.cc.o" "gcc" "src/pim/CMakeFiles/cryptopim_pim.dir/block.cc.o.d"
  "/root/repo/src/pim/circuits/arith.cc" "src/pim/CMakeFiles/cryptopim_pim.dir/circuits/arith.cc.o" "gcc" "src/pim/CMakeFiles/cryptopim_pim.dir/circuits/arith.cc.o.d"
  "/root/repo/src/pim/circuits/reduction.cc" "src/pim/CMakeFiles/cryptopim_pim.dir/circuits/reduction.cc.o" "gcc" "src/pim/CMakeFiles/cryptopim_pim.dir/circuits/reduction.cc.o.d"
  "/root/repo/src/pim/device.cc" "src/pim/CMakeFiles/cryptopim_pim.dir/device.cc.o" "gcc" "src/pim/CMakeFiles/cryptopim_pim.dir/device.cc.o.d"
  "/root/repo/src/pim/executor.cc" "src/pim/CMakeFiles/cryptopim_pim.dir/executor.cc.o" "gcc" "src/pim/CMakeFiles/cryptopim_pim.dir/executor.cc.o.d"
  "/root/repo/src/pim/program.cc" "src/pim/CMakeFiles/cryptopim_pim.dir/program.cc.o" "gcc" "src/pim/CMakeFiles/cryptopim_pim.dir/program.cc.o.d"
  "/root/repo/src/pim/switch.cc" "src/pim/CMakeFiles/cryptopim_pim.dir/switch.cc.o" "gcc" "src/pim/CMakeFiles/cryptopim_pim.dir/switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cryptopim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ntt/CMakeFiles/cryptopim_ntt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
