# Empty compiler generated dependencies file for cryptopim_pim.
# This may be replaced when dependencies are built.
