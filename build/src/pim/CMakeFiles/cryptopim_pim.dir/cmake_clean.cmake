file(REMOVE_RECURSE
  "CMakeFiles/cryptopim_pim.dir/block.cc.o"
  "CMakeFiles/cryptopim_pim.dir/block.cc.o.d"
  "CMakeFiles/cryptopim_pim.dir/circuits/arith.cc.o"
  "CMakeFiles/cryptopim_pim.dir/circuits/arith.cc.o.d"
  "CMakeFiles/cryptopim_pim.dir/circuits/reduction.cc.o"
  "CMakeFiles/cryptopim_pim.dir/circuits/reduction.cc.o.d"
  "CMakeFiles/cryptopim_pim.dir/device.cc.o"
  "CMakeFiles/cryptopim_pim.dir/device.cc.o.d"
  "CMakeFiles/cryptopim_pim.dir/executor.cc.o"
  "CMakeFiles/cryptopim_pim.dir/executor.cc.o.d"
  "CMakeFiles/cryptopim_pim.dir/program.cc.o"
  "CMakeFiles/cryptopim_pim.dir/program.cc.o.d"
  "CMakeFiles/cryptopim_pim.dir/switch.cc.o"
  "CMakeFiles/cryptopim_pim.dir/switch.cc.o.d"
  "libcryptopim_pim.a"
  "libcryptopim_pim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptopim_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
