file(REMOVE_RECURSE
  "libcryptopim_ntt.a"
)
