# Empty dependencies file for cryptopim_ntt.
# This may be replaced when dependencies are built.
