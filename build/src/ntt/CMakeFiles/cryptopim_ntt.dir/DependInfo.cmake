
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ntt/merged_ntt.cc" "src/ntt/CMakeFiles/cryptopim_ntt.dir/merged_ntt.cc.o" "gcc" "src/ntt/CMakeFiles/cryptopim_ntt.dir/merged_ntt.cc.o.d"
  "/root/repo/src/ntt/modular.cc" "src/ntt/CMakeFiles/cryptopim_ntt.dir/modular.cc.o" "gcc" "src/ntt/CMakeFiles/cryptopim_ntt.dir/modular.cc.o.d"
  "/root/repo/src/ntt/ntt.cc" "src/ntt/CMakeFiles/cryptopim_ntt.dir/ntt.cc.o" "gcc" "src/ntt/CMakeFiles/cryptopim_ntt.dir/ntt.cc.o.d"
  "/root/repo/src/ntt/params.cc" "src/ntt/CMakeFiles/cryptopim_ntt.dir/params.cc.o" "gcc" "src/ntt/CMakeFiles/cryptopim_ntt.dir/params.cc.o.d"
  "/root/repo/src/ntt/poly.cc" "src/ntt/CMakeFiles/cryptopim_ntt.dir/poly.cc.o" "gcc" "src/ntt/CMakeFiles/cryptopim_ntt.dir/poly.cc.o.d"
  "/root/repo/src/ntt/reduction.cc" "src/ntt/CMakeFiles/cryptopim_ntt.dir/reduction.cc.o" "gcc" "src/ntt/CMakeFiles/cryptopim_ntt.dir/reduction.cc.o.d"
  "/root/repo/src/ntt/rns.cc" "src/ntt/CMakeFiles/cryptopim_ntt.dir/rns.cc.o" "gcc" "src/ntt/CMakeFiles/cryptopim_ntt.dir/rns.cc.o.d"
  "/root/repo/src/ntt/shiftadd_ntt.cc" "src/ntt/CMakeFiles/cryptopim_ntt.dir/shiftadd_ntt.cc.o" "gcc" "src/ntt/CMakeFiles/cryptopim_ntt.dir/shiftadd_ntt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cryptopim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
