file(REMOVE_RECURSE
  "CMakeFiles/cryptopim_ntt.dir/merged_ntt.cc.o"
  "CMakeFiles/cryptopim_ntt.dir/merged_ntt.cc.o.d"
  "CMakeFiles/cryptopim_ntt.dir/modular.cc.o"
  "CMakeFiles/cryptopim_ntt.dir/modular.cc.o.d"
  "CMakeFiles/cryptopim_ntt.dir/ntt.cc.o"
  "CMakeFiles/cryptopim_ntt.dir/ntt.cc.o.d"
  "CMakeFiles/cryptopim_ntt.dir/params.cc.o"
  "CMakeFiles/cryptopim_ntt.dir/params.cc.o.d"
  "CMakeFiles/cryptopim_ntt.dir/poly.cc.o"
  "CMakeFiles/cryptopim_ntt.dir/poly.cc.o.d"
  "CMakeFiles/cryptopim_ntt.dir/reduction.cc.o"
  "CMakeFiles/cryptopim_ntt.dir/reduction.cc.o.d"
  "CMakeFiles/cryptopim_ntt.dir/rns.cc.o"
  "CMakeFiles/cryptopim_ntt.dir/rns.cc.o.d"
  "CMakeFiles/cryptopim_ntt.dir/shiftadd_ntt.cc.o"
  "CMakeFiles/cryptopim_ntt.dir/shiftadd_ntt.cc.o.d"
  "libcryptopim_ntt.a"
  "libcryptopim_ntt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptopim_ntt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
