# Empty compiler generated dependencies file for cryptopim_common.
# This may be replaced when dependencies are built.
