file(REMOVE_RECURSE
  "libcryptopim_common.a"
)
