file(REMOVE_RECURSE
  "CMakeFiles/cryptopim_common.dir/table.cc.o"
  "CMakeFiles/cryptopim_common.dir/table.cc.o.d"
  "libcryptopim_common.a"
  "libcryptopim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptopim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
