# Empty compiler generated dependencies file for cryptopim_crypto.
# This may be replaced when dependencies are built.
