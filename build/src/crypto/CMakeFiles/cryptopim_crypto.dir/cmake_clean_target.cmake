file(REMOVE_RECURSE
  "libcryptopim_crypto.a"
)
