file(REMOVE_RECURSE
  "CMakeFiles/cryptopim_crypto.dir/keccak.cc.o"
  "CMakeFiles/cryptopim_crypto.dir/keccak.cc.o.d"
  "CMakeFiles/cryptopim_crypto.dir/kem.cc.o"
  "CMakeFiles/cryptopim_crypto.dir/kem.cc.o.d"
  "CMakeFiles/cryptopim_crypto.dir/pke.cc.o"
  "CMakeFiles/cryptopim_crypto.dir/pke.cc.o.d"
  "libcryptopim_crypto.a"
  "libcryptopim_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptopim_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
