file(REMOVE_RECURSE
  "CMakeFiles/cryptopim_cli.dir/cryptopim_cli.cc.o"
  "CMakeFiles/cryptopim_cli.dir/cryptopim_cli.cc.o.d"
  "cryptopim"
  "cryptopim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptopim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
