# Empty dependencies file for cryptopim_cli.
# This may be replaced when dependencies are built.
