file(REMOVE_RECURSE
  "CMakeFiles/test_pim_arith.dir/test_pim_arith.cc.o"
  "CMakeFiles/test_pim_arith.dir/test_pim_arith.cc.o.d"
  "test_pim_arith"
  "test_pim_arith.pdb"
  "test_pim_arith[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pim_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
