# Empty compiler generated dependencies file for test_pim_arith.
# This may be replaced when dependencies are built.
