# Empty compiler generated dependencies file for test_ntt_property.
# This may be replaced when dependencies are built.
