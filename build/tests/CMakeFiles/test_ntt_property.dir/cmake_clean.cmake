file(REMOVE_RECURSE
  "CMakeFiles/test_ntt_property.dir/test_ntt_property.cc.o"
  "CMakeFiles/test_ntt_property.dir/test_ntt_property.cc.o.d"
  "test_ntt_property"
  "test_ntt_property.pdb"
  "test_ntt_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ntt_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
