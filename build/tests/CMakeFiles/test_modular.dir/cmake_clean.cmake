file(REMOVE_RECURSE
  "CMakeFiles/test_modular.dir/test_modular.cc.o"
  "CMakeFiles/test_modular.dir/test_modular.cc.o.d"
  "test_modular"
  "test_modular.pdb"
  "test_modular[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
