file(REMOVE_RECURSE
  "CMakeFiles/test_shiftadd_ntt.dir/test_shiftadd_ntt.cc.o"
  "CMakeFiles/test_shiftadd_ntt.dir/test_shiftadd_ntt.cc.o.d"
  "test_shiftadd_ntt"
  "test_shiftadd_ntt.pdb"
  "test_shiftadd_ntt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shiftadd_ntt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
