# Empty dependencies file for test_shiftadd_ntt.
# This may be replaced when dependencies are built.
