file(REMOVE_RECURSE
  "CMakeFiles/test_merged_ntt.dir/test_merged_ntt.cc.o"
  "CMakeFiles/test_merged_ntt.dir/test_merged_ntt.cc.o.d"
  "test_merged_ntt"
  "test_merged_ntt.pdb"
  "test_merged_ntt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merged_ntt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
