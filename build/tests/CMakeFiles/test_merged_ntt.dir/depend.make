# Empty dependencies file for test_merged_ntt.
# This may be replaced when dependencies are built.
