file(REMOVE_RECURSE
  "CMakeFiles/test_keccak.dir/test_keccak.cc.o"
  "CMakeFiles/test_keccak.dir/test_keccak.cc.o.d"
  "test_keccak"
  "test_keccak.pdb"
  "test_keccak[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keccak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
