# Empty dependencies file for test_pim_switch.
# This may be replaced when dependencies are built.
