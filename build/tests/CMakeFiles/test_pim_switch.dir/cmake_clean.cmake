file(REMOVE_RECURSE
  "CMakeFiles/test_pim_switch.dir/test_pim_switch.cc.o"
  "CMakeFiles/test_pim_switch.dir/test_pim_switch.cc.o.d"
  "test_pim_switch"
  "test_pim_switch.pdb"
  "test_pim_switch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pim_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
