file(REMOVE_RECURSE
  "CMakeFiles/test_pim_block.dir/test_pim_block.cc.o"
  "CMakeFiles/test_pim_block.dir/test_pim_block.cc.o.d"
  "test_pim_block"
  "test_pim_block.pdb"
  "test_pim_block[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pim_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
