file(REMOVE_RECURSE
  "CMakeFiles/test_bgv.dir/test_bgv.cc.o"
  "CMakeFiles/test_bgv.dir/test_bgv.cc.o.d"
  "test_bgv"
  "test_bgv.pdb"
  "test_bgv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
