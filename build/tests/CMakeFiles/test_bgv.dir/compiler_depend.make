# Empty compiler generated dependencies file for test_bgv.
# This may be replaced when dependencies are built.
