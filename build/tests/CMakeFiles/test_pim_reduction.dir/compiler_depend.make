# Empty compiler generated dependencies file for test_pim_reduction.
# This may be replaced when dependencies are built.
