file(REMOVE_RECURSE
  "CMakeFiles/test_pim_reduction.dir/test_pim_reduction.cc.o"
  "CMakeFiles/test_pim_reduction.dir/test_pim_reduction.cc.o.d"
  "test_pim_reduction"
  "test_pim_reduction.pdb"
  "test_pim_reduction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pim_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
