file(REMOVE_RECURSE
  "CMakeFiles/test_api_validation.dir/test_api_validation.cc.o"
  "CMakeFiles/test_api_validation.dir/test_api_validation.cc.o.d"
  "test_api_validation"
  "test_api_validation.pdb"
  "test_api_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_api_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
