# Empty dependencies file for test_api_validation.
# This may be replaced when dependencies are built.
