
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_crypto.cc" "tests/CMakeFiles/test_crypto.dir/test_crypto.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/test_crypto.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/cryptopim_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cryptopim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/cryptopim_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/ntt/CMakeFiles/cryptopim_ntt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cryptopim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
