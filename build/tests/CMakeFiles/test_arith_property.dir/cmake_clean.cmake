file(REMOVE_RECURSE
  "CMakeFiles/test_arith_property.dir/test_arith_property.cc.o"
  "CMakeFiles/test_arith_property.dir/test_arith_property.cc.o.d"
  "test_arith_property"
  "test_arith_property.pdb"
  "test_arith_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arith_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
