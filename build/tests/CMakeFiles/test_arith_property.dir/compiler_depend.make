# Empty compiler generated dependencies file for test_arith_property.
# This may be replaced when dependencies are built.
