# Empty compiler generated dependencies file for kem_handshake.
# This may be replaced when dependencies are built.
