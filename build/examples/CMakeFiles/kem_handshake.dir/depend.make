# Empty dependencies file for kem_handshake.
# This may be replaced when dependencies are built.
