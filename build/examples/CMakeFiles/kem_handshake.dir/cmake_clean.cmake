file(REMOVE_RECURSE
  "CMakeFiles/kem_handshake.dir/kem_handshake.cpp.o"
  "CMakeFiles/kem_handshake.dir/kem_handshake.cpp.o.d"
  "kem_handshake"
  "kem_handshake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kem_handshake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
