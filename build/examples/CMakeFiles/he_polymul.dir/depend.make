# Empty dependencies file for he_polymul.
# This may be replaced when dependencies are built.
