file(REMOVE_RECURSE
  "CMakeFiles/he_polymul.dir/he_polymul.cpp.o"
  "CMakeFiles/he_polymul.dir/he_polymul.cpp.o.d"
  "he_polymul"
  "he_polymul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/he_polymul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
