# Empty dependencies file for rlwe_pke.
# This may be replaced when dependencies are built.
