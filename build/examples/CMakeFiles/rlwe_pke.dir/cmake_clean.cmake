file(REMOVE_RECURSE
  "CMakeFiles/rlwe_pke.dir/rlwe_pke.cpp.o"
  "CMakeFiles/rlwe_pke.dir/rlwe_pke.cpp.o.d"
  "rlwe_pke"
  "rlwe_pke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlwe_pke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
