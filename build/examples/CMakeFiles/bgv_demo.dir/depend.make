# Empty dependencies file for bgv_demo.
# This may be replaced when dependencies are built.
