file(REMOVE_RECURSE
  "CMakeFiles/bgv_demo.dir/bgv_demo.cpp.o"
  "CMakeFiles/bgv_demo.dir/bgv_demo.cpp.o.d"
  "bgv_demo"
  "bgv_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgv_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
