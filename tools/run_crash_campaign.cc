// Crash-at-any-event recovery campaign.
//
// Proves the durability subsystem's core claim — a serve run SIGKILLed
// before processing *any* global event recovers to a byte-identical end
// state — by actually doing it, at scale, against the real CLI binary:
//
//   1. Reference: run `cryptopim serve <flags> --journal <dir>/ref`
//      uninterrupted; its seal record pins the total event count and the
//      expected journal/report bytes.
//   2. For each sampled kill point k in [1, total]:
//        a. crash   — fresh run with --kill-at-event k; the runtime
//           raises a real SIGKILL (no destructors, no flushes), so the
//           driver requires the child to die by that signal;
//        b. tear    — every --tear-every'th point additionally chops
//           bytes off the journal tail, simulating a write torn by the
//           kill landing mid-record;
//        c. recover — re-run with --recover; must exit 0;
//        d. verify  — the recovered stdout report and every journal
//           file must be byte-equal to the reference's, the seal's
//           conservation identity must close, and the admitted-id set
//           must match the reference exactly once each (no duplicate,
//           no lost, no invented admissions).
//
// Any deviation is a violation; the campaign prints per-category counts
// and exits non-zero if any occurred. Used both as a ctest smoke (a few
// points) and as the full >=1000-point acceptance sweep.
//
// Usage:
//   run_crash_campaign --cli BIN --dir DIR [--points N] [--tear-every M]
//                      -- <serve flags...>
#include <sys/types.h>
#include <sys/wait.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

namespace fs = std::filesystem;

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::cerr << "run_crash_campaign: " << msg << "\n";
  std::exit(2);
}

// Forks and execs `argv`, redirecting the child's stdout to
// `stdout_path` (or /dev/null when empty) and stderr to /dev/null
// unless `keep_stderr`. Returns the raw wait() status.
int run_child(const std::vector<std::string>& argv,
              const std::string& stdout_path, bool keep_stderr) {
  pid_t pid = fork();
  if (pid < 0) die("fork failed");
  if (pid == 0) {
    const char* out = stdout_path.empty() ? "/dev/null" : stdout_path.c_str();
    int fd = ::open(out, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) _exit(126);
    dup2(fd, STDOUT_FILENO);
    ::close(fd);
    if (!keep_stderr) {
      int nul = ::open("/dev/null", O_WRONLY);
      if (nul >= 0) {
        dup2(nul, STDERR_FILENO);
        ::close(nul);
      }
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    execv(cargv[0], cargv.data());
    _exit(127);
  }
  int status = 0;
  if (waitpid(pid, &status, 0) < 0) die("waitpid failed");
  return status;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Extracts `"key":<u64>` from a hand-formatted journal payload.
// Returns false when the key is absent.
bool find_u64(const std::string& payload, const std::string& key,
              std::uint64_t* out) {
  std::string needle = "\"" + key + "\":";
  std::size_t pos = payload.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  if (pos >= payload.size() || payload[pos] < '0' || payload[pos] > '9')
    return false;
  std::uint64_t v = 0;
  while (pos < payload.size() && payload[pos] >= '0' && payload[pos] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(payload[pos] - '0');
    ++pos;
  }
  *out = v;
  return true;
}

// One journal file, parsed just far enough for the campaign's semantic
// checks (byte comparison is the primary oracle; this is the
// independent cross-check).
struct JournalScan {
  bool ok = false;
  std::string error;
  bool fleet = false;
  bool sealed = false;
  std::string seal;                  // seal payload (empty if unsealed)
  std::vector<std::uint64_t> admits; // admit record ids, in order
};

JournalScan scan_journal(const std::string& path) {
  JournalScan s;
  std::string text = slurp(path);
  if (text.empty()) {
    s.error = "empty or missing journal: " + path;
    return s;
  }
  std::size_t start = 0;
  bool first = true;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) break;  // torn tail: ignore
    std::string line = text.substr(start, nl - start);
    start = nl + 1;
    if (line.size() < 10 || line[8] != ' ') {
      s.error = "bad frame in " + path;
      return s;
    }
    std::string payload = line.substr(9);
    if (first) {
      first = false;
      if (payload.find("\"t\":\"hdr\"") == std::string::npos) {
        s.error = "first record is not a header in " + path;
        return s;
      }
      s.fleet = payload.find("\"mode\":\"fleet\"") != std::string::npos;
      continue;
    }
    if (payload.find("\"t\":\"admit\"") != std::string::npos) {
      std::uint64_t id = 0;
      if (!find_u64(payload, "id", &id)) {
        s.error = "admit without id in " + path;
        return s;
      }
      s.admits.push_back(id);
    } else if (payload.find("\"t\":\"seal\"") != std::string::npos) {
      s.sealed = true;
      s.seal = payload;
    }
  }
  s.ok = true;
  return s;
}

// Sum of the named counters (absent keys count as 0).
std::uint64_t sum_fields(const std::string& seal,
                         std::initializer_list<const char*> keys) {
  std::uint64_t total = 0;
  for (const char* k : keys) {
    std::uint64_t v = 0;
    if (find_u64(seal, k, &v)) total += v;
  }
  return total;
}

// Checks the conservation identities on a seal payload. Returns an
// empty string when everything closes.
std::string check_conservation(const JournalScan& s) {
  if (!s.sealed) return "journal is not sealed";
  std::uint64_t sub = 0;
  if (!find_u64(s.seal, "sub", &sub)) return "seal missing sub";
  if (s.fleet) {
    // Fleet ledger: every submitted request reaches exactly one
    // fleet-terminal fate.
    std::uint64_t fated =
        sum_fields(s.seal, {"cmp", "rej", "shd", "tmo", "fld", "que"});
    if (sub != fated)
      return "fleet conservation: sub " + std::to_string(sub) +
             " != fated " + std::to_string(fated);
    return {};
  }
  std::uint64_t adm = 0, rej = 0;
  if (!find_u64(s.seal, "adm", &adm)) return "seal missing adm";
  find_u64(s.seal, "rej", &rej);
  if (sub != adm + rej)
    return "admission conservation: sub " + std::to_string(sub) + " != adm " +
           std::to_string(adm) + " + rej " + std::to_string(rej);
  // Op ledger: every admitted op reaches exactly one terminal fate or is
  // cancelled by exactly-once protocol teardown.
  std::uint64_t fated = sum_fields(
      s.seal, {"cmp", "shd", "tmo", "fld", "que", "inf", "cnl"});
  if (adm != fated)
    return "op conservation: adm " + std::to_string(adm) + " != fated " +
           std::to_string(fated);
  // A corrupt result delivered as correct is never acceptable, crashed
  // or not.
  std::uint64_t wra = 0;
  if (find_u64(s.seal, "wra", &wra) && wra != 0)
    return "wrong-accepted: " + std::to_string(wra);
  return {};
}

// Admitted-id multiset as (id -> count); exactly-once means every count
// is 1 and the sets match the reference.
std::string check_admits(const std::vector<std::uint64_t>& got,
                         const std::vector<std::uint64_t>& want) {
  std::multiset<std::uint64_t> g(got.begin(), got.end());
  std::multiset<std::uint64_t> w(want.begin(), want.end());
  for (std::uint64_t id : g)
    if (g.count(id) > 1) return "duplicate admission id " + std::to_string(id);
  if (g != w)
    return "admission set mismatch: " + std::to_string(g.size()) +
           " recovered vs " + std::to_string(w.size()) + " reference";
  return {};
}

struct Args {
  std::string cli;
  std::string dir;
  std::uint64_t points = 1000;
  std::uint64_t tear_every = 10;  // 0 = never tear
  bool verbose = false;
  std::vector<std::string> serve_flags;
};

Args parse_args(int argc, char** argv) {
  Args a;
  int i = 1;
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) die(std::string(flag) + " requires a value");
      return argv[++i];
    };
    if (arg == "--cli") {
      a.cli = next("--cli");
    } else if (arg == "--dir") {
      a.dir = next("--dir");
    } else if (arg == "--points") {
      a.points = std::strtoull(next("--points").c_str(), nullptr, 10);
    } else if (arg == "--tear-every") {
      a.tear_every = std::strtoull(next("--tear-every").c_str(), nullptr, 10);
    } else if (arg == "--verbose") {
      a.verbose = true;
    } else if (arg == "--") {
      ++i;
      break;
    } else {
      die("unknown flag " + arg +
          " (usage: run_crash_campaign --cli BIN --dir DIR [--points N] "
          "[--tear-every M] -- <serve flags...>)");
    }
  }
  for (; i < argc; ++i) a.serve_flags.push_back(argv[i]);
  if (a.cli.empty() || a.dir.empty()) die("--cli and --dir are required");
  if (a.points == 0) die("--points must be > 0");
  return a;
}

std::vector<std::string> serve_argv(const Args& a, const std::string& jdir,
                                    std::vector<std::string> extra) {
  std::vector<std::string> v{a.cli, "serve"};
  for (const std::string& f : a.serve_flags) v.push_back(f);
  v.push_back("--json");
  v.push_back("--journal");
  v.push_back(jdir);
  for (std::string& e : extra) v.push_back(std::move(e));
  return v;
}

// The journal files a run directory is expected to contain, primary
// (seal-bearing, tearable) file first.
std::vector<std::string> journal_files(const std::string& dir) {
  std::vector<std::string> files;
  if (fs::exists(dir + "/fleet.log")) {
    files.push_back("fleet.log");
    std::vector<std::string> chips;
    for (const auto& ent : fs::directory_iterator(dir)) {
      std::string name = ent.path().filename().string();
      if (name.rfind("chip-", 0) == 0 && name.size() > 9 &&
          name.substr(name.size() - 4) == ".log")
        chips.push_back(name);
    }
    std::sort(chips.begin(), chips.end());
    for (std::string& c : chips) files.push_back(std::move(c));
  } else {
    files.push_back("journal.log");
  }
  return files;
}

// Chops `n` bytes off the file's tail if it has at least two complete
// records (never tears into the header line). Returns true if torn.
bool tear_tail(const std::string& path, std::uint64_t n) {
  std::string text = slurp(path);
  std::size_t lines = 0;
  for (char c : text)
    if (c == '\n') ++lines;
  if (lines < 2 || text.size() <= n + 12) return false;
  std::error_code ec;
  fs::resize_file(path, text.size() - n, ec);
  return !ec;
}

}  // namespace

int main(int argc, char** argv) {
  Args a = parse_args(argc, argv);

  std::error_code ec;
  fs::remove_all(a.dir, ec);
  fs::create_directories(a.dir);
  std::string ref_dir = a.dir + "/ref";
  std::string run_dir = a.dir + "/run";
  std::string ref_stdout = a.dir + "/ref.stdout";
  std::string run_stdout = a.dir + "/run.stdout";

  // -- reference run ----------------------------------------------------------
  int status = run_child(serve_argv(a, ref_dir, {}), ref_stdout, true);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
    die("reference run failed (status " + std::to_string(status) + ")");
  std::vector<std::string> files = journal_files(ref_dir);
  JournalScan ref = scan_journal(ref_dir + "/" + files[0]);
  if (!ref.ok) die("reference journal: " + ref.error);
  std::string cons = check_conservation(ref);
  if (!cons.empty()) die("reference run: " + cons);
  std::uint64_t total = 0;
  if (!find_u64(ref.seal, "i", &total) || total == 0)
    die("reference seal has no event count");
  std::string ref_report = slurp(ref_stdout);
  std::vector<std::string> ref_journals;
  for (const std::string& f : files) ref_journals.push_back(slurp(ref_dir + "/" + f));

  std::uint64_t points = a.points < total ? a.points : total;
  std::cout << "crash campaign: " << total << " events, " << points
            << " kill points, mode " << (ref.fleet ? "fleet" : "single")
            << "\n";

  // -- campaign ---------------------------------------------------------------
  std::uint64_t crash_bad = 0, recover_bad = 0, report_bad = 0;
  std::uint64_t journal_bad = 0, conserve_bad = 0, admit_bad = 0;
  std::uint64_t torn_points = 0;
  for (std::uint64_t p = 0; p < points; ++p) {
    // Stride sample: evenly spaced, always includes event 1, ends near
    // the final event; distinct by construction when points <= total.
    std::uint64_t k = 1 + (p * (total - 1)) / (points > 1 ? points - 1 : 1);
    fs::remove_all(run_dir, ec);

    int cs = run_child(
        serve_argv(a, run_dir, {"--kill-at-event", std::to_string(k)}),
        "", false);
    if (!WIFSIGNALED(cs) || WTERMSIG(cs) != SIGKILL) {
      ++crash_bad;
      if (a.verbose)
        std::cout << "  k=" << k << " crash run did not die by SIGKILL"
                  << " (status " << cs << ")\n";
      continue;
    }

    if (a.tear_every > 0 && (p + 1) % a.tear_every == 0) {
      if (tear_tail(run_dir + "/" + files[0], 7)) ++torn_points;
    }

    int rs = run_child(serve_argv(a, run_dir, {"--recover"}), run_stdout, false);
    if (!WIFEXITED(rs) || WEXITSTATUS(rs) != 0) {
      ++recover_bad;
      if (a.verbose)
        std::cout << "  k=" << k << " recover failed (status " << rs << ")\n";
      continue;
    }

    if (slurp(run_stdout) != ref_report) {
      ++report_bad;
      if (a.verbose) std::cout << "  k=" << k << " recovered report differs\n";
    }
    bool jbad = false;
    for (std::size_t f = 0; f < files.size(); ++f) {
      if (slurp(run_dir + "/" + files[f]) != ref_journals[f]) jbad = true;
    }
    if (jbad) {
      ++journal_bad;
      if (a.verbose) std::cout << "  k=" << k << " recovered journal differs\n";
    }
    JournalScan rec = scan_journal(run_dir + "/" + files[0]);
    std::string err = rec.ok ? check_conservation(rec) : rec.error;
    if (!err.empty()) {
      ++conserve_bad;
      if (a.verbose) std::cout << "  k=" << k << " " << err << "\n";
    }
    if (rec.ok) {
      err = check_admits(rec.admits, ref.admits);
      if (!err.empty()) {
        ++admit_bad;
        if (a.verbose) std::cout << "  k=" << k << " " << err << "\n";
      }
    }
  }

  std::uint64_t violations = crash_bad + recover_bad + report_bad +
                             journal_bad + conserve_bad + admit_bad;
  std::cout << "crash campaign: " << points << " points (" << torn_points
            << " torn), violations: crash " << crash_bad << ", recover "
            << recover_bad << ", report " << report_bad << ", journal "
            << journal_bad << ", conservation " << conserve_bad
            << ", admission " << admit_bad << "\n";
  if (violations != 0) {
    std::cout << "FAIL: " << violations << " violation(s)\n";
    return 1;
  }
  std::cout << "PASS: recovery byte-identical at every kill point\n";
  return 0;
}
