#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer and
# runs the test suite under it. Any sanitizer report aborts the offending
# test (-fno-sanitize-recover=all), so a green run means a clean sweep.
#
#   tools/run_sanitized.sh            # configure + build + ctest
#   tools/run_sanitized.sh -R regex   # extra args are forwarded to ctest
#
# Uses a dedicated build directory (build-asan) so the regular build's
# object files are untouched.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build-asan"

cmake -B "$build_dir" -S "$repo_root" -DCRYPTOPIM_SANITIZE=ON
cmake --build "$build_dir" -j

# abort_on_error gives a hard failure ctest can see; detect_leaks covers
# the bench/CLI one-shot binaries too.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="abort_on_error=1:print_stacktrace=1"
ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" "$@"
