// cryptopim — command-line front end to the library.
//
//   cryptopim multiply --degree N [--seed S]   run one multiplication in
//             [--fault-rate R] [--fault-seed F] simulated crossbars, verify,
//             [--verify T]                      report cycles/energy; with a
//                                              fault rate, run under the
//                                              reliability layer (inject,
//                                              detect, retry/remap)
//   cryptopim report [--degree N]              modelled hardware numbers
//                                              (one degree or the Table II
//                                              sweep)
//   cryptopim schedule <deg:count>...          map a mixed workload onto
//                                              the 128-bank chip
//   cryptopim kem [--seed S]                   run a full KEM handshake on
//                                              the accelerator
//   cryptopim serve [--arrival-rate R] ...     online serving: discrete-event
//                                              multi-tenant scheduling of a
//                                              request stream over superbank
//                                              lanes; with --fleet N, across
//                                              N chips behind one front-end
//                                              (see `serve --help`)
//
// Global flags:
//   --json           machine-readable output (one JSON document on stdout)
//   --trace=FILE     record the run as Chrome-trace JSON (open the file in
//                    https://ui.perfetto.dev; 1 trace us = 1 cycle)
//   --version        print the git describe string and exit
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/cryptopim.h"
#include "crypto/kem.h"
#include "runtime/fleet.h"
#include "obs/bench_report.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cp = cryptopim;

namespace {

struct Options {
  bool json = false;
  std::string trace_path;                ///< empty = no tracing
  std::vector<std::string> args;         ///< command arguments, flags included
};

#ifndef CRYPTOPIM_GIT_VERSION
#define CRYPTOPIM_GIT_VERSION "unknown"
#endif

void print_usage(std::ostream& os) {
  os << "usage:\n"
        "  cryptopim multiply --degree N [--seed S] [--fault-rate R]\n"
        "                     [--fault-seed F] [--verify T]\n"
        "  cryptopim report [--degree N]\n"
        "  cryptopim schedule <degree:count> [<degree:count> ...]\n"
        "  cryptopim kem [--seed S]\n"
        "  cryptopim serve [--arrival-rate R] [--policy P] [--duration US]\n"
        "                  [--deadline US] [--chaos] [--fleet N]\n"
        "                  [--protocol kem|bgv-mul|threshold] [...]\n"
        "                                  (see `cryptopim serve --help`)\n"
        "global flags: --json, --trace=FILE, --version, --help\n";
}

int usage() {
  print_usage(std::cerr);
  return 2;
}

int serve_help() {
  std::cout
      << "usage: cryptopim serve [flags]\n"
         "\n"
         "Simulate online serving of a polynomial-multiplication request\n"
         "stream on the 128-bank chip: a discrete-event clock (in crossbar\n"
         "cycles) admits requests through a bounded queue, carves superbank\n"
         "lanes per degree class, and dispatches by the chosen policy.\n"
         "\n"
         "workload:\n"
         "  --arrival-rate R     open-loop Poisson arrivals, requests/s\n"
         "                       (default 20000)\n"
         "  --closed-loop N      N closed-loop clients instead (think time\n"
         "                       between requests; overrides --arrival-rate)\n"
         "  --think US           closed-loop mean think time, us (default 100)\n"
         "  --duration US        arrival horizon in simulated us (default\n"
         "                       2000); the runtime then drains\n"
         "  --degrees SPEC       degree mix as deg:weight[,deg:weight...]\n"
         "                       (default 256:4,1024:2,4096:1)\n"
         "  --tenants T          number of tenants (default 4)\n"
         "  --seed S             workload RNG seed (default 1)\n"
         "\n"
         "scheduling:\n"
         "  --policy P           fifo | sjf | edf | wfq (default fifo)\n"
         "  --backend B          execution backend for verified requests:\n"
         "                       gate | word | analytic (default word).\n"
         "                       gate = crossbar simulation (golden, slow),\n"
         "                       word = host-speed flat-word NTT (bit-exact\n"
         "                       vs gate), analytic = accounting only (no\n"
         "                       functional verification)\n"
         "  --queue-capacity C   admission queue bound; arrivals beyond it\n"
         "                       are rejected (default 1024)\n"
         "  --deadline-slack F   deadline = arrival + F x service estimate;\n"
         "                       0 = no deadlines (default 4 for edf, else 0)\n"
         "\n"
         "reliability:\n"
         "  --fail-bank-at US    inject a bank failure at this simulated us\n"
         "                       (0 = none); triggers a repartition\n"
         "  --verify-every K     every Kth request carries data and its\n"
         "                       result is Freivalds-verified (default 64;\n"
         "                       0 = off)\n"
         "\n"
         "resilience (all off by default):\n"
         "  --deadline US        hard per-request deadline: infeasible\n"
         "                       arrivals are rejected at admission, queued\n"
         "                       requests are cancelled when it passes\n"
         "  --retries N          retry detected-bad results up to N times\n"
         "                       with capped exponential backoff\n"
         "  --retry-budget F     retry tokens a tenant earns per admitted\n"
         "                       request (default 0.1); a dry bucket drops\n"
         "                       the retry instead of amplifying\n"
         "  --hedge              duplicate stragglers onto a second lane\n"
         "                       (first result wins; delay = observed p99)\n"
         "  --hedge-delay US     fixed hedge delay (implies --hedge)\n"
         "  --codel-target US    CoDel load shedding: drop when the minimum\n"
         "                       queue sojourn stays above this target\n"
         "  --codel-interval US  CoDel control interval (default 100)\n"
         "  --breaker K          per-lane circuit breaker: open after K\n"
         "                       consecutive failures, half-open probe\n"
         "  --wear-limit N       lane endurance budget in dispatches; the\n"
         "                       health monitor drains and remaps worn\n"
         "                       lanes before they corrupt traffic\n"
         "  --chaos              seeded lane fault episodes (slowdowns and\n"
         "                       corrupting windows) + the full mitigation\n"
         "                       stack; individual flags still override\n"
         "  --chaos-seed S       chaos episode RNG seed (default: --seed)\n"
         "\n"
         "fleet (multi-chip; the flags below require --fleet):\n"
         "  --fleet N            serve across N independent chips behind one\n"
         "                       deterministic front-end: requests shard by\n"
         "                       degree class onto primary + replica chips,\n"
         "                       unhealthy chips drain (queued work migrates,\n"
         "                       the shard map rebuilds) and rejoin after a\n"
         "                       scrub. The report becomes a fleet/1\n"
         "                       aggregate with per-chip serving/2 reports.\n"
         "                       --retries / --retry-budget / --hedge /\n"
         "                       --hedge-delay also apply at fleet\n"
         "                       granularity (cross-chip re-dispatch and\n"
         "                       hedging) when given explicitly\n"
         "  --router P           front-end policy: hash (consistent, by\n"
         "                       tenant) | least (least loaded) | affinity\n"
         "                       (degree-class primary) (default hash)\n"
         "  --replicas R         placement width per degree class (default\n"
         "                       2, clamped to the fleet size)\n"
         "  --fleet-chaos        seeded whole-chip episodes (crash,\n"
         "                       brownout, corruption storm) exercising the\n"
         "                       drain/re-shard machinery; seed from\n"
         "                       --chaos-seed\n"
         "  --kill-chip-at US    deterministically crash one chip at this\n"
         "                       simulated us (0 = off)\n"
         "  --kill-chip I        which chip --kill-chip-at crashes\n"
         "                       (default 0)\n"
         "\n"
         "protocol (DAG-shaped requests instead of raw polymuls):\n"
         "  --protocol P         kem | bgv-mul | threshold: each arrival is\n"
         "                       a protocol request compiled into a DAG of\n"
         "                       primitive ops (polymul / ntt-limb / sample\n"
         "                       / aggregate) with dependency-aware\n"
         "                       dispatch; fan-out ops land on distinct\n"
         "                       lanes, joins recombine host-side and are\n"
         "                       checked against the pure-host reference\n"
         "                       when the request carries --verify-every\n"
         "                       data. Overrides --degrees with the\n"
         "                       protocol's ring degree\n"
         "  --shares K           threshold share-holder count, 2..62\n"
         "                       (default 3; requires --protocol threshold)\n"
         "\n"
         "durability (crash recovery; the flags below require --journal):\n"
         "  --journal DIR        write-ahead journal + snapshots under DIR:\n"
         "                       every admission and terminal outcome is a\n"
         "                       CRC-framed, flushed record, so a killed run\n"
         "                       loses at most a torn final line\n"
         "  --snapshot-every N   persist a full state snapshot every N\n"
         "                       global events (cross-checked as recovery\n"
         "                       replays past them; 0 = journal only)\n"
         "  --recover            recover from DIR: deterministically replay\n"
         "                       the journaled prefix (each commitment is\n"
         "                       matched, not re-delivered — exactly-once),\n"
         "                       then resume serving live. Requires the\n"
         "                       run's original flags\n"
         "  --kill-at-event N    crash-campaign hook: raise SIGKILL before\n"
         "                       processing global event N (0 = off)\n"
         "\n"
         "observability:\n"
         "  --events PATH        stream the request-lifecycle event log as\n"
         "                       JSONL (one record per transition: admitted,\n"
         "                       dispatched, retry, hedge, completed, ...),\n"
         "                       written as the run progresses; control\n"
         "                       records flush immediately, so a crashed\n"
         "                       run's log is a parseable prefix\n"
         "  --events-line-buffered\n"
         "                       flush the event-log stream after every\n"
         "                       record, not just control records (slower,\n"
         "                       fully crash-synced; requires --events)\n"
         "  --slo A:LAT          SLO objectives: availability fraction and\n"
         "                       latency threshold in us (e.g. 0.999:50);\n"
         "                       the report gains per-window error-budget\n"
         "                       burn accounting\n"
         "  --window-us US       rolling-telemetry window width (default:\n"
         "                       auto, ~64 windows across the horizon)\n"
         "\n"
         "global flags: --json (serving report as JSON), --trace=FILE\n";
  return 0;
}

int bad_argument(const std::string& arg) {
  std::cerr << "error: unknown argument: " << arg << "\n";
  return usage();
}

/// A malformed command line. main() prints the message and exits 2 (the
/// usage exit code), distinct from runtime failures (exit 1).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Strict full-token unsigned parse: rejects empty strings, signs,
/// whitespace, trailing garbage ("12abc") and out-of-range values —
/// std::stoull would accept the first three and wrap the fourth.
std::uint64_t parse_u64(const std::string& name, const std::string& text) {
  std::uint64_t v = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [p, ec] = std::from_chars(begin, end, v);
  if (text.empty() || ec != std::errc{} || p != end) {
    throw UsageError(name + " expects an unsigned integer, got '" + text +
                     "'");
  }
  return v;
}

/// Removes `--name <value>` or `--name=<value>` from args and returns the
/// raw value, or nullopt when the flag is absent.
std::optional<std::string> take_value(std::vector<std::string>& args,
                                      const std::string& name) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == name) {
      if (i + 1 >= args.size()) {
        throw UsageError(name + " requires a value");
      }
      std::string v = args[i + 1];
      args.erase(args.begin() + static_cast<long>(i),
                 args.begin() + static_cast<long>(i) + 2);
      return v;
    }
    if (args[i].size() > name.size() + 1 && args[i].starts_with(name) &&
        args[i][name.size()] == '=') {
      std::string v = args[i].substr(name.size() + 1);
      args.erase(args.begin() + static_cast<long>(i));
      return v;
    }
  }
  return std::nullopt;
}

/// `--name` as an unsigned integer in [min, max]; `fallback` when absent.
std::uint64_t take_u64(std::vector<std::string>& args, const std::string& name,
                       std::uint64_t fallback, std::uint64_t min = 0,
                       std::uint64_t max = ~std::uint64_t{0}) {
  const auto v = take_value(args, name);
  if (!v) return fallback;
  const std::uint64_t parsed = parse_u64(name, *v);
  if (parsed < min || parsed > max) {
    throw UsageError(name + " must be in [" + std::to_string(min) + ", " +
                     std::to_string(max) + "], got " + std::to_string(parsed));
  }
  return parsed;
}

/// Strict full-token double parse (same contract as parse_u64).
double parse_double(const std::string& name, const std::string& text) {
  const char* begin = text.c_str();
  char* end = nullptr;
  const double parsed = std::strtod(begin, &end);
  if (text.empty() || end != begin + text.size()) {
    throw UsageError(name + " expects a number, got '" + text + "'");
  }
  return parsed;
}

/// `--name` as a probability in [0, 1]; `fallback` when absent.
double take_rate(std::vector<std::string>& args, const std::string& name,
                 double fallback) {
  const auto v = take_value(args, name);
  if (!v) return fallback;
  const double parsed = parse_double(name, *v);
  if (!(parsed >= 0.0 && parsed <= 1.0)) {
    throw UsageError(name + " must be in [0, 1], got '" + *v + "'");
  }
  return parsed;
}

/// `--name` as a double in [min, max]; `fallback` when absent.
double take_double(std::vector<std::string>& args, const std::string& name,
                   double fallback, double min, double max) {
  const auto v = take_value(args, name);
  if (!v) return fallback;
  const double parsed = parse_double(name, *v);
  if (!(parsed >= min && parsed <= max)) {
    throw UsageError(name + " must be in [" + std::to_string(min) + ", " +
                     std::to_string(max) + "], got '" + *v + "'");
  }
  return parsed;
}

/// Removes a bare boolean `--name` from args; true when present.
bool take_flag(std::vector<std::string>& args, const std::string& name) {
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == name) {
      args.erase(it);
      return true;
    }
  }
  return false;
}

/// After a command consumed everything it understands, anything left is
/// an error. Returns nonzero (the process exit code) if so.
int reject_leftovers(const std::vector<std::string>& args) {
  if (args.empty()) return 0;
  return bad_argument(args.front());
}

cp::obs::Json report_json(const cp::sim::SimReport& r) {
  cp::obs::Json j = cp::obs::Json::object();
  j.set("wall_cycles", r.wall_cycles);
  j.set("latency_us", r.latency_us);
  j.set("energy_uj", r.energy_uj);
  j.set("stages", std::uint64_t{r.stages});
  j.set("micro_ops", r.totals.micro_ops);
  j.set("cell_events", r.totals.cell_events);
  j.set("transfer_bits", r.totals.transfer_bits);
  cp::obs::Json stages = cp::obs::Json::array();
  for (std::size_t i = 0; i < r.stage_cycles.size(); ++i) {
    cp::obs::Json s = cp::obs::Json::object();
    s.set("name", i < r.stage_names.size() ? r.stage_names[i] : "?");
    s.set("cycles", r.stage_cycles[i]);
    stages.push_back(std::move(s));
  }
  j.set("stage_cycles", std::move(stages));
  return j;
}

cp::obs::Json reliability_json(const cp::reliability::RelStats& s) {
  cp::obs::Json j = cp::obs::Json::object();
  j.set("verified", s.verified);
  j.set("attempts", std::uint64_t{s.attempts});
  j.set("faults_planted", s.faults_planted);
  j.set("transient_flips", s.transient_flips);
  j.set("parity_mismatches", s.parity_mismatches);
  j.set("write_verify_failures", s.write_verify_failures);
  j.set("verify_checks", s.verify_checks);
  j.set("verify_failures", s.verify_failures);
  j.set("columns_remapped", s.columns_remapped);
  j.set("banks_remapped", s.banks_remapped);
  j.set("verify_cycles", s.verify_cycles);
  j.set("repair_cycles", s.repair_cycles);
  j.set("retry_cycles", s.retry_cycles);
  j.set("overhead_cycles", s.overhead_cycles());
  return j;
}

int cmd_multiply(const Options& opt) {
  auto args = opt.args;
  const auto n = static_cast<std::uint32_t>(
      take_u64(args, "--degree", 256, 4, 1u << 16));
  if ((n & (n - 1)) != 0) {
    throw UsageError("--degree must be a power of two, got " +
                     std::to_string(n));
  }
  const auto seed = take_u64(args, "--seed", 1);
  const double fault_rate = take_rate(args, "--fault-rate", 0.0);
  const auto fault_seed = take_u64(args, "--fault-seed", 1);
  const auto verify_tok = take_value(args, "--verify");
  if (const int rc = reject_leftovers(args)) return rc;
  const bool reliable = fault_rate > 0.0 || verify_tok.has_value();
  unsigned verify_points = 2;
  if (verify_tok) {
    verify_points = static_cast<unsigned>(parse_u64("--verify", *verify_tok));
    if (verify_points > 64) {
      throw UsageError("--verify must be in [0, 64], got " + *verify_tok);
    }
  }

  cp::Accelerator acc(n);
  const auto& p = acc.params();
  std::optional<cp::reliability::ReliabilityManager> rm;
  if (reliable) {
    cp::reliability::ReliabilityConfig rc;
    rc.fault.stuck_rate = fault_rate;
    rc.fault.seed = fault_seed;
    rc.verify.points = verify_points;
    rc.verify.seed = fault_seed ^ 0x5eed5eedULL;
    rm.emplace(rc, p);
    acc.set_reliability(&*rm);
  }
  cp::Xoshiro256 rng(seed);
  const auto a = cp::ntt::sample_uniform(n, p.q, rng);
  const auto b = cp::ntt::sample_uniform(n, p.q, rng);
  cp::ntt::Poly c;
  try {
    c = acc.multiply(a, b);
  } catch (const cp::reliability::UnrecoverableFault& e) {
    std::cerr << "error: " << e.what() << " ("
              << e.stats.banks_remapped << " banks failed; replan with "
              << "ChipConfig::plan_for_degree(n, failed_banks))\n";
    return 1;
  }
  const bool ok = c == acc.multiply_software(a, b);
  const auto& r = acc.last_report();
  if (opt.json) {
    cp::obs::Json j = cp::obs::Json::object();
    j.set("command", "multiply");
    j.set("n", std::uint64_t{n});
    j.set("q", std::uint64_t{p.q});
    j.set("seed", seed);
    j.set("bit_exact", ok);
    if (reliable) {
      j.set("fault_rate", fault_rate);
      j.set("fault_seed", fault_seed);
      j.set("reliability", reliability_json(r.reliability));
    }
    j.set("report", report_json(r));
    j.set("metrics", cp::obs::metrics().snapshot());
    j.write(std::cout);
    std::cout << "\n";
  } else {
    std::cout << "n=" << n << " q=" << p.q << " seed=" << seed << "\n"
              << "result:   " << (ok ? "bit-exact vs software NTT" : "MISMATCH")
              << "\ncycles:   " << cp::fmt_i(r.wall_cycles) << " ("
              << cp::fmt_f(r.latency_us) << " us)\nenergy:   "
              << cp::fmt_f(r.energy_uj) << " uJ\nstages:   " << r.stages
              << "\nmicroops: " << cp::fmt_i(r.totals.micro_ops) << "\n";
    if (reliable) {
      const auto& s = r.reliability;
      std::cout << "reliability: " << (s.verified ? "verified" : "UNVERIFIED")
                << " in " << s.attempts << " attempt(s), "
                << s.faults_planted << " faults planted, "
                << s.write_verify_failures << " write-verify + "
                << s.parity_mismatches << " parity + "
                << s.verify_failures << " freivalds detections, "
                << s.columns_remapped << " columns / " << s.banks_remapped
                << " banks remapped, " << cp::fmt_i(s.overhead_cycles())
                << " overhead cycles\n";
    }
  }
  return ok ? 0 : 1;
}

void report_row(cp::Table& t, cp::obs::Json& rows, std::uint32_t n) {
  const auto perf = cp::model::cryptopim_pipelined(n);
  const auto np = cp::model::cryptopim_non_pipelined(n);
  const auto plan = cp::arch::ChipConfig::paper_chip().plan_for_degree(n);
  t.add_row({std::to_string(n),
             std::to_string(cp::ntt::paper_modulus_for_degree(n)),
             cp::fmt_f(perf.latency_us), cp::fmt_f(np.latency_us),
             cp::fmt_i(static_cast<std::uint64_t>(perf.throughput_per_s)),
             cp::fmt_f(perf.energy_uj), std::to_string(plan.superbanks)});
  cp::obs::Json j = cp::obs::Json::object();
  j.set("n", std::uint64_t{n});
  j.set("q", std::uint64_t{cp::ntt::paper_modulus_for_degree(n)});
  j.set("pipelined_latency_us", perf.latency_us);
  j.set("non_pipelined_latency_us", np.latency_us);
  j.set("pipelined_throughput_per_s", perf.throughput_per_s);
  j.set("pipelined_energy_uj", perf.energy_uj);
  j.set("superbanks", std::uint64_t{plan.superbanks});
  rows.push_back(std::move(j));
}

int cmd_report(const Options& opt) {
  auto args = opt.args;
  const auto n = static_cast<std::uint32_t>(
      take_u64(args, "--degree", 0, 0, 1u << 16));
  if (n != 0 && (n & (n - 1)) != 0) {
    throw UsageError("--degree must be a power of two, got " +
                     std::to_string(n));
  }
  if (const int rc = reject_leftovers(args)) return rc;

  cp::Table t({"n", "q", "P lat (us)", "NP lat (us)", "P thr (/s)",
               "P energy (uJ)", "superbanks"});
  cp::obs::Json rows = cp::obs::Json::array();
  if (n != 0) {
    report_row(t, rows, n);
  } else {
    for (const auto d : cp::ntt::paper_degrees()) report_row(t, rows, d);
  }
  if (opt.json) {
    cp::obs::Json j = cp::obs::Json::object();
    j.set("command", "report");
    j.set("rows", std::move(rows));
    j.write(std::cout);
    std::cout << "\n";
  } else {
    t.print(std::cout);
  }
  return 0;
}

int cmd_schedule(const Options& opt) {
  std::vector<cp::model::Job> jobs;
  for (const std::string& spec : opt.args) {
    const auto colon = spec.find(':');
    if (spec.starts_with("--") || colon == std::string::npos) {
      return bad_argument(spec);
    }
    const std::uint64_t deg =
        parse_u64("schedule spec degree", spec.substr(0, colon));
    const std::uint64_t count =
        parse_u64("schedule spec count", spec.substr(colon + 1));
    // plan_for_degree rejects non-power-of-two degrees; surface that as a
    // usage error (exit 2) rather than a runtime failure.
    if (deg < 4 || deg > (1u << 16) || (deg & (deg - 1)) != 0) {
      throw UsageError(
          "schedule spec degree must be a power of two in [4, 65536], got '" +
          spec + "'");
    }
    jobs.push_back(cp::model::Job{static_cast<std::uint32_t>(deg), count});
  }
  if (jobs.empty()) return usage();
  const cp::model::ChipScheduler sched;
  const auto res = sched.schedule(jobs);
  if (opt.json) {
    cp::obs::Json j = cp::obs::Json::object();
    j.set("command", "schedule");
    cp::obs::Json batches = cp::obs::Json::array();
    for (const auto& b : res.batches) {
      cp::obs::Json bj = cp::obs::Json::object();
      bj.set("degree", std::uint64_t{b.degree});
      bj.set("multiplications", b.multiplications);
      bj.set("superbanks", std::uint64_t{b.superbanks});
      bj.set("segments", std::uint64_t{b.segments});
      bj.set("duration_us", b.duration_us);
      batches.push_back(std::move(bj));
    }
    j.set("batches", std::move(batches));
    j.set("makespan_us", res.makespan_us);
    j.set("utilization", res.utilization);
    j.set("throughput_per_s", res.throughput_per_s);
    j.write(std::cout);
    std::cout << "\n";
    return 0;
  }
  cp::Table t({"degree", "mults", "superbanks", "segments", "batch (us)"});
  for (const auto& b : res.batches) {
    t.add_row({std::to_string(b.degree), cp::fmt_i(b.multiplications),
               std::to_string(b.superbanks), std::to_string(b.segments),
               cp::fmt_f(b.duration_us)});
  }
  t.print(std::cout);
  std::cout << "makespan: " << cp::fmt_f(res.makespan_us) << " us, "
            << "utilization " << cp::fmt_f(res.utilization * 100, 1)
            << "%, aggregate "
            << cp::fmt_i(static_cast<std::uint64_t>(res.throughput_per_s))
            << " mults/s\n";
  return 0;
}

/// Parse "deg:weight[,deg:weight...]" into a degree mix.
std::vector<cp::runtime::DegreeShare> parse_mix(const std::string& spec) {
  std::vector<cp::runtime::DegreeShare> mix;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const auto colon = item.find(':');
    if (colon == std::string::npos) {
      throw UsageError("--degrees expects deg:weight[,deg:weight...], got '" +
                       spec + "'");
    }
    cp::runtime::DegreeShare share;
    const std::uint64_t deg =
        parse_u64("--degrees degree", item.substr(0, colon));
    if (deg < 4 || deg > (1u << 16) || (deg & (deg - 1)) != 0) {
      throw UsageError("--degrees degree must be a power of two in "
                       "[4, 65536], got '" + item + "'");
    }
    share.degree = static_cast<std::uint32_t>(deg);
    share.weight = parse_double("--degrees weight", item.substr(colon + 1));
    if (!(share.weight > 0)) {
      throw UsageError("--degrees weight must be positive, got '" + item +
                       "'");
    }
    mix.push_back(share);
    pos = comma + 1;
  }
  if (mix.empty()) throw UsageError("--degrees must not be empty");
  return mix;
}

int cmd_serve(const Options& opt) {
  auto args = opt.args;
  for (const auto& a : args) {
    if (a == "--help" || a == "-h") return serve_help();
  }
  cp::runtime::ServingConfig cfg;
  cfg.policy = take_value(args, "--policy").value_or("fifo");
  cfg.backend = take_value(args, "--backend").value_or("word");
  cfg.arrival_rate_per_s =
      take_double(args, "--arrival-rate", 20000.0, 1e-3, 1e12);
  cfg.closed_loop_clients = static_cast<std::uint32_t>(
      take_u64(args, "--closed-loop", 0, 0, 1u << 20));
  cfg.think_time_us = take_double(args, "--think", 100.0, 0.0, 1e12);
  cfg.duration_us = take_double(args, "--duration", 2000.0, 0.001, 1e9);
  cfg.queue_capacity = take_u64(args, "--queue-capacity", 1024, 1, 1u << 24);
  cfg.deadline_slack = take_double(args, "--deadline-slack",
                                   cfg.policy == "edf" ? 4.0 : 0.0, 0.0, 1e6);
  cfg.fail_bank_at_us = take_double(args, "--fail-bank-at", 0.0, 0.0, 1e9);
  cfg.workload.tenants =
      static_cast<std::uint32_t>(take_u64(args, "--tenants", 4, 1, 1u << 16));
  cfg.workload.seed = take_u64(args, "--seed", 1);
  cfg.workload.verify_every = static_cast<std::uint32_t>(
      take_u64(args, "--verify-every", 64, 0, 1u << 30));
  cfg.workload.mix =
      parse_mix(take_value(args, "--degrees").value_or("256:4,1024:2,4096:1"));

  // Whether the retry/hedge flags were given explicitly (vs preset or
  // default) — in fleet mode they then also configure the cross-chip
  // layer, before the resilience parse below consumes them.
  const auto flag_present = [&args](const std::string& name) {
    for (const auto& a : args) {
      if (a == name || (a.starts_with(name) && a.size() > name.size() &&
                        a[name.size()] == '=')) {
        return true;
      }
    }
    return false;
  };

  // -- protocol: DAG-shaped requests replace raw polymuls ---------------------
  const auto protocol_name = take_value(args, "--protocol");
  const bool shares_given = flag_present("--shares");
  const auto shares = take_u64(args, "--shares", 3, cp::runtime::kMinShares,
                               cp::runtime::kMaxShares);
  if (protocol_name) {
    const auto kind = cp::runtime::parse_protocol(*protocol_name);
    if (!kind) {
      throw UsageError("unknown protocol '" + *protocol_name +
                       "' (expected one of: kem, bgv-mul, threshold)");
    }
    cfg.protocol.kind = *kind;
    cfg.protocol.shares = static_cast<std::uint32_t>(shares);
    if (shares_given && *kind != cp::runtime::ProtocolKind::kThreshold) {
      throw UsageError("--shares requires --protocol threshold");
    }
    // Every lane op in a protocol DAG runs at the protocol's ring
    // degree; the degree mix collapses to that one class.
    cfg.workload.mix = {
        {*kind == cp::runtime::ProtocolKind::kKem ? cp::runtime::kKemDegree
                                                  : cp::runtime::kBgvDegree,
         1.0}};
  } else if (shares_given) {
    throw UsageError("--shares requires --protocol threshold");
  }

  const bool retries_given = flag_present("--retries");
  const bool retry_budget_given = flag_present("--retry-budget");
  const bool hedge_given =
      flag_present("--hedge") || flag_present("--hedge-delay");

  // -- resilience: --chaos selects the preset, explicit flags override --------
  const bool chaos = take_flag(args, "--chaos");
  const auto chaos_seed = take_u64(args, "--chaos-seed", cfg.workload.seed);
  if (chaos) {
    cfg.resilience = cp::runtime::ResilienceConfig::chaos_preset(chaos_seed);
  }
  auto& res = cfg.resilience;
  res.deadline_us = take_double(args, "--deadline", res.deadline_us, 0.0, 1e9);
  res.max_retries = static_cast<unsigned>(
      take_u64(args, "--retries", res.max_retries, 0, 64));
  res.retry_budget_ratio =
      take_double(args, "--retry-budget", res.retry_budget_ratio, 0.0, 64.0);
  if (take_flag(args, "--hedge")) res.hedge = true;
  res.hedge_delay_us =
      take_double(args, "--hedge-delay", res.hedge_delay_us, 0.0, 1e9);
  if (res.hedge_delay_us > 0) res.hedge = true;
  res.codel_target_us =
      take_double(args, "--codel-target", res.codel_target_us, 0.0, 1e9);
  res.codel_interval_us =
      take_double(args, "--codel-interval", res.codel_interval_us, 0.001, 1e9);
  res.breaker_k = static_cast<unsigned>(
      take_u64(args, "--breaker", res.breaker_k, 0, 1u << 20));
  res.wear_limit = take_u64(args, "--wear-limit", res.wear_limit);

  // -- durability -------------------------------------------------------------
  cp::runtime::DurabilityOptions durab;
  const bool journal_given = flag_present("--journal");
  durab.dir = take_value(args, "--journal").value_or("");
  if (journal_given && durab.dir.empty()) {
    throw UsageError("--journal requires a non-empty directory");
  }
  durab.snapshot_every = take_u64(args, "--snapshot-every", 0, 0, 1ull << 40);
  durab.recover = take_flag(args, "--recover");
  durab.kill_at_event = take_u64(args, "--kill-at-event", 0, 0, ~0ull >> 1);
  if (!durab.enabled() &&
      (durab.snapshot_every > 0 || durab.recover || durab.kill_at_event > 0)) {
    throw UsageError(
        "durability flags (--snapshot-every/--recover/--kill-at-event) "
        "require --journal DIR");
  }

  // -- observability ----------------------------------------------------------
  const auto events_path = take_value(args, "--events");
  if (events_path && events_path->empty()) {
    throw UsageError("--events requires a non-empty path");
  }
  const bool events_line_buffered = take_flag(args, "--events-line-buffered");
  if (events_line_buffered && !events_path) {
    throw UsageError("--events-line-buffered requires --events PATH");
  }
  cfg.window_cycles = static_cast<std::uint64_t>(
      take_double(args, "--window-us", 0.0, 0.0, 1e9) * cfg.cycles_per_us());
  if (const auto slo = take_value(args, "--slo")) {
    // AVAIL:LATENCY_US, e.g. 0.999:50 = "99.9% served, 99% of them
    // within 50 us". Both halves strict full-token parses.
    const auto colon = slo->find(':');
    if (colon == std::string::npos) {
      throw UsageError("--slo expects AVAILABILITY:LATENCY_US, got '" + *slo +
                       "'");
    }
    cfg.slo.availability =
        parse_double("--slo availability", slo->substr(0, colon));
    cfg.slo.latency_us = parse_double("--slo latency", slo->substr(colon + 1));
    if (!(cfg.slo.availability >= 0.0 && cfg.slo.availability <= 1.0)) {
      throw UsageError("--slo availability must be in [0, 1], got '" +
                       slo->substr(0, colon) + "'");
    }
    if (!(cfg.slo.latency_us >= 0.0)) {
      throw UsageError("--slo latency must be >= 0, got '" +
                       slo->substr(colon + 1) + "'");
    }
  }

  // -- fleet ------------------------------------------------------------------
  const auto fleet_n = take_u64(args, "--fleet", 0, 0, 1024);
  const auto router_name = take_value(args, "--router");
  const auto replicas = take_u64(args, "--replicas", 2, 1, 1024);
  const bool fleet_chaos = take_flag(args, "--fleet-chaos");
  const auto kill_chip_at = take_double(args, "--kill-chip-at", 0.0, 0.0, 1e9);
  const auto kill_chip = take_u64(args, "--kill-chip", 0, 0, 1023);
  if (fleet_n == 0 && (router_name || fleet_chaos || kill_chip_at > 0)) {
    throw UsageError(
        "fleet flags (--router/--replicas/--fleet-chaos/--kill-chip-at) "
        "require --fleet N");
  }

  if (const int rc = reject_leftovers(args)) return rc;
  if (!cp::runtime::make_policy(cfg.policy)) {
    throw UsageError("unknown policy '" + cfg.policy + "' (expected one of: "
                     "fifo, sjf, edf, wfq)");
  }
  if (!cp::runtime::make_backend(cfg.backend)) {
    throw UsageError("unknown backend '" + cfg.backend +
                     "' (expected one of: gate, word, analytic)");
  }

  if (fleet_n > 0) {
    if (cfg.closed_loop_clients > 0) {
      throw UsageError(
          "--fleet drives open-loop arrivals only (drop --closed-loop)");
    }
    cp::runtime::FleetConfig fc;
    fc.chips = static_cast<std::uint32_t>(fleet_n);
    fc.router = router_name.value_or("hash");
    fc.replicas = static_cast<std::uint32_t>(replicas);
    fc.chip = cfg;
    // The per-lane retry/hedge flags double at fleet granularity when
    // given explicitly: lane retries fight corruption inside a chip,
    // cross-chip retries re-route work a whole chip gave up on.
    if (retries_given) fc.max_retries = res.max_retries;
    if (retry_budget_given) fc.retry_budget_ratio = res.retry_budget_ratio;
    if (hedge_given) {
      fc.hedge = res.hedge;
      fc.hedge_delay_us = res.hedge_delay_us;
    }
    fc.chaos.enabled = fleet_chaos;
    fc.chaos.seed = chaos_seed;
    fc.kill_chip_at_us = kill_chip_at;
    fc.kill_chip = static_cast<std::uint32_t>(kill_chip);
    if (!cp::runtime::make_router(fc.router)) {
      throw UsageError("unknown router '" + fc.router +
                       "' (expected one of: hash, least, affinity)");
    }

    cp::runtime::FleetRuntime fleet(std::move(fc));
    if (durab.enabled()) fleet.enable_durability(durab);
    cp::obs::EventLog fleet_elog;
    if (events_path) {
      fleet_elog.open_stream(*events_path, events_line_buffered);
      fleet.set_event_log(&fleet_elog);
    }
    const auto rep = fleet.run();
    if (events_path) {
      fleet_elog.close_stream();
      std::cerr << "[events: " << *events_path << ", " << fleet_elog.size()
                << " records]\n";
    }
    std::uint64_t verified = 0, verify_failures = 0, wrong_accepted = 0;
    for (const auto& c : rep.chip_reports) {
      verified += c.verified;
      verify_failures += c.verify_failures;
      wrong_accepted += c.resilience.wrong_accepted;
    }
    if (opt.json) {
      cp::obs::Json j = cp::obs::Json::object();
      j.set("command", "serve");
      j.set("seed", cfg.workload.seed);
      j.set("fleet", std::uint64_t{rep.chips});
      j.set("arrival_rate_per_s", cfg.arrival_rate_per_s);
      j.set("duration_us", cfg.duration_us);
      j.set("report", rep.to_json());
      j.write(std::cout);
      std::cout << "\n";
    } else {
      const auto lat_us = [&rep](double q) {
        return rep.latency_cycles.quantile(q) / rep.cycles_per_us;
      };
      std::cout << "fleet:       " << rep.chips << " chips, router "
                << rep.router << ", replicas " << rep.replicas << "\n"
                << "policy:      " << cfg.policy << "\n"
                << "backend:     " << cfg.backend << "\n"
                << "horizon:     " << cp::fmt_f(cfg.duration_us) << " us ("
                << cp::fmt_i(rep.duration_cycles) << " cycles)\n"
                << "submitted:   " << cp::fmt_i(rep.submitted) << " ("
                << cp::fmt_i(static_cast<std::uint64_t>(rep.offered_per_s))
                << " req/s offered)\n"
                << "completed:   " << cp::fmt_i(rep.completed) << " ("
                << cp::fmt_i(static_cast<std::uint64_t>(rep.throughput_per_s))
                << " req/s)\n"
                << "fates:       " << cp::fmt_i(rep.rejected) << " rejected, "
                << cp::fmt_i(rep.shed) << " shed, "
                << cp::fmt_i(rep.timed_out) << " timed out, "
                << cp::fmt_i(rep.failed) << " failed, "
                << cp::fmt_i(rep.queued) << " queued at drain\n"
                << "latency:     mean "
                << cp::fmt_f(rep.latency_cycles.mean() / rep.cycles_per_us)
                << " us, p50 " << cp::fmt_f(lat_us(0.5)) << " us, p99 "
                << cp::fmt_f(lat_us(0.99)) << " us, p999 "
                << cp::fmt_f(lat_us(0.999)) << " us\n"
                << "routing:     " << cp::fmt_i(rep.routed) << " routed, "
                << cp::fmt_i(rep.parked) << " parked, "
                << cp::fmt_i(rep.reshards) << " reshards\n"
                << "cross-chip:  " << cp::fmt_i(rep.cross_retries)
                << " retries (" << cp::fmt_i(rep.retry_budget_denied)
                << " budget-denied), hedges "
                << cp::fmt_i(rep.hedges_launched) << " ("
                << cp::fmt_i(rep.hedge_wasted) << " wasted)\n"
                << "domains:     " << cp::fmt_i(rep.drains) << " drains, "
                << cp::fmt_i(rep.crashes) << " crashes, "
                << cp::fmt_i(rep.brownouts) << " brownouts, "
                << cp::fmt_i(rep.corruption_storms) << " storms, "
                << cp::fmt_i(rep.rejoins) << " rejoins\n"
                << "migration:   " << cp::fmt_i(rep.migrated)
                << " migrated, " << cp::fmt_i(rep.redispatched)
                << " redispatched\n"
                << "verified:    " << cp::fmt_i(verified) << " ok, "
                << cp::fmt_i(verify_failures) << " failed, "
                << cp::fmt_i(wrong_accepted) << " wrong-accepted\n";
      cp::Table t({"chip", "submitted", "completed", "rejected", "failed",
                   "migrated", "p99 (us)"});
      for (const auto& c : rep.chip_reports) {
        t.add_row({std::to_string(c.chip_id), cp::fmt_i(c.submitted),
                   cp::fmt_i(c.completed), cp::fmt_i(c.rejected),
                   cp::fmt_i(c.resilience.failed + c.chip_failed),
                   cp::fmt_i(c.migrated), cp::fmt_f(c.latency_us(0.99))});
      }
      t.print(std::cout);
    }
    // Same contract as single-chip serve: a corrupt result delivered as
    // good anywhere in the fleet is the one unforgivable outcome.
    return verify_failures == 0 && wrong_accepted == 0 ? 0 : 1;
  }

  cp::runtime::ServingRuntime rt(cfg);
  if (durab.enabled()) rt.enable_durability(durab);
  cp::obs::EventLog elog;
  if (events_path) {
    elog.open_stream(*events_path, events_line_buffered);
    rt.set_event_log(&elog);
  }
  const auto rep = rt.run();
  if (events_path) {
    elog.close_stream();
    std::cerr << "[events: " << *events_path << ", " << elog.size()
              << " records]\n";
  }
  if (opt.json) {
    cp::obs::Json j = cp::obs::Json::object();
    j.set("command", "serve");
    j.set("seed", cfg.workload.seed);
    j.set("arrival_rate_per_s", cfg.arrival_rate_per_s);
    j.set("closed_loop_clients", std::uint64_t{cfg.closed_loop_clients});
    j.set("duration_us", cfg.duration_us);
    j.set("report", rep.to_json());
    j.write(std::cout);
    std::cout << "\n";
  } else {
    std::cout << "policy:      " << rep.policy << "\n"
              << "backend:     " << rep.backend << "\n"
              << "horizon:     " << cp::fmt_f(cfg.duration_us) << " us ("
              << cp::fmt_i(rep.duration_cycles) << " cycles)\n"
              << "submitted:   " << cp::fmt_i(rep.submitted) << " ("
              << cp::fmt_i(static_cast<std::uint64_t>(rep.offered_per_s))
              << " req/s offered)\n"
              << "admitted:    " << cp::fmt_i(rep.admitted) << "\n"
              << "rejected:    " << cp::fmt_i(rep.rejected)
              << " backpressure + " << cp::fmt_i(rep.rejected_unservable)
              << " unservable\n"
              << "completed:   " << cp::fmt_i(rep.completed) << " ("
              << cp::fmt_i(static_cast<std::uint64_t>(rep.throughput_per_s))
              << " req/s)\n"
              << "latency:     mean "
              << cp::fmt_f(rep.latency_cycles.mean() / rep.cycles_per_us)
              << " us, p50 " << cp::fmt_f(rep.latency_us(0.5))
              << " us, p99 " << cp::fmt_f(rep.latency_us(0.99))
              << " us, p999 " << cp::fmt_f(rep.latency_us(0.999)) << " us\n"
              << "utilization: " << cp::fmt_pct(rep.utilization, 1) << "\n"
              << "repartitions " << cp::fmt_i(rep.repartitions)
              << ", bank failures " << cp::fmt_i(rep.bank_failures)
              << ", retried " << cp::fmt_i(rep.retried) << "\n"
              << "deadlines:   " << cp::fmt_i(rep.deadline_misses)
              << " missed\n"
              << "verified:    " << cp::fmt_i(rep.verified) << " ok, "
              << cp::fmt_i(rep.verify_failures) << " failed\n";
    if (rep.slo.enabled()) {
      std::cout << "slo:         availability "
                << cp::fmt_pct(rep.slo.availability(), 3) << " (objective "
                << cp::fmt_pct(rep.slo.config().availability, 3) << "), "
                << "error budget " << cp::fmt_pct(
                       rep.slo.error_budget_consumed(), 1)
                << " consumed\n"
                << "  latency:   " << cp::fmt_i(rep.slo.latency_violations())
                << " violations, budget "
                << cp::fmt_pct(rep.slo.latency_budget_consumed(), 1)
                << " consumed, max window burn "
                << cp::fmt_f(rep.slo.max_window_burn()) << "x\n";
    }
    if (rep.resilience_enabled) {
      const auto& rs = rep.resilience;
      std::cout << "resilience:  " << cp::fmt_i(rs.rejected_deadline)
                << " rejected@deadline, " << cp::fmt_i(rs.timed_out)
                << " timed out, " << cp::fmt_i(rs.shed) << " shed, "
                << cp::fmt_i(rs.failed) << " failed\n"
                << "  retries:   " << cp::fmt_i(rs.retries) << " ("
                << cp::fmt_i(rs.retry_budget_denied) << " budget-denied)"
                << ", hedges " << cp::fmt_i(rs.hedges) << " ("
                << cp::fmt_i(rs.hedge_wins) << " won)\n"
                << "  breaker:   " << cp::fmt_i(rs.breaker_opens)
                << " opens, " << cp::fmt_i(rs.breaker_probes) << " probes, "
                << cp::fmt_i(rs.breaker_closes) << " closes\n"
                << "  health:    " << cp::fmt_i(rs.scrubs) << " scrubs, "
                << cp::fmt_i(rs.proactive_remaps) << " proactive remaps, "
                << cp::fmt_i(rs.wear_corruptions) << " wear corruptions\n"
                << "  chaos:     " << cp::fmt_i(rs.chaos_episodes)
                << " episodes, " << cp::fmt_i(rs.detected_corruptions)
                << " corruptions detected, " << cp::fmt_i(rs.wrong_accepted)
                << " wrong accepted\n";
    }
    if (rep.protocol_enabled) {
      const auto& ps = rep.protocol;
      std::cout << "protocol:    " << ps.kind;
      if (ps.shares > 0) std::cout << " (" << ps.shares << " shares)";
      std::cout << ", " << ps.ops_per_request << " ops/request\n"
                << "  requests:  " << cp::fmt_i(ps.requests) << " ("
                << cp::fmt_i(ps.completed) << " completed, "
                << cp::fmt_i(ps.failed) << " failed, "
                << cp::fmt_i(ps.rejected) << " rejected)\n"
                << "  ops:       " << cp::fmt_i(ps.ops_completed)
                << " completed, " << cp::fmt_i(ps.ops_cancelled)
                << " cancelled, " << cp::fmt_i(ps.host_ops)
                << " host-side\n"
                << "  joins:     " << cp::fmt_i(ps.joins) << " checked, "
                << cp::fmt_i(ps.join_mismatches) << " mismatched\n"
                << "  latency:   p50 "
                << cp::fmt_i(static_cast<std::uint64_t>(
                       ps.latency_cycles.quantile(0.5)))
                << " cyc, p99 "
                << cp::fmt_i(static_cast<std::uint64_t>(
                       ps.latency_cycles.quantile(0.99)))
                << " cyc\n";
    }
    cp::Table t({"tenant", "weight", "admitted", "completed", "bank-cycles",
                 "p50 (cyc)", "p99 (cyc)"});
    for (const auto& [id, ts] : rep.tenants) {
      t.add_row({std::to_string(id), cp::fmt_f(ts.weight, 1),
                 cp::fmt_i(ts.admitted), cp::fmt_i(ts.completed),
                 cp::fmt_i(ts.bank_cycles),
                 cp::fmt_i(ts.latency_cycles.quantile(0.5)),
                 cp::fmt_i(ts.latency_cycles.quantile(0.99))});
    }
    t.print(std::cout);
  }
  // A corrupt result delivered as good is the one unforgivable outcome.
  return rep.verify_failures == 0 && rep.resilience.wrong_accepted == 0 ? 0
                                                                        : 1;
}

int cmd_kem(const Options& opt) {
  auto args = opt.args;
  const auto seed_v = take_u64(args, "--seed", 7);
  if (const int rc = reject_leftovers(args)) return rc;

  cp::crypto::KemScheme kem;
  cp::sim::CryptoPimSimulator simu(
      cp::ntt::NttParams::for_degree(kem.pke().params().n));
  kem.pke().set_multiplier(
      [&simu](const cp::ntt::Poly& a, const cp::ntt::Poly& b) {
        return simu.multiply(a, b);
      });
  cp::crypto::Seed ks{}, es{};
  ks.fill(static_cast<std::uint8_t>(seed_v));
  es.fill(static_cast<std::uint8_t>(seed_v + 1));
  const auto [pk, sk] = kem.keygen(ks);
  const auto [ct, key_enc] = kem.encapsulate(pk, es);
  const auto key_dec = kem.decapsulate(sk, ct);
  const bool ok = key_enc == key_dec;
  if (opt.json) {
    cp::obs::Json j = cp::obs::Json::object();
    j.set("command", "kem");
    j.set("seed", seed_v);
    j.set("shared_secret_agreed", ok);
    j.set("ring_multiplications", kem.pke().multiplications());
    j.set("metrics", cp::obs::metrics().snapshot());
    j.write(std::cout);
    std::cout << "\n";
  } else {
    std::cout << "KEM handshake: " << (ok ? "shared secret agreed" : "FAILED")
              << " (" << kem.pke().multiplications()
              << " ring multiplications on the accelerator)\n";
  }
  return ok ? 0 : 1;
}

int write_trace(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "error: cannot open trace file " << path << "\n";
    return 1;
  }
  cp::obs::tracer().write_chrome_trace(os);
  std::cerr << "[trace: " << path << ", "
            << cp::obs::tracer().events().size() << " events]\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "--version") {
    std::cout << "cryptopim " << CRYPTOPIM_GIT_VERSION << "\n";
    return 0;
  }
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    print_usage(std::cout);
    return 0;
  }
  Options opt;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      opt.json = true;
    } else if (a.starts_with("--trace=")) {
      opt.trace_path = a.substr(8);
      if (opt.trace_path.empty()) return bad_argument(a);
    } else {
      opt.args.push_back(a);
    }
  }
  if (!opt.trace_path.empty()) {
#if !CRYPTOPIM_TRACING
    std::cerr << "error: --trace requires a build with CRYPTOPIM_TRACING=ON\n";
    return 2;
#endif
    cp::obs::tracer().clear();
    cp::obs::tracer().set_enabled(true);
  }
  try {
    int rc;
    if (cmd == "multiply") rc = cmd_multiply(opt);
    else if (cmd == "report") rc = cmd_report(opt);
    else if (cmd == "schedule") rc = cmd_schedule(opt);
    else if (cmd == "kem") rc = cmd_kem(opt);
    else if (cmd == "serve") rc = cmd_serve(opt);
    else {
      std::cerr << "error: unknown command: " << cmd << "\n";
      return usage();
    }
    if (!opt.trace_path.empty()) {
      const int trc = write_trace(opt.trace_path);
      if (rc == 0) rc = trc;
    }
    return rc;
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
