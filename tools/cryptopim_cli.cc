// cryptopim — command-line front end to the library.
//
//   cryptopim multiply --degree N [--seed S]   run one multiplication in
//                                              simulated crossbars, verify,
//                                              report cycles/energy
//   cryptopim report [--degree N]              modelled hardware numbers
//                                              (one degree or the Table II
//                                              sweep)
//   cryptopim schedule <deg:count>...          map a mixed workload onto
//                                              the 128-bank chip
//   cryptopim kem [--seed S]                   run a full KEM handshake on
//                                              the accelerator
#include <cstring>
#include <iostream>
#include <string>

#include "core/cryptopim.h"
#include "crypto/kem.h"

namespace cp = cryptopim;

namespace {

int usage() {
  std::cerr
      << "usage:\n"
         "  cryptopim multiply --degree N [--seed S]\n"
         "  cryptopim report [--degree N]\n"
         "  cryptopim schedule <degree:count> [<degree:count> ...]\n"
         "  cryptopim kem [--seed S]\n";
  return 2;
}

std::uint64_t arg_u64(int argc, char** argv, const char* name,
                      std::uint64_t fallback) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::stoull(argv[i + 1]);
    }
  }
  return fallback;
}

int cmd_multiply(int argc, char** argv) {
  const auto n = static_cast<std::uint32_t>(
      arg_u64(argc, argv, "--degree", 256));
  const auto seed = arg_u64(argc, argv, "--seed", 1);
  cp::Accelerator acc(n);
  const auto& p = acc.params();
  cp::Xoshiro256 rng(seed);
  const auto a = cp::ntt::sample_uniform(n, p.q, rng);
  const auto b = cp::ntt::sample_uniform(n, p.q, rng);
  const auto c = acc.multiply(a, b);
  const bool ok = c == acc.multiply_software(a, b);
  const auto& r = acc.last_report();
  std::cout << "n=" << n << " q=" << p.q << " seed=" << seed << "\n"
            << "result:   " << (ok ? "bit-exact vs software NTT" : "MISMATCH")
            << "\ncycles:   " << cp::fmt_i(r.wall_cycles) << " ("
            << cp::fmt_f(r.latency_us) << " us)\nenergy:   "
            << cp::fmt_f(r.energy_uj) << " uJ\nstages:   " << r.stages
            << "\nmicroops: " << cp::fmt_i(r.totals.micro_ops) << "\n";
  return ok ? 0 : 1;
}

void report_row(cp::Table& t, std::uint32_t n) {
  const auto perf = cp::model::cryptopim_pipelined(n);
  const auto np = cp::model::cryptopim_non_pipelined(n);
  const auto plan = cp::arch::ChipConfig::paper_chip().plan_for_degree(n);
  t.add_row({std::to_string(n),
             std::to_string(cp::ntt::paper_modulus_for_degree(n)),
             cp::fmt_f(perf.latency_us), cp::fmt_f(np.latency_us),
             cp::fmt_i(static_cast<std::uint64_t>(perf.throughput_per_s)),
             cp::fmt_f(perf.energy_uj), std::to_string(plan.superbanks)});
}

int cmd_report(int argc, char** argv) {
  const auto n = static_cast<std::uint32_t>(arg_u64(argc, argv, "--degree", 0));
  cp::Table t({"n", "q", "P lat (us)", "NP lat (us)", "P thr (/s)",
               "P energy (uJ)", "superbanks"});
  if (n != 0) {
    report_row(t, n);
  } else {
    for (const auto d : cp::ntt::paper_degrees()) report_row(t, d);
  }
  t.print(std::cout);
  return 0;
}

int cmd_schedule(int argc, char** argv) {
  std::vector<cp::model::Job> jobs;
  for (int i = 2; i < argc; ++i) {
    const std::string spec = argv[i];
    const auto colon = spec.find(':');
    if (colon == std::string::npos) return usage();
    jobs.push_back(cp::model::Job{
        static_cast<std::uint32_t>(std::stoul(spec.substr(0, colon))),
        std::stoull(spec.substr(colon + 1))});
  }
  if (jobs.empty()) return usage();
  const cp::model::ChipScheduler sched;
  const auto res = sched.schedule(jobs);
  cp::Table t({"degree", "mults", "superbanks", "segments", "batch (us)"});
  for (const auto& b : res.batches) {
    t.add_row({std::to_string(b.degree), cp::fmt_i(b.multiplications),
               std::to_string(b.superbanks), std::to_string(b.segments),
               cp::fmt_f(b.duration_us)});
  }
  t.print(std::cout);
  std::cout << "makespan: " << cp::fmt_f(res.makespan_us) << " us, "
            << "utilization " << cp::fmt_f(res.utilization * 100, 1)
            << "%, aggregate "
            << cp::fmt_i(static_cast<std::uint64_t>(res.throughput_per_s))
            << " mults/s\n";
  return 0;
}

int cmd_kem(int argc, char** argv) {
  const auto seed_v = arg_u64(argc, argv, "--seed", 7);
  cp::crypto::KemScheme kem;
  cp::sim::CryptoPimSimulator simu(
      cp::ntt::NttParams::for_degree(kem.pke().params().n));
  kem.pke().set_multiplier(
      [&simu](const cp::ntt::Poly& a, const cp::ntt::Poly& b) {
        return simu.multiply(a, b);
      });
  cp::crypto::Seed ks{}, es{};
  ks.fill(static_cast<std::uint8_t>(seed_v));
  es.fill(static_cast<std::uint8_t>(seed_v + 1));
  const auto [pk, sk] = kem.keygen(ks);
  const auto [ct, key_enc] = kem.encapsulate(pk, es);
  const auto key_dec = kem.decapsulate(sk, ct);
  const bool ok = key_enc == key_dec;
  std::cout << "KEM handshake: " << (ok ? "shared secret agreed" : "FAILED")
            << " (" << kem.pke().multiplications()
            << " ring multiplications on the accelerator)\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "multiply") return cmd_multiply(argc, argv);
    if (cmd == "report") return cmd_report(argc, argv);
    if (cmd == "schedule") return cmd_schedule(argc, argv);
    if (cmd == "kem") return cmd_kem(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
