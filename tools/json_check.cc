// json_check — validates observability output files.
//
// Default mode: each argument file must parse as one JSON document.
// Used by tools/run_benches.sh (and the bench_smoke ctest) to assert
// that every bench emitted a well-formed bench_<name>.json, and by the
// CLI smoke tests on --trace output.
//
// --events: arguments are serve-events JSONL logs. Every line must
// parse; the first must be a {"schema":"serve-events/1"} or
// {"schema":"serve-events/2"} header whose "records" count matches the
// body ("streamed":true headers carry no count — the log was written
// live and the total was unknowable up front); every record needs
// "ev" + "cycle" (for /2, also "chip" — the fleet-era field stamped on
// every record, control included); request-scoped records (everything
// but the control set: carve, bank_failure, and the fleet chip_crash /
// chip_brownout / chip_corruption_storm / chip_drain / chip_rejoin /
// reshard) also need "trace" and "tenant".
//
// --journal: arguments are journal/1 write-ahead journals
// (runtime/journal.h). Every line is "<crc32 hex8> <payload>"; the CRC
// must match the payload bytes, the first record must be a journal/1
// "hdr", and each record type must carry its required fields (admit:
// the request field set; out: id + fate; snap: file + state crc; seal:
// counters). A torn tail — one invalid final line, the residue of a
// crash mid-write — is tolerated and reported; an invalid line
// *followed by valid ones* is mid-file corruption and rejected.
//
// --serving: arguments are `serve --json` reports. The document must
// carry report.schema "serving/2" with a "backend" provenance field
// (gate | word | analytic) and the windowed "series" section (schema
// "timeseries/1"); when an "slo" section is present it must be schema
// "slo/1" with summary + windows.
//
// --fleet: arguments are `serve --fleet --json` reports (schema
// "fleet/1"): the "chips" array length must match the "fleet" count,
// every per-chip entry must be a serving/2 report carrying its "chip"
// id, and the final-fate counters must conserve:
// submitted == completed + rejected + shed + timed_out + failed + queued.
//
// Exit 0 iff every file validates.
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/crc32.h"
#include "obs/json.h"

using cryptopim::obs::Json;
using cryptopim::obs::parse_json;

namespace {

bool fail(const std::string& path, const std::string& why) {
  std::cerr << "json_check: " << path << ": " << why << "\n";
  return false;
}

bool check_plain(const std::string& path, const std::string& text) {
  const auto r = parse_json(text);
  if (!r.ok) return fail(path, r.error);
  std::cout << "ok " << path << " (" << text.size() << " bytes)\n";
  return true;
}

bool check_events(const std::string& path, const std::string& text) {
  // Control records describe a chip (or the fleet), not one request, so
  // they carry no trace id.
  static const std::set<std::string> kControl = {
      "carve",          "bank_failure", "chip_crash",
      "chip_brownout",  "chip_corruption_storm",
      "chip_drain",     "chip_rejoin",  "reshard"};
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  std::uint64_t declared = 0;
  std::uint64_t records = 0;
  bool v2 = false;
  bool streamed = false;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto r = parse_json(line);
    if (!r.ok) {
      return fail(path, "line " + std::to_string(lineno) + ": " + r.error);
    }
    const Json& j = r.value;
    if (!j.is_object()) {
      return fail(path, "line " + std::to_string(lineno) + ": not an object");
    }
    if (lineno == 1) {
      const std::string schema =
          j.contains("schema") ? j.at("schema").as_string() : "";
      if (schema != "serve-events/1" && schema != "serve-events/2") {
        return fail(path, "missing serve-events/1|2 header");
      }
      v2 = schema == "serve-events/2";
      // Streamed logs are written record-by-record as the run progresses
      // (and may be a crash's prefix), so the header cannot declare a
      // count; buffered logs must, and it must match.
      streamed = j.contains("streamed") && j.at("streamed").as_bool();
      if (!streamed) {
        if (!j.contains("records")) {
          return fail(path, "header lacks 'records'");
        }
        declared = j.at("records").as_u64();
      }
      continue;
    }
    ++records;
    if (!j.contains("ev") || !j.contains("cycle")) {
      return fail(path, "line " + std::to_string(lineno) +
                            ": record lacks ev/cycle");
    }
    if (v2 && !j.contains("chip")) {
      return fail(path, "line " + std::to_string(lineno) +
                            ": serve-events/2 record lacks chip");
    }
    const std::string ev = j.at("ev").as_string();
    if (!kControl.contains(ev) &&
        (!j.contains("trace") || !j.contains("tenant"))) {
      return fail(path, "line " + std::to_string(lineno) + ": '" + ev +
                            "' record lacks trace/tenant");
    }
    // Protocol DAG records: per-op identity on protocol_op, join verdict
    // on the request's host-side recombination.
    if (ev == "protocol_op" &&
        (!j.contains("proto") || !j.contains("op") || !j.contains("cls"))) {
      return fail(path, "line " + std::to_string(lineno) +
                            ": protocol_op record lacks proto/op/cls");
    }
    if (ev == "join" && (!j.contains("ok") || !j.contains("ops"))) {
      return fail(path, "line " + std::to_string(lineno) +
                            ": join record lacks ok/ops");
    }
  }
  if (lineno == 0) return fail(path, "empty event log");
  if (!streamed && records != declared) {
    return fail(path, "header declares " + std::to_string(declared) +
                          " records, found " + std::to_string(records));
  }
  std::cout << "ok " << path << " (" << records << " events, serve-events/"
            << (v2 ? "2" : "1") << (streamed ? ", streamed" : "") << ")\n";
  return true;
}

bool check_journal(const std::string& path, const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  std::uint64_t records = 0;
  bool sealed = false;
  // Torn-tail discipline (mirrors runtime/journal.h Journal::load): the
  // line that fails framing is held pending — tolerated if nothing valid
  // follows (a crash tore the final write), fatal otherwise (mid-file
  // corruption).
  std::size_t pending_bad = 0;
  std::string pending_why;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto bad = [&](const std::string& why) {
      pending_bad = lineno;
      pending_why = why;
    };
    if (pending_bad != 0) {
      return fail(path, "line " + std::to_string(pending_bad) + ": " +
                            pending_why + " (followed by more records: "
                            "mid-file corruption, not a torn tail)");
    }
    const auto sp = line.find(' ');
    if (sp != 8) {
      bad("malformed frame (want '<crc32 hex8> <payload>')");
      continue;
    }
    std::uint32_t crc = 0;
    bool hex_ok = true;
    for (std::size_t i = 0; i < 8; ++i) {
      const char c = line[i];
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else { hex_ok = false; break; }
      crc = (crc << 4) | static_cast<std::uint32_t>(digit);
    }
    if (!hex_ok) {
      bad("malformed crc");
      continue;
    }
    const std::string payload = line.substr(9);
    if (cryptopim::obs::crc32(payload) != crc) {
      bad("crc mismatch");
      continue;
    }
    const auto r = parse_json(payload);
    if (!r.ok) {
      bad("payload does not parse: " + r.error);
      continue;
    }
    const Json& j = r.value;
    if (!j.is_object() || !j.contains("t")) {
      bad("payload lacks 't'");
      continue;
    }
    const std::string t = j.at("t").as_string();
    if (lineno == 1) {
      if (t != "hdr" || !j.contains("schema") ||
          j.at("schema").as_string() != "journal/1") {
        return fail(path, "first record is not a journal/1 header");
      }
      for (const char* f : {"mode", "chip", "seed", "config"}) {
        if (!j.contains(f)) {
          return fail(path, std::string("header lacks '") + f + "'");
        }
      }
    } else if (t == "hdr") {
      return fail(path, "line " + std::to_string(lineno) +
                            ": duplicate header");
    } else if (t == "admit") {
      for (const char* f : {"i", "c", "id", "tn", "deg", "ac", "sv", "ds"}) {
        if (!j.contains(f)) {
          return fail(path, "line " + std::to_string(lineno) +
                                ": admit record lacks '" + f + "'");
        }
      }
    } else if (t == "out") {
      for (const char* f : {"i", "c", "id", "o"}) {
        if (!j.contains(f)) {
          return fail(path, "line " + std::to_string(lineno) +
                                ": out record lacks '" + f + "'");
        }
      }
      const std::string o = j.at("o").as_string();
      if (o != "completed" && o != "rejected" && o != "shed" &&
          o != "timed_out" && o != "failed") {
        return fail(path, "line " + std::to_string(lineno) +
                              ": unknown outcome '" + o + "'");
      }
    } else if (t == "snap") {
      for (const char* f : {"i", "file", "crc"}) {
        if (!j.contains(f)) {
          return fail(path, "line " + std::to_string(lineno) +
                                ": snap record lacks '" + f + "'");
        }
      }
    } else if (t == "seal") {
      if (sealed) {
        return fail(path, "line " + std::to_string(lineno) +
                              ": duplicate seal");
      }
      if (!j.contains("i") || !j.contains("c")) {
        return fail(path, "line " + std::to_string(lineno) +
                              ": seal record lacks i/c");
      }
      sealed = true;
    } else {
      return fail(path, "line " + std::to_string(lineno) +
                            ": unknown record type '" + t + "'");
    }
    if (sealed && t != "seal") {
      return fail(path, "line " + std::to_string(lineno) +
                            ": record after the seal");
    }
    ++records;
  }
  if (records == 0) return fail(path, "no valid journal header");
  std::cout << "ok " << path << " (journal/1, " << records << " records"
            << (sealed ? ", sealed" : "")
            << (pending_bad != 0 ? ", torn tail dropped" : "") << ")\n";
  return true;
}

bool check_serving(const std::string& path, const std::string& text) {
  const auto r = parse_json(text);
  if (!r.ok) return fail(path, r.error);
  const Json& doc = r.value;
  // Accept both the bare report and the CLI envelope {"report": {...}}.
  const Json& rep = doc.is_object() && doc.contains("report")
                        ? doc.at("report")
                        : doc;
  if (!rep.is_object() || !rep.contains("schema") ||
      rep.at("schema").as_string() != "serving/2") {
    return fail(path, "not a serving/2 report");
  }
  // Backend provenance: which execution tier produced (and verified)
  // the functional results this report describes.
  if (!rep.contains("backend")) return fail(path, "missing 'backend' field");
  const std::string backend = rep.at("backend").as_string();
  if (backend != "gate" && backend != "word" && backend != "analytic") {
    return fail(path, "unknown backend '" + backend + "'");
  }
  if (!rep.contains("series")) return fail(path, "missing 'series' section");
  const Json& series = rep.at("series");
  if (!series.contains("schema") ||
      series.at("schema").as_string() != "timeseries/1" ||
      !series.contains("windows")) {
    return fail(path, "series is not a timeseries/1 document");
  }
  if (!rep.contains("rolling")) return fail(path, "missing 'rolling' rates");
  if (rep.contains("slo")) {
    const Json& slo = rep.at("slo");
    if (!slo.contains("schema") || slo.at("schema").as_string() != "slo/1" ||
        !slo.contains("summary") || !slo.contains("windows")) {
      return fail(path, "slo is not a slo/1 document");
    }
  }
  // Protocol block (present only for --protocol runs): DAG-granularity
  // request accounting over the op-granularity main counters.
  if (rep.contains("protocol")) {
    const Json& proto = rep.at("protocol");
    if (!proto.is_object()) return fail(path, "protocol is not an object");
    if (!proto.contains("kind")) return fail(path, "protocol lacks 'kind'");
    const std::string kind = proto.at("kind").as_string();
    if (kind != "kem" && kind != "bgv-mul" && kind != "threshold") {
      return fail(path, "unknown protocol kind '" + kind + "'");
    }
    for (const char* f :
         {"ops_per_request", "requests", "completed", "failed", "rejected",
          "ops_completed", "ops_cancelled", "host_ops", "joins",
          "join_mismatches"}) {
      if (!proto.contains(f)) {
        return fail(path, std::string("protocol lacks '") + f + "'");
      }
    }
    if (!proto.contains("latency") || !proto.at("latency").is_object()) {
      return fail(path, "protocol lacks a 'latency' histogram");
    }
    if (!proto.contains("op_classes") ||
        !proto.at("op_classes").is_array()) {
      return fail(path, "protocol lacks an 'op_classes' array");
    }
    for (const Json& row : proto.at("op_classes").items()) {
      if (!row.contains("cls")) {
        return fail(path, "protocol op_classes entry lacks 'cls'");
      }
    }
  }
  std::cout << "ok " << path << " (serving/2, "
            << series.at("windows").size() << " windows)\n";
  return true;
}

bool check_fleet(const std::string& path, const std::string& text) {
  const auto r = parse_json(text);
  if (!r.ok) return fail(path, r.error);
  const Json& doc = r.value;
  // Accept both the bare report and the CLI envelope {"report": {...}}.
  const Json& rep = doc.is_object() && doc.contains("report")
                        ? doc.at("report")
                        : doc;
  if (!rep.is_object() || !rep.contains("schema") ||
      rep.at("schema").as_string() != "fleet/1") {
    return fail(path, "not a fleet/1 report");
  }
  for (const char* field :
       {"fleet", "router", "replicas", "submitted", "completed", "rejected",
        "shed", "timed_out", "failed", "queued", "routed", "cross_retries",
        "hedges_launched", "reshards", "migrated", "redispatched", "chips"}) {
    if (!rep.contains(field)) {
      return fail(path, std::string("missing '") + field + "' field");
    }
  }
  const std::uint64_t chips = rep.at("fleet").as_u64();
  const Json& per_chip = rep.at("chips");
  if (per_chip.size() != chips) {
    return fail(path, "fleet declares " + std::to_string(chips) +
                          " chips, 'chips' array has " +
                          std::to_string(per_chip.size()));
  }
  for (std::size_t i = 0; i < per_chip.size(); ++i) {
    const Json& c = per_chip[i];
    if (!c.is_object() || !c.contains("schema") ||
        c.at("schema").as_string() != "serving/2") {
      return fail(path, "chip " + std::to_string(i) +
                            " is not a serving/2 report");
    }
    if (!c.contains("chip") || c.at("chip").as_u64() != i) {
      return fail(path, "chip " + std::to_string(i) +
                            " report lacks (or misnumbers) its chip id");
    }
    if (!c.contains("backend")) {
      return fail(path, "chip " + std::to_string(i) + " lacks backend");
    }
  }
  // Final-fate conservation: every submitted request is counted exactly
  // once by its terminal category.
  const std::uint64_t fates =
      rep.at("completed").as_u64() + rep.at("rejected").as_u64() +
      rep.at("shed").as_u64() + rep.at("timed_out").as_u64() +
      rep.at("failed").as_u64() + rep.at("queued").as_u64();
  if (fates != rep.at("submitted").as_u64()) {
    return fail(path, "fates sum to " + std::to_string(fates) +
                          ", submitted is " +
                          std::to_string(rep.at("submitted").as_u64()));
  }
  std::cout << "ok " << path << " (fleet/1, " << chips << " chips)\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kPlain, kEvents, kServing, kFleet, kJournal } mode =
      Mode::kPlain;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--events") mode = Mode::kEvents;
    else if (a == "--serving") mode = Mode::kServing;
    else if (a == "--fleet") mode = Mode::kFleet;
    else if (a == "--journal") mode = Mode::kJournal;
    else files.push_back(a);
  }
  if (files.empty()) {
    std::cerr << "usage: json_check [--events|--serving|--fleet|--journal] "
                 "<file> [<file> ...]\n";
    return 2;
  }
  int failures = 0;
  for (const auto& path : files) {
    std::ifstream is(path);
    if (!is) {
      std::cerr << "json_check: cannot read " << path << "\n";
      ++failures;
      continue;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();
    bool ok = false;
    switch (mode) {
      case Mode::kPlain: ok = check_plain(path, text); break;
      case Mode::kEvents: ok = check_events(path, text); break;
      case Mode::kServing: ok = check_serving(path, text); break;
      case Mode::kFleet: ok = check_fleet(path, text); break;
      case Mode::kJournal: ok = check_journal(path, text); break;
    }
    if (!ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}
