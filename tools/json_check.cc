// json_check — validates observability output files.
//
// Default mode: each argument file must parse as one JSON document.
// Used by tools/run_benches.sh (and the bench_smoke ctest) to assert
// that every bench emitted a well-formed bench_<name>.json, and by the
// CLI smoke tests on --trace output.
//
// --events: arguments are serve-events JSONL logs. Every line must
// parse; the first must be a {"schema":"serve-events/1"} header whose
// "records" count matches the body; every record needs "ev" + "cycle",
// request-scoped records (everything but carve / bank_failure) also
// need "trace" and "tenant".
//
// --serving: arguments are `serve --json` reports. The document must
// carry report.schema "serving/2" with a "backend" provenance field
// (gate | word | analytic) and the windowed "series" section (schema
// "timeseries/1"); when an "slo" section is present it must be schema
// "slo/1" with summary + windows.
//
// Exit 0 iff every file validates.
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

using cryptopim::obs::Json;
using cryptopim::obs::parse_json;

namespace {

bool fail(const std::string& path, const std::string& why) {
  std::cerr << "json_check: " << path << ": " << why << "\n";
  return false;
}

bool check_plain(const std::string& path, const std::string& text) {
  const auto r = parse_json(text);
  if (!r.ok) return fail(path, r.error);
  std::cout << "ok " << path << " (" << text.size() << " bytes)\n";
  return true;
}

bool check_events(const std::string& path, const std::string& text) {
  // Control records describe the chip, not one request, so they carry
  // no trace id.
  static const std::set<std::string> kControl = {"carve", "bank_failure"};
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  std::uint64_t declared = 0;
  std::uint64_t records = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto r = parse_json(line);
    if (!r.ok) {
      return fail(path, "line " + std::to_string(lineno) + ": " + r.error);
    }
    const Json& j = r.value;
    if (!j.is_object()) {
      return fail(path, "line " + std::to_string(lineno) + ": not an object");
    }
    if (lineno == 1) {
      if (!j.contains("schema") ||
          j.at("schema").as_string() != "serve-events/1") {
        return fail(path, "missing serve-events/1 header");
      }
      if (!j.contains("records")) return fail(path, "header lacks 'records'");
      declared = j.at("records").as_u64();
      continue;
    }
    ++records;
    if (!j.contains("ev") || !j.contains("cycle")) {
      return fail(path, "line " + std::to_string(lineno) +
                            ": record lacks ev/cycle");
    }
    if (!kControl.contains(j.at("ev").as_string()) &&
        (!j.contains("trace") || !j.contains("tenant"))) {
      return fail(path, "line " + std::to_string(lineno) + ": '" +
                            j.at("ev").as_string() +
                            "' record lacks trace/tenant");
    }
  }
  if (lineno == 0) return fail(path, "empty event log");
  if (records != declared) {
    return fail(path, "header declares " + std::to_string(declared) +
                          " records, found " + std::to_string(records));
  }
  std::cout << "ok " << path << " (" << records << " events)\n";
  return true;
}

bool check_serving(const std::string& path, const std::string& text) {
  const auto r = parse_json(text);
  if (!r.ok) return fail(path, r.error);
  const Json& doc = r.value;
  // Accept both the bare report and the CLI envelope {"report": {...}}.
  const Json& rep = doc.is_object() && doc.contains("report")
                        ? doc.at("report")
                        : doc;
  if (!rep.is_object() || !rep.contains("schema") ||
      rep.at("schema").as_string() != "serving/2") {
    return fail(path, "not a serving/2 report");
  }
  // Backend provenance: which execution tier produced (and verified)
  // the functional results this report describes.
  if (!rep.contains("backend")) return fail(path, "missing 'backend' field");
  const std::string backend = rep.at("backend").as_string();
  if (backend != "gate" && backend != "word" && backend != "analytic") {
    return fail(path, "unknown backend '" + backend + "'");
  }
  if (!rep.contains("series")) return fail(path, "missing 'series' section");
  const Json& series = rep.at("series");
  if (!series.contains("schema") ||
      series.at("schema").as_string() != "timeseries/1" ||
      !series.contains("windows")) {
    return fail(path, "series is not a timeseries/1 document");
  }
  if (!rep.contains("rolling")) return fail(path, "missing 'rolling' rates");
  if (rep.contains("slo")) {
    const Json& slo = rep.at("slo");
    if (!slo.contains("schema") || slo.at("schema").as_string() != "slo/1" ||
        !slo.contains("summary") || !slo.contains("windows")) {
      return fail(path, "slo is not a slo/1 document");
    }
  }
  std::cout << "ok " << path << " (serving/2, "
            << series.at("windows").size() << " windows)\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kPlain, kEvents, kServing } mode = Mode::kPlain;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--events") mode = Mode::kEvents;
    else if (a == "--serving") mode = Mode::kServing;
    else files.push_back(a);
  }
  if (files.empty()) {
    std::cerr << "usage: json_check [--events|--serving] <file> [<file> ...]\n";
    return 2;
  }
  int failures = 0;
  for (const auto& path : files) {
    std::ifstream is(path);
    if (!is) {
      std::cerr << "json_check: cannot read " << path << "\n";
      ++failures;
      continue;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();
    bool ok = false;
    switch (mode) {
      case Mode::kPlain: ok = check_plain(path, text); break;
      case Mode::kEvents: ok = check_events(path, text); break;
      case Mode::kServing: ok = check_serving(path, text); break;
    }
    if (!ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}
