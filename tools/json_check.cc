// json_check — validates that each argument file parses as JSON.
//
// Used by tools/run_benches.sh (and the bench_smoke ctest) to assert that
// every bench emitted a well-formed bench_<name>.json, and by the CLI
// smoke tests on --trace output. Exit 0 iff every file parses.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: json_check <file.json> [<file.json> ...]\n";
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream is(path);
    if (!is) {
      std::cerr << "json_check: cannot read " << path << "\n";
      ++failures;
      continue;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();
    const auto r = cryptopim::obs::parse_json(text);
    if (!r.ok) {
      std::cerr << "json_check: " << path << ": " << r.error << "\n";
      ++failures;
    } else {
      std::cout << "ok " << path << " (" << text.size() << " bytes)\n";
    }
  }
  return failures == 0 ? 0 : 1;
}
