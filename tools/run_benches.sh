#!/usr/bin/env bash
# Runs every bench binary with machine-readable output enabled and
# validates the emitted JSON.
#
#   tools/run_benches.sh              # configure + build + run
#   tools/run_benches.sh --no-build B # run binaries already in build dir B
#                                     # (used by the bench_smoke ctest)
#
# JSON lands in $CRYPTOPIM_BENCH_OUT (default: <repo>/bench/out, which is
# gitignored); the schema is documented in bench/README.md. bench_cpu_ntt
# (google-benchmark) runs with a reduced min-time so the sweep finishes in
# seconds; unset CRYPTOPIM_BENCH_FAST for full-length measurements.
# Strict mode: unset vars are errors, failures propagate through pipes,
# and anything not explicitly tolerated (the per-bench runs below) aborts.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
do_build=1

while [ $# -gt 0 ]; do
  case "$1" in
    --no-build) do_build=0 ;;
    *) build_dir="$1" ;;
  esac
  shift
done

out_dir="${CRYPTOPIM_BENCH_OUT:-$repo_root/bench/out}"
mkdir -p "$out_dir"
export CRYPTOPIM_BENCH_OUT="$out_dir"

if [ "$do_build" = 1 ]; then
  cmake -B "$build_dir" -S "$repo_root" || exit 1
  cmake --build "$build_dir" -j || exit 1
fi

benches="
bench_table1_modulo
bench_fig4_pipeline
bench_fig5_scaling
bench_fig6_pim_baselines
bench_table2_comparison
bench_pim_functional
bench_ablation_switch
bench_device_robustness
bench_controller_microcode
bench_cpu_ntt
bench_ablation_bitwidth
bench_rns_he
bench_ablation_merged
bench_fault_campaign
bench_runtime_service
bench_chaos_serving
bench_backend_throughput
bench_fleet_serving
bench_protocol_serving
bench_recovery
"

failures=0
for b in $benches; do
  bin="$build_dir/bench/$b"
  if [ ! -x "$bin" ]; then
    echo "run_benches: missing binary $bin" >&2
    failures=$((failures + 1))
    continue
  fi
  echo "== $b =="
  # A failing bench is recorded, not fatal (set -e): keep running the
  # rest of the sweep so one regression doesn't hide another.
  rc=0
  if [ "$b" = bench_cpu_ntt ] && [ "${CRYPTOPIM_BENCH_FAST:-1}" = 1 ]; then
    "$bin" --benchmark_min_time=0.01 > /dev/null || rc=$?
  else
    "$bin" > /dev/null || rc=$?
  fi
  if [ $rc -ne 0 ]; then
    echo "run_benches: $b exited with $rc" >&2
    failures=$((failures + 1))
  fi
done

# Every bench must have produced a parseable bench_<name>.json.
json_files=""
for b in $benches; do
  json_files="$json_files $out_dir/bench_${b#bench_}.json"
done
# shellcheck disable=SC2086
if ! "$build_dir/tools/json_check" $json_files; then
  echo "run_benches: JSON validation failed" >&2
  failures=$((failures + 1))
fi

if [ $failures -ne 0 ]; then
  echo "run_benches: $failures failure(s)" >&2
  exit 1
fi

# Run manifest: provenance for the bench JSONs sitting next to it, so a
# directory of results is self-describing (what commit, when, where).
git_desc="$(git -C "$repo_root" describe --always --dirty --tags 2>/dev/null || echo unknown)"
cat > "$out_dir/manifest.json" <<EOF
{"schema":"bench-manifest/1","git":"$git_desc","date":"$(date -u +%Y-%m-%dT%H:%M:%SZ)","host":"$(uname -sm)"}
EOF

echo "run_benches: all benches OK, JSON in $out_dir"
