// bench_compare — the perf-regression gate over bench_<name>.json files.
//
//   bench_compare [--tol T] [--tol NAME=T ...] BASELINE CURRENT
//
// BASELINE and CURRENT are either two bench JSON files or two
// directories. In directory mode every bench_*.json in BASELINE must
// have a same-named counterpart in CURRENT (extra files in CURRENT are
// new benches, reported but not failed; manifest.json is skipped).
//
// Metrics are matched by (name, point params) and compared with a
// symmetric relative tolerance:
//
//   |current - baseline| <= tol * max(|baseline|, |current|)
//
// which handles a zero baseline sanely: 0 -> 0 passes at any tolerance,
// 0 -> anything else fails. The default band is --tol 0.05; per-metric
// overrides (`--tol lane_cycles=0.2`) win over the global band. A
// metric present in the baseline but missing from the current run is a
// failure — silently dropped coverage is a regression too.
//
// Exit: 0 = all within tolerance, 1 = regression / missing data,
// 2 = usage error. CI runs this against bench/baselines/ (see
// bench/README.md; wall-clock benches like bench_cpu_ntt are excluded
// from the committed baselines because they measure the host, not the
// model).
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace fs = std::filesystem;
using cryptopim::obs::Json;

namespace {

int usage() {
  std::cerr << "usage: bench_compare [--tol T] [--tol NAME=T ...] "
               "BASELINE CURRENT\n"
               "       BASELINE/CURRENT: bench JSON files, or directories "
               "of bench_*.json\n";
  return 2;
}

std::optional<Json> load_json(const fs::path& path) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "bench_compare: cannot read " << path.string() << "\n";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  auto r = cryptopim::obs::parse_json(buf.str());
  if (!r.ok) {
    std::cerr << "bench_compare: " << path.string() << ": " << r.error
              << "\n";
    return std::nullopt;
  }
  return std::move(r.value);
}

/// Stable identity of one measured point: metric name + sorted params.
std::string metric_key(const Json& metric) {
  std::string key = metric.at("name").as_string();
  if (metric.contains("params")) {
    std::map<std::string, std::string> sorted;
    for (const auto& [k, v] : metric.at("params").members()) {
      sorted[k] = v.as_string();
    }
    for (const auto& [k, v] : sorted) key += " " + k + "=" + v;
  }
  return key;
}

std::map<std::string, double> metric_map(const Json& doc) {
  std::map<std::string, double> m;
  if (!doc.is_object() || !doc.contains("metrics")) return m;
  for (const auto& metric : doc.at("metrics").items()) {
    m[metric_key(metric)] = metric.at("value").as_number();
  }
  return m;
}

struct Tolerances {
  double global = 0.05;
  std::map<std::string, double> per_metric;  ///< by metric name (no params)

  double for_key(const std::string& key) const {
    // The per-metric override matches on the metric name, which is the
    // key up to the first param separator.
    const auto name = key.substr(0, key.find(' '));
    const auto it = per_metric.find(name);
    return it == per_metric.end() ? global : it->second;
  }
};

bool within(double baseline, double current, double tol) {
  const double diff = std::abs(current - baseline);
  const double scale = std::max(std::abs(baseline), std::abs(current));
  return diff <= tol * scale;
}

/// Compares one bench file pair. Returns the number of failures.
int compare_file(const fs::path& base_path, const fs::path& cur_path,
                 const Tolerances& tol) {
  const auto base = load_json(base_path);
  const auto cur = load_json(cur_path);
  if (!base || !cur) return 1;
  const auto base_metrics = metric_map(*base);
  const auto cur_metrics = metric_map(*cur);

  int failures = 0;
  for (const auto& [key, bval] : base_metrics) {
    const auto it = cur_metrics.find(key);
    if (it == cur_metrics.end()) {
      std::cerr << "FAIL " << base_path.filename().string() << ": '" << key
                << "' missing from current run\n";
      ++failures;
      continue;
    }
    const double t = tol.for_key(key);
    if (!within(bval, it->second, t)) {
      std::cerr << "FAIL " << base_path.filename().string() << ": '" << key
                << "' baseline " << bval << " -> current " << it->second
                << " (tol " << t << ")\n";
      ++failures;
    }
  }
  for (const auto& [key, cval] : cur_metrics) {
    if (!base_metrics.contains(key)) {
      std::cout << "note " << base_path.filename().string() << ": new metric '"
                << key << "' = " << cval << " (no baseline)\n";
    }
  }
  if (failures == 0) {
    std::cout << "ok   " << base_path.filename().string() << " ("
              << base_metrics.size() << " metrics)\n";
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  Tolerances tol;
  std::vector<fs::path> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--tol") {
      if (i + 1 >= argc) return usage();
      const std::string v = argv[++i];
      const auto eq = v.find('=');
      try {
        if (eq == std::string::npos) {
          tol.global = std::stod(v);
        } else {
          tol.per_metric[v.substr(0, eq)] = std::stod(v.substr(eq + 1));
        }
      } catch (const std::exception&) {
        std::cerr << "bench_compare: bad tolerance '" << v << "'\n";
        return usage();
      }
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else {
      paths.emplace_back(a);
    }
  }
  if (paths.size() != 2) return usage();
  const fs::path& base = paths[0];
  const fs::path& cur = paths[1];

  int failures = 0;
  if (fs::is_directory(base)) {
    if (!fs::is_directory(cur)) {
      std::cerr << "bench_compare: " << base.string()
                << " is a directory but " << cur.string() << " is not\n";
      return 2;
    }
    // Sorted for deterministic report order.
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(base)) {
      const auto name = entry.path().filename().string();
      if (!entry.is_regular_file()) continue;
      if (name == "manifest.json") continue;
      if (!name.ends_with(".json")) continue;
      files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      std::cerr << "bench_compare: no bench JSON in " << base.string()
                << "\n";
      return 1;
    }
    for (const auto& f : files) {
      const fs::path counterpart = cur / f.filename();
      if (!fs::exists(counterpart)) {
        std::cerr << "FAIL " << f.filename().string()
                  << ": missing from current directory\n";
        ++failures;
        continue;
      }
      failures += compare_file(f, counterpart, tol);
    }
  } else {
    failures += compare_file(base, cur, tol);
  }

  if (failures != 0) {
    std::cerr << "bench_compare: " << failures << " failure(s)\n";
    return 1;
  }
  std::cout << "bench_compare: all metrics within tolerance\n";
  return 0;
}
