// Ablation of the datapath bit-width split (Section III-B / IV-B): the
// paper runs n <= 1024 on a 16-bit datapath and larger degrees on 32-bit.
// Because multiplication latency grows quadratically in N while everything
// else is ~linear, a uniform 32-bit datapath would waste most of the
// public-key regime's throughput — this bench quantifies that.
#include <iostream>

#include "arch/pipeline.h"
#include "common/table.h"
#include "model/latency.h"
#include "model/performance.h"
#include "ntt/params.h"
#include "obs/bench_report.h"
#include "pim/circuits/arith.h"

namespace cp = cryptopim;

namespace {

// Latency set with the datapath forced to `bits` (same q / Table I
// reductions; mult/add/sub/transfer rescaled).
cp::model::LatencySet forced_width(std::uint32_t n, unsigned bits) {
  auto l = cp::model::paper_latency(n);
  l.bitwidth = bits;
  l.add = cp::pim::circuits::add_cycles(bits);
  l.sub = cp::pim::circuits::sub_cycles(bits);
  l.mult = cp::pim::circuits::mult_cycles(bits);
  l.transfer = 3ull * bits;
  return l;
}

}  // namespace

int main() {
  std::cout << "== Ablation: datapath bit-width ==\n"
            << "(stage latency = sub + mult + transfer; throughput =\n"
            << "1 / stage period; reductions held at Table I values)\n\n";

  cp::Table t({"n", "q", "paper width", "thr @16-bit (/s)", "thr @32-bit (/s)",
               "16-bit speedup", "mult share of stage"});
  const auto em = cp::model::EnergyModel::calibrated();
  const auto dev = cp::pim::DeviceModel::paper_45nm();
  cp::obs::BenchReporter rep("ablation_bitwidth");
  for (const std::uint32_t n : cp::ntt::paper_degrees()) {
    const auto spec =
        cp::arch::PipelineSpec::build(n, cp::arch::PipelineVariant::kCryptoPim);
    const auto p16 = cp::model::evaluate_pipelined(spec, forced_width(n, 16),
                                                   em, dev);
    const auto p32 = cp::model::evaluate_pipelined(spec, forced_width(n, 32),
                                                   em, dev);
    const auto l = cp::model::paper_latency(n);
    const double mult_share =
        static_cast<double>(l.mult) / (l.sub + l.mult + l.transfer);
    const bool can16 = cp::bit_length(l.q) <= 16;
    const cp::obs::BenchReporter::Params nn = {{"n", std::to_string(n)}};
    if (can16) {
      rep.add("throughput_16bit", p16.throughput_per_s, "1/s", nn);
    }
    rep.add("throughput_32bit", p32.throughput_per_s, "1/s", nn);
    rep.add("mult_share_of_stage", mult_share, "frac", nn);
    t.add_row({std::to_string(n), std::to_string(l.q),
               std::to_string(l.bitwidth),
               can16 ? cp::fmt_i(static_cast<std::uint64_t>(
                           p16.throughput_per_s))
                     : std::string("- (q needs >16 bits)"),
               cp::fmt_i(static_cast<std::uint64_t>(p32.throughput_per_s)),
               can16 ? cp::fmt_x(p16.throughput_per_s / p32.throughput_per_s)
                     : std::string("-"),
               cp::fmt_f(mult_share * 100, 1) + "%"});
  }
  t.print(std::cout);

  std::cout << "\nA uniform 32-bit datapath would cut public-key (n<=1024)\n"
               "throughput by ~4x: multiplication is "
            << cp::fmt_f(
                   static_cast<double>(cp::pim::circuits::mult_cycles(32)) /
                       cp::pim::circuits::mult_cycles(16),
                   2)
            << "x slower at 32-bit and dominates the slowest stage.\n"
               "Conversely, the HE moduli (q = 786433, 20 bits) cannot fit\n"
               "a 16-bit datapath: lazy butterfly values reach 2q and the\n"
               "Montgomery products 2q^2 — hence the paper's 16/32 split.\n";
  rep.write_default();
  return 0;
}
