// Durability cost + recovery fidelity bench (ISSUE 10).
//
// Three cells run the same chaos-serving workload — plain, journaled,
// and journaled with periodic snapshots — and report the *simulated*
// serving metrics plus the durability footprint (journal records/bytes,
// snapshots written). The simulated metrics are byte-identical across
// the three cells by construction: journaling observes the event clock,
// it never perturbs it. The wall-clock cost of the always-flushed
// journal is measured too, but printed to stdout only — committed
// baselines carry deterministic model numbers, never host timings
// (bench/README.md).
//
// A fourth cell measures recovery itself: the journaled run's log is
// truncated to half its records (a synthetic mid-run crash), a recover
// run replays it, and the bench reports how many records were
// replay-matched vs freshly appended and whether the recovered end
// state is identical to the uninterrupted run's.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/cryptopim.h"
#include "obs/bench_report.h"

namespace cp = cryptopim;
namespace fs = std::filesystem;

namespace {

cp::runtime::ServingConfig make_config() {
  cp::runtime::ServingConfig cfg;
  cfg.workload.mix = {{1024, 0.6}, {4096, 0.4}};
  cfg.workload.tenants = 4;
  cfg.workload.seed = 2026;
  cfg.arrival_rate_per_s = 60000;
  cfg.duration_us = 20000;
  cfg.resilience = cp::runtime::ResilienceConfig::chaos_preset(7);
  return cfg;
}

struct CellResult {
  cp::runtime::ServingReport report;
  double wall_ms = 0;
  std::uint64_t journal_records = 0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t snapshots = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

CellResult run_cell(const cp::runtime::DurabilityOptions& durab) {
  CellResult out;
  if (durab.enabled()) {
    std::error_code ec;
    fs::remove_all(durab.dir, ec);
  }
  cp::runtime::ServingRuntime rt(make_config());
  if (durab.enabled()) rt.enable_durability(durab);
  const auto t0 = std::chrono::steady_clock::now();
  out.report = rt.run();
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (durab.enabled()) {
    const std::string text = slurp(durab.dir + "/journal.log");
    out.journal_bytes = text.size();
    for (char c : text)
      if (c == '\n') ++out.journal_records;
    std::error_code ec;
    for (const auto& ent : fs::directory_iterator(durab.dir, ec)) {
      const std::string name = ent.path().filename().string();
      if (name.rfind("snap-", 0) == 0) ++out.snapshots;
    }
  }
  return out;
}

// Keeps the first `keep` complete records of the journal (a synthetic
// crash: the dropped suffix is what a SIGKILL would have prevented from
// ever being written).
std::uint64_t truncate_journal(const std::string& path, std::uint64_t keep) {
  const std::string text = slurp(path);
  std::uint64_t lines = 0;
  std::size_t cut = text.size();
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\n') continue;
    if (++lines == keep) {
      cut = i + 1;
      break;
    }
  }
  fs::resize_file(path, cut);
  return lines;
}

bool reports_match(const cp::runtime::ServingReport& a, const cp::runtime::ServingReport& b) {
  return a.submitted == b.submitted && a.completed == b.completed &&
         a.rejected == b.rejected && a.throughput_per_s == b.throughput_per_s &&
         a.latency_us(0.99) == b.latency_us(0.99);
}

}  // namespace

int main() {
  std::cout << "== Durable serving: journaling cost + recovery fidelity ==\n"
            << "(chaos workload; simulated metrics are identical across\n"
            << "cells — the journal observes the event clock, it never\n"
            << "perturbs it. Wall-clock overhead printed, not committed.)\n\n";

  const std::string scratch =
      (fs::temp_directory_path() / "cryptopim_bench_recovery").string();

  cp::runtime::DurabilityOptions none;
  cp::runtime::DurabilityOptions journal;
  journal.dir = scratch + "/journal";
  cp::runtime::DurabilityOptions snaps = journal;
  snaps.dir = scratch + "/snaps";
  snaps.snapshot_every = 256;

  const CellResult plain = run_cell(none);
  const CellResult logged = run_cell(journal);
  const CellResult snapped = run_cell(snaps);

  cp::obs::BenchReporter rep("recovery");
  rep.set_param("seed", "2026");
  rep.set_param("chaos_seed", "7");
  rep.set_param("snapshot_every", "256");

  cp::Table t({"cell", "throughput/s", "completed", "records", "bytes",
               "snaps", "wall ms"});
  const std::vector<std::pair<std::string, const CellResult*>> cells = {
      {"plain", &plain}, {"journal", &logged}, {"journal+snap", &snapped}};
  for (const auto& [name, c] : cells) {
    const cp::obs::BenchReporter::Params p = {{"cell", name}};
    rep.add("throughput", c->report.throughput_per_s, "req/s", p);
    rep.add("completed", static_cast<double>(c->report.completed), "requests",
            p);
    rep.add("journal_records", static_cast<double>(c->journal_records),
            "records", p);
    rep.add("journal_bytes", static_cast<double>(c->journal_bytes), "bytes",
            p);
    rep.add("snapshots", static_cast<double>(c->snapshots), "files", p);
    t.add_row({name,
               cp::fmt_i(static_cast<std::uint64_t>(c->report.throughput_per_s)),
               cp::fmt_i(c->report.completed), cp::fmt_i(c->journal_records),
               cp::fmt_i(c->journal_bytes), cp::fmt_i(c->snapshots),
               cp::fmt_f(c->wall_ms, 1)});
  }
  t.print(std::cout);

  const bool simulated_identical =
      reports_match(plain.report, logged.report) &&
      reports_match(plain.report, snapped.report);
  rep.add("simulated_identical", simulated_identical ? 1.0 : 0.0, "bool", {});

  // -- recovery cell: truncate the journaled run's log, replay it ------------
  const std::uint64_t kept =
      truncate_journal(journal.dir + "/journal.log", logged.journal_records / 2);
  cp::runtime::DurabilityOptions recover = journal;
  recover.recover = true;
  const auto t0 = std::chrono::steady_clock::now();
  cp::runtime::ServingRuntime rt(make_config());
  rt.enable_durability(recover);
  const cp::runtime::ServingReport recovered = rt.run();
  const auto t1 = std::chrono::steady_clock::now();
  const bool identical = reports_match(recovered, logged.report);

  const cp::obs::BenchReporter::Params rp = {{"cell", "recover"}};
  rep.add("replay_matched", static_cast<double>(kept), "records", rp);
  rep.add("replay_appended",
          static_cast<double>(logged.journal_records - kept), "records", rp);
  rep.add("recovered_identical", identical ? 1.0 : 0.0, "bool", rp);

  std::cout << "\nrecover: replayed " << kept << " records, re-appended "
            << logged.journal_records - kept << ", end state "
            << (identical ? "identical" : "DIVERGED") << " ("
            << cp::fmt_f(
                   std::chrono::duration<double, std::milli>(t1 - t0).count(),
                   1)
            << " ms)\n";
  // The acceptance band (<=10% on serving throughput) is on the
  // *reported* throughput: every serving metric is simulated, and the
  // journal observes the event clock without perturbing it, so the
  // delta is exactly zero — checked above via simulated_identical. The
  // host-side cost of the flush-per-record durability model is a
  // per-commitment wall-clock tax, reported here for visibility.
  const double tput_delta =
      plain.report.throughput_per_s > 0
          ? (logged.report.throughput_per_s - plain.report.throughput_per_s) /
                plain.report.throughput_per_s
          : 0.0;
  const double us_per_record =
      logged.journal_records > 0
          ? 1000.0 * (logged.wall_ms - plain.wall_ms) / logged.journal_records
          : 0.0;
  std::cout << "journal overhead: " << cp::fmt_f(100.0 * tput_delta, 1)
            << "% on serving throughput (acceptance band <=10%), "
            << cp::fmt_f(us_per_record, 2)
            << " us/record host-side flush cost\n";

  std::error_code ec;
  fs::remove_all(scratch, ec);
  rep.write_default();
  return (simulated_identical && identical) ? 0 : 1;
}
