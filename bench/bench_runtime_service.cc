// Serving-runtime sweep: arrival rate x scheduling policy for the
// paper's main degree classes. Each cell runs the discrete-event
// multi-tenant runtime (src/runtime/serving.*) against an open-loop
// Poisson stream and reports delivered throughput, p50/p99 latency,
// chip utilization and repartition count — the latency/throughput
// curves an operator would use to pick an operating point and a policy.
//
// Arrival rates are expressed relative to each degree's bank-limited
// capacity (superbank lanes / pipeline beat from model::Performance), so
// one sweep spans under-load (0.25x), the knee (1x) and overload (2x)
// for every degree. Everything is seeded; bench_runtime_service.json is
// bit-reproducible run to run.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/cryptopim.h"
#include "obs/bench_report.h"

namespace cp = cryptopim;

namespace {

double class_capacity_per_s(const cp::runtime::ServingConfig& cfg,
                            std::uint32_t degree) {
  return cp::model::class_capacity_per_s(cfg.chip, degree, /*failed_banks=*/0,
                                         cfg.cycle_ns);
}

}  // namespace

int main() {
  std::cout << "== Serving runtime: arrival rate x policy sweep ==\n"
            << "(open-loop Poisson, 4 tenants, load relative to each\n"
            << "degree's bank-limited capacity; ~2000 served per cell)\n\n";

  const std::vector<std::uint32_t> degrees = {256, 1024, 4096};
  const std::vector<double> load_factors = {0.25, 0.5, 1.0, 2.0};
  constexpr std::uint64_t kSeed = 2026;
  constexpr double kServedPerCell = 2000;
  // Horizon must dwarf the pipeline fill (up to ~69us at n=256) or the
  // trailing drain dominates the throughput figure.
  constexpr double kMinFillMultiples = 8;

  cp::obs::BenchReporter rep("runtime_service");
  rep.set_param("tenants", "4");
  rep.set_param("seed", std::to_string(kSeed));
  rep.set_param("queue_capacity", "1024");
  rep.set_param("served_per_cell", "2000");

  cp::Table t({"n", "policy", "load", "offered/s", "throughput/s", "p50 us",
               "p99 us", "util", "repart", "rejected"});
  for (const std::uint32_t n : degrees) {
    for (const std::string& policy : cp::runtime::policy_names()) {
      for (const double load : load_factors) {
        cp::runtime::ServingConfig cfg;
        cfg.policy = policy;
        cfg.workload.mix = {{n, 1.0}};
        cfg.workload.tenants = 4;
        cfg.workload.seed = kSeed;
        const double capacity = class_capacity_per_s(cfg, n);
        const double fill_us = cp::model::cryptopim_pipelined(n).latency_us;
        cfg.arrival_rate_per_s = load * capacity;
        cfg.duration_us = std::max(kServedPerCell * 1e6 / capacity,
                                   kMinFillMultiples * fill_us);
        if (policy == "edf") cfg.deadline_slack = 4.0;
        const auto r = cp::runtime::ServingRuntime(cfg).run();

        const cp::obs::BenchReporter::Params p = {
            {"n", std::to_string(n)},
            {"policy", policy},
            {"load_factor", cp::fmt_f(load, 2)}};
        rep.add("offered", r.offered_per_s, "req/s", p);
        rep.add("throughput", r.throughput_per_s, "req/s", p);
        rep.add("latency_p50", r.latency_us(0.50), "us", p);
        rep.add("latency_p99", r.latency_us(0.99), "us", p);
        rep.add("utilization", r.utilization, "ratio", p);
        rep.add("repartitions", static_cast<double>(r.repartitions),
                "events", p);
        rep.add("rejected", static_cast<double>(r.rejected), "requests", p);
        rep.add("deadline_misses", static_cast<double>(r.deadline_misses),
                "requests", p);

        t.add_row({std::to_string(n), policy, cp::fmt_f(load, 2),
                   cp::fmt_i(static_cast<std::uint64_t>(r.offered_per_s)),
                   cp::fmt_i(static_cast<std::uint64_t>(r.throughput_per_s)),
                   cp::fmt_f(r.latency_us(0.50), 1),
                   cp::fmt_f(r.latency_us(0.99), 1),
                   cp::fmt_f(r.utilization, 3), cp::fmt_i(r.repartitions),
                   cp::fmt_i(r.rejected)});
      }
    }
  }
  t.print(std::cout);

  std::cout << "\nOverload (2x) pins throughput at the bank-limited bound\n"
               "while p99 latency runs away; the policies separate in *who*\n"
               "waits: sjf favours short service, edf the tightest deadline,\n"
               "wfq the tenant behind on its weighted bank-time share.\n";
  rep.write_default();
  return 0;
}
