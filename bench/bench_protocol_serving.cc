// Protocol-serving bench: DAG-shaped requests (KEM round-trip, BGV
// multiply with per-RNS-limb fan-out, K-party threshold decryption)
// driven through the dependency-aware serving runtime
// (src/runtime/protocol.*, serving.cc).
//
// Two sections, all on the word backend:
//
//   matrix - {kem, bgv-mul, threshold} x {fifo, wfq}: protocol-level
//            p50/p99 latency and completed-protocol throughput, with
//            every Nth request functionally joined against the
//            pure-host reference.
//   chaos  - kem under seeded lane chaos with the retry stack, run
//            twice from the same seed to pin determinism.
//
// Acceptance bar (exit non-zero on regression):
//   1. every cell completes protocols and drains conserved
//      (requests == completed + failed + rejected),
//   2. zero join mismatches and zero corrupt results accepted anywhere,
//   3. the two same-seed chaos runs emit byte-identical serving/2 JSON.
//
// Everything is seeded; bench_protocol_serving.json is bit-reproducible.
// CRYPTOPIM_BENCH_FAST=0 lengthens the horizon for steadier quantiles.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/cryptopim.h"
#include "obs/bench_report.h"
#include "runtime/protocol.h"
#include "runtime/serving.h"

namespace cp = cryptopim;

namespace {

bool fast_mode() {
  const char* v = std::getenv("CRYPTOPIM_BENCH_FAST");
  return v == nullptr || std::string(v) != "0";
}

cp::runtime::ServingConfig proto_config(cp::runtime::ProtocolKind kind,
                                        const std::string& policy,
                                        std::uint64_t seed,
                                        double duration_us) {
  cp::runtime::ServingConfig cfg;
  cfg.policy = policy;
  cfg.protocol.kind = kind;
  cfg.protocol.shares = 4;
  cfg.workload.mix = {{kind == cp::runtime::ProtocolKind::kKem
                           ? cp::runtime::kKemDegree
                           : cp::runtime::kBgvDegree,
                       1.0}};
  cfg.workload.tenants = 4;
  cfg.workload.seed = seed;
  cfg.workload.verify_every = 16;
  cfg.arrival_rate_per_s = 30000.0;
  cfg.duration_us = duration_us;
  return cfg;
}

std::string json_text(const cp::runtime::ServingReport& r) {
  std::ostringstream os;
  r.to_json().write(os);
  return os.str();
}

}  // namespace

int main() {
  const bool fast = fast_mode();
  const double horizon_us = fast ? 1500.0 : 8000.0;
  constexpr std::uint64_t kSeed = 2026;

  std::cout << "== Protocol serving: DAG-shaped KEM/BGV/threshold requests "
               "==\n(word backend, " << horizon_us
            << " us horizon, every 16th request functionally joined)\n\n";

  cp::obs::BenchReporter rep("protocol_serving");
  rep.set_param("seed", std::to_string(kSeed));
  rep.set_param("duration_us", cp::fmt_f(horizon_us, 0));
  rep.set_param("arrival_rate_per_s", "30000");
  rep.set_param("verify_every", "16");
  rep.set_param("shares", "4");

  bool ok = true;
  std::vector<std::string> violations;

  const auto check_cell = [&](const std::string& cell,
                              const cp::runtime::ServingReport& r) {
    const auto& p = r.protocol;
    if (p.requests != p.completed + p.failed + p.rejected) {
      ok = false;
      violations.push_back(cell + ": proto ledger not conserved (" +
                           cp::fmt_i(p.requests) + " != " +
                           cp::fmt_i(p.completed) + "+" + cp::fmt_i(p.failed) +
                           "+" + cp::fmt_i(p.rejected) + ")");
    }
    if (p.completed == 0) {
      ok = false;
      violations.push_back(cell + ": no protocols completed");
    }
    if (p.join_mismatches != 0) {
      ok = false;
      violations.push_back(cell + ": " + cp::fmt_i(p.join_mismatches) +
                           " join mismatch(es) vs the host reference");
    }
    if (r.resilience.wrong_accepted != 0) {
      ok = false;
      violations.push_back(cell + ": " +
                           cp::fmt_i(r.resilience.wrong_accepted) +
                           " corrupt result(s) accepted");
    }
  };

  // ---- matrix: protocol x policy -----------------------------------------
  const std::vector<std::pair<cp::runtime::ProtocolKind, std::string>> kinds =
      {{cp::runtime::ProtocolKind::kKem, "kem"},
       {cp::runtime::ProtocolKind::kBgvMul, "bgv-mul"},
       {cp::runtime::ProtocolKind::kThreshold, "threshold"}};
  cp::Table t({"protocol", "policy", "protos", "completed", "proto/s",
               "p50 us", "p99 us", "joins", "mismatch"});
  for (const auto& [kind, name] : kinds) {
    for (const std::string policy : {"fifo", "wfq"}) {
      const auto r = cp::runtime::ServingRuntime(
                         proto_config(kind, policy, kSeed, horizon_us))
                         .run();
      const auto& p = r.protocol;
      const double horizon_s = static_cast<double>(r.duration_cycles) /
                               r.cycles_per_us / 1e6;
      const double proto_per_s =
          horizon_s > 0 ? static_cast<double>(p.completed) / horizon_s : 0.0;
      const double p50_us = p.latency_cycles.quantile(0.5) / r.cycles_per_us;
      const double p99_us = p.latency_cycles.quantile(0.99) / r.cycles_per_us;
      check_cell(name + "/" + policy, r);
      t.add_row({name, policy, cp::fmt_i(p.requests), cp::fmt_i(p.completed),
                 cp::fmt_i(static_cast<std::uint64_t>(proto_per_s)),
                 cp::fmt_f(p50_us, 1), cp::fmt_f(p99_us, 1),
                 cp::fmt_i(p.joins), cp::fmt_i(p.join_mismatches)});
      const cp::obs::BenchReporter::Params bp = {{"protocol", name},
                                                 {"policy", policy}};
      rep.add("proto_throughput", proto_per_s, "proto/s", bp);
      rep.add("proto_latency_p50", p50_us, "us", bp);
      rep.add("proto_latency_p99", p99_us, "us", bp);
      rep.add("protos_completed", static_cast<double>(p.completed),
              "protocols", bp);
      rep.add("ops_completed", static_cast<double>(p.ops_completed), "ops",
              bp);
      rep.add("join_mismatches", static_cast<double>(p.join_mismatches),
              "results", bp);
    }
  }
  t.print(std::cout);

  // ---- chaos: lane fault episodes against whole-DAG teardown -------------
  std::cout << "\nchaos: kem under seeded lane chaos (slowdowns + corrupting\n"
               "windows) with retries, run twice from the same seed:\n";
  auto chaos_cfg = proto_config(cp::runtime::ProtocolKind::kKem, "wfq", kSeed,
                                horizon_us);
  chaos_cfg.resilience = cp::runtime::ResilienceConfig::chaos_preset(kSeed);
  chaos_cfg.resilience.max_retries = 2;
  const auto ca = cp::runtime::ServingRuntime(chaos_cfg).run();
  const auto cb = cp::runtime::ServingRuntime(chaos_cfg).run();
  check_cell("kem/chaos", ca);
  if (json_text(ca) != json_text(cb)) {
    ok = false;
    violations.push_back("same-seed chaos runs emitted different JSON");
  }

  const auto& cs = ca.protocol;
  cp::Table ct({"protos", "completed", "failed", "ops cancelled", "retried",
                "joins", "mismatch", "wrong"});
  ct.add_row({cp::fmt_i(cs.requests), cp::fmt_i(cs.completed),
              cp::fmt_i(cs.failed), cp::fmt_i(cs.ops_cancelled),
              cp::fmt_i(ca.retried), cp::fmt_i(cs.joins),
              cp::fmt_i(cs.join_mismatches),
              cp::fmt_i(ca.resilience.wrong_accepted)});
  ct.print(std::cout);

  const cp::obs::BenchReporter::Params cp_ = {{"cell", "chaos"}};
  rep.add("chaos_protos_completed", static_cast<double>(cs.completed),
          "protocols", cp_);
  rep.add("chaos_protos_failed", static_cast<double>(cs.failed), "protocols",
          cp_);
  rep.add("chaos_ops_cancelled", static_cast<double>(cs.ops_cancelled), "ops",
          cp_);
  rep.add("chaos_join_mismatches", static_cast<double>(cs.join_mismatches),
          "results", cp_);
  rep.add("chaos_wrong_accepted",
          static_cast<double>(ca.resilience.wrong_accepted), "results", cp_);

  if (!ok) {
    std::cout << "\nACCEPTANCE VIOLATIONS:\n";
    for (const auto& v : violations) std::cout << "  - " << v << "\n";
  }
  rep.write_default();
  return ok ? 0 : 1;
}
