// Regenerates Fig. 6: non-pipelined latency of CryptoPIM against the
// three PIM baselines, isolating each optimization:
//   BP-1 -> BP-2 : the CryptoPIM multiplier  (paper: 1.9x)
//   BP-2 -> BP-3 : shift-add reductions      (paper: 5.5x)
//   BP-3 -> CP   : width-trimmed reductions  (paper: 1.2x)
//   BP-1 -> CP   : total                     (paper: 12.7x)
#include <iostream>

#include "baselines/pim_baselines.h"
#include "common/table.h"
#include "model/paper_constants.h"
#include "ntt/params.h"
#include "obs/bench_report.h"

namespace cp = cryptopim;
using cp::baselines::PimBaseline;

int main() {
  std::cout << "== Fig. 6: CryptoPIM vs PIM baselines (non-pipelined) ==\n\n";

  cp::Table t({"n", "BP-1 (us)", "BP-2 (us)", "BP-3 (us)", "CryptoPIM (us)",
               "BP1/BP2", "BP2/BP3", "BP3/CP", "BP1/CP"});
  double r12 = 0, r23 = 0, r3c = 0, r1c = 0;
  const auto& degrees = cp::ntt::paper_degrees();
  cp::obs::BenchReporter rep("fig6_pim_baselines");
  for (const std::uint32_t n : degrees) {
    const double bp1 =
        cp::baselines::evaluate_baseline(PimBaseline::kBp1, n).latency_us;
    const double bp2 =
        cp::baselines::evaluate_baseline(PimBaseline::kBp2, n).latency_us;
    const double bp3 =
        cp::baselines::evaluate_baseline(PimBaseline::kBp3, n).latency_us;
    const double cpim =
        cp::baselines::evaluate_baseline(PimBaseline::kCryptoPim, n)
            .latency_us;
    t.add_row({std::to_string(n), cp::fmt_f(bp1), cp::fmt_f(bp2),
               cp::fmt_f(bp3), cp::fmt_f(cpim), cp::fmt_x(bp1 / bp2),
               cp::fmt_x(bp2 / bp3), cp::fmt_x(bp3 / cpim),
               cp::fmt_x(bp1 / cpim)});
    const cp::obs::BenchReporter::Params nn = {{"n", std::to_string(n)}};
    rep.add("bp1_latency", bp1, "us", nn);
    rep.add("bp2_latency", bp2, "us", nn);
    rep.add("bp3_latency", bp3, "us", nn);
    rep.add("cryptopim_latency", cpim, "us", nn);
    r12 += bp1 / bp2;
    r23 += bp2 / bp3;
    r3c += bp3 / cpim;
    r1c += bp1 / cpim;
  }
  t.print(std::cout);

  const double k = static_cast<double>(degrees.size());
  cp::Table c({"speedup step", "paper (avg)", "this model (avg)"});
  c.add_row({"BP-2 over BP-1 (CryptoPIM multiplier)",
             cp::fmt_x(cp::model::paper::kBp1OverBp2), cp::fmt_x(r12 / k)});
  c.add_row({"BP-3 over BP-2 (shift-add reductions)",
             cp::fmt_x(cp::model::paper::kBp2OverBp3), cp::fmt_x(r23 / k)});
  c.add_row({"CryptoPIM over BP-3 (trimmed reductions)",
             cp::fmt_x(cp::model::paper::kBp3OverCryptoPim),
             cp::fmt_x(r3c / k)});
  c.add_row({"CryptoPIM over BP-1 (total)",
             cp::fmt_x(cp::model::paper::kBp1OverCryptoPim),
             cp::fmt_x(r1c / k)});
  std::cout << '\n';
  c.print(std::cout);

  std::cout << "\nOrdering and dominance match the paper: the largest step\n"
               "is removing multiplication-based reductions (BP-2 -> BP-3);\n"
               "the optimized multiplier halves BP-1; trimmed reductions add\n"
               "a final ~1.2x.\n";
  rep.add("bp1_over_bp2_avg", r12 / k, "x");
  rep.add("bp2_over_bp3_avg", r23 / k, "x");
  rep.add("bp3_over_cryptopim_avg", r3c / k, "x");
  rep.add("bp1_over_cryptopim_avg", r1c / k, "x");
  rep.write_default();
  return 0;
}
