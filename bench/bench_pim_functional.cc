// Cross-validation of the analytic model against the functional
// simulation: run a complete polynomial multiplication through simulated
// crossbars for every degree, verify bit-exactness against the software
// NTT, and compare measured wall cycles / energy with the non-pipelined
// model (Section IV-A: "we use an in-house cycle-accurate C++ simulator").
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "model/performance.h"
#include "ntt/ntt.h"
#include "ntt/params.h"
#include "ntt/poly.h"
#include "obs/bench_report.h"
#include "sim/simulator.h"

namespace cp = cryptopim;

int main() {
  std::cout << "== Functional crossbar simulation vs analytic model ==\n"
            << "(non-pipelined critical path; functional circuits use the\n"
            << "width-trimmed micro-code, the model uses paper formulas)\n\n";

  cp::obs::BenchReporter brep("pim_functional");
  cp::Table t({"n", "banks", "stages", "bit-exact", "sim cycles",
               "sim lat (us)", "model NP (us)", "sim/model", "sim en (uJ)",
               "model en (uJ)"});
  for (const std::uint32_t n : cp::ntt::paper_degrees()) {
    const auto p = cp::ntt::NttParams::for_degree(n);
    cp::sim::CryptoPimSimulator simu(p);
    const cp::ntt::GsNttEngine eng(p);
    cp::Xoshiro256 rng(n + 2026);
    const auto a = cp::ntt::sample_uniform(n, p.q, rng);
    const auto b = cp::ntt::sample_uniform(n, p.q, rng);

    const auto c = simu.multiply(a, b);
    const bool exact = c == eng.negacyclic_multiply(a, b);
    const auto& rep = simu.report();
    const auto np = cp::model::cryptopim_non_pipelined(n);

    t.add_row({std::to_string(n), std::to_string(std::max(1u, n / 512)),
               std::to_string(rep.stages), exact ? "yes" : "NO",
               cp::fmt_i(rep.wall_cycles), cp::fmt_f(rep.latency_us),
               cp::fmt_f(np.latency_us),
               cp::fmt_x(rep.latency_us / np.latency_us, 2),
               cp::fmt_f(rep.energy_uj), cp::fmt_f(np.energy_uj)});
    const cp::obs::BenchReporter::Params nn = {{"n", std::to_string(n)}};
    brep.add("sim_wall_cycles", static_cast<double>(rep.wall_cycles),
             "cycles", nn);
    brep.add("sim_latency", rep.latency_us, "us", nn);
    brep.add("model_np_latency", np.latency_us, "us", nn);
    brep.add("sim_energy", rep.energy_uj, "uJ", nn);
    brep.add("bit_exact", exact ? 1.0 : 0.0, "bool", nn);
    if (!exact) {
      std::cerr << "FUNCTIONAL MISMATCH at n=" << n << "\n";
      return 1;
    }
  }
  t.print(std::cout);
  std::cout << "\nEvery product is bit-exact against the software NTT\n"
               "(which is itself verified against a schoolbook oracle).\n"
               "sim/model < 1 reflects the width-trimmed circuits and the\n"
               "narrower q-width datapath of the functional simulation.\n";
  brep.write_default();
  return 0;
}
