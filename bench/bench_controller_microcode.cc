// Controller microcode report (Section IV-A: the CryptoPIM controller was
// implemented in System Verilog and synthesized with Design Compiler; we
// cannot run synthesis here, so this bench reports the quantities such a
// controller is sized by: per-stage instruction counts, microcode ROM
// bits, and the broadcast factor across banks).
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "ntt/params.h"
#include "ntt/poly.h"
#include "obs/bench_report.h"
#include "sim/simulator.h"

namespace cp = cryptopim;

int main() {
  std::cout << "== Controller microcode (stage programs) ==\n\n";

  // Per-degree totals.
  cp::obs::BenchReporter rep("controller_microcode");
  cp::Table t({"n", "q", "stage programs", "instructions", "ROM (KiB)",
               "banks sharing each program"});
  for (const std::uint32_t n : {256u, 1024u, 4096u, 32768u}) {
    const auto p = cp::ntt::NttParams::for_degree(n);
    cp::sim::CryptoPimSimulator simu(p);
    cp::Xoshiro256 rng(n);
    const auto a = cp::ntt::sample_uniform(n, p.q, rng);
    const auto b = cp::ntt::sample_uniform(n, p.q, rng);
    simu.multiply(a, b);
    const auto& mc = simu.microcode();
    const cp::obs::BenchReporter::Params nn = {{"n", std::to_string(n)}};
    rep.add("stage_programs", static_cast<double>(mc.stage_count()),
            "programs", nn);
    rep.add("instructions", static_cast<double>(mc.total_instructions()),
            "insns", nn);
    rep.add("rom_bits", static_cast<double>(mc.total_rom_bits()), "bits", nn);
    t.add_row({std::to_string(n), std::to_string(p.q),
               std::to_string(mc.stage_count()),
               cp::fmt_i(mc.total_instructions()),
               cp::fmt_f(static_cast<double>(mc.total_rom_bits()) / 8 / 1024),
               std::to_string(std::max(1u, n / 512))});
  }
  t.print(std::cout);

  // Stage-by-stage breakdown for the Kyber-sized design.
  std::cout << "\n-- per-stage microcode, n=256 --\n";
  const auto p = cp::ntt::NttParams::for_degree(256);
  cp::sim::CryptoPimSimulator simu(p);
  cp::Xoshiro256 rng(256);
  const auto a = cp::ntt::sample_uniform(p.n, p.q, rng);
  const auto b = cp::ntt::sample_uniform(p.n, p.q, rng);
  simu.multiply(a, b);
  const auto& mc = simu.microcode();
  cp::Table s({"stage", "instructions", "cycles", "ROM (bits)"});
  for (std::size_t i = 0; i < mc.stage_count(); ++i) {
    const auto& prog = mc.program(i);
    s.add_row({mc.name(i), cp::fmt_i(prog.size()), cp::fmt_i(prog.cycles()),
               cp::fmt_i(prog.rom_bits())});
  }
  s.print(std::cout);
  std::cout << "\nEvery bank executes the same broadcast program per stage\n"
               "(lock-step SIMD); per-bank state is limited to the row-mask\n"
               "table and the pre-loaded twiddle columns. Replay equivalence\n"
               "is asserted bit-exactly by tests/test_program.cc.\n";
  rep.write_default();
  return 0;
}
