// Reproduces the Section IV-A robustness study: 5000 Monte-Carlo trials
// with 10% process variation on the RRAM device parameters; the paper
// observed a maximum 25.6% reduction in resistance noise margin with no
// functional failures thanks to the high R_off/R_on ratio.
#include <iostream>
#include <string>

#include "common/rng.h"
#include "common/table.h"
#include "obs/bench_report.h"
#include "pim/device.h"
#include "reliability/campaign.h"

namespace cp = cryptopim;

int main() {
  std::cout << "== Device robustness: Monte-Carlo noise-margin sweep ==\n"
            << "(VTEAM-flavoured RRAM, 45nm, cycle 1.1ns; paper: 5000\n"
            << "trials @ 10% variation -> max 25.6% margin loss, still\n"
            << "functional)\n\n";

  const auto dev = cp::pim::DeviceModel::paper_45nm();
  cp::obs::BenchReporter rep("device_robustness");
  rep.set_param("trials", "5000");
  cp::Table t({"variation", "trials", "nominal margin", "worst margin",
               "max reduction", "functional"});
  for (const double var : {0.05, 0.10, 0.20, 0.30}) {
    cp::Xoshiro256 rng(2020);
    const auto res = cp::pim::monte_carlo_noise_margin(dev, 5000, var, rng);
    const cp::obs::BenchReporter::Params vp = {
        {"variation", cp::fmt_f(var, 2)}};
    rep.add("worst_margin", res.worst_margin, "ratio", vp);
    rep.add("max_reduction", res.max_reduction_pct, "pct", vp);
    rep.add("functional", res.functional ? 1.0 : 0.0, "bool", vp);
    t.add_row({cp::fmt_pct(var, 0), "5000", cp::fmt_f(res.nominal_margin, 4),
               cp::fmt_f(res.worst_margin, 4),
               cp::fmt_f(res.max_reduction_pct, 1) + "%",
               res.functional ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nAt the paper's 10% corner the margin degrades by a\n"
               "bounded amount and never approaches the sensing threshold:\n"
               "R_off/R_on = "
            << dev.r_off_ohm / dev.r_on_ohm
            << " keeps the divider margin near 1.\n";

  // Beyond analog noise margins: a functional fault campaign. The paper
  // assumes fault-free crossbars; here stuck-at endurance faults are
  // injected into a simulated n=256 multiplication and the functional
  // failure rate — trials where no correct result could be delivered
  // despite verify/retry/remap — is measured per fault rate.
  std::cout << "\n== Functional failure rate under stuck-at faults ==\n\n";
  cp::reliability::CampaignConfig cfg;
  cfg.n = 256;
  cfg.q = 7681;
  cfg.stuck_rates = {0.0, 1e-6, 1e-5};
  cfg.verify_points = 2;
  cfg.trials_per_rate = 3;
  cfg.seed = 2020;
  const auto campaign = cp::reliability::run_fault_campaign(cfg);
  cp::Table ft({"stuck rate", "trials", "injected", "recovered", "unrec",
                "escaped", "functional fail"});
  for (const auto& cell : campaign.cells) {
    const double fail_rate =
        static_cast<double>(cell.unrecoverable + cell.escaped) /
        static_cast<double>(cell.trials);
    const cp::obs::BenchReporter::Params fp = {
        {"stuck_rate", cp::fmt_f(cell.stuck_rate, 6)}};
    rep.add("functional_failure_rate", fail_rate, "ratio", fp);
    rep.add("campaign_injected", static_cast<double>(cell.injected), "cells",
            fp);
    rep.add("campaign_escaped", static_cast<double>(cell.escaped), "trials",
            fp);
    ft.add_row({cp::fmt_f(cell.stuck_rate, 6), cp::fmt_i(cell.trials),
                cp::fmt_i(cell.injected), cp::fmt_i(cell.recovered),
                cp::fmt_i(cell.unrecoverable), cp::fmt_i(cell.escaped),
                cp::fmt_pct(fail_rate, 1)});
  }
  ft.print(std::cout);
  std::cout << "\nDetected faults are retried and remapped to spare\n"
               "columns/banks; zero escapes means no wrong result was ever\n"
               "delivered as verified.\n";
  rep.write_default();
  return 0;
}
