// Extension bench: RNS-decomposed HE-scale multiplication on CryptoPIM.
//
// Real HE deployments (SEAL, which the paper cites for its n >= 2k
// parameters) use ciphertext moduli of hundreds of bits, decomposed into
// word-sized NTT primes. Each limb is exactly one CryptoPIM-sized job, and
// the limbs are independent — ideal for the superbank partitioning. This
// bench measures (functionally, per-limb on the host NTT) and models (on
// the chip scheduler) RNS multiplications across basis sizes, and
// validates one configuration against the wide schoolbook oracle.
#include <chrono>
#include <cmath>
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "model/scheduler.h"
#include "ntt/rns.h"
#include "obs/bench_report.h"

namespace cp = cryptopim;
using cp::ntt::U128;

int main() {
  std::cout << "== RNS-decomposed HE multiplication on CryptoPIM ==\n\n";

  constexpr std::uint32_t kDegree = 4096;
  cp::obs::BenchReporter rep("rns_he");
  rep.set_param("degree", std::to_string(kDegree));
  cp::Table t({"limbs", "log2(Q)", "host time (us)", "chip time (us)",
               "chip util", "RNS mults/s (chip)"});
  const cp::model::ChipScheduler sched;
  for (const std::size_t limbs : {1u, 2u, 4u, 6u}) {
    const auto basis = cp::ntt::RnsBasis::generate(kDegree, limbs, 20);
    double log2q = 0;
    for (std::size_t i = 0; i < basis.size(); ++i) {
      log2q += std::log2(static_cast<double>(basis.prime(i)));
    }

    // Functional multiply on the host engines (one NTT per limb).
    cp::Xoshiro256 rng(limbs);
    std::vector<U128> a(kDegree), b(kDegree);
    for (auto& x : a) x = rng.next() % basis.modulus();
    for (auto& x : b) x = rng.next() % basis.modulus();
    const auto ra = basis.decompose(a);
    const auto rb = basis.decompose(b);
    const auto t0 = std::chrono::steady_clock::now();
    const auto prod = basis.multiply(ra, rb);
    const auto t1 = std::chrono::steady_clock::now();
    (void)prod;
    const double host_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();

    // Chip model: `limbs` independent degree-4096 multiplications.
    const std::vector<cp::model::Job> jobs = {
        {kDegree, static_cast<std::uint64_t>(limbs)}};
    const auto res = sched.schedule(jobs);

    const cp::obs::BenchReporter::Params lp = {
        {"limbs", std::to_string(limbs)}};
    rep.add("host_time", host_us, "us", lp);
    rep.add("chip_time", res.makespan_us, "us", lp);
    rep.add("chip_utilization", res.utilization, "frac", lp);
    t.add_row({std::to_string(limbs), cp::fmt_f(log2q, 1),
               cp::fmt_f(host_us), cp::fmt_f(res.makespan_us),
               cp::fmt_f(res.utilization * 100, 1) + "%",
               cp::fmt_i(static_cast<std::uint64_t>(1e6 / res.makespan_us))});
  }
  t.print(std::cout);
  std::cout << "\nWith 8 superbanks at n=4096, up to 8 limbs multiply\n"
               "concurrently: the chip-side cost of widening Q is one beat\n"
               "per extra limb, not one full traversal.\n\n";

  // Correctness spot check against the wide oracle (small degree).
  {
    const auto basis = cp::ntt::RnsBasis::generate(64, 4, 20);
    cp::Xoshiro256 rng(99);
    std::vector<U128> a(64), b(64);
    for (auto& x : a) x = rng.next() % basis.modulus();
    for (auto& x : b) x = rng.next() % basis.modulus();
    const auto got = basis.reconstruct(
        basis.multiply(basis.decompose(a), basis.decompose(b)));
    // Schoolbook mod Q.
    std::vector<U128> want(64, 0);
    for (std::size_t i = 0; i < 64; ++i) {
      for (std::size_t j = 0; j < 64; ++j) {
        const U128 prod = cp::ntt::mulmod_u128(a[i], b[j], basis.modulus());
        const std::size_t k = i + j;
        if (k < 64) {
          want[k] = (want[k] + prod) % basis.modulus();
        } else {
          want[k - 64] = (want[k - 64] + basis.modulus() - prod) %
                         basis.modulus();
        }
      }
    }
    std::cout << "CRT correctness check (n=64, 4 limbs, "
              << cp::fmt_f(std::log2(static_cast<double>(basis.modulus())), 1)
              << "-bit Q): " << (got == want ? "exact" : "MISMATCH") << "\n";
    rep.add("crt_check_exact", got == want ? 1.0 : 0.0, "bool");
    if (got != want) return 1;
  }

  // Mixed workload through the scheduler: a protocol day in the life.
  std::cout << "\n-- mixed workload on one chip (scheduler) --\n";
  const std::vector<cp::model::Job> mixed = {
      {256, 100000},   // Kyber-style key exchanges
      {1024, 20000},   // NewHope-style sessions
      {4096, 4000},    // 4-limb RNS HE multiplications
      {32768, 200},    // deep HE circuit
  };
  const auto res = sched.schedule(mixed);
  cp::Table m({"degree", "mults", "superbanks", "batch time (us)"});
  for (const auto& b : res.batches) {
    m.add_row({std::to_string(b.degree), cp::fmt_i(b.multiplications),
               std::to_string(b.superbanks), cp::fmt_f(b.duration_us)});
  }
  m.print(std::cout);
  std::cout << "makespan " << cp::fmt_f(res.makespan_us / 1000, 2)
            << " ms, utilization " << cp::fmt_f(res.utilization * 100, 1) + "%"
            << ", aggregate "
            << cp::fmt_i(static_cast<std::uint64_t>(res.throughput_per_s))
            << " multiplications/s\n";
  rep.add("mixed_makespan", res.makespan_us, "us");
  rep.add("mixed_utilization", res.utilization, "frac");
  rep.add("mixed_throughput", res.throughput_per_s, "1/s");
  rep.write_default();
  return 0;
}
