// Backend-throughput bench: the same request mix executed on every
// runtime::ExecutionBackend tier.
//
// One pinned-seed request list (a mix of n = 256 and n = 1024 negacyclic
// multiplications) runs on the gate-level simulator, the word-level
// engine and the analytic model. For each tier we report host req/s
// (host_* metrics: wall-clock, excluded from the committed baselines)
// and the simulated per-op cycle accounting plus verified-equal counts
// (deterministic, baseline-gated via tools/bench_compare).
//
// Acceptance gates — the bench exits non-zero if any fails:
//   1. every gate and word product equals the software oracle
//      (verified_equal == requests on both functional tiers),
//   2. the word tier's simulated cycles match the analytic tier exactly
//      (switching tiers changes host speed, never the model numbers),
//   3. the word tier is >= 100x faster than the gate tier in wall-clock.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/cryptopim.h"
#include "obs/bench_report.h"

namespace cp = cryptopim;

namespace {

struct Op {
  cp::ntt::NttParams params;
  cp::ntt::Poly a, b, expect;
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  // The shared mix: weighted toward the Kyber-class degree like the
  // serving default, with a NewHope-class tail.
  const std::vector<std::pair<std::uint32_t, std::size_t>> mix = {
      {256, 16}, {1024, 8}};
  constexpr std::uint64_t kSeed = 20260809;

  cp::Xoshiro256 rng(kSeed);
  std::vector<Op> ops;
  for (const auto& [n, count] : mix) {
    const auto params = cp::ntt::NttParams::for_degree(n);
    const cp::ntt::GsNttEngine oracle(params);
    for (std::size_t i = 0; i < count; ++i) {
      Op op{params,
            cp::ntt::sample_uniform(n, params.q, rng),
            cp::ntt::sample_uniform(n, params.q, rng),
            {}};
      op.expect = oracle.negacyclic_multiply(op.a, op.b);
      ops.push_back(std::move(op));
    }
  }

  cp::obs::BenchReporter rep("backend_throughput");
  rep.set_param("seed", std::to_string(kSeed));
  rep.set_param("mix", "256:16,1024:8");

  struct TierResult {
    double ms = 0;
    double req_per_s = 0;
    std::uint64_t verified_equal = 0;
    std::map<std::uint32_t, std::uint64_t> cycles_by_degree;
  };
  std::map<std::string, TierResult> tiers;

  for (const auto& name : cp::runtime::backend_names()) {
    auto backend = cp::runtime::make_backend(name);
    // The word and analytic tiers finish the mix in well under a
    // millisecond; repeat it to get a stable wall-clock rate.
    const std::size_t rounds = name == "gate" ? 1 : 50;
    TierResult res;
    const double t0 = now_ms();
    for (std::size_t r = 0; r < rounds; ++r) {
      for (const auto& op : ops) {
        const auto out = backend->execute(op.params, op.a, op.b);
        if (r == 0) {
          if (backend->functional() && out.product == op.expect) {
            res.verified_equal += 1;
          }
          res.cycles_by_degree[op.params.n] = out.sim_cycles;
        }
      }
    }
    res.ms = now_ms() - t0;
    res.req_per_s =
        static_cast<double>(ops.size() * rounds) / (res.ms / 1e3);
    tiers[name] = res;

    // Deterministic metrics: baseline-gated.
    if (backend->functional()) {
      rep.add("verified_equal", static_cast<double>(res.verified_equal),
              "requests", {{"backend", name}});
    }
    for (const auto& [n, cycles] : res.cycles_by_degree) {
      rep.add("sim_cycles_per_op", static_cast<double>(cycles), "cycles",
              {{"backend", name}, {"n", std::to_string(n)}});
    }
    // Host wall-clock: machine-dependent, never committed to baselines.
    rep.add("host_req_per_s", res.req_per_s, "req/s", {{"backend", name}});
    rep.add("host_wall_ms", res.ms, "ms", {{"backend", name}});

    std::cout << name << ": " << static_cast<std::uint64_t>(res.req_per_s)
              << " req/s host (" << res.ms << " ms for "
              << ops.size() * rounds << " ops)"
              << (backend->functional()
                      ? ", verified-equal " +
                            std::to_string(res.verified_equal) + "/" +
                            std::to_string(ops.size())
                      : ", accounting only")
              << "\n";
  }

  const double speedup =
      tiers.at("word").req_per_s / tiers.at("gate").req_per_s;
  rep.add("host_speedup_word_over_gate", speedup, "x");
  std::cout << "word-over-gate wall-clock speedup: "
            << static_cast<std::uint64_t>(speedup) << "x\n";
  rep.write_default();

  // Gate 1: bit-exactness of both functional tiers on the full mix.
  int failures = 0;
  for (const auto& name : {"gate", "word"}) {
    if (tiers.at(name).verified_equal != ops.size()) {
      std::cerr << "FAIL: " << name << " tier verified "
                << tiers.at(name).verified_equal << "/" << ops.size()
                << " products\n";
      ++failures;
    }
  }
  // Gate 2: the word tier's simulated accounting is the analytic tier's.
  if (tiers.at("word").cycles_by_degree !=
      tiers.at("analytic").cycles_by_degree) {
    std::cerr << "FAIL: word-tier simulated cycles diverge from the "
                 "analytic model\n";
    ++failures;
  }
  // Gate 3: the >= 100x wall-clock unlock actually materialises.
  if (speedup < 100.0) {
    std::cerr << "FAIL: word tier only " << speedup
              << "x faster than gate (need >= 100x)\n";
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
