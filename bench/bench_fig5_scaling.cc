// Regenerates Fig. 5: normalized latency and throughput of non-pipelined
// (NP) and pipelined (P) CryptoPIM over the eight evaluated degrees, plus
// the energy series and the paper's aggregate claims (27.8x / 36.3x
// throughput gain, +29% / +59.7% latency overhead, +1.6% energy).
#include <iostream>

#include "common/table.h"
#include "model/paper_constants.h"
#include "model/performance.h"
#include "ntt/params.h"
#include "obs/bench_report.h"

namespace cp = cryptopim;

int main() {
  std::cout << "== Fig. 5: latency/throughput/energy of NP vs P CryptoPIM ==\n"
            << "(model values; normalization base = n=256 NP, as in the\n"
            << "paper's figure)\n\n";

  const auto base_np = cp::model::cryptopim_non_pipelined(256);
  const auto base_p = cp::model::cryptopim_pipelined(256);

  cp::Table t({"n", "NP lat (us)", "P lat (us)", "NP lat (norm)",
               "P lat (norm)", "NP thr (/s)", "P thr (/s)", "thr gain",
               "lat ovh", "NP en (uJ)", "P en (uJ)", "en ovh"});
  double gain_small = 0, gain_large = 0, ovh_small = 0, ovh_large = 0;
  double en_ovh_total = 0;
  int n_small = 0, n_large = 0;
  cp::obs::BenchReporter rep("fig5_scaling");
  for (const std::uint32_t n : cp::ntt::paper_degrees()) {
    const auto np = cp::model::cryptopim_non_pipelined(n);
    const auto p = cp::model::cryptopim_pipelined(n);
    const double gain = p.throughput_per_s / np.throughput_per_s;
    const double ovh = p.latency_us / np.latency_us - 1.0;
    const double en_ovh = p.energy_uj / np.energy_uj - 1.0;
    t.add_row({std::to_string(n), cp::fmt_f(np.latency_us),
               cp::fmt_f(p.latency_us),
               cp::fmt_f(np.latency_us / base_np.latency_us),
               cp::fmt_f(p.latency_us / base_p.latency_us),
               cp::fmt_i(static_cast<std::uint64_t>(np.throughput_per_s)),
               cp::fmt_i(static_cast<std::uint64_t>(p.throughput_per_s)),
               cp::fmt_x(gain), cp::fmt_pct(ovh), cp::fmt_f(np.energy_uj),
               cp::fmt_f(p.energy_uj), cp::fmt_pct(en_ovh)});
    const cp::obs::BenchReporter::Params np_params = {
        {"n", std::to_string(n)}, {"pipelined", "0"}};
    const cp::obs::BenchReporter::Params p_params = {
        {"n", std::to_string(n)}, {"pipelined", "1"}};
    rep.add("latency", np.latency_us, "us", np_params);
    rep.add("latency", p.latency_us, "us", p_params);
    rep.add("throughput", np.throughput_per_s, "1/s", np_params);
    rep.add("throughput", p.throughput_per_s, "1/s", p_params);
    rep.add("energy", np.energy_uj, "uJ", np_params);
    rep.add("energy", p.energy_uj, "uJ", p_params);
    if (n <= 1024) {
      gain_small += gain;
      ovh_small += ovh;
      ++n_small;
    } else {
      gain_large += gain;
      ovh_large += ovh;
      ++n_large;
    }
    en_ovh_total += en_ovh;
  }
  t.print(std::cout);

  cp::Table c({"claim", "paper", "this model"});
  c.add_row({"throughput gain, n<=1024",
             cp::fmt_x(cp::model::paper::kThroughputGainSmallN),
             cp::fmt_x(gain_small / n_small)});
  c.add_row({"throughput gain, n>1024",
             cp::fmt_x(cp::model::paper::kThroughputGainLargeN),
             cp::fmt_x(gain_large / n_large)});
  c.add_row({"latency overhead, n<=1024",
             cp::fmt_pct(cp::model::paper::kLatencyOverheadSmallN),
             cp::fmt_pct(ovh_small / n_small)});
  c.add_row({"latency overhead, n>1024",
             cp::fmt_pct(cp::model::paper::kLatencyOverheadLargeN),
             cp::fmt_pct(ovh_large / n_large)});
  c.add_row({"pipeline energy overhead (avg)",
             cp::fmt_pct(cp::model::paper::kPipelineEnergyOverhead),
             cp::fmt_pct(en_ovh_total / 8)});
  std::cout << '\n';
  c.print(std::cout);

  std::cout << "\nPipelined throughput is flat within a bit-width class\n"
               "(stage latency depends on N, not n); latency grows with the\n"
               "stage count 4*log2(n)+6; energy grows with n and jumps at\n"
               "the 16->32-bit transition (n=2k), all as in the paper.\n";
  rep.add("throughput_gain_small_n", gain_small / n_small, "x");
  rep.add("throughput_gain_large_n", gain_large / n_large, "x");
  rep.add("latency_overhead_small_n", ovh_small / n_small, "frac");
  rep.add("latency_overhead_large_n", ovh_large / n_large, "frac");
  rep.add("energy_overhead_avg", en_ovh_total / 8, "frac");
  rep.write_default();
  return 0;
}
