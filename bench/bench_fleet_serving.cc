// Fleet-serving bench: chip-count scaling, chaos survival and capacity
// planning for the multi-chip front-end (src/runtime/fleet.*).
//
// Three sections, all on the word backend:
//
//   scaling   - 1 -> 64 chips, each cell offered 60% of its fleet's
//               modelled capacity (rate scales with N, duration fixed),
//               full-width placement (replicas = N) behind the
//               least-loaded router, so the sweep measures front-end
//               overhead rather than placement starvation or queueing
//               collapse. Efficiency = tput(N) / (N * tput(1)).
//   chaos     - an 8-chip fleet under whole-chip chaos (crashes,
//               brownouts, corruption storms) with cross-chip retries;
//               run twice from the same seed to pin determinism.
//   planning  - chips needed for target offered rates of the mixed
//               degree mix, provisioning each chip at 80% of modelled
//               capacity (the rule the scaling section validates).
//
// Acceptance bar (exit non-zero on regression):
//   1. 64-chip throughput >= 0.8x linear scaling from the 1-chip cell,
//   2. chaos cell: zero corrupt results accepted and >= 99% of
//      non-rejected requests complete,
//   3. the two same-seed chaos runs emit byte-identical fleet/1 JSON.
//
// Everything is seeded; bench_fleet_serving.json is bit-reproducible.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/cryptopim.h"
#include "model/scheduler.h"
#include "obs/bench_report.h"
#include "runtime/fleet.h"

namespace cp = cryptopim;

namespace {

const std::vector<cp::runtime::DegreeShare> kMix = {
    {256, 2.0}, {1024, 1.0}, {4096, 0.5}};

/// Modelled steady-state capacity of ONE chip serving the weighted mix,
/// requests per second: the harmonic combination of the per-class
/// capacities (a request stream at rate R with class fractions f_c
/// saturates when sum_c R*f_c/cap_c == 1).
double mix_capacity_per_s(const cp::arch::ChipConfig& chip) {
  double total_w = 0;
  for (const auto& s : kMix) total_w += s.weight;
  double inv = 0;
  for (const auto& s : kMix) {
    inv += (s.weight / total_w) /
           cp::model::class_capacity_per_s(chip, s.degree);
  }
  return 1.0 / inv;
}

cp::runtime::FleetConfig fleet_config(std::uint32_t chips, double rate_per_s,
                                      std::uint64_t seed) {
  cp::runtime::FleetConfig fc;
  fc.chips = chips;
  fc.replicas = 2;
  fc.chip.workload.mix = kMix;
  fc.chip.workload.tenants = 8;
  fc.chip.workload.seed = seed;
  fc.chip.workload.verify_every = 256;
  fc.chip.arrival_rate_per_s = rate_per_s;
  fc.chip.duration_us = 800.0;
  fc.chip.queue_capacity = 4096;
  return fc;
}

std::string json_text(const cp::runtime::FleetReport& r) {
  std::ostringstream os;
  r.to_json().write(os);
  return os.str();
}

}  // namespace

int main() {
  std::cout << "== Fleet serving: scaling, chaos survival, capacity "
               "planning ==\n(word backend; every cell offered 60% of its "
               "fleet's modelled capacity)\n\n";

  constexpr std::uint64_t kSeed = 2026;
  constexpr double kLoad = 0.6;
  const auto chip = cp::arch::ChipConfig::paper_chip();
  const double cap1 = mix_capacity_per_s(chip);

  cp::obs::BenchReporter rep("fleet_serving");
  rep.set_param("seed", std::to_string(kSeed));
  rep.set_param("load_fraction", "0.6");
  rep.set_param("mix", "256:2,1024:1,4096:0.5");
  rep.set_param("duration_us", "800");
  rep.add("chip_mix_capacity", cap1, "req/s");

  bool ok = true;
  std::vector<std::string> violations;

  // ---- scaling: 1 -> 64 chips at constant per-chip load -------------------
  cp::Table t({"chips", "offered/s", "submitted", "completed", "tput/s",
               "p99 us", "efficiency"});
  double tput1 = 0;
  double tput64 = 0;
  for (const std::uint32_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const double rate = kLoad * n * cap1;
    auto fc = fleet_config(n, rate, kSeed);
    // Full-width placement + least-loaded routing: every class may land
    // on every chip, so added chips add capacity. Narrow placement
    // (replicas << N) trades this headroom for blast-radius isolation.
    fc.replicas = n;
    fc.router = "least";
    const auto r = cp::runtime::FleetRuntime(std::move(fc)).run();
    if (n == 1) tput1 = r.throughput_per_s;
    if (n == 64) tput64 = r.throughput_per_s;
    const double eff =
        tput1 > 0 ? r.throughput_per_s / (n * tput1) : 0.0;
    const cp::obs::BenchReporter::Params p = {{"chips", std::to_string(n)}};
    rep.add("throughput", r.throughput_per_s, "req/s", p);
    rep.add("completed", static_cast<double>(r.completed), "requests", p);
    rep.add("latency_p99",
            r.latency_cycles.quantile(0.99) / r.cycles_per_us, "us", p);
    rep.add("scaling_efficiency", eff, "ratio", p);
    t.add_row({cp::fmt_i(n), cp::fmt_i(static_cast<std::uint64_t>(rate)),
               cp::fmt_i(r.submitted), cp::fmt_i(r.completed),
               cp::fmt_i(static_cast<std::uint64_t>(r.throughput_per_s)),
               cp::fmt_f(r.latency_cycles.quantile(0.99) / r.cycles_per_us,
                         1),
               cp::fmt_pct(eff, 1)});
  }
  t.print(std::cout);
  if (tput64 < 0.8 * 64.0 * tput1) {
    ok = false;
    violations.push_back(
        "64-chip throughput " + cp::fmt_i(static_cast<std::uint64_t>(tput64)) +
        " req/s < 0.8x linear from 1 chip (" +
        cp::fmt_i(static_cast<std::uint64_t>(64.0 * tput1)) + " req/s)");
  }

  // ---- chaos: whole-chip episodes against the drain/re-shard machinery ----
  std::cout << "\nchaos: 8 chips, whole-chip crash/brownout/corruption-storm\n"
               "episodes, cross-chip retries + lane retries, run twice from\n"
               "the same seed:\n";
  auto chaos_cfg = fleet_config(8, kLoad * 8 * cap1, kSeed);
  chaos_cfg.replicas = 3;
  chaos_cfg.chip.duration_us = 1500.0;
  chaos_cfg.chaos.enabled = true;
  chaos_cfg.chaos.seed = kSeed;
  chaos_cfg.chaos.mean_interval_us = 400.0;
  chaos_cfg.chaos.mean_duration_us = 200.0;
  chaos_cfg.max_retries = 3;
  chaos_cfg.retry_budget_ratio = 1.0;
  chaos_cfg.chip.resilience.max_retries = 2;
  const auto ca = cp::runtime::FleetRuntime(chaos_cfg).run();
  const auto cb = cp::runtime::FleetRuntime(chaos_cfg).run();

  std::uint64_t wrong = 0;
  for (const auto& c : ca.chip_reports) wrong += c.resilience.wrong_accepted;
  const std::uint64_t non_rejected = ca.submitted - ca.rejected - ca.shed;
  const double complete_frac =
      non_rejected ? static_cast<double>(ca.completed) / non_rejected : 1.0;

  cp::Table ct({"episodes", "crashes", "brownouts", "storms", "migrated",
                "redispatched", "x-retries", "complete", "wrong"});
  ct.add_row({cp::fmt_i(ca.crashes + ca.brownouts + ca.corruption_storms),
              cp::fmt_i(ca.crashes), cp::fmt_i(ca.brownouts),
              cp::fmt_i(ca.corruption_storms), cp::fmt_i(ca.migrated),
              cp::fmt_i(ca.redispatched), cp::fmt_i(ca.cross_retries),
              cp::fmt_pct(complete_frac, 2), cp::fmt_i(wrong)});
  ct.print(std::cout);

  const cp::obs::BenchReporter::Params cp_ = {{"cell", "chaos"}};
  rep.add("chaos_episodes",
          static_cast<double>(ca.crashes + ca.brownouts +
                              ca.corruption_storms),
          "events", cp_);
  rep.add("chaos_crashes", static_cast<double>(ca.crashes), "events", cp_);
  rep.add("chaos_migrated", static_cast<double>(ca.migrated), "requests",
          cp_);
  rep.add("chaos_redispatched", static_cast<double>(ca.redispatched),
          "requests", cp_);
  rep.add("chaos_cross_retries", static_cast<double>(ca.cross_retries),
          "requests", cp_);
  rep.add("chaos_complete_frac", complete_frac, "ratio", cp_);
  rep.add("chaos_wrong_accepted", static_cast<double>(wrong), "results", cp_);

  if (wrong != 0) {
    ok = false;
    violations.push_back(std::to_string(wrong) +
                         " corrupt result(s) accepted under chaos");
  }
  if (complete_frac < 0.99) {
    ok = false;
    violations.push_back("chaos completion " +
                         cp::fmt_f(100.0 * complete_frac, 2) +
                         "% of non-rejected (< 99%)");
  }
  if (json_text(ca) != json_text(cb)) {
    ok = false;
    violations.push_back("same-seed chaos fleets emitted different JSON");
  }

  // ---- capacity planning: chips for a target offered rate -----------------
  std::cout << "\ncapacity planning: chips needed for the mixed degree mix,\n"
               "provisioning each chip at 80% of its modelled capacity ("
            << cp::fmt_i(static_cast<std::uint64_t>(cap1)) << " req/s):\n";
  cp::Table pt({"target req/s", "chips needed", "fleet headroom"});
  for (const double target : {50e3, 250e3, 1e6, 5e6, 20e6}) {
    const auto chips = static_cast<std::uint64_t>(
        std::ceil(target / (0.8 * cap1)));
    const double headroom = chips * cap1 / target;
    pt.add_row({cp::fmt_i(static_cast<std::uint64_t>(target)),
                cp::fmt_i(chips), cp::fmt_f(headroom, 2) + "x"});
    rep.add("chips_needed", static_cast<double>(chips), "chips",
            {{"target_per_s", cp::fmt_i(static_cast<std::uint64_t>(target))}});
  }
  pt.print(std::cout);

  if (!ok) {
    std::cout << "\nACCEPTANCE VIOLATIONS:\n";
    for (const auto& v : violations) std::cout << "  - " << v << "\n";
  }
  rep.write_default();
  return ok ? 0 : 1;
}
