// Regenerates Table I: execution time (cycles) of the in-memory modulo
// operations, for each modulus the paper targets.
//
// "paper" columns are the published Table I entries (lazy reductions; the
// Barrett entry for q=7681 is back-derived from the Fig. 4(a) stage
// latency). "measured" columns count the cycles of our reconstructed
// width-trimmed gate micro-code (src/pim/circuits/reduction.*) on the same
// input domains: Barrett after an addition (a < 2q), Montgomery after a
// butterfly multiplication. "canonical" adds the conditional subtract that
// maps the lazy result into [0, q).
#include <iostream>

#include "common/bitutil.h"
#include "common/table.h"
#include "model/paper_constants.h"
#include "ntt/reduction.h"
#include "obs/bench_report.h"
#include "pim/circuits/reduction.h"

namespace cp = cryptopim;
using cp::pim::BlockExecutor;
using cp::pim::MemoryBlock;
using cp::pim::Operand;
using cp::pim::RowMask;

namespace {

struct Measured {
  std::uint64_t lazy = 0;
  std::uint64_t canonical = 0;
};

template <typename Fn>
Measured measure(unsigned width, Fn&& reduce) {
  Measured m;
  for (const bool canonical : {false, true}) {
    MemoryBlock blk;
    BlockExecutor exec(blk, RowMask::all());
    const Operand a = exec.alloc(width);
    exec.reset_stats();
    reduce(exec, a, canonical);
    (canonical ? m.canonical : m.lazy) = exec.stats().cycles;
  }
  return m;
}

}  // namespace

int main() {
  std::cout << "== Table I: execution time (cycles) for modulo operation ==\n"
            << "Row-parallel over 512 rows; shifts are free column\n"
            << "re-addressing; adds/subs are width-trimmed.\n\n";

  cp::Table t({"q", "reduction", "paper (cycles)", "measured (lazy)",
               "measured (canonical)", "measured/paper"});
  cp::obs::BenchReporter rep("table1_modulo");
  for (const auto& row : cp::model::paper::table1_rows()) {
    const std::uint32_t q = row.q;
    const cp::obs::BenchReporter::Params qp = {{"q", std::to_string(q)}};
    {
      const auto spec = cp::ntt::BarrettShiftAdd::paper_spec(q);
      const unsigned w = cp::bit_length(2ull * q - 1);
      const auto m = measure(w, [&spec](BlockExecutor& e, const Operand& a,
                                        bool canonical) {
        (void)cp::pim::circuits::barrett_reduce(e, a, spec, canonical);
      });
      const std::string paper =
          std::to_string(row.barrett) + (row.barrett_derived ? "*" : "");
      t.add_row({std::to_string(q), "Barrett", paper, cp::fmt_i(m.lazy),
                 cp::fmt_i(m.canonical),
                 cp::fmt_x(static_cast<double>(m.lazy) / row.barrett, 2)});
      rep.add("barrett_lazy", static_cast<double>(m.lazy), "cycles", qp);
      rep.add("barrett_canonical", static_cast<double>(m.canonical), "cycles",
              qp);
      rep.add("barrett_paper", static_cast<double>(row.barrett), "cycles", qp);
    }
    {
      const auto spec = cp::ntt::MontgomeryShiftAdd::paper_spec(q);
      const unsigned w = cp::bit_length(2ull * q - 1) + cp::bit_length(q - 1);
      const auto m = measure(w, [&spec](BlockExecutor& e, const Operand& a,
                                        bool canonical) {
        (void)cp::pim::circuits::montgomery_reduce(e, a, spec, canonical);
      });
      t.add_row({std::to_string(q), "Montgomery", std::to_string(row.montgomery),
                 cp::fmt_i(m.lazy), cp::fmt_i(m.canonical),
                 cp::fmt_x(static_cast<double>(m.lazy) / row.montgomery, 2)});
      rep.add("montgomery_lazy", static_cast<double>(m.lazy), "cycles", qp);
      rep.add("montgomery_canonical", static_cast<double>(m.canonical),
              "cycles", qp);
      rep.add("montgomery_paper", static_cast<double>(row.montgomery),
              "cycles", qp);
    }
    t.add_separator();
  }
  t.print(std::cout);
  std::cout << "\n(*) derived from the Fig. 4(a) stage latency; the printed\n"
               "Table I entry is not legible in the paper.\n"
               "Our trimmed micro-code exploits narrow quotients harder than\n"
               "the paper's counts (notably Barrett @ 786433, where the\n"
               "quotient is a single bit for post-addition inputs); the\n"
               "Montgomery row tracks the paper within ~25%.\n";
  rep.write_default();
  return 0;
}
