// Ablation: merging the psi-twist into the butterfly twiddles.
//
// The paper's pipeline (Algorithm 1) spends dedicated blocks on the
// psi^i / psi^{-i} scaling passes. The merged-NTT variant
// (src/ntt/merged_ntt, verified equivalent) folds those into the
// butterfly twiddles, removing the scale stages from the pipeline. This
// bench quantifies what the accelerator would save — and why the paper's
// choice still makes sense (the scale stages are off the critical path,
// so only latency/area move, not throughput). Also prints the per-phase
// energy breakdown of the standard pipeline.
#include <iostream>

#include "arch/pipeline.h"
#include "common/table.h"
#include "model/latency.h"
#include "model/performance.h"
#include "ntt/params.h"
#include "obs/bench_report.h"

namespace cp = cryptopim;
using cp::arch::StageOp;
using cp::arch::StagePhase;

int main() {
  std::cout << "== Ablation: merged-psi pipeline ==\n\n";

  const auto em = cp::model::EnergyModel::calibrated();
  const auto dev = cp::pim::DeviceModel::paper_45nm();

  cp::obs::BenchReporter rep("ablation_merged");
  cp::Table t({"n", "stages (paper)", "stages (merged)", "lat (us) paper",
               "lat (us) merged", "lat saving", "thr change",
               "blocks/bank saved"});
  for (const std::uint32_t n : {256u, 1024u, 4096u, 32768u}) {
    auto spec = cp::arch::PipelineSpec::build(
        n, cp::arch::PipelineVariant::kCryptoPim);
    const auto l = cp::model::paper_latency(n);
    const auto base = cp::model::evaluate_pipelined(spec, l, em, dev);

    // Merged variant: drop the psi-scale and psi^{-1}-scale stages (the
    // point-wise multiply remains). Butterfly twiddles change value, not
    // cost.
    cp::arch::PipelineSpec merged = spec;
    std::erase_if(merged.stages, [](const cp::arch::StageSpec& s) {
      return s.phase == StagePhase::kPsiScale ||
             s.phase == StagePhase::kPsiInvScale;
    });
    const auto opt = cp::model::evaluate_pipelined(merged, l, em, dev);

    const cp::obs::BenchReporter::Params nn = {{"n", std::to_string(n)}};
    rep.add("latency_paper", base.latency_us, "us", nn);
    rep.add("latency_merged", opt.latency_us, "us", nn);
    rep.add("throughput_paper", base.throughput_per_s, "1/s", nn);
    rep.add("throughput_merged", opt.throughput_per_s, "1/s", nn);
    t.add_row({std::to_string(n), std::to_string(base.depth),
               std::to_string(opt.depth), cp::fmt_f(base.latency_us),
               cp::fmt_f(opt.latency_us),
               cp::fmt_pct(1.0 - opt.latency_us / base.latency_us, 1),
               cp::fmt_pct(opt.throughput_per_s / base.throughput_per_s - 1.0,
                           1),
               "4"});
  }
  t.print(std::cout);
  std::cout << "\nMerging removes 4 stages (~10% pipeline latency at n=256,\n"
               "~6% at 32k) and 4 blocks per bank of area, but throughput is\n"
               "unchanged: the slowest stage is the butterfly [sub+mult]\n"
               "block either way. The equivalence of the merged transform is\n"
               "verified in tests/test_merged_ntt.cc.\n\n";

  // Per-phase energy/cycle breakdown of the standard pipeline.
  std::cout << "-- where the cycles and energy go (standard pipeline) --\n";
  for (const std::uint32_t n : {256u, 32768u}) {
    const auto spec = cp::arch::PipelineSpec::build(
        n, cp::arch::PipelineVariant::kCryptoPim);
    const auto l = cp::model::paper_latency(n);
    std::uint64_t mult = 0, reductions = 0, addsub = 0, transfer = 0;
    for (const auto& st : spec.stages) {
      for (const auto op : st.ops) {
        switch (op) {
          case StageOp::kMult: mult += l.mult; break;
          case StageOp::kBarrett: reductions += l.barrett; break;
          case StageOp::kMontgomery: reductions += l.montgomery; break;
          case StageOp::kAdd: addsub += l.add; break;
          case StageOp::kSub: addsub += l.sub; break;
          case StageOp::kTransferIn: transfer += l.transfer; break;
        }
      }
    }
    const double total = static_cast<double>(mult + reductions + addsub +
                                             transfer);
    cp::Table e({"n=" + std::to_string(n), "cycles", "share"});
    e.add_row({"multiplication", cp::fmt_i(mult),
               cp::fmt_f(mult / total * 100, 1) + "%"});
    e.add_row({"modulo reductions", cp::fmt_i(reductions),
               cp::fmt_f(reductions / total * 100, 1) + "%"});
    e.add_row({"add/sub", cp::fmt_i(addsub),
               cp::fmt_f(addsub / total * 100, 1) + "%"});
    e.add_row({"switch transfers", cp::fmt_i(transfer),
               cp::fmt_f(transfer / total * 100, 1) + "%"});
    e.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Multiplication dominates (the motivation for the optimized\n"
               "multiplier); reductions are the second-largest consumer (the\n"
               "motivation for shift-add Algorithm 3); transfers are noise\n"
               "(the fixed-function switch doing its job).\n";
  rep.write_default();
  return 0;
}
