// Regenerates Fig. 4: stage-by-stage breakdown of the three pipeline
// arrangements (area-efficient, naive, CryptoPIM) at n = 256 / 16-bit,
// with the slowest stage highlighted and compared against the published
// stage latencies (2700 / 1756 / 1643 cycles).
#include <algorithm>
#include <iostream>
#include <map>

#include "arch/pipeline.h"
#include "common/table.h"
#include "model/latency.h"
#include "model/paper_constants.h"
#include "model/performance.h"
#include "obs/bench_report.h"

namespace cp = cryptopim;
using cp::arch::PipelineSpec;
using cp::arch::PipelineVariant;

namespace {

void print_variant(cp::obs::BenchReporter& rep, PipelineVariant v,
                   std::uint64_t paper_stage) {
  const std::uint32_t n = 256;
  const auto l = cp::model::paper_latency(n);
  const auto spec = PipelineSpec::build(n, v);

  std::uint64_t worst = 0;
  for (const auto& st : spec.stages) {
    worst = std::max(worst, cp::model::stage_cycles(st, l));
  }

  std::cout << "-- " << cp::arch::to_string(v) << " pipeline: " << spec.depth()
            << " stages, slowest " << worst << " cycles (paper "
            << paper_stage << ", "
            << cp::fmt_x(static_cast<double>(worst) / paper_stage, 3) << ")\n";
  const cp::obs::BenchReporter::Params vp = {
      {"variant", cp::arch::to_string(v)}, {"n", "256"}};
  rep.add("slowest_stage", static_cast<double>(worst), "cycles", vp);
  rep.add("slowest_stage_paper", static_cast<double>(paper_stage), "cycles",
          vp);
  rep.add("depth", static_cast<double>(spec.depth()), "stages", vp);

  // Distinct stage shapes with multiplicity (the full chain repeats the
  // same butterfly grouping per level).
  std::map<std::uint64_t, std::pair<std::string, unsigned>> shapes;
  for (const auto& st : spec.stages) {
    const auto c = cp::model::stage_cycles(st, l);
    auto& e = shapes[c];
    if (e.second == 0) e.first = st.name;
    e.second += 1;
  }
  cp::Table t({"stage shape (first instance)", "count", "cycles",
               "slowest?"});
  for (auto it = shapes.rbegin(); it != shapes.rend(); ++it) {
    t.add_row({it->second.first, std::to_string(it->second.second),
               cp::fmt_i(it->first), it->first == worst ? "  <== " : ""});
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "== Fig. 4: pipeline arrangements at n=256, 16-bit ==\n"
            << "Stage latency = switch transfer (3N) + grouped ops;\n"
            << "per-op cycles from the paper formulas + Table I.\n\n";

  cp::obs::BenchReporter rep("fig4_pipeline");
  print_variant(rep, PipelineVariant::kAreaEfficient,
                cp::model::paper::kFig4AreaEfficientStage);
  print_variant(rep, PipelineVariant::kNaive,
                cp::model::paper::kFig4NaiveStage);
  print_variant(rep, PipelineVariant::kCryptoPim,
                cp::model::paper::kFig4CryptoPimStage);

  std::cout
      << "The CryptoPIM grouping fuses [sub+mult] and [Montgomery+add+\n"
         "Barrett], cutting the slowest stage from 2748 to 1644 cycles\n"
         "(paper: 2700 -> 1643) while only doubling the stage count of the\n"
         "area-efficient arrangement instead of quintupling it (naive).\n"
         "Our naive-pipeline slowest stage is mult+transfer = 1531; the\n"
         "paper reports 1756 for this arrangement.\n";
  rep.write_default();
  return 0;
}
