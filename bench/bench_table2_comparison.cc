// Regenerates Table II: latency, energy and throughput of the pipelined
// CryptoPIM against the CPU (X86/gem5) and FPGA [19] implementations, for
// all eight degrees, plus the paper's headline ratios.
//
// Columns: "paper" = published Table II; "model" = our architecture model
// (calibrated only on the n=256 energy); "host CPU" = this machine's
// wall-clock for our software NTT multiplier (the gem5 CPU substitute —
// absolute values differ from the paper's 2 GHz gem5 core, shape holds).
#include <chrono>
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "model/paper_constants.h"
#include "model/performance.h"
#include "ntt/ntt.h"
#include "ntt/params.h"
#include "ntt/poly.h"
#include "obs/bench_report.h"

namespace cp = cryptopim;
namespace paper = cp::model::paper;

namespace {

double host_cpu_latency_us(std::uint32_t n) {
  const auto p = cp::ntt::NttParams::for_degree(n);
  const cp::ntt::GsNttEngine eng(p);
  cp::Xoshiro256 rng(n);
  const auto a = cp::ntt::sample_uniform(n, p.q, rng);
  const auto b = cp::ntt::sample_uniform(n, p.q, rng);
  // Warm up, then time enough iterations for a stable reading.
  volatile std::uint32_t sink = eng.negacyclic_multiply(a, b)[0];
  const int iters = n <= 1024 ? 50 : (n <= 8192 ? 10 : 3);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    sink = eng.negacyclic_multiply(a, b)[0];
  }
  const auto t1 = std::chrono::steady_clock::now();
  (void)sink;
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
}

}  // namespace

int main() {
  std::cout << "== Table II: CryptoPIM vs FPGA [19] and CPU ==\n\n";

  cp::obs::BenchReporter rep("table2_comparison");
  cp::Table t({"design", "n", "bits", "latency (us)", "energy (uJ)",
               "throughput (/s)"});
  for (const auto& r : paper::cpu_rows()) {
    t.add_row({"X86 gem5 (paper)", std::to_string(r.n),
               std::to_string(r.bitwidth), cp::fmt_f(r.latency_us),
               cp::fmt_f(r.energy_uj),
               cp::fmt_i(static_cast<std::uint64_t>(r.throughput_per_s))});
  }
  t.add_separator();
  for (const std::uint32_t n : cp::ntt::paper_degrees()) {
    const double us = host_cpu_latency_us(n);
    rep.add("host_cpu_latency", us, "us", {{"n", std::to_string(n)}});
    t.add_row({"X86 host (measured)", std::to_string(n),
               std::to_string(cp::ntt::paper_bitwidth_for_degree(n)),
               cp::fmt_f(us), "-",
               cp::fmt_i(static_cast<std::uint64_t>(1e6 / us))});
  }
  t.add_separator();
  for (const auto& r : paper::fpga_rows()) {
    t.add_row({"FPGA [19] (paper)", std::to_string(r.n),
               std::to_string(r.bitwidth), cp::fmt_f(r.latency_us),
               cp::fmt_f(r.energy_uj),
               cp::fmt_i(static_cast<std::uint64_t>(r.throughput_per_s))});
  }
  t.add_separator();
  for (const std::uint32_t n : cp::ntt::paper_degrees()) {
    const auto m = cp::model::cryptopim_pipelined(n);
    const auto ref = *paper::row_for(paper::cryptopim_rows(), n);
    const cp::obs::BenchReporter::Params nn = {{"n", std::to_string(n)}};
    rep.add("model_latency", m.latency_us, "us", nn);
    rep.add("model_energy", m.energy_uj, "uJ", nn);
    rep.add("model_throughput", m.throughput_per_s, "1/s", nn);
    rep.add("paper_latency", ref.latency_us, "us", nn);
    t.add_row({"CryptoPIM-P (model)", std::to_string(n),
               std::to_string(cp::ntt::paper_bitwidth_for_degree(n)),
               cp::fmt_f(m.latency_us) + " (" + cp::fmt_f(ref.latency_us) + ")",
               cp::fmt_f(m.energy_uj) + " (" + cp::fmt_f(ref.energy_uj) + ")",
               cp::fmt_i(static_cast<std::uint64_t>(m.throughput_per_s)) +
                   " (" +
                   cp::fmt_i(static_cast<std::uint64_t>(ref.throughput_per_s)) +
                   ")"});
  }
  t.print(std::cout);
  std::cout << "CryptoPIM rows show model (paper) side by side.\n\n";

  // Headline claims, aggregated the way the paper aggregates them:
  //  * FPGA comparisons and the CPU throughput/energy factors average
  //    over the degrees with an FPGA datapoint (n <= 1024);
  //  * "performance reduction" averages performance (1/latency) ratios,
  //    not latency ratios;
  //  * the CPU performance factor averages over all eight degrees.
  double thr_fpga = 0, perf_fpga = 0, en_fpga = 0;
  for (const auto& f : paper::fpga_rows()) {
    const auto m = cp::model::cryptopim_pipelined(f.n);
    thr_fpga += m.throughput_per_s / f.throughput_per_s;
    perf_fpga += f.latency_us / m.latency_us;  // performance ratio
    en_fpga += m.energy_uj / f.energy_uj;
  }
  double perf_cpu = 0, thr_cpu_small = 0, en_cpu_small = 0;
  for (const auto& c : paper::cpu_rows()) {
    const auto m = cp::model::cryptopim_pipelined(c.n);
    perf_cpu += c.latency_us / m.latency_us;
    if (c.n <= 1024) {
      thr_cpu_small += m.throughput_per_s / c.throughput_per_s;
      en_cpu_small += c.energy_uj / m.energy_uj;
    }
  }

  cp::Table c({"claim", "paper", "this model"});
  c.add_row({"throughput vs FPGA (n<=1k)", cp::fmt_x(paper::kThroughputVsFpga),
             cp::fmt_x(thr_fpga / 3)});
  c.add_row({"performance reduction vs FPGA (n<=1k)",
             "<" + cp::fmt_pct(paper::kLatencyPenaltyVsFpga),
             cp::fmt_pct(1.0 - perf_fpga / 3)});
  c.add_row({"energy vs FPGA (n<=1k)", "~1.0x", cp::fmt_x(en_fpga / 3)});
  c.add_row({"performance vs CPU (avg, all n)", cp::fmt_x(paper::kPerfVsCpu),
             cp::fmt_x(perf_cpu / 8)});
  c.add_row({"throughput vs CPU (n<=1k)", cp::fmt_x(paper::kThroughputVsCpu),
             cp::fmt_x(thr_cpu_small / 3)});
  c.add_row({"energy vs CPU (n<=1k)", cp::fmt_x(paper::kEnergyVsCpu),
             cp::fmt_x(en_cpu_small / 3)});
  c.print(std::cout);
  rep.add("throughput_vs_fpga_small_n", thr_fpga / 3, "x");
  rep.add("perf_reduction_vs_fpga_small_n", 1.0 - perf_fpga / 3, "frac");
  rep.add("energy_vs_fpga_small_n", en_fpga / 3, "x");
  rep.add("perf_vs_cpu_avg", perf_cpu / 8, "x");
  rep.add("throughput_vs_cpu_small_n", thr_cpu_small / 3, "x");
  rep.add("energy_vs_cpu_small_n", en_cpu_small / 3, "x");
  rep.write_default();
  return 0;
}
