// Ablation of the NTT-specific fixed-function switch (Section III-C):
// logic cost vs a traditional crossbar switch, and transfer-cycle cost of
// a butterfly stage, across row counts and bit-widths.
#include <iostream>

#include "arch/chip.h"
#include "common/table.h"
#include "model/performance.h"
#include "ntt/params.h"
#include "obs/bench_report.h"
#include "pim/switch.h"

namespace cp = cryptopim;

int main() {
  std::cout << "== Ablation: fixed-function switch vs full crossbar ==\n\n";

  cp::obs::BenchReporter rep("ablation_switch");
  cp::Table t({"rows", "fixed-function (logic/row)", "crossbar (logic/row)",
               "logic reduction"});
  for (const unsigned rows : {8u, 32u, 128u, 512u}) {
    const auto ff = cp::pim::FixedFunctionSwitch::logic_per_row();
    const auto xbar = cp::pim::FixedFunctionSwitch::crossbar_logic_per_row(rows);
    rep.add("crossbar_logic_per_row", static_cast<double>(xbar), "elements",
            {{"rows", std::to_string(rows)}});
    t.add_row({std::to_string(rows), std::to_string(ff), std::to_string(xbar),
               cp::fmt_x(static_cast<double>(xbar) / ff, 1)});
  }
  rep.add("fixed_function_logic_per_row",
          static_cast<double>(cp::pim::FixedFunctionSwitch::logic_per_row()),
          "elements");
  t.print(std::cout);
  std::cout << "\nThe fixed-function switch wires exactly three routes per\n"
               "row (A->A, A->A+s, A->A-s) for one hard-coded stride, so its\n"
               "logic is independent of the port count; a crossbar grows\n"
               "linearly per row (quadratically in total).\n\n";

  cp::Table c({"bitwidth", "transfer cycles/stage (3N)",
               "share of CryptoPIM stage"});
  for (const std::uint32_t n : {256u, 2048u}) {
    const auto l = cp::model::paper_latency(n);
    const std::uint64_t stage = l.sub + l.mult + l.transfer;
    rep.add("transfer_cycles_per_stage", static_cast<double>(l.transfer),
            "cycles", {{"bitwidth", std::to_string(l.bitwidth)}});
    c.add_row({std::to_string(l.bitwidth), std::to_string(l.transfer),
               cp::fmt_pct(static_cast<double>(l.transfer) / stage, 1)});
  }
  c.print(std::cout);
  std::cout << "\nTransfers stay under ~3% of the slowest stage, which is\n"
               "why the pipeline's energy overhead is only ~2%.\n\n";

  // What if every pipeline hop needed a full crossbar? Rough logic-area
  // proxy: switch elements per bank.
  const auto chip = cp::arch::ChipConfig::paper_chip();
  const std::uint64_t hops = chip.blocks_per_bank - 1;
  const std::uint64_t ff_total = hops * 512 * 3;
  const std::uint64_t xb_total = hops * 512ull * 512ull;
  cp::Table a({"per-bank switch fabric", "elements"});
  a.add_row({"fixed-function (paper design)", cp::fmt_i(ff_total)});
  a.add_row({"full crossbar (hypothetical)", cp::fmt_i(xb_total)});
  a.add_row({"saving", cp::fmt_x(static_cast<double>(xb_total) / ff_total, 0)});
  a.print(std::cout);
  rep.add("per_bank_fixed_function_elements", static_cast<double>(ff_total),
          "elements");
  rep.add("per_bank_crossbar_elements", static_cast<double>(xb_total),
          "elements");
  rep.write_default();
  return 0;
}
