// Chaos-serving bench: the resilience layer under injected faults.
//
// For each degree mix we run three cells with identical workloads:
//   baseline   - resilience on (deadlines/retries/hedging/breakers) but
//                no chaos; establishes the fault-free p99 reference.
//   chaos      - seeded chaos episodes (lane slowdowns + corrupting
//                windows) against the full resilience stack.
//   chaos-raw  - the same chaos with detection disabled, to show what
//                the layered checks are buying (wrong results delivered).
//
// The chaos cell is held to the repo's resilience acceptance bar and the
// bench exits non-zero if it regresses:
//   1. zero corrupt results accepted (wrong_accepted == 0),
//   2. >= 99% of non-rejected requests complete,
//   3. p99 latency <= 5x the fault-free baseline p99.
//
// Everything is seeded; bench_chaos_serving.json is bit-reproducible.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/cryptopim.h"
#include "obs/bench_report.h"

namespace cp = cryptopim;

namespace {

struct Cell {
  std::string mix_label;
  std::string mode;
  cp::runtime::ServingReport report;
};

cp::runtime::ServingConfig base_config(
    const std::vector<cp::runtime::DegreeShare>& mix, std::uint64_t seed) {
  cp::runtime::ServingConfig cfg;
  cfg.workload.mix = mix;
  cfg.workload.tenants = 4;
  cfg.workload.seed = seed;
  cfg.arrival_rate_per_s = 20000.0;
  cfg.duration_us = 20000.0;
  cfg.queue_capacity = 4096;
  return cfg;
}

}  // namespace

int main() {
  std::cout << "== Chaos serving: resilience layer under injected faults ==\n"
            << "(seeded lane slowdowns + corrupting windows; baseline is the\n"
            << "same workload with resilience on and chaos off)\n\n";

  constexpr std::uint64_t kSeed = 2026;
  const std::vector<
      std::pair<std::string, std::vector<cp::runtime::DegreeShare>>>
      mixes = {{"256", {{256, 1.0}}},
               {"1024", {{1024, 1.0}}},
               {"mixed", {{256, 2.0}, {1024, 1.0}, {4096, 0.5}}}};

  cp::obs::BenchReporter rep("chaos_serving");
  rep.set_param("seed", std::to_string(kSeed));
  rep.set_param("tenants", "4");
  rep.set_param("arrival_rate_per_s", "20000");
  rep.set_param("duration_us", "20000");

  cp::Table t({"mix", "mode", "completed", "rejected", "retries", "hedge win",
               "brk open", "corrupt", "wrong", "p99 us"});
  cp::Table slo_t({"mix", "mode", "availability", "err budget", "max win burn",
                   "lat viol"});
  bool ok = true;
  std::vector<std::string> violations;

  for (const auto& [label, mix] : mixes) {
    double baseline_p99 = 0;
    for (const std::string mode : {"baseline", "chaos", "chaos-raw"}) {
      cp::runtime::ServingConfig cfg = base_config(mix, kSeed);
      cfg.resilience = cp::runtime::ResilienceConfig::chaos_preset(kSeed);
      if (mode == "baseline") cfg.resilience.chaos.enabled = false;
      if (mode == "chaos-raw") cfg.resilience.chaos_detect = false;
      // SLO accounting: 99.9% availability, 99% of completions within
      // 500 us. The per-window burn shows *when* chaos ate the budget.
      cfg.slo.availability = 0.999;
      cfg.slo.latency_us = 500.0;
      const auto r = cp::runtime::ServingRuntime(cfg).run();
      const auto& res = r.resilience;

      const std::uint64_t non_rejected =
          r.submitted - r.rejected - r.rejected_unservable -
          res.rejected_deadline;
      const double complete_frac =
          non_rejected ? static_cast<double>(r.completed) / non_rejected : 1.0;
      const double p99 = r.latency_us(0.99);
      if (mode == "baseline") baseline_p99 = p99;

      const cp::obs::BenchReporter::Params p = {{"mix", label},
                                                {"mode", mode}};
      rep.add("throughput", r.throughput_per_s, "req/s", p);
      rep.add("completed", static_cast<double>(r.completed), "requests", p);
      rep.add("complete_frac", complete_frac, "ratio", p);
      rep.add("latency_p99", p99, "us", p);
      rep.add("retries", static_cast<double>(res.retries), "requests", p);
      rep.add("hedge_wins", static_cast<double>(res.hedge_wins), "requests",
              p);
      rep.add("breaker_opens", static_cast<double>(res.breaker_opens),
              "events", p);
      rep.add("chaos_episodes", static_cast<double>(res.chaos_episodes),
              "events", p);
      rep.add("detected_corruptions",
              static_cast<double>(res.detected_corruptions), "results", p);
      rep.add("wrong_accepted", static_cast<double>(res.wrong_accepted),
              "results", p);
      rep.add("slo_availability", r.slo.availability(), "ratio", p);
      rep.add("slo_error_budget_consumed", r.slo.error_budget_consumed(),
              "ratio", p);
      rep.add("slo_max_window_burn", r.slo.max_window_burn(), "x", p);
      rep.add("slo_latency_violations",
              static_cast<double>(r.slo.latency_violations()), "requests", p);

      t.add_row({label, mode, cp::fmt_i(r.completed),
                 cp::fmt_i(r.rejected + r.rejected_unservable +
                           res.rejected_deadline),
                 cp::fmt_i(res.retries), cp::fmt_i(res.hedge_wins),
                 cp::fmt_i(res.breaker_opens),
                 cp::fmt_i(res.detected_corruptions),
                 cp::fmt_i(res.wrong_accepted), cp::fmt_f(p99, 1)});
      slo_t.add_row({label, mode, cp::fmt_pct(r.slo.availability(), 3),
                     cp::fmt_pct(r.slo.error_budget_consumed(), 1),
                     cp::fmt_f(r.slo.max_window_burn(), 1) + "x",
                     cp::fmt_i(r.slo.latency_violations())});

      if (mode != "chaos") continue;
      // Acceptance bar: only the full chaos+resilience cell is gated.
      if (res.wrong_accepted != 0) {
        ok = false;
        violations.push_back("mix " + label + ": " +
                             std::to_string(res.wrong_accepted) +
                             " corrupt result(s) accepted");
      }
      if (complete_frac < 0.99) {
        ok = false;
        violations.push_back("mix " + label + ": completion " +
                             cp::fmt_f(100.0 * complete_frac, 2) +
                             "% of non-rejected (< 99%)");
      }
      if (p99 > 5.0 * baseline_p99) {
        ok = false;
        violations.push_back("mix " + label + ": chaos p99 " +
                             cp::fmt_f(p99, 1) + "us > 5x baseline " +
                             cp::fmt_f(baseline_p99, 1) + "us");
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nSLO accounting (objective: 99.9% availability, 99% of\n"
               "completions within 500 us; burn = window error rate over\n"
               "the allowed rate):\n";
  slo_t.print(std::cout);

  std::cout << "\nChaos slows lanes 4x and corrupts completions in seeded\n"
               "windows; breakers take poisoned lanes out, retries and\n"
               "hedges re-place the work, and the verify layer keeps every\n"
               "corrupt result out of the delivered set.\n";
  if (!ok) {
    std::cout << "\nACCEPTANCE VIOLATIONS:\n";
    for (const auto& v : violations) std::cout << "  - " << v << "\n";
  }
  rep.write_default();
  return ok ? 0 : 1;
}
