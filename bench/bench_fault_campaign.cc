// Fault campaign across the paper's parameter sets: sweep stuck-at fault
// rates, count detection / recovery / degradation outcomes, and confirm
// the acceptance bar of the reliability layer — zero escaped wrong
// results at t >= 2 Freivalds points across >= 1000 injected faults.
//
// All randomness flows from the fixed campaign seeds, so the emitted
// bench_fault_campaign.json is bit-reproducible run to run.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/cryptopim.h"
#include "obs/bench_report.h"
#include "reliability/campaign.h"

namespace cp = cryptopim;

int main() {
  std::cout << "== Fault campaign: stuck-at sweep with verify/retry/remap ==\n"
            << "(Freivalds t=2 + transfer parity + program-verify; spares:\n"
            << "8 columns/block, 4 banks/superbank)\n\n";

  struct Combo {
    std::uint32_t n;
    std::uint32_t q;
  };
  // Every (n, q) with q ≡ 1 (mod 2n) from the acceptance matrix;
  // (1024, 7681) violates the congruence and cannot form an NTT.
  const std::vector<Combo> combos = {
      {256, 7681}, {256, 12289}, {256, 786433}, {1024, 12289}, {1024, 786433}};

  cp::obs::BenchReporter rep("fault_campaign");
  rep.set_param("verify_points", "2");
  rep.set_param("trials_per_rate", "4");
  rep.set_param("seed", "2026");

  cp::Table t({"n", "q", "rate", "injected", "clean", "recovered", "unrec",
               "escaped", "fail rate", "overhead"});
  std::uint64_t grand_injected = 0, grand_escaped = 0;
  for (const auto& combo : combos) {
    cp::reliability::CampaignConfig cfg;
    cfg.n = combo.n;
    cfg.q = combo.q;
    cfg.stuck_rates = {1e-6, 1e-5, 1e-4};
    cfg.verify_points = 2;
    cfg.trials_per_rate = 4;
    cfg.seed = 2026;
    const auto res = cp::reliability::run_fault_campaign(cfg);
    for (const auto& cell : res.cells) {
      // Functional failure = the machinery could not deliver a correct
      // result (degradation); an *escape* (wrong data delivered as good)
      // would be a verification hole, tracked separately.
      const double fail_rate =
          static_cast<double>(cell.unrecoverable + cell.escaped) /
          static_cast<double>(cell.trials);
      const double overhead =
          cell.wall_cycles > 0
              ? static_cast<double>(cell.overhead_cycles) /
                    static_cast<double>(cell.wall_cycles)
              : 0.0;
      const cp::obs::BenchReporter::Params p = {
          {"n", std::to_string(combo.n)},
          {"q", std::to_string(combo.q)},
          {"stuck_rate", cp::fmt_f(cell.stuck_rate, 6)}};
      rep.add("injected", static_cast<double>(cell.injected), "cells", p);
      rep.add("clean", static_cast<double>(cell.clean), "trials", p);
      rep.add("recovered", static_cast<double>(cell.recovered), "trials", p);
      rep.add("unrecoverable", static_cast<double>(cell.unrecoverable),
              "trials", p);
      rep.add("escaped", static_cast<double>(cell.escaped), "trials", p);
      rep.add("columns_remapped", static_cast<double>(cell.columns_remapped),
              "columns", p);
      rep.add("banks_remapped", static_cast<double>(cell.banks_remapped),
              "banks", p);
      rep.add("functional_failure_rate", fail_rate, "ratio", p);
      rep.add("overhead_ratio", overhead, "ratio", p);
      t.add_row({std::to_string(combo.n), std::to_string(combo.q),
                 cp::fmt_f(cell.stuck_rate, 6), cp::fmt_i(cell.injected),
                 cp::fmt_i(cell.clean), cp::fmt_i(cell.recovered),
                 cp::fmt_i(cell.unrecoverable), cp::fmt_i(cell.escaped),
                 cp::fmt_pct(fail_rate, 1), cp::fmt_pct(overhead, 1)});
      grand_injected += cell.injected;
      grand_escaped += cell.escaped;
    }
  }
  t.print(std::cout);
  rep.add("total_injected", static_cast<double>(grand_injected), "cells");
  rep.add("total_escaped", static_cast<double>(grand_escaped), "cells");
  std::cout << "\ntotal injected stuck cells: " << cp::fmt_i(grand_injected)
            << " (acceptance floor: 1,000)\nescaped wrong results:      "
            << cp::fmt_i(grand_escaped) << " (acceptance bar: 0)\n";
  rep.write_default();
  if (grand_injected < 1000) {
    std::cerr << "FAIL: fewer than 1000 injected faults\n";
    return 1;
  }
  if (grand_escaped != 0) {
    std::cerr << "FAIL: a wrong result escaped verification\n";
    return 1;
  }
  return 0;
}
