// google-benchmark microbenchmarks of the software NTT stack — the
// CPU-baseline substitute for the paper's gem5 X86 measurements, plus the
// kernels the accelerator replaces (forward NTT, point-wise multiply,
// reductions, schoolbook oracle).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ntt/ntt.h"
#include "ntt/params.h"
#include "ntt/poly.h"
#include "ntt/reduction.h"
#include "obs/bench_report.h"

namespace cp = cryptopim;

namespace {

void BM_NegacyclicMultiply(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto p = cp::ntt::NttParams::for_degree(n);
  const cp::ntt::GsNttEngine eng(p);
  cp::Xoshiro256 rng(n);
  const auto a = cp::ntt::sample_uniform(n, p.q, rng);
  const auto b = cp::ntt::sample_uniform(n, p.q, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.negacyclic_multiply(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NegacyclicMultiply)
    ->RangeMultiplier(2)
    ->Range(256, 32768)
    ->Unit(benchmark::kMicrosecond);

void BM_ForwardNtt(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto p = cp::ntt::NttParams::for_degree(n);
  const cp::ntt::GsNttEngine eng(p);
  cp::Xoshiro256 rng(n);
  auto a = cp::ntt::sample_uniform(n, p.q, rng);
  for (auto _ : state) {
    eng.forward(a);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_ForwardNtt)
    ->RangeMultiplier(4)
    ->Range(256, 32768)
    ->Unit(benchmark::kMicrosecond);

void BM_InverseNtt(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto p = cp::ntt::NttParams::for_degree(n);
  const cp::ntt::GsNttEngine eng(p);
  cp::Xoshiro256 rng(n);
  auto a = cp::ntt::sample_uniform(n, p.q, rng);
  for (auto _ : state) {
    eng.inverse(a);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_InverseNtt)
    ->RangeMultiplier(4)
    ->Range(256, 32768)
    ->Unit(benchmark::kMicrosecond);

void BM_SchoolbookOracle(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto p = cp::ntt::NttParams::for_degree(n);
  cp::Xoshiro256 rng(n);
  const auto a = cp::ntt::sample_uniform(n, p.q, rng);
  const auto b = cp::ntt::sample_uniform(n, p.q, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cp::ntt::schoolbook_negacyclic(a, b, p.q));
  }
}
BENCHMARK(BM_SchoolbookOracle)->Arg(256)->Arg(1024)->Unit(
    benchmark::kMicrosecond);

void BM_BarrettShiftAdd(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  const auto spec = cp::ntt::BarrettShiftAdd::paper_spec(q);
  cp::Xoshiro256 rng(q);
  std::vector<std::uint64_t> vals(4096);
  for (auto& v : vals) v = rng.next_below(2ull * q);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const auto v : vals) acc += spec.reduce_canonical(v);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * vals.size());
}
BENCHMARK(BM_BarrettShiftAdd)->Arg(7681)->Arg(12289)->Arg(786433);

void BM_MontgomeryShiftAdd(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  const auto spec = cp::ntt::MontgomeryShiftAdd::paper_spec(q);
  cp::Xoshiro256 rng(q);
  std::vector<std::uint64_t> vals(4096);
  for (auto& v : vals) v = rng.next_below(q) * rng.next_below(q);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const auto v : vals) acc += spec.reduce_canonical(v);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * vals.size());
}
BENCHMARK(BM_MontgomeryShiftAdd)->Arg(7681)->Arg(12289)->Arg(786433);

// Console output as usual, but every finished run is also mirrored into
// the BenchReporter so bench_cpu_ntt.json carries the same numbers.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(cp::obs::BenchReporter& rep) : rep_(rep) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      rep_.add(run.benchmark_name(), run.GetAdjustedRealTime(),
               benchmark::GetTimeUnitString(run.time_unit),
               {{"iterations", std::to_string(run.iterations)}});
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  cp::obs::BenchReporter& rep_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  cp::obs::BenchReporter rep("cpu_ntt");
  CaptureReporter reporter(rep);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  rep.write_default();
  return 0;
}
