// Post-quantum key agreement on CryptoPIM: a full KEM handshake
// (keygen -> encapsulate -> decapsulate with re-encryption check), every
// ring multiplication executed in the simulated crossbars — the
// "key agreement" application of the paper's introduction.
//
//   $ ./examples/kem_handshake
#include <iostream>

#include "core/cryptopim.h"
#include "crypto/kem.h"

namespace cp = cryptopim;

namespace {

std::string hex(std::span<const std::uint8_t> bytes, std::size_t n) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(digits[bytes[i] >> 4]);
    s.push_back(digits[bytes[i] & 0xF]);
  }
  return s;
}

}  // namespace

int main() {
  cp::crypto::KemScheme kem;
  const auto& p = kem.pke().params();
  std::cout << "RLWE KEM on CryptoPIM: n=" << p.n << ", q=" << p.q
            << ", eta=" << p.eta << ", ciphertext compression (du,dv)=("
            << p.du << "," << p.dv << ")\n\n";

  // Route the PKE's ring multiplications through the accelerator.
  cp::sim::CryptoPimSimulator simu(cp::ntt::NttParams::for_degree(p.n));
  std::uint64_t pim_cycles = 0;
  kem.pke().set_multiplier(
      [&](const cp::ntt::Poly& a, const cp::ntt::Poly& b) {
        auto r = simu.multiply(a, b);
        pim_cycles += simu.report().wall_cycles;
        return r;
      });

  // Alice generates a key pair.
  cp::crypto::Seed alice_seed{};
  alice_seed.fill(0xA1);
  const auto [pk, sk] = kem.keygen(alice_seed);
  std::cout << "alice: keygen done (pk = seed + " << p.n * 2
            << " bytes, sk = " << p.n * 2 << " bytes + rejection secret)\n";

  // Bob encapsulates against Alice's public key.
  cp::crypto::Seed bob_entropy{};
  bob_entropy.fill(0xB0);
  const auto [ct, bob_key] = kem.encapsulate(pk, bob_entropy);
  std::cout << "bob:   encapsulated -> ciphertext of "
            << (p.n * (p.du + p.dv) + 7) / 8 << " bytes (compressed), key "
            << hex(bob_key, 8) << "...\n";

  // Alice decapsulates.
  const auto alice_key = kem.decapsulate(sk, ct);
  std::cout << "alice: decapsulated ->                              key "
            << hex(alice_key, 8) << "...\n";
  const bool agree = alice_key == bob_key;
  std::cout << "shared secret: " << (agree ? "AGREED" : "MISMATCH") << "\n\n";

  // An attacker flips a ciphertext bit: implicit rejection.
  auto tampered = ct;
  tampered.u[100] ^= 1;
  const auto reject_key = kem.decapsulate(sk, tampered);
  std::cout << "tampered ciphertext -> implicit-rejection key "
            << hex(reject_key, 8) << "... ("
            << (reject_key != bob_key ? "differs, as required" : "BROKEN")
            << ")\n\n";

  std::cout << "accelerator accounting:\n"
            << "  ring multiplications: " << kem.pke().multiplications()
            << " (keygen 1, encaps 2, decaps 3, tamper-decaps 3)\n"
            << "  simulated cycles:     " << cp::fmt_i(pim_cycles) << " ("
            << cp::fmt_f(pim_cycles * 1.1e-3) << " us)\n";
  const auto perf = cp::model::cryptopim_pipelined(p.n);
  std::cout << "  pipelined hardware:   "
            << cp::fmt_i(static_cast<std::uint64_t>(perf.throughput_per_s / 2))
            << " encapsulations/s per superbank, "
            << cp::arch::ChipConfig::paper_chip().plan_for_degree(p.n).superbanks
            << " superbanks per chip\n";
  return (agree && reject_key != bob_key) ? 0 : 1;
}
