// RLWE public-key encryption on CryptoPIM.
//
// A NewHope-flavoured LPR-style scheme at n = 1024, q = 12289 — the
// public-key workload the paper's introduction motivates. Every ring
// multiplication (the operation CryptoPIM accelerates) executes in the
// simulated crossbars; additions and sampling stay on the host, as they
// would in a real co-processor deployment.
//
//   keygen:  s, e <- CBD(eta);  b = a*s + e          (1 multiplication)
//   encrypt: r, e1, e2 <- CBD;  u = a*r + e1,
//            v = b*r + e2 + encode(m)                (2 multiplications)
//   decrypt: m = decode(v - u*s)                     (1 multiplication)
#include <array>
#include <cstring>
#include <iostream>
#include <string>

#include "core/cryptopim.h"

namespace cp = cryptopim;

namespace {

constexpr std::uint32_t kDegree = 1024;
constexpr unsigned kEta = 2;          // centered binomial noise parameter
constexpr std::size_t kMsgBits = 256; // one 32-byte payload

struct PublicKey {
  cp::ntt::Poly a;  // uniform public polynomial
  cp::ntt::Poly b;  // a*s + e
};
struct SecretKey {
  cp::ntt::Poly s;
};
struct Ciphertext {
  cp::ntt::Poly u;
  cp::ntt::Poly v;
};

cp::ntt::Poly encode(const std::array<std::uint8_t, kMsgBits / 8>& msg,
                     std::uint32_t n, std::uint32_t q) {
  // Bit i -> coefficient i scaled to q/2; remaining coefficients zero.
  cp::ntt::Poly m(n, 0);
  for (std::size_t i = 0; i < kMsgBits; ++i) {
    const bool bit = (msg[i / 8] >> (i % 8)) & 1u;
    m[i] = bit ? q / 2 : 0;
  }
  return m;
}

std::array<std::uint8_t, kMsgBits / 8> decode(const cp::ntt::Poly& m,
                                              std::uint32_t q) {
  std::array<std::uint8_t, kMsgBits / 8> out{};
  for (std::size_t i = 0; i < kMsgBits; ++i) {
    // Ring distance: values near +-q/2 decode to 1, values near 0 to 0.
    const std::int64_t centered = cp::ntt::centered(m[i], q);
    if (std::llabs(centered) > q / 4) out[i / 8] |= 1u << (i % 8);
  }
  return out;
}

}  // namespace

int main() {
  cp::Accelerator acc(kDegree);
  const auto& p = acc.params();
  cp::Xoshiro256 rng(20200720);
  std::uint64_t pim_cycles = 0;
  double pim_energy = 0;
  auto pim_mul = [&](const cp::ntt::Poly& x, const cp::ntt::Poly& y) {
    auto r = acc.multiply(x, y);
    pim_cycles += acc.last_report().wall_cycles;
    pim_energy += acc.last_report().energy_uj;
    return r;
  };

  std::cout << "RLWE public-key encryption on CryptoPIM (n=" << p.n
            << ", q=" << p.q << ", eta=" << kEta << ")\n\n";

  // -- key generation --------------------------------------------------------
  PublicKey pk;
  SecretKey sk;
  pk.a = cp::ntt::sample_uniform(p.n, p.q, rng);
  sk.s = cp::ntt::sample_cbd(p.n, p.q, kEta, rng);
  const auto e = cp::ntt::sample_cbd(p.n, p.q, kEta, rng);
  pk.b = cp::ntt::poly_add(pim_mul(pk.a, sk.s), e, p.q);
  std::cout << "keygen done: pk = (a, b), " << 2 * p.n * p.bitwidth / 8
            << " bytes; sk = s, " << p.n * p.bitwidth / 8 << " bytes\n";

  // -- encryption ------------------------------------------------------------
  std::array<std::uint8_t, kMsgBits / 8> msg{};
  const std::string text = "CryptoPIM in-memory NTT, DAC'20";  // <= 32 bytes
  std::memcpy(msg.data(), text.data(), std::min(text.size(), msg.size()));

  const auto r = cp::ntt::sample_cbd(p.n, p.q, kEta, rng);
  const auto e1 = cp::ntt::sample_cbd(p.n, p.q, kEta, rng);
  const auto e2 = cp::ntt::sample_cbd(p.n, p.q, kEta, rng);
  Ciphertext ct;
  ct.u = cp::ntt::poly_add(pim_mul(pk.a, r), e1, p.q);
  ct.v = cp::ntt::poly_add(cp::ntt::poly_add(pim_mul(pk.b, r), e2, p.q),
                           encode(msg, p.n, p.q), p.q);
  std::cout << "encrypted " << msg.size() << "-byte message -> ciphertext of "
            << 2 * p.n * p.bitwidth / 8 << " bytes\n";

  // -- decryption ------------------------------------------------------------
  const auto noisy = cp::ntt::poly_sub(ct.v, pim_mul(ct.u, sk.s), p.q);
  const auto recovered = decode(noisy, p.q);

  const bool ok = recovered == msg;
  std::cout << "decryption: " << (ok ? "message recovered intact" : "FAILED")
            << "\n  plaintext: \""
            << std::string(reinterpret_cast<const char*>(recovered.data()),
                           text.size())
            << "\"\n\n";

  // A wrong key must not decrypt.
  SecretKey wrong{cp::ntt::sample_cbd(p.n, p.q, kEta, rng)};
  const auto garbage =
      decode(cp::ntt::poly_sub(ct.v, pim_mul(ct.u, wrong.s), p.q), p.q);
  std::cout << "wrong-key check: "
            << (garbage != msg ? "rejected (garbage output)" : "UNEXPECTED")
            << "\n\n";

  // -- accelerator accounting -------------------------------------------------
  std::cout << "PIM work for the full keygen+encrypt+decrypt+tamper flow:\n"
            << "  ring multiplications: 5\n"
            << "  simulated cycles:     " << pim_cycles << " ("
            << cp::fmt_f(pim_cycles * 1.1e-3) << " us at 1.1 ns)\n"
            << "  simulated energy:     " << cp::fmt_f(pim_energy) << " uJ\n";
  const auto perf = acc.performance();
  std::cout << "  pipelined hardware:   "
            << cp::fmt_i(static_cast<std::uint64_t>(perf.throughput_per_s / 2))
            << " encryptions/s per superbank (2 muls each), "
            << acc.chip_plan().superbanks << " superbanks on the chip\n";
  return ok ? 0 : 1;
}
