// Homomorphic-encryption-scale polynomial multiplication: the n = 32k,
// q = 786433 (SEAL/BGV-style) workload that motivates CryptoPIM's
// configurable architecture — the largest degree the hardware supports in
// one pass, spread across 64 banks per polynomial.
//
//   $ ./examples/he_polymul
#include <iostream>

#include "core/cryptopim.h"

namespace cp = cryptopim;

int main() {
  constexpr std::uint32_t kDegree = 32768;
  cp::Accelerator acc(kDegree);
  const auto& p = acc.params();

  std::cout << "HE-scale multiplication: n=" << p.n << ", q=" << p.q
            << " (SEAL parameter family), " << p.bitwidth
            << "-bit datapath\n\n";

  // Chip configuration for the design-point degree.
  const auto plan = acc.chip_plan();
  const auto chip = cp::arch::ChipConfig::paper_chip();
  std::cout << "chip: " << chip.total_banks << " banks x "
            << chip.blocks_per_bank << " blocks ("
            << cp::fmt_i(chip.total_cells() / 8 / 1024 / 1024)
            << " MiB of crossbar cells)\n"
            << "plan: " << plan.banks_per_softbank
            << " banks per softbank (one polynomial), "
            << plan.banks_per_superbank << " per superbank, "
            << plan.superbanks << " multiplication in flight\n\n";

  // Run the full multiplication through the simulated crossbars.
  cp::Xoshiro256 rng(32768);
  const auto a = cp::ntt::sample_uniform(p.n, p.q, rng);
  const auto b = cp::ntt::sample_uniform(p.n, p.q, rng);
  std::cout << "multiplying two random degree-" << (p.n - 1)
            << " polynomials in simulated memory...\n";
  const auto c = acc.multiply(a, b);
  const bool ok = c == acc.multiply_software(a, b);
  const auto& rep = acc.last_report();
  std::cout << "  result:   " << (ok ? "bit-exact vs software NTT" : "MISMATCH")
            << "\n  stages:   " << rep.stages << " (the paper's 49-block bank)"
            << "\n  cycles:   " << cp::fmt_i(rep.wall_cycles)
            << "\n  latency:  " << cp::fmt_f(rep.latency_us) << " us"
            << "\n  energy:   " << cp::fmt_f(rep.energy_uj) << " uJ\n\n";

  // The pipelined hardware at this degree (Table II bottom row).
  const auto perf = acc.performance();
  const auto ref = cp::model::paper::row_for(
      cp::model::paper::cryptopim_rows(), kDegree);
  std::cout << "pipelined model: latency " << cp::fmt_f(perf.latency_us)
            << " us (paper " << cp::fmt_f(ref->latency_us) << "), throughput "
            << cp::fmt_i(static_cast<std::uint64_t>(perf.throughput_per_s))
            << "/s (paper "
            << cp::fmt_i(static_cast<std::uint64_t>(ref->throughput_per_s))
            << "), energy " << cp::fmt_f(perf.energy_uj) << " uJ (paper "
            << cp::fmt_f(ref->energy_uj) << ")\n\n";

  // Degrees above the design point fall back to iterative segments.
  const auto big = chip.plan_for_degree(131072);
  std::cout << "beyond the design point: n=131072 runs as " << big.segments
            << " iterative 32k segments on the same hardware\n";

  // A 64x speedup context figure against the software path on this host.
  std::cout << "\nCPU context (paper's gem5 X86): "
            << cp::fmt_f(cp::model::paper::row_for(
                             cp::model::paper::cpu_rows(), kDegree)
                             ->latency_us / 1000.0, 2)
            << " ms per multiplication vs "
            << cp::fmt_f(perf.latency_us / 1000.0, 3)
            << " ms pipelined CryptoPIM\n";
  return ok ? 0 : 1;
}
