// Architecture explorer: sweep the design space the paper's Section III
// spans — pipeline variants, degrees, chip partitions, and the measured
// (gate-level) vs published per-operation latencies.
//
//   $ ./examples/arch_explorer
#include <algorithm>
#include <iostream>

#include "core/cryptopim.h"

namespace cp = cryptopim;

int main() {
  std::cout << "== CryptoPIM architecture explorer ==\n\n";

  // 1. Per-operation latencies: published vs measured from our circuits.
  std::cout << "-- per-operation cycles (paper formulas vs gate-level "
               "measurement) --\n";
  cp::Table ops({"q", "bits", "op", "paper", "measured"});
  for (const std::uint32_t n : {256u, 512u, 2048u}) {
    const auto lp = cp::model::paper_latency(n);
    const auto lm = cp::model::measured_latency(n);
    const auto row = [&](const char* name, std::uint64_t p, std::uint64_t m) {
      ops.add_row({std::to_string(lp.q), std::to_string(lp.bitwidth), name,
                   cp::fmt_i(p), cp::fmt_i(m)});
    };
    row("add", lp.add, lm.add);
    row("sub", lp.sub, lm.sub);
    row("mult", lp.mult, lm.mult);
    row("Barrett", lp.barrett, lm.barrett);
    row("Montgomery", lp.montgomery, lm.montgomery);
    ops.add_separator();
  }
  ops.print(std::cout);

  // 2. Pipeline variants across degrees.
  std::cout << "\n-- pipeline variants (depth / slowest stage / latency / "
               "throughput) --\n";
  cp::Table pipes({"n", "variant", "stages", "slowest (cyc)", "P lat (us)",
                   "P thr (/s)"});
  for (const std::uint32_t n : {256u, 1024u, 32768u}) {
    for (const auto v : {cp::arch::PipelineVariant::kAreaEfficient,
                         cp::arch::PipelineVariant::kNaive,
                         cp::arch::PipelineVariant::kCryptoPim}) {
      const auto spec = cp::arch::PipelineSpec::build(n, v);
      const auto perf = cp::model::evaluate_pipelined(
          spec, cp::model::paper_latency(n),
          cp::model::EnergyModel::calibrated(),
          cp::pim::DeviceModel::paper_45nm());
      pipes.add_row(
          {std::to_string(n), cp::arch::to_string(v),
           std::to_string(perf.depth), cp::fmt_i(perf.slowest_stage_cycles),
           cp::fmt_f(perf.latency_us),
           cp::fmt_i(static_cast<std::uint64_t>(perf.throughput_per_s))});
    }
    pipes.add_separator();
  }
  pipes.print(std::cout);

  // 3. Chip partitioning across the whole degree range.
  std::cout << "\n-- chip partitioning (128 banks, provisioned for 32k) --\n";
  cp::Table chipt({"n", "banks/softbank", "superbanks", "segments",
                   "chip-level mults/s"});
  const auto chip = cp::arch::ChipConfig::paper_chip();
  for (const std::uint32_t n : cp::ntt::paper_degrees()) {
    const auto plan = chip.plan_for_degree(n);
    const auto perf = cp::model::cryptopim_pipelined(n);
    // All superbanks stream multiplications concurrently.
    const double chip_thr = perf.throughput_per_s * plan.superbanks;
    chipt.add_row({std::to_string(n), std::to_string(plan.banks_per_softbank),
                   std::to_string(plan.superbanks),
                   std::to_string(plan.segments),
                   cp::fmt_i(static_cast<std::uint64_t>(chip_thr))});
  }
  const auto plan128k = chip.plan_for_degree(131072);
  chipt.add_row({"131072", std::to_string(plan128k.banks_per_softbank),
                 std::to_string(plan128k.superbanks),
                 std::to_string(plan128k.segments), "- (iterative)"});
  chipt.print(std::cout);

  std::cout << "\nThe chip keeps full utilisation across three regimes:\n"
               "small degrees multiply many pairs in parallel (superbank\n"
               "repartitioning), the design point uses every bank for one\n"
               "pair, and larger inputs stream 32k segments iteratively.\n";
  return 0;
}
