// Homomorphic computation on CryptoPIM: a BGV-style private AND/XOR
// circuit evaluated on encrypted bits, with every ring multiplication
// executed in the simulated crossbars — the "data in use" scenario the
// paper motivates (Section I: "homomorphic encryption cryptosystems
// defined on RLWE lattices, e.g., BGV").
//
// The demo computes, over encrypted 256-bit vectors held by a server:
//   AND  = a & b        (homomorphic multiply + relinearization)
//   XOR  = a ^ b        (homomorphic addition, t = 2)
//   MAJ3 = maj(a,b,c)   (ab ^ bc ^ ca: three multiplies, two adds)
// without the server ever seeing a, b or c.
#include <iostream>

#include "core/cryptopim.h"
#include "he/bgv.h"

namespace cp = cryptopim;

namespace {

cp::ntt::Poly random_bits(std::uint32_t n, cp::Xoshiro256& rng) {
  cp::ntt::Poly m(n);
  for (auto& c : m) c = static_cast<std::uint32_t>(rng.next_below(2));
  return m;
}

}  // namespace

int main() {
  const auto params = cp::he::BgvParams::paper_small();
  cp::he::BgvContext ctx(params, 777);
  std::cout << "BGV on CryptoPIM: n=" << params.n << ", q=" << params.q
            << ", t=" << params.t << ", relin base " << params.relin_base
            << "\n\n";

  // Route every ring multiplication through the simulated accelerator.
  cp::sim::CryptoPimSimulator simu(ctx.ring());
  std::uint64_t pim_cycles = 0;
  double pim_energy = 0;
  ctx.set_multiplier([&](const cp::ntt::Poly& x, const cp::ntt::Poly& y) {
    auto r = simu.multiply(x, y);
    pim_cycles += simu.report().wall_cycles;
    pim_energy += simu.report().energy_uj;
    return r;
  });

  ctx.keygen();
  std::cout << "keygen: secret key + "
            << "relinearization key (base-" << params.relin_base
            << " digits of q)\n";

  cp::Xoshiro256 rng(123);
  const auto a = random_bits(params.n, rng);
  const auto b = random_bits(params.n, rng);
  const auto c = random_bits(params.n, rng);
  auto ca = ctx.encrypt(a);
  auto cb = ctx.encrypt(b);
  auto cc = ctx.encrypt(c);
  std::cout << "client: encrypted three 256-bit vectors ("
            << cp::fmt_f(ctx.noise_budget_bits(ca), 1)
            << " bits of noise budget each)\n\n";

  // Server-side computation on ciphertexts only. With t = 2, coefficient 0
  // of the plaintext product of constant polynomials is the AND of the
  // constant terms; we use full coefficient vectors and verify slot-wise
  // XOR plus coefficient-wise expected values from the plaintexts.
  std::cout << "server: evaluating AND / XOR / MAJ3 homomorphically...\n";
  const auto c_xor = ctx.add(ca, cb);
  const auto c_and = ctx.relinearize(ctx.multiply(ca, cb));
  // maj(a,b,c) = ab + bc + ca over GF(2).
  const auto c_maj = ctx.add(
      ctx.add(c_and, ctx.relinearize(ctx.multiply(cb, cc))),
      ctx.relinearize(ctx.multiply(cc, ca)));

  // Client decrypts and verifies.
  const auto xor_out = ctx.decrypt(c_xor);
  bool xor_ok = true;
  for (std::size_t i = 0; i < params.n; ++i) {
    xor_ok &= xor_out[i] == ((a[i] + b[i]) % 2);
  }

  // The multiplicative results are negacyclic products over GF(2); verify
  // against the software oracle.
  const auto and_want = [&] {
    auto w = cp::ntt::schoolbook_negacyclic(a, b, params.q);
    cp::ntt::Poly out(params.n);
    for (std::size_t i = 0; i < params.n; ++i) {
      out[i] = static_cast<std::uint32_t>(
          ((cp::ntt::centered(w[i], params.q) % 2) + 2) % 2);
    }
    return out;
  }();
  const bool and_ok = ctx.decrypt(c_and) == and_want;

  std::cout << "  XOR  (add):          " << (xor_ok ? "correct" : "WRONG")
            << "\n  AND  (mul + relin):  " << (and_ok ? "correct" : "WRONG")
            << "\n  MAJ3 (3 mul, 2 add): noise budget "
            << cp::fmt_f(ctx.noise_budget_bits(c_maj), 1) << " bits ("
            << (ctx.noise_budget_bits(c_maj) > 0 ? "decryptable"
                                                 : "EXHAUSTED")
            << ")\n\n";

  std::cout << "accelerator accounting:\n"
            << "  ring multiplications: " << ctx.multiplications() << "\n"
            << "  simulated cycles:     " << cp::fmt_i(pim_cycles) << " ("
            << cp::fmt_f(pim_cycles * 1.1e-3) << " us)\n"
            << "  simulated energy:     " << cp::fmt_f(pim_energy)
            << " uJ\n";
  const auto perf = cp::model::cryptopim_pipelined(params.n);
  std::cout << "  pipelined hardware:   "
            << cp::fmt_i(static_cast<std::uint64_t>(perf.throughput_per_s))
            << " ring muls/s/superbank => "
            << cp::fmt_i(static_cast<std::uint64_t>(
                   perf.throughput_per_s / 5))
            << " relinearized HE multiplies/s\n";
  return (xor_ok && and_ok) ? 0 : 1;
}
