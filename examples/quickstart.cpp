// Quickstart: multiply two polynomials in R_q = Z_q[x]/(x^n + 1) on the
// simulated CryptoPIM accelerator, check the result against the software
// NTT, and look at what the hardware would deliver.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/cryptopim.h"

namespace cp = cryptopim;

int main() {
  // Kyber-style parameters: n = 256, q = 7681 (16-bit datapath).
  constexpr std::uint32_t kDegree = 256;
  cp::Accelerator acc(kDegree);
  const auto& p = acc.params();
  std::cout << "CryptoPIM quickstart: n=" << p.n << ", q=" << p.q
            << ", datapath " << p.bitwidth << "-bit\n\n";

  // Two random ring elements.
  cp::Xoshiro256 rng(42);
  const auto a = cp::ntt::sample_uniform(p.n, p.q, rng);
  const auto b = cp::ntt::sample_uniform(p.n, p.q, rng);

  // Multiply in simulated memory: every add/sub/mult/reduction runs as
  // gate micro-ops in 512x512 ReRAM crossbars, with fixed-function
  // switches moving data between pipeline blocks.
  const auto c = acc.multiply(a, b);

  // Cross-check against the software NTT engine (the CPU baseline).
  const auto expected = acc.multiply_software(a, b);
  std::cout << "functional result: "
            << (c == expected ? "bit-exact vs software NTT" : "MISMATCH!")
            << "\n";
  std::cout << "  c[0..3] = " << c[0] << ", " << c[1] << ", " << c[2] << ", "
            << c[3] << "\n\n";

  // What the simulated hardware measured.
  const auto& rep = acc.last_report();
  std::cout << "simulated execution (non-pipelined critical path):\n"
            << "  stages:        " << rep.stages << "\n"
            << "  wall cycles:   " << rep.wall_cycles << " (at 1.1 ns/cycle)\n"
            << "  latency:       " << cp::fmt_f(rep.latency_us) << " us\n"
            << "  energy:        " << cp::fmt_f(rep.energy_uj) << " uJ\n\n";

  // What the pipelined design delivers per the architecture model.
  const auto perf = acc.performance();
  std::cout << "pipelined hardware model (Table II row):\n"
            << "  depth:         " << perf.depth << " stages\n"
            << "  latency:       " << cp::fmt_f(perf.latency_us) << " us\n"
            << "  throughput:    "
            << cp::fmt_i(static_cast<std::uint64_t>(perf.throughput_per_s))
            << " multiplications/s\n"
            << "  energy:        " << cp::fmt_f(perf.energy_uj) << " uJ\n\n";

  // How the paper's 128-bank chip would host this degree.
  const auto plan = acc.chip_plan();
  std::cout << "chip partitioning: " << plan.banks_per_softbank
            << " bank(s) per polynomial, " << plan.superbanks
            << " independent multiplier(s) in parallel\n";
  return c == expected ? 0 : 1;
}
