// Tests for the Gentleman–Sande NTT engine (src/ntt/ntt.*): the Algorithm 2
// schedule, the forward/inverse round trip, the convolution theorem against
// a schoolbook oracle, and the classic DIF/DIT cross-checks.
#include "ntt/ntt.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "ntt/modular.h"
#include "ntt/params.h"
#include "ntt/poly.h"

namespace cryptopim::ntt {
namespace {

// Direct O(n^2) DFT over Z_q: X_k = sum_i x_i w^{ik}.
std::vector<std::uint32_t> dft_direct(std::span<const std::uint32_t> x,
                                      std::uint32_t omega, std::uint32_t q) {
  const std::size_t n = x.size();
  std::vector<std::uint32_t> out(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc = add_mod(acc, mul_mod(x[i], pow_mod(omega, i * k, q), q), q);
    }
    out[k] = acc;
  }
  return out;
}

TEST(BitrevPermute, SmallVector) {
  std::vector<std::uint32_t> v{0, 1, 2, 3, 4, 5, 6, 7};
  bitrev_permute(v);
  EXPECT_EQ(v, (std::vector<std::uint32_t>{0, 4, 2, 6, 1, 5, 3, 7}));
  bitrev_permute(v);  // involution
  EXPECT_EQ(v, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(GsNtt, Algorithm2MatchesDirectDFT) {
  // transform_gs on bit-reversed input must equal the plain DFT in normal
  // order, for several small degrees.
  for (std::uint32_t n : {4u, 8u, 16u, 64u, 256u}) {
    const auto p = NttParams::make(n, 7681);
    GsNttEngine eng(p);
    Xoshiro256 rng(n);
    auto x = sample_uniform(n, p.q, rng);
    const auto expected = dft_direct(x, p.omega, p.q);

    auto a = x;
    bitrev_permute(a);
    eng.transform_gs(a, eng.forward_twiddles());
    EXPECT_EQ(a, expected) << "n=" << n;
  }
}

TEST(GsNtt, MatchesClassicDif) {
  // Algorithm 2 must be the bit-reversal conjugate of the classic DIF.
  const auto p = NttParams::make(128, 7681);
  GsNttEngine eng(p);
  Xoshiro256 rng(7);
  const auto x = sample_uniform(p.n, p.q, rng);

  auto via_gs = x;
  bitrev_permute(via_gs);
  eng.transform_gs(via_gs, eng.forward_twiddles());

  auto via_dif = x;
  ntt_dif_classic(via_dif, p.omega, p.q);
  bitrev_permute(via_dif);  // DIF emits bit-reversed order

  EXPECT_EQ(via_gs, via_dif);
}

TEST(GsNtt, DitClassicInvertsDif) {
  const auto p = NttParams::make(64, 7681);
  Xoshiro256 rng(9);
  const auto x = sample_uniform(p.n, p.q, rng);

  auto a = x;
  ntt_dif_classic(a, p.omega, p.q);        // bitrev order
  ntt_dit_classic(a, p.omega_inv, p.q);    // back to normal order, scaled n
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], mul_mod(x[i], p.n % p.q, p.q));
  }
}

class NttRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(NttRoundTrip, InverseOfForwardIsIdentity) {
  const std::uint32_t n = GetParam();
  const auto p = NttParams::for_degree(n);
  GsNttEngine eng(p);
  Xoshiro256 rng(n + 17);
  const auto x = sample_uniform(n, p.q, rng);
  auto a = x;
  eng.forward(a);
  eng.inverse(a);
  EXPECT_EQ(a, x) << "n=" << n;
}

TEST_P(NttRoundTrip, ForwardChangesInput) {
  const std::uint32_t n = GetParam();
  const auto p = NttParams::for_degree(n);
  GsNttEngine eng(p);
  Xoshiro256 rng(n + 29);
  auto a = sample_uniform(n, p.q, rng);
  const auto x = a;
  eng.forward(a);
  EXPECT_NE(a, x);
}

INSTANTIATE_TEST_SUITE_P(PaperAndSmallDegrees, NttRoundTrip,
                         ::testing::Values(4u, 16u, 64u, 256u, 512u, 1024u,
                                           2048u, 4096u));

class NegacyclicMultiply : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(NegacyclicMultiply, MatchesSchoolbook) {
  const std::uint32_t n = GetParam();
  const auto p = NttParams::for_degree(n);
  GsNttEngine eng(p);
  Xoshiro256 rng(n + 43);
  const auto a = sample_uniform(n, p.q, rng);
  const auto b = sample_uniform(n, p.q, rng);
  EXPECT_EQ(eng.negacyclic_multiply(a, b), schoolbook_negacyclic(a, b, p.q))
      << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(PaperDegreesUpTo2k, NegacyclicMultiply,
                         ::testing::Values(8u, 32u, 256u, 512u, 1024u, 2048u));

TEST(NegacyclicMultiply, NegacyclicWrapSign) {
  // (x^{n-1}) * x = x^n = -1 in the ring.
  const auto p = NttParams::for_degree(256);
  GsNttEngine eng(p);
  Poly a(p.n, 0), b(p.n, 0);
  a[p.n - 1] = 1;
  b[1] = 1;
  const auto c = eng.negacyclic_multiply(a, b);
  EXPECT_EQ(c[0], p.q - 1);  // -1 mod q
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_EQ(c[i], 0u);
}

TEST(NegacyclicMultiply, MultiplicationByOne) {
  const auto p = NttParams::for_degree(512);
  GsNttEngine eng(p);
  Xoshiro256 rng(5);
  const auto a = sample_uniform(p.n, p.q, rng);
  Poly one(p.n, 0);
  one[0] = 1;
  EXPECT_EQ(eng.negacyclic_multiply(a, one), a);
}

TEST(NegacyclicMultiply, Distributivity) {
  // (a + b) * c == a*c + b*c — property over random inputs.
  const auto p = NttParams::for_degree(256);
  GsNttEngine eng(p);
  Xoshiro256 rng(11);
  for (int rep = 0; rep < 5; ++rep) {
    const auto a = sample_uniform(p.n, p.q, rng);
    const auto b = sample_uniform(p.n, p.q, rng);
    const auto c = sample_uniform(p.n, p.q, rng);
    const auto lhs = eng.negacyclic_multiply(poly_add(a, b, p.q), c);
    const auto rhs = poly_add(eng.negacyclic_multiply(a, c),
                              eng.negacyclic_multiply(b, c), p.q);
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(NegacyclicMultiply, LargeDegree32k) {
  // The headline HE-scale degree; verified against a ternary-input
  // schoolbook shortcut is too slow, so we check ring identities instead:
  // x^k * x^m = x^{k+m} with negacyclic wrap.
  const auto p = NttParams::for_degree(32768);
  GsNttEngine eng(p);
  Poly a(p.n, 0), b(p.n, 0);
  a[20000] = 3;
  b[20000] = 5;
  const auto c = eng.negacyclic_multiply(a, b);
  // x^40000 = x^{40000-32768} * (-1) = -x^7232
  EXPECT_EQ(c[7232], p.q - 15);
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i != 7232) {
      ASSERT_EQ(c[i], 0u) << i;
    }
  }
}

TEST(NttParams, PaperModuli) {
  EXPECT_EQ(paper_modulus_for_degree(256), 7681u);
  EXPECT_EQ(paper_modulus_for_degree(512), 12289u);
  EXPECT_EQ(paper_modulus_for_degree(1024), 12289u);
  EXPECT_EQ(paper_modulus_for_degree(2048), 786433u);
  EXPECT_EQ(paper_modulus_for_degree(32768), 786433u);
  EXPECT_EQ(paper_bitwidth_for_degree(1024), 16u);
  EXPECT_EQ(paper_bitwidth_for_degree(2048), 32u);
}

TEST(NttParams, InvalidParametersThrow) {
  EXPECT_THROW(NttParams::make(100, 7681), std::invalid_argument);  // not pow2
  EXPECT_THROW(NttParams::make(256, 7680), std::invalid_argument);  // not prime
  EXPECT_THROW(NttParams::make(512, 7681), std::invalid_argument);  // no root
}

TEST(NttParams, RootProperties) {
  for (std::uint32_t n : paper_degrees()) {
    const auto p = NttParams::for_degree(n);
    EXPECT_EQ(pow_mod(p.psi, 2 * n, p.q), 1u);
    EXPECT_EQ(pow_mod(p.psi, n, p.q), p.q - 1);  // psi^n = -1
    EXPECT_EQ(mul_mod(p.psi, p.psi_inv, p.q), 1u);
    EXPECT_EQ(mul_mod(p.omega, p.omega_inv, p.q), 1u);
    EXPECT_EQ(mul_mod(static_cast<std::uint32_t>(n % p.q), p.n_inv, p.q), 1u);
  }
}

}  // namespace
}  // namespace cryptopim::ntt
