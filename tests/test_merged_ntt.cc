// Tests for the merged-psi NTT engine (src/ntt/merged_ntt.*): it must
// agree with the Algorithm-1 engine on every parameter set while skipping
// the separate scaling passes.
#include "ntt/merged_ntt.h"

#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "common/rng.h"
#include "ntt/modular.h"
#include "ntt/ntt.h"

namespace cryptopim::ntt {
namespace {

class MergedNtt : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MergedNtt, MatchesAlgorithm1Engine) {
  const std::uint32_t n = GetParam();
  const auto p = NttParams::for_degree(n);
  const MergedNttEngine merged(p);
  const GsNttEngine reference(p);
  Xoshiro256 rng(n + 77);
  const auto a = sample_uniform(n, p.q, rng);
  const auto b = sample_uniform(n, p.q, rng);
  EXPECT_EQ(merged.negacyclic_multiply(a, b),
            reference.negacyclic_multiply(a, b));
}

TEST_P(MergedNtt, ForwardInverseRoundTrip) {
  const std::uint32_t n = GetParam();
  const auto p = NttParams::for_degree(n);
  const MergedNttEngine merged(p);
  Xoshiro256 rng(n + 78);
  const auto x = sample_uniform(n, p.q, rng);
  auto a = x;
  merged.forward(a);
  merged.inverse(a);
  EXPECT_EQ(a, x);
}

INSTANTIATE_TEST_SUITE_P(Degrees, MergedNtt,
                         ::testing::Values(8u, 64u, 256u, 1024u, 4096u));

TEST(MergedNttStructure, ForwardOutputIsBitReversedSpectrum) {
  // merged.forward == (psi-scale then Algorithm-2 path) up to ordering:
  // spectrum values must coincide as multisets and via explicit brv map.
  const auto p = NttParams::for_degree(64);
  const MergedNttEngine merged(p);
  const GsNttEngine reference(p);
  Xoshiro256 rng(5);
  const auto x = sample_uniform(p.n, p.q, rng);

  auto via_merged = x;
  merged.forward(via_merged);          // bit-reversed order
  auto via_ref = x;
  reference.forward(via_ref);          // normal order
  for (std::size_t i = 0; i < p.n; ++i) {
    EXPECT_EQ(via_merged[i], via_ref[bit_reverse(i, p.log2n)]) << i;
  }
}

TEST(MergedNttStructure, SavesTheScalingPasses) {
  // The ablation claim: merging removes 2 scale stages from each
  // direction of the accelerator pipeline — at the software level that is
  // 4n fewer multiplications. Verified structurally: merged multiply uses
  // exactly n pointwise products + butterfly products, reference adds 4n.
  // (Here we just pin the algorithmic identity the arch ablation cites.)
  const auto p = NttParams::for_degree(256);
  const std::uint64_t butterflies = 3ull * (p.n / 2) * p.log2n;
  const std::uint64_t merged_muls = butterflies + p.n;
  const std::uint64_t reference_muls = butterflies + p.n + 4ull * p.n;
  EXPECT_EQ(reference_muls - merged_muls, 4ull * p.n);
}

}  // namespace
}  // namespace cryptopim::ntt
