// Property-based differential tests of the in-memory arithmetic circuits:
// the trimmed and uniform datapaths must agree with each other and with
// scalar arithmetic over randomized inputs across widths, shifts and
// polarities; circuit-level algebraic laws (commutativity, distributivity
// of shifts) must hold; column accounting must balance under every
// composition.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "pim/circuits/arith.h"
#include "pim/circuits/reduction.h"

namespace cryptopim::pim::circuits {
namespace {

struct Fixture {
  MemoryBlock blk;
  BlockExecutor exec;
  Fixture() : exec(blk, RowMask::all()) { exec.reset_stats(); }
  Operand input(unsigned width, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<std::uint64_t> vals(kBlockRows);
    for (auto& v : vals) v = rng.next_bits(width);
    Operand op = exec.alloc(width);
    exec.host_write(op, vals);
    return op;
  }
};

// ---------------------------------------------------------------------------
// Trimmed vs uniform adder: width x shift sweep
// ---------------------------------------------------------------------------

class TrimmedVsUniform
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(TrimmedVsUniform, SameSumsLowerOrEqualCost) {
  const auto [width, shift] = GetParam();
  Fixture f;
  const Operand a = f.input(width, 100 * width + shift);
  const Operand b = f.input(width, 200 * width + shift);
  const Operand b_sh = f.exec.shifted(b, shift);
  const unsigned out_w = width + shift + 1;

  f.exec.reset_stats();
  const Operand uniform = add(f.exec, a, b_sh, out_w);
  const auto uniform_cycles = f.exec.stats().cycles;

  f.exec.reset_stats();
  const Operand trimmed = add_trimmed(f.exec, a, b_sh, out_w);
  const auto trimmed_cycles = f.exec.stats().cycles;

  EXPECT_EQ(f.exec.host_read(uniform), f.exec.host_read(trimmed));
  EXPECT_LE(trimmed_cycles, uniform_cycles);
  if (shift > 1) {
    // Rail-heavy views must actually save cycles, not just tie.
    EXPECT_LT(trimmed_cycles, uniform_cycles);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthShiftGrid, TrimmedVsUniform,
    ::testing::Combine(::testing::Values(4u, 9u, 16u, 21u, 32u),
                       ::testing::Values(0u, 1u, 3u, 7u, 13u)));

class TrimmedSubtract
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(TrimmedSubtract, MatchesScalarWhenNonNegative) {
  const auto [width, shift] = GetParam();
  Fixture f;
  const Operand a = f.input(width, 300 * width + shift);
  // (a << shift) - a is always non-negative for shift >= 1.
  const Operand a_sh = f.exec.shifted(a, shift);
  const unsigned out_w = width + shift;
  const Operand d = sub_trimmed(f.exec, a_sh, a, out_w);
  const auto va = f.exec.host_read(a);
  const auto out = f.exec.host_read(d);
  const std::uint64_t mask =
      out_w >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << out_w) - 1;
  for (std::size_t r = 0; r < out.size(); ++r) {
    ASSERT_EQ(out[r], ((va[r] << shift) - va[r]) & mask);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthShiftGrid, TrimmedSubtract,
    ::testing::Combine(::testing::Values(5u, 14u, 20u, 32u),
                       ::testing::Values(1u, 2u, 9u, 12u)));

// ---------------------------------------------------------------------------
// Shift-add chains against random NAF decompositions
// ---------------------------------------------------------------------------

TEST(ShiftAddChainProperty, RandomConstantsRoundTrip) {
  Xoshiro256 rng(42);
  for (int rep = 0; rep < 12; ++rep) {
    const std::uint64_t c = rng.next_bits(14) | 1u;
    const auto terms = naf_decompose(c);
    Fixture f;
    const unsigned in_w = 10;
    const Operand x = f.input(in_w, 500 + rep);
    const unsigned out_w = bit_length(c * ((1ull << in_w) - 1));
    const Operand r = shift_add_chain(f.exec, x, terms, out_w);
    const auto vx = f.exec.host_read(x);
    const auto out = f.exec.host_read(r);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], vx[i] * c) << "c=" << c;
    }
  }
}

TEST(ShiftAddChainProperty, ChainCostGrowsWithTermCount) {
  // More NAF terms -> more combining adds (shifts stay free).
  Fixture f;
  const Operand x = f.exec.alloc(12);
  auto cost = [&f, &x](std::uint64_t c) {
    f.exec.reset_stats();
    const Operand r =
        shift_add_chain(f.exec, x, naf_decompose(c), 32);
    f.exec.free(r);
    return f.exec.stats().cycles;
  };
  EXPECT_EQ(cost(1 << 7), 0u);           // single term: pure re-addressing
  EXPECT_LT(cost(0b101000), cost(0b10101010));  // 2 vs 4 terms
}

// ---------------------------------------------------------------------------
// Multiplier algebra
// ---------------------------------------------------------------------------

TEST(MultiplyProperty, Commutative) {
  Fixture f;
  const Operand a = f.input(12, 600);
  const Operand b = f.input(12, 601);
  const Operand ab = multiply(f.exec, a, b);
  const Operand ba = multiply(f.exec, b, a);
  EXPECT_EQ(f.exec.host_read(ab), f.exec.host_read(ba));
}

TEST(MultiplyProperty, ShiftDistributes) {
  // (a << k) * b == (a * b) << k, exercised through operand views.
  Fixture f;
  const Operand a = f.input(10, 700);
  const Operand b = f.input(10, 701);
  const Operand prod = multiply(f.exec, a, b);
  const Operand prod_shifted = multiply(f.exec, f.exec.shifted(a, 5), b);
  const auto base = f.exec.host_read(prod);
  const auto shifted = f.exec.host_read(prod_shifted);
  for (std::size_t r = 0; r < base.size(); ++r) {
    ASSERT_EQ(shifted[r], base[r] << 5);
  }
}

TEST(MultiplyProperty, ByZeroAndOne) {
  Fixture f;
  const Operand a = f.input(16, 800);
  const Operand zero = f.exec.constant(0, 16);
  const Operand one = f.exec.constant(1, 16);
  const auto va = f.exec.host_read(a);
  const auto p0 = f.exec.host_read(multiply(f.exec, a, zero));
  const auto p1 = f.exec.host_read(multiply(f.exec, a, one));
  for (std::size_t r = 0; r < va.size(); ++r) {
    ASSERT_EQ(p0[r], 0u);
    ASSERT_EQ(p1[r], va[r]);
  }
}

TEST(MultiplyProperty, AgreesWithBaseline35) {
  for (const unsigned w : {5u, 11u, 16u}) {
    Fixture f;
    const Operand a = f.input(w, 900 + w);
    const Operand b = f.input(w, 901 + w);
    const Operand fast = multiply(f.exec, a, b);
    const Operand slow = multiply_baseline35(f.exec, a, b);
    EXPECT_EQ(f.exec.host_read(fast), f.exec.host_read(slow)) << "w=" << w;
  }
}

// ---------------------------------------------------------------------------
// Conditional subtract sweep
// ---------------------------------------------------------------------------

TEST(ConditionalSubtractProperty, ExhaustiveAroundThreshold) {
  const std::uint64_t k = 12289;
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask::first_rows(64));
  Operand a = exec.alloc(16);
  std::vector<std::uint64_t> vals(64);
  for (std::size_t i = 0; i < 64; ++i) vals[i] = k - 32 + i;  // straddle k
  exec.host_write(a, vals);
  const Operand r = conditional_subtract(exec, a, k);
  const auto out = exec.host_read(r);
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_EQ(out[i], vals[i] >= k ? vals[i] - k : vals[i]);
  }
}

TEST(ConditionalSubtractProperty, Idempotent) {
  // Applying the conditional subtract twice to values < 2k equals mod k.
  const std::uint64_t k = 7681;
  Fixture f;
  const Operand a = f.input(14, 1000);  // < 2^14 < 3k
  const Operand once = conditional_subtract(f.exec, a, k);
  const Operand twice = conditional_subtract(f.exec, once, k);
  const auto va = f.exec.host_read(a);
  const auto out = f.exec.host_read(twice);
  for (std::size_t r = 0; r < va.size(); ++r) {
    ASSERT_EQ(out[r], va[r] % k);
  }
}

// ---------------------------------------------------------------------------
// Column accounting under composition
// ---------------------------------------------------------------------------

TEST(ColumnAccounting, DeepCompositionIsLeakFree) {
  Fixture f;
  const Operand a = f.input(16, 1100);
  const Operand b = f.input(16, 1101);
  const std::size_t baseline = f.exec.free_count();
  for (int rep = 0; rep < 10; ++rep) {
    Operand prod = multiply(f.exec, a, b);
    Operand red = barrett_reduce_by_multiplication(f.exec, prod, 12289, true);
    Operand cs = conditional_subtract(f.exec, red, 12289);
    f.exec.free(prod);
    f.exec.free(red);
    f.exec.free(cs);
    ASSERT_EQ(f.exec.free_count(), baseline) << "iteration " << rep;
  }
}

TEST(ColumnAccounting, TrimmedResultsShareInputColumnsSafely) {
  // A trimmed result may alias input columns; freeing the result first
  // and the input second (or vice versa) must both be safe.
  Fixture f;
  for (const bool result_first : {true, false}) {
    Operand x = f.input(12, 1200);
    const std::size_t outstanding = f.exec.free_count();
    Operand r = add_trimmed(f.exec, f.exec.shifted(x, 4), x, 17);
    if (result_first) {
      f.exec.free(r);
      f.exec.free(x);
    } else {
      f.exec.free(x);
      f.exec.free(r);
    }
    EXPECT_EQ(f.exec.free_count(), outstanding + 12);
  }
}

}  // namespace
}  // namespace cryptopim::pim::circuits
