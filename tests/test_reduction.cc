// Tests for the shift-add Barrett / Montgomery reductions (Algorithm 3,
// corrected constants) — see src/ntt/reduction.*.
#include "ntt/reduction.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ntt/modular.h"
#include "ntt/params.h"

namespace cryptopim::ntt {
namespace {

constexpr std::uint32_t kPaperModuli[] = {7681, 12289, 786433};

class BarrettPaperSpec : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BarrettPaperSpec, QTermsEvaluateToQ) {
  const auto b = BarrettShiftAdd::paper_spec(GetParam());
  EXPECT_EQ(eval_shift_add(1, b.q_terms().data(), b.q_terms().size()),
            GetParam());
}

TEST_P(BarrettPaperSpec, ReducesExhaustivelyOverAdditionDomain) {
  // Barrett is applied after additions: inputs < 2q. Check every value.
  const std::uint32_t q = GetParam();
  const auto b = BarrettShiftAdd::paper_spec(q);
  for (std::uint64_t a = 0; a < 2ull * q; ++a) {
    const std::uint64_t r = b.reduce(a);
    EXPECT_LT(r, 2ull * q);
    EXPECT_EQ(r % q, a % q);
    EXPECT_EQ(b.reduce_canonical(a), a % q);
  }
}

TEST_P(BarrettPaperSpec, ReducesAtMaxInputBoundary) {
  const std::uint32_t q = GetParam();
  const auto b = BarrettShiftAdd::paper_spec(q);
  for (std::uint64_t a :
       {b.max_input(), b.max_input() - 1, b.max_input() / 2}) {
    EXPECT_LT(b.reduce(a), 2ull * q) << "a=" << a;
    EXPECT_EQ(b.reduce_canonical(a), a % q);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperModuli, BarrettPaperSpec,
                         ::testing::ValuesIn(kPaperModuli));

class MontgomeryPaperSpec : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MontgomeryPaperSpec, QPrimeIsNegatedInverse) {
  // The defining Montgomery identity: q * q' ≡ -1 (mod R). The paper's
  // printed constants for 7681/786433 violate this; ours must not.
  const auto m = MontgomeryShiftAdd::paper_spec(GetParam());
  const std::uint64_t mask = m.R() - 1;
  EXPECT_EQ((static_cast<std::uint64_t>(m.q()) * m.q_prime()) & mask, mask);
}

TEST_P(MontgomeryPaperSpec, PaperRBits) {
  const auto m = MontgomeryShiftAdd::paper_spec(GetParam());
  EXPECT_EQ(m.r_bits(), GetParam() == 786433 ? 32u : 18u);
}

TEST_P(MontgomeryPaperSpec, ReduceIsTimesRInverse) {
  const std::uint32_t q = GetParam();
  const auto m = MontgomeryShiftAdd::paper_spec(q);
  const std::uint32_t r_mod_q =
      static_cast<std::uint32_t>(m.R() % q);
  Xoshiro256 rng(q);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.next_below(m.max_input() + 1);
    const std::uint32_t t = m.reduce_canonical(a);
    // t * R ≡ a (mod q)
    EXPECT_EQ(mul_mod(t, r_mod_q, q), a % q);
    EXPECT_LT(m.reduce(a), 2ull * q);
  }
}

TEST_P(MontgomeryPaperSpec, MontgomeryMultiplication) {
  const std::uint32_t q = GetParam();
  const auto m = MontgomeryShiftAdd::paper_spec(q);
  Xoshiro256 rng(q + 1);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(q));
    const auto b = static_cast<std::uint32_t>(rng.next_below(q));
    // One operand lifted to the Montgomery domain -> plain product out.
    EXPECT_EQ(m.mul(a, m.to_mont(b)), mul_mod(a, b, q));
  }
}

TEST_P(MontgomeryPaperSpec, TermsEvaluateToConstants) {
  const auto m = MontgomeryShiftAdd::paper_spec(GetParam());
  EXPECT_EQ(eval_shift_add(1, m.q_terms().data(), m.q_terms().size()), m.q());
  EXPECT_EQ(
      eval_shift_add(1, m.qprime_terms().data(), m.qprime_terms().size()),
      m.q_prime());
}

INSTANTIATE_TEST_SUITE_P(PaperModuli, MontgomeryPaperSpec,
                         ::testing::ValuesIn(kPaperModuli));

TEST(BarrettGeneric, WorksForArbitraryModuli) {
  Xoshiro256 rng(42);
  for (std::uint32_t q : {17u, 97u, 7681u, 12289u, 40961u, 786433u, 8380417u}) {
    const std::uint64_t max_input = 4ull * q;
    const auto b = BarrettShiftAdd::generic(q, max_input);
    for (int i = 0; i < 1000; ++i) {
      const std::uint64_t a = rng.next_below(max_input + 1);
      EXPECT_EQ(b.reduce_canonical(a), a % q) << "q=" << q;
      EXPECT_LT(b.reduce(a), 2ull * q);
    }
  }
}

TEST(MontgomeryGeneric, MatchesPaperSpecConstants) {
  // The generic construction must derive the same q' the paper_spec
  // hardcodes (modulo representation).
  for (std::uint32_t q : kPaperModuli) {
    const auto paper = MontgomeryShiftAdd::paper_spec(q);
    const auto gen = MontgomeryShiftAdd::generic(q, paper.r_bits());
    EXPECT_EQ(gen.q_prime(), paper.q_prime()) << "q=" << q;
  }
}

TEST(MontgomeryGeneric, WorksForArbitraryOddModuli) {
  Xoshiro256 rng(43);
  for (std::uint32_t q : {17u, 97u, 40961u, 8380417u}) {
    const unsigned r_bits = bit_length(q) + 2;
    const auto m = MontgomeryShiftAdd::generic(q, r_bits);
    const auto r_mod_q = static_cast<std::uint32_t>(m.R() % q);
    for (int i = 0; i < 1000; ++i) {
      const std::uint64_t a = rng.next_below(m.max_input() + 1);
      EXPECT_EQ(mul_mod(m.reduce_canonical(a), r_mod_q, q), a % q);
    }
  }
}

TEST(BarrettMultiply, MatchesModulo) {
  Xoshiro256 rng(44);
  for (std::uint32_t q : kPaperModuli) {
    const BarrettMultiply b(q);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t a =
          rng.next_below(static_cast<std::uint64_t>(q) * q);
      EXPECT_EQ(b.reduce_canonical(a), a % q);
    }
  }
}

TEST(ShiftAddDecomposition, NafRoundTrip) {
  Xoshiro256 rng(45);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t c = rng.next_bits(40);
    const auto terms = naf_decompose(c);
    EXPECT_EQ(eval_shift_add(1, terms.data(), terms.size()), c);
    // NAF property: no two adjacent non-zero digits.
    for (std::size_t t = 1; t < terms.size(); ++t) {
      EXPECT_GE(terms[t].shift, terms[t - 1].shift + 2);
    }
  }
}

TEST(ShiftAddDecomposition, PaperConstantsAreThreeTerms) {
  // Algorithm 3 realises each constant with three shift-add terms; the
  // corrected constants keep that cost.
  for (std::uint32_t q : kPaperModuli) {
    EXPECT_EQ(BarrettShiftAdd::paper_spec(q).q_terms().size(), 3u);
    EXPECT_EQ(MontgomeryShiftAdd::paper_spec(q).qprime_terms().size(), 3u);
  }
}

}  // namespace
}  // namespace cryptopim::ntt
