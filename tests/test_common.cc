// Tests for the shared utilities (src/common/*): bit manipulation, the
// deterministic RNG, and the table/format helpers the bench harness
// renders the paper's tables with.
#include <gtest/gtest.h>

#include <sstream>

#include "common/bitutil.h"
#include "common/rng.h"
#include "common/table.h"

namespace cryptopim {
namespace {

TEST(BitUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(512));
  EXPECT_TRUE(is_pow2(1ull << 63));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1536));
}

TEST(BitUtil, Ilog2AndBitLength) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(512), 9u);
  EXPECT_EQ(ilog2(1023), 9u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(bit_length(0), 0u);
  EXPECT_EQ(bit_length(1), 1u);
  EXPECT_EQ(bit_length(7681), 13u);
  EXPECT_EQ(bit_length(786433), 20u);
}

TEST(BitUtil, BitReverse) {
  EXPECT_EQ(bit_reverse(0b001, 3), 0b100u);
  EXPECT_EQ(bit_reverse(0b110, 3), 0b011u);
  EXPECT_EQ(bit_reverse(1, 15), 1u << 14);
  // Involution over the full domain for a small width.
  for (std::uint64_t x = 0; x < 256; ++x) {
    EXPECT_EQ(bit_reverse(bit_reverse(x, 8), 8), x);
  }
}

TEST(BitUtil, SetBitPositions) {
  EXPECT_EQ(set_bit_positions(0), (std::vector<unsigned>{}));
  EXPECT_EQ(set_bit_positions(0b1011), (std::vector<unsigned>{0, 1, 3}));
  EXPECT_EQ(set_bit_positions(1ull << 63), (std::vector<unsigned>{63}));
}

TEST(BitUtil, NafDecomposeKnownValues) {
  // 7 = 8 - 1 in NAF.
  const auto t7 = naf_decompose(7);
  ASSERT_EQ(t7.size(), 2u);
  EXPECT_EQ(eval_shift_add(1, t7.data(), t7.size()), 7u);
  // 12289 = 2^14 - 2^12 + 1 canonically.
  const auto t = naf_decompose(12289);
  EXPECT_EQ(eval_shift_add(1, t.data(), t.size()), 12289u);
  EXPECT_EQ(t.size(), 3u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Xoshiro256 c(124);
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, NextBelowInRangeAndWellSpread) {
  Xoshiro256 rng(9);
  std::size_t buckets[10] = {};
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++buckets[v];
  }
  for (const auto b : buckets) {
    EXPECT_GT(b, 800u);
    EXPECT_LT(b, 1200u);
  }
}

TEST(Rng, NextBitsMasks) {
  Xoshiro256 rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.next_bits(5), 32u);
    EXPECT_LT(rng.next_bits(1), 2u);
  }
}

TEST(Format, Numbers) {
  EXPECT_EQ(fmt_f(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_f(-1.5, 1), "-1.5");
  EXPECT_EQ(fmt_i(0), "0");
  EXPECT_EQ(fmt_i(999), "999");
  EXPECT_EQ(fmt_i(553311), "553,311");
  EXPECT_EQ(fmt_i(1234567890), "1,234,567,890");
  EXPECT_EQ(fmt_x(12.72, 1), "12.7x");
  EXPECT_EQ(fmt_pct(0.29, 1), "+29.0%");
  EXPECT_EQ(fmt_pct(-0.052, 1), "-5.2%");
}

TEST(Format, TimeUnits) {
  EXPECT_EQ(fmt_time_s(1.5), "1.50 s");
  EXPECT_EQ(fmt_time_s(68.67e-6), "68.67 us");
  EXPECT_EQ(fmt_time_s(1.1e-9), "1.10 ns");
  EXPECT_EQ(fmt_time_s(12.76e-3), "12.76 ms");
}

TEST(Table, AlignsAndSeparates) {
  Table t({"a", "bbbb"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, two rows, four rules.
  EXPECT_NE(out.find("| a   | bbbb |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4    |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"x", "y", "z"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);  // must not crash; missing cells render empty
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Table, CsvExport) {
  Table t({"n", "latency"});
  t.add_row({"256", "68.67"});
  t.add_row({"512", "75.90"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "n,latency\n256,68.67\n512,75.90\n");
}

}  // namespace
}  // namespace cryptopim
