// Tests for the BGV-style homomorphic encryption layer (src/he/bgv.*):
// encryption round trips, homomorphic addition and multiplication (tensor
// + relinearization), noise budget behaviour, and the pluggable-multiplier
// hook the accelerator integration relies on.
#include "he/bgv.h"

#include <gtest/gtest.h>

#include "ntt/modular.h"
#include "ntt/rns.h"
#include "runtime/backend.h"
#include "runtime/protocol_ops.h"
#include "sim/simulator.h"

namespace cryptopim::he {
namespace {

ntt::Poly random_plaintext(std::uint32_t n, std::uint32_t t,
                           Xoshiro256& rng) {
  ntt::Poly m(n);
  for (auto& c : m) c = static_cast<std::uint32_t>(rng.next_below(t));
  return m;
}

TEST(Bgv, EncryptDecryptRoundTrip) {
  BgvContext ctx(BgvParams::paper_small(), 1);
  ctx.keygen();
  Xoshiro256 rng(2);
  for (int rep = 0; rep < 5; ++rep) {
    const auto m = random_plaintext(256, 2, rng);
    EXPECT_EQ(ctx.decrypt(ctx.encrypt(m)), m);
  }
}

TEST(Bgv, LargerPlaintextModulus) {
  BgvParams p;
  p.t = 257;  // additions only at this size
  BgvContext ctx(p, 3);
  ctx.keygen();
  Xoshiro256 rng(4);
  const auto m = random_plaintext(p.n, p.t, rng);
  EXPECT_EQ(ctx.decrypt(ctx.encrypt(m)), m);
}

TEST(Bgv, HomomorphicAddition) {
  BgvContext ctx(BgvParams::paper_small(), 5);
  ctx.keygen();
  Xoshiro256 rng(6);
  const auto a = random_plaintext(256, 2, rng);
  const auto b = random_plaintext(256, 2, rng);
  const auto sum = ctx.add(ctx.encrypt(a), ctx.encrypt(b));
  // (a + b) mod t, coefficient-wise.
  ntt::Poly want(256);
  for (std::size_t i = 0; i < 256; ++i) want[i] = (a[i] + b[i]) % 2;
  EXPECT_EQ(ctx.decrypt(sum), want);
}

TEST(Bgv, ManyAdditionsAccumulate) {
  BgvParams p;
  p.t = 97;
  BgvContext ctx(p, 7);
  ctx.keygen();
  Xoshiro256 rng(8);
  ntt::Poly acc_plain(p.n, 0);
  auto acc = ctx.encrypt(acc_plain);
  for (int k = 0; k < 50; ++k) {
    const auto m = random_plaintext(p.n, p.t, rng);
    for (std::size_t i = 0; i < p.n; ++i) {
      acc_plain[i] = (acc_plain[i] + m[i]) % p.t;
    }
    acc = ctx.add(acc, ctx.encrypt(m));
  }
  EXPECT_EQ(ctx.decrypt(acc), acc_plain);
}

ntt::Poly plain_product(const ntt::Poly& a, const ntt::Poly& b,
                        std::uint32_t t) {
  // Negacyclic product of the plaintexts, mod t.
  const auto wide = ntt::schoolbook_negacyclic(a, b, 786433);
  ntt::Poly out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::int64_t c = ntt::centered(wide[i], 786433);
    out[i] = static_cast<std::uint32_t>(((c % t) + t) % t);
  }
  return out;
}

TEST(Bgv, HomomorphicMultiplicationDegree2) {
  BgvContext ctx(BgvParams::paper_small(), 9);
  ctx.keygen();
  Xoshiro256 rng(10);
  const auto a = random_plaintext(256, 2, rng);
  const auto b = random_plaintext(256, 2, rng);
  const auto prod = ctx.multiply(ctx.encrypt(a), ctx.encrypt(b));
  EXPECT_EQ(ctx.decrypt(prod), plain_product(a, b, 2));
}

TEST(Bgv, RelinearizationPreservesProduct) {
  BgvContext ctx(BgvParams::paper_small(), 11);
  ctx.keygen();
  Xoshiro256 rng(12);
  const auto a = random_plaintext(256, 2, rng);
  const auto b = random_plaintext(256, 2, rng);
  const auto relined = ctx.relinearize(ctx.multiply(ctx.encrypt(a),
                                                    ctx.encrypt(b)));
  EXPECT_EQ(ctx.decrypt(relined), plain_product(a, b, 2));
}

TEST(Bgv, MultiplyThenAdd) {
  BgvContext ctx(BgvParams::paper_small(), 13);
  ctx.keygen();
  Xoshiro256 rng(14);
  const auto a = random_plaintext(256, 2, rng);
  const auto b = random_plaintext(256, 2, rng);
  const auto c = random_plaintext(256, 2, rng);
  // a*b + c, one multiplicative level.
  const auto result =
      ctx.add(ctx.relinearize(ctx.multiply(ctx.encrypt(a), ctx.encrypt(b))),
              ctx.encrypt(c));
  ntt::Poly want = plain_product(a, b, 2);
  for (std::size_t i = 0; i < want.size(); ++i) {
    want[i] = (want[i] + c[i]) % 2;
  }
  EXPECT_EQ(ctx.decrypt(result), want);
}

TEST(Bgv, NoiseBudgetShrinksWithOperations) {
  BgvContext ctx(BgvParams::paper_small(), 15);
  ctx.keygen();
  Xoshiro256 rng(16);
  const auto a = random_plaintext(256, 2, rng);
  const auto b = random_plaintext(256, 2, rng);
  const auto ca = ctx.encrypt(a);
  const double fresh = ctx.noise_budget_bits(ca);
  EXPECT_GT(fresh, 8.0);  // comfortable margin at these parameters
  const auto prod = ctx.relinearize(ctx.multiply(ca, ctx.encrypt(b)));
  const double after = ctx.noise_budget_bits(prod);
  EXPECT_LT(after, fresh);
  EXPECT_GT(after, 0.0);  // still decryptable
}

TEST(Bgv, MultiplicationsAreCounted) {
  BgvContext ctx(BgvParams::paper_small(), 17);
  ctx.keygen();
  const auto after_keygen = ctx.multiplications();
  EXPECT_GT(after_keygen, 0u);  // s^2 and the relin key
  Xoshiro256 rng(18);
  const auto a = random_plaintext(256, 2, rng);
  (void)ctx.encrypt(a);
  EXPECT_EQ(ctx.multiplications(), after_keygen + 1);  // a*s
}

TEST(Bgv, PluggableMultiplierIsUsed) {
  BgvContext ctx(BgvParams::paper_small(), 19);
  std::uint64_t hook_calls = 0;
  const ntt::GsNttEngine eng(ctx.ring());
  ctx.set_multiplier([&](const ntt::Poly& x, const ntt::Poly& y) {
    ++hook_calls;
    return eng.negacyclic_multiply(x, y);
  });
  ctx.keygen();
  Xoshiro256 rng(20);
  const auto m = random_plaintext(256, 2, rng);
  EXPECT_EQ(ctx.decrypt(ctx.encrypt(m)), m);
  EXPECT_EQ(hook_calls, ctx.multiplications());
}

TEST(Bgv, RunsOnSimulatedCryptoPim) {
  // The full HE flow with every ring multiplication in simulated
  // crossbars.
  BgvContext ctx(BgvParams::paper_small(), 21);
  sim::CryptoPimSimulator simu(ctx.ring());
  ctx.set_multiplier([&simu](const ntt::Poly& x, const ntt::Poly& y) {
    return simu.multiply(x, y);
  });
  ctx.keygen();
  Xoshiro256 rng(22);
  const auto a = random_plaintext(256, 2, rng);
  const auto b = random_plaintext(256, 2, rng);
  const auto prod = ctx.relinearize(ctx.multiply(ctx.encrypt(a),
                                                 ctx.encrypt(b)));
  EXPECT_EQ(ctx.decrypt(prod), plain_product(a, b, 2));
}

TEST(Bgv, RnsLimbMultiplyMatchesEngineBitExact) {
  // The per-RNS-limb multiply the protocol serving path fans across
  // lanes: decompose mod each small prime, one word-backend NTT multiply
  // per limb, CRT reconstruct — must equal the direct engine product.
  const BgvParams params = BgvParams::paper_small();
  const ntt::GsNttEngine eng(ntt::NttParams::make(params.n, params.q));
  const auto backend = runtime::make_backend("word");
  ASSERT_TRUE(backend && backend->functional());
  const ntt::RnsBasis& basis = runtime::bgv_rns_basis();
  Xoshiro256 rng(31);
  for (int rep = 0; rep < 4; ++rep) {
    ntt::Poly a(params.n), b(params.n);
    for (auto& c : a) c = static_cast<std::uint32_t>(rng.next_below(params.q));
    for (auto& c : b) c = static_cast<std::uint32_t>(rng.next_below(params.q));
    EXPECT_EQ(runtime::rns_limb_multiply(*backend, basis, params.q, a, b),
              eng.negacyclic_multiply(a, b));
  }
}

TEST(Bgv, MultiplyThroughWordBackendMatchesHostBitExact) {
  // The BGV tensor multiply with every ring multiplication through the
  // RNS limb fan-out on the word backend, against a same-seed pure-host
  // context: identical keys and randomness, so d0/d1/d2 must match bit
  // for bit and the product must decrypt to the plaintext product.
  const BgvParams params = BgvParams::paper_small();
  Xoshiro256 rng(33);
  const auto ma = random_plaintext(params.n, params.t, rng);
  const auto mb = random_plaintext(params.n, params.t, rng);

  BgvContext accel(params, 34);
  accel.keygen();
  const Ciphertext ca = accel.encrypt(ma);
  const Ciphertext cb = accel.encrypt(mb);
  const auto backend = runtime::make_backend("word");
  ASSERT_TRUE(backend && backend->functional());
  const ntt::RnsBasis& basis = runtime::bgv_rns_basis();
  const std::uint32_t q = params.q;
  accel.set_multiplier(
      [&backend, &basis, q](const ntt::Poly& x, const ntt::Poly& y) {
        return runtime::rns_limb_multiply(*backend, basis, q, x, y);
      });
  const Ciphertext2 prod = accel.multiply(ca, cb);

  BgvContext hostctx(params, 34);
  hostctx.keygen();
  const Ciphertext hca = hostctx.encrypt(ma);
  const Ciphertext hcb = hostctx.encrypt(mb);
  const Ciphertext2 hprod = hostctx.multiply(hca, hcb);
  EXPECT_EQ(prod.d0, hprod.d0);
  EXPECT_EQ(prod.d1, hprod.d1);
  EXPECT_EQ(prod.d2, hprod.d2);
  EXPECT_EQ(accel.decrypt(prod), plain_product(ma, mb, params.t));
}

TEST(Bgv, ThresholdSharesRecombineToTheJointDecryption) {
  // K-party threshold decryption by linearity: partial decryptions of
  // each share sum to the joint-secret decryption, for any K in range.
  const BgvParams params = BgvParams::paper_small();
  for (unsigned k : {2u, 3u, 7u}) {
    BgvContext ctx(params, 40 + k);
    const std::vector<ntt::Poly> shares = ctx.keygen_threshold(k);
    ASSERT_EQ(shares.size(), k);
    Xoshiro256 rng(50 + k);
    const auto m = random_plaintext(params.n, params.t, rng);
    const Ciphertext ct = ctx.encrypt(m);
    std::vector<ntt::Poly> partials;
    for (const auto& s : shares) {
      partials.push_back(ctx.partial_decryption(ct, s));
    }
    EXPECT_EQ(ctx.aggregate_decrypt(ct, partials), m);
    EXPECT_EQ(ctx.decrypt(ct), m);
  }
}

TEST(Bgv, InvalidParametersThrow) {
  BgvParams bad;
  bad.t = 786433;  // not coprime to q
  EXPECT_THROW(BgvContext(bad, 1), std::invalid_argument);
  BgvParams bad_base;
  bad_base.relin_base = 1;
  EXPECT_THROW(BgvContext(bad_base, 1), std::invalid_argument);
}

}  // namespace
}  // namespace cryptopim::he
