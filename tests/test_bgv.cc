// Tests for the BGV-style homomorphic encryption layer (src/he/bgv.*):
// encryption round trips, homomorphic addition and multiplication (tensor
// + relinearization), noise budget behaviour, and the pluggable-multiplier
// hook the accelerator integration relies on.
#include "he/bgv.h"

#include <gtest/gtest.h>

#include "ntt/modular.h"
#include "sim/simulator.h"

namespace cryptopim::he {
namespace {

ntt::Poly random_plaintext(std::uint32_t n, std::uint32_t t,
                           Xoshiro256& rng) {
  ntt::Poly m(n);
  for (auto& c : m) c = static_cast<std::uint32_t>(rng.next_below(t));
  return m;
}

TEST(Bgv, EncryptDecryptRoundTrip) {
  BgvContext ctx(BgvParams::paper_small(), 1);
  ctx.keygen();
  Xoshiro256 rng(2);
  for (int rep = 0; rep < 5; ++rep) {
    const auto m = random_plaintext(256, 2, rng);
    EXPECT_EQ(ctx.decrypt(ctx.encrypt(m)), m);
  }
}

TEST(Bgv, LargerPlaintextModulus) {
  BgvParams p;
  p.t = 257;  // additions only at this size
  BgvContext ctx(p, 3);
  ctx.keygen();
  Xoshiro256 rng(4);
  const auto m = random_plaintext(p.n, p.t, rng);
  EXPECT_EQ(ctx.decrypt(ctx.encrypt(m)), m);
}

TEST(Bgv, HomomorphicAddition) {
  BgvContext ctx(BgvParams::paper_small(), 5);
  ctx.keygen();
  Xoshiro256 rng(6);
  const auto a = random_plaintext(256, 2, rng);
  const auto b = random_plaintext(256, 2, rng);
  const auto sum = ctx.add(ctx.encrypt(a), ctx.encrypt(b));
  // (a + b) mod t, coefficient-wise.
  ntt::Poly want(256);
  for (std::size_t i = 0; i < 256; ++i) want[i] = (a[i] + b[i]) % 2;
  EXPECT_EQ(ctx.decrypt(sum), want);
}

TEST(Bgv, ManyAdditionsAccumulate) {
  BgvParams p;
  p.t = 97;
  BgvContext ctx(p, 7);
  ctx.keygen();
  Xoshiro256 rng(8);
  ntt::Poly acc_plain(p.n, 0);
  auto acc = ctx.encrypt(acc_plain);
  for (int k = 0; k < 50; ++k) {
    const auto m = random_plaintext(p.n, p.t, rng);
    for (std::size_t i = 0; i < p.n; ++i) {
      acc_plain[i] = (acc_plain[i] + m[i]) % p.t;
    }
    acc = ctx.add(acc, ctx.encrypt(m));
  }
  EXPECT_EQ(ctx.decrypt(acc), acc_plain);
}

ntt::Poly plain_product(const ntt::Poly& a, const ntt::Poly& b,
                        std::uint32_t t) {
  // Negacyclic product of the plaintexts, mod t.
  const auto wide = ntt::schoolbook_negacyclic(a, b, 786433);
  ntt::Poly out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::int64_t c = ntt::centered(wide[i], 786433);
    out[i] = static_cast<std::uint32_t>(((c % t) + t) % t);
  }
  return out;
}

TEST(Bgv, HomomorphicMultiplicationDegree2) {
  BgvContext ctx(BgvParams::paper_small(), 9);
  ctx.keygen();
  Xoshiro256 rng(10);
  const auto a = random_plaintext(256, 2, rng);
  const auto b = random_plaintext(256, 2, rng);
  const auto prod = ctx.multiply(ctx.encrypt(a), ctx.encrypt(b));
  EXPECT_EQ(ctx.decrypt(prod), plain_product(a, b, 2));
}

TEST(Bgv, RelinearizationPreservesProduct) {
  BgvContext ctx(BgvParams::paper_small(), 11);
  ctx.keygen();
  Xoshiro256 rng(12);
  const auto a = random_plaintext(256, 2, rng);
  const auto b = random_plaintext(256, 2, rng);
  const auto relined = ctx.relinearize(ctx.multiply(ctx.encrypt(a),
                                                    ctx.encrypt(b)));
  EXPECT_EQ(ctx.decrypt(relined), plain_product(a, b, 2));
}

TEST(Bgv, MultiplyThenAdd) {
  BgvContext ctx(BgvParams::paper_small(), 13);
  ctx.keygen();
  Xoshiro256 rng(14);
  const auto a = random_plaintext(256, 2, rng);
  const auto b = random_plaintext(256, 2, rng);
  const auto c = random_plaintext(256, 2, rng);
  // a*b + c, one multiplicative level.
  const auto result =
      ctx.add(ctx.relinearize(ctx.multiply(ctx.encrypt(a), ctx.encrypt(b))),
              ctx.encrypt(c));
  ntt::Poly want = plain_product(a, b, 2);
  for (std::size_t i = 0; i < want.size(); ++i) {
    want[i] = (want[i] + c[i]) % 2;
  }
  EXPECT_EQ(ctx.decrypt(result), want);
}

TEST(Bgv, NoiseBudgetShrinksWithOperations) {
  BgvContext ctx(BgvParams::paper_small(), 15);
  ctx.keygen();
  Xoshiro256 rng(16);
  const auto a = random_plaintext(256, 2, rng);
  const auto b = random_plaintext(256, 2, rng);
  const auto ca = ctx.encrypt(a);
  const double fresh = ctx.noise_budget_bits(ca);
  EXPECT_GT(fresh, 8.0);  // comfortable margin at these parameters
  const auto prod = ctx.relinearize(ctx.multiply(ca, ctx.encrypt(b)));
  const double after = ctx.noise_budget_bits(prod);
  EXPECT_LT(after, fresh);
  EXPECT_GT(after, 0.0);  // still decryptable
}

TEST(Bgv, MultiplicationsAreCounted) {
  BgvContext ctx(BgvParams::paper_small(), 17);
  ctx.keygen();
  const auto after_keygen = ctx.multiplications();
  EXPECT_GT(after_keygen, 0u);  // s^2 and the relin key
  Xoshiro256 rng(18);
  const auto a = random_plaintext(256, 2, rng);
  (void)ctx.encrypt(a);
  EXPECT_EQ(ctx.multiplications(), after_keygen + 1);  // a*s
}

TEST(Bgv, PluggableMultiplierIsUsed) {
  BgvContext ctx(BgvParams::paper_small(), 19);
  std::uint64_t hook_calls = 0;
  const ntt::GsNttEngine eng(ctx.ring());
  ctx.set_multiplier([&](const ntt::Poly& x, const ntt::Poly& y) {
    ++hook_calls;
    return eng.negacyclic_multiply(x, y);
  });
  ctx.keygen();
  Xoshiro256 rng(20);
  const auto m = random_plaintext(256, 2, rng);
  EXPECT_EQ(ctx.decrypt(ctx.encrypt(m)), m);
  EXPECT_EQ(hook_calls, ctx.multiplications());
}

TEST(Bgv, RunsOnSimulatedCryptoPim) {
  // The full HE flow with every ring multiplication in simulated
  // crossbars.
  BgvContext ctx(BgvParams::paper_small(), 21);
  sim::CryptoPimSimulator simu(ctx.ring());
  ctx.set_multiplier([&simu](const ntt::Poly& x, const ntt::Poly& y) {
    return simu.multiply(x, y);
  });
  ctx.keygen();
  Xoshiro256 rng(22);
  const auto a = random_plaintext(256, 2, rng);
  const auto b = random_plaintext(256, 2, rng);
  const auto prod = ctx.relinearize(ctx.multiply(ctx.encrypt(a),
                                                 ctx.encrypt(b)));
  EXPECT_EQ(ctx.decrypt(prod), plain_product(a, b, 2));
}

TEST(Bgv, InvalidParametersThrow) {
  BgvParams bad;
  bad.t = 786433;  // not coprime to q
  EXPECT_THROW(BgvContext(bad, 1), std::invalid_argument);
  BgvParams bad_base;
  bad_base.relin_base = 1;
  EXPECT_THROW(BgvContext(bad_base, 1), std::invalid_argument);
}

}  // namespace
}  // namespace cryptopim::he
