// Tests for the Fig. 6 PIM baselines (src/baselines/pim_baselines.*): the
// BP-1 -> BP-2 -> BP-3 -> CryptoPIM improvement cascade must reproduce the
// paper's ordering and factor bands.
#include "baselines/pim_baselines.h"

#include <gtest/gtest.h>

#include "model/paper_constants.h"
#include "ntt/params.h"

namespace cryptopim::baselines {
namespace {

TEST(RectMult, SquareCaseMatchesPublishedFormulas) {
  EXPECT_EQ(mult_cycles_rect_cryptopim(16, 16), 1483u);
  EXPECT_EQ(mult_cycles_rect_cryptopim(32, 32), 6291u);
  EXPECT_EQ(mult_cycles_rect_hajali(16, 16), 3110u);
  EXPECT_EQ(mult_cycles_rect_hajali(32, 32), 12870u);
}

TEST(RectMult, CryptoPimAlwaysFaster) {
  for (unsigned w : {8u, 16u, 32u, 64u}) {
    for (unsigned v : {8u, 16u, 32u}) {
      EXPECT_LT(mult_cycles_rect_cryptopim(w, v),
                mult_cycles_rect_hajali(w, v));
    }
  }
}

class BaselineCascade : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BaselineCascade, StrictOrdering) {
  const std::uint32_t n = GetParam();
  const double bp1 = evaluate_baseline(PimBaseline::kBp1, n).latency_us;
  const double bp2 = evaluate_baseline(PimBaseline::kBp2, n).latency_us;
  const double bp3 = evaluate_baseline(PimBaseline::kBp3, n).latency_us;
  const double cp = evaluate_baseline(PimBaseline::kCryptoPim, n).latency_us;
  EXPECT_GT(bp1, bp2);
  EXPECT_GT(bp2, bp3);
  EXPECT_GT(bp3, cp);
}

TEST_P(BaselineCascade, FactorBands) {
  // Paper averages: BP-2 = 1.9x over BP-1 is reported the other way
  // around — BP-2 is 1.9x *faster*; BP-3 5.5x faster than BP-2; CryptoPIM
  // 1.2x faster than BP-3; 12.7x total. Our reconstruction lands at
  // ~2.0x / 3.1-4.5x / 1.2-1.4x / 8-11x (see EXPERIMENTS.md).
  const std::uint32_t n = GetParam();
  const double bp1 = evaluate_baseline(PimBaseline::kBp1, n).latency_us;
  const double bp2 = evaluate_baseline(PimBaseline::kBp2, n).latency_us;
  const double bp3 = evaluate_baseline(PimBaseline::kBp3, n).latency_us;
  const double cp = evaluate_baseline(PimBaseline::kCryptoPim, n).latency_us;
  EXPECT_NEAR(bp1 / bp2, model::paper::kBp1OverBp2, 0.4) << "n=" << n;
  EXPECT_GT(bp2 / bp3, 2.5) << "n=" << n;
  EXPECT_LT(bp2 / bp3, model::paper::kBp2OverBp3 + 1.0) << "n=" << n;
  EXPECT_GT(bp3 / cp, 1.05) << "n=" << n;
  EXPECT_LT(bp3 / cp, 1.6) << "n=" << n;
  EXPECT_GT(bp1 / cp, 7.0) << "n=" << n;
  EXPECT_LT(bp1 / cp, model::paper::kBp1OverCryptoPim + 2.0) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, BaselineCascade,
                         ::testing::ValuesIn(ntt::paper_degrees()));

TEST(BaselineLatencySets, ReductionStylesDiffer) {
  const auto bp1 = baseline_latency(PimBaseline::kBp1, 1024);
  const auto bp2 = baseline_latency(PimBaseline::kBp2, 1024);
  const auto bp3 = baseline_latency(PimBaseline::kBp3, 1024);
  const auto cp = baseline_latency(PimBaseline::kCryptoPim, 1024);
  // BP-1/BP-2 pay multiplication-based reductions.
  EXPECT_GT(bp1.barrett, 10 * cp.barrett);
  EXPECT_GT(bp2.barrett, 5 * cp.barrett);
  // BP-3's untrimmed chains sit between.
  EXPECT_GT(bp3.barrett, cp.barrett);
  EXPECT_LT(bp3.barrett, bp2.barrett);
  // Adds/subs/transfers identical across the board.
  EXPECT_EQ(bp1.add, cp.add);
  EXPECT_EQ(bp1.sub, cp.sub);
  EXPECT_EQ(bp1.transfer, cp.transfer);
  // BP-1's multiplier is the [35] one; the rest use CryptoPIM's.
  EXPECT_GT(bp1.mult, bp2.mult);
  EXPECT_EQ(bp2.mult, cp.mult);
}

TEST(BaselineNames, Strings) {
  EXPECT_STREQ(to_string(PimBaseline::kBp1), "BP-1");
  EXPECT_STREQ(to_string(PimBaseline::kCryptoPim), "CryptoPIM");
  EXPECT_EQ(all_pim_baselines().size(), 4u);
}

}  // namespace
}  // namespace cryptopim::baselines
