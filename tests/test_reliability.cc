// Reliability layer: fault model determinism, Freivalds verification,
// program-verify detection, retry/remap recovery, chip degradation, and
// campaign reproducibility.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "arch/chip.h"
#include "common/rng.h"
#include "ntt/ntt.h"
#include "ntt/params.h"
#include "reliability/campaign.h"
#include "reliability/fault_model.h"
#include "reliability/manager.h"
#include "reliability/verifier.h"
#include "sim/pipelined.h"
#include "sim/simulator.h"

namespace cryptopim::reliability {
namespace {

ntt::Poly random_poly(std::uint32_t n, std::uint32_t q, Xoshiro256& rng) {
  ntt::Poly p(n);
  for (auto& c : p) c = static_cast<std::uint32_t>(rng.next_below(q));
  return p;
}

// ---------------------------------------------------------------------------
// FaultModel

TEST(FaultModel, StuckFaultsAreAPureFunctionOfSeedAndBlock) {
  FaultConfig cfg;
  cfg.stuck_rate = 1e-4;
  cfg.seed = 99;
  FaultModel m1(cfg), m2(cfg);
  for (std::uint32_t id : {0u, 1u, 63u, 64u, 1000u}) {
    const auto f1 = m1.faults_for_block(id);
    const auto f2 = m2.faults_for_block(id);
    ASSERT_EQ(f1.size(), f2.size());
    for (std::size_t i = 0; i < f1.size(); ++i) {
      EXPECT_EQ(f1[i].col, f2[i].col);
      EXPECT_EQ(f1[i].row, f2[i].row);
      EXPECT_EQ(f1[i].value, f2[i].value);
    }
    // Repeated queries of the same model agree too (no hidden state).
    const auto f3 = m1.faults_for_block(id);
    EXPECT_EQ(f1.size(), f3.size());
  }
}

TEST(FaultModel, DifferentSeedsDifferentFaults) {
  FaultConfig a, b;
  a.stuck_rate = b.stuck_rate = 1e-4;
  a.seed = 1;
  b.seed = 2;
  FaultModel ma(a), mb(b);
  // With ~26 expected faults per block, identical placements across 8
  // blocks would be astronomically unlikely.
  bool any_diff = false;
  for (std::uint32_t id = 0; id < 8 && !any_diff; ++id) {
    const auto fa = ma.faults_for_block(id);
    const auto fb = mb.faults_for_block(id);
    if (fa.size() != fb.size()) {
      any_diff = true;
      break;
    }
    for (std::size_t i = 0; i < fa.size(); ++i) {
      if (fa[i].col != fb[i].col || fa[i].row != fb[i].row) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultModel, PoissonCountTracksRate) {
  FaultConfig cfg;
  cfg.stuck_rate = 1e-4;  // expect ~26.2 faults per 512x512 block
  cfg.seed = 5;
  FaultModel m(cfg);
  std::uint64_t total = 0;
  const unsigned kBlocks = 64;
  for (std::uint32_t id = 0; id < kBlocks; ++id) {
    total += m.faults_for_block(id).size();
  }
  const double mean = static_cast<double>(total) / kBlocks;
  EXPECT_GT(mean, 26.2 * 0.7);
  EXPECT_LT(mean, 26.2 * 1.3);
}

TEST(FaultModel, ZeroRateIsFaultFree) {
  FaultModel m(FaultConfig{});
  for (std::uint32_t id = 0; id < 16; ++id) {
    EXPECT_TRUE(m.faults_for_block(id).empty());
  }
  EXPECT_FALSE(m.transient_flip());  // rate 0 never flips
}

TEST(FaultModel, WearOutGrowsAStuckFault) {
  FaultConfig cfg;
  cfg.endurance_limit = 10;
  FaultModel m(cfg);
  EXPECT_TRUE(m.faults_for_block(3).empty());
  bool crossed = false;
  for (int i = 0; i < 10; ++i) crossed = m.note_wear(3, 7) || crossed;
  EXPECT_TRUE(crossed);
  const auto faults = m.faults_for_block(3);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].col, 7u);
  // Further wear on the same column does not duplicate the fault.
  m.note_wear(3, 7, 100);
  EXPECT_EQ(m.faults_for_block(3).size(), 1u);
}

TEST(FaultModel, TargetedFaultsStack) {
  FaultModel m(FaultConfig{});
  m.add_stuck_at(2, 11, 5, true);
  m.add_stuck_at(2, 12, 6, false);
  EXPECT_EQ(m.faults_for_block(2).size(), 2u);
  EXPECT_TRUE(m.faults_for_block(1).empty());
}

// ---------------------------------------------------------------------------
// ResultVerifier (Freivalds)

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest()
      : params_(ntt::NttParams::for_degree(256)), engine_(params_) {}
  ntt::NttParams params_;
  ntt::GsNttEngine engine_;
};

TEST_F(VerifierTest, AcceptsCorrectProducts) {
  ResultVerifier v(params_, VerifyConfig{2, 7});
  Xoshiro256 rng(3);
  for (int i = 0; i < 20; ++i) {
    const auto a = random_poly(params_.n, params_.q, rng);
    const auto b = random_poly(params_.n, params_.q, rng);
    const auto c = engine_.negacyclic_multiply(a, b);
    EXPECT_TRUE(v.check(a, b, c));
  }
  EXPECT_EQ(v.failures(), 0u);
  EXPECT_EQ(v.checks(), 20u);
}

TEST_F(VerifierTest, CatchesSingleCoefficientCorruption) {
  // e = eps * x^k never vanishes at a root of x^n + 1 (roots are nonzero),
  // so one corrupted coefficient is caught by every evaluation point.
  ResultVerifier v(params_, VerifyConfig{1, 11});
  Xoshiro256 rng(4);
  for (int i = 0; i < 20; ++i) {
    const auto a = random_poly(params_.n, params_.q, rng);
    const auto b = random_poly(params_.n, params_.q, rng);
    auto c = engine_.negacyclic_multiply(a, b);
    const auto k = static_cast<std::size_t>(rng.next_below(params_.n));
    c[k] = (c[k] + 1 + static_cast<std::uint32_t>(
                            rng.next_below(params_.q - 1))) % params_.q;
    EXPECT_FALSE(v.check(a, b, c)) << "corruption at x^" << k << " escaped";
  }
}

TEST_F(VerifierTest, CatchesDenseCorruption) {
  ResultVerifier v(params_, VerifyConfig{2, 13});
  Xoshiro256 rng(5);
  for (int i = 0; i < 20; ++i) {
    const auto a = random_poly(params_.n, params_.q, rng);
    const auto b = random_poly(params_.n, params_.q, rng);
    const auto c = random_poly(params_.n, params_.q, rng);  // garbage
    EXPECT_FALSE(v.check(a, b, c));
  }
}

TEST_F(VerifierTest, HornerEvalMatchesDirectSum) {
  // p(x) = 3 + 2x + x^2 at x = 10 mod q.
  const ntt::Poly p = {3, 2, 1};
  EXPECT_EQ(ResultVerifier::eval(p, 10, params_.q), (3 + 20 + 100) % params_.q);
  EXPECT_EQ(ResultVerifier::eval(ntt::Poly{}, 10, params_.q), 0u);
}

TEST_F(VerifierTest, CycleCostScalesWithPointsAndStaysUnderTenPercent) {
  ResultVerifier v1(params_, VerifyConfig{1, 1});
  ResultVerifier v2(params_, VerifyConfig{2, 1});
  EXPECT_EQ(v2.cycles_per_check(), 2 * v1.cycles_per_check());

  // Acceptance bound: t = 2 verification under 10% of fault-free wall
  // cycles, at both the small and the large paper degree.
  for (const std::uint32_t n : {256u, 1024u}) {
    const auto params = ntt::NttParams::for_degree(n);
    sim::CryptoPimSimulator simu(params);
    Xoshiro256 rng(9);
    const auto a = random_poly(n, params.q, rng);
    const auto b = random_poly(n, params.q, rng);
    simu.multiply(a, b);
    const auto wall = simu.report().wall_cycles;
    ResultVerifier v(params, VerifyConfig{2, 1});
    EXPECT_LT(v.cycles_per_check() * 10, wall)
        << "verify overhead >= 10% at n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Simulator integration: detection, recovery, zero-cost-when-off

class SimRecoveryTest : public ::testing::Test {
 protected:
  SimRecoveryTest()
      : params_(ntt::NttParams::for_degree(256)), engine_(params_) {}

  ntt::Poly multiply_checked(sim::CryptoPimSimulator& simu,
                             std::uint64_t input_seed) {
    Xoshiro256 rng(input_seed);
    a_ = random_poly(params_.n, params_.q, rng);
    b_ = random_poly(params_.n, params_.q, rng);
    want_ = engine_.negacyclic_multiply(a_, b_);
    return simu.multiply(a_, b_);
  }

  ntt::NttParams params_;
  ntt::GsNttEngine engine_;
  ntt::Poly a_, b_, want_;
};

TEST_F(SimRecoveryTest, NoManagerMeansLegacyCyclesAndEmptyLedger) {
  sim::CryptoPimSimulator simu(params_);
  const auto got = multiply_checked(simu, 7);
  EXPECT_EQ(got, want_);
  // Pinned: the reliability layer must not perturb the fault-free
  // cycle model. This is the pre-reliability wall_cycles value for
  // n = 256, q = 7681.
  EXPECT_EQ(simu.report().wall_cycles, 44321u);
  EXPECT_FALSE(simu.report().reliability.enabled);
  EXPECT_EQ(simu.report().reliability.overhead_cycles(), 0u);
}

TEST(SimBaseline, WallCyclesPinnedAcrossDegreesWithoutManager) {
  // Pre-reliability wall_cycles for the other paper degrees the fault
  // campaign sweeps: the rel_ == nullptr path must stay exactly legacy.
  const struct {
    std::uint32_t n;
    std::uint64_t wall;
  } pins[] = {{512, 54716}, {1024, 60096}};
  for (const auto& pin : pins) {
    const auto params = ntt::NttParams::for_degree(pin.n);
    sim::CryptoPimSimulator simu(params);
    Xoshiro256 rng(1);
    const auto a = random_poly(pin.n, params.q, rng);
    const auto b = random_poly(pin.n, params.q, rng);
    simu.multiply(a, b);
    EXPECT_EQ(simu.report().wall_cycles, pin.wall) << "n=" << pin.n;
  }
}

TEST_F(SimRecoveryTest, FaultFreeManagerVerifiesFirstAttempt) {
  ReliabilityConfig rc;
  rc.verify.points = 2;
  ReliabilityManager rm(rc, params_);
  sim::CryptoPimSimulator simu(params_);
  simu.set_reliability(&rm);
  const auto got = multiply_checked(simu, 7);
  EXPECT_EQ(got, want_);
  const auto& s = simu.report().reliability;
  EXPECT_TRUE(s.enabled);
  EXPECT_TRUE(s.verified);
  EXPECT_EQ(s.attempts, 1u);
  EXPECT_EQ(s.faults_planted, 0u);
  EXPECT_EQ(s.verify_checks, 1u);
  EXPECT_EQ(s.verify_failures, 0u);
  EXPECT_EQ(s.repair_cycles, 0u);
  EXPECT_EQ(s.retry_cycles, 0u);
  // Overhead is the verify cost alone, and under the 10% bound.
  EXPECT_EQ(s.overhead_cycles(), s.verify_cycles);
  EXPECT_LT(s.verify_cycles * 10, simu.report().wall_cycles);
}

TEST_F(SimRecoveryTest, StuckFaultDetectedRemappedAndCorrected) {
  ReliabilityConfig rc;
  rc.verify.points = 2;
  ReliabilityManager rm(rc, params_);
  // Stage-2 block of bank 0 (first butterfly stage), data column 11,
  // row 5: corrupts the computation, must be caught and remapped.
  rm.fault_model().add_stuck_at(2, 11, 5, true);
  sim::CryptoPimSimulator simu(params_);
  simu.set_reliability(&rm);
  const auto got = multiply_checked(simu, 7);
  EXPECT_EQ(got, want_);
  const auto& s = simu.report().reliability;
  EXPECT_TRUE(s.verified);
  EXPECT_EQ(s.attempts, 2u);  // one dirty attempt, one clean retry
  EXPECT_GT(s.parity_mismatches + s.write_verify_failures, 0u);
  EXPECT_GE(s.columns_remapped, 1u);
  EXPECT_EQ(s.banks_remapped, 0u);
  EXPECT_GT(s.retry_cycles, 0u);   // the abandoned attempt's wall time
  EXPECT_GT(s.repair_cycles, 0u);  // BIST + remap
}

TEST_F(SimRecoveryTest, RemapsPersistAcrossRuns) {
  ReliabilityConfig rc;
  rc.verify.points = 2;
  ReliabilityManager rm(rc, params_);
  rm.fault_model().add_stuck_at(2, 11, 5, true);
  sim::CryptoPimSimulator simu(params_);
  simu.set_reliability(&rm);
  EXPECT_EQ(multiply_checked(simu, 7), want_);
  EXPECT_EQ(simu.report().reliability.attempts, 2u);
  // Second multiply: the column mux is already programmed around the
  // stuck cell, so the first attempt is clean.
  EXPECT_EQ(multiply_checked(simu, 8), want_);
  EXPECT_EQ(simu.report().reliability.attempts, 1u);
  EXPECT_EQ(simu.report().reliability.columns_remapped, 0u);
}

TEST_F(SimRecoveryTest, SpareExhaustionThrowsUnrecoverable) {
  ReliabilityConfig rc;
  rc.verify.points = 2;
  rc.spare_cols_per_block = 2;
  rc.spare_banks = 0;
  ReliabilityManager rm(rc, params_);
  // More faulty data columns in one block than the block has spares; with
  // no spare banks the superbank is lost.
  for (pim::Col col : {pim::Col{8}, pim::Col{9}, pim::Col{10}, pim::Col{11}}) {
    rm.fault_model().add_stuck_at(2, col, 5, true);
    rm.fault_model().add_stuck_at(2, col, 6, false);
  }
  sim::CryptoPimSimulator simu(params_);
  simu.set_reliability(&rm);
  EXPECT_THROW(multiply_checked(simu, 7), UnrecoverableFault);
  EXPECT_FALSE(simu.report().reliability.verified);
  EXPECT_GE(simu.report().reliability.banks_remapped, 1u);
}

TEST_F(SimRecoveryTest, BankFailoverRecoversWhenChipSparesRemain) {
  ReliabilityConfig rc;
  rc.verify.points = 2;
  rc.spare_cols_per_block = 2;
  rc.spare_banks = 2;
  ReliabilityManager rm(rc, params_);
  for (pim::Col col : {pim::Col{8}, pim::Col{9}, pim::Col{10}, pim::Col{11}}) {
    rm.fault_model().add_stuck_at(2, col, 5, true);
    rm.fault_model().add_stuck_at(2, col, 6, false);
  }
  sim::CryptoPimSimulator simu(params_);
  simu.set_reliability(&rm);
  const auto got = multiply_checked(simu, 7);
  EXPECT_EQ(got, want_);
  const auto& s = simu.report().reliability;
  EXPECT_TRUE(s.verified);
  EXPECT_GE(s.banks_remapped, 1u);
  EXPECT_EQ(rm.spare_banks_left(), 1u);
  EXPECT_EQ(rm.failed_banks(), 1u);
}

TEST_F(SimRecoveryTest, TransientFlipsClearOnRetryWithoutRemap) {
  ReliabilityConfig rc;
  rc.verify.points = 2;
  // This (rate, seed) pair deterministically flips one in-flight bit on
  // the first attempt; the retry draws fresh randomness and comes back
  // clean — the transient recovery path, no hardware repair involved.
  rc.fault.transient_rate = 5e-6;
  rc.fault.seed = 8;
  ReliabilityManager rm(rc, params_);
  sim::CryptoPimSimulator simu(params_);
  simu.set_reliability(&rm);
  const auto got = multiply_checked(simu, 7);
  EXPECT_EQ(got, want_);
  const auto& s = simu.report().reliability;
  EXPECT_TRUE(s.verified);
  EXPECT_EQ(s.attempts, 2u);
  EXPECT_GT(s.transient_flips, 0u);
  // Transients are not endurance failures: nothing to remap.
  EXPECT_EQ(s.columns_remapped, 0u);
  EXPECT_EQ(s.banks_remapped, 0u);
}

// ---------------------------------------------------------------------------
// Chip-level degradation

TEST(ChipDegradation, SparesCoverFailuresUntilExhausted) {
  const auto chip = arch::ChipConfig::paper_chip();
  const auto healthy = chip.plan_for_degree(1024);
  // Failures within the spare pool: same superbank count, flagged used.
  const auto covered = chip.plan_for_degree(1024, chip.spare_banks);
  EXPECT_EQ(covered.superbanks, healthy.superbanks);
  EXPECT_EQ(covered.spares_used, chip.spare_banks);
  EXPECT_FALSE(covered.degraded);
  // One more failure than spares: capacity degrades.
  const auto degraded = chip.plan_for_degree(1024, chip.spare_banks + 1);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_LE(degraded.superbanks, healthy.superbanks);
}

TEST(ChipDegradation, OneArgOverloadIsZeroFailures) {
  const auto chip = arch::ChipConfig::paper_chip();
  const auto a = chip.plan_for_degree(4096);
  const auto b = chip.plan_for_degree(4096, 0);
  EXPECT_EQ(a.superbanks, b.superbanks);
  EXPECT_EQ(b.failed_banks, 0u);
  EXPECT_FALSE(b.degraded);
}

TEST(ChipDegradation, ThrowsWhenNoSuperbankCanForm) {
  const auto chip = arch::ChipConfig::paper_chip();
  EXPECT_THROW(chip.plan_for_degree(1024, 100000), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Campaign

TEST(FaultCampaign, BitReproducibleAndZeroEscapes) {
  CampaignConfig cfg;
  cfg.stuck_rates = {0.0, 1e-5};
  cfg.trials_per_rate = 2;
  cfg.seed = 42;
  const auto r1 = run_fault_campaign(cfg);
  const auto r2 = run_fault_campaign(cfg);
  ASSERT_EQ(r1.cells.size(), r2.cells.size());
  for (std::size_t i = 0; i < r1.cells.size(); ++i) {
    EXPECT_EQ(r1.cells[i].injected, r2.cells[i].injected);
    EXPECT_EQ(r1.cells[i].clean, r2.cells[i].clean);
    EXPECT_EQ(r1.cells[i].recovered, r2.cells[i].recovered);
    EXPECT_EQ(r1.cells[i].attempts, r2.cells[i].attempts);
    EXPECT_EQ(r1.cells[i].wall_cycles, r2.cells[i].wall_cycles);
    EXPECT_EQ(r1.cells[i].overhead_cycles, r2.cells[i].overhead_cycles);
  }
  EXPECT_EQ(r1.total_escaped(), 0u);
  // The zero-rate cell is all-clean with no injected faults.
  EXPECT_EQ(r1.cells[0].injected, 0u);
  EXPECT_EQ(r1.cells[0].clean, r1.cells[0].trials);
  // The faulty cell actually exercised injection.
  EXPECT_GT(r1.cells[1].injected, 0u);
}

// ---------------------------------------------------------------------------
// Pipelined simulator pass-through

TEST(PipelinedReliability, StreamRecoversMidPipelineFaults) {
  const auto params = ntt::NttParams::for_degree(256);
  ReliabilityConfig rc;
  rc.verify.points = 2;
  ReliabilityManager rm(rc, params);
  // A mid-pipeline stuck cell (stage 5 of bank 0) hits every job that
  // flows through that stage.
  rm.fault_model().add_stuck_at(5, 11, 3, true);
  sim::PipelinedSimulator pipe(params);
  pipe.set_reliability(&rm);
  ntt::GsNttEngine engine(params);
  Xoshiro256 rng(21);
  std::vector<std::pair<ntt::Poly, ntt::Poly>> pairs;
  for (int i = 0; i < 3; ++i) {
    pairs.emplace_back(random_poly(params.n, params.q, rng),
                       random_poly(params.n, params.q, rng));
  }
  const auto results = pipe.multiply_stream(pairs);
  ASSERT_EQ(results.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(results[i],
              engine.negacyclic_multiply(pairs[i].first, pairs[i].second))
        << "job " << i;
  }
  const auto& s = pipe.report().reliability;
  EXPECT_TRUE(s.enabled);
  EXPECT_TRUE(s.verified);
  // The first job hits the fault and repairs it; later jobs inherit the
  // remap and pass on their first attempt.
  EXPECT_GE(s.columns_remapped, 1u);
  EXPECT_GE(s.attempts, static_cast<unsigned>(pairs.size()) + 1);
}

TEST(PipelinedReliability, NoManagerLeavesLedgerEmpty) {
  const auto params = ntt::NttParams::for_degree(256);
  sim::PipelinedSimulator pipe(params);
  Xoshiro256 rng(22);
  std::vector<std::pair<ntt::Poly, ntt::Poly>> pairs;
  pairs.emplace_back(random_poly(params.n, params.q, rng),
                     random_poly(params.n, params.q, rng));
  pipe.multiply_stream(pairs);
  EXPECT_FALSE(pipe.report().reliability.enabled);
  EXPECT_EQ(pipe.report().reliability.overhead_cycles(), 0u);
}

}  // namespace
}  // namespace cryptopim::reliability
