// Keccak/SHA-3/SHAKE validation against the published FIPS-202 vectors.
#include "crypto/keccak.h"

#include <gtest/gtest.h>

#include <string>

namespace cryptopim::crypto {
namespace {

std::string hex(std::span<const std::uint8_t> bytes) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  for (const auto b : bytes) {
    s.push_back(digits[b >> 4]);
    s.push_back(digits[b & 0xF]);
  }
  return s;
}

std::span<const std::uint8_t> bytes_of(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Sha3, EmptyString) {
  EXPECT_EQ(hex(sha3_256({})),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
}

TEST(Sha3, Abc) {
  EXPECT_EQ(hex(sha3_256(bytes_of("abc"))),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532");
}

TEST(Sha3, LongerMessage) {
  // FIPS 202 vector for the 448-bit message
  // "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq".
  EXPECT_EQ(hex(sha3_256(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "41c0dba2a9d6240849100376a8235e2c82e1b9998a999e21db32dd97496d3376");
}

TEST(Shake128, EmptyString) {
  EXPECT_EQ(hex(shake128({}, 32)),
            "7f9c2ba4e88f827d616045507605853ed73b8093f6efbc88eb1a6eacfa66ef26");
}

TEST(Shake256, EmptyString) {
  EXPECT_EQ(hex(shake256({}, 32)),
            "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f");
}

TEST(Shake128, SqueezeIsIncremental) {
  // Squeezing 64 bytes at once equals two 32-byte squeezes.
  KeccakSponge a(168, 0x1F);
  a.absorb(bytes_of("cryptopim"));
  a.finalize();
  std::vector<std::uint8_t> big(64);
  a.squeeze(big);

  KeccakSponge b(168, 0x1F);
  b.absorb(bytes_of("cryptopim"));
  b.finalize();
  std::vector<std::uint8_t> lo(32), hi(32);
  b.squeeze(lo);
  b.squeeze(hi);
  EXPECT_EQ(hex({big.data(), 32}), hex(lo));
  EXPECT_EQ(hex({big.data() + 32, 32}), hex(hi));
}

TEST(Shake128, AbsorbIsIncremental) {
  KeccakSponge a(168, 0x1F);
  a.absorb(bytes_of("crypto"));
  a.absorb(bytes_of("pim"));
  a.finalize();
  std::vector<std::uint8_t> out_a(16);
  a.squeeze(out_a);
  EXPECT_EQ(hex(out_a), hex({shake128(bytes_of("cryptopim"), 16)}));
}

TEST(Shake128, LongInputCrossesRateBoundary) {
  // > 168 bytes forces an intermediate permutation during absorb.
  const std::string msg(500, 'x');
  const auto out = shake128(bytes_of(msg), 16);
  // Self-consistency: one-shot equals chunked.
  KeccakSponge s(168, 0x1F);
  s.absorb(bytes_of(msg.substr(0, 167)));
  s.absorb(bytes_of(msg.substr(167)));
  s.finalize();
  std::vector<std::uint8_t> out2(16);
  s.squeeze(out2);
  EXPECT_EQ(hex(out), hex(out2));
}

TEST(KeccakF, PermutationOfZeroStateIsKnown) {
  // First lane of Keccak-f[1600] applied to the all-zero state.
  std::array<std::uint64_t, 25> st{};
  keccak_f1600(st);
  EXPECT_EQ(st[0], 0xF1258F7940E1DDE7ull);
  EXPECT_EQ(st[1], 0x84D5CCF933C0478Aull);
}

TEST(Sha3, DistinctInputsDistinctDigests) {
  EXPECT_NE(hex(sha3_256(bytes_of("a"))), hex(sha3_256(bytes_of("b"))));
  EXPECT_NE(hex(sha3_256(bytes_of(""))), hex(sha3_256(bytes_of(" "))));
}

}  // namespace
}  // namespace cryptopim::crypto
